package obs

import "minnow/internal/sim"

// TrackID names one timeline track (a core, an engine, the memory
// system). Tracks are created with Timeline.AddTrack and map to Perfetto
// threads in the export.
type TrackID int32

// phase distinguishes the stored event shapes.
const (
	phSpan uint8 = iota
	phInstant
	phCounter
)

// tlEvent is one collected event, kept compact because an enabled
// timeline records every task, threadlet, and cache miss of a run.
type tlEvent struct {
	start sim.Time
	end   sim.Time // == start for instants; counter value slot for counters
	arg   int64
	track TrackID
	kind  Kind
	phase uint8
}

// Timeline collects spans, instants, and counter samples in simulation
// order for the Perfetto export. A nil *Timeline is a valid disabled
// collector: every method is nil-receiver-safe and allocation-free, so
// instrumented sites need no guard beyond the call itself (hot loops may
// still branch on nil to skip argument setup).
//
// Timelines are single-run, single-goroutine objects, like every other
// piece of per-run simulation state; runs that overlap under the parallel
// harness each own a private Timeline, which keeps the export
// byte-identical for any -jobs value.
type Timeline struct {
	names  []string
	events []tlEvent
	byKind [NumKinds]int64
}

// NewTimeline returns an empty collector.
func NewTimeline() *Timeline {
	return &Timeline{}
}

// AddTrack registers a named track and returns its ID. Returns -1 on a
// nil timeline (the ID is never dereferenced by the nil emit paths).
func (t *Timeline) AddTrack(name string) TrackID {
	if t == nil {
		return -1
	}
	t.names = append(t.names, name)
	return TrackID(len(t.names) - 1)
}

// Span records a duration event [start, end) on a track. Zero- and
// negative-length spans are recorded with a one-cycle floor so they stay
// visible in Perfetto.
func (t *Timeline) Span(track TrackID, kind Kind, start, end sim.Time, arg int64) {
	if t == nil {
		return
	}
	if end <= start {
		end = start + 1
	}
	t.events = append(t.events, tlEvent{start: start, end: end, arg: arg, track: track, kind: kind, phase: phSpan})
	t.byKind[kind]++
}

// Instant records a point event on a track.
func (t *Timeline) Instant(track TrackID, kind Kind, at sim.Time, arg int64) {
	if t == nil {
		return
	}
	t.events = append(t.events, tlEvent{start: at, end: at, arg: arg, track: track, kind: kind, phase: phInstant})
	t.byKind[kind]++
}

// Counter records a sample on the kind's counter track (counter tracks
// are named by the Kind, not by a TrackID; Perfetto renders each as its
// own graph).
func (t *Timeline) Counter(kind Kind, at sim.Time, value int64) {
	if t == nil {
		return
	}
	t.events = append(t.events, tlEvent{start: at, end: at, arg: value, kind: kind, phase: phCounter})
	t.byKind[kind]++
}

// Len returns the number of recorded events.
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Count returns how many events of a kind were recorded.
func (t *Timeline) Count(k Kind) int64 {
	if t == nil {
		return 0
	}
	return t.byKind[k]
}

// Tracks returns the registered track names in creation order.
func (t *Timeline) Tracks() []string {
	if t == nil {
		return nil
	}
	return append([]string(nil), t.names...)
}
