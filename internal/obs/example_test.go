package obs_test

import (
	"fmt"

	"minnow/internal/obs"
	"minnow/internal/sim"
)

// ExampleRegistry samples a gauge and a rate at fixed cycle boundaries,
// the way the harness probes a live simulation, then renders the interval
// CSV.
func ExampleRegistry() {
	var depth, misses, instrs int64

	r := obs.NewRegistry(1000)
	r.Gauge("depth", func() int64 { return depth })
	r.Rate("mpki", func() int64 { return misses }, func() int64 { return instrs }, 1000)

	// First interval: 2 misses over 4000 retired micro-ops.
	depth, misses, instrs = 12, 2, 4000
	r.Sample(1000)
	// Second interval: 6 more misses over 2000 more micro-ops.
	depth, misses, instrs = 3, 8, 6000
	r.Sample(2000)
	// The run ends mid-interval; Flush records the partial tail.
	depth, misses, instrs = 0, 9, 6500
	r.Flush(sim.Time(2300))

	fmt.Print(r.CSV())
	// Output:
	// cycle,depth,mpki
	// 1000,12,0.5
	// 2000,3,3
	// 2300,0,2
}

// ExampleTimeline records a task span and a counter sample and exports
// Chrome trace-event JSON for ui.perfetto.dev.
func ExampleTimeline() {
	tl := obs.NewTimeline()
	core0 := tl.AddTrack("core 0")
	tl.Span(core0, obs.EvTask, 100, 240, 7)
	tl.Counter(obs.EvOccupancy, 1000, 42)

	fmt.Println("events:", tl.Len())
	fmt.Println("tasks:", tl.Count(obs.EvTask))
	fmt.Printf("%s", tl.Perfetto())
	// Output:
	// events: 2
	// tasks: 1
	// {"traceEvents":[
	// {"ph":"M","pid":0,"tid":0,"name":"thread_name","args":{"name":"core 0"}},
	// {"ph":"X","pid":0,"tid":0,"ts":100,"dur":140,"name":"task","args":{"arg":7}},
	// {"ph":"C","pid":0,"ts":1000,"name":"worklist-occupancy","args":{"value":42}}
	// ],"displayTimeUnit":"ms","otherData":{"generator":"minnowsim","timeUnit":"cycles"}}
}
