package obs

import (
	"math"
	"strconv"
	"strings"

	"minnow/internal/sim"
)

// colKind distinguishes the sampled column flavors.
type colKind uint8

const (
	colGauge   colKind = iota // instantaneous value
	colCounter                // per-interval delta of a cumulative counter
	colRate                   // Δnum/Δden × scale over the interval
)

// column is one registered metric.
type column struct {
	name     string
	kind     colKind
	fn       func() int64 // gauge / counter source
	num, den func() int64 // rate sources
	scale    float64
	prevFn   int64 // counter state at the previous sample
	prevNum  int64
	prevDen  int64
}

// Registry is the time-series sampling registry: a set of named columns
// snapshotted at fixed simulated-cycle boundaries into interval rows.
// The harness installs a sim.Engine probe that calls Sample at every
// crossed boundary and Flush once at run end, so rows land at cycles
// N, 2N, 3N, ... plus one final partial-interval row.
//
// Column sources are plain closures over simulation counters; they are
// read at sample time and never written, which is what keeps sampling
// invisible to the simulated execution (see the package determinism
// contract). A nil *Registry is a valid disabled registry: every method
// is nil-receiver-safe and the sampling entry points are allocation-free
// in that state, matching the one-branch-per-site discipline of the
// trace package.
type Registry struct {
	every  sim.Time
	cols   []column
	stamps []sim.Time
	rows   [][]float64
}

// NewRegistry returns a registry sampling every `every` cycles. every
// must be positive.
func NewRegistry(every sim.Time) *Registry {
	if every <= 0 {
		panic("obs: registry interval must be positive")
	}
	return &Registry{every: every}
}

// Every returns the sampling interval in cycles (0 on a nil registry).
func (r *Registry) Every() sim.Time {
	if r == nil {
		return 0
	}
	return r.every
}

// Gauge registers an instantaneous column: each row records fn() at the
// sample instant (worklist occupancy, credit level, queue depths).
func (r *Registry) Gauge(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.cols = append(r.cols, column{name: name, kind: colGauge, fn: fn})
}

// Counter registers a cumulative-counter column: each row records the
// counter's increase since the previous row (misses, flits, tasks).
func (r *Registry) Counter(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.cols = append(r.cols, column{name: name, kind: colCounter, fn: fn})
}

// Rate registers a derived column: each row records Δnum/Δden × scale
// over the interval (MPKI with scale 1000, IPC with scale 1, prefetch
// accuracy with scale 1). Rows where Δden is zero record 0.
func (r *Registry) Rate(name string, num, den func() int64, scale float64) {
	if r == nil {
		return
	}
	r.cols = append(r.cols, column{name: name, kind: colRate, num: num, den: den, scale: scale})
}

// Sample appends one row stamped `at`, reading every column. The caller
// (the sim probe) guarantees monotonically increasing stamps.
func (r *Registry) Sample(at sim.Time) {
	if r == nil {
		return
	}
	row := make([]float64, len(r.cols))
	for i := range r.cols {
		c := &r.cols[i]
		switch c.kind {
		case colGauge:
			row[i] = float64(c.fn())
		case colCounter:
			v := c.fn()
			row[i] = float64(v - c.prevFn)
			c.prevFn = v
		case colRate:
			n, d := c.num(), c.den()
			dn, dd := n-c.prevNum, d-c.prevDen
			c.prevNum, c.prevDen = n, d
			if dd != 0 {
				row[i] = float64(dn) / float64(dd) * c.scale
			}
		}
	}
	r.stamps = append(r.stamps, at)
	r.rows = append(r.rows, row)
}

// Flush records the final partial interval: if the run ended after the
// last emitted boundary (or before the first), one last row stamped with
// the end time is appended. Runs shorter than one interval therefore
// still produce exactly one row. Sampling an empty tail (end exactly on
// the last boundary) is skipped.
func (r *Registry) Flush(end sim.Time) {
	if r == nil {
		return
	}
	if n := len(r.stamps); n > 0 && r.stamps[n-1] >= end {
		return
	}
	r.Sample(end)
}

// Len returns the number of rows recorded.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.rows)
}

// Header returns the column names, without the leading cycle stamp.
func (r *Registry) Header() []string {
	if r == nil {
		return nil
	}
	out := make([]string, len(r.cols))
	for i := range r.cols {
		out[i] = r.cols[i].name
	}
	return out
}

// Row returns the stamp and values of row i.
func (r *Registry) Row(i int) (sim.Time, []float64) {
	return r.stamps[i], r.rows[i]
}

// formatCell renders one value compactly and deterministically: integral
// values print as integers, everything else with six significant digits.
func formatCell(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1<<53 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// PromText renders the most recent sample row in the Prometheus text
// exposition format, one `minnow_<column> value` line per column plus a
// `minnow_cycles` line carrying the row's simulated-cycle stamp. Column
// names are sanitized (non-alphanumerics become underscores). Returns
// the empty string until the first sample lands, and on a nil registry.
func (r *Registry) PromText() string {
	if r == nil || len(r.rows) == 0 {
		return ""
	}
	i := len(r.rows) - 1
	var b strings.Builder
	b.WriteString("minnow_cycles ")
	b.WriteString(strconv.FormatInt(int64(r.stamps[i]), 10))
	b.WriteByte('\n')
	for j := range r.cols {
		b.WriteString("minnow_")
		for _, ch := range r.cols[j].name {
			if ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z' || ch >= '0' && ch <= '9' || ch == '_' {
				b.WriteRune(ch)
			} else {
				b.WriteByte('_')
			}
		}
		b.WriteByte(' ')
		b.WriteString(formatCell(r.rows[i][j]))
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the interval rows as comma-separated values with a leading
// "cycle" column, the format cmd/figures and external plotting consume.
func (r *Registry) CSV() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("cycle")
	for i := range r.cols {
		b.WriteByte(',')
		b.WriteString(r.cols[i].name)
	}
	b.WriteByte('\n')
	for i, row := range r.rows {
		b.WriteString(strconv.FormatInt(int64(r.stamps[i]), 10))
		for _, v := range row {
			b.WriteByte(',')
			b.WriteString(formatCell(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
