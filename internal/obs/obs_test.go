package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"minnow/internal/sim"
)

func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < NumKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d has no label", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind label %q", s)
		}
		seen[s] = true
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Fatalf("out-of-range label %q", got)
	}
}

func TestRegistryColumns(t *testing.T) {
	var gauge, counter, num, den int64
	r := NewRegistry(100)
	r.Gauge("g", func() int64 { return gauge })
	r.Counter("c", func() int64 { return counter })
	r.Rate("r", func() int64 { return num }, func() int64 { return den }, 1000)

	gauge, counter, num, den = 7, 10, 5, 1000
	r.Sample(100)
	gauge, counter, num, den = 3, 25, 8, 2000
	r.Sample(200)

	if r.Len() != 2 {
		t.Fatalf("rows %d, want 2", r.Len())
	}
	at, row := r.Row(0)
	if at != 100 || row[0] != 7 || row[1] != 10 || row[2] != 5 {
		t.Fatalf("row0 at=%d %v", at, row)
	}
	// Second row: gauge is instantaneous, counter and rate are deltas.
	at, row = r.Row(1)
	if at != 200 || row[0] != 3 || row[1] != 15 || row[2] != 3 {
		t.Fatalf("row1 at=%d %v (want gauge 3, counter delta 15, rate 3/1000*1000)", at, row)
	}
}

func TestRegistryRateZeroDenominator(t *testing.T) {
	r := NewRegistry(10)
	r.Rate("r", func() int64 { return 5 }, func() int64 { return 0 }, 1000)
	r.Sample(10)
	if _, row := r.Row(0); row[0] != 0 {
		t.Fatalf("zero-denominator rate = %v, want 0", row[0])
	}
}

func TestRegistryFlushShortRun(t *testing.T) {
	// A run shorter than one interval never crosses a boundary; Flush must
	// still produce exactly one row covering the whole run.
	r := NewRegistry(1_000_000)
	r.Counter("c", func() int64 { return 42 })
	r.Flush(777)
	if r.Len() != 1 {
		t.Fatalf("rows %d, want 1", r.Len())
	}
	at, row := r.Row(0)
	if at != 777 || row[0] != 42 {
		t.Fatalf("flush row at=%d %v", at, row)
	}
	// A second flush at the same end is a no-op (empty tail).
	r.Flush(777)
	if r.Len() != 1 {
		t.Fatalf("re-flush added a row: %d", r.Len())
	}
}

func TestRegistryFlushOnBoundary(t *testing.T) {
	// When the run ends exactly on the last sampled boundary there is no
	// tail to record.
	r := NewRegistry(100)
	r.Gauge("g", func() int64 { return 1 })
	r.Sample(100)
	r.Flush(100)
	if r.Len() != 1 {
		t.Fatalf("rows %d, want 1", r.Len())
	}
}

func TestRegistryCSV(t *testing.T) {
	v := int64(0)
	r := NewRegistry(50)
	r.Gauge("depth", func() int64 { return v })
	r.Rate("frac", func() int64 { return 1 }, func() int64 { return 3 }, 1)
	v = 12
	r.Sample(50)
	csv := r.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "cycle,depth,frac" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[1] != "50,12,0.333333" {
		t.Fatalf("row %q", lines[1])
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Gauge("g", nil)
	r.Counter("c", nil)
	r.Rate("r", nil, nil, 1)
	r.Sample(10)
	r.Flush(20)
	if r.Len() != 0 || r.Every() != 0 || r.Header() != nil || r.CSV() != "" {
		t.Fatal("nil registry leaked state")
	}
}

func TestNilRegistryAllocFree(t *testing.T) {
	var r *Registry
	if n := testing.AllocsPerRun(100, func() {
		r.Sample(10)
		r.Flush(10)
	}); n != 0 {
		t.Fatalf("nil registry allocates %.1f per sample", n)
	}
}

func TestTimelineCollect(t *testing.T) {
	tl := NewTimeline()
	c0 := tl.AddTrack("core 0")
	if c0 != 0 {
		t.Fatalf("first track ID %d", c0)
	}
	tl.Span(c0, EvTask, 10, 30, 7)
	tl.Span(c0, EvTask, 30, 30, 8) // zero-length: floored to 1 cycle
	tl.Instant(c0, EvStallLoad, 25, 60)
	tl.Counter(EvOccupancy, 100, 5)
	if tl.Len() != 4 || tl.Count(EvTask) != 2 || tl.Count(EvStallLoad) != 1 {
		t.Fatalf("len=%d task=%d stall=%d", tl.Len(), tl.Count(EvTask), tl.Count(EvStallLoad))
	}
	if got := tl.Tracks(); len(got) != 1 || got[0] != "core 0" {
		t.Fatalf("tracks %v", got)
	}
}

func TestNilTimelineSafe(t *testing.T) {
	var tl *Timeline
	if id := tl.AddTrack("x"); id != -1 {
		t.Fatalf("nil AddTrack = %d", id)
	}
	tl.Span(0, EvTask, 1, 2, 0)
	tl.Instant(0, EvTask, 1, 0)
	tl.Counter(EvOccupancy, 1, 0)
	if tl.Len() != 0 || tl.Count(EvTask) != 0 || tl.Tracks() != nil {
		t.Fatal("nil timeline leaked state")
	}
}

func TestNilTimelineAllocFree(t *testing.T) {
	var tl *Timeline
	if n := testing.AllocsPerRun(100, func() {
		tl.Span(0, EvTask, 1, 2, 0)
		tl.Instant(0, EvStallLoad, 1, 0)
		tl.Counter(EvOccupancy, 1, 0)
	}); n != 0 {
		t.Fatalf("nil timeline allocates %.1f per emit", n)
	}
}

// perfettoDoc mirrors the trace-event JSON shape for validation.
type perfettoDoc struct {
	TraceEvents []struct {
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Ts   *int64         `json:"ts"`
		Dur  *int64         `json:"dur"`
		Name string         `json:"name"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

func TestPerfettoJSON(t *testing.T) {
	tl := NewTimeline()
	core := tl.AddTrack("core 0")
	engine := tl.AddTrack("engine 0")
	tl.Span(core, EvTask, 100, 250, 42)
	tl.Instant(engine, EvCreditStall, 180, 0)
	tl.Counter(EvOccupancy, 200, 17)

	var doc perfettoDoc
	if err := json.Unmarshal(tl.Perfetto(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || doc.OtherData["timeUnit"] != "cycles" {
		t.Fatalf("metadata %q %v", doc.DisplayTimeUnit, doc.OtherData)
	}
	// 2 thread_name records + 3 events.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("events %d, want 5", len(doc.TraceEvents))
	}
	byPh := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byPh[ev.Ph]++
	}
	if byPh["M"] != 2 || byPh["X"] != 1 || byPh["i"] != 1 || byPh["C"] != 1 {
		t.Fatalf("phase counts %v", byPh)
	}
	span := doc.TraceEvents[2]
	if span.Ph != "X" || span.Name != "task" || *span.Ts != 100 || *span.Dur != 150 {
		t.Fatalf("span %+v", span)
	}
}

func TestPerfettoNilAndEmpty(t *testing.T) {
	var nilTL *Timeline
	for _, b := range [][]byte{nilTL.Perfetto(), NewTimeline().Perfetto()} {
		var doc perfettoDoc
		if err := json.Unmarshal(b, &doc); err != nil {
			t.Fatalf("invalid JSON: %v", err)
		}
		if len(doc.TraceEvents) != 0 {
			t.Fatalf("events %d, want 0", len(doc.TraceEvents))
		}
	}
}

func TestRegistryWithSimProbe(t *testing.T) {
	// End-to-end: a sim.Engine probe drives Sample at each crossed
	// boundary; stamps land on exact multiples of the interval.
	eng := sim.NewEngine()
	steps := 0
	id := eng.Register(actorFunc(func() (sim.Time, bool) {
		steps++
		return sim.Time(steps * 70), steps >= 4
	}))
	eng.Wake(id, 0)
	r := NewRegistry(100)
	r.Gauge("steps", func() int64 { return int64(steps) })
	eng.SetProbe(r.Every(), func(at sim.Time) { r.Sample(at) })
	end, _ := eng.Run(0)
	r.Flush(end)
	// Steps at 0, 70, 140, 210 → boundaries 100 and 200 crossed, then a
	// final flush row at the 210 frontier (the last step's time).
	if r.Len() != 3 {
		t.Fatalf("rows %d: %s", r.Len(), r.CSV())
	}
	for i, want := range []sim.Time{100, 200, 210} {
		if at, _ := r.Row(i); at != want {
			t.Fatalf("row %d stamped %d, want %d", i, at, want)
		}
	}
}

// actorFunc adapts a closure to sim.Actor.
type actorFunc func() (sim.Time, bool)

func (f actorFunc) Step() (sim.Time, bool) { return f() }
