package obs

import (
	"strconv"
	"strings"
)

// Perfetto renders the timeline as Chrome trace-event JSON, the format
// ui.perfetto.dev (and chrome://tracing) opens directly. One simulated
// cycle maps to one microsecond of trace time, so Perfetto's "1 ms" is
// 1000 cycles; the mapping is recorded under otherData.timeUnit.
//
// Layout: every AddTrack track becomes a named thread of process 0
// (cores, engines, the memory system); spans are complete events ("X"),
// point events are thread-scoped instants ("i"), and Counter samples
// become counter tracks ("C") that Perfetto plots as stepped graphs.
//
// The output is deterministic: events appear in collection order, which
// the single-goroutine-per-run simulator fixes for a given configuration
// and seed, and all numbers are formatted with strconv.
func (t *Timeline) Perfetto() []byte {
	var b strings.Builder
	b.WriteString("{\"traceEvents\":[")
	first := true
	emit := func(s string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString("\n")
		b.WriteString(s)
	}
	if t != nil {
		for i, name := range t.names {
			emit("{\"ph\":\"M\",\"pid\":0,\"tid\":" + strconv.Itoa(i) +
				",\"name\":\"thread_name\",\"args\":{\"name\":" + strconv.Quote(name) + "}}")
		}
		for i := range t.events {
			ev := &t.events[i]
			switch ev.phase {
			case phSpan:
				emit("{\"ph\":\"X\",\"pid\":0,\"tid\":" + strconv.Itoa(int(ev.track)) +
					",\"ts\":" + strconv.FormatInt(int64(ev.start), 10) +
					",\"dur\":" + strconv.FormatInt(int64(ev.end-ev.start), 10) +
					",\"name\":" + strconv.Quote(ev.kind.String()) +
					",\"args\":{\"arg\":" + strconv.FormatInt(ev.arg, 10) + "}}")
			case phInstant:
				emit("{\"ph\":\"i\",\"pid\":0,\"tid\":" + strconv.Itoa(int(ev.track)) +
					",\"ts\":" + strconv.FormatInt(int64(ev.start), 10) +
					",\"s\":\"t\",\"name\":" + strconv.Quote(ev.kind.String()) +
					",\"args\":{\"arg\":" + strconv.FormatInt(ev.arg, 10) + "}}")
			case phCounter:
				emit("{\"ph\":\"C\",\"pid\":0,\"ts\":" + strconv.FormatInt(int64(ev.start), 10) +
					",\"name\":" + strconv.Quote(ev.kind.String()) +
					",\"args\":{\"value\":" + strconv.FormatInt(ev.arg, 10) + "}}")
			}
		}
	}
	b.WriteString("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"minnowsim\",\"timeUnit\":\"cycles\"}}\n")
	return []byte(b.String())
}
