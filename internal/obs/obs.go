// Package obs is the simulator's observability layer: a full-system event
// vocabulary, a timeline collector that exports Chrome trace-event /
// Perfetto JSON (one track per core, engine, and the shared memory
// system), and a cheap time-series sampling registry that snapshots
// counters at fixed simulated-cycle intervals and renders interval CSV.
//
// It exists to make the paper's *time-resolved* arguments reproducible:
// worklist occupancy ramps (Fig. 2's motivation), the L2 MPKI collapse
// under worklist-directed prefetching (§6.3), and credit-throttled
// prefetch bursts (§5.3.1) are all invisible in end-of-run aggregates.
// The engine-only ring buffer in internal/trace is re-based on this
// package's Kind vocabulary, so engine events and full-system events
// share one taxonomy (documented in docs/OBSERVABILITY.md).
//
// Determinism contract: observers never schedule. Nothing in this package
// wakes an actor, advances a clock, or mutates simulation state — the
// Timeline and Registry only read counters and append to private buffers.
// Enabling observability must not change wall cycles, event-loop steps,
// or any RunSummary field; the harness tests assert exactly that. All
// collection entry points are nil-receiver-safe, so a disabled
// (nil) Timeline or Registry costs one branch per instrumented site —
// the same discipline as the trace package.
package obs

import "fmt"

// Kind classifies an observability event. The first block mirrors the
// historical engine-trace vocabulary (internal/trace aliases these
// constants); the second block extends it to cores, caches, and the
// memory fabric; the final block names the sampled counter tracks.
type Kind uint8

const (
	// EvEnqueue is a minnow_enqueue accepted into a local queue.
	EvEnqueue Kind = iota
	// EvEnqueueSpill is a minnow_enqueue routed to the spill queue.
	EvEnqueueSpill
	// EvDequeue is a successful minnow_dequeue.
	EvDequeue
	// EvDequeueEmpty is a minnow_dequeue that found the local queue empty.
	EvDequeueEmpty
	// EvSpill is a spill threadlet batch completing.
	EvSpill
	// EvFill is a fill threadlet completing.
	EvFill
	// EvPrefetch is one prefetch threadlet issuing its loads.
	EvPrefetch
	// EvCreditStall is the prefetcher pausing on an empty credit pool.
	EvCreditStall
	// EvStreamDrop is a stale prefetch stream being cancelled.
	EvStreamDrop
	// EvFlush is a minnow_flush.
	EvFlush

	// EvTask is one operator application on a core (timeline span; the
	// argument is the task's node ID).
	EvTask
	// EvStallLoad is a core retire-stall attributed to a load miss
	// (instant; the argument is the stall length in cycles).
	EvStallLoad
	// EvStallStore is a core retire-stall attributed to a store or atomic
	// (instant; the argument is the stall length in cycles).
	EvStallStore
	// EvL2Miss is a demand access missing a core's L2 (instant; the
	// argument is the level that finally supplied the line: 3=L3, 4=DRAM).
	EvL2Miss
	// EvWriteback is a dirty line displaced from an L2 (instant).
	EvWriteback
	// EvStallFence is a core retire-stall attributed to an atomic
	// read-modify-write and its x86-TSO fence serialization (instant; the
	// argument is the stall length in cycles).
	EvStallFence
	// EvStallBranch is a core retire-stall attributed to a
	// branch-mispredict pipeline refill (instant; the argument is the
	// stall length in cycles).
	EvStallBranch
	// EvStallWorklist is a core stall inside a worklist operation — a
	// blocked enqueue/dequeue, spill backpressure, or the idle spin
	// between failed dequeues (instant; the argument is the stall length
	// in cycles).
	EvStallWorklist
	// EvStallDep is a retire gap inside useful work with no miss or
	// mispredict to blame: dependence chains and issue-width limits
	// resolving late (instant; the argument is the stall length in
	// cycles).
	EvStallDep

	// EvOccupancy is the worklist occupancy counter track: tasks queued
	// anywhere (global worklist + local queues + spill queues).
	EvOccupancy
	// EvCredits is the prefetch credit pool counter track (summed over
	// engines).
	EvCredits
	// EvDRAMQueue is the DRAM counter track: channels with a pending
	// service reservation at the sample instant.
	EvDRAMQueue
	// EvNoCFlits is the cumulative NoC link-traversal counter track.
	EvNoCFlits
	// EvFaults is the cumulative injected-fault counter track (present
	// only when a fault plan is armed).
	EvFaults
	// EvArrival is one open-loop task injection (instant on the arrivals
	// track; the argument is the injected node ID).
	EvArrival
	// EvBacklog is the open-loop backlog counter track: arrival tasks
	// injected but not yet retired (present only when an arrival plan is
	// armed).
	EvBacklog

	// NumKinds bounds the Kind space (per-kind count arrays).
	NumKinds
)

// String returns the event label used in trace dumps, timeline track
// names, and the Perfetto export.
func (k Kind) String() string {
	switch k {
	case EvEnqueue:
		return "enqueue"
	case EvEnqueueSpill:
		return "enqueue-spill"
	case EvDequeue:
		return "dequeue"
	case EvDequeueEmpty:
		return "dequeue-empty"
	case EvSpill:
		return "spill"
	case EvFill:
		return "fill"
	case EvPrefetch:
		return "prefetch"
	case EvCreditStall:
		return "credit-stall"
	case EvStreamDrop:
		return "stream-drop"
	case EvFlush:
		return "flush"
	case EvTask:
		return "task"
	case EvStallLoad:
		return "stall-load"
	case EvStallStore:
		return "stall-store"
	case EvL2Miss:
		return "l2-miss"
	case EvWriteback:
		return "writeback"
	case EvStallFence:
		return "stall-fence"
	case EvStallBranch:
		return "stall-branch"
	case EvStallWorklist:
		return "stall-worklist"
	case EvStallDep:
		return "stall-dep"
	case EvOccupancy:
		return "worklist-occupancy"
	case EvCredits:
		return "credits"
	case EvDRAMQueue:
		return "dram-queue"
	case EvNoCFlits:
		return "noc-flits"
	case EvFaults:
		return "faults-injected"
	case EvArrival:
		return "arrival"
	case EvBacklog:
		return "arrival-backlog"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}
