package worklist

import (
	"container/heap"

	"minnow/internal/graph"
)

// StrictPQ is a single global binary heap guarded by one lock — the strict
// priority scheduler (Dijkstra-style). Maximally work-efficient, but every
// operation serializes on the lock and touches O(log n) heap lines, which
// is exactly why "priority queues are not good concurrent priority
// schedulers" (Lenharth et al., cited in §2.1).
type StrictPQ struct {
	h        taskHeap
	glock    lock
	heapAddr uint64
	descs    *descArena
	pushed   int64
	popped   int64
}

type taskHeap []Task

func (h taskHeap) Len() int           { return len(h) }
func (h taskHeap) Less(i, j int) bool { return h[i].Priority < h[j].Priority }
func (h taskHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)        { *h = append(*h, x.(Task)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}

// NewStrictPQ builds the strict priority worklist.
func NewStrictPQ(as *graph.AddrSpace) *StrictPQ {
	return &StrictPQ{
		glock:    newLock(as),
		heapAddr: as.Alloc(1 << 20),
		descs:    newDescArena(as, 1<<16),
	}
}

// Name implements Worklist.
func (q *StrictPQ) Name() string { return "strict-pq" }

// Len implements Worklist.
func (q *StrictPQ) Len() int { return len(q.h) }

// Pushed implements Conserved.
func (q *StrictPQ) Pushed() int64 { return q.pushed }

// Popped implements Conserved.
func (q *StrictPQ) Popped() int64 { return q.popped }

// heapOps emits the loads/stores of a sift through depth levels of a heap
// laid out as an array at heapAddr.
func (q *StrictPQ) heapOps(ctx *Ctx, idx int) {
	for idx > 0 {
		parent := (idx - 1) / 2
		ctx.TR.Load(q.heapAddr+uint64(parent)*16, false, false)
		ctx.TR.Compute(4)
		ctx.TR.Store(q.heapAddr + uint64(idx)*16)
		idx = parent
	}
	ctx.TR.Store(q.heapAddr)
}

// Push implements Worklist.
func (q *StrictPQ) Push(ctx *Ctx, t Task) {
	t.Desc = q.descs.alloc(ctx.Core.ID)
	q.glock.acquire(ctx)
	ctx.TR.Store(t.Desc)
	q.heapOps(ctx, len(q.h))
	q.glock.release(ctx)
	heap.Push(&q.h, t)
	q.pushed++
}

// Pop implements Worklist.
func (q *StrictPQ) Pop(ctx *Ctx) (Task, bool) {
	q.glock.acquire(ctx)
	if len(q.h) == 0 {
		ctx.TR.Load(q.heapAddr, false, false)
		q.glock.release(ctx)
		return Task{}, false
	}
	q.heapOps(ctx, len(q.h)-1)
	ctx.TR.Compute(8)
	q.glock.release(ctx)
	t := heap.Pop(&q.h).(Task)
	q.popped++
	return t, true
}
