package worklist

import (
	"testing"

	"minnow/internal/rng"
)

// conservedLists builds every Conserved worklist implementation over a
// fresh environment.
func conservedLists(threads int) map[string]Worklist {
	as, _, _ := testEnv(threads)
	return map[string]Worklist{
		"fifo":     NewFIFO(as, threads),
		"lifo":     NewLIFO(as, threads),
		"obim":     NewOBIM(as, threads, 1, 3),
		"strictpq": NewStrictPQ(as),
	}
}

// drainAll pops from every thread context until a full round makes no
// progress — OBIM binds refill chunks to the popping thread, so a
// single-context drain can strand tasks in another thread's pop chunk.
func drainAll(wl Worklist, ctxs []*Ctx) []Task {
	var out []Task
	for {
		n := len(out)
		for _, ctx := range ctxs {
			for {
				t, ok := wl.Pop(ctx)
				if !ok {
					break
				}
				out = append(out, t)
			}
		}
		if len(out) == n {
			return out
		}
	}
}

// checkLedger asserts the Conserved identity pushed == popped + Len.
func checkLedger(t *testing.T, name string, wl Worklist) {
	t.Helper()
	c, ok := wl.(Conserved)
	if !ok {
		t.Fatalf("%s does not implement Conserved", name)
	}
	if c.Pushed() != c.Popped()+int64(wl.Len()) {
		t.Fatalf("%s ledger broken: pushed=%d popped=%d len=%d",
			name, c.Pushed(), c.Popped(), wl.Len())
	}
}

// TestConservation drives every worklist with a randomized multi-thread
// push/pop mix and checks the conservation ledger at every step, that no
// task is duplicated or lost, and that a full drain balances the books.
func TestConservation(t *testing.T) {
	const threads = 4
	for name, wl := range conservedLists(threads) {
		_, _, ctxs := testEnv(threads)
		r := rng.New(99)
		pushed := map[int32]bool{}
		popped := map[int32]bool{}
		next := int32(0)
		for op := 0; op < 5000; op++ {
			ctx := ctxs[int(r.Uint64()%threads)]
			if r.Uint64()%3 != 0 { // bias toward pushes
				wl.Push(ctx, task(int64(r.Uint64()%64), next))
				pushed[next] = true
				next++
			} else if tk, ok := wl.Pop(ctx); ok {
				if popped[tk.Node] {
					t.Fatalf("%s: task %d popped twice", name, tk.Node)
				}
				if !pushed[tk.Node] {
					t.Fatalf("%s: task %d popped but never pushed", name, tk.Node)
				}
				popped[tk.Node] = true
			}
			if op%97 == 0 {
				checkLedger(t, name, wl)
			}
		}
		for _, tk := range drainAll(wl, ctxs) {
			if popped[tk.Node] {
				t.Fatalf("%s: task %d popped twice on drain", name, tk.Node)
			}
			popped[tk.Node] = true
		}
		checkLedger(t, name, wl)
		if len(popped) != len(pushed) {
			t.Fatalf("%s: %d pushed but %d recovered", name, len(pushed), len(popped))
		}
		if c := wl.(Conserved); c.Popped() != int64(len(popped)) || wl.Len() != 0 {
			t.Fatalf("%s: drained ledger popped=%d len=%d, want %d/0",
				name, c.Popped(), wl.Len(), len(popped))
		}
	}
}

// TestArrivalTagsConserved checks every Conserved worklist carries the
// open-loop arrival tags (Birth cycle and Class) through push and pop
// unchanged — the latency recorder depends on these surviving whatever
// chunking, rebinding, or heap moves the implementation performs.
func TestArrivalTagsConserved(t *testing.T) {
	const threads = 2
	for name, wl := range conservedLists(threads) {
		_, _, ctxs := testEnv(threads)
		want := map[int32]Task{}
		for i := int32(0); i < 300; i++ {
			tk := task(int64(i%7), i)
			tk.Birth = int64(1000 + 3*i)
			tk.Class = 1 + i%4
			want[i] = tk
			wl.Push(ctxs[int(i)%threads], tk)
		}
		got := drainAll(wl, ctxs)
		if len(got) != len(want) {
			t.Fatalf("%s: drained %d of %d tasks", name, len(got), len(want))
		}
		for _, tk := range got {
			w := want[tk.Node]
			if tk.Birth != w.Birth || tk.Class != w.Class {
				t.Fatalf("%s: task %d arrival tags mangled: birth %d/%d class %d/%d",
					name, tk.Node, tk.Birth, w.Birth, tk.Class, w.Class)
			}
		}
	}
}

// FuzzWorklist interprets a byte string as a push/pop/thread-switch
// program against every worklist, checking the conservation ledger and
// exact multiset recovery at the end of each run.
func FuzzWorklist(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0xff, 0x80, 0x40})
	f.Add([]byte("push pop push push pop"))
	f.Add([]byte{0xaa, 0x55, 0xaa, 0x55, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, prog []byte) {
		if len(prog) > 4096 {
			prog = prog[:4096]
		}
		const threads = 2
		for name, wl := range conservedLists(threads) {
			_, _, ctxs := testEnv(threads)
			live := 0
			next := int32(0)
			for i, b := range prog {
				ctx := ctxs[int(b>>7)&1]
				switch {
				case b%3 != 0:
					wl.Push(ctx, task(int64(b&0x3f), next))
					next++
					live++
				default:
					if _, ok := wl.Pop(ctx); ok {
						live--
					}
				}
				if wl.Len() != live {
					t.Fatalf("%s: Len=%d but %d tasks live after op %d", name, wl.Len(), live, i)
				}
			}
			checkLedger(t, name, wl)
			drained := drainAll(wl, ctxs)
			if len(drained) != live {
				t.Fatalf("%s: drain returned %d tasks, %d live", name, len(drained), live)
			}
			checkLedger(t, name, wl)
		}
	})
}
