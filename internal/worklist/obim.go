package worklist

import (
	"fmt"

	"minnow/internal/graph"
)

// OBIM is the Ordered-By-Integer-Metric partial-priority worklist (§2.1):
// priorities are discretized into buckets (bucket = priority >>
// lgInterval); buckets are processed in ascending order but the work
// inside a bucket is unordered. Each thread keeps a private push/pop chunk
// for its current bucket; everything else lives in per-socket bucket maps
// guarded by locks (the §6.2.1 topology optimization shards the map over
// `sockets` groups — Galois' original single-socket layout is sockets=1).
type OBIM struct {
	lgInterval uint
	threads    int
	sockets    int

	cur     []int64 // per-thread current push bucket
	popBkt  []int64 // per-thread current pop-chunk bucket
	push    []*chunk
	pop     []*chunk
	lvlAddr uint64  // shared "current level" line pops consult
	popCnt  []int64 // per-thread pop counter (rebind rate limiting)

	sock []*obimSocket

	arena *chunkArena
	descs *descArena
	size  int

	// GlobalPushes counts pushes that left the fast path, a measure of
	// how often OBIM's "changing buckets is rare" assumption fails.
	GlobalPushes int64
	TotalPushes  int64
	// Rebinds counts pop-chunk returns triggered by the shared level line.
	Rebinds int64

	popped int64
}

type obimSocket struct {
	lock    lock
	mapAddr uint64
	buckets map[int64][]*chunk
	minB    int64
}

// NewOBIM builds an OBIM worklist. lgInterval is the log2 bucket interval
// (0 = one priority per bucket); sockets shards the global structure.
func NewOBIM(as *graph.AddrSpace, threads, sockets int, lgInterval uint) *OBIM {
	if sockets < 1 {
		sockets = 1
	}
	if sockets > threads {
		sockets = threads
	}
	o := &OBIM{
		lgInterval: lgInterval,
		threads:    threads,
		sockets:    sockets,
		cur:        make([]int64, threads),
		popBkt:     make([]int64, threads),
		popCnt:     make([]int64, threads),
		push:       make([]*chunk, threads),
		pop:        make([]*chunk, threads),
		lvlAddr:    as.Alloc(64),
		arena:      newChunkArena(as, 8192),
		descs:      newDescArena(as, 1<<16),
	}
	for i := range o.cur {
		o.cur[i] = int64(1) << 62 // "no bucket yet"
		o.popBkt[i] = int64(1) << 62
	}
	for s := 0; s < sockets; s++ {
		o.sock = append(o.sock, &obimSocket{
			lock:    newLock(as),
			mapAddr: as.Alloc(4096),
			buckets: make(map[int64][]*chunk),
			minB:    int64(1) << 62,
		})
	}
	return o
}

// Name implements Worklist.
func (o *OBIM) Name() string { return fmt.Sprintf("obim-lg%d-s%d", o.lgInterval, o.sockets) }

// Len implements Worklist.
func (o *OBIM) Len() int { return o.size }

// Pushed implements Conserved.
func (o *OBIM) Pushed() int64 { return o.TotalPushes }

// Popped implements Conserved.
func (o *OBIM) Popped() int64 { return o.popped }

func (o *OBIM) socketOf(tid int) *obimSocket {
	return o.sock[tid*o.sockets/o.threads]
}

func (o *OBIM) bucketOf(priority int64) int64 {
	// Arithmetic shift keeps negative priorities ordered.
	return priority >> o.lgInterval
}

// Push implements Worklist.
func (o *OBIM) Push(ctx *Ctx, t Task) {
	tid := ctx.Core.ID
	t.Desc = o.descs.alloc(ctx.Core.ID)
	b := o.bucketOf(t.Priority)
	o.TotalPushes++
	o.size++

	ctx.TR.Compute(8) // priority→bucket math, descriptor setup
	ctx.TR.Store(t.Desc)

	if c := o.push[tid]; c != nil && b == o.cur[tid] && len(c.tasks) < chunkCap {
		// Fast path: same bucket, room in the private chunk.
		ctx.TR.Store(c.slotAddr(len(c.tasks)))
		c.tasks = append(c.tasks, t)
		ctx.flush()
		if len(c.tasks) == chunkCap {
			// Publish the full chunk so other threads can see it.
			s := o.socketOf(tid)
			s.lock.acquire(ctx)
			ctx.TR.Load(s.mapAddr, false, false)
			ctx.TR.Store(s.mapAddr)
			s.lock.release(ctx)
			o.bucketAppend(s, b, c)
			o.push[tid] = nil
		}
		return
	}
	o.GlobalPushes++
	o.globalPush(ctx, tid, b, t)
}

// globalPush publishes the thread's current chunk if it is full or holds
// a different bucket, then appends the task to a fresh chunk for bucket b.
func (o *OBIM) globalPush(ctx *Ctx, tid int, b int64, t Task) {
	s := o.socketOf(tid)
	// Retire the old private chunk to its bucket first.
	if c := o.push[tid]; c != nil && len(c.tasks) > 0 && (o.cur[tid] != b || len(c.tasks) >= chunkCap) {
		s.lock.acquire(ctx)
		ctx.TR.Load(s.mapAddr, false, false)
		ctx.TR.Compute(10)
		ctx.TR.Store(s.mapAddr)
		s.lock.release(ctx)
		o.bucketAppend(s, o.cur[tid], c)
		o.push[tid] = nil
	}
	if o.push[tid] == nil {
		o.push[tid] = o.arena.get()
		o.cur[tid] = b
		// New chunks for a new bucket: map lookup/insert under the lock.
		s.lock.acquire(ctx)
		ctx.TR.Load(s.mapAddr, false, false)
		ctx.TR.Load(s.mapAddr+128, false, true) // map node chase
		ctx.TR.Compute(12)
		ctx.TR.Store(s.mapAddr)
		s.lock.release(ctx)
		if b < s.minB {
			s.minB = b
		}
	}
	c := o.push[tid]
	ctx.TR.Store(c.slotAddr(len(c.tasks)))
	ctx.flush()
	c.tasks = append(c.tasks, t)
	if len(c.tasks) == chunkCap {
		s.lock.acquire(ctx)
		ctx.TR.Load(s.mapAddr, false, false)
		ctx.TR.Store(s.mapAddr)
		s.lock.release(ctx)
		o.bucketAppend(s, b, c)
		o.push[tid] = nil
	}
}

func (o *OBIM) bucketAppend(s *obimSocket, b int64, c *chunk) {
	s.buckets[b] = append(s.buckets[b], c)
	if b < s.minB {
		s.minB = b
	}
}

// globalMin returns the lowest bucket present in any socket map
// (bookkeeping; the simulated cost is the shared level-line load charged
// at each pop). Work hidden in other threads' private push chunks is
// invisible, as in the real implementation.
func (o *OBIM) globalMin() int64 {
	min := int64(1) << 62
	for _, s := range o.sock {
		if _, ok := s.buckets[s.minB]; !ok {
			s.minB = int64(1) << 62
			for b := range s.buckets {
				if b < s.minB {
					s.minB = b
				}
			}
		}
		if s.minB < min {
			min = s.minB
		}
	}
	return min
}

// Pop implements Worklist.
func (o *OBIM) Pop(ctx *Ctx) (Task, bool) {
	tid := ctx.Core.ID
	if c := o.pop[tid]; c != nil && len(c.tasks) > 0 {
		// OBIM threads watch a shared level line: when strictly better
		// work appears anywhere, the stale pop chunk goes back to its
		// bucket and the thread rebinds to the lowest level. The check
		// is rate-limited (every 4th pop) — per-pop rebinding causes
		// chunk-bounce storms under delta-stepping's bucket churn — so
		// both the level-line load and the min-bucket bookkeeping are
		// only performed on the pops that may actually rebind.
		o.popCnt[tid]++
		rebind := false
		if o.popCnt[tid]%4 == 0 {
			ctx.TR.Load(o.lvlAddr, false, false)
			rebind = o.globalMin() < o.popBkt[tid]
		}
		if rebind {
			o.Rebinds++
			s := o.socketOf(tid)
			s.lock.acquire(ctx)
			ctx.TR.Compute(8)
			ctx.TR.Store(s.mapAddr)
			s.lock.release(ctx)
			o.bucketAppend(s, o.popBkt[tid], c)
			o.pop[tid] = nil
		} else {
			t := c.tasks[0]
			c.tasks = c.tasks[1:]
			ctx.TR.Compute(6)
			ctx.TR.Load(c.slotAddr(len(c.tasks)), false, false)
			ctx.TR.Load(t.Desc, false, false)
			ctx.flush()
			o.size--
			o.popped++
			return t, true
		}
	}
	if c := o.pop[tid]; c != nil && len(c.tasks) == 0 {
		o.arena.put(c)
		o.pop[tid] = nil
	}
	if !o.refill(ctx, tid) {
		return Task{}, false
	}
	return o.Pop(ctx)
}

// refill takes a chunk from the socket holding the lowest non-empty
// bucket anywhere (remote probes cost a map read), falling back to
// draining private push chunks when every socket map is empty.
func (o *OBIM) refill(ctx *Ctx, tid int) bool {
	own := o.socketOf(tid)
	// Pick the socket with the lowest bucket (bookkeeping mirrors the
	// shared level line; remote probes are charged below).
	var best *obimSocket
	for _, s := range o.sock {
		if _, ok := s.buckets[s.minB]; !ok {
			s.minB = int64(1) << 62
			for b := range s.buckets {
				if b < s.minB {
					s.minB = b
				}
			}
		}
		if len(s.buckets) == 0 {
			continue
		}
		if best == nil || s.minB < best.minB || (s.minB == best.minB && s == own && best != own) {
			best = s
		}
	}
	// The thread's own private push chunk is visible to itself: prefer
	// it when it holds strictly better work than any published bucket.
	if c := o.push[tid]; c != nil && len(c.tasks) > 0 && (best == nil || o.cur[tid] < best.minB) {
		s := o.socketOf(tid)
		s.lock.acquire(ctx)
		ctx.TR.Compute(8)
		s.lock.release(ctx)
		o.pop[tid] = c
		o.popBkt[tid] = o.cur[tid]
		o.push[tid] = nil
		return true
	}
	if best != nil {
		if best != own {
			ctx.TR.Load(best.mapAddr, false, false) // remote map probe
			ctx.flush()
		}
		s := best
		s.lock.acquire(ctx)
		// Scan the ordered map for the lowest bucket.
		ctx.TR.Load(s.mapAddr, false, false)
		ctx.TR.Load(s.mapAddr+192, false, true)
		ctx.TR.Compute(16)
		list := s.buckets[s.minB]
		c := list[len(list)-1]
		list = list[:len(list)-1]
		if len(list) == 0 {
			delete(s.buckets, s.minB)
		} else {
			s.buckets[s.minB] = list
		}
		ctx.TR.Store(s.mapAddr)
		s.lock.release(ctx)
		o.pop[tid] = c
		o.popBkt[tid] = o.minBucketOf(s, c)
		return true
	}
	// Nothing in any socket map: drain private push chunks (own first).
	for probe := 0; probe < o.threads; probe++ {
		ot := (tid + probe) % o.threads
		if c := o.push[ot]; c != nil && len(c.tasks) > 0 {
			s := o.socketOf(ot)
			s.lock.acquire(ctx)
			ctx.TR.Compute(8)
			s.lock.release(ctx)
			o.pop[tid] = c
			o.popBkt[tid] = o.cur[ot]
			o.push[ot] = nil
			return true
		}
	}
	return false
}

func (o *OBIM) minBucketOf(s *obimSocket, c *chunk) int64 {
	if len(c.tasks) > 0 {
		return o.bucketOf(c.tasks[0].Priority)
	}
	return s.minB
}
