// Package worklist implements the software worklists the paper builds on:
// Galois-style chunked FIFO/LIFO, the OBIM partial-priority worklist
// (Lenharth et al.), and a strict priority queue (Dijkstra-style), each
// with an explicit micro-op cost model.
//
// The data-structure behaviour (which task comes out when) is executed for
// real, so work-efficiency effects are genuine; simultaneously each
// operation emits the loads/stores/atomics a tuned C++ implementation
// would perform against *shared simulated addresses*, so scheduling
// overhead, coherence traffic on queue heads, and lock serialization
// emerge from the memory model rather than being assumed.
//
// Determinism contract: pop order depends only on push order and the
// caller's thread ID (the min-time actor ordering serializes concurrent
// access), so worklist contents — including the Len the observability
// occupancy gauge reads — are reproducible at every simulated instant.
//
// Bound/weave placement: a worklist's pop order is exactly the state the
// (time, ID) actor ordering exists to serialize, so shared worklists are
// weave-only under sim.Engine.RunParallel. A worker whose next step pops
// therefore declares sim.HorizonAlwaysWeave — the explicit sentinel, not
// a computed 0 — unless its worklist (and everything behind it) is a
// private copy, or the step is a deferred idle backoff that touches no
// worklist at all (galois.Config.SharedHorizons).
package worklist

import (
	"minnow/internal/cpu"
	"minnow/internal/graph"
	"minnow/internal/sim"
	"minnow/internal/stats"
	"minnow/internal/uops"
)

// Task is one unit of scheduled work: an integer priority plus a payload
// (a Minnow task is "two 64-bit values: an integer priority and a pointer
// to the task data", §4.1). Lower priority values are scheduled first.
type Task struct {
	Priority int64
	Node     int32
	// EdgeLo/EdgeHi restrict the task to a sub-range of the node's edges
	// when task splitting (§6.2.1) is active. EdgeHi < 0 means the whole
	// node.
	EdgeLo, EdgeHi int32
	// Desc is the simulated address of the task descriptor.
	Desc uint64
	// Birth is the simulated cycle an open-loop arrival task was injected
	// (meaningful only when Class > 0); the retire path threads it into
	// the per-class sojourn/queue-wait latency statistics. Tasks travel
	// the whole scheduling fabric — software worklists, engine local and
	// spill queues, the global worklist — as Go values, so Birth and
	// Class survive every spill/fill/rescue path unchanged.
	Birth int64
	// Class tags an injected arrival task with 1 + its arrival-class
	// index. The zero value marks ordinary closed-loop work (seeded or
	// operator-generated), so the arrival layer is invisible when off.
	Class int32
}

// WholeNode reports whether the task covers all of its node's edges.
func (t Task) WholeNode() bool { return t.EdgeHi < 0 }

// Ctx carries the executing core and a reusable trace through worklist
// calls.
type Ctx struct {
	Core *cpu.Core
	TR   uops.Trace
	// Serial elides atomics (the optimized serial baseline "uses Galois
	// but has atomics removed", §6.3.1).
	Serial bool
}

// atomic emits an atomic RMW, or a plain load+store in serial mode.
func (c *Ctx) atomic(addr uint64) {
	if c.Serial {
		c.TR.Load(addr, false, false)
		c.TR.Store(addr)
	} else {
		c.TR.Atomic(addr)
	}
}

// flush runs the accumulated trace on the core under the worklist
// category.
func (c *Ctx) flush() {
	if len(c.TR.Ops) > 0 {
		c.Core.Run(c.TR.Ops, stats.CatWorklist)
		c.TR.Reset()
	}
}

// Worklist is the scheduler interface shared by software worklists and
// (via the galois framework's adapter) the Minnow engine.
type Worklist interface {
	// Push schedules a task, charging its cost to ctx.Core.
	Push(ctx *Ctx, t Task)
	// Pop returns the next task for ctx.Core's thread. ok=false means no
	// task was available *right now* (not necessarily termination).
	Pop(ctx *Ctx) (Task, bool)
	// Len returns the number of queued tasks (bookkeeping, zero cost).
	Len() int
	// Name identifies the policy in reports.
	Name() string
}

// Conserved is implemented by worklists that count lifetime pushes and
// pops, letting the harness invariant checker assert task conservation:
// at any quiescent point, Pushed() == Popped() + Len(). All three
// software worklists (fifo/lifo, obim, strict-pq) implement it.
type Conserved interface {
	// Pushed returns the lifetime number of tasks pushed.
	Pushed() int64
	// Popped returns the lifetime number of tasks successfully popped.
	Popped() int64
}

// lock models a spinlock-guarded critical section with pessimistic
// reservation: acquire reserves the lock for an estimated hold time and
// release truncates the reservation to the actual end. Contending cores
// spin (cycles charged to the worklist category).
type lock struct {
	addr   uint64
	freeAt sim.Time
	// Contentions counts acquisitions that had to wait.
	Contentions int64
}

const lockHoldEstimate = 60 // cycles reserved pessimistically at acquire

func newLock(as *graph.AddrSpace) lock {
	return lock{addr: as.Alloc(64)}
}

// acquire spins until the lock is free, then reserves it.
func (l *lock) acquire(ctx *Ctx) {
	ctx.atomic(l.addr)
	ctx.flush()
	if l.freeAt > ctx.Core.Now() {
		l.Contentions++
		ctx.Core.Advance(l.freeAt, stats.CatWorklist)
		// Retry CAS once the holder released.
		ctx.atomic(l.addr)
		ctx.flush()
	}
	l.freeAt = ctx.Core.Now() + lockHoldEstimate
}

// release ends the critical section at the core's current time.
func (l *lock) release(ctx *Ctx) {
	ctx.TR.Store(l.addr)
	ctx.flush()
	l.freeAt = ctx.Core.Now()
}

// descArena hands out simulated task-descriptor addresses from
// per-thread rings (Galois allocates scheduler metadata from per-thread
// allocators — a shared bump allocator would false-share descriptor lines
// between pushing threads). Descriptors are recycled FIFO, 16 bytes each
// (§4.1).
type descArena struct {
	base []uint64
	size uint64
	next []uint64
}

func newDescArena(as *graph.AddrSpace, entries int) *descArena {
	return newDescArenaThreads(as, entries, 64)
}

func newDescArenaThreads(as *graph.AddrSpace, entries, threads int) *descArena {
	a := &descArena{size: uint64(entries) * 16}
	for i := 0; i < threads; i++ {
		a.base = append(a.base, as.Alloc(a.size))
		a.next = append(a.next, 0)
	}
	return a
}

// alloc returns the next descriptor address from tid's ring.
func (a *descArena) alloc(tid int) uint64 {
	if tid >= len(a.base) {
		tid = len(a.base) - 1
	}
	d := a.base[tid] + a.next[tid]
	a.next[tid] += 16
	if a.next[tid] >= a.size {
		a.next[tid] = 0
	}
	return d
}

// chunk is a fixed-capacity run of tasks with a simulated base address.
// Chunks are the unit moved between local and global queues.
type chunk struct {
	addr  uint64
	tasks []Task
}

const chunkCap = 16

// chunkArena recycles chunk storage addresses.
type chunkArena struct {
	base uint64
	n    uint64
	next uint64
	free []*chunk
}

func newChunkArena(as *graph.AddrSpace, chunks int) *chunkArena {
	return &chunkArena{base: as.Alloc(uint64(chunks) * chunkCap * 16), n: uint64(chunks)}
}

func (a *chunkArena) get() *chunk {
	if n := len(a.free); n > 0 {
		c := a.free[n-1]
		a.free = a.free[:n-1]
		c.tasks = c.tasks[:0]
		return c
	}
	c := &chunk{addr: a.base + (a.next%a.n)*chunkCap*16, tasks: make([]Task, 0, chunkCap)}
	a.next++
	return c
}

func (a *chunkArena) put(c *chunk) {
	a.free = append(a.free, c)
}

// slotAddr returns the simulated address of slot i in the chunk.
func (c *chunk) slotAddr(i int) uint64 { return c.addr + uint64(i)*16 }
