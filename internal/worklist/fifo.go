package worklist

import "minnow/internal/graph"

// ChunkedQueue is the Galois dChunked{FIFO,LIFO} family: each thread owns
// a push chunk and a pop chunk touched without synchronization; full/empty
// chunks move through a shared global list guarded by a lock. LIFO mode
// (Carbon's policy, §3.1) pops the most recently pushed chunk and fills
// pop chunks from the same end.
type ChunkedQueue struct {
	lifo    bool
	threads int

	push []*chunk // per-thread chunk being filled
	pop  []*chunk // per-thread chunk being drained

	global []*chunk
	glock  lock
	ghead  uint64 // simulated address of the global list head

	arena  *chunkArena
	descs  *descArena
	size   int
	pushed int64
	popped int64
}

// NewFIFO builds a chunked FIFO for the given thread count.
func NewFIFO(as *graph.AddrSpace, threads int) *ChunkedQueue {
	return newChunked(as, threads, false)
}

// NewLIFO builds a chunked LIFO (the Carbon-like policy).
func NewLIFO(as *graph.AddrSpace, threads int) *ChunkedQueue {
	return newChunked(as, threads, true)
}

func newChunked(as *graph.AddrSpace, threads int, lifo bool) *ChunkedQueue {
	return &ChunkedQueue{
		lifo:    lifo,
		threads: threads,
		push:    make([]*chunk, threads),
		pop:     make([]*chunk, threads),
		glock:   newLock(as),
		ghead:   as.Alloc(64),
		arena:   newChunkArena(as, 4096),
		descs:   newDescArena(as, 1<<16),
	}
}

// Name implements Worklist.
func (q *ChunkedQueue) Name() string {
	if q.lifo {
		return "lifo"
	}
	return "fifo"
}

// Len implements Worklist.
func (q *ChunkedQueue) Len() int { return q.size }

// Pushed implements Conserved.
func (q *ChunkedQueue) Pushed() int64 { return q.pushed }

// Popped implements Conserved.
func (q *ChunkedQueue) Popped() int64 { return q.popped }

// Push implements Worklist.
func (q *ChunkedQueue) Push(ctx *Ctx, t Task) {
	tid := ctx.Core.ID
	t.Desc = q.descs.alloc(ctx.Core.ID)
	c := q.push[tid]
	if c == nil {
		c = q.arena.get()
		q.push[tid] = c
	}
	// Local fast path: write the descriptor and the chunk slot.
	ctx.TR.Compute(6)
	ctx.TR.Store(t.Desc)
	ctx.TR.Store(c.slotAddr(len(c.tasks)))
	c.tasks = append(c.tasks, t)
	q.size++
	q.pushed++
	if len(c.tasks) == chunkCap {
		// Publish the full chunk on the shared list.
		q.glock.acquire(ctx)
		ctx.TR.Compute(4)
		ctx.TR.Load(q.ghead, false, false)
		ctx.TR.Store(q.ghead)
		q.glock.release(ctx)
		q.global = append(q.global, c)
		q.push[tid] = nil
	}
	ctx.flush()
}

// Pop implements Worklist.
func (q *ChunkedQueue) Pop(ctx *Ctx) (Task, bool) {
	tid := ctx.Core.ID
	c := q.pop[tid]
	if c == nil || len(c.tasks) == 0 {
		if c != nil {
			q.arena.put(c)
			q.pop[tid] = nil
		}
		if !q.refill(ctx, tid) {
			return Task{}, false
		}
		c = q.pop[tid]
	}
	var t Task
	if q.lifo {
		t = c.tasks[len(c.tasks)-1]
		c.tasks = c.tasks[:len(c.tasks)-1]
	} else {
		t = c.tasks[0]
		c.tasks = c.tasks[1:]
	}
	ctx.TR.Compute(6)
	ctx.TR.Load(c.slotAddr(len(c.tasks)), false, false)
	ctx.TR.Load(t.Desc, false, false)
	ctx.flush()
	q.size--
	q.popped++
	return t, true
}

// refill moves a chunk from the global list (or steals the thread's own
// partially-filled push chunk) into the pop slot.
func (q *ChunkedQueue) refill(ctx *Ctx, tid int) bool {
	if len(q.global) > 0 {
		q.glock.acquire(ctx)
		ctx.TR.Compute(4)
		ctx.TR.Load(q.ghead, false, false)
		ctx.TR.Store(q.ghead)
		q.glock.release(ctx)
		var c *chunk
		if q.lifo {
			c = q.global[len(q.global)-1]
			q.global = q.global[:len(q.global)-1]
		} else {
			c = q.global[0]
			q.global = q.global[1:]
		}
		q.pop[tid] = c
		return true
	}
	// Fall back to the thread's own push chunk.
	if c := q.push[tid]; c != nil && len(c.tasks) > 0 {
		q.pop[tid] = c
		q.push[tid] = nil
		ctx.TR.Compute(4)
		ctx.flush()
		return true
	}
	// Steal another thread's push chunk (requires the lock).
	for o := 0; o < q.threads; o++ {
		if c := q.push[o]; o != tid && c != nil && len(c.tasks) > 0 {
			q.glock.acquire(ctx)
			ctx.TR.Load(q.ghead, false, false)
			ctx.TR.Compute(8)
			q.glock.release(ctx)
			q.pop[tid] = c
			q.push[o] = nil
			return true
		}
	}
	// Checked the global head and found nothing.
	ctx.TR.Load(q.ghead, false, false)
	ctx.flush()
	return false
}
