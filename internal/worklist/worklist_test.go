package worklist

import (
	"testing"
	"testing/quick"

	"minnow/internal/cpu"
	"minnow/internal/graph"
	"minnow/internal/mem"
	"minnow/internal/rng"
)

// testCtx builds a worklist context backed by a real core+memory system.
func testCtx(tid int, msys *mem.System) *Ctx {
	c := &Ctx{}
	c.Core = cpu.New(tid, cpu.DefaultConfig(), msys)
	return c
}

func testEnv(threads int) (*graph.AddrSpace, *mem.System, []*Ctx) {
	as := graph.NewAddrSpace()
	mcfg := mem.DefaultConfig(threads)
	mcfg.ScaleCaches(16)
	msys := mem.NewSystem(mcfg)
	ctxs := make([]*Ctx, threads)
	for i := range ctxs {
		ctxs[i] = testCtx(i, msys)
	}
	return as, msys, ctxs
}

func task(p int64, n int32) Task { return Task{Priority: p, Node: n, EdgeHi: -1} }

func drain(wl Worklist, ctx *Ctx) []Task {
	var out []Task
	for {
		t, ok := wl.Pop(ctx)
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

func TestFIFOOrder(t *testing.T) {
	as, _, ctxs := testEnv(1)
	wl := NewFIFO(as, 1)
	for i := int32(0); i < 40; i++ {
		wl.Push(ctxs[0], task(0, i))
	}
	got := drain(wl, ctxs[0])
	if len(got) != 40 {
		t.Fatalf("drained %d", len(got))
	}
	for i, tk := range got {
		if tk.Node != int32(i) {
			t.Fatalf("pop %d returned node %d (not FIFO)", i, tk.Node)
		}
	}
}

func TestLIFOOrderWithinChunk(t *testing.T) {
	as, _, ctxs := testEnv(1)
	wl := NewLIFO(as, 1)
	for i := int32(0); i < chunkCap; i++ { // one chunk's worth
		wl.Push(ctxs[0], task(0, i))
	}
	got := drain(wl, ctxs[0])
	for i, tk := range got {
		if tk.Node != int32(chunkCap-1-i) {
			t.Fatalf("pop %d returned node %d (not LIFO)", i, tk.Node)
		}
	}
}

func TestChunkedQueueCrossThreadVisibility(t *testing.T) {
	as, _, ctxs := testEnv(2)
	wl := NewFIFO(as, 2)
	for i := int32(0); i < 100; i++ {
		wl.Push(ctxs[0], task(0, i))
	}
	// Thread 1 must be able to drain work pushed by thread 0 (global
	// list + push-chunk stealing).
	got := drain(wl, ctxs[1])
	if len(got) != 100 {
		t.Fatalf("thread 1 drained %d of 100", len(got))
	}
}

func TestWorklistOpsCostCycles(t *testing.T) {
	as, _, ctxs := testEnv(1)
	wl := NewFIFO(as, 1)
	before := ctxs[0].Core.Now()
	for i := int32(0); i < 50; i++ {
		wl.Push(ctxs[0], task(0, i))
	}
	if ctxs[0].Core.Now() == before {
		t.Fatal("pushes consumed no simulated time")
	}
}

func TestOBIMPriorityOrder(t *testing.T) {
	as, _, ctxs := testEnv(1)
	wl := NewOBIM(as, 1, 1, 0) // exact buckets
	r := rng.New(1)
	for i := 0; i < 200; i++ {
		wl.Push(ctxs[0], task(int64(r.Intn(50)), int32(i)))
	}
	got := drain(wl, ctxs[0])
	if len(got) != 200 {
		t.Fatalf("drained %d", len(got))
	}
	// Single thread, lg0: pops must be non-decreasing in priority except
	// for the push-chunk leftovers at the tail; allow a small tolerance
	// by checking global sortedness of the first 90%.
	maxSoFar := int64(-1)
	violations := 0
	for _, tk := range got {
		if tk.Priority < maxSoFar {
			violations++
		}
		if tk.Priority > maxSoFar {
			maxSoFar = tk.Priority
		}
	}
	if violations > 20 {
		t.Fatalf("%d priority inversions in 200 pops", violations)
	}
}

func TestOBIMBucketing(t *testing.T) {
	as, _, ctxs := testEnv(1)
	wl := NewOBIM(as, 1, 1, 4) // buckets of 16
	wl.Push(ctxs[0], task(17, 1))
	wl.Push(ctxs[0], task(18, 2)) // same bucket: fast path
	if wl.GlobalPushes > 1 {
		t.Fatalf("same-bucket push left the fast path (%d global)", wl.GlobalPushes)
	}
	wl.Push(ctxs[0], task(170, 3)) // new bucket: slow path
	if wl.GlobalPushes < 2 {
		t.Fatal("bucket change did not go global")
	}
}

func TestOBIMSocketSharding(t *testing.T) {
	as, _, ctxs := testEnv(4)
	wl := NewOBIM(as, 4, 2, 0)
	for i := int32(0); i < 64; i++ {
		wl.Push(ctxs[int(i)%4], task(int64(i), i))
	}
	// Any thread can drain everything across shards.
	got := drain(wl, ctxs[0])
	if len(got) != 64 {
		t.Fatalf("drained %d of 64", len(got))
	}
}

func TestOBIMLevelRebind(t *testing.T) {
	as, _, ctxs := testEnv(2)
	wl := NewOBIM(as, 2, 1, 0)
	// Thread 0 acquires a chunk of priority-10 work.
	for i := int32(0); i < 8; i++ {
		wl.Push(ctxs[0], task(10, i))
	}
	first, ok := wl.Pop(ctxs[0])
	if !ok || first.Priority != 10 {
		t.Fatalf("setup pop: %+v %v", first, ok)
	}
	// Thread 1 publishes strictly better work (full chunk forces it into
	// the socket map).
	for i := int32(100); i < int32(100+chunkCap); i++ {
		wl.Push(ctxs[1], task(1, i))
	}
	// Thread 0 must switch to the better bucket within the rebind
	// rate-limit window (the check runs every 4th pop).
	switched := false
	for i := 0; i < 6 && !switched; i++ {
		got, ok := wl.Pop(ctxs[0])
		if !ok {
			t.Fatal("pop failed")
		}
		switched = got.Priority == 1
	}
	if !switched {
		t.Fatal("never rebound to the better bucket")
	}
}

func TestStrictPQExactOrder(t *testing.T) {
	as, _, ctxs := testEnv(1)
	wl := NewStrictPQ(as)
	r := rng.New(3)
	var want []int64
	for i := 0; i < 100; i++ {
		p := int64(r.Intn(1000))
		want = append(want, p)
		wl.Push(ctxs[0], task(p, int32(i)))
	}
	got := drain(wl, ctxs[0])
	prev := int64(-1)
	for _, tk := range got {
		if tk.Priority < prev {
			t.Fatalf("strict PQ inversion: %d after %d", tk.Priority, prev)
		}
		prev = tk.Priority
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d of %d", len(got), len(want))
	}
}

func TestLenTracksSize(t *testing.T) {
	as, _, ctxs := testEnv(1)
	for _, wl := range []Worklist{NewFIFO(as, 1), NewLIFO(as, 1), NewOBIM(as, 1, 1, 3), NewStrictPQ(as)} {
		for i := int32(0); i < 10; i++ {
			wl.Push(ctxs[0], task(int64(i), i))
		}
		if wl.Len() != 10 {
			t.Fatalf("%s Len %d, want 10", wl.Name(), wl.Len())
		}
		wl.Pop(ctxs[0])
		if wl.Len() != 9 {
			t.Fatalf("%s Len %d after pop, want 9", wl.Name(), wl.Len())
		}
	}
}

func TestNoTaskLossProperty(t *testing.T) {
	// Property: across random push/pop interleavings on random threads,
	// every pushed task is popped exactly once.
	if err := quick.Check(func(seed uint64) bool {
		as, _, ctxs := testEnv(3)
		wl := NewOBIM(as, 3, 2, 2)
		r := rng.New(seed)
		pushed := map[int32]bool{}
		popped := map[int32]bool{}
		next := int32(0)
		for i := 0; i < 300; i++ {
			tid := r.Intn(3)
			if r.Intn(2) == 0 || len(pushed) == 0 {
				wl.Push(ctxs[tid], task(int64(r.Intn(20)), next))
				pushed[next] = true
				next++
			} else if tk, ok := wl.Pop(ctxs[tid]); ok {
				if popped[tk.Node] {
					return false // double pop
				}
				popped[tk.Node] = true
			}
		}
		// Drain like the framework terminates: every worker polls until
		// all report empty (private pop chunks drain through their
		// owners).
		for {
			progress := false
			for _, ctx := range ctxs {
				for {
					tk, ok := wl.Pop(ctx)
					if !ok {
						break
					}
					if popped[tk.Node] {
						return false
					}
					popped[tk.Node] = true
					progress = true
				}
			}
			if !progress {
				break
			}
		}
		return len(popped) == len(pushed) && wl.Len() == 0
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSerialModeElidesAtomics(t *testing.T) {
	as, msys, _ := testEnv(1)
	ctx := testCtx(0, msys)
	ctx.Serial = true
	wl := NewFIFO(as, 1)
	for i := int32(0); i < int32(chunkCap+1); i++ { // forces a global push
		wl.Push(ctx, task(0, i))
	}
	if ctx.Core.Stat.Atomics != 0 {
		t.Fatalf("serial mode executed %d atomics", ctx.Core.Stat.Atomics)
	}
}

func TestOBIMNegativePriorities(t *testing.T) {
	// PR uses negative priorities (descending residual); arithmetic-shift
	// bucketing must keep them ordered before positive ones.
	as, _, ctxs := testEnv(1)
	wl := NewOBIM(as, 1, 1, 4)
	wl.Push(ctxs[0], task(100, 1))
	wl.Push(ctxs[0], task(-100, 2))
	wl.Push(ctxs[0], task(0, 3))
	var order []int32
	for {
		tk, ok := wl.Pop(ctxs[0])
		if !ok {
			break
		}
		order = append(order, tk.Node)
	}
	if len(order) != 3 || order[0] != 2 {
		t.Fatalf("negative priority not first: %v", order)
	}
	if order[len(order)-1] != 1 {
		t.Fatalf("largest priority not last: %v", order)
	}
}

func TestOBIMRebindIsRateLimited(t *testing.T) {
	as, _, ctxs := testEnv(2)
	wl := NewOBIM(as, 2, 1, 0)
	// Thread 0 binds to bucket-10 work first; better work appears only
	// afterwards, so switching requires a rebind.
	for i := int32(0); i < 2*chunkCap; i++ {
		wl.Push(ctxs[0], task(10, i))
	}
	if tk, ok := wl.Pop(ctxs[0]); !ok || tk.Priority != 10 {
		t.Fatalf("setup pop %+v %v", tk, ok)
	}
	for i := int32(100); i < int32(100+chunkCap); i++ {
		wl.Push(ctxs[1], task(1, i))
	}
	before := wl.Rebinds
	for i := 0; i < 8; i++ {
		wl.Pop(ctxs[0])
	}
	rebinds := wl.Rebinds - before
	if rebinds == 0 {
		t.Fatal("never rebound to better work")
	}
	if rebinds > 3 {
		t.Fatalf("rebinds not rate limited: %d in 8 pops", rebinds)
	}
}

func TestPerThreadDescriptorArenas(t *testing.T) {
	as, _, ctxs := testEnv(2)
	wl := NewFIFO(as, 2)
	wl.Push(ctxs[0], task(0, 1))
	wl.Push(ctxs[1], task(0, 2))
	t0, _ := wl.Pop(ctxs[0])
	t1, _ := wl.Pop(ctxs[0])
	// Descriptors allocated by different threads must not share a cache
	// line (the false-sharing fix).
	if t0.Desc>>6 == t1.Desc>>6 {
		t.Fatalf("descriptors share a line: %x %x", t0.Desc, t1.Desc)
	}
}

func TestOBIMPrefersOwnBetterChunk(t *testing.T) {
	as, _, ctxs := testEnv(1)
	wl := NewOBIM(as, 1, 1, 0)
	// Publish a bucket-10 chunk, then hold strictly better private work.
	for i := int32(0); i < chunkCap; i++ {
		wl.Push(ctxs[0], task(10, i))
	}
	wl.Push(ctxs[0], task(1, 99)) // stays in the private push chunk
	tk, ok := wl.Pop(ctxs[0])
	if !ok || tk.Priority != 1 {
		t.Fatalf("popped %+v, want the better private task", tk)
	}
}
