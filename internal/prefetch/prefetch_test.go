package prefetch

import (
	"testing"

	"minnow/internal/mem"
	"minnow/internal/sim"
)

func testMem() *mem.System {
	cfg := mem.DefaultConfig(1)
	cfg.ScaleCaches(16)
	return mem.NewSystem(cfg)
}

func TestStrideDetectsAndPrefetches(t *testing.T) {
	m := testMem()
	p := NewStride(0, m, 4)
	const pc = 0x41
	base := uint64(0x100000)
	for i := uint64(0); i < 10; i++ {
		p.OnLoad(pc, base+i*64, sim.Time(i*100))
	}
	if p.Issued == 0 {
		t.Fatal("stride prefetcher never fired")
	}
	// Distance-4 target of the last trained load should now be in L2.
	target := base + 9*64 + 4*64
	if !m.L2(0).Contains(mem.LineAddr(target)) {
		t.Fatal("prefetched line not resident")
	}
}

func TestStrideIgnoresUntaggedLoads(t *testing.T) {
	m := testMem()
	p := NewStride(0, m, 4)
	for i := uint64(0); i < 10; i++ {
		p.OnLoad(0, 0x100000+i*64, 0) // pc 0: stack traffic
	}
	if p.Issued != 0 {
		t.Fatalf("untrained prefetcher issued %d", p.Issued)
	}
}

func TestStrideRetrainsOnStrideChange(t *testing.T) {
	m := testMem()
	p := NewStride(0, m, 4)
	const pc = 0x41
	for i := uint64(0); i < 6; i++ {
		p.OnLoad(pc, 0x100000+i*64, 0)
	}
	issued := p.Issued
	// Change stride: confidence resets, no immediate prefetch.
	p.OnLoad(pc, 0x200000, 0)
	p.OnLoad(pc, 0x200100, 0)
	if p.Issued != issued {
		t.Fatal("prefetched before re-training")
	}
	p.OnLoad(pc, 0x200200, 0)
	p.OnLoad(pc, 0x200300, 0)
	if p.Issued == issued {
		t.Fatal("did not re-train on the new stride")
	}
}

func TestIMPLearnsIndirectPattern(t *testing.T) {
	m := testMem()
	// Index array at 0x100000 with stride 16; targets resolve to
	// 0x800000 + 1024*index.
	resolve := func(addr uint64) (uint64, bool) {
		if addr < 0x100000 || addr >= 0x200000 {
			return 0, false
		}
		idx := (addr - 0x100000) / 16
		return 0x800000 + idx*1024, true
	}
	p := NewIMP(0, m, 4, resolve)
	const idxPC, tgtPC = 0x41, 0x42
	for i := uint64(0); i < 12; i++ {
		idxAddr := 0x100000 + i*16
		p.OnLoad(idxPC, idxAddr, sim.Time(i*200))
		tgt, _ := resolve(idxAddr)
		p.OnLoad(tgtPC, tgt, sim.Time(i*200+50))
	}
	if p.Issued == 0 {
		t.Fatal("IMP never issued")
	}
	// After training, the indirect target of (last index + distance)
	// should be prefetched into the L2.
	lastIdx := 0x100000 + 11*16
	futureTgt, _ := resolve(uint64(lastIdx) + 4*16)
	if !m.L2(0).Contains(mem.LineAddr(futureTgt)) {
		t.Fatal("indirect target not prefetched")
	}
}

func TestIMPShortArraysMissEverything(t *testing.T) {
	// The §6.3.3 failure mode: with degree < prefetch distance, IMP's
	// distance-4 prefetches always land beyond the streamed array.
	m := testMem()
	resolve := func(addr uint64) (uint64, bool) { return 0, false }
	p := NewIMP(0, m, 4, resolve)
	const pc = 0x41
	// Stream 3-element runs at unrelated bases: stride confidence never
	// persists long enough within a run to cover it.
	issuedUseful := 0
	for run := uint64(0); run < 20; run++ {
		base := 0x100000 + run*0x10000
		for i := uint64(0); i < 3; i++ {
			p.OnLoad(pc, base+i*16, 0)
			// A useful prefetch would be within this run's 3 elements.
			for j := uint64(0); j < 3; j++ {
				line := mem.LineAddr(base + j*16)
				_ = line
			}
		}
		_ = issuedUseful
	}
	// The runs share a PC: stride keeps getting reset by the inter-run
	// jumps, so almost nothing issues.
	if p.Issued > 10 {
		t.Fatalf("IMP issued %d prefetches on 3-element runs", p.Issued)
	}
}

func TestIMPWithoutResolve(t *testing.T) {
	m := testMem()
	p := NewIMP(0, m, 4, nil)
	for i := uint64(0); i < 10; i++ {
		p.OnLoad(0x41, 0x100000+i*16, 0)
	}
	// Stride part still works; indirect part silently disabled.
	if p.Issued == 0 {
		t.Fatal("stride component inactive")
	}
}
