// Package prefetch implements the hardware-prefetcher baselines the paper
// compares against in §6.3.3: a classic PC-indexed stride prefetcher and
// IMP, the Indirect Memory Prefetcher (Yu et al., MICRO'15), which extends
// stride detection to the A[B[i]] pattern.
//
// Both snoop the core's demand-load stream via the cpu.Prefetcher hook and
// issue HWPrefetch fills into the L2. They are reactive and
// distance-based: they only act once the processor is already streaming
// through an index array, and they have no feedback throttling — the two
// structural weaknesses §6.3.3 contrasts with worklist-directed
// prefetching.
//
// Determinism contract: both prefetchers react only to the demand-load
// stream and their own table state; no sampling or randomness is involved,
// so the issued prefetch sequence is reproducible.
package prefetch

import (
	"minnow/internal/mem"
	"minnow/internal/sim"
)

// strideEntry is one stride-table row.
type strideEntry struct {
	lastAddr uint64
	stride   int64
	conf     int8
}

// Stride is a PC-indexed stride prefetcher with a configurable prefetch
// distance.
type Stride struct {
	core     int
	mem      *mem.System
	table    map[uint64]*strideEntry
	distance int64
	maxPC    int // table capacity

	Issued int64
}

// NewStride builds a stride prefetcher for one core.
func NewStride(core int, m *mem.System, distance int) *Stride {
	return &Stride{core: core, mem: m, table: make(map[uint64]*strideEntry), distance: int64(distance), maxPC: 256}
}

// OnLoad implements cpu.Prefetcher.
func (s *Stride) OnLoad(pc, addr uint64, at sim.Time) {
	if pc == 0 {
		return // untagged (stack) traffic does not train
	}
	e := s.table[pc]
	if e == nil {
		if len(s.table) >= s.maxPC {
			return
		}
		s.table[pc] = &strideEntry{lastAddr: addr}
		return
	}
	d := int64(addr) - int64(e.lastAddr)
	e.lastAddr = addr
	if d == 0 {
		return
	}
	if d == e.stride {
		if e.conf < 4 {
			e.conf++
		}
	} else {
		e.stride = d
		e.conf = 0
		return
	}
	if e.conf >= 2 {
		target := uint64(int64(addr) + e.stride*s.distance)
		s.mem.Access(s.core, target, mem.HWPrefetch, at)
		s.Issued++
	}
}

// IMP is the Indirect Memory Prefetcher: a stride table plus an
// indirect-pattern table that learns (indexPC → targetPC) correlations of
// the form target = f(index value) and prefetches the target of the index
// element `distance` ahead. Per §6.3.3 the tables are the re-tuned
// (quadrupled) sizes and the prefetch distance is 4.
type IMP struct {
	core     int
	mem      *mem.System
	distance int64

	stride map[uint64]*strideEntry

	// indirect[indexPC] learns which target loads follow index loads.
	indirect map[uint64]*indirectEntry

	// Resolve maps an index-array element address to the target address
	// its value points at (the hardware reads the prefetched index value
	// from the cache; the harness supplies CSR semantics).
	Resolve func(indexAddr uint64) (target uint64, ok bool)

	lastIndexPC   uint64
	lastIndexAddr uint64

	Issued int64
}

type indirectEntry struct {
	targetSeen int32 // hits of the index→target pairing
	enabled    bool
}

// NewIMP builds an IMP instance for one core. resolve supplies the
// index-value semantics (for CSR graphs: edge-record address → destination
// node address).
func NewIMP(core int, m *mem.System, distance int, resolve func(uint64) (uint64, bool)) *IMP {
	return &IMP{
		core:     core,
		mem:      m,
		distance: int64(distance),
		stride:   make(map[uint64]*strideEntry),
		indirect: make(map[uint64]*indirectEntry),
		Resolve:  resolve,
	}
}

// OnLoad implements cpu.Prefetcher.
func (p *IMP) OnLoad(pc, addr uint64, at sim.Time) {
	if pc == 0 {
		return
	}
	// Stride detection (the index-array stream).
	e := p.stride[pc]
	if e == nil {
		if len(p.stride) < 1024 { // 4x-tuned table
			p.stride[pc] = &strideEntry{lastAddr: addr}
		}
		return
	}
	d := int64(addr) - int64(e.lastAddr)
	e.lastAddr = addr

	if d != 0 && d == e.stride && e.conf < 4 {
		e.conf++
	} else if d != 0 && d != e.stride {
		e.stride = d
		e.conf = 0
	}

	if e.conf >= 2 {
		// Streaming index array: prefetch distance elements ahead, and
		// resolve the indirect target of that element.
		idxTarget := uint64(int64(addr) + e.stride*p.distance)
		p.mem.Access(p.core, idxTarget, mem.HWPrefetch, at)
		p.Issued++
		if ind := p.indirect[pc]; ind != nil && ind.enabled && p.Resolve != nil {
			if tgt, ok := p.Resolve(idxTarget); ok {
				p.mem.Access(p.core, tgt, mem.HWPrefetch, at)
				p.Issued++
			}
		}
		p.lastIndexPC, p.lastIndexAddr = pc, addr
		return
	}

	// Indirect-pattern training: a non-strided load right after a strided
	// index load whose value resolves to this address establishes the
	// A[B[i]] correlation.
	if p.lastIndexPC != 0 && p.Resolve != nil {
		if tgt, ok := p.Resolve(p.lastIndexAddr); ok && mem.LineAddr(tgt) == mem.LineAddr(addr) {
			ind := p.indirect[p.lastIndexPC]
			if ind == nil {
				if len(p.indirect) < 64 {
					ind = &indirectEntry{}
					p.indirect[p.lastIndexPC] = ind
				}
			}
			if ind != nil {
				ind.targetSeen++
				if ind.targetSeen >= 2 {
					ind.enabled = true
				}
			}
		}
	}
}
