package tlb

import "testing"

func testConfig() Config {
	c := DefaultConfig()
	c.L1Entries, c.L1Assoc = 4, 2
	c.L2Entries, c.L2Assoc = 16, 4
	return c
}

func TestHitAfterWalk(t *testing.T) {
	tl := New(testConfig())
	addr := uint64(0x1234567)
	first := tl.Translate(addr)
	if first != testConfig().L2HitCycles+testConfig().WalkCycles {
		t.Fatalf("cold translate cost %d", first)
	}
	if got := tl.Translate(addr); got != testConfig().L1HitCycles {
		t.Fatalf("warm translate cost %d", got)
	}
	if tl.Walks != 1 {
		t.Fatalf("walks %d", tl.Walks)
	}
}

func TestL2Inclusion(t *testing.T) {
	tl := New(testConfig())
	// Fill beyond L1 capacity within one L1 set: all these pages map to
	// different sets generally; just check L1 miss/L2 hit path works.
	pages := []uint64{0, 1, 2, 3, 4, 5, 6, 7}
	for _, p := range pages {
		tl.Translate(p << PageShift)
	}
	// Page 0 may have fallen out of the tiny L1 but must still hit L2.
	walks := tl.Walks
	cost := tl.Translate(0)
	if tl.Walks != walks {
		t.Fatalf("L2 lost an entry (cost %d)", cost)
	}
}

func TestCapacityEviction(t *testing.T) {
	tl := New(testConfig())
	// 64 distinct pages overflow the 16-entry L2: re-touching page 0
	// must walk again.
	for p := uint64(0); p < 64; p++ {
		tl.Translate(p << PageShift)
	}
	walks := tl.Walks
	tl.Translate(0)
	if tl.Walks != walks+1 {
		t.Fatal("expected a walk after capacity eviction")
	}
}

func TestEngineTranslate(t *testing.T) {
	cfg := testConfig()
	tl := New(cfg)
	d, exc := tl.EngineTranslate(0x9000)
	if !exc {
		t.Fatal("cold engine access did not raise an exception")
	}
	if d != cfg.L2HitCycles+cfg.ExcCycles+cfg.WalkCycles {
		t.Fatalf("engine miss cost %d", d)
	}
	d, exc = tl.EngineTranslate(0x9000)
	if exc {
		t.Fatal("retry missed after refill")
	}
	if d != cfg.L2HitCycles {
		t.Fatalf("engine hit cost %d", d)
	}
	if tl.EngMisses != 1 {
		t.Fatalf("engine misses %d", tl.EngMisses)
	}
}

func TestEngineSeesCoreTranslations(t *testing.T) {
	tl := New(testConfig())
	tl.Translate(0x5000) // core walk installs into L2
	if _, exc := tl.EngineTranslate(0x5000); exc {
		t.Fatal("engine missed a page the core just walked")
	}
}

func TestSamePageSharesEntry(t *testing.T) {
	tl := New(testConfig())
	tl.Translate(0x2000)
	if got := tl.Translate(0x2fff); got != 0 {
		t.Fatalf("same-page access cost %d", got)
	}
}
