// Package tlb models per-core address translation: a small L1 TLB backed
// by a larger L2 TLB (inclusive, as §4 of the paper assumes), with a fixed
// page-walk cost on an L2 TLB miss.
//
// Minnow engines translate through their core's L2 TLB only; an engine
// access that misses the L2 TLB raises an exception serviced by the host
// core (minnow_enqueue/dequeue "may cause TLB miss exception").
//
// Determinism contract: TLB state evolves only through the translated
// access stream (LRU over page numbers), so identical address sequences
// always hit and miss identically.
package tlb

import "minnow/internal/sim"

// PageShift is log2 of the 4 KiB page size.
const PageShift = 12

// Config sets TLB sizes and penalties.
type Config struct {
	L1Entries     int
	L2Entries     int
	L1Assoc       int
	L2Assoc       int
	L1HitCycles   sim.Time // extra cycles on an L1 TLB hit (pipelined: 0)
	L2HitCycles   sim.Time // extra cycles on L1 miss / L2 hit
	WalkCycles    sim.Time // page table walk on full miss
	ExcCycles     sim.Time // host-core exception overhead for engine misses
	EngineRefills bool     // engine misses install into the L2 TLB
}

// DefaultConfig approximates a Skylake-class TLB.
func DefaultConfig() Config {
	return Config{
		L1Entries:     64,
		L2Entries:     1536,
		L1Assoc:       4,
		L2Assoc:       12,
		L1HitCycles:   0,
		L2HitCycles:   7,
		WalkCycles:    100,
		ExcCycles:     150,
		EngineRefills: true,
	}
}

type set struct {
	tags []uint64
	lru  []uint64
}

type level struct {
	sets  []set
	assoc int
	tick  uint64
}

func newLevel(entries, assoc int) *level {
	if assoc < 1 {
		assoc = 1
	}
	nsets := entries / assoc
	if nsets < 1 {
		nsets = 1
	}
	l := &level{assoc: assoc, sets: make([]set, nsets)}
	for i := range l.sets {
		l.sets[i] = set{tags: make([]uint64, assoc), lru: make([]uint64, assoc)}
	}
	// Tag 0 is a valid page number; use an impossible sentinel.
	for i := range l.sets {
		for w := range l.sets[i].tags {
			l.sets[i].tags[w] = ^uint64(0)
		}
	}
	return l
}

func (l *level) lookup(page uint64, insert bool) bool {
	l.tick++
	s := &l.sets[page%uint64(len(l.sets))]
	for w, t := range s.tags {
		if t == page {
			s.lru[w] = l.tick
			return true
		}
	}
	if insert {
		victim := 0
		for w := 1; w < l.assoc; w++ {
			if s.lru[w] < s.lru[victim] {
				victim = w
			}
		}
		s.tags[victim] = page
		s.lru[victim] = l.tick
	}
	return false
}

// TLB is one core's two-level TLB.
type TLB struct {
	cfg Config
	l1  *level
	l2  *level

	L1Misses  int64
	L2Misses  int64
	Walks     int64
	EngMisses int64 // engine-side L2 TLB misses (exceptions)
}

// New returns a TLB with the given configuration.
func New(cfg Config) *TLB {
	return &TLB{cfg: cfg, l1: newLevel(cfg.L1Entries, cfg.L1Assoc), l2: newLevel(cfg.L2Entries, cfg.L2Assoc)}
}

// Translate models a core-side access to addr at time t and returns the
// translation delay in cycles.
func (t *TLB) Translate(addr uint64) sim.Time {
	page := addr >> PageShift
	if t.l1.lookup(page, false) {
		return t.cfg.L1HitCycles
	}
	t.L1Misses++
	if t.l2.lookup(page, false) {
		t.l1.lookup(page, true)
		return t.cfg.L2HitCycles
	}
	t.L2Misses++
	t.Walks++
	t.l2.lookup(page, true)
	t.l1.lookup(page, true)
	return t.cfg.L2HitCycles + t.cfg.WalkCycles
}

// EngineTranslate models a Minnow-engine access, which consults only the
// L2 TLB. On a miss the engine raises an exception to the host core; the
// returned delay includes the exception service and the walk, and the
// translation is installed so retries hit.
func (t *TLB) EngineTranslate(addr uint64) (delay sim.Time, exception bool) {
	page := addr >> PageShift
	if t.l2.lookup(page, false) {
		return t.cfg.L2HitCycles, false
	}
	t.EngMisses++
	t.Walks++
	if t.cfg.EngineRefills {
		t.l2.lookup(page, true)
	}
	return t.cfg.L2HitCycles + t.cfg.ExcCycles + t.cfg.WalkCycles, true
}
