package stats

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// RunSummary is the JSON-serializable deterministic digest of a Run: every
// counter the simulator guarantees to reproduce for a given configuration
// and seed, and nothing else (the event trace is excluded — it is a
// bounded ring buffer whose contents depend on its configured depth, not
// on the simulated execution alone). Two runs of the same configuration
// must produce byte-identical summaries; VerifyDeterminism and the -race
// harness tests compare them.
type RunSummary struct {
	Name       string `json:"name"`
	Threads    int    `json:"threads"`
	WallCycles int64  `json:"wall_cycles"`
	SimSteps   int64  `json:"sim_steps"`
	TimedOut   bool   `json:"timed_out"`

	Cores   []CoreStats   `json:"cores"`
	L2      CacheStats    `json:"l2"`
	L3      CacheStats    `json:"l3"`
	Engines []EngineStats `json:"engines,omitempty"`

	WorkItems   int64    `json:"work_items"`
	DRAMReads   int64    `json:"dram_reads"`
	DRAMRows    int64    `json:"dram_rows"`
	InvMsgs     int64    `json:"inv_msgs"`
	DRAMStall   int64    `json:"dram_stall"`
	NoCStall    int64    `json:"noc_stall"`
	AvgLoadLat  float64  `json:"avg_load_lat"`
	DirtyRemote int64    `json:"dirty_remote"`
	LatByLevel  [5]int64 `json:"lat_by_level"`
	CntByLevel  [5]int64 `json:"cnt_by_level"`

	WastePFEvict     int64 `json:"waste_pf_evict"`
	WasteDemandEvict int64 `json:"waste_demand_evict"`
	WasteInval       int64 `json:"waste_inval"`
	L1Shielded       int64 `json:"l1_shielded"`
}

// Summary extracts the deterministic portion of the run for cross-run
// comparison and serialization.
func (r *Run) Summary() RunSummary {
	return RunSummary{
		Name:       r.Name,
		Threads:    r.Threads,
		WallCycles: r.WallCycles,
		SimSteps:   r.SimSteps,
		TimedOut:   r.TimedOut,

		Cores:   r.Cores,
		L2:      r.L2,
		L3:      r.L3,
		Engines: r.Engines,

		WorkItems:   r.WorkItems,
		DRAMReads:   r.DRAMReads,
		DRAMRows:    r.DRAMRows,
		InvMsgs:     r.InvMsgs,
		DRAMStall:   r.DRAMStall,
		NoCStall:    r.NoCStall,
		AvgLoadLat:  r.AvgLoadLat,
		DirtyRemote: r.DirtyRemote,
		LatByLevel:  r.LatByLevel,
		CntByLevel:  r.CntByLevel,

		WastePFEvict:     r.WastePFEvict,
		WasteDemandEvict: r.WasteDemandEvict,
		WasteInval:       r.WasteInval,
		L1Shielded:       r.L1Shielded,
	}
}

// JSON renders the summary in canonical form (encoding/json emits struct
// fields in declaration order, so equal summaries marshal identically).
func (s RunSummary) JSON() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// Only unsupported types can fail here, and the summary has none.
		panic("stats: summary marshal: " + err.Error())
	}
	return b
}

// Hash returns a stable hex digest of the summary's canonical JSON, the
// per-core-stats fingerprint the determinism checker compares across
// repeated runs.
func (s RunSummary) Hash() string {
	sum := sha256.Sum256(s.JSON())
	return hex.EncodeToString(sum[:])
}
