package stats

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// RunSummary is the JSON-serializable deterministic digest of a Run: every
// counter the simulator guarantees to reproduce for a given configuration
// and seed, and nothing else. The observability attachments are excluded
// by design: the event trace is a bounded ring whose contents depend on
// its configured depth, the interval registry and timeline depend on
// the operator-chosen sampling interval, and the cycle-attribution
// profile is a refinement of counters already summarized — none of them
// may influence (or be influenced by) anything summarized here. Enabling observability must
// leave the summary byte-identical; the harness obs tests assert it. Two
// runs of the same configuration must produce byte-identical summaries;
// VerifyDeterminism and the -race harness tests compare them.
// Every field mirrors the Run field of the same name; see Run for the
// per-field semantics.
type RunSummary struct {
	Name       string `json:"name"`        // benchmark name
	Threads    int    `json:"threads"`     // simulated core count
	WallCycles int64  `json:"wall_cycles"` // end-to-end simulated cycles
	SimSteps   int64  `json:"sim_steps"`   // discrete-event actor steps
	TimedOut   bool   `json:"timed_out"`   // hit the work budget

	Cores   []CoreStats   `json:"cores"`             // per-core breakdowns
	L2      CacheStats    `json:"l2"`                // aggregated L2 counters
	L3      CacheStats    `json:"l3"`                // aggregated L3 counters
	Engines []EngineStats `json:"engines,omitempty"` // per-engine activity

	WorkItems   int64    `json:"work_items"`   // operator applications
	DRAMReads   int64    `json:"dram_reads"`   // lines read from DRAM
	DRAMRows    int64    `json:"dram_rows"`    // distinct row activations
	InvMsgs     int64    `json:"inv_msgs"`     // coherence invalidations
	DRAMStall   int64    `json:"dram_stall"`   // cycles queued at DRAM
	NoCStall    int64    `json:"noc_stall"`    // cycles flits waited for links
	AvgLoadLat  float64  `json:"avg_load_lat"` // mean demand-load latency
	DirtyRemote int64    `json:"dirty_remote"` // reads from remote dirty copies
	LatByLevel  [5]int64 `json:"lat_by_level"` // summed load latency by level
	CntByLevel  [5]int64 `json:"cnt_by_level"` // load count by level

	WastePFEvict     int64 `json:"waste_pf_evict"`     // prefetches evicted by prefetches
	WasteDemandEvict int64 `json:"waste_demand_evict"` // prefetches evicted by demand
	WasteInval       int64 `json:"waste_inval"`        // prefetches invalidated
	L1Shielded       int64 `json:"l1_shielded"`        // L2 prefetch hits behind L1 hits

	Faults *FaultStats `json:"faults,omitempty"` // injected-fault activity (nil when off)

	Latency *LatencyStats `json:"latency,omitempty"` // open-loop arrival latency (nil when off)
}

// Summary extracts the deterministic portion of the run for cross-run
// comparison and serialization.
func (r *Run) Summary() RunSummary {
	return RunSummary{
		Name:       r.Name,
		Threads:    r.Threads,
		WallCycles: r.WallCycles,
		SimSteps:   r.SimSteps,
		TimedOut:   r.TimedOut,

		Cores:   r.Cores,
		L2:      r.L2,
		L3:      r.L3,
		Engines: r.Engines,

		WorkItems:   r.WorkItems,
		DRAMReads:   r.DRAMReads,
		DRAMRows:    r.DRAMRows,
		InvMsgs:     r.InvMsgs,
		DRAMStall:   r.DRAMStall,
		NoCStall:    r.NoCStall,
		AvgLoadLat:  r.AvgLoadLat,
		DirtyRemote: r.DirtyRemote,
		LatByLevel:  r.LatByLevel,
		CntByLevel:  r.CntByLevel,

		WastePFEvict:     r.WastePFEvict,
		WasteDemandEvict: r.WasteDemandEvict,
		WasteInval:       r.WasteInval,
		L1Shielded:       r.L1Shielded,

		Faults: r.Faults,

		Latency: r.Latency,
	}
}

// JSON renders the summary in canonical form (encoding/json emits struct
// fields in declaration order, so equal summaries marshal identically).
func (s RunSummary) JSON() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// Only unsupported types can fail here, and the summary has none.
		panic("stats: summary marshal: " + err.Error())
	}
	return b
}

// Hash returns a stable hex digest of the summary's canonical JSON, the
// per-core-stats fingerprint the determinism checker compares across
// repeated runs.
func (s RunSummary) Hash() string {
	sum := sha256.Sum256(s.JSON())
	return hex.EncodeToString(sum[:])
}
