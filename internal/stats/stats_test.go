package stats

import (
	"math"
	"strings"
	"testing"
)

func TestCycleCatString(t *testing.T) {
	cases := map[CycleCat]string{
		CatUseful:    "useful",
		CatWorklist:  "worklist",
		CatLoadMiss:  "load-miss",
		CatStoreMiss: "store-miss",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestBreakdownSumsToOne(t *testing.T) {
	r := &Run{Cores: []CoreStats{{Cycles: [4]int64{10, 20, 30, 40}}, {Cycles: [4]int64{5, 5, 5, 5}}}}
	bd := r.Breakdown()
	var sum float64
	for _, f := range bd {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("breakdown sums to %v", sum)
	}
	if math.Abs(bd[0]-15.0/120) > 1e-12 {
		t.Fatalf("useful fraction %v", bd[0])
	}
}

func TestBreakdownEmpty(t *testing.T) {
	r := &Run{}
	bd := r.Breakdown()
	for _, f := range bd {
		if f != 0 {
			t.Fatal("empty run has nonzero breakdown")
		}
	}
}

func TestL2MPKI(t *testing.T) {
	r := &Run{
		Cores: []CoreStats{{Instrs: 2000}},
		L2:    CacheStats{Misses: 50},
	}
	if got := r.L2MPKI(); got != 25 {
		t.Fatalf("MPKI = %v, want 25", got)
	}
	empty := &Run{}
	if empty.L2MPKI() != 0 {
		t.Fatal("empty run MPKI != 0")
	}
}

func TestDelinquentDensity(t *testing.T) {
	r := &Run{Cores: []CoreStats{{Loads: 100, Delinquent: 10}, {Loads: 100, Delinquent: 30}}}
	if got := r.DelinquentDensity(); got != 0.2 {
		t.Fatalf("density %v, want 0.2", got)
	}
}

func TestEfficiency(t *testing.T) {
	c := CacheStats{PrefetchFills: 100, PrefetchUsed: 98}
	if c.Efficiency() != 0.98 {
		t.Fatalf("efficiency %v", c.Efficiency())
	}
	empty := CacheStats{}
	if empty.Efficiency() != 1 {
		t.Fatal("no-prefetch efficiency should be 1")
	}
}

func TestAvgOpCycles(t *testing.T) {
	r := &Run{Cores: []CoreStats{{EnqOps: 4, EnqCycles: 100, DeqOps: 2, DeqCycles: 30}}}
	if r.AvgEnqCycles() != 25 {
		t.Fatalf("enq %v", r.AvgEnqCycles())
	}
	if r.AvgDeqCycles() != 15 {
		t.Fatalf("deq %v", r.AvgDeqCycles())
	}
	empty := &Run{}
	if empty.AvgEnqCycles() != 0 || empty.AvgDeqCycles() != 0 {
		t.Fatal("empty run op cycles nonzero")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "demo", Headers: []string{"a", "bbb"}}
	tb.AddRow("x", 1.5)
	tb.AddRow("long-cell", 1234.5678)
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "long-cell") {
		t.Fatalf("render missing content:\n%s", s)
	}
	if !strings.Contains(s, "1.50") {
		t.Fatalf("float not formatted:\n%s", s)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bbb\n") {
		t.Fatalf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "x,1.50") {
		t.Fatalf("csv row wrong: %q", csv)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.1234:  "0.123",
		5.678:   "5.68",
		56.78:   "56.8",
		5678.9:  "5679",
		-5.678:  "-5.68",
		-0.0042: "-0.004",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean %v, want 4", g)
	}
	if g := GeoMean([]float64{3, 0, -1}); math.Abs(g-3) > 1e-12 {
		t.Fatalf("geomean with skips %v, want 3", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean should be 0")
	}
}

// TestGeoMeanExtremeRange is the overflow regression: a large campaign of
// values far from 1 must not saturate the running aggregate. A raw
// product over 10k values around 1e±150 over/underflows float64 after a
// handful of elements; the log-sum form stays exact.
func TestGeoMeanExtremeRange(t *testing.T) {
	// Alternating 1e150 and 1e-150: geomean is exactly 1.
	vals := make([]float64, 10000)
	for i := range vals {
		if i%2 == 0 {
			vals[i] = 1e150
		} else {
			vals[i] = 1e-150
		}
	}
	if g := GeoMean(vals); math.Abs(g-1) > 1e-9 {
		t.Fatalf("balanced extreme geomean %v, want 1", g)
	}
	// All-huge: product overflows to +Inf immediately, but the geomean of
	// ten thousand copies of 1e150 is 1e150.
	for i := range vals {
		vals[i] = 1e150
	}
	if g := GeoMean(vals); math.IsInf(g, 0) || math.Abs(g/1e150-1) > 1e-9 {
		t.Fatalf("huge geomean %v, want 1e150", g)
	}
	// All-tiny: product underflows to 0.
	for i := range vals {
		vals[i] = 1e-150
	}
	if g := GeoMean(vals); g == 0 || math.Abs(g/1e-150-1) > 1e-9 {
		t.Fatalf("tiny geomean %v, want 1e-150", g)
	}
}

func TestRunSummaryHash(t *testing.T) {
	mk := func() *Run {
		r := &Run{Name: "SSSP", Threads: 2, WallCycles: 12345, SimSteps: 678, WorkItems: 42}
		r.Cores = []CoreStats{{Instrs: 100, Loads: 40}, {Instrs: 90, Loads: 33}}
		r.L2 = CacheStats{Accesses: 10, Misses: 3, Writebacks: 2}
		r.Engines = []EngineStats{{Prefetches: 7}}
		return r
	}
	a, b := mk(), mk()
	if a.Summary().Hash() != b.Summary().Hash() {
		t.Fatal("identical runs hash differently")
	}
	b.Cores[1].Loads++
	if a.Summary().Hash() == b.Summary().Hash() {
		t.Fatal("per-core stat change not reflected in hash")
	}
	c := mk()
	c.L2.Writebacks++
	if a.Summary().Hash() == c.Summary().Hash() {
		t.Fatal("writeback change not reflected in hash")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 1, 100) // unsorted on purpose
	for _, v := range []int64{0, 1, 5, 10, 50, 100, 1000} {
		h.Add(v)
	}
	// Bounds sorted: 1, 10, 100; buckets: <=1: {0,1}=2, <=10: {5,10}=2,
	// <=100: {50,100}=2, overflow: {1000}=1.
	want := []int64{2, 2, 2, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Total() != 7 {
		t.Fatalf("total %d", h.Total())
	}
}

func TestSumCores(t *testing.T) {
	r := &Run{Cores: []CoreStats{
		{Instrs: 10, Loads: 5, Branches: 2, Mispreds: 1, Atomics: 3, TasksRun: 7},
		{Instrs: 20, Loads: 15, Branches: 4, Mispreds: 2, Atomics: 1, TasksRun: 3},
	}}
	s := r.SumCores()
	if s.Instrs != 30 || s.Loads != 20 || s.Branches != 6 || s.Mispreds != 3 || s.Atomics != 4 || s.TasksRun != 10 {
		t.Fatalf("sum wrong: %+v", s)
	}
}
