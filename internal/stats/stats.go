// Package stats collects and formats simulation statistics: per-core cycle
// breakdowns, cache miss counters, prefetch effectiveness, and the derived
// metrics the paper reports (MPKI §6.3, prefetch efficiency Fig. 20,
// delinquent load density Fig. 6, the Fig. 5 cycle breakdown, speedups).
//
// Determinism contract: everything in Run except the observability
// attachments (Trace, Intervals, Timeline, Profile) is part of
// RunSummary, the canonical fingerprint two runs of one configuration
// must reproduce byte-for-byte; see summary.go for what is excluded and
// why.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"minnow/internal/obs"
	"minnow/internal/prof"
	"minnow/internal/trace"
)

// CycleCat classifies where a core cycle was spent, for the Fig. 5
// breakdown.
type CycleCat int

const (
	// CatUseful is time spent executing the benchmark operator that is
	// not attributable to a memory stall or worklist work.
	CatUseful CycleCat = iota
	// CatWorklist is time spent inside worklist enqueue/dequeue
	// operations (including spin-waiting for work).
	CatWorklist
	// CatLoadMiss is stall time attributable to data-cache load misses.
	CatLoadMiss
	// CatStoreMiss is stall time attributable to stores and atomics
	// (atomics are classified as stores, as in the paper).
	CatStoreMiss
	numCats
)

// String returns the short label used in tables.
func (c CycleCat) String() string {
	switch c {
	case CatUseful:
		return "useful"
	case CatWorklist:
		return "worklist"
	case CatLoadMiss:
		return "load-miss"
	case CatStoreMiss:
		return "store-miss"
	}
	return fmt.Sprintf("cat(%d)", int(c))
}

// CoreStats aggregates one core's activity.
type CoreStats struct {
	Cycles     [numCats]int64 // cycle breakdown
	Instrs     int64          // retired micro-ops (for MPKI)
	Loads      int64          // all load micro-ops
	Delinquent int64          // loads tagged as first-touch node/edge/task accesses
	Branches   int64          // conditional branch micro-ops
	Mispreds   int64          // TAGE mispredictions
	Atomics    int64          // atomic RMW micro-ops (fence points)
	TasksRun   int64          // operator applications on this core
	EnqOps     int64          // worklist enqueue operations
	DeqOps     int64          // successful worklist dequeue operations
	EnqCycles  int64          // cycles spent inside enqueue operations
	DeqCycles  int64          // cycles spent inside dequeue operations
}

// TotalCycles returns the sum over all categories.
func (c *CoreStats) TotalCycles() int64 {
	var t int64
	for _, v := range c.Cycles {
		t += v
	}
	return t
}

// CacheStats aggregates one cache level's activity.
type CacheStats struct {
	Accesses      int64 // demand lookups
	Misses        int64 // demand lookups that missed
	Evictions     int64 // lines displaced by fills
	Writebacks    int64 // dirty lines written back on eviction
	PrefetchFills int64 // lines installed by a prefetcher
	PrefetchUsed  int64 // prefetched lines touched by demand before eviction
	PrefetchWaste int64 // prefetched lines evicted untouched
}

// Efficiency returns used-before-eviction / fills, the paper's prefetch
// efficiency metric (Fig. 20). Returns 1 when nothing was prefetched.
func (c *CacheStats) Efficiency() float64 {
	if c.PrefetchFills == 0 {
		return 1
	}
	return float64(c.PrefetchUsed) / float64(c.PrefetchFills)
}

// EngineStats aggregates one Minnow engine's activity.
type EngineStats struct {
	LocalEnq     int64 // tasks enqueued into the local queue
	LocalDeq     int64 // tasks dequeued from the local queue
	Spills       int64 // tasks spilled to the global worklist
	Fills        int64 // tasks filled from the global worklist
	Threadlets   int64 // threadlets executed
	Prefetches   int64 // prefetch loads issued
	CreditStalls int64 // times a prefetch threadlet stalled on credits
	TLBMissExcps int64 // TLB-miss exceptions raised to the host core
	LateDrops    int64 // prefetch streams cancelled (task already dequeued)
	StepsRun     int64 // actor steps executed
	Parks        int64 // times the back-end went idle
	ClockEnd     int64 // back-end local time at run end
	StreamsDone  int64 // prefetch streams that ran to completion

	// The fault-injection counters below are zero (and omitted from the
	// canonical JSON) in fault-free runs, keeping summaries byte-identical
	// to builds without the fault layer.

	// FaultStalls counts injected engine-stall faults this engine took.
	FaultStalls int64 `json:"FaultStalls,omitempty"`
	// SpillRetries counts spill/fill memory accesses this engine reissued
	// after an injected transient failure (bounded exponential backoff).
	SpillRetries int64 `json:"SpillRetries,omitempty"`
	// CreditsLost counts prefetch credit returns dropped by injected
	// credit-loss faults.
	CreditsLost int64 `json:"CreditsLost,omitempty"`
	// CreditsRecovered counts credits re-minted by the engine's
	// credit-leak audit once every marked line was accounted for.
	CreditsRecovered int64 `json:"CreditsRecovered,omitempty"`
	// Rescued counts tasks drained out of this engine when an injected
	// fault took it permanently offline.
	Rescued int64 `json:"Rescued,omitempty"`
}

// FaultStats aggregates injected-fault activity across one run. Run and
// RunSummary carry it as a pointer that stays nil in fault-free runs, so
// enabling the fault layer without a plan leaves the canonical JSON
// byte-identical to a build that predates it.
type FaultStats struct {
	// EngineStalls counts injected engine back-end stall events.
	EngineStalls int64 `json:"engine_stalls"`
	// EngineStallCyc sums the cycles engines spent in injected stalls.
	EngineStallCyc int64 `json:"engine_stall_cyc"`
	// NoCDelays counts mesh messages hit by an injected delay spike.
	NoCDelays int64 `json:"noc_delays"`
	// NoCDelayCyc sums the injected mesh delay cycles.
	NoCDelayCyc int64 `json:"noc_delay_cyc"`
	// DRAMRetries counts injected DRAM retry rounds.
	DRAMRetries int64 `json:"dram_retries"`
	// DRAMRetryCyc sums the injected DRAM retry latency cycles.
	DRAMRetryCyc int64 `json:"dram_retry_cyc"`
	// SpillRetries counts engine spill/fill accesses that transiently
	// failed and were reissued.
	SpillRetries int64 `json:"spill_retries"`
	// SpillBackoffCyc sums the exponential-backoff cycles spent before
	// spill/fill reissues.
	SpillBackoffCyc int64 `json:"spill_backoff_cyc"`
	// CreditsLost counts prefetch credit returns dropped in flight.
	CreditsLost int64 `json:"credits_lost"`
	// CreditsRecovered counts credits re-minted by the engines'
	// credit-leak audits.
	CreditsRecovered int64 `json:"credits_recovered"`
	// EnginesOffline counts engines taken permanently offline.
	EnginesOffline int64 `json:"engines_offline"`
	// Rescued counts tasks rescued from dying engines (and the global
	// worklist) into the software fallback worklist.
	Rescued int64 `json:"rescued"`
}

// ClassLatency reports one arrival class's per-task latency percentiles
// (cycles): queue wait is birth to dequeue, sojourn is birth to operator
// completion. Percentiles are exact nearest-rank values over the full
// sample set, not estimates.
type ClassLatency struct {
	// Class labels the generating clause ("0:poisson").
	Class string `json:"class"`
	// Injected counts this class's scheduled arrivals delivered to the
	// run.
	Injected int64 `json:"injected"`
	// Retired counts this class's arrivals whose operator application
	// completed.
	Retired int64 `json:"retired"`
	// WaitP50 is the median queue wait in cycles.
	WaitP50 int64 `json:"wait_p50"`
	// WaitP95 is the 95th-percentile queue wait in cycles.
	WaitP95 int64 `json:"wait_p95"`
	// WaitP99 is the 99th-percentile queue wait in cycles.
	WaitP99 int64 `json:"wait_p99"`
	// SojournP50 is the median sojourn in cycles.
	SojournP50 int64 `json:"sojourn_p50"`
	// SojournP95 is the 95th-percentile sojourn in cycles.
	SojournP95 int64 `json:"sojourn_p95"`
	// SojournP99 is the 99th-percentile sojourn in cycles.
	SojournP99 int64 `json:"sojourn_p99"`
}

// LatencyStats aggregates open-loop arrival latency across one run. Run
// and RunSummary carry it as a pointer that stays nil in closed-loop
// runs, so enabling the arrival layer without a plan leaves the
// canonical JSON byte-identical to a build that predates it. With a plan
// armed it is fully deterministic — arrivals are seeded and
// cycle-scheduled — and therefore part of the summary.
type LatencyStats struct {
	// Injected counts arrival tasks credited at birth across classes.
	Injected int64 `json:"injected"`
	// Retired counts arrival tasks that completed; a drained run retires
	// every injected task (the conservation checker pins it).
	Retired int64 `json:"retired"`
	// Classes holds per-class percentiles in clause order.
	Classes []ClassLatency `json:"classes"`
}

// Percentile returns the exact nearest-rank p-th percentile (p in
// (0,100]) of an ascending-sorted sample set, 0 when empty.
func Percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Run captures everything measured during one simulated benchmark run.
type Run struct {
	Name       string // benchmark name
	Threads    int    // simulated core count
	WallCycles int64  // end-to-end simulated cycles
	SimSteps   int64  // discrete-event actor steps executed by the scheduler
	TimedOut   bool   // hit the work budget (Fig. 3 "timed out" bars)
	// BoundSteps counts the SimSteps executed inside bound/weave bound
	// phases — the concurrency the horizon declarations actually bought.
	// It is a host-execution metric, not a simulated one: it varies with
	// IntraJobs and EpochWindow while the simulated outcome stays
	// byte-identical, so it is deliberately excluded from RunSummary.
	BoundSteps int64

	Cores   []CoreStats   // per-core breakdowns, indexed by core ID
	L2      CacheStats    // aggregated over all L2s
	L3      CacheStats    // aggregated over all L3 banks
	Engines []EngineStats // per-engine activity (Minnow runs only)

	WorkItems   int64   // operator applications (work-efficiency metric)
	DRAMReads   int64   // lines read from DRAM
	DRAMRows    int64   // distinct DRAM row activations (diagnostics)
	InvMsgs     int64   // coherence invalidation messages
	DRAMStall   int64   // cycles requests queued at busy DRAM channels
	NoCStall    int64   // cycles flits waited for mesh links
	AvgLoadLat  float64 // mean demand-load latency (diagnostics)
	DirtyRemote int64   // reads served from remote modified copies
	// Trace holds the engine event log when tracing was enabled.
	Trace *trace.Buffer
	// Intervals holds the time-series sampling rows when metrics
	// sampling was enabled (Options.MetricsEvery).
	Intervals *obs.Registry
	// Timeline holds the full-system event timeline when timeline
	// collection was enabled (Options.Timeline); render it with
	// Timeline.Perfetto.
	Timeline *obs.Timeline
	// Profile holds the refined cycle-attribution tree when the top-down
	// profiler was enabled (Options.Profile); render it with
	// Profile.Folded / Profile.Pprof / Profile.Stack.
	Profile    *prof.Profile
	LatByLevel [5]int64 // summed demand-load latency by supplying level
	CntByLevel [5]int64 // demand-load count by supplying level

	// Prefetch waste attribution (diagnostics).
	WastePFEvict     int64 // prefetched lines evicted by later prefetches
	WasteDemandEvict int64 // prefetched lines evicted by demand fills
	WasteInval       int64 // prefetched lines lost to invalidations
	L1Shielded       int64 // L2 prefetch hits hidden behind L1 hits

	// Faults aggregates injected-fault activity; nil when fault injection
	// was off (part of the summary, since injected faults are fully
	// deterministic for a given plan).
	Faults *FaultStats

	// Latency aggregates open-loop arrival latency; nil when no arrival
	// plan was armed (part of the summary, since arrivals are fully
	// deterministic for a given plan).
	Latency *LatencyStats
}

// SumCores returns the element-wise sum of all core stats.
func (r *Run) SumCores() CoreStats {
	var s CoreStats
	for i := range r.Cores {
		c := &r.Cores[i]
		for k := 0; k < int(numCats); k++ {
			s.Cycles[k] += c.Cycles[k]
		}
		s.Instrs += c.Instrs
		s.Loads += c.Loads
		s.Delinquent += c.Delinquent
		s.Branches += c.Branches
		s.Mispreds += c.Mispreds
		s.Atomics += c.Atomics
		s.TasksRun += c.TasksRun
		s.EnqOps += c.EnqOps
		s.DeqOps += c.DeqOps
		s.EnqCycles += c.EnqCycles
		s.DeqCycles += c.DeqCycles
	}
	return s
}

// L2MPKI returns L2 misses per thousand retired micro-ops.
func (r *Run) L2MPKI() float64 {
	s := r.SumCores()
	if s.Instrs == 0 {
		return 0
	}
	return float64(r.L2.Misses) / float64(s.Instrs) * 1000
}

// DelinquentDensity returns the fraction of loads that were first accesses
// to node/edge/task data (Fig. 6).
func (r *Run) DelinquentDensity() float64 {
	s := r.SumCores()
	if s.Loads == 0 {
		return 0
	}
	return float64(s.Delinquent) / float64(s.Loads)
}

// Breakdown returns the fraction of total core cycles per category.
func (r *Run) Breakdown() [4]float64 {
	s := r.SumCores()
	tot := s.TotalCycles()
	var out [4]float64
	if tot == 0 {
		return out
	}
	for k := 0; k < int(numCats); k++ {
		out[k] = float64(s.Cycles[k]) / float64(tot)
	}
	return out
}

// AvgEnqCycles returns the mean cycles per worklist enqueue (Fig. 11).
func (r *Run) AvgEnqCycles() float64 {
	s := r.SumCores()
	if s.EnqOps == 0 {
		return 0
	}
	return float64(s.EnqCycles) / float64(s.EnqOps)
}

// AvgDeqCycles returns the mean cycles per worklist dequeue (Fig. 11).
func (r *Run) AvgDeqCycles() float64 {
	s := r.SumCores()
	if s.DeqOps == 0 {
		return 0
	}
	return float64(s.DeqCycles) / float64(s.DeqOps)
}

// Table renders rows as an aligned plain-text table.
type Table struct {
	Title   string     // optional heading printed above the table
	Headers []string   // column names
	Rows    [][]string // formatted cells, one slice per row
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: 3 significant-ish decimals for
// small values, fewer for large.
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes are not needed
// for our numeric/identifier content).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// GeoMean returns the geometric mean of positive values; zero or negative
// inputs are skipped. Returns 0 for an empty input. The mean is computed
// as exp(mean(log v)) rather than as an n-th root of the running product,
// which over/underflows float64 once a large sweep accumulates a few
// hundred values far from 1.
func GeoMean(vals []float64) float64 {
	sum := 0.0
	n := 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Histogram is a simple fixed-bucket histogram used for degree and latency
// distributions in tests and tools.
type Histogram struct {
	Bounds []int64 // ascending upper bounds; last bucket is overflow
	Counts []int64 // observations per bucket (len(Bounds)+1)
}

// NewHistogram builds a histogram with the given ascending bucket bounds.
func NewHistogram(bounds ...int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{Bounds: b, Counts: make([]int64, len(b)+1)}
}

// Add records one observation.
func (h *Histogram) Add(v int64) {
	for i, ub := range h.Bounds {
		if v <= ub {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}
