package prof

import (
	"sort"
	"strconv"
	"strings"
)

// Folded renders the merged attribution tree in the folded-stack format
// flamegraph tooling consumes: one `frame;frame;...;frame cycles` line
// per leaf, root first, sorted lexicographically. The rendering is
// byte-deterministic for a given run (the golden-file and -jobs
// stability tests pin this).
func (p *Profile) Folded() string {
	leaves := p.Leaves()
	lines := make([]string, 0, len(leaves))
	for _, l := range leaves {
		lines = append(lines,
			strings.Join(p.frames(l), ";")+" "+strconv.FormatInt(l.Cycles, 10))
	}
	sort.Strings(lines)
	var b strings.Builder
	for _, ln := range lines {
		b.WriteString(ln)
		b.WriteByte('\n')
	}
	return b.String()
}
