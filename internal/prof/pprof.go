package prof

import (
	"bytes"
	"compress/gzip"
)

// The pprof profile.proto encoder. The profile format is a stable,
// widely-implemented protobuf schema; hand-rolling the dozen fields we
// emit keeps the simulator dependency-free. Field numbers follow
// github.com/google/pprof/proto/profile.proto:
//
//	Profile:  1 sample_type, 2 sample, 4 location, 5 function,
//	          6 string_table, 10 duration_nanos, 11 period_type, 12 period
//	ValueType: 1 type, 2 unit
//	Sample:    1 location_id (packed), 2 value (packed)
//	Location:  1 id, 4 line
//	Line:      1 function_id
//	Function:  1 id, 2 name, 3 system_name, 4 filename
//
// Samples list locations leaf-first, so `go tool pprof -top` ranks the
// attribution sites and the cause/level/outcome frames form the callers.

// pbuf is a minimal protobuf wire-format writer.
type pbuf struct{ b []byte }

// uvarint appends a base-128 varint.
func (p *pbuf) uvarint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

// key appends a field key with the given wire type.
func (p *pbuf) key(field, wire int) { p.uvarint(uint64(field)<<3 | uint64(wire)) }

// varintField appends a varint-typed field; zero values are omitted
// (proto3 default semantics).
func (p *pbuf) varintField(field int, v uint64) {
	if v == 0 {
		return
	}
	p.key(field, 0)
	p.uvarint(v)
}

// bytesField appends a length-delimited field.
func (p *pbuf) bytesField(field int, data []byte) {
	p.key(field, 2)
	p.uvarint(uint64(len(data)))
	p.b = append(p.b, data...)
}

// packedField appends a packed repeated varint field.
func (p *pbuf) packedField(field int, vals []uint64) {
	var t pbuf
	for _, v := range vals {
		t.uvarint(v)
	}
	p.bytesField(field, t.b)
}

// stringTab interns strings into the profile's string table (index 0 is
// the mandatory empty string).
type stringTab struct {
	idx  map[string]uint64
	list []string
}

func newStringTab() *stringTab {
	return &stringTab{idx: map[string]uint64{"": 0}, list: []string{""}}
}

func (s *stringTab) of(v string) uint64 {
	if i, ok := s.idx[v]; ok {
		return i
	}
	i := uint64(len(s.list))
	s.idx[v] = i
	s.list = append(s.list, v)
	return i
}

// valueType encodes a ValueType message.
func valueType(st *stringTab, typ, unit string) []byte {
	var v pbuf
	v.varintField(1, st.of(typ))
	v.varintField(2, st.of(unit))
	return v.b
}

// Pprof renders the merged attribution tree as a gzipped pprof protobuf
// of simulated cycles, loadable with `go tool pprof` and any pprof UI.
// Every frame becomes a synthetic function; samples stack leaf-first
// (site, outcome, level, cause, benchmark). The output is
// byte-deterministic: no timestamps, interning in first-use order over
// deterministically sorted leaves.
func (p *Profile) Pprof() []byte {
	st := newStringTab()
	filename := st.of("minnow-sim")

	// Intern each distinct frame label as one function + one location
	// (ids are equal and 1-based).
	locOf := map[string]uint64{}
	var funcs, locs pbuf
	intern := func(label string) uint64 {
		if id, ok := locOf[label]; ok {
			return id
		}
		id := uint64(len(locOf) + 1)
		locOf[label] = id
		var fn pbuf
		fn.varintField(1, id)
		fn.varintField(2, st.of(label))
		fn.varintField(3, st.of(label))
		fn.varintField(4, filename)
		funcs.bytesField(5, fn.b)
		var line pbuf
		line.varintField(1, id)
		var loc pbuf
		loc.varintField(1, id)
		loc.bytesField(4, line.b)
		locs.bytesField(4, loc.b)
		return id
	}

	var samples pbuf
	var total int64
	for _, l := range p.Leaves() {
		frames := p.frames(l)
		ids := make([]uint64, len(frames))
		for i, f := range frames {
			ids[len(frames)-1-i] = intern(f) // leaf-first
		}
		var s pbuf
		s.packedField(1, ids)
		s.packedField(2, []uint64{uint64(l.Cycles)})
		samples.bytesField(2, s.b)
		total += l.Cycles
	}

	var out pbuf
	out.bytesField(1, valueType(st, "cycles", "cycles"))
	out.b = append(out.b, samples.b...)
	out.b = append(out.b, locs.b...)
	out.b = append(out.b, funcs.b...)
	for _, s := range st.list {
		out.bytesField(6, []byte(s))
	}
	// One simulated cycle is reported as one nanosecond so pprof's
	// duration header is meaningful; period 1 cycle per sample.
	out.varintField(10, uint64(total))
	out.bytesField(11, valueType(st, "cycles", "cycles"))
	out.varintField(12, 1)

	var gz bytes.Buffer
	w := gzip.NewWriter(&gz) // zero ModTime: output is byte-deterministic
	w.Write(out.b)           //nolint:errcheck // bytes.Buffer cannot fail
	w.Close()                //nolint:errcheck
	return gz.Bytes()
}
