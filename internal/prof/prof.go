// Package prof is the hierarchical cycle-attribution profiler: it
// refines every cycle the core model attributes — retire-time stalls and
// idle waits alike — into a top-down tree of stall cause × serving level
// × prefetch outcome, keyed by the attribution *site* (a static micro-op
// PC when the kernel assigned one, or the micro-op's index within the
// operator application). The tree renders as folded stacks for standard
// flamegraph tooling (folded.go) and as a gzipped pprof protobuf of
// simulated cycles for `go tool pprof` (pprof.go).
//
// The refinement is a strict superset of the flat stats.CycleCat
// breakdown: Leaf.Coarse maps every leaf back onto the four classic
// buckets (useful / worklist / load-miss / store-miss), so the old
// Fig. 5 numbers are derivable from the tree and the harness tests can
// pin the two views against each other.
//
// Conservation contract: the core model only advances its local clock
// through Run retire gaps and Advance idle waits, and both paths feed
// the profiler the exact cycle delta they charge to the flat counters.
// Per core, the sum of all leaves therefore equals the core's final
// clock (its share of wall cycles) — enforced by the harness
// cycle-conservation test.
//
// Determinism contract: the profiler observes only. Add never advances a
// clock, wakes an actor, or mutates simulation state, so enabling
// profiling cannot change wall cycles, step counts, or any RunSummary
// field; every rendering (folded stacks, pprof bytes, the CycleStack
// tree) is byte-deterministic for a given run.
package prof

import (
	"fmt"
	"sort"
)

// Cause is the top split of the attribution tree: why the cycles were
// spent (or lost).
type Cause uint8

const (
	// CauseUseful is operator-body progress not attributable to any
	// stall: front-end issue, compute, and memory time hidden under the
	// in-order retire window.
	CauseUseful Cause = iota
	// CauseLoad is retire time behind a demand load.
	CauseLoad
	// CauseStore is retire time behind a demand store.
	CauseStore
	// CauseFence is retire time behind an atomic read-modify-write and
	// its x86-TSO fence serialization.
	CauseFence
	// CauseBranch is a branch-mispredict pipeline refill.
	CauseBranch
	// CauseEnqueue is time inside a worklist enqueue operation (software
	// worklist micro-ops or the Minnow minnow_enqueue latency).
	CauseEnqueue
	// CauseDequeue is time inside a worklist dequeue operation,
	// including idle spins waiting for work to appear.
	CauseDequeue
	// CauseBackpressure is time a Minnow enqueue stalled the core beyond
	// the nominal local-queue latency while the engine's spill path
	// drained (§5.1's backpressure case).
	CauseBackpressure
	// NumCauses bounds the Cause space.
	NumCauses
)

// String returns the frame label used in folded stacks and pprof.
func (c Cause) String() string {
	switch c {
	case CauseUseful:
		return "useful"
	case CauseLoad:
		return "load"
	case CauseStore:
		return "store"
	case CauseFence:
		return "fence"
	case CauseBranch:
		return "branch-mispredict"
	case CauseEnqueue:
		return "worklist-enqueue"
	case CauseDequeue:
		return "worklist-dequeue"
	case CauseBackpressure:
		return "engine-backpressure"
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// Level is the second split: which level of the hierarchy served the
// memory access behind the cycles, when there was one.
type Level uint8

const (
	// LvlNone marks cycles with no memory access behind them (compute,
	// branch refills, worklist waits).
	LvlNone Level = iota
	// LvlL1 is an L1D hit.
	LvlL1
	// LvlL2 is an L2 hit.
	LvlL2
	// LvlL3 is an L3-bank hit.
	LvlL3
	// LvlRemote is data forwarded from a remote L2's modified copy over
	// the NoC (the 3-hop dirty-owner path).
	LvlRemote
	// LvlDRAM is a full miss served by a DRAM channel.
	LvlDRAM
	// NumLevels bounds the Level space.
	NumLevels
)

// String returns the frame label used in folded stacks and pprof.
func (l Level) String() string {
	switch l {
	case LvlNone:
		return "no-mem"
	case LvlL1:
		return "L1"
	case LvlL2:
		return "L2"
	case LvlL3:
		return "L3"
	case LvlRemote:
		return "remote-L2"
	case LvlDRAM:
		return "DRAM"
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// Outcome is the third split: how worklist-directed (or hardware)
// prefetching interacted with the access behind the cycles.
type Outcome uint8

const (
	// OutNone marks cycles whose access had no prefetch involvement and
	// hit in the private levels anyway.
	OutNone Outcome = iota
	// OutCovered marks a demand access that consumed a prefetched line
	// resident in the L2 (or shielded behind an L1 hit) — the prefetch
	// fully covered the miss.
	OutCovered
	// OutLate marks a demand access that hit a prefetched line whose
	// fill was still in flight: the prefetch was issued but late, so it
	// covered the miss only partially.
	OutLate
	// OutUncovered marks a demand access that missed past the L2 with no
	// prefetch cover at all.
	OutUncovered
	// NumOutcomes bounds the Outcome space.
	NumOutcomes
)

// String returns the frame label used in folded stacks and pprof.
func (o Outcome) String() string {
	switch o {
	case OutNone:
		return "no-prefetch"
	case OutCovered:
		return "covered"
	case OutLate:
		return "late-partial"
	case OutUncovered:
		return "uncovered"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Region names the code region a core is executing on behalf of the
// framework; it scopes attribution sites and decides the cause of
// worklist-region cycles.
type Region uint8

const (
	// RegionOp is the benchmark operator body.
	RegionOp Region = iota
	// RegionEnq is a worklist enqueue operation.
	RegionEnq
	// RegionDeq is a worklist dequeue operation.
	RegionDeq
	// RegionIdle is the idle backoff spin between failed dequeues.
	RegionIdle
	// RegionBackpressure is a Minnow enqueue blocked on spill-path
	// drain beyond the nominal local-queue latency.
	RegionBackpressure
	// NumRegions bounds the Region space.
	NumRegions
)

// String returns the site-label prefix for the region.
func (r Region) String() string {
	switch r {
	case RegionOp:
		return "apply"
	case RegionEnq:
		return "enqueue"
	case RegionDeq:
		return "dequeue"
	case RegionIdle:
		return "idle"
	case RegionBackpressure:
		return "backpressure"
	}
	return fmt.Sprintf("region(%d)", uint8(r))
}

// RegionCause returns the worklist cause a region implies, when it
// implies one: cycles spent inside enqueue/dequeue/idle/backpressure
// regions are worklist cycles regardless of the micro-op kind that
// consumed them (matching the flat CatWorklist attribution). ok is false
// for RegionOp, where the cause follows the micro-op instead.
func RegionCause(r Region) (Cause, bool) {
	switch r {
	case RegionEnq:
		return CauseEnqueue, true
	case RegionDeq, RegionIdle:
		return CauseDequeue, true
	case RegionBackpressure:
		return CauseBackpressure, true
	}
	return CauseUseful, false
}

// ClassifyMem maps one memory-access result onto the serving-level and
// prefetch-outcome dimensions. level is the mem.Result encoding (1=L1,
// 2=L2, 3=L3, 4=DRAM); remote marks the dirty-remote-owner forward,
// usedPF a demand access that consumed a prefetch-marked line, and
// pfLate one whose prefetched line was still in flight.
func ClassifyMem(level uint8, remote, usedPF, pfLate bool) (Level, Outcome) {
	var lvl Level
	switch level {
	case 1:
		lvl = LvlL1
	case 2:
		lvl = LvlL2
	case 3:
		lvl = LvlL3
		if remote {
			lvl = LvlRemote
		}
	case 4:
		lvl = LvlDRAM
	default:
		lvl = LvlNone
	}
	out := OutNone
	switch {
	case usedPF && pfLate:
		out = OutLate
	case usedPF:
		out = OutCovered
	case lvl >= LvlL3:
		out = OutUncovered
	}
	return lvl, out
}

// Site identifies one attribution site, pre-packed for the leaf key: the
// region, the site flavor (index / PC / wait), and the index or PC
// value. Build sites with IndexSite, PCSite, or WaitSite.
type Site uint64

// Site/key bit layout (low to high): outcome 0-3, level 4-7, cause 8-11,
// region 12-15, site flavor 16-17, value 18-49.
const (
	siteRegionShift = 12
	siteFlavorShift = 16
	siteValueShift  = 18

	flavorIndex = 0
	flavorPC    = 1
	flavorWait  = 2

	// maxSiteIndex caps index-flavored sites; deeper micro-op indices
	// collapse into one overflow site so pathological operators cannot
	// blow up the leaf map.
	maxSiteIndex = 1023
)

// IndexSite is the site of the idx-th micro-op within the current
// region (operator application or worklist operation). Indices beyond
// maxSiteIndex collapse into one overflow site.
func IndexSite(r Region, idx int) Site {
	if idx > maxSiteIndex || idx < 0 {
		idx = maxSiteIndex
	}
	return Site(uint64(r)<<siteRegionShift |
		flavorIndex<<siteFlavorShift |
		uint64(idx)<<siteValueShift)
}

// PCSite is the site of a micro-op carrying a static PC (the kernels'
// named load and branch sites); it aggregates the site across loop
// iterations and tasks, which is what makes per-site flamegraphs
// readable.
func PCSite(r Region, pc uint64) Site {
	return Site(uint64(r)<<siteRegionShift |
		flavorPC<<siteFlavorShift |
		(pc&0xffffffff)<<siteValueShift)
}

// WaitSite is the blocking-wait site of a region: Advance-style idle
// time (a blocked Minnow enqueue/dequeue, the idle backoff spin, spill
// backpressure) rather than any particular micro-op.
func WaitSite(r Region) Site {
	return Site(uint64(r)<<siteRegionShift | flavorWait<<siteFlavorShift)
}

// CoreProf collects one core's leaves. The zero value is not usable;
// obtain cores from Profile.Core. All methods are nil-receiver-safe so a
// disabled profiler costs one branch per attribution site.
type CoreProf struct {
	leaves map[uint64]int64
}

// Add charges cycles to the leaf (site, cause, lvl, out). It is called
// from the core model's retire-gap and idle-wait attribution paths with
// exactly the delta charged to the flat cycle counters.
func (c *CoreProf) Add(s Site, cause Cause, lvl Level, out Outcome, cycles int64) {
	if c == nil || cycles <= 0 {
		return
	}
	key := uint64(s) | uint64(cause)<<8 | uint64(lvl)<<4 | uint64(out)
	c.leaves[key] += cycles
}

// Total returns the cycles summed over the core's leaves (conservation
// tests compare it against the flat per-core totals).
func (c *CoreProf) Total() int64 {
	if c == nil {
		return 0
	}
	var t int64
	for _, v := range c.leaves {
		t += v
	}
	return t
}

// Leaf is one decoded attribution-tree leaf.
type Leaf struct {
	// Region is the framework region the cycles were spent in.
	Region Region
	// PC is the static micro-op site, when the site is PC-flavored
	// (0 otherwise).
	PC uint64
	// Index is the micro-op index within the region, when the site is
	// index-flavored (-1 otherwise). Index == maxSiteIndex aggregates
	// all deeper micro-ops.
	Index int
	// Wait marks a blocking-wait site (Advance time) rather than a
	// micro-op retire gap.
	Wait bool
	// Cause is the attribution cause.
	Cause Cause
	// Level is the serving level of the access behind the cycles.
	Level Level
	// Outcome is the prefetch outcome of that access.
	Outcome Outcome
	// Cycles is the simulated-cycle weight.
	Cycles int64
}

// decodeLeaf unpacks one map entry.
func decodeLeaf(key uint64, cycles int64) Leaf {
	l := Leaf{
		Outcome: Outcome(key & 0xf),
		Level:   Level(key >> 4 & 0xf),
		Cause:   Cause(key >> 8 & 0xf),
		Region:  Region(key >> siteRegionShift & 0xf),
		Index:   -1,
		Cycles:  cycles,
	}
	val := key >> siteValueShift
	switch key >> siteFlavorShift & 0x3 {
	case flavorIndex:
		l.Index = int(val)
	case flavorPC:
		l.PC = val
	case flavorWait:
		l.Wait = true
	}
	return l
}

// Coarse maps the leaf back onto the flat stats.CycleCat bucket its
// cycles were counted under: 0 useful, 1 worklist, 2 load-miss,
// 3 store-miss (the constants mirror the stats package's CycleCat
// order, pinned by the harness conservation test).
func (l Leaf) Coarse() int {
	switch l.Cause {
	case CauseEnqueue, CauseDequeue, CauseBackpressure:
		return 1
	case CauseLoad:
		if l.Level >= LvlL3 {
			return 2
		}
	case CauseStore:
		if l.Level >= LvlL3 {
			return 3
		}
	case CauseFence:
		return 3
	}
	return 0
}

// SiteLabel renders the leaf's site frame. pcLabel, when non-nil, names
// PC-flavored sites (the kernels' static-site vocabulary); nil falls
// back to the raw PC.
func (l Leaf) SiteLabel(pcLabel func(pc uint64) string) string {
	switch {
	case l.Wait:
		return l.Region.String() + ".wait"
	case l.PC != 0:
		if pcLabel != nil {
			return l.Region.String() + "@" + pcLabel(l.PC)
		}
		return fmt.Sprintf("%s@pc%#x", l.Region, l.PC)
	case l.Index >= maxSiteIndex:
		return fmt.Sprintf("%s#%d+", l.Region, maxSiteIndex)
	default:
		return fmt.Sprintf("%s#%d", l.Region, l.Index)
	}
}

// Profile is one run's attribution profile: per-core leaf maps plus the
// metadata needed to render them.
type Profile struct {
	// Bench is the benchmark name, used as the tree root frame.
	Bench string
	// PCLabel, when non-nil, names PC-flavored sites (the harness wires
	// the kernels' static-site vocabulary here).
	PCLabel func(pc uint64) string

	cores []*CoreProf
}

// New builds an empty profile for the given core count.
func New(bench string, cores int) *Profile {
	p := &Profile{Bench: bench, cores: make([]*CoreProf, cores)}
	for i := range p.cores {
		p.cores[i] = &CoreProf{leaves: make(map[uint64]int64)}
	}
	return p
}

// Core returns core i's collector (attached to the cpu model by the
// harness).
func (p *Profile) Core(i int) *CoreProf { return p.cores[i] }

// NumCores returns the core count the profile was built for.
func (p *Profile) NumCores() int { return len(p.cores) }

// sortedLeaves decodes and sorts one leaf map by packed key.
func sortedLeaves(m map[uint64]int64) []Leaf {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]Leaf, len(keys))
	for i, k := range keys {
		out[i] = decodeLeaf(k, m[k])
	}
	return out
}

// CoreLeaves returns core i's leaves in deterministic order
// (conservation tests).
func (p *Profile) CoreLeaves(i int) []Leaf { return sortedLeaves(p.cores[i].leaves) }

// Leaves returns the profile's leaves merged across cores, in
// deterministic order.
func (p *Profile) Leaves() []Leaf {
	merged := make(map[uint64]int64)
	for _, c := range p.cores {
		for k, v := range c.leaves {
			merged[k] += v
		}
	}
	return sortedLeaves(merged)
}

// Total returns the cycles summed over every core's leaves.
func (p *Profile) Total() int64 {
	var t int64
	for _, c := range p.cores {
		t += c.Total()
	}
	return t
}

// CoarseBuckets folds the merged tree back onto the four flat
// stats.CycleCat buckets (useful / worklist / load-miss / store-miss).
func (p *Profile) CoarseBuckets() [4]int64 {
	var out [4]int64
	for _, l := range p.Leaves() {
		out[l.Coarse()] += l.Cycles
	}
	return out
}

// frames renders one leaf's stack root-to-leaf: bench, cause, then the
// level and outcome dimensions when informative, then the site.
func (p *Profile) frames(l Leaf) []string {
	fr := make([]string, 0, 5)
	fr = append(fr, p.Bench, l.Cause.String())
	if l.Level != LvlNone {
		fr = append(fr, l.Level.String())
	}
	if l.Outcome != OutNone {
		fr = append(fr, l.Outcome.String())
	}
	return append(fr, l.SiteLabel(p.PCLabel))
}

// CycleStack is one node of the rendered top-down attribution tree:
// bench → cause → serving level → prefetch outcome → site. A node's
// Cycles is the sum over every leaf below it, so siblings at each depth
// partition their parent — the property the Fig. 5 cpistack figure and
// the conservation test rely on.
type CycleStack struct {
	// Label is the node's frame label.
	Label string
	// Cycles is the simulated cycles attributed at or below this node.
	Cycles int64
	// Kids are the child nodes, in deterministic order.
	Kids []*CycleStack
}

// Stack builds the merged attribution tree.
func (p *Profile) Stack() *CycleStack {
	root := &CycleStack{Label: p.Bench}
	for _, l := range p.Leaves() {
		root.Cycles += l.Cycles
		node := root
		for _, f := range p.frames(l)[1:] {
			var kid *CycleStack
			for _, k := range node.Kids {
				if k.Label == f {
					kid = k
					break
				}
			}
			if kid == nil {
				kid = &CycleStack{Label: f}
				node.Kids = append(node.Kids, kid)
			}
			kid.Cycles += l.Cycles
			node = kid
		}
	}
	return root
}
