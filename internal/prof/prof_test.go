package prof

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"
)

// TestSiteRoundTrip pins the leaf-key packing: every site flavor must
// decode back to the region, value, and taxonomy coordinates it was
// encoded with.
func TestSiteRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		site  Site
		cause Cause
		lvl   Level
		out   Outcome
		check func(t *testing.T, l Leaf)
	}{
		{"index", IndexSite(RegionOp, 7), CauseLoad, LvlDRAM, OutUncovered,
			func(t *testing.T, l Leaf) {
				if l.Region != RegionOp || l.Index != 7 || l.PC != 0 || l.Wait {
					t.Fatalf("index leaf decoded as %+v", l)
				}
			}},
		{"pc", PCSite(RegionOp, 0x141), CauseLoad, LvlRemote, OutLate,
			func(t *testing.T, l Leaf) {
				if l.Region != RegionOp || l.PC != 0x141 || l.Index != -1 || l.Wait {
					t.Fatalf("pc leaf decoded as %+v", l)
				}
			}},
		{"wait", WaitSite(RegionDeq), CauseDequeue, LvlNone, OutNone,
			func(t *testing.T, l Leaf) {
				if l.Region != RegionDeq || !l.Wait || l.PC != 0 || l.Index != -1 {
					t.Fatalf("wait leaf decoded as %+v", l)
				}
			}},
		{"overflow", IndexSite(RegionEnq, 5000), CauseEnqueue, LvlNone, OutNone,
			func(t *testing.T, l Leaf) {
				if l.Index != maxSiteIndex {
					t.Fatalf("overflow index = %d, want %d", l.Index, maxSiteIndex)
				}
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := New("bench", 1)
			p.Core(0).Add(tc.site, tc.cause, tc.lvl, tc.out, 42)
			leaves := p.CoreLeaves(0)
			if len(leaves) != 1 {
				t.Fatalf("got %d leaves, want 1", len(leaves))
			}
			l := leaves[0]
			if l.Cause != tc.cause || l.Level != tc.lvl || l.Outcome != tc.out || l.Cycles != 42 {
				t.Fatalf("taxonomy decoded as %+v", l)
			}
			tc.check(t, l)
		})
	}
}

// TestIndexOverflowCollapses pins that deep micro-op indices share one
// leaf instead of growing the map unboundedly.
func TestIndexOverflowCollapses(t *testing.T) {
	if IndexSite(RegionOp, maxSiteIndex+1) != IndexSite(RegionOp, 1<<20) {
		t.Fatal("overflow indices should collapse to one site")
	}
	if IndexSite(RegionOp, -1) != IndexSite(RegionOp, maxSiteIndex) {
		t.Fatal("negative indices should collapse to the overflow site")
	}
}

// TestNilSafety pins the disabled-profiler contract: a nil CoreProf
// accepts Add and reports zero.
func TestNilSafety(t *testing.T) {
	var c *CoreProf
	c.Add(IndexSite(RegionOp, 0), CauseUseful, LvlNone, OutNone, 100)
	if c.Total() != 0 {
		t.Fatal("nil CoreProf should total 0")
	}
}

// TestClassifyMem pins the mem.Result → (level, outcome) mapping.
func TestClassifyMem(t *testing.T) {
	cases := []struct {
		level                uint8
		remote, usedPF, late bool
		wantLvl              Level
		wantOut              Outcome
	}{
		{1, false, false, false, LvlL1, OutNone},
		{2, false, false, false, LvlL2, OutNone},
		{2, false, true, false, LvlL2, OutCovered},
		{2, false, true, true, LvlL2, OutLate},
		{3, false, false, false, LvlL3, OutUncovered},
		{3, true, false, false, LvlRemote, OutUncovered},
		{4, false, false, false, LvlDRAM, OutUncovered},
		{4, false, true, true, LvlDRAM, OutLate},
		{0, false, false, false, LvlNone, OutNone},
	}
	for _, tc := range cases {
		lvl, out := ClassifyMem(tc.level, tc.remote, tc.usedPF, tc.late)
		if lvl != tc.wantLvl || out != tc.wantOut {
			t.Errorf("ClassifyMem(%d,%v,%v,%v) = (%v,%v), want (%v,%v)",
				tc.level, tc.remote, tc.usedPF, tc.late, lvl, out, tc.wantLvl, tc.wantOut)
		}
	}
}

// TestCoarseMirrorsCycleCat pins Leaf.Coarse against the flat
// stats.CycleCat attribution rules the cpu model applies.
func TestCoarseMirrorsCycleCat(t *testing.T) {
	cases := []struct {
		cause Cause
		lvl   Level
		want  int
	}{
		{CauseUseful, LvlNone, 0},
		{CauseBranch, LvlNone, 0},
		{CauseLoad, LvlL1, 0}, // near hit counts as useful in the flat view
		{CauseLoad, LvlL2, 0},
		{CauseLoad, LvlL3, 2},
		{CauseLoad, LvlRemote, 2},
		{CauseLoad, LvlDRAM, 2},
		{CauseStore, LvlL2, 0},
		{CauseStore, LvlDRAM, 3},
		{CauseFence, LvlNone, 3}, // atomics always count as store-miss time
		{CauseEnqueue, LvlNone, 1},
		{CauseDequeue, LvlNone, 1},
		{CauseBackpressure, LvlNone, 1},
	}
	for _, tc := range cases {
		l := Leaf{Cause: tc.cause, Level: tc.lvl}
		if got := l.Coarse(); got != tc.want {
			t.Errorf("Coarse(%v,%v) = %d, want %d", tc.cause, tc.lvl, got, tc.want)
		}
	}
}

// fillProfile builds a small two-core profile exercising every frame
// shape.
func fillProfile() *Profile {
	p := New("SSSP", 2)
	p.PCLabel = func(pc uint64) string { return "site" }
	p.Core(0).Add(PCSite(RegionOp, 0x141), CauseLoad, LvlDRAM, OutCovered, 500)
	p.Core(0).Add(IndexSite(RegionOp, 3), CauseUseful, LvlNone, OutNone, 250)
	p.Core(0).Add(WaitSite(RegionDeq), CauseDequeue, LvlNone, OutNone, 100)
	p.Core(1).Add(PCSite(RegionOp, 0x141), CauseLoad, LvlDRAM, OutCovered, 40)
	p.Core(1).Add(WaitSite(RegionBackpressure), CauseBackpressure, LvlNone, OutNone, 10)
	return p
}

// TestTotalsAndBuckets pins merge arithmetic: per-core totals, the
// merged total, and the coarse fold.
func TestTotalsAndBuckets(t *testing.T) {
	p := fillProfile()
	if got := p.Core(0).Total(); got != 850 {
		t.Fatalf("core 0 total = %d, want 850", got)
	}
	if got := p.Total(); got != 900 {
		t.Fatalf("merged total = %d, want 900", got)
	}
	b := p.CoarseBuckets()
	if b[0] != 250 || b[1] != 110 || b[2] != 540 || b[3] != 0 {
		t.Fatalf("coarse buckets = %v, want [250 110 540 0]", b)
	}
	if b[0]+b[1]+b[2]+b[3] != p.Total() {
		t.Fatal("coarse buckets must partition the total")
	}
}

// TestStackPartitions pins the rendered tree: the root carries the total
// and every node's children partition it.
func TestStackPartitions(t *testing.T) {
	p := fillProfile()
	root := p.Stack()
	if root.Label != "SSSP" || root.Cycles != p.Total() {
		t.Fatalf("root = %q/%d, want SSSP/%d", root.Label, root.Cycles, p.Total())
	}
	var walk func(n *CycleStack)
	walk = func(n *CycleStack) {
		if len(n.Kids) == 0 {
			return
		}
		var sum int64
		for _, k := range n.Kids {
			sum += k.Cycles
			walk(k)
		}
		if sum != n.Cycles {
			t.Fatalf("node %q: children sum %d != node %d", n.Label, sum, n.Cycles)
		}
	}
	walk(root)
}

// TestFoldedFormat pins the folded-stack rendering: sorted, newline
// terminated, weights summing to the profile total, stable across calls.
func TestFoldedFormat(t *testing.T) {
	p := fillProfile()
	f := p.Folded()
	if f != p.Folded() {
		t.Fatal("Folded must be deterministic")
	}
	lines := strings.Split(strings.TrimSuffix(f, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d folded lines, want 4:\n%s", len(lines), f)
	}
	var sum int64
	for i, ln := range lines {
		if i > 0 && lines[i-1] > ln {
			t.Fatalf("folded lines not sorted: %q > %q", lines[i-1], ln)
		}
		if !strings.HasPrefix(ln, "SSSP;") {
			t.Fatalf("folded line missing root frame: %q", ln)
		}
		var w int64
		for _, r := range ln[strings.LastIndexByte(ln, ' ')+1:] {
			w = w*10 + int64(r-'0')
		}
		sum += w
	}
	if sum != p.Total() {
		t.Fatalf("folded weights sum to %d, want %d", sum, p.Total())
	}
	want := "SSSP;load;DRAM;covered;apply@site 540"
	if !strings.Contains(f, want+"\n") {
		t.Fatalf("folded output missing merged line %q:\n%s", want, f)
	}
}

// TestPprofDeterministicGzip pins the pprof rendering: byte-identical
// across calls, valid gzip, and the payload carries the frame labels in
// its string table.
func TestPprofDeterministicGzip(t *testing.T) {
	p := fillProfile()
	a, b := p.Pprof(), p.Pprof()
	if !bytes.Equal(a, b) {
		t.Fatal("Pprof must be byte-deterministic")
	}
	zr, err := gzip.NewReader(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("pprof output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gzip payload: %v", err)
	}
	for _, label := range []string{"SSSP", "load", "DRAM", "covered", "apply@site",
		"worklist-dequeue", "engine-backpressure", "cycles", "minnow-sim"} {
		if !bytes.Contains(raw, []byte(label)) {
			t.Errorf("pprof string table missing %q", label)
		}
	}
}

// TestRegionCause pins which regions force a worklist cause.
func TestRegionCause(t *testing.T) {
	cases := []struct {
		r    Region
		want Cause
		ok   bool
	}{
		{RegionOp, CauseUseful, false},
		{RegionEnq, CauseEnqueue, true},
		{RegionDeq, CauseDequeue, true},
		{RegionIdle, CauseDequeue, true},
		{RegionBackpressure, CauseBackpressure, true},
	}
	for _, tc := range cases {
		c, ok := RegionCause(tc.r)
		if ok != tc.ok || (ok && c != tc.want) {
			t.Errorf("RegionCause(%v) = (%v,%v), want (%v,%v)", tc.r, c, ok, tc.want, tc.ok)
		}
	}
}
