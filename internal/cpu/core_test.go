package cpu

import (
	"testing"

	"minnow/internal/mem"
	"minnow/internal/sim"
	"minnow/internal/stats"
	"minnow/internal/uops"
)

func testCore(cfg Config) *Core {
	mcfg := mem.DefaultConfig(1)
	mcfg.ScaleCaches(16)
	return New(0, cfg, mem.NewSystem(mcfg))
}

func TestComputeThroughput(t *testing.T) {
	c := testCore(DefaultConfig())
	var tr uops.Trace
	tr.Compute(400)
	c.Run(tr.Ops, stats.CatUseful)
	// 400 ops at 4-wide issue = 100 cycles (+1 completion slack).
	if c.Now() < 100 || c.Now() > 105 {
		t.Fatalf("400 compute ops took %d cycles", c.Now())
	}
	if c.Stat.Instrs != 400 {
		t.Fatalf("instrs %d", c.Stat.Instrs)
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	// Two cold loads to different lines should overlap (MLP), not
	// serialize.
	one := testCore(DefaultConfig())
	var tr uops.Trace
	tr.Load(0x100000, true, false)
	one.Run(tr.Ops, stats.CatUseful)
	single := one.Now()

	two := testCore(DefaultConfig())
	tr.Reset()
	tr.Load(0x100000, true, false)
	tr.Load(0x200000, true, false)
	two.Run(tr.Ops, stats.CatUseful)
	double := two.Now()

	if double > single+single/2 {
		t.Fatalf("two independent loads (%d) nearly serialized vs one (%d)", double, single)
	}
}

func TestDependentLoadSerializes(t *testing.T) {
	indep := testCore(DefaultConfig())
	var tr uops.Trace
	tr.Load(0x100000, true, false)
	tr.Load(0x200000, true, false)
	indep.Run(tr.Ops, stats.CatUseful)

	dep := testCore(DefaultConfig())
	tr.Reset()
	tr.Load(0x100000, true, false)
	tr.Load(0x200000, true, true) // address depends on the first load
	dep.Run(tr.Ops, stats.CatUseful)

	if dep.Now() <= indep.Now() {
		t.Fatalf("dependent chain (%d) not slower than independent (%d)", dep.Now(), indep.Now())
	}
}

func TestAtomicFenceSerializes(t *testing.T) {
	run := func(noFences bool) sim.Time {
		cfg := DefaultConfig()
		cfg.NoFences = noFences
		c := testCore(cfg)
		var tr uops.Trace
		for i := 0; i < 8; i++ {
			tr.Load(uint64(0x100000+i*0x10000), true, false)
			tr.Atomic(uint64(0x800000 + i*0x10000))
		}
		c.Run(tr.Ops, stats.CatUseful)
		return c.Now()
	}
	fenced, free := run(false), run(true)
	if free >= fenced {
		t.Fatalf("NoFences (%d) not faster than fenced (%d)", free, fenced)
	}
	// The paper's PR observation: fences serialize heavily.
	if float64(fenced)/float64(free) < 1.5 {
		t.Fatalf("fence penalty only %.2fx", float64(fenced)/float64(free))
	}
}

func TestMispredictStalls(t *testing.T) {
	run := func(perfect bool) sim.Time {
		cfg := DefaultConfig()
		cfg.PerfectBP = perfect
		c := testCore(cfg)
		var tr uops.Trace
		// Unpredictable branch pattern fed twice (xorshift-ish bits).
		x := uint64(0x9e3779b97f4a7c15)
		for i := 0; i < 500; i++ {
			x ^= x << 13
			x ^= x >> 7
			tr.Compute(4)
			tr.Branch(0x40, x&1 == 0, false)
		}
		c.Run(tr.Ops, stats.CatUseful)
		return c.Now()
	}
	real, ideal := run(false), run(true)
	if ideal >= real {
		t.Fatalf("perfect BP (%d) not faster than realistic (%d)", ideal, real)
	}
}

func TestBranchDependsOnLoad(t *testing.T) {
	// A mispredicting branch that waits on a cold load stalls much
	// longer than one that does not (§3.3).
	run := func(dep bool) sim.Time {
		c := testCore(DefaultConfig())
		var tr uops.Trace
		x := uint64(12345)
		for i := 0; i < 50; i++ {
			x ^= x << 13
			x ^= x >> 7
			tr.Load(uint64(0x100000+i*0x4000), true, false)
			tr.Branch(0x44, x&1 == 0, dep)
		}
		c.Run(tr.Ops, stats.CatUseful)
		return c.Now()
	}
	if run(true) <= run(false) {
		t.Fatal("load-dependent branches not slower")
	}
}

func TestLoadQueueBoundsMLP(t *testing.T) {
	// With a 2-entry LQ, 16 cold loads must serialize in pairs; with 64
	// entries they all overlap.
	run := func(lq int) sim.Time {
		cfg := DefaultConfig()
		cfg.LoadQueue = lq
		c := testCore(cfg)
		var tr uops.Trace
		for i := 0; i < 16; i++ {
			tr.Load(uint64(0x100000+i*0x10000), true, false)
		}
		c.Run(tr.Ops, stats.CatUseful)
		return c.Now()
	}
	small, big := run(2), run(64)
	if big >= small {
		t.Fatalf("large LQ (%d) not faster than tiny LQ (%d)", big, small)
	}
}

func TestROBWindowBounds(t *testing.T) {
	// A tiny ROB forces near-serial retirement of long-latency loads.
	run := func(rob int) sim.Time {
		cfg := ScaledROB(rob)
		c := testCore(cfg)
		var tr uops.Trace
		for i := 0; i < 32; i++ {
			tr.Compute(8)
			tr.Load(uint64(0x100000+i*0x10000), true, false)
		}
		c.Run(tr.Ops, stats.CatUseful)
		return c.Now()
	}
	if run(256) >= run(16) {
		t.Fatal("bigger ROB not faster under load-heavy window pressure")
	}
}

func TestCycleAccountingCoversWallTime(t *testing.T) {
	c := testCore(DefaultConfig())
	var tr uops.Trace
	for i := 0; i < 100; i++ {
		tr.Compute(10)
		tr.Load(uint64(0x100000+i*0x8000), true, false)
		tr.Store(uint64(0x900000 + i*0x8000))
	}
	c.Run(tr.Ops, stats.CatUseful)
	var acc int64
	for _, v := range c.Stat.Cycles {
		acc += v
	}
	wall := int64(c.Now())
	if acc < wall*9/10 || acc > wall*11/10 {
		t.Fatalf("accounted %d cycles vs wall %d", acc, wall)
	}
}

func TestAdvanceChargesCategory(t *testing.T) {
	c := testCore(DefaultConfig())
	c.Advance(500, stats.CatWorklist)
	if c.Stat.Cycles[stats.CatWorklist] != 500 {
		t.Fatalf("advance charged %d", c.Stat.Cycles[stats.CatWorklist])
	}
	c.Advance(100, stats.CatWorklist) // backwards: no-op
	if c.Now() != 500 {
		t.Fatalf("clock moved backwards to %d", c.Now())
	}
}

func TestRunTagged(t *testing.T) {
	c := testCore(DefaultConfig())
	var tr uops.Trace
	tr.Compute(40)
	d := c.RunTagged(tr.Ops, stats.CatWorklist)
	if d <= 0 {
		t.Fatalf("tagged run took %d", d)
	}
	if c.Stat.Cycles[stats.CatWorklist] == 0 {
		t.Fatal("worklist category not charged")
	}
}

func TestDelinquentCounting(t *testing.T) {
	c := testCore(DefaultConfig())
	var tr uops.Trace
	tr.Load(0x100000, true, false)
	tr.Load(0x100040, false, false)
	tr.Load(0x100080, false, false)
	c.Run(tr.Ops, stats.CatUseful)
	if c.Stat.Loads != 3 || c.Stat.Delinquent != 1 {
		t.Fatalf("loads %d delinquent %d", c.Stat.Loads, c.Stat.Delinquent)
	}
}
