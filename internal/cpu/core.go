// Package cpu models an out-of-order Skylake-like core at the level the
// paper's experiments need: instruction windows (ROB / reservation station
// / load queue / store queue) that bound memory-level parallelism, x86-TSO
// fences at atomics, and branch-mispredict issue stalls resolved by a TAGE
// predictor — the three mechanisms Fig. 4 sweeps.
//
// The model is interval-style: micro-ops issue in order at IssueWidth per
// cycle, complete out of order (loads through the simulated memory
// hierarchy), and retire in order through a ROB-sized ring. Retire-time
// gaps are attributed to cycle categories for the Fig. 5 breakdown.
//
// Determinism contract: a core's timing depends only on the micro-op
// stream it is fed and the memory system's (deterministic) responses;
// the core holds no randomness of its own beyond the TAGE predictor's
// deterministic tables. The optional observability hooks (TL/Track)
// observe retire-time stalls and never feed back into timing.
//
// Bound/weave placement: although the pipeline structures (ROB, queues,
// predictor) are private to the core, every memory micro-op calls into
// the shared mem.System — updating demand counters, directory state, and
// L3/NoC/DRAM reservations — so a core-driving actor interacts with
// shared state from its first simulated instruction. Actors built on
// this model declare sim.HorizonAlwaysWeave in sim.Engine.RunParallel
// unless their entire memory system is a private copy (see
// galois.Worker.Isolated and harness.RunRate) or the pending step is a
// pure clock advance (Advance with no timeline attached), which touches
// only per-core state and is the lookahead galois.Config.SharedHorizons
// exposes. Note the floor accessors on the shared models (mem.System,
// noc.Mesh, dram.Memory: MinLatency) bound when an access *completes*,
// not when the shared reservation is *made* — reservations happen at
// issue time — so they document and validate timing, but cannot extend
// a core actor's horizon past its next memory access.
package cpu

import (
	"minnow/internal/bpred"
	"minnow/internal/mem"
	"minnow/internal/obs"
	"minnow/internal/prof"
	"minnow/internal/sim"
	"minnow/internal/stats"
	"minnow/internal/uops"
)

// Config sets the core microarchitecture (Table 3 defaults via
// DefaultConfig).
type Config struct {
	IssueWidth int
	ROB        int
	RS         int
	LoadQueue  int
	StoreQueue int
	MispredPen sim.Time // pipeline refill after a mispredict
	PerfectBP  bool     // Fig. 4 "ideal": no branch stalls
	NoFences   bool     // Fig. 4 "ideal": atomics don't serialize
}

// DefaultConfig mirrors Table 3: 224-entry ROB, 97-entry unified RS,
// 72-entry LQ, 56-entry SQ, 4-wide issue.
func DefaultConfig() Config {
	return Config{
		IssueWidth: 4,
		ROB:        224,
		RS:         97,
		LoadQueue:  72,
		StoreQueue: 56,
		MispredPen: 15,
	}
}

// ScaledROB returns a config with the given ROB size and every buffer
// scaled by the same ratio, as the Fig. 4 sweep prescribes ("each
// configuration keeps the same buffer sizing ratio", normalized to
// 256 ROB / 128 RS / 64 LQ / 64 SQ).
func ScaledROB(rob int) Config {
	c := DefaultConfig()
	c.ROB = rob
	c.RS = rob / 2
	c.LoadQueue = rob / 4
	c.StoreQueue = rob / 4
	return c
}

// Prefetcher observes the core's demand-load stream (hardware prefetcher
// baselines: stride, IMP). OnLoad is called for every load with its static
// site, address, and issue time; the implementation issues its own
// HWPrefetch accesses against the memory system.
type Prefetcher interface {
	OnLoad(pc, addr uint64, at sim.Time)
}

// Core is one simulated core. It is not an actor itself; the framework
// worker that owns it drives it by calling Run.
type Core struct {
	ID   int
	cfg  Config
	mem  *mem.System
	bp   *bpred.Predictor
	Stat stats.CoreStats

	// Prefetcher, when non-nil, snoops demand loads.
	Prefetcher Prefetcher

	// TL, when non-nil, receives stall instants on Track (timeline
	// observability; set by the harness together with Track).
	TL    *obs.Timeline
	Track obs.TrackID

	// Prof, when non-nil, receives the refined cycle attribution (the
	// top-down profiler; set by the harness under -profile). Every cycle
	// charged to Stat.Cycles is mirrored into exactly one Prof leaf.
	Prof *prof.CoreProf

	// region and cursor scope profiler attribution sites: the framework
	// brackets worklist operations with ProfRegion/ProfRestore, and
	// cursor counts micro-ops within the current region.
	region prof.Region
	cursor int

	now sim.Time

	// In-order retire ring: retireAt[i%ROB] is the retire time of the
	// i-th uop; head counts issued uops.
	retireAt []sim.Time
	seq      int64

	// Sliding windows bounding in-flight ops.
	loadDone  []sim.Time // completion times of the last LQ loads
	loadSeq   int64
	storeDone []sim.Time
	storeSeq  int64
	rsDone    []sim.Time // completion times of the last RS uops
	rsSeq     int64

	lastLoadDone sim.Time // completion of the most recent load (dependences)
	fenceUntil   sim.Time // memory ops may not issue before this
	issueFree    sim.Time // next cycle the front-end can issue

	pendingMemDone sim.Time // max completion among in-flight mem ops
}

// New builds a core attached to the shared memory system.
func New(id int, cfg Config, m *mem.System) *Core {
	return &Core{
		ID:        id,
		cfg:       cfg,
		mem:       m,
		bp:        bpred.New(),
		retireAt:  make([]sim.Time, cfg.ROB),
		loadDone:  make([]sim.Time, cfg.LoadQueue),
		storeDone: make([]sim.Time, cfg.StoreQueue),
		rsDone:    make([]sim.Time, cfg.RS),
	}
}

// Now returns the core's local clock.
func (c *Core) Now() sim.Time { return c.now }

// SetNow moves the local clock forward (e.g. after blocking on a Minnow
// dequeue). Moving backwards is ignored.
func (c *Core) SetNow(t sim.Time) {
	if t > c.now {
		c.now = t
	}
}

// Config returns the core configuration.
func (c *Core) Config() Config { return c.cfg }

// ProfRegion enters profiler region r, returning the previous region and
// micro-op cursor for ProfRestore. The fields it touches feed only the
// (observe-only) profiler, so bracketing is timing-neutral whether or not
// profiling is enabled.
func (c *Core) ProfRegion(r prof.Region) (prof.Region, int) {
	prev, cur := c.region, c.cursor
	c.region = r
	c.cursor = 0
	return prev, cur
}

// ProfRestore re-enters the region saved by a ProfRegion call.
func (c *Core) ProfRestore(r prof.Region, cursor int) {
	c.region = r
	c.cursor = cursor
}

// Mem exposes the shared memory system.
func (c *Core) Mem() *mem.System { return c.mem }

// stallInstantMin is the smallest retire-time gap worth an EvStall*
// timeline instant; shorter gaps are pipeline noise that would swamp the
// trace without explaining anything.
const stallInstantMin = 48

// windowSlot reserves a slot in a completion-time ring of the given
// capacity: the new op may not issue before the op `cap` positions back
// has completed.
func windowSlot(ring []sim.Time, seq int64, issue sim.Time) sim.Time {
	prev := ring[seq%int64(len(ring))]
	if prev > issue {
		issue = prev
	}
	return issue
}

// Run executes a micro-op batch starting at the core's local clock,
// advancing it past the batch's retirement. All cycles consumed are
// attributed to category cat (worklist operations pass CatWorklist;
// operator bodies pass CatUseful, within which memory-stall cycles are
// re-attributed to the load/store-miss categories).
func (c *Core) Run(ops []uops.UOp, cat stats.CycleCat) {
	// The front-end resumes no earlier than the batch's start time; it
	// does NOT wait for prior retirement (only the ROB window does).
	if c.issueFree < c.now {
		c.issueFree = c.now
	}
	for i := range ops {
		op := &ops[i]
		// Front-end: in-order issue at IssueWidth ops/cycle.
		issue := c.issueFree

		// ROB: cannot issue until the op ROB-entries back has retired.
		issue = windowSlot(c.retireAt, c.seq, issue)
		// RS: bounded in-flight uncompleted uops.
		issue = windowSlot(c.rsDone, c.rsSeq, issue)

		var complete sim.Time
		var stallCat stats.CycleCat = cat

		// Refined-attribution inputs for the profiler: the micro-op's
		// stall cause, the level that served its memory access, the
		// prefetch outcome of that access, and whether a branch actually
		// mispredicted. Pure bookkeeping — never feeds back into timing.
		cause := prof.CauseUseful
		lvl, out := prof.LvlNone, prof.OutNone
		mispredicted := false

		switch op.Kind {
		case uops.Compute:
			n := int(op.N)
			c.Stat.Instrs += int64(n)
			groups := (n + c.cfg.IssueWidth - 1) / c.cfg.IssueWidth
			complete = issue + sim.Time(groups)
			c.issueFree = issue + sim.Time(groups)

		case uops.Load:
			c.Stat.Instrs++
			c.Stat.Loads++
			if op.Delinquent {
				c.Stat.Delinquent++
			}
			issue = windowSlot(c.loadDone, c.loadSeq, issue)
			if !c.cfg.NoFences && issue < c.fenceUntil {
				issue = c.fenceUntil
			}
			if op.DepLoad && c.lastLoadDone > issue {
				issue = c.lastLoadDone
			}
			res := c.mem.Access(c.ID, op.Addr, mem.Load, issue)
			complete = res.Done
			c.loadDone[c.loadSeq%int64(len(c.loadDone))] = complete
			c.loadSeq++
			c.lastLoadDone = complete
			if c.Prefetcher != nil {
				c.Prefetcher.OnLoad(op.PC, op.Addr, issue)
			}
			if cat == stats.CatUseful && res.Level >= 3 {
				stallCat = stats.CatLoadMiss
			}
			cause = prof.CauseLoad
			lvl, out = prof.ClassifyMem(res.Level, res.Remote, res.UsedPrefetch, res.PFLate)
			c.issueFree = issue + 1

		case uops.Store:
			c.Stat.Instrs++
			issue = windowSlot(c.storeDone, c.storeSeq, issue)
			if !c.cfg.NoFences && issue < c.fenceUntil {
				issue = c.fenceUntil
			}
			res := c.mem.Access(c.ID, op.Addr, mem.Store, issue)
			complete = res.Done
			c.storeDone[c.storeSeq%int64(len(c.storeDone))] = complete
			c.storeSeq++
			if cat == stats.CatUseful && res.Level >= 3 {
				stallCat = stats.CatStoreMiss
			}
			cause = prof.CauseStore
			lvl, out = prof.ClassifyMem(res.Level, res.Remote, res.UsedPrefetch, res.PFLate)
			c.issueFree = issue + 1

		case uops.Atomic:
			c.Stat.Instrs++
			c.Stat.Atomics++
			issue = windowSlot(c.storeDone, c.storeSeq, issue)
			if !c.cfg.NoFences {
				// x86-TSO: all prior loads and stores must have
				// completed before the locked RMW executes.
				if c.pendingMemDone > issue {
					issue = c.pendingMemDone
				}
				if issue < c.fenceUntil {
					issue = c.fenceUntil
				}
			}
			res := c.mem.Access(c.ID, op.Addr, mem.Atomic, issue)
			complete = res.Done
			if !c.cfg.NoFences {
				// Later memory ops wait for the RMW to complete.
				c.fenceUntil = complete
			}
			c.storeDone[c.storeSeq%int64(len(c.storeDone))] = complete
			c.storeSeq++
			if cat == stats.CatUseful {
				stallCat = stats.CatStoreMiss
			}
			cause = prof.CauseFence
			lvl, out = prof.ClassifyMem(res.Level, res.Remote, res.UsedPrefetch, res.PFLate)
			c.issueFree = issue + 1

		case uops.Branch:
			c.Stat.Instrs++
			c.Stat.Branches++
			misp := c.bp.Predict(op.PC, op.Taken)
			resolve := issue + 1
			if op.DepBranch && c.lastLoadDone > resolve {
				// The branch resolves only when its input load returns —
				// the costly case §3.3 highlights.
				resolve = c.lastLoadDone
			}
			complete = resolve
			if misp && !c.cfg.PerfectBP {
				c.Stat.Mispreds++
				mispredicted = true
				cause = prof.CauseBranch
				// No further issue until resolve + refill.
				c.issueFree = resolve + c.cfg.MispredPen
			} else {
				c.issueFree = issue + 1
			}
		}

		if complete < issue+1 {
			complete = issue + 1
		}
		if op.Kind == uops.Load || op.Kind == uops.Store || op.Kind == uops.Atomic {
			if complete > c.pendingMemDone {
				c.pendingMemDone = complete
			}
		}

		// RS slot frees at completion.
		c.rsDone[c.rsSeq%int64(len(c.rsDone))] = complete
		c.rsSeq++

		// In-order retire.
		prevRetire := c.retireAt[(c.seq+int64(len(c.retireAt))-1)%int64(len(c.retireAt))]
		retire := complete
		if prevRetire > retire {
			retire = prevRetire
		}
		// Attribute the retire-time gap.
		base := prevRetire
		if c.now > base {
			base = c.now
		}
		if retire > base {
			gap := int64(retire - base)
			// One issue-slot's worth of time is "useful" front-end
			// progress; the remainder is stall attributed to the op.
			c.Stat.Cycles[stallCat] += gap
			if c.Prof != nil {
				pcause := cause
				if rc, ok := prof.RegionCause(c.region); ok {
					// Worklist-operation regions own their cycles
					// whatever micro-op consumed them, matching the flat
					// CatWorklist attribution.
					pcause = rc
				} else if cat == stats.CatWorklist {
					// Unbracketed worklist batch (the BSP-style kernels'
					// queue maintenance): keep the coarse mapping exact.
					pcause = prof.CauseEnqueue
				}
				site := prof.IndexSite(c.region, c.cursor)
				if op.PC != 0 {
					site = prof.PCSite(c.region, op.PC)
				}
				c.Prof.Add(site, pcause, lvl, out, gap)
			}
			if c.TL != nil && gap >= stallInstantMin {
				c.TL.Instant(c.Track, stallKind(stallCat, op.Kind, mispredicted), base, gap)
			}
		}
		c.retireAt[c.seq%int64(len(c.retireAt))] = retire
		c.seq++
		c.cursor++
		if retire > c.now {
			c.now = retire
		}
	}
}

// stallKind maps a retire-gap's coarse category onto the timeline stall
// vocabulary so every attributed stall — not just memory misses — gets
// an instant on the core track: load misses, store misses, atomics'
// fence serialization, worklist operations, branch-mispredict refills,
// and plain dependence/issue-width gaps.
func stallKind(cat stats.CycleCat, kind uops.Kind, mispredicted bool) obs.Kind {
	switch cat {
	case stats.CatLoadMiss:
		return obs.EvStallLoad
	case stats.CatStoreMiss:
		if kind == uops.Atomic {
			return obs.EvStallFence
		}
		return obs.EvStallStore
	case stats.CatWorklist:
		return obs.EvStallWorklist
	}
	if mispredicted {
		return obs.EvStallBranch
	}
	return obs.EvStallDep
}

// RunTagged is Run plus per-op-kind counter deltas for worklist-operation
// cost accounting (Fig. 11): it measures the cycles the batch consumed.
func (c *Core) RunTagged(ops []uops.UOp, cat stats.CycleCat) sim.Time {
	start := c.now
	c.Run(ops, cat)
	return c.now - start
}

// Advance idles the core until t, attributing the wait to cat (used for
// blocking worklist dequeues and barriers).
func (c *Core) Advance(t sim.Time, cat stats.CycleCat) {
	if t > c.now {
		gap := int64(t - c.now)
		c.Stat.Cycles[cat] += gap
		if c.Prof != nil {
			cause := prof.CauseUseful
			if rc, ok := prof.RegionCause(c.region); ok {
				cause = rc
			} else if cat == stats.CatWorklist {
				// Unbracketed worklist wait (BSP barriers): a wait for
				// work to appear, kept coarse-consistent.
				cause = prof.CauseDequeue
			}
			c.Prof.Add(prof.WaitSite(c.region), cause, prof.LvlNone, prof.OutNone, gap)
		}
		if c.TL != nil && cat == stats.CatWorklist && gap >= stallInstantMin {
			c.TL.Instant(c.Track, obs.EvStallWorklist, c.now, gap)
		}
		c.now = t
		if c.issueFree < t {
			c.issueFree = t
		}
	}
}

// Mispredicts exposes the predictor's mispredict count (tests).
func (c *Core) Mispredicts() int64 { return c.bp.Mispredict }
