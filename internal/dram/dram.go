// Package dram models main memory: N independent channels (Table 3:
// 12-channel DDR4-2400 CL17), line-address interleaved, each with a fixed
// access latency plus a bandwidth-limited service slot modeled as a
// busy-until reservation.
//
// At 2.5 GHz core clock, one DDR4-2400 channel moves a 64B line in
// ~3.3 ns ≈ 8 core cycles, and CL17 plus controller overhead lands the
// idle-latency around 120 core cycles; those are the defaults.
//
// Determinism contract: channel selection hashes the line address and
// service times depend only on prior reservations, so a given access
// sequence always produces identical latencies. BusyChannels is the
// read-only occupancy view the observability probes sample; it never
// mutates reservation state.
//
// Bound/weave placement: channel service slots are busy-until
// reservations shared by every actor whose misses reach memory, so DRAM
// access is weave-only under sim.Engine.RunParallel — the same rule as
// the mesh and the L3 banks in front of it; actors that can reach it
// declare sim.HorizonAlwaysWeave. MinLatency exposes the idle-latency
// completion floor for lookahead reasoning and validation.
package dram

import "minnow/internal/sim"

// Config sets the memory system parameters.
type Config struct {
	Channels      int      // number of independent channels
	LatencyCycles sim.Time // idle access latency (core cycles)
	ServiceCycles sim.Time // channel occupancy per 64B access (bandwidth)
}

// DefaultConfig mirrors Table 3.
func DefaultConfig() Config {
	return Config{Channels: 12, LatencyCycles: 120, ServiceCycles: 8}
}

// Memory is the channel-interleaved DRAM model.
type Memory struct {
	cfg      Config
	nextFree []sim.Time

	Accesses  int64
	StallCyc  int64 // cycles requests waited for a busy channel
	PeakQueue sim.Time

	// FaultRetry, when non-nil, returns injected retry latency added to
	// each access (deterministic fault injection). Nil in fault-free runs,
	// costing one comparison per access.
	FaultRetry func() sim.Time
}

// New returns a memory with the given configuration. Channels must be >= 1.
func New(cfg Config) *Memory {
	if cfg.Channels < 1 {
		panic("dram: need at least one channel")
	}
	return &Memory{cfg: cfg, nextFree: make([]sim.Time, cfg.Channels)}
}

// Config returns the active configuration.
func (m *Memory) Config() Config { return m.cfg }

// channelOf interleaves consecutive lines across channels.
func (m *Memory) channelOf(lineAddr uint64) int {
	return int(lineAddr % uint64(m.cfg.Channels))
}

// contentionWindow bounds how much of a channel reservation a lagging
// request waits on: reservations made more than this far ahead of the
// arrival reflect simulation clock skew between actors, not real queueing
// (see the mesh model for the same treatment).
const contentionWindow = 256

// Access services a 64B line request arriving at time t and returns the
// time its data is available at the memory controller.
func (m *Memory) Access(lineAddr uint64, t sim.Time) sim.Time {
	ch := m.channelOf(lineAddr)
	m.Accesses++
	start := t
	if m.nextFree[ch] > start && m.nextFree[ch]-start <= contentionWindow {
		m.StallCyc += int64(m.nextFree[ch] - start)
		if m.nextFree[ch]-start > m.PeakQueue {
			m.PeakQueue = m.nextFree[ch] - start
		}
		start = m.nextFree[ch]
	}
	if start+m.cfg.ServiceCycles > m.nextFree[ch] {
		m.nextFree[ch] = start + m.cfg.ServiceCycles
	}
	done := start + m.cfg.LatencyCycles
	if m.FaultRetry != nil {
		done += m.FaultRetry()
	}
	return done
}

// MinLatency returns DRAM's conservative timing floor: the idle access
// latency. Every Access completes at or after t+MinLatency — channel
// queueing and injected retries only add to it. It reads no reservation
// state (safe for bound-phase lookahead reasoning), and like the mesh
// floor it bounds *completion*, not the channel reservation the access
// makes at its arrival time.
func (m *Memory) MinLatency() sim.Time { return m.cfg.LatencyCycles }

// BusyChannels returns how many channels hold a service reservation
// extending past `now` — the instantaneous queue-occupancy gauge the
// observability sampler reads. Read-only: sampling it never perturbs
// timing.
func (m *Memory) BusyChannels(now sim.Time) int64 {
	var n int64
	for _, f := range m.nextFree {
		if f > now {
			n++
		}
	}
	return n
}

// Reset clears reservations and counters.
func (m *Memory) Reset() {
	for i := range m.nextFree {
		m.nextFree[i] = 0
	}
	m.Accesses, m.StallCyc, m.PeakQueue = 0, 0, 0
}
