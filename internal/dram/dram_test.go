package dram

import (
	"testing"

	"minnow/internal/sim"
)

func TestIdleLatency(t *testing.T) {
	m := New(Config{Channels: 4, LatencyCycles: 100, ServiceCycles: 8})
	if done := m.Access(0, 50); done != 150 {
		t.Fatalf("done %d, want 150", done)
	}
}

func TestChannelInterleaving(t *testing.T) {
	m := New(Config{Channels: 4, LatencyCycles: 100, ServiceCycles: 8})
	// Lines 0..3 land on distinct channels: no queueing.
	for line := uint64(0); line < 4; line++ {
		if done := m.Access(line, 0); done != 100 {
			t.Fatalf("line %d done %d, want 100", line, done)
		}
	}
	if m.StallCyc != 0 {
		t.Fatal("interleaved accesses stalled")
	}
}

func TestQueueing(t *testing.T) {
	m := New(Config{Channels: 1, LatencyCycles: 100, ServiceCycles: 8})
	var prev sim.Time
	for i := 0; i < 5; i++ {
		done := m.Access(0, 0)
		if done <= prev && i > 0 {
			t.Fatalf("access %d not serialized: %d after %d", i, done, prev)
		}
		prev = done
	}
	// 5 accesses at 8 cycles service: last starts at 32.
	if prev != 32+100 {
		t.Fatalf("last done %d, want 132", prev)
	}
	if m.PeakQueue == 0 || m.StallCyc == 0 {
		t.Fatal("queueing not recorded")
	}
}

func TestBandwidthScalesWithChannels(t *testing.T) {
	run := func(channels int) sim.Time {
		m := New(Config{Channels: channels, LatencyCycles: 100, ServiceCycles: 8})
		var last sim.Time
		for line := uint64(0); line < 64; line++ {
			if d := m.Access(line, 0); d > last {
				last = d
			}
		}
		return last
	}
	if run(12) >= run(1) {
		t.Fatal("12 channels not faster than 1")
	}
}

func TestReset(t *testing.T) {
	m := New(DefaultConfig())
	m.Access(0, 0)
	m.Access(0, 0)
	m.Reset()
	if m.Accesses != 0 || m.StallCyc != 0 {
		t.Fatal("reset did not clear")
	}
	if d := m.Access(0, 0); d != m.Config().LatencyCycles {
		t.Fatalf("post-reset latency %d", d)
	}
}

func TestPanicsWithoutChannels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero channels did not panic")
		}
	}()
	New(Config{})
}

// TestMinLatencyFloor pins the conservative-lookahead floor: no access,
// however queued, completes before t + MinLatency, and an idle channel
// achieves the floor exactly.
func TestMinLatencyFloor(t *testing.T) {
	m := New(Config{Channels: 2, LatencyCycles: 100, ServiceCycles: 8})
	if got := m.MinLatency(); got != 100 {
		t.Fatalf("MinLatency = %d, want 100", got)
	}
	if done := m.Access(0, 500); done != 500+m.MinLatency() {
		t.Fatalf("idle access done at %d, want %d", done, 500+m.MinLatency())
	}
	// Hammer one channel so every access queues; the floor still holds.
	for i := 0; i < 200; i++ {
		at := sim.Time(i % 30)
		if done := m.Access(0, at); done < at+m.MinLatency() {
			t.Fatalf("access %d at %d completed at %d, undercutting the %d-cycle floor",
				i, at, done, m.MinLatency())
		}
	}
}
