// Package fault implements deterministic, seeded fault injection and the
// diagnostic machinery around it: parseable fault plans, a per-run
// injector whose decisions derive from decorrelated rng streams, and the
// watchdog snapshot dumped when a run stops making progress.
//
// The paper's central robustness claim is that Minnow engines are
// *optional accelerators* (§3-§4): when an engine stalls, loses credits,
// or disappears, the cores must degrade gracefully to the software OBIM
// baseline with no lost tasks. This package supplies the controlled ways
// to break the system so the harness can prove that claim:
//
//   - engine-stall: the engine back-end freezes for a burst of cycles;
//   - engine-offline: the engine dies permanently at a planned time and
//     its cores fall back to a software worklist mid-run;
//   - noc-delay: transient message-latency spikes on the mesh;
//   - dram-retry: transient DRAM retry latency;
//   - spill-retry: the engine's spill/fill accesses transiently fail and
//     are reissued under bounded exponential backoff;
//   - credit-loss: prefetch credit returns are dropped, exercising the
//     engine's credit-leak audit and pool recovery.
//
// Determinism contract: every injection decision comes from rng streams
// seeded by the plan alone, and the simulator consults the injector in
// the deterministic actor order, so the same (configuration, seed, plan)
// triple always reproduces the same faults at the same simulated times —
// and therefore the same RunSummary hash. With no plan installed every
// hook is nil or a single comparison; fault-free runs are byte-identical
// to a build without this package.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"minnow/internal/sim"
)

// ProbDelay is a per-event fault: with probability P the event is delayed
// by Cycles.
type ProbDelay struct {
	P      float64
	Cycles sim.Time
}

// RetrySpec is a per-access retry fault: each of up to Max rounds fails
// independently with probability P, adding Extra cycles per failed round.
type RetrySpec struct {
	P     float64
	Extra sim.Time
	Max   int
}

// BackoffSpec is a retry-with-backoff fault: attempt n fails with
// probability P (so the chance of reaching attempt n decays
// geometrically), costs Backoff<<(n-1) cycles of exponential backoff,
// and gives up after Max attempts.
type BackoffSpec struct {
	P       float64
	Backoff sim.Time
	Max     int
}

// Plan is one parsed fault plan. The zero value injects nothing.
type Plan struct {
	// Seed drives the injector's rng streams (0 is treated as 1).
	Seed uint64

	// EngineStall freezes an engine back-end for Cycles with probability
	// P per engine step.
	EngineStall ProbDelay
	// NoCDelay adds Cycles to a mesh message with probability P.
	NoCDelay ProbDelay
	// DRAMRetry adds retry latency to DRAM accesses.
	DRAMRetry RetrySpec
	// SpillRetry makes engine spill/fill memory accesses transiently
	// fail; the engine reissues them under bounded exponential backoff.
	SpillRetry BackoffSpec
	// CreditLoss drops each prefetch credit return with this probability.
	CreditLoss float64

	// OfflineAt, when positive, kills engines permanently the first time
	// one of their cores touches them at or after this simulated time.
	OfflineAt sim.Time
	// OfflineEngines selects which engine indices die (nil = all).
	OfflineEngines []int
}

// Transient reports whether the plan contains only recoverable faults
// (no permanent engine-offline events). Transient plans must leave
// benchmark answers bit-identical to the fault-free run.
func (p *Plan) Transient() bool { return p.OfflineAt <= 0 }

// String renders the plan in canonical clause form; ParsePlan(p.String())
// reproduces the plan.
func (p *Plan) String() string {
	var cl []string
	if p.Seed != 0 {
		cl = append(cl, fmt.Sprintf("seed=%d", p.Seed))
	}
	if p.EngineStall.P > 0 {
		cl = append(cl, fmt.Sprintf("engine-stall:p=%g,cycles=%d", p.EngineStall.P, p.EngineStall.Cycles))
	}
	if p.OfflineAt > 0 {
		c := fmt.Sprintf("engine-offline:at=%d", p.OfflineAt)
		if len(p.OfflineEngines) > 0 {
			strs := make([]string, len(p.OfflineEngines))
			for i, e := range p.OfflineEngines {
				strs[i] = strconv.Itoa(e)
			}
			c += ",engines=" + strings.Join(strs, "+")
		}
		cl = append(cl, c)
	}
	if p.NoCDelay.P > 0 {
		cl = append(cl, fmt.Sprintf("noc-delay:p=%g,cycles=%d", p.NoCDelay.P, p.NoCDelay.Cycles))
	}
	if p.DRAMRetry.P > 0 {
		cl = append(cl, fmt.Sprintf("dram-retry:p=%g,extra=%d,max=%d", p.DRAMRetry.P, p.DRAMRetry.Extra, p.DRAMRetry.Max))
	}
	if p.SpillRetry.P > 0 {
		cl = append(cl, fmt.Sprintf("spill-retry:p=%g,backoff=%d,max=%d", p.SpillRetry.P, p.SpillRetry.Backoff, p.SpillRetry.Max))
	}
	if p.CreditLoss > 0 {
		cl = append(cl, fmt.Sprintf("credit-loss:p=%g", p.CreditLoss))
	}
	return strings.Join(cl, ";")
}

// Presets are the named fault plans accepted wherever a plan string is:
// "transient" (every recoverable fault class at once), "offline" (all
// engines die mid-run), and "chaos" (both).
var presets = map[string]string{
	"transient": "seed=1;engine-stall:p=0.002,cycles=400;noc-delay:p=0.001,cycles=150;" +
		"dram-retry:p=0.002,extra=120,max=2;spill-retry:p=0.005,backoff=64,max=4;credit-loss:p=0.05",
	"offline": "seed=1;engine-offline:at=50000",
	"chaos": "seed=1;engine-stall:p=0.002,cycles=400;noc-delay:p=0.001,cycles=150;" +
		"dram-retry:p=0.002,extra=120,max=2;spill-retry:p=0.005,backoff=64,max=4;credit-loss:p=0.05;" +
		"engine-offline:at=50000",
}

// Presets lists the named plans accepted by ParsePlan, sorted.
func Presets() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ParsePlan parses a fault-plan string: either a preset name (see
// Presets) or semicolon-separated clauses of the form
//
//	seed=N
//	engine-stall:p=F,cycles=N
//	engine-offline:at=N[,engines=0+1+...]
//	noc-delay:p=F,cycles=N
//	dram-retry:p=F[,extra=N][,max=N]
//	spill-retry:p=F[,backoff=N][,max=N]
//	credit-loss:p=F
//
// Probabilities must lie in [0, 1]; counts and cycle values must be
// non-negative. Omitted optional keys take conservative defaults.
func ParsePlan(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("fault: empty plan")
	}
	if preset, ok := presets[s]; ok {
		s = preset
	}
	p := &Plan{}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if err := p.parseClause(clause); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// parseClause folds one clause into the plan.
func (p *Plan) parseClause(clause string) error {
	name, argstr, _ := strings.Cut(clause, ":")
	name = strings.TrimSpace(name)
	if strings.Contains(name, "=") {
		// Bare key=value clause (only "seed=N").
		key, val, _ := strings.Cut(name, "=")
		if key != "seed" {
			return fmt.Errorf("fault: unknown clause %q", key)
		}
		seed, err := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
		if err != nil {
			return fmt.Errorf("fault: bad seed %q", val)
		}
		p.Seed = seed
		return nil
	}
	args, err := parseArgs(name, argstr)
	if err != nil {
		return err
	}
	switch name {
	case "engine-stall":
		p.EngineStall.P = args.prob("p", 0.001)
		p.EngineStall.Cycles = sim.Time(args.num("cycles", 400))
	case "engine-offline":
		p.OfflineAt = sim.Time(args.num("at", 50000))
		p.OfflineEngines = args.engines
		if p.OfflineAt <= 0 {
			return fmt.Errorf("fault: engine-offline needs at > 0")
		}
	case "noc-delay":
		p.NoCDelay.P = args.prob("p", 0.001)
		p.NoCDelay.Cycles = sim.Time(args.num("cycles", 150))
	case "dram-retry":
		p.DRAMRetry.P = args.prob("p", 0.001)
		p.DRAMRetry.Extra = sim.Time(args.num("extra", 120))
		p.DRAMRetry.Max = int(args.num("max", 2))
	case "spill-retry":
		p.SpillRetry.P = args.prob("p", 0.001)
		p.SpillRetry.Backoff = sim.Time(args.num("backoff", 64))
		p.SpillRetry.Max = int(args.num("max", 4))
	case "credit-loss":
		p.CreditLoss = args.prob("p", 0.01)
	default:
		return fmt.Errorf("fault: unknown clause %q (have engine-stall, engine-offline, noc-delay, dram-retry, spill-retry, credit-loss, seed)", name)
	}
	if args.err != nil {
		return args.err
	}
	return args.unknown()
}

// unknown rejects keys the clause never consumed — a silently ignored
// typo (cycle= for cycles=) would make a fault plan lie about itself.
func (a *clauseArgs) unknown() error {
	var extra []string
	for k := range a.vals {
		if !a.used[k] {
			extra = append(extra, k)
		}
	}
	if len(extra) == 0 {
		return nil
	}
	sort.Strings(extra)
	return fmt.Errorf("fault: %s: unknown key(s) %s", a.clause, strings.Join(extra, ", "))
}

// clauseArgs holds one clause's parsed key=value pairs plus the first
// validation error hit while reading them out.
type clauseArgs struct {
	clause  string
	vals    map[string]string
	used    map[string]bool
	engines []int
	err     error
}

func parseArgs(clause, argstr string) (*clauseArgs, error) {
	a := &clauseArgs{clause: clause, vals: map[string]string{}, used: map[string]bool{}}
	argstr = strings.TrimSpace(argstr)
	if argstr == "" {
		return a, nil
	}
	for _, kv := range strings.Split(argstr, ",") {
		key, val, ok := strings.Cut(kv, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || key == "" || val == "" {
			return nil, fmt.Errorf("fault: %s: malformed argument %q", clause, kv)
		}
		if key == "engines" {
			for _, es := range strings.Split(val, "+") {
				e, err := strconv.Atoi(strings.TrimSpace(es))
				if err != nil || e < 0 {
					return nil, fmt.Errorf("fault: %s: bad engine index %q", clause, es)
				}
				a.engines = append(a.engines, e)
			}
			continue
		}
		if _, dup := a.vals[key]; dup {
			return nil, fmt.Errorf("fault: %s: duplicate key %q", clause, key)
		}
		a.vals[key] = val
	}
	return a, nil
}

// prob reads a probability key, defaulting when absent.
func (a *clauseArgs) prob(key string, def float64) float64 {
	a.used[key] = true
	s, ok := a.vals[key]
	if !ok {
		return def
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 || v > 1 {
		a.fail("%s: %s=%q is not a probability in [0,1]", a.clause, key, s)
		return 0
	}
	return v
}

// num reads a non-negative integer key, defaulting when absent.
func (a *clauseArgs) num(key string, def int64) int64 {
	a.used[key] = true
	s, ok := a.vals[key]
	if !ok {
		return def
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v < 0 {
		a.fail("%s: %s=%q is not a non-negative integer", a.clause, key, s)
		return 0
	}
	return v
}

func (a *clauseArgs) fail(format string, args ...any) {
	if a.err == nil {
		a.err = fmt.Errorf("fault: "+format, args...)
	}
}
