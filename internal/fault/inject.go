package fault

import (
	"minnow/internal/rng"
	"minnow/internal/sim"
	"minnow/internal/stats"
)

// Stream-decorrelation constants XORed into the plan seed so each fault
// domain draws from an independent rng sequence: a clause added to the
// plan never perturbs the decisions of the other clauses.
const (
	seedEngine = 0x6d696e6e6f770001
	seedNoC    = 0x6d696e6e6f770002
	seedDRAM   = 0x6d696e6e6f770003
	seedSpill  = 0x6d696e6e6f770004
	seedCredit = 0x6d696e6e6f770005
)

// Injector makes all injection decisions for one run. It is not safe for
// concurrent use; the simulator is single-threaded per run, so every
// decision point is reached in a deterministic order and the streams
// replay exactly for a given plan. A nil *Injector is inert: every method
// reports "no fault".
type Injector struct {
	plan *Plan

	engine *rng.Rand
	noc    *rng.Rand
	dram   *rng.Rand
	spill  *rng.Rand
	credit *rng.Rand

	// Stats accumulates what was actually injected; the harness copies it
	// into the RunSummary, so it must itself be deterministic.
	Stats stats.FaultStats
}

// NewInjector builds the per-run injector for a plan.
func NewInjector(p *Plan) *Injector {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	return &Injector{
		plan:   p,
		engine: rng.New(seed ^ seedEngine),
		noc:    rng.New(seed ^ seedNoC),
		dram:   rng.New(seed ^ seedDRAM),
		spill:  rng.New(seed ^ seedSpill),
		credit: rng.New(seed ^ seedCredit),
	}
}

// Plan returns the plan this injector executes.
func (i *Injector) Plan() *Plan { return i.plan }

// EngineStall returns the injected stall length for one engine step, or 0.
// Draws from the engine stream only when the plan has a stall clause, so
// other clauses' decisions are unaffected by its presence.
func (i *Injector) EngineStall() sim.Time {
	if i == nil || i.plan.EngineStall.P <= 0 {
		return 0
	}
	if i.engine.Float64() >= i.plan.EngineStall.P {
		return 0
	}
	d := i.plan.EngineStall.Cycles
	i.Stats.EngineStalls++
	i.Stats.EngineStallCyc += int64(d)
	return d
}

// NoCDelay returns the injected extra latency for one mesh message, or 0.
// Installed as the mesh's FaultDelay hook only when the clause is present.
func (i *Injector) NoCDelay() sim.Time {
	if i.noc.Float64() >= i.plan.NoCDelay.P {
		return 0
	}
	d := i.plan.NoCDelay.Cycles
	i.Stats.NoCDelays++
	i.Stats.NoCDelayCyc += int64(d)
	return d
}

// DRAMRetry returns the injected retry latency for one DRAM access (0 when
// no round failed). Installed as the DRAM FaultRetry hook only when the
// clause is present.
func (i *Injector) DRAMRetry() sim.Time {
	var d sim.Time
	for n := 0; n < i.plan.DRAMRetry.Max; n++ {
		if i.dram.Float64() >= i.plan.DRAMRetry.P {
			break
		}
		d += i.plan.DRAMRetry.Extra
		i.Stats.DRAMRetries++
	}
	i.Stats.DRAMRetryCyc += int64(d)
	return d
}

// SpillRetry decides whether spill/fill attempt n (1-based) transiently
// fails. On failure it returns (backoff, true) where backoff doubles per
// attempt — the engine waits that long and reissues the access. Attempts
// beyond the plan's bound always succeed, so retry loops terminate.
func (i *Injector) SpillRetry(attempt int) (sim.Time, bool) {
	if i == nil || i.plan.SpillRetry.P <= 0 || attempt > i.plan.SpillRetry.Max {
		return 0, false
	}
	if i.spill.Float64() >= i.plan.SpillRetry.P {
		return 0, false
	}
	back := i.plan.SpillRetry.Backoff << uint(attempt-1)
	i.Stats.SpillRetries++
	i.Stats.SpillBackoffCyc += int64(back)
	return back, true
}

// LoseCredit decides whether one prefetch credit return is dropped in
// flight. Draws from the credit stream only when the plan has a
// credit-loss clause.
func (i *Injector) LoseCredit() bool {
	if i == nil || i.plan.CreditLoss <= 0 {
		return false
	}
	if i.credit.Float64() >= i.plan.CreditLoss {
		return false
	}
	i.Stats.CreditsLost++
	return true
}

// EngineOfflineAt returns the planned death time for the given engine
// index and whether the plan kills it at all. Pure plan lookup — no rng.
func (i *Injector) EngineOfflineAt(engine int) (sim.Time, bool) {
	if i == nil || i.plan.OfflineAt <= 0 {
		return 0, false
	}
	if i.plan.OfflineEngines == nil {
		return i.plan.OfflineAt, true
	}
	for _, e := range i.plan.OfflineEngines {
		if e == engine {
			return i.plan.OfflineAt, true
		}
	}
	return 0, false
}

// RecordOffline accounts one engine death and the tasks rescued from it
// into the software fallback worklist.
func (i *Injector) RecordOffline(rescued int) {
	i.Stats.EnginesOffline++
	i.Stats.Rescued += int64(rescued)
}

// RecordRecovered accounts credits re-minted by an engine's credit-leak
// audit.
func (i *Injector) RecordRecovered(n int) {
	i.Stats.CreditsRecovered += int64(n)
}
