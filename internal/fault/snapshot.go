package fault

import (
	"fmt"
	"strings"

	"minnow/internal/stats"
)

// ActorState is one scheduled actor's position in the event queue: its ID
// and the local time at which it will next step.
type ActorState struct {
	// ID is the actor's scheduler ID.
	ID int
	// At is the simulated time of the actor's next step.
	At int64
}

// EngineState is one Minnow engine's state at snapshot time.
type EngineState struct {
	// Core is the engine's host core ID.
	Core int
	// Clock is the engine back-end's local time.
	Clock int64
	// Queued is the number of tasks resident in the engine's queues.
	Queued int64
	// Offline reports whether an injected fault killed the engine.
	Offline bool
}

// Snapshot is the diagnostic state dump the watchdog produces instead of
// hanging: enough of the simulator's live state — per-actor clocks,
// worklist occupancy, outstanding memory-system transactions — to
// diagnose a livelock or runaway run post mortem.
type Snapshot struct {
	// Reason says why the watchdog fired.
	Reason string
	// Now is the global simulated time when the watchdog fired.
	Now int64
	// Steps is the number of discrete-event steps executed so far.
	Steps int64
	// Applied is the number of operator applications completed.
	Applied int64
	// Outstanding is pushed-minus-completed tasks (termination counter).
	Outstanding int64
	// Occupancy is the number of tasks resident in all worklists.
	Occupancy int64
	// Actors lists every scheduled actor in deterministic (time, ID)
	// order.
	Actors []ActorState
	// Engines lists per-engine state for Minnow runs.
	Engines []EngineState
	// NoCStallCyc is the cumulative cycles flits waited for mesh links.
	NoCStallCyc int64
	// DRAMStallCyc is the cumulative cycles requests queued at DRAM.
	DRAMStallCyc int64
	// DRAMBusy is the number of DRAM channels still busy at snapshot time.
	DRAMBusy int
	// Faults holds the injected-fault counters so far (nil when fault
	// injection was off).
	Faults *stats.FaultStats
}

// String renders the snapshot as an indented multi-line report, the text
// embedded in the watchdog's error and written to diagnostic artifacts.
func (s *Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "watchdog: %s\n", s.Reason)
	fmt.Fprintf(&b, "  time=%d steps=%d applied=%d outstanding=%d occupancy=%d\n",
		s.Now, s.Steps, s.Applied, s.Outstanding, s.Occupancy)
	fmt.Fprintf(&b, "  noc-stall-cyc=%d dram-stall-cyc=%d dram-busy-channels=%d\n",
		s.NoCStallCyc, s.DRAMStallCyc, s.DRAMBusy)
	if s.Faults != nil {
		f := s.Faults
		fmt.Fprintf(&b, "  faults: stalls=%d noc-delays=%d dram-retries=%d spill-retries=%d credits-lost=%d recovered=%d offline=%d rescued=%d\n",
			f.EngineStalls, f.NoCDelays, f.DRAMRetries, f.SpillRetries,
			f.CreditsLost, f.CreditsRecovered, f.EnginesOffline, f.Rescued)
	}
	b.WriteString("  actors (next-step time order):\n")
	for _, a := range s.Actors {
		fmt.Fprintf(&b, "    actor %3d at t=%d\n", a.ID, a.At)
	}
	if len(s.Engines) > 0 {
		b.WriteString("  engines:\n")
		for _, e := range s.Engines {
			state := "online"
			if e.Offline {
				state = "OFFLINE"
			}
			fmt.Fprintf(&b, "    engine@core %3d clock=%d queued=%d %s\n",
				e.Core, e.Clock, e.Queued, state)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}
