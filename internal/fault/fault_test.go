package fault

import (
	"strings"
	"testing"
)

// TestParsePresets checks every named preset expands to a usable plan.
func TestParsePresets(t *testing.T) {
	for _, name := range Presets() {
		p, err := ParsePlan(name)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		if p.Seed == 0 {
			t.Fatalf("preset %q: zero seed", name)
		}
		switch name {
		case "transient":
			if !p.Transient() {
				t.Fatalf("transient preset reports Transient()=false")
			}
			if p.EngineStall.P <= 0 || p.NoCDelay.P <= 0 || p.DRAMRetry.P <= 0 ||
				p.SpillRetry.P <= 0 || p.CreditLoss <= 0 {
				t.Fatalf("transient preset missing clauses: %+v", p)
			}
		case "offline":
			if p.Transient() {
				t.Fatalf("offline preset reports Transient()=true")
			}
			if p.OfflineAt <= 0 {
				t.Fatalf("offline preset has OfflineAt=%d", p.OfflineAt)
			}
		case "chaos":
			if p.Transient() || p.EngineStall.P <= 0 || p.OfflineAt <= 0 {
				t.Fatalf("chaos preset incomplete: %+v", p)
			}
		}
	}
}

// TestPlanStringRoundTrip verifies the canonical rendering re-parses to
// an identical plan, for presets and hand-written clause expressions.
func TestPlanStringRoundTrip(t *testing.T) {
	exprs := append(Presets(),
		"seed=7",
		"engine-stall:p=0.25,cycles=10",
		"engine-offline:at=123,engines=0+2",
		"seed=9;dram-retry:p=1,extra=1,max=1;credit-loss:p=0.125",
		"spill-retry:p=0.5,backoff=32,max=8",
	)
	for _, expr := range exprs {
		p1, err := ParsePlan(expr)
		if err != nil {
			t.Fatalf("parse %q: %v", expr, err)
		}
		s1 := p1.String()
		p2, err := ParsePlan(s1)
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", s1, expr, err)
		}
		if s2 := p2.String(); s1 != s2 {
			t.Fatalf("round trip of %q unstable: %q -> %q", expr, s1, s2)
		}
	}
}

// TestParsePlanErrors enumerates the rejection paths.
func TestParsePlanErrors(t *testing.T) {
	bad := []string{
		"",                         // empty plan
		"warp-core:p=0.1",          // unknown clause
		"seed=banana",              // bad seed
		"engine-offline:at=0",      // offline needs at > 0
		"engine-stall:p",           // malformed argument
		"engine-stall:p=0.1,p=0.2", // duplicate key
		"engine-stall:p=1.5",       // probability out of range
		"engine-stall:p=-0.1",      // negative probability
		"engine-stall:cycles=-4",   // negative count
		"engine-offline:at=5,engines=-1", // bad engine index
		"engine-stall:zap=3",       // unknown key
	}
	for _, expr := range bad {
		if _, err := ParsePlan(expr); err == nil {
			t.Errorf("ParsePlan(%q) accepted a bad plan", expr)
		}
	}
}

// TestInjectorDeterminism builds two injectors from the same plan and
// checks every fault domain yields an identical draw sequence.
func TestInjectorDeterminism(t *testing.T) {
	p, err := ParsePlan("chaos")
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewInjector(p), NewInjector(p)
	for i := 0; i < 4096; i++ {
		if x, y := a.EngineStall(), b.EngineStall(); x != y {
			t.Fatalf("EngineStall draw %d: %d != %d", i, x, y)
		}
		if x, y := a.NoCDelay(), b.NoCDelay(); x != y {
			t.Fatalf("NoCDelay draw %d: %d != %d", i, x, y)
		}
		if x, y := a.DRAMRetry(), b.DRAMRetry(); x != y {
			t.Fatalf("DRAMRetry draw %d: %d != %d", i, x, y)
		}
		xa, oka := a.SpillRetry(1 + i%4)
		xb, okb := b.SpillRetry(1 + i%4)
		if xa != xb || oka != okb {
			t.Fatalf("SpillRetry draw %d: (%d,%v) != (%d,%v)", i, xa, oka, xb, okb)
		}
		if x, y := a.LoseCredit(), b.LoseCredit(); x != y {
			t.Fatalf("LoseCredit draw %d: %v != %v", i, x, y)
		}
	}
}

// TestInjectorDomainsIndependent verifies draws in one domain do not
// shift another domain's stream (per-domain RNGs).
func TestInjectorDomainsIndependent(t *testing.T) {
	p, err := ParsePlan("transient")
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewInjector(p), NewInjector(p)
	// Burn only engine-stall draws on a; b stays fresh.
	for i := 0; i < 1000; i++ {
		a.EngineStall()
	}
	for i := 0; i < 100; i++ {
		if x, y := a.NoCDelay(), b.NoCDelay(); x != y {
			t.Fatalf("NoCDelay stream perturbed by EngineStall draws at %d", i)
		}
	}
}

// TestSpillRetryBackoff checks the exponential backoff shape and the
// attempt cap.
func TestSpillRetryBackoff(t *testing.T) {
	p, err := ParsePlan("spill-retry:p=1,backoff=16,max=3")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(p)
	for attempt := 1; attempt <= 3; attempt++ {
		d, ok := inj.SpillRetry(attempt)
		if !ok {
			t.Fatalf("attempt %d refused below max", attempt)
		}
		want := int64(16) << (attempt - 1)
		if int64(d) != want {
			t.Fatalf("attempt %d backoff %d, want %d", attempt, d, want)
		}
	}
	if _, ok := inj.SpillRetry(4); ok {
		t.Fatalf("attempt past max granted a retry")
	}
}

// TestEngineOfflineAt checks the engine-list filter: listed engines get
// the offline time, unlisted engines never go offline, and an empty list
// means every engine.
func TestEngineOfflineAt(t *testing.T) {
	p, err := ParsePlan("engine-offline:at=500,engines=1+3")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(p)
	for _, e := range []int{1, 3} {
		at, ok := inj.EngineOfflineAt(e)
		if !ok || int64(at) != 500 {
			t.Fatalf("engine %d: got (%d,%v), want (500,true)", e, at, ok)
		}
	}
	for _, e := range []int{0, 2, 4} {
		if _, ok := inj.EngineOfflineAt(e); ok {
			t.Fatalf("engine %d offline but not in list", e)
		}
	}

	all, err := ParsePlan("engine-offline:at=77")
	if err != nil {
		t.Fatal(err)
	}
	inj = NewInjector(all)
	for e := 0; e < 8; e++ {
		at, ok := inj.EngineOfflineAt(e)
		if !ok || int64(at) != 77 {
			t.Fatalf("engine %d: got (%d,%v), want (77,true)", e, at, ok)
		}
	}
}

// TestNilInjectorSafe checks the nil-receiver fast paths used by hot
// simulator code.
func TestNilInjectorSafe(t *testing.T) {
	var inj *Injector
	if d := inj.EngineStall(); d != 0 {
		t.Fatalf("nil EngineStall = %d", d)
	}
	if d, ok := inj.SpillRetry(1); d != 0 || ok {
		t.Fatalf("nil SpillRetry = (%d,%v)", d, ok)
	}
	if inj.LoseCredit() {
		t.Fatalf("nil LoseCredit = true")
	}
	if _, ok := inj.EngineOfflineAt(0); ok {
		t.Fatalf("nil EngineOfflineAt granted")
	}
}

// FuzzParsePlan feeds arbitrary strings through the parser: it must
// never panic, and any accepted plan must render canonically and
// round-trip to the same rendering.
func FuzzParsePlan(f *testing.F) {
	for _, seed := range append(Presets(),
		"seed=3;engine-stall:p=0.5,cycles=9",
		"credit-loss:p=0.01",
		"engine-offline:at=10,engines=0",
		"bogus", "a:b=c", ";;", "seed=",
	) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePlan(s)
		if err != nil {
			return
		}
		s1 := p.String()
		if s1 == "" {
			// A plan with every clause disabled renders empty; nothing
			// more to check.
			return
		}
		p2, err := ParsePlan(s1)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not re-parse: %v", s1, s, err)
		}
		if s2 := p2.String(); s1 != s2 {
			t.Fatalf("canonical form unstable: %q -> %q (input %q)", s1, s2, s)
		}
		if strings.Contains(s1, " ") {
			t.Fatalf("canonical form contains spaces: %q", s1)
		}
	})
}
