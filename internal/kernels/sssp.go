package kernels

import (
	"container/heap"
	"fmt"
	"math"

	"minnow/internal/core"
	"minnow/internal/galois"
	"minnow/internal/graph"
	"minnow/internal/worklist"
)

// SSSP is non-blocking delta-stepping single-source shortest path (Fig. 1
// pseudocode): tasks relax one node's edges; improved destinations are
// re-enqueued with priority = new distance, which OBIM discretizes into
// delta buckets. The same operator is Dijkstra under a strict PQ and
// Bellman-Ford-ish under FIFO — the scheduling policy decides (§2.1).
type SSSP struct {
	g      *graph.Graph
	src    int32
	dist   []int64
	stacks []uint64
}

// NewSSSP builds the kernel on a weighted graph. Addresses for per-core
// stacks come from as.
func NewSSSP(g *graph.Graph, src int32, as *graph.AddrSpace, cores int) *SSSP {
	if g.Weights == nil {
		panic("kernels: SSSP needs a weighted graph")
	}
	k := &SSSP{g: g, src: src, dist: make([]int64, g.N), stacks: allocStacks(as, cores)}
	k.Reset()
	return k
}

// Name implements Kernel.
func (k *SSSP) Name() string { return "SSSP" }

// Graph implements Kernel.
func (k *SSSP) Graph() *graph.Graph { return k.g }

// UsesPriority implements Kernel.
func (k *SSSP) UsesPriority() bool { return true }

// DefaultLgInterval implements Kernel: edge weights are uniform in [1,1000], so a
// delta of 1024 approximates the classic "delta ~ max weight" tuning.
func (k *SSSP) DefaultLgInterval() uint { return 10 }

// PrefetchProgram implements Kernel.
func (k *SSSP) PrefetchProgram() core.PrefetchProgram {
	return &core.StandardProgram{G: k.g}
}

// Reset implements Kernel.
func (k *SSSP) Reset() {
	for i := range k.dist {
		k.dist[i] = math.MaxInt64 / 4
	}
	k.dist[k.src] = 0
}

// InitialTasks implements Kernel.
func (k *SSSP) InitialTasks() []worklist.Task {
	return []worklist.Task{{Priority: 0, Node: k.src, EdgeHi: -1}}
}

// Dist exposes the computed distances (examples use this).
func (k *SSSP) Dist() []int64 { return k.dist }

// ArrivalTask implements Arrivable: re-relax the node's edges from its
// current distance. Relaxation is monotone (dist only decreases toward
// the true shortest path), so the extra application never changes the
// converged answer; at the fixpoint every edge check fails and the task
// is pure re-evaluation work.
func (k *SSSP) ArrivalTask(node int32) worklist.Task {
	return worklist.Task{Priority: k.dist[node], Node: node, EdgeHi: -1}
}

const (
	ssspPCStale = iota + 1
	ssspPCRelax
)

// Apply implements the operator of Fig. 1.
func (k *SSSP) Apply(w *galois.Worker, t worklist.Task) {
	e := newEmitter(w, k.g, k.stacks, pcBase(1))
	u := t.Node
	du := k.dist[u]

	// Load the source node's record (first touch: delinquent) and check
	// whether this task is stale — its scheduled priority already beaten.
	e.locals(3, 1, 14)
	e.loadNode(u, false)
	stale := du < t.Priority
	e.branch(pcBase(1)+ssspPCStale, stale, true)
	if stale {
		return
	}

	lo, hi := taskRange(k.g, t)
	for i := lo; i < hi; i++ {
		v := k.g.Dests[i]
		wgt := int64(k.g.Weights[i])
		newDist := du + wgt

		// Edge record, then the edge-dependent destination node record.
		e.locals(6, 2, 18)
		e.loadEdge(i)
		e.loadNode(v, true)
		e.locals(2, 0, 6)

		improved := newDist < k.dist[v]
		e.branch(pcBase(1)+ssspPCRelax, improved, true)
		if improved {
			// CAS-style update, then enqueue the destination.
			k.dist[v] = newDist
			e.atomicNode(v)
			e.locals(2, 1, 8)
			w.Push(newDist, v)
		}
	}
	e.locals(2, 1, 8)
}

// Verify implements Kernel: compare against Dijkstra.
func (k *SSSP) Verify() error {
	ref := dijkstra(k.g, k.src)
	for v := range ref {
		if ref[v] != k.dist[v] {
			return fmt.Errorf("sssp: dist[%d] = %d, want %d", v, k.dist[v], ref[v])
		}
	}
	return nil
}

// dijkstra is the reference shortest-path implementation.
func dijkstra(g *graph.Graph, src int32) []int64 {
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = math.MaxInt64 / 4
	}
	dist[src] = 0
	pq := &distHeap{{src, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.v] {
			continue
		}
		lo, hi := g.EdgeRange(it.v)
		for e := lo; e < hi; e++ {
			v := g.Dests[e]
			nd := it.d + int64(g.Weights[e])
			if nd < dist[v] {
				dist[v] = nd
				heap.Push(pq, distItem{v, nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v int32
	d int64
}

type distHeap []distItem

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
