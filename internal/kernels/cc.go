package kernels

import (
	"fmt"

	"minnow/internal/core"
	"minnow/internal/galois"
	"minnow/internal/graph"
	"minnow/internal/worklist"
)

// CC is non-blocking minimum-label propagation connected components
// (Nguyen et al., SOSP'13): every node starts labeled with its own id;
// tasks push a node's label to neighbors with larger labels. Work is
// prioritized by ascending component label. Because nearly every push
// carries a different priority, OBIM's changing-bucket slow path fires
// constantly — CC is the paper's worklist-bound workload (92% worklist
// cycles at 64 threads, §3.2).
type CC struct {
	g      *graph.Graph
	comp   []int64
	stacks []uint64
}

// NewCC builds the kernel.
func NewCC(g *graph.Graph, as *graph.AddrSpace, cores int) *CC {
	k := &CC{g: g, comp: make([]int64, g.N), stacks: allocStacks(as, cores)}
	k.Reset()
	return k
}

// Name implements Kernel.
func (k *CC) Name() string { return "CC" }

// Graph implements Kernel.
func (k *CC) Graph() *graph.Graph { return k.g }

// UsesPriority implements Kernel.
func (k *CC) UsesPriority() bool { return true }

// DefaultLgInterval implements Kernel: min-label propagation needs fine
// buckets — wide buckets let hundreds of label floods interleave and work
// explodes. The cost is constant bucket churn, which is exactly why CC is
// the paper's worklist-bound benchmark (92% worklist cycles at 64t, §3.2).
func (k *CC) DefaultLgInterval() uint { return 2 }

// PrefetchProgram implements Kernel.
func (k *CC) PrefetchProgram() core.PrefetchProgram {
	return &core.StandardProgram{G: k.g}
}

// Reset implements Kernel.
func (k *CC) Reset() {
	for i := range k.comp {
		k.comp[i] = int64(i)
	}
}

// InitialTasks implements Kernel: every node seeds one task (its own
// label may win its neighborhood).
func (k *CC) InitialTasks() []worklist.Task {
	ts := make([]worklist.Task, k.g.N)
	for i := range ts {
		ts[i] = worklist.Task{Priority: int64(i), Node: int32(i), EdgeHi: -1}
	}
	return ts
}

// Components exposes the computed labels.
func (k *CC) Components() []int64 { return k.comp }

// ArrivalTask implements Arrivable: re-propagate the node's current
// label. Min-label propagation is monotone (labels only decrease toward
// the component minimum), so the extra application never changes the
// converged answer.
func (k *CC) ArrivalTask(node int32) worklist.Task {
	return worklist.Task{Priority: k.comp[node], Node: node, EdgeHi: -1}
}

const (
	ccPCStale = iota + 1
	ccPCProp
)

// Apply implements the operator.
func (k *CC) Apply(w *galois.Worker, t worklist.Task) {
	e := newEmitter(w, k.g, k.stacks, pcBase(3))
	u := t.Node
	label := k.comp[u]

	e.locals(3, 1, 14)
	e.loadNode(u, false)
	stale := label < t.Priority
	e.branch(pcBase(3)+ccPCStale, stale, false)
	// A stale task still holds a valid (smaller) label; keep going with
	// the fresher label — min-label propagation is monotone.

	lo, hi := taskRange(k.g, t)
	for i := lo; i < hi; i++ {
		v := k.g.Dests[i]

		e.locals(6, 2, 16)
		e.loadEdge(i)
		e.loadNode(v, true)

		improves := label < k.comp[v]
		e.branch(pcBase(3)+ccPCProp, improves, true)
		if improves {
			k.comp[v] = label
			e.atomicNode(v)
			e.locals(2, 1, 8)
			w.Push(label, v)
		}
	}
	e.locals(2, 1, 8)
}

// Verify implements Kernel: labels must match union-find components, with
// each component labeled by its minimum member.
func (k *CC) Verify() error {
	uf := newUnionFind(k.g.N)
	for v := int32(0); v < int32(k.g.N); v++ {
		lo, hi := k.g.EdgeRange(v)
		for e := lo; e < hi; e++ {
			uf.union(int(v), int(k.g.Dests[e]))
		}
	}
	// Minimum node id per component root.
	minOf := make(map[int]int64)
	for v := 0; v < k.g.N; v++ {
		r := uf.find(v)
		if m, ok := minOf[r]; !ok || int64(v) < m {
			minOf[r] = int64(v)
		}
	}
	for v := 0; v < k.g.N; v++ {
		want := minOf[uf.find(v)]
		if k.comp[v] != want {
			return fmt.Errorf("cc: comp[%d] = %d, want %d", v, k.comp[v], want)
		}
	}
	return nil
}

type unionFind struct {
	parent []int
	rank   []int8
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int8, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}
