package kernels

import (
	"fmt"

	"minnow/internal/graph"
	"minnow/internal/worklist"
)

// Arrivable kernels accept open-loop task arrivals mid-run: ArrivalTask
// constructs a re-evaluation task for the node at its *current*
// algorithm state. The task must be idempotent with respect to the
// final answer — at the fixpoint it is a no-op (SSSP/BFS skip it as
// stale or find nothing to relax, CC/KCORE propagate nothing new, PR
// sees an empty residual) and before the fixpoint it only performs work
// the algorithm's chaotic iteration already permits — so Verify still
// passes on open-loop runs. Kernels whose operator is not re-entrant
// (TC and BC count each node exactly once) deliberately do not
// implement it, and the harness rejects arrival plans for them.
type Arrivable interface {
	ArrivalTask(node int32) worklist.Task
}

// Spec declares one Table-2 benchmark: its kernel, its Table-1 input
// class, and the paper-equivalent input name.
type Spec struct {
	Name       string // SSSP, BFS, G500, CC, PR, TC, BC
	PaperInput string // the Table-1 input this stands in for
	// Build generates the (scaled) input graph and kernel. cores sizes
	// per-core stack regions.
	Build func(scale int, seed uint64, as *graph.AddrSpace, cores int) Kernel
}

// Suite returns the seven Table-2 benchmarks. scale multiplies the
// default (laptop-sized) inputs; scale=1 gives graphs of roughly
// 4K-60K nodes, chosen so that with the harness's scaled-down cache
// hierarchy each input is DRAM-resident the way the paper's 150MB-1GB
// inputs were — except TC's, which fits in the LLC as in the paper
// ("a small input had to be selected for TC ... fitting within LLC").
func Suite() []Spec {
	return []Spec{
		{
			Name:       "SSSP",
			PaperInput: "USA-road-d.W",
			Build: func(scale int, seed uint64, as *graph.AddrSpace, cores int) Kernel {
				g := graph.RoadMesh(22500*scale, seed)
				g.Bind(as, false)
				return NewSSSP(g, 0, as, cores)
			},
		},
		{
			Name:       "BFS",
			PaperInput: "r4-2e23",
			Build: func(scale int, seed uint64, as *graph.AddrSpace, cores int) Kernel {
				g := graph.UniformRandom(24576*scale, 4, seed)
				g.Bind(as, false)
				return NewBFS("BFS", g, 0, as, cores)
			},
		},
		{
			Name:       "G500",
			PaperInput: "rmat16-2e22",
			Build: func(scale int, seed uint64, as *graph.AddrSpace, cores int) Kernel {
				s := 13
				for sc := scale; sc > 1; sc /= 2 {
					s++
				}
				g := graph.Kronecker(s, 16, seed)
				g.Bind(as, false)
				return NewBFS("G500", g, kroneckerRoot(g), as, cores)
			},
		},
		{
			Name:       "CC",
			PaperInput: "wikipedia-20051105",
			Build: func(scale int, seed uint64, as *graph.AddrSpace, cores int) Kernel {
				g := graph.SmallWorld(12288*scale, 6, seed)
				g.Bind(as, false)
				return NewCC(g, as, cores)
			},
		},
		{
			Name:       "PR",
			PaperInput: "wiki-Talk",
			Build: func(scale int, seed uint64, as *graph.AddrSpace, cores int) Kernel {
				g := graph.PowerLawTalk(16384*scale, seed)
				g.Bind(as, false)
				return NewPR(g, as, cores)
			},
		},
		{
			Name:       "TC",
			PaperInput: "com-dblp-sym",
			Build: func(scale int, seed uint64, as *graph.AddrSpace, cores int) Kernel {
				g := graph.CommunityDBLP(3072*scale, seed)
				g.Bind(as, true)
				return NewTC(g, as, cores)
			},
		},
		{
			Name:       "BC",
			PaperInput: "amazon-ratings",
			Build: func(scale int, seed uint64, as *graph.AddrSpace, cores int) Kernel {
				g := graph.Bipartite(10240*scale, 5120*scale, seed)
				g.Bind(as, false)
				return NewBC(g, as, cores)
			},
		},
	}
}

// Extensions returns workloads beyond the paper's Table 2 — the §8
// future-work direction of running other irregular-algorithm classes on
// the same engines.
func Extensions() []Spec {
	return []Spec{
		{
			Name:       "KCORE",
			PaperInput: "(extension: k-core decomposition)",
			Build: func(scale int, seed uint64, as *graph.AddrSpace, cores int) Kernel {
				g := graph.SmallWorld(10240*scale, 8, seed)
				g.Bind(as, false)
				return NewKCore(g, as, cores)
			},
		},
	}
}

// SpecByName finds a suite or extension entry.
func SpecByName(name string) (Spec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	for _, s := range Extensions() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("kernels: unknown benchmark %q", name)
}

// kroneckerRoot picks a BFS source in the Kronecker graph's giant
// component: the highest-degree node (the hub is always in it).
func kroneckerRoot(g *graph.Graph) int32 {
	n, _ := g.MaxDegreeNode()
	return n
}
