package kernels

import (
	"fmt"
	"sort"

	"minnow/internal/core"
	"minnow/internal/galois"
	"minnow/internal/graph"
	"minnow/internal/worklist"
)

// KCore computes the k-core decomposition (each node's coreness) with the
// asynchronous h-operator algorithm of Montresor, De Pellegrini & Miorandi
// ("Distributed k-core decomposition", 2011): every node keeps a coreness
// estimate, initially its degree; a task recomputes the node's h-index
// over its neighbors' estimates and, when its own estimate drops,
// re-enqueues the neighbors whose estimates may now be affected. The
// fixpoint is exactly the coreness.
//
// KCore is not in the paper's Table 2 — it implements §8's future-work
// direction ("extending Minnow to accelerate other classes of irregular
// workloads"): a different irregular kernel with data-driven task
// generation and a natural priority order (ascending estimate), run
// unmodified on the same framework, engines, and prefetch program.
type KCore struct {
	g      *graph.Graph
	est    []int32
	stacks []uint64
}

// NewKCore builds the kernel.
func NewKCore(g *graph.Graph, as *graph.AddrSpace, cores int) *KCore {
	k := &KCore{g: g, est: make([]int32, g.N), stacks: allocStacks(as, cores)}
	k.Reset()
	return k
}

// Name implements Kernel.
func (k *KCore) Name() string { return "KCORE" }

// Graph implements Kernel.
func (k *KCore) Graph() *graph.Graph { return k.g }

// UsesPriority implements Kernel: processing low estimates first
// propagates the peeling frontier in order.
func (k *KCore) UsesPriority() bool { return true }

// DefaultLgInterval implements Kernel: estimates are small integers.
func (k *KCore) DefaultLgInterval() uint { return 1 }

// PrefetchProgram implements Kernel: the standard Fig. 14 pattern covers
// the h-index recomputation's accesses (node, edges, neighbor records).
func (k *KCore) PrefetchProgram() core.PrefetchProgram {
	return &core.StandardProgram{G: k.g}
}

// Reset implements Kernel.
func (k *KCore) Reset() {
	for v := range k.est {
		k.est[v] = k.g.Degree(int32(v))
	}
}

// InitialTasks implements Kernel: every node starts with one estimate
// task, prioritized by its degree.
func (k *KCore) InitialTasks() []worklist.Task {
	ts := make([]worklist.Task, k.g.N)
	for i := range ts {
		ts[i] = worklist.Task{Priority: int64(k.est[i]), Node: int32(i), EdgeHi: -1}
	}
	return ts
}

// Coreness exposes the converged estimates.
func (k *KCore) Coreness() []int32 { return k.est }

// ArrivalTask implements Arrivable: recompute the node's h-index over
// its neighbors' current estimates. The h-operator's chaotic iteration
// converges to the coreness under any re-evaluation order, so the extra
// application never changes the converged answer.
func (k *KCore) ArrivalTask(node int32) worklist.Task {
	return worklist.Task{Priority: int64(k.est[node]), Node: node, EdgeHi: -1}
}

const (
	kcPCImproved = iota + 1
	kcPCNotify
)

// hIndex returns the largest h such that at least h values are >= h,
// capped at cap (the node's own estimate cannot rise).
func hIndex(vals []int32, capVal int32) int32 {
	// Counting approach over the bounded estimate domain.
	count := make([]int32, capVal+2)
	for _, v := range vals {
		if v > capVal {
			v = capVal
		}
		if v > 0 {
			count[v]++
		}
	}
	var atLeast int32
	for h := capVal; h >= 1; h-- {
		atLeast += count[h]
		if atLeast >= h {
			return h
		}
	}
	return 0
}

// Apply implements the operator: recompute this node's h-index estimate.
func (k *KCore) Apply(w *galois.Worker, t worklist.Task) {
	e := newEmitter(w, k.g, k.stacks, pcBase(8))
	u := t.Node
	old := k.est[u]

	e.locals(3, 1, 14)
	e.loadNode(u, false)

	lo, hi := taskRange(k.g, t)
	vals := make([]int32, 0, hi-lo)
	for i := lo; i < hi; i++ {
		v := k.g.Dests[i]
		e.locals(4, 1, 10)
		e.loadEdge(i)
		e.loadNode(v, true)
		vals = append(vals, k.est[v])
	}
	// h-index computation over the gathered estimates.
	e.locals(2, 2, 4*len(vals)+8)

	h := hIndex(vals, old)
	improved := h < old
	e.branch(pcBase(8)+kcPCImproved, improved, true)
	if !improved {
		return
	}
	k.est[u] = h
	e.storeNode(u)
	// Neighbors whose estimate exceeds our new value may need to drop.
	for i := lo; i < hi; i++ {
		v := k.g.Dests[i]
		affected := k.est[v] > h
		e.branch(pcBase(8)+kcPCNotify, affected, true)
		if affected {
			e.locals(1, 1, 3)
			w.Push(int64(k.est[v]), v)
		}
	}
	e.locals(2, 1, 8)
}

// Verify implements Kernel: compare against the sequential peeling
// algorithm (Batagelj-Zaversnik bucket queue).
func (k *KCore) Verify() error {
	ref := peelCoreness(k.g)
	for v := 0; v < k.g.N; v++ {
		if k.est[v] != ref[v] {
			return fmt.Errorf("kcore: core[%d] = %d, want %d", v, k.est[v], ref[v])
		}
	}
	return nil
}

// peelCoreness is the O(E) reference peeling.
func peelCoreness(g *graph.Graph) []int32 {
	n := g.N
	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(int32(v))
	}
	// Order nodes by degree (simple sort; reference clarity over speed).
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool { return deg[order[i]] < deg[order[j]] })
	pos := make([]int32, n)
	for i, v := range order {
		pos[v] = int32(i)
	}
	coreness := make([]int32, n)
	cur := append([]int32(nil), deg...)
	for i := 0; i < n; i++ {
		v := order[i]
		coreness[v] = cur[v]
		lo, hi := g.EdgeRange(v)
		for e := lo; e < hi; e++ {
			u := g.Dests[e]
			if cur[u] > cur[v] {
				cur[u]--
				// Re-sort lazily: bubble u toward the front.
				for p := pos[u]; p > int32(i)+1 && cur[order[p-1]] > cur[u]; p-- {
					order[p], order[p-1] = order[p-1], order[p]
					pos[order[p]] = p
					pos[order[p-1]] = p - 1
				}
			}
		}
	}
	return coreness
}
