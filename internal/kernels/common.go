// Package kernels implements the paper's seven benchmarks (Table 2) as
// Galois operators: SSSP (delta-stepping), BFS, G500 (BFS on a Kronecker
// graph), CC (minimum-label propagation), PR (push-based data-driven
// PageRank), TC (node-iterator-hashed triangle counting), and BC
// (bipartite coloring).
//
// Each operator really executes its algorithm over Go state — so
// convergence, work efficiency, and priority sensitivity are genuine —
// while emitting the micro-ops a compiled implementation would: first
// accesses to task/node/edge data are delinquent loads, everything else
// (loop bookkeeping, stack spills/fills, secondary field reads — the ~90%
// of loads §3.4 measures) is non-delinquent traffic against the worker's
// stack lines. Every kernel verifies its answer against an independent
// reference implementation.
//
// Determinism contract: operators read and write only their own algorithm
// state plus the worker handed to them; any randomness comes from rng
// streams seeded by the run configuration, so task orders and emitted
// micro-op sequences are reproducible run to run.
package kernels

import (
	"minnow/internal/core"
	"minnow/internal/galois"
	"minnow/internal/graph"
	"minnow/internal/worklist"
)

// Kernel is one benchmark: construction binds addresses; Apply is the
// Galois operator; Verify checks the parallel result against a reference.
type Kernel interface {
	galois.Operator
	Name() string
	Graph() *graph.Graph
	// InitialTasks seeds the worklist.
	InitialTasks() []worklist.Task
	// Reset reinitializes algorithm state for a fresh run.
	Reset()
	// Verify checks the computed result; call after the run drains.
	Verify() error
	// PrefetchProgram returns the worklist-directed prefetch program for
	// this kernel's access pattern (§5.3: all workloads share the
	// standard program except TC).
	PrefetchProgram() core.PrefetchProgram
	// UsesPriority reports whether the kernel benefits from priority
	// scheduling (TC and BC do not, §6.1).
	UsesPriority() bool
	// DefaultLgInterval is the kernel's tuned OBIM bucket interval
	// (log2): the delta in delta-stepping terms, scaled to the kernel's
	// priority units.
	DefaultLgInterval() uint
}

// stackLines is how many distinct stack cache lines each worker's locals
// rotate through.
const stackLines = 4

// emitter wraps a worker with address-aware micro-op helpers.
type emitter struct {
	w     *galois.Worker
	g     *graph.Graph
	stack uint64 // worker stack base
	pcb   uint64 // kernel PC namespace (load sites for prefetcher training)
	srot  int    // rotates stack-line usage
}

func newEmitter(w *galois.Worker, g *graph.Graph, stackBase []uint64, pcb uint64) emitter {
	return emitter{w: w, g: g, stack: stackBase[w.Core.ID], pcb: pcb}
}

// Load-site PC offsets within a kernel's namespace (branch sites use 1..63).
const (
	pcLoadEdge   = 0x41 // streaming edge-record loads (IMP's index array)
	pcLoadDest   = 0x42 // edge-dependent destination-node loads (A[B[i]])
	pcLoadSrc    = 0x43 // the task's own node record
	pcLoadSearch = 0x44 // binary-search probes (TC)
)

// locals emits the non-delinquent register-spill/stack traffic of loop
// bookkeeping: nLoads reads and nStores writes over the worker's stack
// lines, plus nCompute ALU ops.
func (e *emitter) locals(nLoads, nStores, nCompute int) {
	tr := e.w.TR()
	for i := 0; i < nLoads; i++ {
		e.srot++
		tr.Load(e.stack+uint64(e.srot%stackLines)*64, false, false)
	}
	for i := 0; i < nStores; i++ {
		e.srot++
		tr.Store(e.stack + uint64(e.srot%stackLines)*64)
	}
	if nCompute > 0 {
		tr.Compute(nCompute)
	}
}

// loadNode emits the (delinquent) first access to a node record.
func (e *emitter) loadNode(v int32, depLoad bool) {
	site := uint64(pcLoadSrc)
	if depLoad {
		site = pcLoadDest
	}
	e.w.TR().LoadPC(e.pcb+site, e.g.NodeAddr(v), true, depLoad)
}

// touchNode emits a secondary (non-delinquent) access to a node record.
func (e *emitter) touchNode(v int32) {
	e.w.TR().Load(e.g.NodeAddr(v), false, false)
}

// loadEdge emits the (delinquent) first access to an edge record.
func (e *emitter) loadEdge(i int32) {
	e.w.TR().LoadPC(e.pcb+pcLoadEdge, e.g.EdgeAddr(i), true, false)
}

// storeNode emits a plain store to a node record.
func (e *emitter) storeNode(v int32) {
	e.w.TR().Store(e.g.NodeAddr(v))
}

// atomicNode emits a read-modify-write on a node record (or a plain
// store under the serial-baseline's atomic elision).
func (e *emitter) atomicNode(v int32) {
	if e.w.Ctx.Serial {
		e.w.TR().Load(e.g.NodeAddr(v), false, false)
		e.w.TR().Store(e.g.NodeAddr(v))
	} else {
		e.w.TR().Atomic(e.g.NodeAddr(v))
	}
}

// branch emits a data-dependent conditional branch.
func (e *emitter) branch(pc uint64, taken, depLoad bool) {
	e.w.TR().Branch(pc, taken, depLoad)
}

// allocStacks reserves per-core stack regions.
func allocStacks(as *graph.AddrSpace, cores int) []uint64 {
	s := make([]uint64, cores)
	for i := range s {
		s[i] = as.Alloc(stackLines * 64)
	}
	return s
}

// taskRange resolves a task's edge range, honoring task splitting.
func taskRange(g *graph.Graph, t worklist.Task) (lo, hi int32) {
	lo, hi = g.EdgeRange(t.Node)
	if !t.WholeNode() {
		base := g.Offsets[t.Node]
		lo, hi = base+t.EdgeLo, base+t.EdgeHi
	}
	return
}

// pcBase assigns each kernel a distinct branch-site PC namespace.
func pcBase(kernelID uint64) uint64 { return kernelID << 8 }

// kernelOfPC names the kernel namespace a static PC belongs to (the
// inverse of pcBase).
func kernelOfPC(pc uint64) string {
	switch pc >> 8 {
	case 1:
		return "sssp"
	case 2:
		return "bfs"
	case 3:
		return "cc"
	case 4:
		return "pr"
	case 5:
		return "tc"
	case 6:
		return "bc"
	case 8:
		return "kcore"
	}
	return "pc" + itoa(pc>>8)
}

// SiteLabel names a kernel static micro-op site (the PCs LoadPC/Branch
// emit) for profiler output: "sssp.edge-load", "tc.search-load",
// "bfs.branch1". The harness wires it into the profile as the
// PC-flavored site vocabulary.
func SiteLabel(pc uint64) string {
	k := kernelOfPC(pc)
	switch pc & 0xff {
	case pcLoadEdge:
		return k + ".edge-load"
	case pcLoadDest:
		return k + ".dest-load"
	case pcLoadSrc:
		return k + ".node-load"
	case pcLoadSearch:
		return k + ".search-load"
	}
	return k + ".branch" + itoa(pc&0xff)
}

// itoa is a dependency-free decimal formatter for SiteLabel (avoids
// pulling fmt into the per-leaf rendering path).
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
