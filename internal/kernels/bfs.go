package kernels

import (
	"fmt"
	"math"

	"minnow/internal/core"
	"minnow/internal/galois"
	"minnow/internal/graph"
	"minnow/internal/worklist"
)

// BFS is non-blocking push-based breadth-first search: tasks expand one
// node; unvisited (or later-visited) neighbors are claimed with an atomic
// and enqueued with priority = hop distance, so OBIM approximates
// level-synchronous order without barriers. Run on a uniform random graph
// it is the paper's BFS; on a Kronecker graph it is G500 (§6.1).
type BFS struct {
	name   string
	g      *graph.Graph
	src    int32
	hops   []int64
	stacks []uint64
}

// NewBFS builds the kernel. name distinguishes BFS from G500 in reports.
func NewBFS(name string, g *graph.Graph, src int32, as *graph.AddrSpace, cores int) *BFS {
	k := &BFS{name: name, g: g, src: src, hops: make([]int64, g.N), stacks: allocStacks(as, cores)}
	k.Reset()
	return k
}

// Name implements Kernel.
func (k *BFS) Name() string { return k.name }

// Graph implements Kernel.
func (k *BFS) Graph() *graph.Graph { return k.g }

// UsesPriority implements Kernel.
func (k *BFS) UsesPriority() bool { return true }

// DefaultLgInterval implements Kernel: hop counts are unit-weight priorities; each BFS
// level is its own bucket.
func (k *BFS) DefaultLgInterval() uint { return 0 }

// PrefetchProgram implements Kernel.
func (k *BFS) PrefetchProgram() core.PrefetchProgram {
	return &core.StandardProgram{G: k.g}
}

// Reset implements Kernel.
func (k *BFS) Reset() {
	for i := range k.hops {
		k.hops[i] = math.MaxInt64 / 4
	}
	k.hops[k.src] = 0
}

// InitialTasks implements Kernel.
func (k *BFS) InitialTasks() []worklist.Task {
	return []worklist.Task{{Priority: 0, Node: k.src, EdgeHi: -1}}
}

// Hops exposes the computed hop distances.
func (k *BFS) Hops() []int64 { return k.hops }

// ArrivalTask implements Arrivable: re-expand the node from its current
// hop count. Hop relaxation is monotone, so the extra application never
// changes the converged answer.
func (k *BFS) ArrivalTask(node int32) worklist.Task {
	return worklist.Task{Priority: k.hops[node], Node: node, EdgeHi: -1}
}

const (
	bfsPCStale = iota + 1
	bfsPCVisit
)

// Apply implements the operator.
func (k *BFS) Apply(w *galois.Worker, t worklist.Task) {
	e := newEmitter(w, k.g, k.stacks, pcBase(2))
	u := t.Node
	du := k.hops[u]

	e.locals(3, 1, 14)
	e.loadNode(u, false)
	stale := du < t.Priority
	e.branch(pcBase(2)+bfsPCStale, stale, true)
	if stale {
		return
	}

	lo, hi := taskRange(k.g, t)
	for i := lo; i < hi; i++ {
		v := k.g.Dests[i]
		nd := du + 1

		e.locals(6, 2, 16)
		e.loadEdge(i)
		e.loadNode(v, true)

		improved := nd < k.hops[v]
		e.branch(pcBase(2)+bfsPCVisit, improved, true)
		if improved {
			k.hops[v] = nd
			e.atomicNode(v)
			e.locals(2, 1, 8)
			w.Push(nd, v)
		}
	}
	e.locals(2, 1, 8)
}

// Verify implements Kernel: compare against a serial queue BFS.
func (k *BFS) Verify() error {
	ref := k.g.BFSFrom(k.src)
	for v, rd := range ref {
		got := k.hops[v]
		if rd < 0 {
			if got < math.MaxInt64/4 {
				return fmt.Errorf("bfs: node %d unreachable in reference, got %d", v, got)
			}
			continue
		}
		if got != int64(rd) {
			return fmt.Errorf("bfs: hops[%d] = %d, want %d", v, got, rd)
		}
	}
	return nil
}
