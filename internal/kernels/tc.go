package kernels

import (
	"fmt"

	"minnow/internal/core"
	"minnow/internal/galois"
	"minnow/internal/graph"
	"minnow/internal/worklist"
)

// TC is node-iterator-hashed triangle counting (Schank '07, §6.1): one
// task per node u enumerates neighbor pairs (v, w) with u < v < w and
// binary-searches w in v's sorted adjacency list. TC neither generates new
// work nor benefits from priority ordering, and needs no atomics — the
// paper's least-bottlenecked benchmark, included to bound Minnow's minimum
// benefit. Its CSR uses 64B node records (hash-index metadata).
type TC struct {
	g      *graph.Graph
	counts []int64 // per-core triangle counters
	total  int64
	stacks []uint64
}

// NewTC builds the kernel.
func NewTC(g *graph.Graph, as *graph.AddrSpace, cores int) *TC {
	return &TC{g: g, counts: make([]int64, cores), stacks: allocStacks(as, cores)}
}

// Name implements Kernel.
func (k *TC) Name() string { return "TC" }

// Graph implements Kernel.
func (k *TC) Graph() *graph.Graph { return k.g }

// UsesPriority implements Kernel.
func (k *TC) UsesPriority() bool { return false }

// DefaultLgInterval implements Kernel: TC has no priorities.
func (k *TC) DefaultLgInterval() uint { return 0 }

// PrefetchProgram implements Kernel: the custom TC prefetch function
// (§5.3) that also covers destination adjacency lists.
func (k *TC) PrefetchProgram() core.PrefetchProgram {
	return &core.TCProgram{G: k.g, MaxListLines: 4}
}

// Reset implements Kernel.
func (k *TC) Reset() {
	for i := range k.counts {
		k.counts[i] = 0
	}
	k.total = 0
}

// InitialTasks implements Kernel: one task per node, no priorities.
func (k *TC) InitialTasks() []worklist.Task {
	ts := make([]worklist.Task, k.g.N)
	for i := range ts {
		ts[i] = worklist.Task{Priority: 0, Node: int32(i), EdgeHi: -1}
	}
	return ts
}

// Triangles returns the computed triangle count.
func (k *TC) Triangles() int64 {
	if k.total == 0 {
		for _, c := range k.counts {
			k.total += c
		}
	}
	return k.total
}

const (
	tcPCPairGT = iota + 1
	tcPCSearch
	tcPCFound
)

// Apply implements the operator.
func (k *TC) Apply(w *galois.Worker, t worklist.Task) {
	e := newEmitter(w, k.g, k.stacks, pcBase(5))
	g := k.g
	u := t.Node

	e.locals(3, 1, 14)
	e.loadNode(u, false)

	lo, hi := taskRange(g, t)
	for i := lo; i < hi; i++ {
		v := g.Dests[i]
		e.locals(4, 1, 12)
		e.loadEdge(i)
		ok := v > u
		e.branch(pcBase(5)+tcPCPairGT, ok, true)
		if !ok {
			continue
		}
		e.loadNode(v, true)
		for j := i + 1; j < hi; j++ {
			x := g.Dests[j]
			e.locals(3, 0, 8)
			e.loadEdge(j)
			// Binary search for x in v's adjacency list.
			found := k.searchEmit(&e, v, x)
			e.branch(pcBase(5)+tcPCFound, found, true)
			if found {
				k.counts[w.Core.ID]++
				e.locals(1, 1, 4)
			}
		}
	}
	e.locals(2, 1, 8)
}

// searchEmit binary-searches x in v's sorted adjacency list, emitting the
// dependent loads of each probe.
func (k *TC) searchEmit(e *emitter, v, x int32) bool {
	g := k.g
	lo, hi := g.EdgeRange(v)
	for lo < hi {
		mid := (lo + hi) / 2
		e.w.TR().LoadPC(e.pcb+pcLoadSearch, g.EdgeAddr(mid), true, true)
		e.locals(1, 0, 6)
		d := g.Dests[mid]
		e.branch(pcBase(5)+tcPCSearch, d < x, true)
		switch {
		case d == x:
			return true
		case d < x:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}

// Verify implements Kernel: exact triangle count by sorted-list merge
// intersection.
func (k *TC) Verify() error {
	var want int64
	g := k.g
	for u := int32(0); u < int32(g.N); u++ {
		ulo, uhi := g.EdgeRange(u)
		for i := ulo; i < uhi; i++ {
			v := g.Dests[i]
			if v <= u {
				continue
			}
			// Count common neighbors w > v of u and v.
			a, ahi := i+1, uhi
			blo, bhi := g.EdgeRange(v)
			b := blo
			for a < ahi && b < bhi {
				da, db := g.Dests[a], g.Dests[b]
				switch {
				case da == db:
					if da > v {
						want++
					}
					a++
					b++
				case da < db:
					a++
				default:
					b++
				}
			}
		}
	}
	if got := k.Triangles(); got != want {
		return fmt.Errorf("tc: counted %d triangles, want %d", got, want)
	}
	return nil
}
