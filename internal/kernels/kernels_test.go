package kernels

import (
	"math"
	"testing"

	"minnow/internal/cpu"
	"minnow/internal/galois"
	"minnow/internal/graph"
	"minnow/internal/mem"
	"minnow/internal/sim"
	"minnow/internal/worklist"
)

// runKernel executes a kernel through the real framework on a small
// simulated system and verifies the result.
func runKernel(t *testing.T, k Kernel, threads int) {
	t.Helper()
	as := graph.NewAddrSpace()
	mcfg := mem.DefaultConfig(threads)
	mcfg.ScaleCaches(16)
	msys := mem.NewSystem(mcfg)
	cores := make([]*cpu.Core, threads)
	for i := range cores {
		cores[i] = cpu.New(i, cpu.DefaultConfig(), msys)
	}
	wl := worklist.NewOBIM(as, threads, 1, k.DefaultLgInterval())
	r := galois.NewRunner(galois.Config{Threads: threads}, cores, &galois.SWScheduler{WL: wl}, k, k.Graph().Degree)
	eng := sim.NewEngine()
	for _, w := range r.Workers() {
		id := eng.Register(w)
		eng.Wake(id, 0)
	}
	r.Seed(k.InitialTasks())
	if _, drained := eng.Run(500_000_000); !drained {
		t.Fatal("kernel did not terminate")
	}
	if err := k.Verify(); err != nil {
		t.Fatal(err)
	}
}

func smallAS() *graph.AddrSpace { return graph.NewAddrSpace() }

func TestSSSPKernelMultiSeed(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		as := smallAS()
		g := graph.RoadMesh(900, seed)
		g.Bind(as, false)
		runKernel(t, NewSSSP(g, 0, as, 2), 2)
	}
}

func TestSSSPFromDifferentSources(t *testing.T) {
	as := smallAS()
	g := graph.RoadMesh(400, 9)
	g.Bind(as, false)
	for _, src := range []int32{0, 100, 399} {
		runKernel(t, NewSSSP(g, src, as, 2), 2)
	}
}

func TestBFSKernel(t *testing.T) {
	as := smallAS()
	g := graph.UniformRandom(800, 4, 5)
	g.Bind(as, false)
	runKernel(t, NewBFS("BFS", g, 0, as, 2), 2)
}

func TestBFSOnKronecker(t *testing.T) {
	as := smallAS()
	g := graph.Kronecker(9, 8, 5)
	g.Bind(as, false)
	n, _ := g.MaxDegreeNode()
	runKernel(t, NewBFS("G500", g, n, as, 2), 2)
}

func TestCCKernel(t *testing.T) {
	as := smallAS()
	g := graph.SmallWorld(600, 6, 4)
	g.Bind(as, false)
	runKernel(t, NewCC(g, as, 2), 2)
}

func TestCCDisconnected(t *testing.T) {
	// Two separate cliques: labels must not leak across components.
	b := graph.NewBuilder(8, false)
	for i := int32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddUndirected(i, j)
			b.AddUndirected(i+4, j+4)
		}
	}
	g := b.Build("two-cliques")
	as := smallAS()
	g.Bind(as, false)
	k := NewCC(g, as, 1)
	runKernel(t, k, 1)
	if k.Components()[0] != 0 || k.Components()[4] != 4 {
		t.Fatalf("components %v", k.Components())
	}
}

func TestPRKernel(t *testing.T) {
	as := smallAS()
	g := graph.PowerLawTalk(800, 6)
	g.Bind(as, false)
	runKernel(t, NewPR(g, as, 2), 2)
}

func TestPRRankMass(t *testing.T) {
	as := smallAS()
	g := graph.UniformRandom(300, 4, 2)
	g.Bind(as, false)
	k := NewPR(g, as, 1)
	runKernel(t, k, 1)
	// Every rank at least the teleport mass.
	for v := int32(0); v < int32(g.N); v++ {
		if k.Rank(v) < 1-PRDamping-1e-9 {
			t.Fatalf("rank[%d] = %v below teleport floor", v, k.Rank(v))
		}
	}
}

func TestTCKernel(t *testing.T) {
	as := smallAS()
	g := graph.CommunityDBLP(400, 7)
	g.Bind(as, true)
	k := NewTC(g, as, 2)
	runKernel(t, k, 2)
	if k.Triangles() == 0 {
		t.Fatal("clique communities but zero triangles")
	}
}

func TestTCKnownCount(t *testing.T) {
	// K4 has exactly 4 triangles.
	b := graph.NewBuilder(4, false)
	for i := int32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddUndirected(i, j)
		}
	}
	g := b.Build("k4")
	as := smallAS()
	g.Bind(as, true)
	k := NewTC(g, as, 1)
	runKernel(t, k, 1)
	if k.Triangles() != 4 {
		t.Fatalf("K4 triangles = %d, want 4", k.Triangles())
	}
}

func TestBCKernelBipartite(t *testing.T) {
	as := smallAS()
	g := graph.Bipartite(300, 150, 8)
	g.Bind(as, false)
	k := NewBC(g, as, 2)
	runKernel(t, k, 2)
	if !k.Bipartite() {
		t.Fatal("bipartite input flagged as conflicting")
	}
}

func TestBCDetectsOddCycle(t *testing.T) {
	// A triangle is not 2-colorable.
	b := graph.NewBuilder(3, false)
	b.AddUndirected(0, 1)
	b.AddUndirected(1, 2)
	b.AddUndirected(2, 0)
	g := b.Build("triangle")
	as := smallAS()
	g.Bind(as, false)
	k := NewBC(g, as, 1)
	runKernel(t, k, 1)
	if k.Bipartite() {
		t.Fatal("odd cycle not detected")
	}
}

func TestSuiteIsComplete(t *testing.T) {
	names := map[string]bool{}
	for _, s := range Suite() {
		names[s.Name] = true
	}
	for _, want := range []string{"SSSP", "BFS", "G500", "CC", "PR", "TC", "BC"} {
		if !names[want] {
			t.Fatalf("suite missing %s", want)
		}
	}
	if _, err := SpecByName("nonsense"); err == nil {
		t.Fatal("bogus name accepted")
	}
}

func TestSuiteBuildsDeterministically(t *testing.T) {
	for _, s := range Suite() {
		k1 := s.Build(1, 42, graph.NewAddrSpace(), 2)
		k2 := s.Build(1, 42, graph.NewAddrSpace(), 2)
		if k1.Graph().NumEdges() != k2.Graph().NumEdges() {
			t.Fatalf("%s builds nondeterministically", s.Name)
		}
		if k1.Name() != s.Name {
			t.Fatalf("kernel name %q vs spec %q", k1.Name(), s.Name)
		}
	}
}

func TestTaskSplittingPreservesResults(t *testing.T) {
	// SSSP must verify with aggressive task splitting enabled.
	as := smallAS()
	g := graph.RoadMesh(400, 3)
	g.Bind(as, false)
	k := NewSSSP(g, 0, as, 2)
	threads := 2
	mcfg := mem.DefaultConfig(threads)
	mcfg.ScaleCaches(16)
	msys := mem.NewSystem(mcfg)
	cores := make([]*cpu.Core, threads)
	for i := range cores {
		cores[i] = cpu.New(i, cpu.DefaultConfig(), msys)
	}
	wl := worklist.NewOBIM(as, threads, 1, k.DefaultLgInterval())
	r := galois.NewRunner(galois.Config{Threads: threads, SplitThreshold: 2}, cores, &galois.SWScheduler{WL: wl}, k, g.Degree)
	eng := sim.NewEngine()
	for _, w := range r.Workers() {
		id := eng.Register(w)
		eng.Wake(id, 0)
	}
	r.Seed(k.InitialTasks())
	if _, drained := eng.Run(500_000_000); !drained {
		t.Fatal("split run did not terminate")
	}
	if err := k.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraReference(t *testing.T) {
	// Hand-checkable graph: 0 -> 1 (w5), 0 -> 2 (w1), 2 -> 1 (w2).
	b := graph.NewBuilder(3, true)
	b.AddWeighted(0, 1, 5)
	b.AddWeighted(0, 2, 1)
	b.AddWeighted(2, 1, 2)
	g := b.Build("tri")
	d := dijkstra(g, 0)
	if d[0] != 0 || d[1] != 3 || d[2] != 1 {
		t.Fatalf("dijkstra %v", d)
	}
	if d[1] >= math.MaxInt64/8 {
		t.Fatal("unreachable sentinel misused")
	}
}

func TestKCoreKernel(t *testing.T) {
	for _, seed := range []uint64{3, 11} {
		as := smallAS()
		g := graph.SmallWorld(500, 8, seed)
		g.Bind(as, false)
		runKernel(t, NewKCore(g, as, 2), 2)
	}
}

func TestKCoreKnownValues(t *testing.T) {
	// A K4 attached to a path: the clique is a 3-core, the path tail 1-core.
	b := graph.NewBuilder(6, false)
	for i := int32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddUndirected(i, j)
		}
	}
	b.AddUndirected(3, 4)
	b.AddUndirected(4, 5)
	g := b.Build("k4-tail")
	as := smallAS()
	g.Bind(as, false)
	k := NewKCore(g, as, 1)
	runKernel(t, k, 1)
	want := []int32{3, 3, 3, 3, 1, 1}
	for v, c := range k.Coreness() {
		if c != want[v] {
			t.Fatalf("coreness[%d] = %d, want %d (all: %v)", v, c, want[v], k.Coreness())
		}
	}
}

func TestHIndex(t *testing.T) {
	cases := []struct {
		vals []int32
		cap  int32
		want int32
	}{
		{[]int32{3, 3, 3}, 10, 3},
		{[]int32{1, 1, 1, 1}, 10, 1},
		{[]int32{5, 4, 3, 2, 1}, 10, 3},
		{[]int32{9, 9, 9}, 2, 2}, // capped by own estimate
		{nil, 5, 0},
		{[]int32{0, 0}, 5, 0},
	}
	for _, c := range cases {
		if got := hIndex(c.vals, c.cap); got != c.want {
			t.Errorf("hIndex(%v, %d) = %d, want %d", c.vals, c.cap, got, c.want)
		}
	}
}

func TestExtensionsRegistry(t *testing.T) {
	if _, err := SpecByName("KCORE"); err != nil {
		t.Fatal(err)
	}
	for _, s := range Extensions() {
		k := s.Build(1, 1, graph.NewAddrSpace(), 1)
		if k.Name() != s.Name {
			t.Fatalf("extension name mismatch: %s vs %s", k.Name(), s.Name)
		}
	}
}
