package kernels

import (
	"fmt"
	"math"

	"minnow/internal/core"
	"minnow/internal/galois"
	"minnow/internal/graph"
	"minnow/internal/worklist"
)

// PRDamping is the standard PageRank damping factor.
const PRDamping = 0.85

// PREpsilon is the residual threshold below which a node needs no task.
const PREpsilon = 1e-4

// PR is non-blocking, data-driven, push-based PageRank (Whang et al.,
// Euro-Par'15, §6.1): each node holds a rank and a residual; a task folds
// the node's residual into its rank and pushes d*residual/degree to every
// out-neighbor *unconditionally with an atomic add* — the fence-heavy
// behaviour behind PR's 32% store-cycle bottleneck (§3.2) and its 5x
// no-fence speedup (§3.3). Neighbors crossing the epsilon threshold are
// enqueued with priority = descending residual.
type PR struct {
	g        *graph.Graph
	rank     []float64
	residual []float64
	stacks   []uint64
}

// NewPR builds the kernel.
func NewPR(g *graph.Graph, as *graph.AddrSpace, cores int) *PR {
	k := &PR{
		g:        g,
		rank:     make([]float64, g.N),
		residual: make([]float64, g.N),
		stacks:   allocStacks(as, cores),
	}
	k.Reset()
	return k
}

// Name implements Kernel.
func (k *PR) Name() string { return "PR" }

// Graph implements Kernel.
func (k *PR) Graph() *graph.Graph { return k.g }

// UsesPriority implements Kernel.
func (k *PR) UsesPriority() bool { return true }

// DefaultLgInterval implements Kernel: residual priorities are scaled by 1e7; 2^18 buckets
// group residuals ~0.026 apart.
func (k *PR) DefaultLgInterval() uint { return 18 }

// PrefetchProgram implements Kernel.
func (k *PR) PrefetchProgram() core.PrefetchProgram {
	return &core.StandardProgram{G: k.g}
}

// Reset implements Kernel.
func (k *PR) Reset() {
	for i := range k.rank {
		k.rank[i] = 0
		k.residual[i] = 1 - PRDamping
	}
}

// InitialTasks implements Kernel: every node starts with residual 1-d.
func (k *PR) InitialTasks() []worklist.Task {
	ts := make([]worklist.Task, k.g.N)
	for i := range ts {
		ts[i] = worklist.Task{Priority: residPriority(1 - PRDamping), Node: int32(i), EdgeHi: -1}
	}
	return ts
}

// Rank exposes the computed ranks (rank + unconverged residual).
func (k *PR) Rank(v int32) float64 { return k.rank[v] + k.residual[v] }

// ArrivalTask implements Arrivable: re-drain the node's current
// residual. The operator's empty-residual guard makes the application a
// no-op below epsilon, and draining an above-epsilon residual early is
// work the data-driven schedule already permits, so the converged ranks
// stay within Verify's tolerance.
func (k *PR) ArrivalTask(node int32) worklist.Task {
	return worklist.Task{Priority: residPriority(k.residual[node]), Node: node, EdgeHi: -1}
}

// residPriority maps a residual to a descending-order integer priority.
func residPriority(r float64) int64 {
	return -int64(r * 1e7)
}

const (
	prPCEmpty = iota + 1
	prPCWake
)

// Apply implements the operator.
func (k *PR) Apply(w *galois.Worker, t worklist.Task) {
	e := newEmitter(w, k.g, k.stacks, pcBase(4))
	u := t.Node

	e.locals(3, 1, 16)
	e.loadNode(u, false)

	r := k.residual[u]
	empty := r < PREpsilon
	e.branch(pcBase(4)+prPCEmpty, empty, true)
	if empty {
		return
	}
	k.rank[u] += r
	k.residual[u] = 0
	e.storeNode(u)

	deg := k.g.Degree(u)
	if deg == 0 {
		return
	}
	share := PRDamping * r / float64(deg)

	lo, hi := taskRange(k.g, t)
	for i := lo; i < hi; i++ {
		v := k.g.Dests[i]

		e.locals(6, 2, 20)
		e.loadEdge(i)
		e.loadNode(v, true)

		old := k.residual[v]
		k.residual[v] = old + share
		// The residual is pushed unconditionally to every neighbor:
		// atomic float add (fence!).
		e.atomicNode(v)

		wake := old < PREpsilon && old+share >= PREpsilon
		e.branch(pcBase(4)+prPCWake, wake, true)
		if wake {
			e.locals(2, 1, 8)
			w.Push(residPriority(old+share), v)
		}
	}
	e.locals(2, 1, 8)
}

// Verify implements Kernel: Jacobi iteration on the same linear system
// (rank[v] = (1-d) + d·Σ_{u→v} rank[u]/deg(u)) must agree within the
// convergence tolerance implied by epsilon.
func (k *PR) Verify() error {
	n := k.g.N
	ref := make([]float64, n)
	next := make([]float64, n)
	for i := range ref {
		ref[i] = 1 - PRDamping
	}
	for iter := 0; iter < 500; iter++ {
		for i := range next {
			next[i] = 1 - PRDamping
		}
		for u := int32(0); u < int32(n); u++ {
			deg := k.g.Degree(u)
			if deg == 0 {
				continue
			}
			share := PRDamping * ref[u] / float64(deg)
			lo, hi := k.g.EdgeRange(u)
			for e := lo; e < hi; e++ {
				next[k.g.Dests[e]] += share
			}
		}
		var delta float64
		for i := range ref {
			delta += math.Abs(next[i] - ref[i])
		}
		ref, next = next, ref
		if delta < PREpsilon/10 {
			break
		}
	}
	// The data-driven run leaves residuals below epsilon unapplied. Each
	// in-neighbor u withholds at most d·eps/deg(u) ≤ d·eps directly, and
	// withheld mass propagates along paths with total amplification
	// 1/(1-d); the Jacobi reference itself stops at delta < eps/10 with
	// the same amplification. The per-node tolerance combines both.
	inDeg := make([]int64, n)
	for u := int32(0); u < int32(n); u++ {
		lo, hi := k.g.EdgeRange(u)
		for e := lo; e < hi; e++ {
			inDeg[k.g.Dests[e]]++
		}
	}
	// The in-degree term is amplified twice: once for direct withheld
	// shares and once for mass withheld upstream of the in-neighbors
	// (schedules differ in where sub-epsilon residuals settle).
	amp := 1 / (1 - PRDamping)
	for v := 0; v < n; v++ {
		got := k.rank[v] + k.residual[v]
		tol := 1e-6 + PREpsilon*(1+PRDamping*float64(inDeg[v])*amp)*amp + PREpsilon/10*amp
		if math.Abs(got-ref[v]) > tol {
			return fmt.Errorf("pr: rank[%d] = %g, want %g (±%g)", v, got, ref[v], tol)
		}
	}
	return nil
}
