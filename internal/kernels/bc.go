package kernels

import (
	"fmt"

	"minnow/internal/core"
	"minnow/internal/galois"
	"minnow/internal/graph"
	"minnow/internal/worklist"
)

// BC is non-blocking bipartite coloring (§6.1): tasks propagate a node's
// color (0/1) to its neighbors; an uncolored neighbor is claimed with an
// atomic and enqueued, an equal-colored neighbor marks the graph
// non-bipartite. BC does not benefit from priority ordering.
type BC struct {
	g        *graph.Graph
	color    []int8 // -1 uncolored
	conflict bool
	stacks   []uint64
}

// NewBC builds the kernel.
func NewBC(g *graph.Graph, as *graph.AddrSpace, cores int) *BC {
	k := &BC{g: g, color: make([]int8, g.N), stacks: allocStacks(as, cores)}
	k.Reset()
	return k
}

// Name implements Kernel.
func (k *BC) Name() string { return "BC" }

// Graph implements Kernel.
func (k *BC) Graph() *graph.Graph { return k.g }

// UsesPriority implements Kernel.
func (k *BC) UsesPriority() bool { return false }

// DefaultLgInterval implements Kernel: BC has no priorities.
func (k *BC) DefaultLgInterval() uint { return 0 }

// PrefetchProgram implements Kernel.
func (k *BC) PrefetchProgram() core.PrefetchProgram {
	return &core.StandardProgram{G: k.g}
}

// Reset implements Kernel.
func (k *BC) Reset() {
	for i := range k.color {
		k.color[i] = -1
	}
	k.conflict = false
}

// InitialTasks implements Kernel: one seed per connected component,
// pre-colored 0 (found with a cheap union-find — initialization, not
// simulated work).
func (k *BC) InitialTasks() []worklist.Task {
	uf := newUnionFind(k.g.N)
	for v := int32(0); v < int32(k.g.N); v++ {
		lo, hi := k.g.EdgeRange(v)
		for e := lo; e < hi; e++ {
			uf.union(int(v), int(k.g.Dests[e]))
		}
	}
	seen := make(map[int]bool)
	var ts []worklist.Task
	for v := 0; v < k.g.N; v++ {
		if k.g.Degree(int32(v)) == 0 {
			continue
		}
		r := uf.find(v)
		if !seen[r] {
			seen[r] = true
			k.color[v] = 0
			ts = append(ts, worklist.Task{Priority: 0, Node: int32(v), EdgeHi: -1})
		}
	}
	return ts
}

// Bipartite reports whether no coloring conflict was found.
func (k *BC) Bipartite() bool { return !k.conflict }

const (
	bcPCClaim = iota + 1
	bcPCAgree
)

// Apply implements the operator.
func (k *BC) Apply(w *galois.Worker, t worklist.Task) {
	e := newEmitter(w, k.g, k.stacks, pcBase(6))
	u := t.Node

	e.locals(3, 1, 14)
	e.loadNode(u, false)
	want := int8(1 - k.color[u])

	lo, hi := taskRange(k.g, t)
	for i := lo; i < hi; i++ {
		v := k.g.Dests[i]

		e.locals(6, 2, 16)
		e.loadEdge(i)
		e.loadNode(v, true)

		unclaimed := k.color[v] < 0
		e.branch(pcBase(6)+bcPCClaim, unclaimed, true)
		if unclaimed {
			k.color[v] = want
			e.atomicNode(v)
			e.locals(2, 1, 8)
			w.Push(0, v)
			continue
		}
		agree := k.color[v] == want
		e.branch(pcBase(6)+bcPCAgree, agree, true)
		if !agree {
			k.conflict = true
			e.locals(1, 1, 4)
		}
	}
	e.locals(2, 1, 8)
}

// Verify implements Kernel: every non-isolated node must be colored and
// no edge may connect equal colors (our generator produces bipartite
// inputs); the conflict flag must agree with an independent 2-coloring.
func (k *BC) Verify() error {
	refOK := twoColorable(k.g)
	if k.conflict == refOK {
		return fmt.Errorf("bc: conflict=%v but reference bipartite=%v", k.conflict, refOK)
	}
	if !refOK {
		return nil // conflict correctly detected; coloring is moot
	}
	for v := int32(0); v < int32(k.g.N); v++ {
		if k.g.Degree(v) == 0 {
			continue
		}
		if k.color[v] < 0 {
			return fmt.Errorf("bc: node %d left uncolored", v)
		}
		lo, hi := k.g.EdgeRange(v)
		for e := lo; e < hi; e++ {
			if k.color[k.g.Dests[e]] == k.color[v] {
				return fmt.Errorf("bc: edge %d-%d monochromatic", v, k.g.Dests[e])
			}
		}
	}
	return nil
}

// twoColorable checks bipartiteness by BFS 2-coloring.
func twoColorable(g *graph.Graph) bool {
	color := make([]int8, g.N)
	for i := range color {
		color[i] = -1
	}
	for s := int32(0); s < int32(g.N); s++ {
		if color[s] >= 0 || g.Degree(s) == 0 {
			continue
		}
		color[s] = 0
		queue := []int32{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			lo, hi := g.EdgeRange(v)
			for e := lo; e < hi; e++ {
				d := g.Dests[e]
				if color[d] < 0 {
					color[d] = 1 - color[v]
					queue = append(queue, d)
				} else if color[d] == color[v] {
					return false
				}
			}
		}
	}
	return true
}
