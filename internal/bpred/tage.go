// Package bpred implements the TAGE branch predictor from Table 3 of the
// paper (64 Kbit, 5-table: a bimodal base plus four partially-tagged
// components with geometrically increasing history lengths), following
// Seznec & Michaud (JILP 2006).
//
// Benchmark kernels feed the predictor the *actual* data-dependent branch
// outcomes their algorithm produces (e.g. "newDist < dist[dst]"), so the
// mispredict rates the core model sees come from genuinely hard-to-predict
// graph-dependent branches rather than a fixed probability.
//
// Determinism contract: prediction is a pure function of the predictor's
// tables and the branch history fed to it — no randomness, no wall-clock
// input — so identical branch streams always produce identical mispredict
// sequences.
package bpred

// Predictor is the TAGE predictor. The zero value is not usable; call New.
type Predictor struct {
	base []int8 // bimodal 2-bit counters

	tables  [numTagged][]taggedEntry
	histLen [numTagged]uint
	ghist   uint64 // global history (newest outcome in bit 0)

	useAltOnNA int8 // "use alternate prediction on newly allocated" counter

	Lookups    int64
	Mispredict int64
}

const (
	numTagged   = 4
	baseBits    = 13 // 8K bimodal counters
	taggedBits  = 10 // 1K entries per tagged table
	tagWidth    = 11
	ctrMax      = 3 // 3-bit signed counter range [-4, 3]
	ctrMin      = -4
	usefulMax   = 3
	resetPeriod = 1 << 18 // useful-bit aging period
)

type taggedEntry struct {
	tag    uint16
	ctr    int8
	useful uint8
}

// New returns a predictor with history lengths {5, 15, 44, 130} (geometric
// ratio ~3), the classic TAGE configuration scaled to a 64Kbit budget.
func New() *Predictor {
	p := &Predictor{
		base:    make([]int8, 1<<baseBits),
		histLen: [numTagged]uint{5, 15, 44, 130},
	}
	for i := range p.tables {
		p.tables[i] = make([]taggedEntry, 1<<taggedBits)
	}
	return p
}

// foldedHistory compresses the low histLen bits of ghist into width bits.
func foldedHistory(ghist uint64, histLen, width uint) uint64 {
	var folded uint64
	remaining := histLen
	h := ghist
	for remaining > 0 {
		take := width
		if take > remaining {
			take = remaining
		}
		folded ^= h & ((1 << take) - 1)
		h >>= take
		remaining -= take
	}
	return folded
}

func (p *Predictor) index(table int, pc uint64) uint64 {
	hl := p.histLen[table]
	return (pc ^ (pc >> taggedBits) ^ foldedHistory(p.ghist, hl, taggedBits)) & (1<<taggedBits - 1)
}

func (p *Predictor) tag(table int, pc uint64) uint16 {
	hl := p.histLen[table]
	return uint16((pc ^ foldedHistory(p.ghist, hl, tagWidth) ^ foldedHistory(p.ghist, hl, tagWidth-1)<<1) & (1<<tagWidth - 1))
}

// Predict records the outcome of the branch at pc and returns true if the
// predictor would have mispredicted it. The predictor is updated.
func (p *Predictor) Predict(pc uint64, taken bool) (mispredicted bool) {
	p.Lookups++

	// Find provider (longest history matching table) and alternate.
	provider, altProvider := -1, -1
	var provIdx, altIdx uint64
	for t := numTagged - 1; t >= 0; t-- {
		idx := p.index(t, pc)
		if p.tables[t][idx].tag == p.tag(t, pc) {
			if provider < 0 {
				provider, provIdx = t, idx
			} else {
				altProvider, altIdx = t, idx
				break
			}
		}
	}

	basePred := p.base[pc&(1<<baseBits-1)] >= 0
	altPred := basePred
	if altProvider >= 0 {
		altPred = p.tables[altProvider][altIdx].ctr >= 0
	}

	pred := altPred
	newlyAlloc := false
	if provider >= 0 {
		e := &p.tables[provider][provIdx]
		newlyAlloc = e.useful == 0 && (e.ctr == 0 || e.ctr == -1)
		if newlyAlloc && p.useAltOnNA >= 0 {
			pred = altPred
		} else {
			pred = e.ctr >= 0
		}
	}

	mispredicted = pred != taken

	// --- update ---
	if provider >= 0 {
		e := &p.tables[provider][provIdx]
		provPred := e.ctr >= 0
		if newlyAlloc && provPred != altPred {
			if provPred == taken && p.useAltOnNA > -8 {
				p.useAltOnNA--
			} else if provPred != taken && p.useAltOnNA < 7 {
				p.useAltOnNA++
			}
		}
		updateCtr(&e.ctr, taken)
		if provPred != altPred {
			if provPred == taken {
				if e.useful < usefulMax {
					e.useful++
				}
			} else if e.useful > 0 {
				e.useful--
			}
		}
	} else {
		b := &p.base[pc&(1<<baseBits-1)]
		if taken {
			if *b < 1 {
				*b++
			}
		} else if *b > -2 {
			*b--
		}
	}

	// Allocate in a longer table on a mispredict.
	if mispredicted && provider < numTagged-1 {
		start := provider + 1
		allocated := false
		for t := start; t < numTagged; t++ {
			idx := p.index(t, pc)
			if p.tables[t][idx].useful == 0 {
				p.tables[t][idx] = taggedEntry{tag: p.tag(t, pc), ctr: ctrFor(taken)}
				allocated = true
				break
			}
		}
		if !allocated {
			for t := start; t < numTagged; t++ {
				idx := p.index(t, pc)
				if p.tables[t][idx].useful > 0 {
					p.tables[t][idx].useful--
				}
			}
		}
	}

	// Periodic useful-bit aging.
	if p.Lookups%resetPeriod == 0 {
		for t := range p.tables {
			for i := range p.tables[t] {
				p.tables[t][i].useful >>= 1
			}
		}
	}

	// History update.
	p.ghist = p.ghist<<1 | b2u(taken)
	if mispredicted {
		p.Mispredict++
	}
	return mispredicted
}

func updateCtr(c *int8, taken bool) {
	if taken {
		if *c < ctrMax {
			*c++
		}
	} else if *c > ctrMin {
		*c--
	}
}

func ctrFor(taken bool) int8 {
	if taken {
		return 0
	}
	return -1
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Rate returns the observed misprediction rate.
func (p *Predictor) Rate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredict) / float64(p.Lookups)
}
