package bpred

import (
	"testing"

	"minnow/internal/rng"
)

// rate runs a branch stream and returns the misprediction rate over the
// second half (after warmup).
func rate(p *Predictor, outcomes func(i int) (pc uint64, taken bool), n int) float64 {
	misp := 0
	for i := 0; i < n; i++ {
		pc, taken := outcomes(i)
		m := p.Predict(pc, taken)
		if i >= n/2 && m {
			misp++
		}
	}
	return float64(misp) / float64(n/2)
}

func TestAlwaysTaken(t *testing.T) {
	p := New()
	r := rate(p, func(i int) (uint64, bool) { return 0x40, true }, 2000)
	if r > 0.01 {
		t.Fatalf("always-taken mispredict rate %v", r)
	}
}

func TestAlternating(t *testing.T) {
	// A strict T/N/T/N pattern is trivially history-predictable.
	p := New()
	r := rate(p, func(i int) (uint64, bool) { return 0x40, i%2 == 0 }, 4000)
	if r > 0.05 {
		t.Fatalf("alternating mispredict rate %v", r)
	}
}

func TestShortLoop(t *testing.T) {
	// taken 7 times, not-taken once (loop back-edge of an 8-iteration
	// loop): TAGE should learn the period.
	p := New()
	r := rate(p, func(i int) (uint64, bool) { return 0x80, i%8 != 7 }, 8000)
	if r > 0.08 {
		t.Fatalf("loop mispredict rate %v", r)
	}
}

func TestRandomIsHard(t *testing.T) {
	rnd := rng.New(42)
	outcomes := make([]bool, 20000)
	for i := range outcomes {
		outcomes[i] = rnd.Uint64()&1 == 0
	}
	p := New()
	r := rate(p, func(i int) (uint64, bool) { return 0x100, outcomes[i] }, len(outcomes))
	if r < 0.4 || r > 0.6 {
		t.Fatalf("random-stream mispredict rate %v, want ~0.5", r)
	}
}

func TestBiasedStream(t *testing.T) {
	// 90% taken random stream: rate should approach 10%.
	rnd := rng.New(7)
	outcomes := make([]bool, 20000)
	for i := range outcomes {
		outcomes[i] = rnd.Float64() < 0.9
	}
	p := New()
	r := rate(p, func(i int) (uint64, bool) { return 0x140, outcomes[i] }, len(outcomes))
	if r > 0.15 {
		t.Fatalf("biased-stream mispredict rate %v, want ~0.1", r)
	}
}

func TestMultipleSites(t *testing.T) {
	// Two sites with opposite fixed behaviour must not destructively
	// alias.
	p := New()
	misp := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if p.Predict(0x200, true) && i > n/2 {
			misp++
		}
		if p.Predict(0x204, false) && i > n/2 {
			misp++
		}
	}
	if f := float64(misp) / float64(n); f > 0.02 {
		t.Fatalf("two-site mispredict rate %v", f)
	}
}

func TestRateAccessor(t *testing.T) {
	p := New()
	if p.Rate() != 0 {
		t.Fatal("fresh predictor has nonzero rate")
	}
	p.Predict(1, true)
	if p.Lookups != 1 {
		t.Fatalf("lookups %d", p.Lookups)
	}
}
