package graphmat

import (
	"fmt"
	"math"

	"minnow/internal/graph"
	"minnow/internal/uops"
)

// --- BFS (level-synchronous) ---

// BFS is the GraphMat breadth-first search program.
type BFS struct {
	G    *graph.Graph
	Src  int32
	Hops []int64
}

// NewBFS builds the program.
func NewBFS(g *graph.Graph, src int32) *BFS {
	k := &BFS{G: g, Src: src, Hops: make([]int64, g.N)}
	for i := range k.Hops {
		k.Hops[i] = math.MaxInt64 / 4
	}
	k.Hops[src] = 0
	return k
}

// Name implements Program.
func (k *BFS) Name() string { return "gmat-bfs" }

// Init implements Program.
func (k *BFS) Init() []int32 { return []int32{k.Src} }

// Process implements Program.
func (k *BFS) Process(tr *uops.Trace, u int32, out []int32, scratch uint64) []int32 {
	g := k.G
	nd := k.Hops[u] + 1
	tr.LoadPC(frontierPCBase+0x43, g.NodeAddr(u), true, false)
	lo, hi := g.EdgeRange(u)
	for i := lo; i < hi; i++ {
		v := g.Dests[i]
		tr.LoadPC(frontierPCBase+0x41, g.EdgeAddr(i), true, false)
		tr.LoadPC(frontierPCBase+0x42, g.NodeAddr(v), true, true)
		bookkeeping(tr, scratch, 3, 8)
		fresh := nd < k.Hops[v]
		tr.Branch(frontierPCBase+3, fresh, true)
		if fresh {
			k.Hops[v] = nd
			tr.Store(g.NodeAddr(v))
			out = append(out, v)
		}
	}
	tr.Compute(3)
	return out
}

// Verify implements Program.
func (k *BFS) Verify() error {
	ref := k.G.BFSFrom(k.Src)
	for v, rd := range ref {
		if rd < 0 {
			continue
		}
		if k.Hops[v] != int64(rd) {
			return fmt.Errorf("graphmat bfs: hops[%d] = %d, want %d", v, k.Hops[v], rd)
		}
	}
	return nil
}

// --- CC (label propagation) ---

// CC is the GraphMat connected-components program.
type CC struct {
	G    *graph.Graph
	Comp []int64
}

// NewCC builds the program.
func NewCC(g *graph.Graph) *CC {
	k := &CC{G: g, Comp: make([]int64, g.N)}
	for i := range k.Comp {
		k.Comp[i] = int64(i)
	}
	return k
}

// Name implements Program.
func (k *CC) Name() string { return "gmat-cc" }

// Init implements Program.
func (k *CC) Init() []int32 {
	all := make([]int32, k.G.N)
	for i := range all {
		all[i] = int32(i)
	}
	return all
}

// Process implements Program.
func (k *CC) Process(tr *uops.Trace, u int32, out []int32, scratch uint64) []int32 {
	g := k.G
	label := k.Comp[u]
	tr.LoadPC(frontierPCBase+0x43, g.NodeAddr(u), true, false)
	lo, hi := g.EdgeRange(u)
	for i := lo; i < hi; i++ {
		v := g.Dests[i]
		tr.LoadPC(frontierPCBase+0x41, g.EdgeAddr(i), true, false)
		tr.LoadPC(frontierPCBase+0x42, g.NodeAddr(v), true, true)
		bookkeeping(tr, scratch, 3, 8)
		improves := label < k.Comp[v]
		tr.Branch(frontierPCBase+4, improves, true)
		if improves {
			k.Comp[v] = label
			tr.Store(g.NodeAddr(v))
			out = append(out, v)
		}
	}
	tr.Compute(3)
	return out
}

// Verify implements Program: fixpoint means every edge's endpoints agree.
func (k *CC) Verify() error {
	for u := int32(0); u < int32(k.G.N); u++ {
		lo, hi := k.G.EdgeRange(u)
		for e := lo; e < hi; e++ {
			if k.Comp[u] != k.Comp[k.G.Dests[e]] {
				return fmt.Errorf("graphmat cc: edge %d-%d labels differ", u, k.G.Dests[e])
			}
		}
	}
	return nil
}

// --- PR (SpMV iterations to convergence) ---

// PR is the GraphMat PageRank program: full-graph SpMV sweeps until the L1
// rank delta falls below Tol. Every node is active every iteration — the
// classic bulk-synchronous formulation.
type PR struct {
	G        *graph.Graph
	Rank     []float64
	next     []float64
	Damping  float64
	Tol      float64
	delta    float64
	sweepPos int
}

// NewPR builds the program.
func NewPR(g *graph.Graph, damping, tol float64) *PR {
	k := &PR{G: g, Rank: make([]float64, g.N), next: make([]float64, g.N), Damping: damping, Tol: tol}
	for i := range k.Rank {
		k.Rank[i] = 1 - damping
	}
	return k
}

// Name implements Program.
func (k *PR) Name() string { return "gmat-pr" }

// Init implements Program.
func (k *PR) Init() []int32 { return k.allNodes() }

func (k *PR) allNodes() []int32 {
	all := make([]int32, k.G.N)
	for i := range all {
		all[i] = int32(i)
	}
	return all
}

// Process implements Program: push this node's contribution into the next
// vector; node N-1 closes the sweep and decides whether to iterate again.
func (k *PR) Process(tr *uops.Trace, u int32, out []int32, scratch uint64) []int32 {
	g := k.G
	if k.sweepPos == 0 {
		for i := range k.next {
			k.next[i] = 1 - k.Damping
		}
		k.delta = 0
	}
	k.sweepPos++
	tr.LoadPC(frontierPCBase+0x43, g.NodeAddr(u), true, false)
	deg := g.Degree(u)
	if deg > 0 {
		share := k.Damping * k.Rank[u] / float64(deg)
		lo, hi := g.EdgeRange(u)
		for i := lo; i < hi; i++ {
			v := g.Dests[i]
			tr.LoadPC(frontierPCBase+0x41, g.EdgeAddr(i), true, false)
			tr.LoadPC(frontierPCBase+0x42, g.NodeAddr(v), true, true)
			bookkeeping(tr, scratch, 3, 8)
			// Partitioned SpMV: the reduction lands in the thread's
			// private accumulator and merges at the barrier.
			tr.Store(scratch + uint64(v%8)*64)
			k.next[v] += share
		}
	}
	tr.Compute(4)
	if k.sweepPos == g.N {
		// Sweep complete: swap and test convergence.
		k.sweepPos = 0
		for i := range k.Rank {
			k.delta += math.Abs(k.next[i] - k.Rank[i])
		}
		k.Rank, k.next = k.next, k.Rank
		if k.delta >= k.Tol {
			return append(out[:0], k.allNodes()...)
		}
		return out[:0]
	}
	return out
}

// Verify implements Program: the converged vector satisfies the PageRank
// equation within tolerance.
func (k *PR) Verify() error {
	g := k.G
	want := make([]float64, g.N)
	for i := range want {
		want[i] = 1 - k.Damping
	}
	for u := int32(0); u < int32(g.N); u++ {
		deg := g.Degree(u)
		if deg == 0 {
			continue
		}
		share := k.Damping * k.Rank[u] / float64(deg)
		lo, hi := g.EdgeRange(u)
		for e := lo; e < hi; e++ {
			want[g.Dests[e]] += share
		}
	}
	for v := 0; v < g.N; v++ {
		if math.Abs(want[v]-k.Rank[v]) > k.Tol {
			return fmt.Errorf("graphmat pr: rank[%d] residual %g > %g", v, math.Abs(want[v]-k.Rank[v]), k.Tol)
		}
	}
	return nil
}
