package graphmat

import (
	"testing"

	"minnow/internal/cpu"
	"minnow/internal/graph"
	"minnow/internal/kernels"
	"minnow/internal/mem"
)

func cores(n int) []*cpu.Core {
	cfg := mem.DefaultConfig(n)
	cfg.ScaleCaches(16)
	msys := mem.NewSystem(cfg)
	out := make([]*cpu.Core, n)
	for i := range out {
		out[i] = cpu.New(i, cpu.DefaultConfig(), msys)
	}
	return out
}

func TestBSPSSSPConverges(t *testing.T) {
	g := graph.RoadMesh(900, 3)
	as := graph.NewAddrSpace()
	g.Bind(as, false)
	k := NewSSSP(g, 0)
	r := Runner{G: g, Cores: cores(4), Prog: k}
	res := r.Run()
	if res.TimedOut || res.Iterations == 0 {
		t.Fatalf("bad result %+v", res)
	}
	if err := k.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.Wall == 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestBSPIsWorkInefficientOnRoads(t *testing.T) {
	// Bellman-Ford-style BSP on a high-diameter graph must do far more
	// relaxations than nodes (the §3.1 work-efficiency story).
	g := graph.RoadMesh(900, 3)
	as := graph.NewAddrSpace()
	g.Bind(as, false)
	k := NewSSSP(g, 0)
	r := Runner{G: g, Cores: cores(4), Prog: k}
	res := r.Run()
	if res.WorkItems < int64(g.N)*2 {
		t.Fatalf("BSP SSSP did only %d work items on %d nodes — suspiciously efficient", res.WorkItems, g.N)
	}
}

func TestBSPBFS(t *testing.T) {
	g := graph.UniformRandom(1000, 4, 5)
	as := graph.NewAddrSpace()
	g.Bind(as, false)
	k := NewBFS(g, 0)
	r := Runner{G: g, Cores: cores(4), Prog: k}
	res := r.Run()
	if err := k.Verify(); err != nil {
		t.Fatal(err)
	}
	// Level-synchronous BFS: iterations ≈ eccentricity (small here).
	if res.Iterations > 30 {
		t.Fatalf("BFS took %d iterations", res.Iterations)
	}
}

func TestBSPCC(t *testing.T) {
	g := graph.SmallWorld(800, 6, 2)
	as := graph.NewAddrSpace()
	g.Bind(as, false)
	k := NewCC(g)
	r := Runner{G: g, Cores: cores(2), Prog: k}
	r.Run()
	if err := k.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestBSPPR(t *testing.T) {
	g := graph.PowerLawTalk(600, 4)
	as := graph.NewAddrSpace()
	g.Bind(as, false)
	k := NewPR(g, kernels.PRDamping, 1e-3)
	r := Runner{G: g, Cores: cores(2), Prog: k}
	res := r.Run()
	if err := k.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 2 {
		t.Fatalf("PR converged suspiciously fast (%d iterations)", res.Iterations)
	}
}

func TestGMatStar(t *testing.T) {
	g := graph.RoadMesh(900, 3)
	as := graph.NewAddrSpace()
	g.Bind(as, false)
	k := NewGMatStar(g, 0, 13)
	res := k.Run(cores(4), 0)
	if err := k.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.WorkItems == 0 {
		t.Fatal("no work executed")
	}
}

func TestGMatStarBeatsUnorderedOnRoads(t *testing.T) {
	g := graph.RoadMesh(1600, 3)
	as := graph.NewAddrSpace()
	g.Bind(as, false)

	un := NewSSSP(g, 0)
	runner := Runner{G: g, Cores: cores(4), Prog: un}
	unRes := runner.Run()

	star := NewGMatStar(g, 0, 13)
	starRes := star.Run(cores(4), 0)

	// GMat* must be more work-efficient than unordered BSP (§3.1: "2x
	// improvement over their unordered implementation").
	if starRes.WorkItems >= unRes.WorkItems {
		t.Fatalf("GMat* work %d not below unordered %d", starRes.WorkItems, unRes.WorkItems)
	}
}

func TestBudgetTimeout(t *testing.T) {
	g := graph.RoadMesh(900, 3)
	as := graph.NewAddrSpace()
	g.Bind(as, false)
	k := NewSSSP(g, 0)
	r := Runner{G: g, Cores: cores(2), Prog: k, Budget: 50}
	res := r.Run()
	if !res.TimedOut {
		t.Fatal("budget did not trip")
	}
}

func TestDensePhaseChargesEveryIteration(t *testing.T) {
	// The per-iteration dense vector pass is the §3.1 reason BSP loses
	// on high-diameter inputs: per-iteration cost must scale with N even
	// when the frontier is one node.
	small := graph.RoadMesh(100, 1)
	big := graph.RoadMesh(6400, 1)
	for _, g := range []*graph.Graph{small, big} {
		as := graph.NewAddrSpace()
		g.Bind(as, false)
	}
	run := func(g *graph.Graph) int64 {
		cs := cores(1)
		k := NewSSSP(g, 0)
		r := Runner{G: g, Cores: cs, Prog: k}
		res := r.Run()
		return int64(res.Wall) / int64(res.Iterations)
	}
	if run(big) < 4*run(small) {
		t.Fatal("per-iteration cost does not scale with N")
	}
}

func TestBarrierSynchronizesCores(t *testing.T) {
	g := graph.UniformRandom(500, 4, 7)
	as := graph.NewAddrSpace()
	g.Bind(as, false)
	cs := cores(4)
	k := NewBFS(g, 0)
	r := Runner{G: g, Cores: cs, Prog: k}
	r.Run()
	// After the run every core's clock is within one barrier of the max.
	var maxT, minT int64 = 0, 1 << 62
	for _, c := range cs {
		if int64(c.Now()) > maxT {
			maxT = int64(c.Now())
		}
		if int64(c.Now()) < minT {
			minT = int64(c.Now())
		}
	}
	if maxT-minT > 64 {
		t.Fatalf("cores desynchronized after barrier: %d..%d", minT, maxT)
	}
}
