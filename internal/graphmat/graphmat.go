// Package graphmat implements the GraphMat-like baseline of §3.1: an
// unordered bulk-synchronous (BSP) graph framework built in the style of a
// tuned SpMV library. Each iteration processes the whole active frontier
// in parallel, double-buffer-style without atomics, then barriers.
//
// Its per-edge cost is deliberately lower than the Galois operators'
// (tight vectorized loops, no task scheduling, no atomics, frontier
// traversed in ascending node order so the access pattern is
// stride-friendly) — GraphMat legitimately wins on priority-insensitive
// workloads. What it cannot do is exploit priority ordering: unordered
// SSSP degenerates to Bellman-Ford and its work efficiency collapses on
// high-diameter graphs, which is the Fig. 2/3 story. GMatStarSSSP is the
// authors' per-bucket delta-stepping retrofit ("GMat*"), which runs one
// full kernel per priority bucket.
//
// Determinism contract: the BSP sweeps process frontiers in ascending node
// order on a fixed core rotation, so a given configuration and seed always
// reproduces the same iteration counts and cycle totals.
package graphmat

import (
	"fmt"
	"math"

	"minnow/internal/cpu"
	"minnow/internal/graph"
	"minnow/internal/sim"
	"minnow/internal/stats"
	"minnow/internal/uops"
)

// Result summarizes a BSP run.
type Result struct {
	Wall       sim.Time
	Iterations int
	WorkItems  int64 // active-node processings (work-efficiency metric)
	TimedOut   bool
}

// Program is one GraphMat vertex program: process an active node, return
// which neighbors become active next iteration.
type Program interface {
	Name() string
	// Init returns the initially active nodes.
	Init() []int32
	// Process runs node u's update, emitting micro-ops into tr (addresses
	// from the graph layout), and appends activated nodes to out. scratch
	// is the executing thread's private accumulator region: GraphMat's
	// SpMV partitions its output per thread and merges at the barrier, so
	// unconditional reduction stores go to scratch, not shared lines.
	Process(tr *uops.Trace, u int32, out []int32, scratch uint64) []int32
	// Verify checks the converged state.
	Verify() error
}

// Runner executes a Program to convergence on the simulated cores.
type Runner struct {
	G      *graph.Graph
	Cores  []*cpu.Core
	Prog   Program
	Budget int64 // max work items (0 = unlimited); exceeding = timeout
}

// frontierPCBase tags GraphMat's load sites (distinct from the Galois
// kernels' namespaces).
const frontierPCBase = 7 << 8

// bookkeeping emits the scalar register-spill and loop-control traffic a
// compiled scatter kernel pays per element: GraphMat's SpMV loops are
// tight but not free (roughly half the Galois operator's overhead — no
// scheduling, no atomics).
func bookkeeping(tr *uops.Trace, scratch uint64, loads, compute int) {
	for i := 0; i < loads; i++ {
		tr.Load(scratch+uint64(i%4)*64, false, false)
	}
	tr.Compute(compute)
}

// densePhase charges every core its slice of GraphMat's dense per-
// iteration passes: the frontier-bitvector scan plus the apply() pass
// that reads and conditionally writes the full property vector (8B per
// vertex, sequential — the streaming pattern GraphMat is built around).
func densePhase(cores []*cpu.Core, n int, tr *uops.Trace) {
	per := n / len(cores)
	lines := per*8/64 + 1
	bitLines := per/512 + 1
	for c := range cores {
		tr.Reset()
		for l := 0; l < bitLines; l++ {
			tr.Load(0x4000+uint64(l)*64, false, false)
		}
		for l := 0; l < lines; l++ {
			tr.Load(0x40000+uint64(c*lines+l)*64, false, false)
		}
		tr.Compute(per / 2)
		cores[c].Run(tr.Ops, stats.CatWorklist)
	}
}

// Run iterates to convergence (empty frontier) or until the budget is
// exhausted.
func (r *Runner) Run() Result {
	res := Result{}
	active := r.Prog.Init()
	inNext := make([]bool, r.G.N)
	var tr uops.Trace
	n := len(r.Cores)
	for len(active) > 0 {
		res.Iterations++
		// Per-iteration dense vector phase: GraphMat's apply() pass runs
		// over EVERY vertex each iteration (scan the frontier bitvector,
		// read/update the dense property vector). This O(N)-per-iteration
		// cost is why bulk-synchronous frameworks collapse on
		// high-diameter inputs that need hundreds of iterations (§3.1).
		densePhase(r.Cores, r.G.N, &tr)
		var next []int32
		// Static contiguous partitioning of the frontier.
		chunk := (len(active) + n - 1) / n
		for c := 0; c < n; c++ {
			lo := c * chunk
			if lo >= len(active) {
				break
			}
			hi := lo + chunk
			if hi > len(active) {
				hi = len(active)
			}
			core := r.Cores[c]
			scratch := uint64(0x8000 + c*512)
			for _, u := range active[lo:hi] {
				tr.Reset()
				// Frontier bookkeeping: bitvector scan amortized (one
				// non-delinquent load per node processed).
				tr.Load(0x100+uint64(u/8), false, false)
				before := len(next)
				next = r.Prog.Process(&tr, u, next, scratch)
				// Deduplicate activations (GraphMat's sparse-vector
				// merge).
				kept := next[:before]
				for _, v := range next[before:] {
					if !inNext[v] {
						inNext[v] = true
						kept = append(kept, v)
					}
				}
				next = kept
				core.Run(tr.Ops, stats.CatUseful)
				res.WorkItems++
			}
		}
		// Barrier: everyone advances to the slowest core.
		var maxT sim.Time
		for _, c := range r.Cores {
			if c.Now() > maxT {
				maxT = c.Now()
			}
		}
		for _, c := range r.Cores {
			c.Advance(maxT+20, stats.CatWorklist) // +20: barrier sync cost
		}
		for _, v := range next {
			inNext[v] = false
		}
		active = next
		if r.Budget > 0 && res.WorkItems > r.Budget {
			res.TimedOut = true
			break
		}
	}
	for _, c := range r.Cores {
		if c.Now() > res.Wall {
			res.Wall = c.Now()
		}
	}
	return res
}

// --- SSSP (unordered Bellman-Ford BSP) ---

// SSSP is the unordered GraphMat shortest-path kernel.
type SSSP struct {
	G    *graph.Graph
	Src  int32
	Dist []int64
}

// NewSSSP builds the kernel.
func NewSSSP(g *graph.Graph, src int32) *SSSP {
	k := &SSSP{G: g, Src: src, Dist: make([]int64, g.N)}
	for i := range k.Dist {
		k.Dist[i] = math.MaxInt64 / 4
	}
	k.Dist[src] = 0
	return k
}

// Name implements Program.
func (k *SSSP) Name() string { return "gmat-sssp" }

// Init implements Program.
func (k *SSSP) Init() []int32 { return []int32{k.Src} }

// Process implements Program.
func (k *SSSP) Process(tr *uops.Trace, u int32, out []int32, scratch uint64) []int32 {
	g := k.G
	du := k.Dist[u]
	tr.LoadPC(frontierPCBase+0x43, g.NodeAddr(u), true, false)
	bookkeeping(tr, scratch, 2, 10)
	lo, hi := g.EdgeRange(u)
	for i := lo; i < hi; i++ {
		v := g.Dests[i]
		nd := du + int64(g.Weights[i])
		tr.LoadPC(frontierPCBase+0x41, g.EdgeAddr(i), true, false)
		tr.LoadPC(frontierPCBase+0x42, g.NodeAddr(v), true, true)
		bookkeeping(tr, scratch, 3, 10)
		improved := nd < k.Dist[v]
		tr.Branch(frontierPCBase+1, improved, true)
		if improved {
			k.Dist[v] = nd
			tr.Store(g.NodeAddr(v))
			out = append(out, v)
		}
	}
	tr.Compute(4)
	return out
}

// Verify implements Program: a drained Bellman-Ford fixpoint is optimal.
func (k *SSSP) Verify() error {
	return verifyDistFixpoint(k.G, k.Src, k.Dist)
}

// verifyDistFixpoint checks the shortest-path optimality conditions.
func verifyDistFixpoint(g *graph.Graph, src int32, dist []int64) error {
	if dist[src] != 0 {
		return fmt.Errorf("graphmat sssp: dist[src] = %d", dist[src])
	}
	for u := int32(0); u < int32(g.N); u++ {
		lo, hi := g.EdgeRange(u)
		for e := lo; e < hi; e++ {
			v := g.Dests[e]
			if dist[u]+int64(g.Weights[e]) < dist[v] {
				return fmt.Errorf("graphmat sssp: edge %d->%d relaxable", u, v)
			}
		}
	}
	return nil
}

// --- GMat* (per-bucket delta-stepping, §3.1) ---

// GMatStarSSSP is the GraphMat authors' delta-stepping kernel: an outer
// loop over priority buckets, each bucket processed by a full unordered
// kernel restricted to frontier nodes inside the bucket. Kernel-launch
// overhead per bucket forces a much larger optimal bucket interval than
// OBIM's (§3.1).
type GMatStarSSSP struct {
	G          *graph.Graph
	Src        int32
	Dist       []int64
	LgInterval uint
	// LaunchOverhead is the per-kernel-launch cost in cycles: GraphMat
	// kernel dispatch re-runs the whole framework setup (sparse-vector
	// allocation, message-buffer setup, program registration) per bucket.
	// The paper reports this overhead forced "a much larger optimal
	// bucket interval than Galois with OBIM" and left GMat* only ~2x
	// better than unordered GraphMat at 10 threads.
	LaunchOverhead sim.Time
}

// NewGMatStar builds the kernel.
func NewGMatStar(g *graph.Graph, src int32, lgInterval uint) *GMatStarSSSP {
	k := &GMatStarSSSP{G: g, Src: src, Dist: make([]int64, g.N), LgInterval: lgInterval, LaunchOverhead: 100000}
	for i := range k.Dist {
		k.Dist[i] = math.MaxInt64 / 4
	}
	k.Dist[src] = 0
	return k
}

// Run executes the bucketed outer loop directly (it does not fit the
// single-frontier Program shape).
func (k *GMatStarSSSP) Run(cores []*cpu.Core, budget int64) Result {
	res := Result{}
	g := k.G
	pending := map[int32]bool{k.Src: true}
	var tr uops.Trace
	bucket := int64(0)
	for len(pending) > 0 {
		// Find the lowest non-empty bucket.
		bucket = math.MaxInt64
		for v := range pending {
			b := k.Dist[v] >> k.LgInterval
			if b < bucket {
				bucket = b
			}
		}
		// Run a full unordered kernel over this bucket until it drains.
		for {
			var active []int32
			for v := range pending {
				if k.Dist[v]>>k.LgInterval == bucket {
					active = append(active, v)
					delete(pending, v)
				}
			}
			if len(active) == 0 {
				break
			}
			// Determinism: map iteration order is random.
			sortInt32(active)
			res.Iterations++
			// Kernel-launch overhead on every core: dispatch plus the
			// same dense per-iteration vector passes every GraphMat
			// kernel pays (the §3.1 reason GMat* needs much larger
			// bucket intervals than OBIM).
			densePhase(cores, g.N, &tr)
			for _, c := range cores {
				c.Advance(c.Now()+k.LaunchOverhead, stats.CatWorklist)
			}
			n := len(cores)
			chunk := (len(active) + n - 1) / n
			for c := 0; c < n; c++ {
				lo := c * chunk
				if lo >= len(active) {
					break
				}
				hi := lo + chunk
				if hi > len(active) {
					hi = len(active)
				}
				core := cores[c]
				scratch := uint64(0x8000 + c*512)
				for _, u := range active[lo:hi] {
					tr.Reset()
					du := k.Dist[u]
					tr.LoadPC(frontierPCBase+0x43, g.NodeAddr(u), true, false)
					elo, ehi := g.EdgeRange(u)
					for i := elo; i < ehi; i++ {
						v := g.Dests[i]
						nd := du + int64(g.Weights[i])
						tr.LoadPC(frontierPCBase+0x41, g.EdgeAddr(i), true, false)
						tr.LoadPC(frontierPCBase+0x42, g.NodeAddr(v), true, true)
						bookkeeping(&tr, scratch, 3, 10)
						improved := nd < k.Dist[v]
						tr.Branch(frontierPCBase+2, improved, true)
						if improved {
							k.Dist[v] = nd
							tr.Store(g.NodeAddr(v))
							pending[v] = true
						}
					}
					core.Run(tr.Ops, stats.CatUseful)
					res.WorkItems++
				}
			}
			var maxT sim.Time
			for _, c := range cores {
				if c.Now() > maxT {
					maxT = c.Now()
				}
			}
			for _, c := range cores {
				c.Advance(maxT+20, stats.CatWorklist)
			}
			if budget > 0 && res.WorkItems > budget {
				res.TimedOut = true
				break
			}
		}
		if res.TimedOut {
			break
		}
	}
	for _, c := range cores {
		if c.Now() > res.Wall {
			res.Wall = c.Now()
		}
	}
	return res
}

// Verify checks the fixpoint.
func (k *GMatStarSSSP) Verify() error {
	return verifyDistFixpoint(k.G, k.Src, k.Dist)
}

func sortInt32(a []int32) {
	// Insertion-free: simple quicksort via stdlib-style slices would need
	// sort; keep a tiny local shellsort to avoid an import for one call.
	for gap := len(a) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(a); i++ {
			for j := i; j >= gap && a[j-gap] > a[j]; j -= gap {
				a[j-gap], a[j] = a[j], a[j-gap]
			}
		}
	}
}
