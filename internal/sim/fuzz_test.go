package sim

import "testing"

// FuzzEngineEquiv drives randomized synthetic universes — bound locals,
// partially-bounded phased actors, drift actors whose horizons shrink
// and grow mid-bound-phase, fully interactive socials with
// wake-during-step, self-wake, done-then-rearm, plus probe and watchdog
// interleavings — through Run and RunParallel at several worker counts
// and windows, asserting identical step traces, shared-interaction logs,
// probe sequences, frontiers, and step counts. The seed corpus lives in
// testdata/fuzz/FuzzEngineEquiv and replays as regular test cases.
// (Byte 3 is the drift-actor count; seeds with it nonzero exercise the
// dynamic per-step horizon re-consultation.)
func FuzzEngineEquiv(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 3, 0, 8, 5, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{4, 3, 2, 0, 16, 10, 200, 150, 100, 50, 25, 12, 6, 3, 1, 255, 128})
	f.Add([]byte{2, 0, 4, 0, 0, 0, 9, 9, 9, 9, 1, 1, 1, 1, 17, 34, 51})
	f.Add([]byte{1, 3, 1, 0, 63, 49, 5, 10, 15, 20, 25, 30, 35, 40})
	// Dynamic-horizon seeds: drift-heavy universes, with and without
	// probes/watchdog, alone and mixed with every other species.
	f.Add([]byte{0, 0, 1, 3, 0, 0, 191, 83, 47, 201, 133, 77, 29, 250, 61, 19})
	f.Add([]byte{2, 2, 2, 3, 16, 10, 7, 35, 14, 105, 42, 21, 70, 3, 91, 28, 56})
	f.Add([]byte{0, 0, 2, 2, 63, 49, 245, 35, 175, 70, 140, 105, 21, 7, 210, 30})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip("oversized input")
		}
		checkScenario(t, data)
	})
}
