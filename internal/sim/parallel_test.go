package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// The differential layer: a synthetic universe decoded from a byte
// string, run through Run and RunParallel, with every observable output
// compared. Four actor species cover the interaction spectrum:
//
//   - localActor: BoundedActor with HorizonNever — its whole lifetime is
//     private, so it is bound-stepped through every epoch.
//   - phasedActor: BoundedActor with a moving finite horizon — private
//     stretches punctuated by interactive steps that touch the shared
//     log and wake social actors (the partial-bounding case).
//   - driftActor: BoundedActor whose horizon moves *during* the private
//     stretch — shrinking and growing step by step, the dynamic
//     re-consultation stepBound performs on pool goroutines (the
//     conservative-lookahead shape galois idle backoffs use).
//   - socialActor: plain Actor — every step is interactive: shared-log
//     appends, peer wakes, self-wakes, done-then-rearm.

// script is a wrapping byte reader; an empty script yields zeros.
type script struct {
	b []byte
	i int
}

func (s *script) next() byte {
	if len(s.b) == 0 {
		return 0
	}
	v := s.b[s.i%len(s.b)]
	s.i++
	return v
}

// world is the shared state of one scenario instance plus its recorders.
type world struct {
	log     []int64 // interaction log: actorID<<32 | time, in serial order
	probes  []int64 // probe trace: boundary, log length, step count triples
	wdPolls int
	actors  []interface{ trace() []Time }
}

type traceRec struct{ times []Time }

func (t *traceRec) trace() []Time { return t.times }

type localActor struct {
	traceRec
	at    Time
	s     script
	limit int
}

func (a *localActor) Step() (Time, bool) {
	a.times = append(a.times, a.at)
	if len(a.times) >= a.limit {
		return a.at, true
	}
	a.at += Time(a.s.next() % 7) // 0 advances exercise same-time re-steps
	return a.at, false
}

func (a *localActor) Horizon() Time { return HorizonNever }

type phasedActor struct {
	traceRec
	w       *world
	eng     *Engine
	id      int
	at      Time
	horizon Time
	s       script
	limit   int
	targets []int // social actor IDs
}

func (a *phasedActor) Step() (Time, bool) {
	a.times = append(a.times, a.at)
	if len(a.times) >= a.limit {
		return a.at, true
	}
	if a.at >= a.horizon {
		// Interactive step: shared-log append, maybe a wake, then open the
		// next private stretch.
		a.w.log = append(a.w.log, int64(a.id)<<32|int64(a.at))
		if b := a.s.next(); len(a.targets) > 0 && b&1 == 1 {
			tgt := a.targets[int(b>>1)%len(a.targets)]
			a.eng.Wake(tgt, a.at+Time(b%13))
		}
		a.horizon = a.at + 1 + Time(a.s.next()%23)
	}
	a.at += Time(a.s.next() % 9)
	return a.at, false
}

func (a *phasedActor) Horizon() Time { return a.horizon }

// driftActor alternates interactive steps (shared-log append, maybe a
// wake) with private stretches bounded by `until`. Unlike phasedActor,
// `until` drifts while the stretch executes: private steps occasionally
// extend it (a horizon growing mid-bound-phase, which stepBound may
// exploit only up to the epoch end) or pull it closer (a shrink that
// hands the actor back to the weave early). Horizon stays a pure
// function of actor-private state, as the bound phase requires.
type driftActor struct {
	traceRec
	w       *world
	eng     *Engine
	id      int
	at      Time
	until   Time // end of the current private stretch
	s       script
	limit   int
	targets []int // social actor IDs
}

func (a *driftActor) Step() (Time, bool) {
	a.times = append(a.times, a.at)
	if len(a.times) >= a.limit {
		return a.at, true
	}
	if a.at >= a.until {
		// Interactive step: shared-log append, maybe a wake, then open
		// the next private stretch.
		a.w.log = append(a.w.log, int64(a.id)<<32|int64(a.at))
		if b := a.s.next(); len(a.targets) > 0 && b&1 == 1 {
			a.eng.Wake(a.targets[int(b>>1)%len(a.targets)], a.at+Time(b%11))
		}
		a.until = a.at + 1 + Time(a.s.next()%37)
		a.at += Time(a.s.next() % 5)
		return a.at, false
	}
	// Private step: advance, and drift the stretch end. The shrink keeps
	// until strictly past the current time, so steps already claimed
	// private stay private.
	b := a.s.next()
	a.at += Time(b % 6)
	switch {
	case b%7 == 0:
		a.until += Time(1 + b%16) // grow: the next interaction receded
	case b%5 == 0 && a.until > a.at+1:
		a.until-- // shrink: the next interaction approached
	}
	return a.at, false
}

// Horizon reports the remaining private stretch — re-read after every
// bound step, so its drift is what the dynamic partition must track.
func (a *driftActor) Horizon() Time {
	if a.at >= a.until {
		return HorizonAlwaysWeave
	}
	return a.until
}

type socialActor struct {
	traceRec
	w     *world
	eng   *Engine
	id    int
	at    Time
	s     script
	limit int
	peers []int
}

func (a *socialActor) Step() (Time, bool) {
	a.times = append(a.times, a.at)
	a.w.log = append(a.w.log, int64(a.id)<<32|int64(a.at))
	if len(a.times) >= a.limit {
		return a.at, true // re-arm wakes still log, then retire again
	}
	switch b := a.s.next(); b % 4 {
	case 1:
		tgt := a.peers[int(a.s.next())%len(a.peers)]
		a.eng.Wake(tgt, a.at+Time(a.s.next()%17))
	case 2:
		a.eng.Wake(a.id, a.at) // self-wake: a no-op on ordering
	}
	a.at += Time(a.s.next() % 9)
	return a.at, false
}

// buildWorld decodes one scenario instance. Identical bytes build
// identical universes, so each engine mode gets a fresh copy.
func buildWorld(data []byte) (*Engine, *world) {
	s := &script{b: data}
	w := &world{}
	e := NewEngine()
	nLocal := int(s.next() % 5)
	nPhased := int(s.next() % 4)
	nSocial := 1 + int(s.next()%4)
	nDrift := int(s.next() % 4)
	probeEvery := Time(s.next()%64) * 4
	wdEvery := int64(s.next() % 50)

	sub := func(k int) script { return script{b: data, i: 11 * (k + 1)} }
	limit := func() int { return 3 + int(s.next()%40) }

	var socials []int
	k := 0
	for i := 0; i < nSocial; i++ {
		a := &socialActor{w: w, eng: e, at: Time(s.next() % 16), s: sub(k), limit: limit()}
		k++
		a.id = e.Register(a)
		socials = append(socials, a.id)
		w.actors = append(w.actors, a)
	}
	for _, id := range socials {
		any(w.actors[id]).(*socialActor).peers = socials
	}
	for i := 0; i < nPhased; i++ {
		a := &phasedActor{w: w, eng: e, at: Time(s.next() % 16), s: sub(k), limit: limit(), targets: socials}
		k++
		a.horizon = a.at + 1 + Time(s.next()%23)
		a.id = e.Register(a)
		w.actors = append(w.actors, a)
	}
	for i := 0; i < nDrift; i++ {
		a := &driftActor{w: w, eng: e, at: Time(s.next() % 16), s: sub(k), limit: limit(), targets: socials}
		k++
		a.until = a.at + 1 + Time(s.next()%37)
		a.id = e.Register(a)
		w.actors = append(w.actors, a)
	}
	for i := 0; i < nLocal; i++ {
		a := &localActor{at: Time(s.next() % 16), s: sub(k), limit: limit()}
		k++
		e.Register(a)
		w.actors = append(w.actors, a)
	}
	for id := range w.actors {
		e.Wake(id, Time(s.next()%16))
	}
	if probeEvery > 0 {
		e.SetProbe(probeEvery, func(at Time) {
			w.probes = append(w.probes, int64(at), int64(len(w.log)), e.Steps())
		})
	}
	if wdEvery > 0 {
		e.SetWatchdog(wdEvery, func() bool { w.wdPolls++; return false })
	}
	return e, w
}

// allWeave reports whether a scenario contains no bound-eligible actors,
// in which case even the watchdog poll count is serial-exact.
func allWeave(data []byte) bool {
	s := &script{b: data}
	nLocal := s.next() % 5
	nPhased := s.next() % 4
	s.next() // nSocial: socials always weave
	nDrift := s.next() % 4
	return nLocal == 0 && nPhased == 0 && nDrift == 0
}

// outcome is everything the determinism contract covers.
type outcome struct {
	traces  [][]Time
	log     []int64
	probes  []int64
	now     Time
	steps   int64
	drained bool
	wdPolls int
	bound   int64
}

func runScenario(data []byte, parallel bool, window Time, workers int) outcome {
	e, w := buildWorld(data)
	var now Time
	var drained bool
	if parallel {
		now, drained = e.RunParallel(0, window, workers)
	} else {
		now, drained = e.Run(0)
	}
	o := outcome{log: w.log, probes: w.probes, now: now, drained: drained,
		steps: e.Steps(), wdPolls: w.wdPolls, bound: e.BoundSteps()}
	for _, a := range w.actors {
		o.traces = append(o.traces, a.trace())
	}
	return o
}

// assertEquiv compares two outcomes; wdPolls only when the scenario is
// all-weave (bound phases commit step counts in batches, shifting poll
// points — the one documented divergence).
func assertEquiv(t *testing.T, want, got outcome, exactWd bool, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.traces, got.traces) {
		t.Fatalf("%s: step traces diverge\nserial: %v\npar:    %v", label, want.traces, got.traces)
	}
	if !reflect.DeepEqual(want.log, got.log) {
		t.Fatalf("%s: shared interaction log diverges\nserial: %v\npar:    %v", label, want.log, got.log)
	}
	if !reflect.DeepEqual(want.probes, got.probes) {
		t.Fatalf("%s: probe trace diverges\nserial: %v\npar:    %v", label, want.probes, got.probes)
	}
	if want.now != got.now || want.steps != got.steps || want.drained != got.drained {
		t.Fatalf("%s: now/steps/drained diverge: serial (%d,%d,%v) vs parallel (%d,%d,%v)",
			label, want.now, want.steps, want.drained, got.now, got.steps, got.drained)
	}
	if exactWd && want.wdPolls != got.wdPolls {
		t.Fatalf("%s: watchdog polls diverge on all-weave scenario: %d vs %d", label, want.wdPolls, got.wdPolls)
	}
}

// parCfgs spans worker counts (including the no-concurrency 1) and
// windows from degenerate (1 cycle) to the default.
var parCfgs = []struct {
	workers int
	window  Time
}{
	{1, 16}, {2, 64}, {3, 1}, {4, 256}, {8, DefaultEpochWindow},
}

func checkScenario(t *testing.T, data []byte) {
	t.Helper()
	serial := runScenario(data, false, 0, 0)
	exactWd := allWeave(data)
	for _, pc := range parCfgs {
		par := runScenario(data, true, pc.window, pc.workers)
		assertEquiv(t, serial, par, exactWd,
			fmt.Sprintf("workers=%d window=%d", pc.workers, pc.window))
	}
}

func TestParallelMatchesSerialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 80; i++ {
		data := make([]byte, 8+rng.Intn(56))
		rng.Read(data)
		t.Run(fmt.Sprintf("case%03d", i), func(t *testing.T) { checkScenario(t, data) })
	}
}

func TestParallelAllWeaveExact(t *testing.T) {
	// Zeroed species-count bytes force nLocal = nPhased = nDrift = 0:
	// nothing is bound-eligible, so parallel mode must match serially
	// bit-for-bit including watchdog poll counts.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		data := make([]byte, 8+rng.Intn(40))
		rng.Read(data)
		data[0], data[1], data[3] = 0, 0, 0
		if !allWeave(data) {
			t.Fatal("scenario construction drifted: expected all-weave")
		}
		t.Run(fmt.Sprintf("case%03d", i), func(t *testing.T) { checkScenario(t, data) })
	}
}

func TestParallelBoundPhaseRuns(t *testing.T) {
	// Four locals with long lifetimes and a wide window: the bound phase
	// must actually execute steps (the mode is not vacuously serial), and
	// the outcome still matches.
	data := []byte{4, 0, 1, 0, 0, 200, 200, 200, 200, 200, 9, 9, 9, 9}
	serial := runScenario(data, false, 0, 0)
	par := runScenario(data, true, DefaultEpochWindow, 4)
	assertEquiv(t, serial, par, false, "bound-progress")
	if par.bound == 0 {
		t.Fatal("expected bound-phase steps > 0 for a local-heavy scenario")
	}
	if serial.bound != 0 {
		t.Fatal("serial run must not report bound steps")
	}
}

func TestParallelDynamicHorizonBound(t *testing.T) {
	// Drift-only universe (plus the mandatory social): the bound phase
	// must engage on actors whose horizons move between steps, and every
	// worker/window combination must still match the serial schedule.
	data := []byte{0, 0, 0, 3, 0, 0, 191, 83, 47, 201, 133, 77, 29, 250, 61, 19}
	serial := runScenario(data, false, 0, 0)
	for _, pc := range parCfgs {
		par := runScenario(data, true, pc.window, pc.workers)
		assertEquiv(t, serial, par, false, fmt.Sprintf("workers=%d window=%d", pc.workers, pc.window))
	}
	wide := runScenario(data, true, DefaultEpochWindow, 4)
	if wide.bound == 0 {
		t.Fatal("expected bound-phase steps > 0 for a drift-heavy scenario")
	}
}

func TestParallelWorkerAndWindowInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		data := make([]byte, 12+rng.Intn(40))
		rng.Read(data)
		base := runScenario(data, true, 128, 1)
		for _, pc := range parCfgs {
			got := runScenario(data, true, pc.window, pc.workers)
			assertEquiv(t, base, got, false, fmt.Sprintf("case%d workers=%d window=%d", i, pc.workers, pc.window))
		}
	}
}

func TestParallelMaxStepsDeterministic(t *testing.T) {
	// A step-bound stop may overshoot maxSteps by one epoch's bound work,
	// but must do so identically for every worker count.
	data := []byte{4, 2, 2, 0, 0, 77, 33, 11, 99, 55, 200, 150, 100, 50}
	run := func(workers int) (Time, int64, bool) {
		e, _ := buildWorld(data)
		now, drained := e.RunParallel(40, 64, workers)
		return now, e.Steps(), drained
	}
	n1, s1, d1 := run(1)
	if d1 {
		t.Skip("scenario drained before the step bound; pick a longer one")
	}
	for _, w := range []int{2, 4, 8} {
		nw, sw, dw := run(w)
		if nw != n1 || sw != s1 || dw != d1 {
			t.Fatalf("step-bound stop not worker-invariant: workers=1 (%d,%d,%v) vs workers=%d (%d,%d,%v)",
				n1, s1, d1, w, nw, sw, dw)
		}
	}
}

// sparseActor steps at fixed 50-cycle strides claiming a private
// lifetime; used to provoke horizon-contract violations.
type sparseActor struct{ at Time }

func (a *sparseActor) Step() (Time, bool) {
	a.at += 50
	return a.at, a.at > 500
}

func (a *sparseActor) Horizon() Time { return HorizonNever }

// wakerActor wakes a fixed target at a fixed time from its single step.
type wakerActor struct {
	eng    *Engine
	target int
	at     Time
	wakeAt Time
}

func (a *wakerActor) Step() (Time, bool) {
	a.eng.Wake(a.target, a.wakeAt)
	return a.at, true
}

func TestParallelSparseProbeCatchUp(t *testing.T) {
	// A sparse bound schedule: one actor striding 50 cycles under an
	// 8-cycle probe interval, so every idle gap — epoch opens included —
	// crosses several boundaries at once. Serial and parallel runs must
	// fire one callback per boundary, in order, with identical step
	// counts at each firing; a catch-up that fired only once per gap
	// would leave holes in the boundary sequence.
	build := func() (*Engine, *[]int64) {
		e := NewEngine()
		id := e.Register(&sparseActor{})
		e.Wake(id, 0)
		probes := &[]int64{}
		e.SetProbe(8, func(at Time) { *probes = append(*probes, int64(at), e.Steps()) })
		return e, probes
	}
	es, want := build()
	es.Run(0)
	for i := 0; i+1 < len(*want); i += 2 {
		if exp := int64(8 * (i/2 + 1)); (*want)[i] != exp {
			t.Fatalf("serial probe sequence has a hole: probe %d fired at %d, want %d", i/2, (*want)[i], exp)
		}
	}
	for _, pc := range parCfgs {
		ep, got := build()
		ep.RunParallel(0, pc.window, pc.workers)
		if !reflect.DeepEqual(*want, *got) {
			t.Fatalf("workers=%d window=%d: probe trace diverges\nserial: %v\npar:    %v",
				pc.workers, pc.window, *want, *got)
		}
	}
}

func TestParallelWakeViolationPanics(t *testing.T) {
	// The sparse bound actor executes steps at 0, 50, 100, ... inside the
	// epoch; a weave actor at time 10 waking it to 20 would reschedule the
	// already-executed step at 50 — the engine must refuse loudly.
	e := NewEngine()
	sparse := &sparseActor{}
	sid := e.Register(sparse)
	wk := &wakerActor{eng: e, at: 10, wakeAt: 20, target: sid}
	wid := e.Register(wk)
	e.Wake(sid, 0)
	e.Wake(wid, 10)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a horizon-contract violation panic")
		}
		if !strings.Contains(fmt.Sprint(r), "horizon contract violation") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	e.RunParallel(0, DefaultEpochWindow, 2)
}

func TestParallelWakeAbsorption(t *testing.T) {
	// Same shape, but the wake targets a time at/after the next executed
	// bound step: the serial engine would min-reschedule a pending step to
	// itself, so the parallel engine absorbs it and the runs agree.
	build := func() (*Engine, *sparseActor) {
		e := NewEngine()
		sparse := &sparseActor{}
		sid := e.Register(sparse)
		wid := e.Register(&wakerActor{eng: e, at: 10, wakeAt: 60, target: sid})
		e.Wake(sid, 0)
		e.Wake(wid, 10)
		return e, sparse
	}
	es, ss := build()
	nowS, _ := es.Run(0)
	ep, sp := build()
	nowP, _ := ep.RunParallel(0, DefaultEpochWindow, 2)
	if nowS != nowP || es.Steps() != ep.Steps() || ss.at != sp.at {
		t.Fatalf("absorbed wake diverged: serial (%d,%d,%d) vs parallel (%d,%d,%d)",
			nowS, es.Steps(), ss.at, nowP, ep.Steps(), sp.at)
	}
}

// rogueActor claims a private lifetime but calls Wake from its step.
type rogueActor struct {
	eng *Engine
	at  Time
}

func (a *rogueActor) Step() (Time, bool) {
	a.eng.Wake(0, a.at+100)
	a.at += 10
	return a.at, false
}

func (a *rogueActor) Horizon() Time { return HorizonNever }

func TestParallelWakeDuringBoundPanics(t *testing.T) {
	e := NewEngine()
	r := &rogueActor{eng: e}
	id := e.Register(r)
	e.Wake(id, 0)
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("expected a bound-phase Wake panic")
		}
		if !strings.Contains(fmt.Sprint(rec), "bound phase") {
			t.Fatalf("unexpected panic: %v", rec)
		}
	}()
	e.RunParallel(0, DefaultEpochWindow, 2)
}

func TestRunParallelEmpty(t *testing.T) {
	e := NewEngine()
	now, drained := e.RunParallel(0, 0, 0) // degenerate args select defaults
	if now != 0 || !drained {
		t.Fatalf("empty engine: got (%d, %v), want (0, true)", now, drained)
	}
}
