package sim

import (
	"testing"
)

// scriptActor executes a scripted series of (advance, done) steps and
// records when it ran.
type scriptActor struct {
	at    Time
	steps []Time // clock after each step
	i     int
	log   *[]int
	id    int
}

func (a *scriptActor) Step() (Time, bool) {
	*a.log = append(*a.log, a.id)
	if a.i >= len(a.steps) {
		return a.at, true
	}
	a.at = a.steps[a.i]
	a.i++
	return a.at, a.i >= len(a.steps)
}

func TestTimeOrdering(t *testing.T) {
	e := NewEngine()
	var log []int
	// Actor 0 steps at 0 then 100; actor 1 steps at 50.
	a0 := &scriptActor{steps: []Time{100, 200}, log: &log, id: 0}
	a1 := &scriptActor{steps: []Time{50, 60}, log: &log, id: 1}
	id0 := e.Register(a0)
	id1 := e.Register(a1)
	e.Wake(id0, 0)
	e.Wake(id1, 10)
	e.Run(0)
	// a0 runs at 0 (advances to 100), a1 at 10 (to 50), a1 at 50 (to 60,
	// done), a0 at 100 (to 200, done).
	want := []int{0, 1, 1, 0}
	if len(log) != len(want) {
		t.Fatalf("log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log %v, want %v", log, want)
		}
	}
}

func TestTieBreakByID(t *testing.T) {
	e := NewEngine()
	var log []int
	a0 := &scriptActor{steps: []Time{5}, log: &log, id: 0}
	a1 := &scriptActor{steps: []Time{5}, log: &log, id: 1}
	// Register in reverse order: IDs still break the tie (lower first).
	id1 := e.Register(a1)
	id0 := e.Register(a0)
	e.Wake(id0, 7)
	e.Wake(id1, 7)
	e.Run(0)
	// a1 has ID 0 (registered first).
	if log[0] != 1 || log[1] != 0 {
		t.Fatalf("tie-break order %v", log)
	}
}

func TestWakeReschedulesEarlier(t *testing.T) {
	e := NewEngine()
	var log []int
	a := &scriptActor{steps: []Time{10}, log: &log, id: 0}
	id := e.Register(a)
	e.Wake(id, 100)
	e.Wake(id, 5) // earlier wins
	now, drained := e.Run(0)
	if !drained {
		t.Fatal("did not drain")
	}
	// The actor ran at the earlier wake time (5), not the later one.
	if now != 5 {
		t.Fatalf("frontier %d, want 5", now)
	}
}

func TestWakeLaterIsIgnored(t *testing.T) {
	e := NewEngine()
	var log []int
	a := &scriptActor{steps: []Time{10}, log: &log, id: 0}
	id := e.Register(a)
	e.Wake(id, 5)
	e.Wake(id, 100) // later than queued: ignored
	e.Run(0)
	if len(log) != 1 {
		t.Fatalf("steps %d, want 1", len(log))
	}
}

func TestMaxStepsBound(t *testing.T) {
	e := NewEngine()
	var log []int
	// An actor that never finishes.
	a := &infiniteActor{}
	id := e.Register(a)
	e.Wake(id, 0)
	_ = log
	_, drained := e.Run(100)
	if drained {
		t.Fatal("expected step bound, got drain")
	}
	if e.Steps() != 100 {
		t.Fatalf("steps %d, want 100", e.Steps())
	}
}

type infiniteActor struct{ t Time }

func (a *infiniteActor) Step() (Time, bool) {
	a.t++
	return a.t, false
}

func TestWakeDormantActorAfterDone(t *testing.T) {
	e := NewEngine()
	var log []int
	a := &scriptActor{steps: []Time{10}, log: &log, id: 0}
	id := e.Register(a)
	e.Wake(id, 0)
	e.Run(0)
	if len(log) != 1 {
		t.Fatalf("first run: %d steps", len(log))
	}
	// Re-arm: actor is done (i exhausted) so it steps once more and
	// retires immediately.
	e.Wake(id, 20)
	e.Run(0)
	if len(log) != 2 {
		t.Fatalf("after rearm: %d steps", len(log))
	}
}

func TestClockNeverMovesBackwards(t *testing.T) {
	e := NewEngine()
	var log []int
	// Actor tries to schedule itself in the past.
	a := &pastActor{log: &log}
	id := e.Register(a)
	e.Wake(id, 50)
	now, _ := e.Run(0)
	if now < 50 {
		t.Fatalf("frontier went backwards: %d", now)
	}
}

type pastActor struct {
	log *[]int
	n   int
}

func (a *pastActor) Step() (Time, bool) {
	a.n++
	return 1, a.n >= 3 // always asks for t=1, in the past
}

func TestIdle(t *testing.T) {
	e := NewEngine()
	if !e.Idle() {
		t.Fatal("new engine not idle")
	}
	var log []int
	a := &scriptActor{steps: []Time{1}, log: &log, id: 0}
	id := e.Register(a)
	e.Wake(id, 0)
	if e.Idle() {
		t.Fatal("armed engine reported idle")
	}
	e.Run(0)
	if !e.Idle() {
		t.Fatal("drained engine not idle")
	}
}
