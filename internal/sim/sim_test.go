package sim

import (
	"testing"
)

// scriptActor executes a scripted series of (advance, done) steps and
// records when it ran.
type scriptActor struct {
	at    Time
	steps []Time // clock after each step
	i     int
	log   *[]int
	id    int
}

func (a *scriptActor) Step() (Time, bool) {
	*a.log = append(*a.log, a.id)
	if a.i >= len(a.steps) {
		return a.at, true
	}
	a.at = a.steps[a.i]
	a.i++
	return a.at, a.i >= len(a.steps)
}

func TestTimeOrdering(t *testing.T) {
	e := NewEngine()
	var log []int
	// Actor 0 steps at 0 then 100; actor 1 steps at 50.
	a0 := &scriptActor{steps: []Time{100, 200}, log: &log, id: 0}
	a1 := &scriptActor{steps: []Time{50, 60}, log: &log, id: 1}
	id0 := e.Register(a0)
	id1 := e.Register(a1)
	e.Wake(id0, 0)
	e.Wake(id1, 10)
	e.Run(0)
	// a0 runs at 0 (advances to 100), a1 at 10 (to 50), a1 at 50 (to 60,
	// done), a0 at 100 (to 200, done).
	want := []int{0, 1, 1, 0}
	if len(log) != len(want) {
		t.Fatalf("log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log %v, want %v", log, want)
		}
	}
}

func TestTieBreakByID(t *testing.T) {
	e := NewEngine()
	var log []int
	a0 := &scriptActor{steps: []Time{5}, log: &log, id: 0}
	a1 := &scriptActor{steps: []Time{5}, log: &log, id: 1}
	// Register in reverse order: IDs still break the tie (lower first).
	id1 := e.Register(a1)
	id0 := e.Register(a0)
	e.Wake(id0, 7)
	e.Wake(id1, 7)
	e.Run(0)
	// a1 has ID 0 (registered first).
	if log[0] != 1 || log[1] != 0 {
		t.Fatalf("tie-break order %v", log)
	}
}

func TestWakeReschedulesEarlier(t *testing.T) {
	e := NewEngine()
	var log []int
	a := &scriptActor{steps: []Time{10}, log: &log, id: 0}
	id := e.Register(a)
	e.Wake(id, 100)
	e.Wake(id, 5) // earlier wins
	now, drained := e.Run(0)
	if !drained {
		t.Fatal("did not drain")
	}
	// The actor ran at the earlier wake time (5), not the later one.
	if now != 5 {
		t.Fatalf("frontier %d, want 5", now)
	}
}

func TestWakeLaterIsIgnored(t *testing.T) {
	e := NewEngine()
	var log []int
	a := &scriptActor{steps: []Time{10}, log: &log, id: 0}
	id := e.Register(a)
	e.Wake(id, 5)
	e.Wake(id, 100) // later than queued: ignored
	e.Run(0)
	if len(log) != 1 {
		t.Fatalf("steps %d, want 1", len(log))
	}
}

func TestMaxStepsBound(t *testing.T) {
	e := NewEngine()
	var log []int
	// An actor that never finishes.
	a := &infiniteActor{}
	id := e.Register(a)
	e.Wake(id, 0)
	_ = log
	_, drained := e.Run(100)
	if drained {
		t.Fatal("expected step bound, got drain")
	}
	if e.Steps() != 100 {
		t.Fatalf("steps %d, want 100", e.Steps())
	}
}

type infiniteActor struct{ t Time }

func (a *infiniteActor) Step() (Time, bool) {
	a.t++
	return a.t, false
}

func TestWakeDormantActorAfterDone(t *testing.T) {
	e := NewEngine()
	var log []int
	a := &scriptActor{steps: []Time{10}, log: &log, id: 0}
	id := e.Register(a)
	e.Wake(id, 0)
	e.Run(0)
	if len(log) != 1 {
		t.Fatalf("first run: %d steps", len(log))
	}
	// Re-arm: actor is done (i exhausted) so it steps once more and
	// retires immediately.
	e.Wake(id, 20)
	e.Run(0)
	if len(log) != 2 {
		t.Fatalf("after rearm: %d steps", len(log))
	}
}

func TestClockNeverMovesBackwards(t *testing.T) {
	e := NewEngine()
	var log []int
	// Actor tries to schedule itself in the past.
	a := &pastActor{log: &log}
	id := e.Register(a)
	e.Wake(id, 50)
	now, _ := e.Run(0)
	if now < 50 {
		t.Fatalf("frontier went backwards: %d", now)
	}
}

type pastActor struct {
	log *[]int
	n   int
}

func (a *pastActor) Step() (Time, bool) {
	a.n++
	return 1, a.n >= 3 // always asks for t=1, in the past
}

// oneShot runs once at its scheduled time and retires.
type oneShot struct {
	log *[]int
	id  int
	ran int
}

func (a *oneShot) Step() (Time, bool) {
	*a.log = append(*a.log, a.id)
	a.ran++
	return 0, true
}

// wakeAndRetire wakes target at the engine frontier on its first step and
// immediately returns done.
type wakeAndRetire struct {
	eng    *Engine
	target int
	log    *[]int
	id     int
	ran    int
}

func (a *wakeAndRetire) Step() (Time, bool) {
	*a.log = append(*a.log, a.id)
	a.ran++
	if a.ran == 1 {
		a.eng.Wake(a.target, a.eng.Now())
	}
	return 0, true
}

// TestWakeDuringStepThenDone is the heap-corruption regression for the
// done path: the stepping actor wakes a dormant lower-ID actor at the
// current time, so the pushed entry sifts over it to the heap root.
// Popping the root after Step (the old behavior) then removes the freshly
// woken actor instead of the finished one — a lost wakeup plus a
// duplicated step. The index-tracked removal must keep the woken actor
// queued.
func TestWakeDuringStepThenDone(t *testing.T) {
	e := NewEngine()
	var log []int
	b := &oneShot{log: &log, id: 0}
	idB := e.Register(b) // id 0: wins the time tie against the waker
	a := &wakeAndRetire{eng: e, log: &log, id: 1}
	idA := e.Register(a)
	a.target = idB
	c := &oneShot{log: &log, id: 2}
	idC := e.Register(c)

	e.Wake(idA, 10)
	e.Wake(idC, 100)
	if _, drained := e.Run(0); !drained {
		t.Fatal("did not drain")
	}

	want := []int{1, 0, 2} // A steps at 10, woken B at 10, C at 100
	if len(log) != len(want) {
		t.Fatalf("step log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("step log %v, want %v", log, want)
		}
	}
	if b.ran != 1 {
		t.Fatalf("woken actor stepped %d times, want 1 (lost wakeup)", b.ran)
	}
	if a.ran != 1 {
		t.Fatalf("finished actor stepped %d times, want 1 (duplicate step)", a.ran)
	}
}

// wakeAndContinue wakes target at the engine frontier on its first step
// and reschedules itself at a later time; its second step retires it.
type wakeAndContinue struct {
	eng    *Engine
	target int
	next   Time
	log    *[]int
	id     int
	ran    int
}

func (a *wakeAndContinue) Step() (Time, bool) {
	*a.log = append(*a.log, a.id)
	a.ran++
	if a.ran == 1 {
		a.eng.Wake(a.target, a.eng.Now())
		return a.next, false
	}
	return 0, true
}

// TestWakeDuringStepThenReschedule is the heap-corruption regression for
// the reschedule path. The heap is laid out so the nested Wake sifts the
// woken entry through the stepping actor's position; fixing index 0
// afterwards (the old behavior) leaves the rescheduled actor parked above
// entries with earlier times, and later pops run actors out of time
// order. The index-tracked heap.Fix must restore correct ordering.
func TestWakeDuringStepThenReschedule(t *testing.T) {
	e := NewEngine()
	var log []int

	b := &oneShot{log: &log, id: 0}
	idB := e.Register(b) // dormant; woken mid-step, wins the tie on ID
	a := &wakeAndContinue{eng: e, next: 50, log: &log, id: 1}
	idA := e.Register(a)
	a.target = idB

	// Five one-shot filler actors whose wake order shapes the heap so the
	// nested push displaces the stepping actor into a violated position:
	// array [A@10 C@30 X@15 E@60 F@70 D@40 H@90] before the wake.
	times := []Time{30, 15, 60, 70, 40, 90}
	fillers := make([]*oneShot, len(times))
	for i := range times {
		fillers[i] = &oneShot{log: &log, id: 2 + i}
	}
	e.Wake(idA, 10)
	for i, at := range times {
		id := e.Register(fillers[i])
		e.Wake(id, at)
	}

	if _, drained := e.Run(0); !drained {
		t.Fatal("did not drain")
	}

	// Sorted by (time, id): A@10, B@10... A steps first (B is woken during
	// A's step), then B@10, X@15, C@30, D@40, A@50, E@60, F@70, H@90.
	want := []int{1, 0, 3, 2, 6, 1, 4, 5, 7}
	if len(log) != len(want) {
		t.Fatalf("step log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("step log %v, want %v (actors ran out of time order)", log, want)
		}
	}
	for i, f := range fillers {
		if f.ran != 1 {
			t.Fatalf("filler %d stepped %d times, want 1", i, f.ran)
		}
	}
}

func TestIdle(t *testing.T) {
	e := NewEngine()
	if !e.Idle() {
		t.Fatal("new engine not idle")
	}
	var log []int
	a := &scriptActor{steps: []Time{1}, log: &log, id: 0}
	id := e.Register(a)
	e.Wake(id, 0)
	if e.Idle() {
		t.Fatal("armed engine reported idle")
	}
	e.Run(0)
	if !e.Idle() {
		t.Fatal("drained engine not idle")
	}
}
