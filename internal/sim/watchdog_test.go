package sim

import "testing"

// spinActor reschedules itself forever, one cycle at a time — the
// livelock shape the watchdog exists to catch.
type spinActor struct{ at Time }

func (a *spinActor) Step() (Time, bool) {
	a.at++
	return a.at, false
}

func TestWatchdogHalts(t *testing.T) {
	e := NewEngine()
	id := e.Register(&spinActor{})
	e.Wake(id, 0)

	polls := 0
	e.SetWatchdog(10, func() bool {
		polls++
		return polls >= 3 // trip on the third poll
	})
	now, drained := e.Run(0)
	if drained {
		t.Fatalf("watchdog halt reported as drain")
	}
	if !e.Halted() {
		t.Fatalf("Halted() false after watchdog trip")
	}
	if polls != 3 {
		t.Fatalf("watchdog polled %d times, want 3", polls)
	}
	// Three polls at every-10-steps → exactly 30 steps executed.
	if e.Steps() != 30 {
		t.Fatalf("steps %d at halt, want 30", e.Steps())
	}
	if now != e.Now() {
		t.Fatalf("Run returned now=%d, engine Now=%d", now, e.Now())
	}
}

func TestWatchdogBenign(t *testing.T) {
	e := NewEngine()
	var log []int
	a := &scriptActor{steps: []Time{5, 9}, log: &log, id: 0}
	e.Wake(e.Register(a), 0)

	polls := 0
	e.SetWatchdog(1, func() bool { polls++; return false })
	now, drained := e.Run(0)
	if !drained || e.Halted() {
		t.Fatalf("benign watchdog perturbed the run: drained=%v halted=%v", drained, e.Halted())
	}
	if now != 5 {
		t.Fatalf("final time %d, want 5", now)
	}
	// The first poll fires once `every` steps have executed, so an
	// n-step run with every=1 polls n-1 times.
	if polls != int(e.Steps())-1 {
		t.Fatalf("polled %d times over %d steps with every=1", polls, e.Steps())
	}
}

func TestWatchdogDisable(t *testing.T) {
	e := NewEngine()
	var log []int
	a := &scriptActor{steps: []Time{1, 2}, log: &log, id: 0}
	e.Wake(e.Register(a), 0)

	e.SetWatchdog(1, func() bool { return true })
	e.SetWatchdog(0, nil) // disarm before running
	if _, drained := e.Run(0); !drained {
		t.Fatalf("disarmed watchdog still halted the run")
	}
}

func TestHaltedClearsOnNextRun(t *testing.T) {
	e := NewEngine()
	id := e.Register(&spinActor{})
	e.Wake(id, 0)
	e.SetWatchdog(1, func() bool { return true })
	e.Run(0)
	if !e.Halted() {
		t.Fatalf("expected halt")
	}
	e.SetWatchdog(0, nil)
	e.Run(5) // bounded resume
	if e.Halted() {
		t.Fatalf("Halted() sticky across Run")
	}
}

func TestQueuedDeterministicOrder(t *testing.T) {
	e := NewEngine()
	var log []int
	// Three actors woken out of order, two tied at t=7.
	a0 := e.Register(&scriptActor{steps: []Time{20}, log: &log, id: 0})
	a1 := e.Register(&scriptActor{steps: []Time{21}, log: &log, id: 1})
	a2 := e.Register(&scriptActor{steps: []Time{22}, log: &log, id: 2})
	e.Wake(a2, 7)
	e.Wake(a0, 7)
	e.Wake(a1, 3)

	q := e.Queued()
	if len(q) != 3 {
		t.Fatalf("queued %d actors, want 3", len(q))
	}
	want := []QueuedActor{{ID: a1, At: 3}, {ID: a0, At: 7}, {ID: a2, At: 7}}
	for i, qa := range q {
		if qa != want[i] {
			t.Fatalf("Queued()[%d] = %+v, want %+v (full: %+v)", i, qa, want[i], q)
		}
	}
}
