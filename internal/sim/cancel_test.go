package sim

import "testing"

func TestCancelStopsRun(t *testing.T) {
	e := NewEngine()
	id := e.Register(&spinActor{})
	e.Wake(id, 0)

	polls := 0
	e.SetCancel(10, func() bool {
		polls++
		return polls >= 3 // cancel on the third poll
	})
	now, drained := e.Run(0)
	if drained {
		t.Fatalf("cancel reported as drain")
	}
	if !e.Canceled() {
		t.Fatalf("Canceled() false after cancel fired")
	}
	if e.Halted() {
		t.Fatalf("cancel must not set Halted()")
	}
	if polls != 3 {
		t.Fatalf("cancel hook polled %d times, want 3", polls)
	}
	// Three polls at every-10-steps → exactly 30 steps executed.
	if e.Steps() != 30 {
		t.Fatalf("steps %d at cancel, want 30", e.Steps())
	}
	if now != e.Now() {
		t.Fatalf("Run returned now=%d, engine Now=%d", now, e.Now())
	}
}

// TestCancelBenignIsInert pins the determinism contract for completed
// runs: a never-firing cancel hook must not perturb the step sequence,
// final time, or step count relative to a run with no hook at all.
func TestCancelBenignIsInert(t *testing.T) {
	run := func(withHook bool) (Time, int64, []int) {
		e := NewEngine()
		var log []int
		a := &scriptActor{steps: []Time{5, 9, 14}, log: &log, id: 0}
		b := &scriptActor{steps: []Time{3, 9}, log: &log, id: 1}
		e.Wake(e.Register(a), 0)
		e.Wake(e.Register(b), 0)
		if withHook {
			e.SetCancel(1, func() bool { return false })
		}
		now, drained := e.Run(0)
		if !drained || e.Canceled() {
			t.Fatalf("benign cancel hook perturbed the run: drained=%v canceled=%v", drained, e.Canceled())
		}
		return now, e.Steps(), log
	}
	nowA, stepsA, logA := run(false)
	nowB, stepsB, logB := run(true)
	if nowA != nowB || stepsA != stepsB {
		t.Fatalf("cancel hook changed the run: now %d vs %d, steps %d vs %d", nowA, nowB, stepsA, stepsB)
	}
	if len(logA) != len(logB) {
		t.Fatalf("cancel hook changed the step log length: %d vs %d", len(logA), len(logB))
	}
	for i := range logA {
		if logA[i] != logB[i] {
			t.Fatalf("cancel hook changed step order at %d: %v vs %v", i, logA, logB)
		}
	}
}

func TestCancelDisable(t *testing.T) {
	e := NewEngine()
	var log []int
	a := &scriptActor{steps: []Time{1, 2}, log: &log, id: 0}
	e.Wake(e.Register(a), 0)

	e.SetCancel(1, func() bool { return true })
	e.SetCancel(0, nil) // disarm before running
	if _, drained := e.Run(0); !drained {
		t.Fatalf("disarmed cancel hook still stopped the run")
	}
	if e.Canceled() {
		t.Fatalf("Canceled() true after disarmed run")
	}
}

func TestCanceledClearsOnNextRun(t *testing.T) {
	e := NewEngine()
	id := e.Register(&spinActor{})
	e.Wake(id, 0)
	e.SetCancel(1, func() bool { return true })
	e.Run(0)
	if !e.Canceled() {
		t.Fatalf("expected cancel")
	}
	e.SetCancel(0, nil)
	e.Run(5) // bounded resume
	if e.Canceled() {
		t.Fatalf("Canceled() sticky across Run")
	}
}

func TestCancelStopsRunParallel(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		e := NewEngine()
		id := e.Register(&spinActor{})
		e.Wake(id, 0)
		polls := 0
		e.SetCancel(10, func() bool {
			polls++
			return polls >= 2
		})
		_, drained := e.RunParallel(0, 0, workers)
		if drained {
			t.Fatalf("workers=%d: cancel reported as drain", workers)
		}
		if !e.Canceled() {
			t.Fatalf("workers=%d: Canceled() false after cancel fired", workers)
		}
	}
}
