// Package sim provides the discrete-event simulation kernel.
//
// The simulator follows a "bound-weave"-like scheme inspired by ZSim: each
// actor (a CPU core, a Minnow engine, a bulk-synchronous sweep) owns a
// local clock. The engine repeatedly steps the actor with the smallest
// local time. Shared resources (L3 banks, NoC links, DRAM channels) keep
// busy-until reservations, so contention between actors is modeled even
// though each actor advances its clock privately during a step.
//
// Determinism: ties on local time are broken by actor ID, and actors may
// only interact through simulated-time-stamped resource reservations or
// through data structures they mutate while running (which the min-time
// ordering serializes), so a given configuration and seed always produces
// identical cycle counts.
//
// Wake-during-step contract: an actor's Step may call Engine.Wake for any
// actor, including wakes that schedule a dormant actor ahead of everything
// currently queued. Run tracks the stepping actor by its heap index, so a
// nested Wake that displaces it from the heap root is honored exactly: the
// woken actor runs at its requested (clamped) time, the stepping actor is
// removed or rescheduled at its own position, and no wakeup is lost. A
// self-wake during a step is a no-op on ordering (the stepping actor's
// queued time is already <= the frontier, and Wake never delays an entry);
// an actor that returns done is retired regardless and must be re-armed by
// a Wake issued after its step returns.
//
// Observability: SetProbe installs a read-only callback invoked whenever
// the frontier crosses a fixed cycle boundary (the obs package's sampling
// registry hooks in here). The probe fires before the actor scheduled at
// or past the boundary steps, so a sample stamped B reflects exactly the
// work completed strictly before cycle B; probes must only read state —
// calling Wake or mutating actors from a probe would break the
// determinism contract above. A disabled probe costs one comparison per
// frontier advance.
//
// Robustness: SetWatchdog installs a liveness callback polled every N
// steps; when it reports the run is wedged (no progress, cycle budget
// exceeded) the engine halts cleanly — Halted distinguishes that from a
// drain or a step-bound stop — and Queued exposes a deterministic dump of
// the pending schedule for the diagnostic snapshot. A disabled watchdog
// costs one nil check per step. SetCancel installs the cooperative
// cancellation hook on the same polling pattern: when it reports true the
// run stops cleanly between steps and Canceled reports the abandonment.
// Cancellation is a host-driven event, so a canceled run's partial state
// is not deterministic — but runs that complete are byte-identical
// whether or not a (never-firing) cancel hook was installed, which is
// what lets a service arm the hook on every job without perturbing
// results.
//
// Concurrent stepping: RunParallel executes the same schedule as Run in
// fixed-size epochs, stepping actors that prove (via the optional
// BoundedActor interface) that they cannot interact inside the epoch on a
// host worker pool, and weaving everything else serially in (time, ID)
// order. The determinism contract extends unchanged to this mode: for
// runs that drain (neither halted by the watchdog nor stopped by the step
// bound), the frontier, step count, per-actor step sequence, and probe
// callback sequence are bit-identical to Run for every worker count,
// including 1. Actors that do not implement BoundedActor — or that return
// a horizon at or before their next step — always weave, so the mode is
// adoptable one actor type at a time and degrades to exactly the serial
// behavior when no actor is bound-eligible. See parallel.go for the epoch
// algorithm and the horizon contract.
package sim

import (
	"container/heap"
	"sort"
)

// timeMax is the disabled-probe sentinel; no simulation reaches it.
const timeMax = Time(1) << 62

// Time is a simulated time in core clock cycles.
type Time int64

// Actor is a schedulable entity with its own local clock.
//
// Step runs the actor's next unit of work (one task, one threadlet, one
// sweep chunk, ...), advancing its local clock. It returns the actor's new
// local time and whether the actor wants to keep running. An actor that
// returns done=true is removed from the scheduler; it can be re-armed with
// Engine.Wake.
type Actor interface {
	// Step executes the next unit of work at the actor's current local
	// time and returns the time at which the actor next wants to run.
	Step() (next Time, done bool)
}

type entry struct {
	at    Time
	id    int
	actor Actor
	ba    BoundedActor // non-nil when the actor declares horizons
	index int          // heap index, -1 when not queued

	// Bound-phase bookkeeping, valid only while epoch == Engine.epoch.
	// stepTimes records the local times of the steps this actor executed
	// ahead of the weave during the current epoch's bound phase; Wake uses
	// it to reconcile weave-phase wakes against already-executed history.
	// safeUntil is min(declared horizon, epoch end) and is re-derived
	// after every bound step from the actor's (dynamic) horizon; boundEnd
	// pins the epoch end so a growing horizon can never escape the window.
	epoch      int64
	safeUntil  Time
	boundEnd   Time
	stepTimes  []Time
	boundSteps int64
	boundDone  bool
	panicked   any
}

type actorHeap []*entry

func (h actorHeap) Len() int { return len(h) }
func (h actorHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}
func (h actorHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *actorHeap) Push(x any) {
	e := x.(*entry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *actorHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine schedules actors in simulated-time order.
type Engine struct {
	heap    actorHeap
	entries []*entry // by actor ID
	now     Time
	steps   int64

	probeAt    Time // next boundary; timeMax when no probe is installed
	probeEvery Time
	probeFn    func(at Time)

	wdEvery int64       // steps between watchdog polls
	wdNext  int64       // step count at which the watchdog next fires
	wdFn    func() bool // reports true to halt the run; nil when disabled
	halted  bool        // last Run was stopped by the watchdog

	cnEvery  int64       // steps between cancellation polls
	cnNext   int64       // step count at which the cancel hook next fires
	cnFn     func() bool // reports true to abandon the run; nil when disabled
	canceled bool        // last Run was stopped by the cancel hook

	// Parallel (bound/weave) execution state; see parallel.go. epoch is 0
	// while no RunParallel epoch has ever started, so the per-Wake stamp
	// check below short-circuits to a single comparison in serial runs.
	epoch      int64 // current epoch stamp; entries carry the stamp they were bound under
	inBound    bool  // a bound phase is executing; Engine methods are off-limits
	steppingID int   // ID of the weave actor currently stepping (-1 outside a weave step)
	boundTotal int64 // steps executed in bound phases (subset of steps)
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{probeAt: timeMax, steppingID: -1}
}

// SetProbe installs fn to be called with each crossed boundary time
// (every, 2*every, ...) as the frontier advances. The probe observes
// only: it runs before the actor at or past the boundary steps and must
// not wake actors or mutate simulation state. A nil fn or non-positive
// interval disables probing.
func (e *Engine) SetProbe(every Time, fn func(at Time)) {
	if fn == nil || every <= 0 {
		e.probeAt, e.probeEvery, e.probeFn = timeMax, 0, nil
		return
	}
	e.probeEvery = every
	e.probeFn = fn
	e.probeAt = every
	for e.probeAt <= e.now {
		e.probeAt += every
	}
}

// fireProbe emits one callback per boundary the frontier crossed. A
// frontier jump over multiple boundaries yields one callback per
// boundary, so sampling cadence stays cycle-aligned even through idle
// gaps.
func (e *Engine) fireProbe() {
	for e.probeAt <= e.now {
		at := e.probeAt
		e.probeAt += e.probeEvery
		e.probeFn(at)
	}
}

// advanceFrontier moves the frontier forward to at (never backwards),
// replaying every probe boundary the jump crossed. This is the single
// frontier-advance path shared by the serial loop, the parallel epoch
// open, and the weave loop: a sparse schedule whose idle gap skips
// several boundaries at once fires the same per-boundary callback
// sequence no matter which execution mode crossed the gap.
func (e *Engine) advanceFrontier(at Time) {
	if at > e.now {
		e.now = at
		if e.now >= e.probeAt {
			e.fireProbe()
		}
	}
}

// SetWatchdog installs fn to be polled once every `every` actor steps
// during Run. If fn returns true the run halts immediately: Run returns
// (Now(), false) and Halted() reports true until the next Run. The
// callback may read any simulation state (including Queued) but must not
// wake actors or mutate them. A nil fn or non-positive interval disables
// the watchdog, which then costs one nil check per step.
func (e *Engine) SetWatchdog(every int64, fn func() bool) {
	if fn == nil || every <= 0 {
		e.wdEvery, e.wdNext, e.wdFn = 0, 0, nil
		return
	}
	e.wdEvery = every
	e.wdNext = e.steps + every
	e.wdFn = fn
}

// Halted reports whether the most recent Run was stopped by the watchdog
// (as opposed to draining or hitting the step bound).
func (e *Engine) Halted() bool { return e.halted }

// SetCancel installs fn to be polled once every `every` actor steps
// during Run (and RunParallel, which polls at epoch boundaries and per
// weave step on the same step-count cadence). If fn returns true the run
// stops cleanly between steps: Run returns (Now(), false) and Canceled()
// reports true until the next Run. The hook is read-only — it must not
// wake actors or mutate simulation state — so an installed hook that
// never fires leaves a completed run byte-identical to one without it; a
// nil fn or non-positive interval disables the hook, which then costs one
// nil check per poll site. fn may be called from the simulation goroutine
// at any time, so it must be safe to call concurrently with whatever
// host-side code flips its condition (an atomic flag, a closed channel).
func (e *Engine) SetCancel(every int64, fn func() bool) {
	if fn == nil || every <= 0 {
		e.cnEvery, e.cnNext, e.cnFn = 0, 0, nil
		return
	}
	e.cnEvery = every
	e.cnNext = e.steps + every
	e.cnFn = fn
}

// Canceled reports whether the most recent Run was stopped by the cancel
// hook (as opposed to draining, halting, or hitting the step bound).
func (e *Engine) Canceled() bool { return e.canceled }

// QueuedActor describes one scheduled actor for diagnostics: its ID and
// the local time at which it will next step.
type QueuedActor struct {
	// ID is the actor's scheduler ID (Register order).
	ID int
	// At is the simulated time of the actor's next step.
	At Time
}

// Queued returns the scheduled actors in deterministic (time, ID) order —
// the per-actor clock dump for watchdog snapshots. It copies and sorts;
// the schedule itself is not mutated.
func (e *Engine) Queued() []QueuedActor {
	out := make([]QueuedActor, 0, len(e.heap))
	for _, ent := range e.heap {
		out = append(out, QueuedActor{ID: ent.id, At: ent.at})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Register adds an actor and returns its ID. The actor is initially
// dormant; call Wake to schedule its first step. If the actor also
// implements BoundedActor its horizon is consulted by RunParallel; plain
// actors always weave.
func (e *Engine) Register(a Actor) int {
	id := len(e.entries)
	ent := &entry{id: id, actor: a, index: -1}
	ent.ba, _ = a.(BoundedActor)
	e.entries = append(e.entries, ent)
	return id
}

// Wake (re-)schedules actor id to step at time at. If the actor is already
// queued, it is rescheduled to min(current, at). Wake must not be called
// from a bound-phase step (see BoundedActor); during a RunParallel weave
// it additionally reconciles the wake against bound-phase history so the
// outcome is exactly what the serial engine would have done.
func (e *Engine) Wake(id int, at Time) {
	if e.inBound {
		panic("sim: Wake called during a bound phase — a BoundedActor interacted with the engine before its declared horizon")
	}
	ent := e.entries[id]
	if at < e.now {
		at = e.now
	}
	// Reconcile against bound-phase history whenever the entry still
	// carries recorded run-ahead steps — not just when it was bound in
	// the current epoch: an epoch can close early (the weave hands a
	// freshly bound-eligible actor back to the partition), leaving a
	// prior epoch's bound steps ahead of the frontier. History fully in
	// the past resolves to regular handling inside resolveBoundWake.
	if len(ent.stepTimes) > 0 && !e.resolveBoundWake(ent, at) {
		return // absorbed: the serial schedule would have no-op'd this wake
	}
	if ent.index >= 0 {
		if at < ent.at {
			ent.at = at
			heap.Fix(&e.heap, ent.index)
		}
		return
	}
	ent.at = at
	heap.Push(&e.heap, ent)
}

// Now returns the local time of the most recently stepped actor — the
// simulation frontier.
func (e *Engine) Now() Time { return e.now }

// Steps returns the total number of actor steps executed, a cheap progress
// and liveness metric.
func (e *Engine) Steps() int64 { return e.steps }

// Idle reports whether no actor is scheduled.
func (e *Engine) Idle() bool { return len(e.heap) == 0 }

// Run steps actors in time order until no actor is scheduled or until
// maxSteps actor steps have executed (0 means unbounded). It returns the
// final frontier time and whether the run drained (as opposed to hitting
// the step bound).
func (e *Engine) Run(maxSteps int64) (Time, bool) {
	e.halted = false
	e.canceled = false
	for len(e.heap) > 0 {
		if maxSteps > 0 && e.steps >= maxSteps {
			return e.now, false
		}
		if e.wdFn != nil && e.steps >= e.wdNext {
			e.wdNext = e.steps + e.wdEvery
			if e.wdFn() {
				e.halted = true
				return e.now, false
			}
		}
		if e.cnFn != nil && e.steps >= e.cnNext {
			e.cnNext = e.steps + e.cnEvery
			if e.cnFn() {
				e.canceled = true
				return e.now, false
			}
		}
		ent := e.heap[0]
		e.advanceFrontier(ent.at)
		e.steps++
		// Step may call Wake, which can push or re-sift entries and
		// displace ent from the root; track ent by its heap index (kept
		// current by actorHeap.Swap) rather than assuming it is still at
		// index 0.
		next, done := ent.actor.Step()
		if done {
			if ent.index >= 0 {
				heap.Remove(&e.heap, ent.index)
			}
			continue
		}
		if next < e.now {
			next = e.now
		}
		ent.at = next
		if ent.index >= 0 {
			heap.Fix(&e.heap, ent.index)
		} else {
			heap.Push(&e.heap, ent)
		}
	}
	return e.now, true
}
