// Parallel bound/weave execution.
//
// RunParallel executes the same schedule as Run in epochs of a fixed
// cycle window. Each epoch:
//
//  1. Bound: actors whose next step lies inside the window and that
//     declare (via BoundedActor.Horizon) a horizon strictly beyond it are
//     pulled out of the heap and stepped concurrently on a host worker
//     pool, each up to min(epoch end, horizon). Their steps touch only
//     actor-private state, so any interleaving — including true
//     parallelism — produces the same result as the serial order.
//  2. Weave: every remaining actor is stepped serially in (time, ID)
//     order exactly as Run would, restricted to the window. Weave steps
//     may interact freely: shared resources, Wake, done-then-rearm.
//
// The window is clamped to the next probe boundary, so probes fire at
// epoch starts only, observing exactly the serial prefix of the
// schedule. At the end of each epoch the frontier is folded up to the
// latest step executed in the window (bound or weave), which is the
// serial frontier at that point.
//
// # Horizon contract
//
// An actor implementing BoundedActor promises, when Horizon returns h:
//
//   - Every one of its steps at times strictly before h reads and writes
//     only state no other actor observes, and calls no Engine method
//     (Wake in particular).
//   - No other actor wakes it to a time strictly before h.
//
// The first clause is enforced coarsely: Engine.Wake panics when called
// during a bound phase. The second is enforced exactly: a weave-phase
// Wake targeting an actor that ran ahead in the current epoch is checked
// against the actor's recorded bound-step times — wakes the serial
// engine would have absorbed (rescheduling an already-pending step to
// itself) are absorbed, and wakes that would have rescheduled an
// already-executed step panic deterministically. Returning a horizon at
// or before the actor's next step time opts the actor out of the bound
// phase for that epoch (0 opts out forever); actors that do not
// implement BoundedActor always weave.
//
// # Divergence from Run
//
// For runs that drain, RunParallel is bit-identical to Run: same
// frontier, same step count, same per-actor step sequences, same probe
// sequence, for any worker count and any window. Two knobs behave
// differently only on runs that stop early, and deterministically so:
//
//   - maxSteps is checked per weave step and at epoch boundaries, but a
//     bound phase commits all its steps at once, so a run stopped by the
//     step bound may overshoot maxSteps by up to one epoch's bound work.
//   - The watchdog is polled at epoch boundaries and per weave step, at
//     the same step-count cadence as Run; bound-phase progress is
//     visible to it only at the fold, so a wedged run may be detected up
//     to one epoch later than serially.
//
// Both stay deterministic for a fixed configuration regardless of worker
// count; the differential suites pin the drained case bit-exactly.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
)

// BoundedActor is an Actor that can declare interaction horizons,
// making it eligible for concurrent stepping inside a RunParallel epoch.
type BoundedActor interface {
	Actor
	// Horizon returns the earliest simulated time at or after which the
	// actor may interact with shared simulation state — touch a shared
	// resource (L3 bank, NoC link, DRAM channel, worklist, credit pool),
	// observe another actor's mutations, or call an Engine method. Steps
	// strictly before the horizon must be actor-private.
	//
	// Horizon is dynamic: it is consulted at each epoch's partition on
	// the coordinating goroutine AND again after every bound-phase step,
	// on a pool goroutine. It must therefore read only actor-private
	// state (never the Engine, never shared resources) and be a pure
	// function of that state. Between steps the horizon may shrink (an
	// off-core event approaching) or grow (the event receded after the
	// step); the bound phase tracks it step by step and hands the actor
	// back to the weave the moment its next step is no longer provably
	// private.
	//
	// Return HorizonAlwaysWeave for an actor that can interact on any
	// step (the shared-resource default); return HorizonNever for an
	// actor whose whole remaining lifetime is private. Any value at or
	// before the actor's next step time opts it out of the bound phase
	// for that epoch.
	Horizon() Time
}

// HorizonNever is the Horizon value for an actor that never interacts
// with shared simulation state: it is bound-stepped through every epoch
// it is scheduled in.
const HorizonNever = timeMax

// HorizonAlwaysWeave is the Horizon value for an actor that may touch
// shared simulation state on its very next step, opting it out of every
// bound phase. It is deliberately negative: a computed horizon can be a
// genuine 0 ("private strictly before cycle 0", i.e. nothing), and the
// explicit sentinel keeps always-weave declarations distinguishable from
// a lookahead computation that happened to bottom out. The partition
// treats any horizon at or before the actor's next step time as weave,
// so the two behave identically; the constant exists so intent is
// auditable.
const HorizonAlwaysWeave = Time(-1)

// DefaultEpochWindow is the bound/weave epoch length, in cycles, used
// when RunParallel is given a non-positive window.
const DefaultEpochWindow = Time(8192)

// maxBoundStepsPerEpoch caps one actor's steps inside a single bound
// phase so a non-advancing actor (legal: Step may return its current
// time) cannot spin forever outside the weave loop's budget checks. A
// capped actor requeues and finishes the window in the weave, where
// maxSteps and the watchdog are enforced per step.
const maxBoundStepsPerEpoch = 1 << 16

// BoundSteps returns how many actor steps were executed inside bound
// phases across all RunParallel calls — the concurrency the horizon
// declarations actually bought. It is a subset of Steps and is zero for
// purely serial runs.
func (e *Engine) BoundSteps() int64 { return e.boundTotal }

// RunParallel is Run with epoch-based concurrent stepping: it steps
// actors until no actor is scheduled or maxSteps steps have executed
// (0 means unbounded), returning the final frontier and whether the run
// drained. window is the epoch length in cycles (non-positive selects
// DefaultEpochWindow) and workers the host worker-pool size (values
// below 1 are treated as 1; workers == 1 exercises the full epoch
// machinery without host concurrency). See the package comment and the
// file comment above for the equivalence contract.
func (e *Engine) RunParallel(maxSteps int64, window Time, workers int) (Time, bool) {
	if window <= 0 {
		window = DefaultEpochWindow
	}
	if workers < 1 {
		workers = 1
	}
	e.halted = false
	e.canceled = false
	pool := newBoundPool(workers)
	defer pool.close()
	var bound []*entry
	// boundMax tracks the latest bound-phase step time of the whole run.
	// It folds into the frontier only at return: mid-run, the frontier
	// must keep tracking the weave position — bound steps past it are in
	// the serial schedule's future, and folding them early would inflate
	// the next<now clamp and skip probe replays the serial engine performs.
	boundMax := Time(-1)
	for len(e.heap) > 0 {
		if maxSteps > 0 && e.steps >= maxSteps {
			return e.foldFrontier(boundMax), false
		}
		if e.wdFn != nil && e.steps >= e.wdNext {
			e.wdNext = e.steps + e.wdEvery
			if e.wdFn() {
				e.halted = true
				return e.foldFrontier(boundMax), false
			}
		}
		if e.cnFn != nil && e.steps >= e.cnNext {
			e.cnNext = e.steps + e.cnEvery
			if e.cnFn() {
				e.canceled = true
				return e.foldFrontier(boundMax), false
			}
		}
		// Open the epoch: advance the frontier to the first pending step
		// via the shared advanceFrontier path, which replays every probe
		// boundary the idle gap crossed — a sparse schedule jumping
		// multiple boundaries at once fires one callback per boundary,
		// exactly as Run's next step would. The window is then clamped to
		// the next boundary so no bound step can cross one.
		start := e.heap[0].at
		e.advanceFrontier(start)
		end := start + window
		if e.probeAt < end {
			end = e.probeAt
		}
		e.epoch++

		// Partition: pull out actors with provable headroom. The heap's
		// internal order is deterministic for a fixed schedule, and the
		// bound results do not depend on partition order anyway.
		bound = bound[:0]
		for _, ent := range e.heap {
			if ent.ba == nil || ent.at >= end {
				continue
			}
			if h := ent.ba.Horizon(); h > ent.at {
				ent.boundEnd = end
				ent.safeUntil = h
				if end < h {
					ent.safeUntil = end
				}
				bound = append(bound, ent)
			}
		}
		if len(bound) > 0 {
			for _, ent := range bound {
				heap.Remove(&e.heap, ent.index)
				ent.epoch = e.epoch
				ent.stepTimes = ent.stepTimes[:0]
				ent.boundSteps = 0
				ent.boundDone = false
				ent.panicked = nil
			}
			e.inBound = true
			pool.run(bound)
			e.inBound = false
			// Fold: commit step counts, remember the latest bound step for
			// the end-of-epoch frontier, requeue survivors, and re-raise
			// the lowest-ID panic so a crashing actor fails the run
			// identically for every worker count.
			var repanic any
			repanicID := -1
			for _, ent := range bound {
				e.steps += ent.boundSteps
				e.boundTotal += ent.boundSteps
				if n := len(ent.stepTimes); n > 0 && ent.stepTimes[n-1] > boundMax {
					boundMax = ent.stepTimes[n-1]
				}
				if ent.panicked != nil && (repanicID < 0 || ent.id < repanicID) {
					repanic, repanicID = ent.panicked, ent.id
				}
				if !ent.boundDone {
					heap.Push(&e.heap, ent)
				}
			}
			if repanic != nil {
				panic(repanic)
			}
		}

		// Weave: Run's loop body, restricted to the window. Bound actors
		// that stopped early (cap, or horizon inside the window) requeued
		// above and finish the window here under full serial semantics.
		for len(e.heap) > 0 && e.heap[0].at < end {
			if maxSteps > 0 && e.steps >= maxSteps {
				return e.foldFrontier(boundMax), false
			}
			if e.wdFn != nil && e.steps >= e.wdNext {
				e.wdNext = e.steps + e.wdEvery
				if e.wdFn() {
					e.halted = true
					return e.foldFrontier(boundMax), false
				}
			}
			if e.cnFn != nil && e.steps >= e.cnNext {
				e.cnNext = e.steps + e.cnEvery
				if e.cnFn() {
					e.canceled = true
					return e.foldFrontier(boundMax), false
				}
			}
			ent := e.heap[0]
			// A weave step can hand its actor a fresh private stretch —
			// a worker entering an idle backoff under shared horizons, a
			// drift actor whose window re-opened. If the next pending
			// step is bound-eligible, close the epoch early and let the
			// partition take it instead of burning the headroom serially;
			// the new epoch opens at this exact entry, so the frontier
			// and probe sequence are unchanged. The partition is
			// guaranteed to extract the entry (same h > at test), so the
			// bound phase makes at least one step of progress and the
			// outer loop cannot spin.
			if ent.ba != nil {
				if h := ent.ba.Horizon(); h > ent.at {
					break
				}
			}
			e.advanceFrontier(ent.at)
			e.steps++
			e.steppingID = ent.id
			next, done := ent.actor.Step()
			e.steppingID = -1
			if done {
				if ent.index >= 0 {
					heap.Remove(&e.heap, ent.index)
				}
				continue
			}
			if next < e.now {
				next = e.now
			}
			ent.at = next
			if ent.index >= 0 {
				heap.Fix(&e.heap, ent.index)
			} else {
				heap.Push(&e.heap, ent)
			}
		}
	}
	// The serial frontier at drain is the latest executed step, which may
	// belong to a bound actor that ran past the last weave step.
	// boundMax < end <= probeAt for the epoch that produced it, so no
	// probe fires on the fold.
	return e.foldFrontier(boundMax), true
}

// foldFrontier advances the frontier to the latest bound-phase step of
// the current epoch when that outruns the weave, returning the frontier.
func (e *Engine) foldFrontier(boundMax Time) Time {
	if boundMax > e.now {
		e.now = boundMax
	}
	return e.now
}

// resolveBoundWake reconciles a Wake aimed at an actor that ran ahead in
// the current epoch's bound phase. It reports whether regular Wake
// handling should proceed: false means the wake is absorbed because the
// serial engine would have min-rescheduled an already-executed step to
// its own time (a no-op). It panics when the wake would reschedule the
// actor ahead of a step the bound phase already executed — rewriting
// history the horizon declared untouchable.
func (e *Engine) resolveBoundWake(ent *entry, at Time) bool {
	// First recorded bound step ordered after the waker's (time, ID)
	// position in the serial schedule. stepTimes is nondecreasing, so
	// the predicate is monotone.
	ts := ent.stepTimes
	j := sort.Search(len(ts), func(i int) bool {
		return ts[i] > e.now || (ts[i] == e.now && ent.id > e.steppingID)
	})
	if j == len(ts) {
		// Every bound step precedes the waker; the actor's pending time
		// reflects all of them, so regular handling is serial-exact
		// (including re-arming an actor that retired in the bound phase).
		return true
	}
	if ts[j] <= at {
		return false
	}
	panic(fmt.Sprintf(
		"sim: Wake(%d, %d) at frontier %d would reschedule the actor ahead of its bound-phase step at %d (horizon contract violation)",
		ent.id, int64(at), int64(e.now), int64(ts[j])))
}

// stepBound runs one actor's bound phase: step while the pending time is
// inside the actor's safe window, recording each step's time for wake
// reconciliation. The actor's horizon is re-consulted after every step —
// conservative-lookahead horizons move as the actor's next off-core
// event approaches or recedes — so the safe window shrinks and grows
// step by step, clamped to the epoch end. Runs on a pool goroutine;
// touches only the entry and the actor's private state (which is why
// Horizon must read nothing shared).
func stepBound(ent *entry) {
	defer func() {
		if r := recover(); r != nil {
			ent.panicked = r
		}
	}()
	t := ent.at
	for t < ent.safeUntil && ent.boundSteps < maxBoundStepsPerEpoch {
		ent.boundSteps++
		ent.stepTimes = append(ent.stepTimes, t)
		next, done := ent.actor.Step()
		if done {
			ent.boundDone = true
			return
		}
		// The serial engine would clamp to its frontier, which equals this
		// actor's time whenever it is the one stepping.
		if next < t {
			next = t
		}
		t = next
		// Dynamic horizon: the step may have moved the actor's next
		// interaction point. A shrink below t hands the remaining window
		// back to the weave; a growth extends the private stretch up to
		// the epoch end.
		ent.safeUntil = ent.boundEnd
		if h := ent.ba.Horizon(); h < ent.safeUntil {
			ent.safeUntil = h
		}
	}
	ent.at = t
}

// boundPool fans bound-phase work out to a fixed set of goroutines. With
// one worker it degenerates to inline execution on the coordinator, so
// workers == 1 runs the epoch machinery with zero host concurrency.
type boundPool struct {
	tasks chan *entry
	wg    sync.WaitGroup
}

func newBoundPool(workers int) *boundPool {
	p := &boundPool{}
	if workers > 1 {
		p.tasks = make(chan *entry)
		for i := 0; i < workers; i++ {
			go func() {
				for ent := range p.tasks {
					stepBound(ent)
					p.wg.Done()
				}
			}()
		}
	}
	return p
}

// run executes one epoch's bound set and blocks until every actor's
// phase completes; the WaitGroup join publishes all entry mutations to
// the coordinator.
func (p *boundPool) run(bound []*entry) {
	if p.tasks == nil {
		for _, ent := range bound {
			stepBound(ent)
		}
		return
	}
	p.wg.Add(len(bound))
	for _, ent := range bound {
		p.tasks <- ent
	}
	p.wg.Wait()
}

// close releases the pool goroutines; the pool must not be used after.
func (p *boundPool) close() {
	if p.tasks != nil {
		close(p.tasks)
	}
}
