package sim

import "testing"

// tickActor advances its clock by a fixed stride each step, recording an
// entry in the shared log so tests can interleave probe firings with
// actor steps.
type tickActor struct {
	at     Time
	stride Time
	stop   Time
	log    *[]Time
}

func (a *tickActor) Step() (Time, bool) {
	*a.log = append(*a.log, a.at)
	a.at += a.stride
	return a.at, a.at > a.stop
}

func TestProbeFiresPerBoundary(t *testing.T) {
	e := NewEngine()
	var steps []Time
	var probes []Time
	a := &tickActor{stride: 30, stop: 100, log: &steps}
	id := e.Register(a)
	e.Wake(id, 0)
	e.SetProbe(25, func(at Time) { probes = append(probes, at) })
	e.Run(0)
	// The actor steps at 0, 30, 60, 90; boundaries 25, 50, 75 are each
	// crossed once before the actor at/past them steps.
	want := []Time{25, 50, 75}
	if len(probes) != len(want) {
		t.Fatalf("probes %v, want %v", probes, want)
	}
	for i := range want {
		if probes[i] != want[i] {
			t.Fatalf("probes %v, want %v", probes, want)
		}
	}
}

func TestProbeExactBoundaryOrder(t *testing.T) {
	// An actor scheduled exactly on a boundary steps after the probe: the
	// sample stamped B covers only work strictly before cycle B.
	e := NewEngine()
	var log []string
	a := &tickActor{stride: 25, stop: 25, log: new([]Time)}
	id := e.Register(a)
	e.Wake(id, 25)
	e.SetProbe(25, func(at Time) {
		if at == 25 {
			log = append(log, "probe")
		}
	})
	// Wrap the actor log indirectly: record the step via a closure actor.
	steps := 0
	b := &funcActor{fn: func() (Time, bool) {
		steps++
		log = append(log, "step")
		return 26, true
	}}
	e.entries[id].actor = b
	e.Run(0)
	if len(log) != 2 || log[0] != "probe" || log[1] != "step" {
		t.Fatalf("order %v, want [probe step]", log)
	}
}

// funcActor adapts a closure to the Actor interface.
type funcActor struct{ fn func() (Time, bool) }

func (a *funcActor) Step() (Time, bool) { return a.fn() }

func TestProbeMultiBoundaryJump(t *testing.T) {
	// A frontier jump over several boundaries emits one callback per
	// boundary, in order, keeping the sampling cadence cycle-aligned.
	e := NewEngine()
	var probes []Time
	a := &tickActor{stride: 100, stop: 100, log: new([]Time)}
	id := e.Register(a)
	e.Wake(id, 100)
	e.SetProbe(30, func(at Time) { probes = append(probes, at) })
	e.Run(0)
	want := []Time{30, 60, 90}
	if len(probes) != len(want) {
		t.Fatalf("probes %v, want %v", probes, want)
	}
	for i := range want {
		if probes[i] != want[i] {
			t.Fatalf("probes %v, want %v", probes, want)
		}
	}
}

func TestProbeDisabled(t *testing.T) {
	e := NewEngine()
	fired := false
	e.SetProbe(10, func(Time) { fired = true })
	e.SetProbe(0, nil) // disable again
	var log []Time
	a := &tickActor{stride: 50, stop: 200, log: &log}
	id := e.Register(a)
	e.Wake(id, 0)
	e.Run(0)
	if fired {
		t.Fatal("disabled probe fired")
	}
}

func TestSetProbeMidRun(t *testing.T) {
	// Installing a probe after the frontier has advanced starts at the
	// first boundary strictly after now, not at `every`.
	e := NewEngine()
	var log []Time
	a := &tickActor{stride: 40, stop: 40, log: &log}
	id := e.Register(a)
	e.Wake(id, 40)
	e.Run(0) // frontier now 40
	var probes []Time
	e.SetProbe(25, func(at Time) { probes = append(probes, at) })
	b := &tickActor{stride: 60, stop: 200, log: &log}
	id2 := e.Register(b)
	e.Wake(id2, 60)
	e.Run(0)
	// The second actor steps at 60, 120, 180. Boundary 25 must not fire
	// (it is in the past); every later boundary up to the final frontier
	// fires exactly once, grouped before the step that crosses it.
	want := []Time{50, 75, 100, 125, 150, 175}
	if len(probes) != len(want) {
		t.Fatalf("probes %v, want %v", probes, want)
	}
	for i := range want {
		if probes[i] != want[i] {
			t.Fatalf("probes %v, want %v", probes, want)
		}
	}
}
