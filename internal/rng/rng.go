// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator and the graph generators.
//
// The simulator must be bit-for-bit reproducible across runs and Go
// versions, so it cannot depend on math/rand's unspecified algorithm
// evolution. SplitMix64 seeds Xoshiro256** state; Xoshiro256** generates
// the stream. Both are public-domain algorithms (Blackman & Vigna).
package rng

// Rand is a deterministic xoshiro256** generator. The zero value is not
// valid; construct with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed via SplitMix64, so
// that nearby seeds produce decorrelated streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit value.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Geometric returns a sample from a geometric distribution with success
// probability p, i.e. the number of failures before the first success.
// Used by the graph generators to draw power-law-ish degree tails.
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p >= 1 {
		panic("rng: Geometric requires 0 < p < 1")
	}
	n := 0
	for r.Float64() >= p {
		n++
		if n > 1<<24 { // defensive cap; p is never small enough to hit this
			break
		}
	}
	return n
}
