package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestSeedsDecorrelate(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between adjacent seeds", same)
	}
}

func TestIntnBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		r := New(seed)
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean %v far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		p := r.Perm(50)
		seen := make([]bool, 50)
		for _, v := range p {
			if v < 0 || v >= 50 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(3)
	const p = 0.25
	var sum int
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / n
	want := (1 - p) / p // 3.0
	if mean < want*0.95 || mean > want*1.05 {
		t.Fatalf("geometric mean %v, want ~%v", mean, want)
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(1.5) did not panic")
		}
	}()
	New(1).Geometric(1.5)
}

func TestUint64Distribution(t *testing.T) {
	// Crude bucket uniformity check over the top 3 bits.
	r := New(77)
	var buckets [8]int
	const n = 80000
	for i := 0; i < n; i++ {
		buckets[r.Uint64()>>61]++
	}
	for i, c := range buckets {
		if c < n/8-n/40 || c > n/8+n/40 {
			t.Fatalf("bucket %d count %d far from %d", i, c, n/8)
		}
	}
}
