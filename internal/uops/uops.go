// Package uops defines the micro-op intermediate representation that
// benchmark operators emit and the core timing model consumes.
//
// The simulator does not decode x86; instead each Galois operator (and
// each software worklist operation) emits the loads, stores, atomics,
// branches and compute work it would perform, with the data-dependent
// parts (addresses, branch outcomes) taken from the *actual* algorithm
// execution. This keeps the timing model honest about the properties the
// paper's experiments measure: memory-level parallelism, serialization at
// atomics, and branch mispredictions on data-dependent branches.
//
// Determinism contract: a Trace is plain data — replaying the same op
// sequence through the core model is what makes cycle counts reproducible,
// so emitters must derive any data-dependent content (addresses, branch
// outcomes) from deterministic algorithm state.
package uops

// Kind is the micro-op class.
type Kind uint8

const (
	// Compute represents N single-cycle ALU ops.
	Compute Kind = iota
	// Load is a data-cache read.
	Load
	// Store is a data-cache write.
	Store
	// Atomic is a read-modify-write; under x86-TSO it acts as a full
	// fence (§3.3 of the paper).
	Atomic
	// Branch is a conditional branch whose outcome the kernel computed.
	Branch
)

// UOp is one micro-operation.
type UOp struct {
	Kind Kind
	// Addr is the simulated byte address for memory ops.
	Addr uint64
	// PC identifies the static branch site (Branch) for the TAGE
	// predictor.
	PC uint64
	// N is the op count for Compute (>= 1).
	N uint16
	// Taken is the branch outcome (Branch).
	Taken bool
	// Delinquent marks first accesses to task/node/edge data (the
	// paper's delinquent-load definition, §3.4).
	Delinquent bool
	// DepLoad marks a load whose address depends on the value returned
	// by the most recent preceding load (the A[B[i]] pattern); it cannot
	// issue until that load completes.
	DepLoad bool
	// DepBranch marks a branch whose condition depends on the most
	// recent preceding load.
	DepBranch bool
}

// Trace is a reusable micro-op buffer. Operators append into it; the core
// drains it.
type Trace struct {
	Ops []UOp
}

// Reset empties the trace, retaining capacity.
func (t *Trace) Reset() { t.Ops = t.Ops[:0] }

// Compute appends n ALU ops.
func (t *Trace) Compute(n int) {
	for n > 0 {
		chunk := n
		if chunk > 1<<15 {
			chunk = 1 << 15
		}
		t.Ops = append(t.Ops, UOp{Kind: Compute, N: uint16(chunk)})
		n -= chunk
	}
}

// Load appends a demand load.
func (t *Trace) Load(addr uint64, delinquent, depLoad bool) {
	t.Ops = append(t.Ops, UOp{Kind: Load, Addr: addr, Delinquent: delinquent, DepLoad: depLoad})
}

// LoadPC appends a demand load tagged with its static load site, which
// PC-indexed hardware prefetchers (stride, IMP) train on.
func (t *Trace) LoadPC(pc, addr uint64, delinquent, depLoad bool) {
	t.Ops = append(t.Ops, UOp{Kind: Load, PC: pc, Addr: addr, Delinquent: delinquent, DepLoad: depLoad})
}

// Store appends a demand store.
func (t *Trace) Store(addr uint64) {
	t.Ops = append(t.Ops, UOp{Kind: Store, Addr: addr})
}

// Atomic appends a read-modify-write.
func (t *Trace) Atomic(addr uint64) {
	t.Ops = append(t.Ops, UOp{Kind: Atomic, Addr: addr})
}

// Branch appends a conditional branch with its computed outcome.
func (t *Trace) Branch(pc uint64, taken, depLoad bool) {
	t.Ops = append(t.Ops, UOp{Kind: Branch, PC: pc, Taken: taken, DepBranch: depLoad})
}

// Instrs returns the instruction count the trace represents.
func (t *Trace) Instrs() int64 {
	var n int64
	for i := range t.Ops {
		if t.Ops[i].Kind == Compute {
			n += int64(t.Ops[i].N)
		} else {
			n++
		}
	}
	return n
}
