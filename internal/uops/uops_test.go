package uops

import "testing"

func TestTraceBuilders(t *testing.T) {
	var tr Trace
	tr.Compute(3)
	tr.Load(0x100, true, false)
	tr.LoadPC(0x42, 0x200, false, true)
	tr.Store(0x300)
	tr.Atomic(0x400)
	tr.Branch(0x7, true, true)
	if len(tr.Ops) != 6 {
		t.Fatalf("ops %d", len(tr.Ops))
	}
	if tr.Ops[0].Kind != Compute || tr.Ops[0].N != 3 {
		t.Fatalf("compute op %+v", tr.Ops[0])
	}
	if !tr.Ops[1].Delinquent || tr.Ops[1].DepLoad {
		t.Fatalf("load op %+v", tr.Ops[1])
	}
	if tr.Ops[2].PC != 0x42 || !tr.Ops[2].DepLoad {
		t.Fatalf("loadpc op %+v", tr.Ops[2])
	}
	if tr.Ops[5].Kind != Branch || !tr.Ops[5].Taken || !tr.Ops[5].DepBranch {
		t.Fatalf("branch op %+v", tr.Ops[5])
	}
}

func TestInstrs(t *testing.T) {
	var tr Trace
	tr.Compute(10)
	tr.Load(1, false, false)
	tr.Branch(2, false, false)
	if got := tr.Instrs(); got != 12 {
		t.Fatalf("instrs %d, want 12", got)
	}
}

func TestComputeChunking(t *testing.T) {
	var tr Trace
	tr.Compute(100000) // beyond one uop's uint16 capacity
	var total int64
	for _, op := range tr.Ops {
		if op.Kind != Compute {
			t.Fatal("non-compute op emitted")
		}
		total += int64(op.N)
	}
	if total != 100000 {
		t.Fatalf("chunked total %d", total)
	}
}

func TestReset(t *testing.T) {
	var tr Trace
	tr.Compute(1)
	tr.Reset()
	if len(tr.Ops) != 0 {
		t.Fatal("reset kept ops")
	}
	if cap(tr.Ops) == 0 {
		t.Fatal("reset dropped capacity")
	}
}
