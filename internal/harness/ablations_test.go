package harness

import "testing"

// TestAblations runs the full ablation suite at a reduced thread count
// and sanity-checks the headline effects.
func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations take ~20s")
	}
	f := QuickFigOptions()
	f.Threads = 8
	out, err := Ablations(f)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + out)
}

func TestAblationSocketsHelps(t *testing.T) {
	f := QuickFigOptions()
	f.Threads = 8
	tb, err := AblationSockets(f)
	if err != nil {
		t.Fatal(err)
	}
	// 8-way sharding must beat a single lock on SSSP at 8 threads.
	if parseF(t, tb.Rows[0][3]) <= 1.0 {
		t.Fatalf("sharding did not help: %v", tb.Rows[0])
	}
}

func TestAblationSharedEnginesTradeoff(t *testing.T) {
	f := QuickFigOptions()
	f.Threads = 8
	tb, err := AblationSharedEngines(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
}
