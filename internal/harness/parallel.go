package harness

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"minnow/internal/kernels"
	"minnow/internal/stats"
)

// Job names one simulated configuration for the parallel experiment
// runner: a benchmark from the kernel registry plus its run options.
type Job struct {
	Bench string
	Opts  Options
}

// JobResult pairs a finished job with its run or error, in the order the
// jobs were submitted.
type JobResult struct {
	Job Job
	Run *stats.Run
	Err error
}

// Workers resolves a -jobs flag value: n<=0 means GOMAXPROCS (the number
// of OS threads the runtime will actually schedule in parallel).
func Workers(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// RunJobs executes the jobs across a worker pool of the given width
// (0 = GOMAXPROCS) and returns results in submission order, so sweep
// output is identical for every worker count. Each simulation remains a
// single goroutine with its own address space, memory system, and RNG
// streams — parallelism is only across independent configurations, and
// per-run determinism is untouched. workers=1 degenerates to today's
// serial loop.
func RunJobs(jobs []Job, workers int) []JobResult {
	workers = Workers(workers)
	results := make([]JobResult, len(jobs))
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, j := range jobs {
			results[i] = runJob(j)
		}
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runJob(jobs[i])
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runJob executes one job, converting a panicking simulation into a
// per-job error (with the stack attached) instead of killing the whole
// sweep: one wedged configuration must not take down its worker and
// silently strand every job behind it.
func runJob(j Job) (res JobResult) {
	res.Job = j
	defer func() {
		if r := recover(); r != nil {
			res.Run = nil
			res.Err = fmt.Errorf("harness: %s/%s panicked: %v\n%s",
				j.Bench, j.Opts.Scheduler, r, debug.Stack())
		}
	}()
	spec, err := kernels.SpecByName(j.Bench)
	if err != nil {
		res.Err = err
		return res
	}
	res.Run, res.Err = Run(spec, j.Opts)
	return res
}

// Mismatch records one summary field that differed between two runs of
// the same configuration.
type Mismatch struct {
	Field string
	A, B  string
}

func (m Mismatch) String() string { return fmt.Sprintf("%s: %s != %s", m.Field, m.A, m.B) }

// DeterminismReport is the outcome of running one configuration twice.
type DeterminismReport struct {
	Job        Job
	Mismatches []Mismatch
	Hash       string // stats fingerprint of the first run
}

// OK reports whether the two runs were identical.
func (r DeterminismReport) OK() bool { return len(r.Mismatches) == 0 }

// VerifyDeterminism executes every job twice (all repeats fan out over
// the same worker pool) and compares wall cycles, simulation step counts,
// and a hash over the complete per-core/cache/engine statistics between
// the pairs. It turns the sim package's "same configuration and seed,
// same cycle counts" doc-comment guarantee into an executable check. A
// non-nil error means a run failed outright; mismatches are reported per
// job, not as errors.
func VerifyDeterminism(jobs []Job, workers int) ([]DeterminismReport, error) {
	doubled := make([]Job, 0, 2*len(jobs))
	for _, j := range jobs {
		doubled = append(doubled, j, j)
	}
	results := RunJobs(doubled, workers)
	reports := make([]DeterminismReport, len(jobs))
	for i := range jobs {
		a, b := results[2*i], results[2*i+1]
		if a.Err != nil {
			return nil, fmt.Errorf("harness: determinism run 1 of %s/%s: %w", a.Job.Bench, a.Job.Opts.Scheduler, a.Err)
		}
		if b.Err != nil {
			return nil, fmt.Errorf("harness: determinism run 2 of %s/%s: %w", b.Job.Bench, b.Job.Opts.Scheduler, b.Err)
		}
		reports[i] = compareRuns(jobs[i], a.Run, b.Run)
	}
	return reports, nil
}

// compareRuns diffs the deterministic summaries of two runs of one job.
func compareRuns(j Job, a, b *stats.Run) DeterminismReport {
	sa, sb := a.Summary(), b.Summary()
	rep := DeterminismReport{Job: j, Hash: sa.Hash()}
	diff := func(field string, va, vb any) {
		if va != vb {
			rep.Mismatches = append(rep.Mismatches, Mismatch{
				Field: field,
				A:     fmt.Sprintf("%v", va),
				B:     fmt.Sprintf("%v", vb),
			})
		}
	}
	diff("wall_cycles", sa.WallCycles, sb.WallCycles)
	diff("sim_steps", sa.SimSteps, sb.SimSteps)
	diff("work_items", sa.WorkItems, sb.WorkItems)
	if ha, hb := sa.Hash(), sb.Hash(); ha != hb {
		rep.Mismatches = append(rep.Mismatches, Mismatch{Field: "stats_hash", A: ha, B: hb})
	}
	return rep
}
