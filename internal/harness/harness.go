package harness

import (
	"errors"
	"fmt"
	"strings"

	"minnow/internal/arrival"
	"minnow/internal/core"
	"minnow/internal/cpu"
	"minnow/internal/fault"
	"minnow/internal/galois"
	"minnow/internal/graph"
	"minnow/internal/graphmat"
	"minnow/internal/kernels"
	"minnow/internal/mem"
	"minnow/internal/prefetch"
	"minnow/internal/prof"
	"minnow/internal/sim"
	"minnow/internal/stats"
	"minnow/internal/trace"
	"minnow/internal/worklist"
)

// ErrCanceled reports that a run was abandoned by the Options.Cancel
// hook. Errors returned by Run wrap it, so hosts distinguish
// cancellation from real failures with errors.Is.
var ErrCanceled = errors.New("run canceled")

// Options configures one simulated run.
type Options struct {
	Threads int
	Scale   int    // input scale multiplier (1 = laptop defaults)
	Seed    uint64 // graph generator seed

	// Scheduler selects the worklist policy: "obim", "fifo", "lifo",
	// "strictpq", or "minnow".
	Scheduler string
	// LgInterval overrides the OBIM / Minnow bucket interval (log2) when
	// LgIntervalSet is true; otherwise each kernel's tuned default is
	// used.
	LgInterval    uint
	LgIntervalSet bool
	Sockets       int // OBIM / Minnow global-worklist shards (0 = auto)

	// Minnow engine settings (Scheduler == "minnow").
	Prefetch bool // worklist-directed prefetching
	Credits  int  // prefetch credits (0 = default 32)
	// CustomPrefetch overrides the kernel's prefetch program (the §5.3
	// "users can write a custom prefetch function" hook).
	CustomPrefetch core.PrefetchProgram
	// EngineSharing is how many cores share one Minnow engine (§4's
	// resource-sharing variant; 0/1 = dedicated engines).
	EngineSharing int
	// EngineLocalQ / EngineLoadBuf / EngineSpillBatch override the §5.1
	// structure sizes for the ablation studies (0 = defaults).
	EngineLocalQ, EngineLoadBuf, EngineSpillBatch int

	// HWPrefetcher attaches a baseline prefetcher to every core: "",
	// "stride", or "imp".
	HWPrefetcher string

	SplitThreshold int32 // task splitting (0 = off)
	WorkBudget     int64 // operator-application timeout (0 = none)
	Serial         bool  // serial baseline: elide atomics

	// CacheScale divides all cache capacities so scaled-down inputs
	// remain DRAM-resident (0 = default 16; 1 = paper-size caches).
	CacheScale  int
	MemChannels int // DRAM channels (0 = default 12)

	CoreCfg *cpu.Config // nil = Table-3 defaults

	SkipVerify bool // skip result verification (sweeps that time out)

	// MaxSteps bounds total simulation actor steps as a liveness guard
	// (0 = a large default).
	MaxSteps int64

	// TraceEvents, when positive, records the last N Minnow engine
	// events into Run.Trace (Scheduler "minnow" only).
	TraceEvents int

	// Faults, when non-nil, arms the seeded fault-injection plan: engine
	// stalls and offline events, NoC delay spikes, DRAM retries, spill
	// retries with bounded backoff, and credit-loss events. nil (the
	// default) leaves every fault hook uninstalled and the run
	// byte-identical to a build without the fault layer.
	Faults *fault.Plan
	// Arrivals, when non-nil, arms the open-loop arrival plan: tasks are
	// injected into the live worklists at seeded, pre-scheduled cycles
	// and their queue-wait and sojourn latencies are reported per arrival
	// class in Run.Latency. nil (the default) leaves the run closed-loop
	// and byte-identical to a build without the arrival layer. Only
	// kernels with re-entrant operators accept arrivals (TC and BC do
	// not; Run rejects the combination).
	Arrivals *arrival.Plan
	// Invariants enables the runtime invariant checker: post-run task
	// conservation, credit-pool accounting, cache/directory sanity, and
	// the no-progress watchdog arm of the liveness guard.
	Invariants bool
	// MaxCycles bounds simulated wall-clock cycles per run; the watchdog
	// halts the run with a diagnostic snapshot when the frontier passes
	// it (0 = a large default).
	MaxCycles int64

	// MetricsEvery, when positive, samples the time-series metrics
	// registry every MetricsEvery simulated cycles into Run.Intervals.
	MetricsEvery int64
	// Timeline, when true, records a full-system event timeline into
	// Run.Timeline (render with Timeline.Perfetto). Off by default; like
	// MetricsEvery it observes only and never perturbs the simulation.
	Timeline bool
	// Profile, when true, attaches the top-down cycle-attribution
	// profiler to every core and fills Run.Profile. Off by default; like
	// the other observability attachments it observes only and never
	// perturbs the simulation.
	Profile bool
	// OnSample, when non-nil (requires MetricsEvery > 0), is called at
	// each crossed metrics-sample boundary with the boundary's simulated
	// cycle and the registry's Prometheus text exposition — the live run
	// inspector's feed. The callback must treat the run as read-only.
	OnSample func(cycles int64, metrics string)
	// Cancel, when non-nil, is a host-driven cooperative cancellation
	// hook polled on the watchdog cadence (every watchdogEvery steps).
	// Returning true abandons the run: Run returns an error wrapping
	// ErrCanceled and no statistics. The hook must be read-only and is
	// a host-only knob — like OnSample it never perturbs a run that
	// completes (the cancel-inert test pins byte-identical summaries
	// with a never-firing hook installed).
	Cancel func() bool

	// IntraJobs selects the simulation kernel's execution mode: 0 (the
	// default) runs the classic serial engine; n >= 1 runs the epoch-based
	// bound/weave engine (sim.Engine.RunParallel) with n host workers
	// stepping provably independent actors concurrently inside each
	// epoch. IntraJobs = 1 exercises the full epoch machinery without
	// host concurrency. Output is byte-identical to serial mode for any
	// value — the equivalence suite pins this. Splits the host-thread
	// budget with the run-level -jobs fan-out; see SplitBudget.
	IntraJobs int
	// EpochWindow is the bound/weave epoch length in cycles when
	// IntraJobs >= 1 (0 = sim.DefaultEpochWindow). Any value produces
	// identical output; it only trades partition overhead against
	// bound-phase batch size.
	EpochWindow int64
	// SharedHorizons turns on conservative-lookahead horizons for
	// shared-machine workers (galois.Config.SharedHorizons): idle
	// backoffs become private steps that RunParallel can bound-step
	// concurrently, so a single big run parallelizes instead of only
	// RunRate's isolated copies. It changes the step schedule (idle
	// waits split in two), so summaries are comparable only among runs
	// with the same setting; within a setting, output stays byte-identical
	// across IntraJobs values — the shared-horizon equivalence suite
	// pins it.
	SharedHorizons bool
}

// withDefaults fills zero values.
func (o Options) withDefaults() Options {
	if o.Threads == 0 {
		o.Threads = 8
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Scheduler == "" {
		o.Scheduler = "obim"
	}
	if o.Sockets == 0 {
		o.Sockets = (o.Threads + 7) / 8 // §6.2.1: 8 cores per socket
	}
	if o.Credits == 0 {
		o.Credits = 32
	}
	if o.CacheScale == 0 {
		o.CacheScale = 16
	}
	if o.MemChannels == 0 {
		o.MemChannels = 12
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 2_000_000_000
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 1 << 40
	}
	return o
}

// Run executes one benchmark under the given options and returns its
// statistics. The result is verified against the kernel's reference
// implementation unless SkipVerify is set or the run timed out.
func Run(spec kernels.Spec, o Options) (*stats.Run, error) {
	o = o.withDefaults()

	as := graph.NewAddrSpace()
	kern := spec.Build(o.Scale, o.Seed, as, o.Threads)
	if !o.LgIntervalSet {
		o.LgInterval = kern.DefaultLgInterval()
	}

	arr, err := buildArrivals(spec, kern, o)
	if err != nil {
		return nil, err
	}

	msys := buildMem(o)
	cores := buildCores(o, msys)

	// Top-down profiler: attaching per-core collectors is the only
	// profiling hook — the cpu model mirrors every attributed cycle into
	// the collector, and nothing reads it until after the run drains.
	var pr *prof.Profile
	if o.Profile {
		pr = prof.New(spec.Name, o.Threads)
		pr.PCLabel = kernels.SiteLabel
		for i, c := range cores {
			c.Prof = pr.Core(i)
		}
	}

	// Fault injection: the injector and its hooks exist only when a plan
	// is armed, and each hook is installed only when its clause is live,
	// so disabled clauses draw nothing from the RNG streams and a nil
	// plan leaves the run bit-identical to a fault-free build.
	var inj *fault.Injector
	if o.Faults != nil {
		inj = fault.NewInjector(o.Faults)
		if o.Faults.NoCDelay.P > 0 {
			msys.Mesh.FaultDelay = inj.NoCDelay
		}
		if o.Faults.DRAMRetry.P > 0 {
			msys.DRAM.FaultRetry = inj.DRAMRetry
		}
	}

	// Scheduler.
	var sched galois.Scheduler
	var engines []*core.Engine
	var gwl *core.GlobalWL
	switch o.Scheduler {
	case "minnow":
		gwl = core.NewGlobalWL(as, o.Threads, o.Sockets)
		ecfg := core.DefaultConfig()
		ecfg.LgInterval = o.LgInterval
		ecfg.Credits = o.Credits
		ecfg.Prefetch = o.Prefetch
		if o.EngineLocalQ > 0 {
			ecfg.LocalQ = o.EngineLocalQ
		}
		if o.EngineLoadBuf > 0 {
			ecfg.LoadBuf = o.EngineLoadBuf
		}
		if o.EngineSpillBatch > 0 {
			ecfg.SpillBatch = o.EngineSpillBatch
		}
		if o.Prefetch {
			ecfg.Program = kern.PrefetchProgram()
			if o.CustomPrefetch != nil {
				ecfg.Program = o.CustomPrefetch
			}
		}
		share := o.EngineSharing
		if share < 1 {
			share = 1
		}
		for lo := 0; lo < o.Threads; lo += share {
			hi := lo + share
			if hi > o.Threads {
				hi = o.Threads
			}
			group := make([]int, 0, hi-lo)
			for c := lo; c < hi; c++ {
				group = append(group, c)
			}
			engines = append(engines, core.NewSharedEngine(group, ecfg, msys, gwl))
		}
		if o.TraceEvents > 0 {
			buf := trace.New(o.TraceEvents)
			for _, e := range engines {
				e.Trace = buf
			}
		}
		if inj != nil {
			for i, e := range engines {
				e.Inj = inj
				e.FaultID = i
			}
		}
		ms := core.NewMinnowScheduler(engines, o.Threads)
		if inj != nil && o.Faults.OfflineAt > 0 {
			// Engine-offline plans get a software OBIM fallback the cores
			// degrade to when their engine dies mid-run. Allocated here
			// (not lazily) so AddrSpace layout is fixed at setup.
			ms.EnableFailover(inj, gwl, worklist.NewOBIM(as, o.Threads, o.Sockets, o.LgInterval))
		}
		msys.OnCredit = func(c int, used bool) { ms.EngineFor(c).CreditReturn(used) }
		sched = ms
	case "obim":
		sched = &galois.SWScheduler{WL: worklist.NewOBIM(as, o.Threads, o.Sockets, o.LgInterval)}
	case "fifo":
		sched = &galois.SWScheduler{WL: worklist.NewFIFO(as, o.Threads)}
	case "lifo":
		sched = &galois.SWScheduler{WL: worklist.NewLIFO(as, o.Threads)}
	case "strictpq":
		sched = &galois.SWScheduler{WL: worklist.NewStrictPQ(as)}
	default:
		return nil, fmt.Errorf("harness: unknown scheduler %q", o.Scheduler)
	}
	var swWL worklist.Worklist
	if sw, ok := sched.(*galois.SWScheduler); ok {
		swWL = sw.WL
	} else if ms, ok := sched.(*core.MinnowScheduler); ok {
		swWL = ms.Fallback() // nil unless failover is armed
	}

	attachHWPrefetchers(o, cores, msys, kern.Graph())

	cfg := galois.Config{
		Threads:        o.Threads,
		SplitThreshold: o.SplitThreshold,
		WorkBudget:     o.WorkBudget,
		Serial:         o.Serial,
		SharedHorizons: o.SharedHorizons,
	}
	runner := galois.NewRunner(cfg, cores, sched, kern, kern.Graph().Degree)
	if arr != nil {
		arr.runner = runner
		arr.rec = galois.NewLatencyRecorder(len(o.Arrivals.Classes))
		runner.SetLatency(arr.rec)
	}

	ob := buildObserver(o, cores, runner.Workers(), engines, gwl, swWL, msys, inj, arr)

	// Simulation: workers and engines are actors.
	eng := sim.NewEngine()
	ob.install(eng, engines, gwl, swWL, msys, inj, arr)
	workerIDs := make([]int, 0, len(runner.Workers()))
	for _, w := range runner.Workers() {
		id := eng.Register(w)
		eng.Wake(id, 0)
		workerIDs = append(workerIDs, id)
	}
	for _, e := range engines {
		id := eng.Register(e)
		e.SetWake(func(at sim.Time) { eng.Wake(id, at) })
	}
	if arr != nil && len(arr.events) > 0 {
		// Registered after workers and engines so that at a shared
		// instant the injection step runs last — an arrival never
		// preempts same-cycle machine work. Wakes from its weave step
		// re-arm retired workers per the engine's wake-during-step
		// contract.
		arr.wakeWorkers = func(at sim.Time) {
			for _, id := range workerIDs {
				eng.Wake(id, at)
			}
		}
		aid := eng.Register(arr)
		eng.Wake(aid, sim.Time(arr.events[0].At))
	}

	runner.Seed(kern.InitialTasks())

	wd := installWatchdog(eng, o, inj, runner, arr)

	drained := runEngine(eng, o)
	if eng.Canceled() {
		return nil, fmt.Errorf("harness: %s/%s: %w at cycle %d after %d steps",
			spec.Name, o.Scheduler, ErrCanceled, eng.Now(), eng.Steps())
	}
	if eng.Halted() {
		snap := collectSnapshot(wd.reason, eng, runner, engines, gwl, swWL, msys, inj)
		return nil, fmt.Errorf("harness: %s/%s halted by watchdog: %s\n%s",
			spec.Name, o.Scheduler, wd.reason, snap)
	}
	if !drained && !runner.TimedOut() {
		return nil, fmt.Errorf("harness: %s/%s exceeded %d simulation steps (livelock?)",
			spec.Name, o.Scheduler, o.MaxSteps)
	}

	if o.Invariants {
		if msgs := checkInvariants(o, drained, runner, engines, gwl, swWL, msys, arr); len(msgs) > 0 {
			return nil, fmt.Errorf("harness: %s/%s invariant violations:\n  %s",
				spec.Name, o.Scheduler, strings.Join(msgs, "\n  "))
		}
	}

	run := collect(spec.Name, o, cores, engines, msys, runner)
	if inj != nil {
		fs := inj.Stats
		run.Faults = &fs
	}
	if arr != nil {
		run.Latency = arr.latencyStats()
	}
	run.SimSteps = eng.Steps()
	run.BoundSteps = eng.BoundSteps()
	if len(engines) > 0 {
		run.Trace = engines[0].Trace
	}
	if ob.reg != nil {
		// Close out the partial last interval so tail activity is not
		// silently dropped (the boundary probe only fires on crossings).
		ob.reg.Flush(sim.Time(run.WallCycles))
		run.Intervals = ob.reg
	}
	run.Timeline = ob.tl
	run.Profile = pr

	if !o.SkipVerify && !run.TimedOut {
		if err := kern.Verify(); err != nil {
			return nil, fmt.Errorf("harness: %s/%s verification failed: %w", spec.Name, o.Scheduler, err)
		}
	}
	return run, nil
}

// runEngine drains the simulation with the execution mode Options
// selects: the serial engine, or the epoch-based bound/weave engine with
// IntraJobs host workers. The two are byte-identical on every drained
// run (the differential equivalence suite pins it), so everything after
// this call is mode-agnostic.
func runEngine(eng *sim.Engine, o Options) bool {
	if o.IntraJobs <= 0 {
		_, drained := eng.Run(o.MaxSteps)
		return drained
	}
	_, drained := eng.RunParallel(o.MaxSteps, sim.Time(o.EpochWindow), o.IntraJobs)
	return drained
}

// collect assembles the stats.Run from all components.
func collect(name string, o Options, cores []*cpu.Core, engines []*core.Engine, msys *mem.System, runner *galois.Runner) *stats.Run {
	run := &stats.Run{
		Name:      name,
		Threads:   o.Threads,
		TimedOut:  runner.TimedOut(),
		WorkItems: runner.Applied(),
		DRAMReads: msys.DRAMReads,
		InvMsgs:   msys.InvMsgs,
		DRAMStall: msys.DRAM.StallCyc,
		NoCStall:  msys.Mesh.StallCyc,

		WastePFEvict:     msys.WastePFEvict,
		WasteDemandEvict: msys.WasteDemandEvict,
		WasteInval:       msys.WasteInval,
		L1Shielded:       msys.L1ShieldedHits,
	}
	for _, c := range cores {
		run.Cores = append(run.Cores, c.Stat)
		if c.Now() > sim.Time(run.WallCycles) {
			run.WallCycles = int64(c.Now())
		}
	}
	l2 := msys.L2Counters()
	run.L2 = stats.CacheStats{
		Accesses:      msys.DemandL2Accesses,
		Misses:        msys.DemandL2Misses,
		Evictions:     l2.Evictions,
		Writebacks:    l2.Writebacks,
		PrefetchFills: l2.PrefetchFills,
		PrefetchUsed:  l2.PrefetchUsed,
		PrefetchWaste: l2.PrefetchWaste,
	}
	l3 := msys.L3Counters()
	run.L3 = stats.CacheStats{
		Accesses:   l3.Accesses,
		Misses:     l3.Misses,
		Evictions:  l3.Evictions,
		Writebacks: l3.Writebacks,
	}
	if msys.DemandCount > 0 {
		run.AvgLoadLat = float64(msys.DemandLatencySum) / float64(msys.DemandCount)
	}
	run.DirtyRemote = msys.DirtyRemote
	run.LatByLevel = msys.LatByLevel
	run.CntByLevel = msys.CntByLevel
	for _, e := range engines {
		e.Stat.ClockEnd = int64(e.Clock())
		run.Engines = append(run.Engines, e.Stat)
	}
	return run
}

func buildMem(o Options) *mem.System {
	mcfg := mem.DefaultConfig(o.Threads)
	if o.CacheScale > 1 {
		mcfg.ScaleCaches(o.CacheScale)
	}
	mcfg.DRAM.Channels = o.MemChannels
	return mem.NewSystem(mcfg)
}

func buildCores(o Options, msys *mem.System) []*cpu.Core {
	ccfg := cpu.DefaultConfig()
	if o.CoreCfg != nil {
		ccfg = *o.CoreCfg
	}
	cores := make([]*cpu.Core, o.Threads)
	for i := range cores {
		cores[i] = cpu.New(i, ccfg, msys)
	}
	return cores
}

// attachHWPrefetchers wires stride/IMP baselines to the cores.
func attachHWPrefetchers(o Options, cores []*cpu.Core, msys *mem.System, g *graph.Graph) {
	switch o.HWPrefetcher {
	case "stride":
		for i, c := range cores {
			c.Prefetcher = prefetch.NewStride(i, msys, 4)
		}
	case "imp":
		resolve := csrResolve(g)
		for i, c := range cores {
			c.Prefetcher = prefetch.NewIMP(i, msys, 4, resolve)
		}
	}
}

// csrResolve maps an edge-record address to the destination node address —
// the A[B[i]] semantics IMP reads out of the cached index value.
func csrResolve(g *graph.Graph) func(uint64) (uint64, bool) {
	base := g.EdgeAddr(0)
	limit := base + uint64(g.NumEdges())*graph.EdgeBytes
	return func(addr uint64) (uint64, bool) {
		if addr < base || addr >= limit {
			return 0, false
		}
		idx := int32((addr - base) / graph.EdgeBytes)
		return g.NodeAddr(g.Dests[idx]), true
	}
}

// RunGraphMat executes a workload under the GraphMat-like BSP baseline and
// returns its result (wall cycles for Fig. 2/3 normalization).
func RunGraphMat(bench string, o Options) (graphmat.Result, error) {
	o = o.withDefaults()
	as := graph.NewAddrSpace()
	spec, err := kernels.SpecByName(bench)
	if err != nil {
		return graphmat.Result{}, err
	}
	kern := spec.Build(o.Scale, o.Seed, as, o.Threads)
	g := kern.Graph()
	msys := buildMem(o)
	cores := buildCores(o, msys)
	// GraphMat's sequential frontier sweeps benefit from its tuned
	// streaming: attach the stride prefetcher (standing in for its
	// software prefetch + the host's L2 streamer).
	for i, c := range cores {
		c.Prefetcher = prefetch.NewStride(i, msys, 4)
	}

	var prog graphmat.Program
	switch bench {
	case "SSSP":
		prog = graphmat.NewSSSP(g, 0)
	case "BFS":
		prog = graphmat.NewBFS(g, 0)
	case "G500":
		n, _ := g.MaxDegreeNode()
		prog = graphmat.NewBFS(g, n)
	case "CC":
		prog = graphmat.NewCC(g)
	case "PR":
		prog = graphmat.NewPR(g, kernels.PRDamping, 1e-3)
	default:
		return graphmat.Result{}, fmt.Errorf("harness: no GraphMat program for %q", bench)
	}
	r := graphmat.Runner{G: g, Cores: cores, Prog: prog, Budget: o.WorkBudget}
	res := r.Run()
	if !o.SkipVerify && !res.TimedOut {
		if err := prog.Verify(); err != nil {
			return res, fmt.Errorf("harness: graphmat %s verification failed: %w", bench, err)
		}
	}
	return res, nil
}

// RunGMatStar executes the GMat* bucketed delta-stepping SSSP (§3.1).
func RunGMatStar(o Options, lgInterval uint) (graphmat.Result, error) {
	o = o.withDefaults()
	as := graph.NewAddrSpace()
	spec, err := kernels.SpecByName("SSSP")
	if err != nil {
		return graphmat.Result{}, err
	}
	kern := spec.Build(o.Scale, o.Seed, as, o.Threads)
	g := kern.Graph()
	msys := buildMem(o)
	cores := buildCores(o, msys)
	for i, c := range cores {
		c.Prefetcher = prefetch.NewStride(i, msys, 4)
	}
	k := graphmat.NewGMatStar(g, 0, lgInterval)
	res := k.Run(cores, o.WorkBudget)
	if !o.SkipVerify && !res.TimedOut {
		if err := k.Verify(); err != nil {
			return res, fmt.Errorf("harness: gmat* verification failed: %w", err)
		}
	}
	return res, nil
}
