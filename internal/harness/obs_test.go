package harness

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"minnow/internal/kernels"
	"minnow/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// obsOpts is the reference configuration the observability tests pin:
// small, Minnow with prefetching (so every track and column is live).
func obsOpts() Options {
	o := small(2)
	o.Scheduler = "minnow"
	o.Prefetch = true
	return o
}

func TestObservabilityInvisible(t *testing.T) {
	// The load-bearing contract: turning on the timeline and the metrics
	// registry must not change ANY deterministic output — same summary
	// hash, same wall cycles, same event-loop step count.
	spec, err := kernels.SpecByName("SSSP")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(spec, obsOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := obsOpts()
	o.Timeline = true
	o.MetricsEvery = 10_000
	observed, err := Run(spec, o)
	if err != nil {
		t.Fatal(err)
	}
	if observed.WallCycles != plain.WallCycles {
		t.Fatalf("wall cycles %d with obs, %d without", observed.WallCycles, plain.WallCycles)
	}
	if observed.SimSteps != plain.SimSteps {
		t.Fatalf("sim steps %d with obs, %d without", observed.SimSteps, plain.SimSteps)
	}
	if a, b := observed.Summary().Hash(), plain.Summary().Hash(); a != b {
		t.Fatalf("summary hash changed with observability on:\n  with    %s\n  without %s", a, b)
	}
	if observed.Timeline.Len() == 0 {
		t.Fatal("timeline collected no events")
	}
	if observed.Intervals.Len() == 0 {
		t.Fatal("registry collected no rows")
	}
}

func TestObservabilityStableAcrossJobs(t *testing.T) {
	// The timeline and interval CSV are per-run private state; running the
	// same configuration through worker pools of different widths must
	// yield byte-identical artifacts.
	o := obsOpts()
	o.Timeline = true
	o.MetricsEvery = 10_000
	jobs := []Job{
		{Bench: "SSSP", Opts: o},
		{Bench: "CC", Opts: o},
		{Bench: "SSSP", Opts: o},
	}
	serial := RunJobs(jobs, 1)
	wide := RunJobs(jobs, 3)
	for i := range jobs {
		if serial[i].Err != nil || wide[i].Err != nil {
			t.Fatalf("job %d: %v / %v", i, serial[i].Err, wide[i].Err)
		}
		a := serial[i].Run.Timeline.Perfetto()
		b := wide[i].Run.Timeline.Perfetto()
		if !bytes.Equal(a, b) {
			t.Fatalf("job %d timeline differs between -jobs 1 and -jobs 3", i)
		}
		if serial[i].Run.Intervals.CSV() != wide[i].Run.Intervals.CSV() {
			t.Fatalf("job %d interval CSV differs between -jobs 1 and -jobs 3", i)
		}
	}
}

func TestTimelineGolden(t *testing.T) {
	// Golden-file pin: the Perfetto export for a fixed tiny configuration
	// is valid JSON and byte-stable across refactors. Regenerate with
	// `go test ./internal/harness -run TimelineGolden -update` and eyeball
	// the diff (and ideally load it at ui.perfetto.dev) before committing.
	spec, err := kernels.SpecByName("SSSP")
	if err != nil {
		t.Fatal(err)
	}
	o := obsOpts()
	o.Timeline = true
	o.WorkBudget = 60 // keep the golden file reviewable
	o.SkipVerify = true
	run, err := Run(spec, o)
	if err != nil {
		t.Fatal(err)
	}
	got := run.Timeline.Perfetto()

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export has no events")
	}

	path := filepath.Join("testdata", "timeline.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("timeline drifted from golden file (len %d vs %d); rerun with -update and review",
			len(got), len(want))
	}
}

func TestIntervalColumnsMinnow(t *testing.T) {
	// The Minnow configuration exposes the engine columns; a software run
	// must not (no engines exist to read).
	spec, err := kernels.SpecByName("SSSP")
	if err != nil {
		t.Fatal(err)
	}
	o := obsOpts()
	o.MetricsEvery = 10_000
	run, err := Run(spec, o)
	if err != nil {
		t.Fatal(err)
	}
	head := strings.Join(run.Intervals.Header(), ",")
	for _, col := range []string{"occupancy", "l2_mpki", "credits", "pf_late_drops", "ipc0", "ipc1"} {
		if !strings.Contains(head, col) {
			t.Fatalf("minnow header %q missing %q", head, col)
		}
	}
	sw := small(2)
	sw.MetricsEvery = 10_000
	swRun, err := Run(spec, sw)
	if err != nil {
		t.Fatal(err)
	}
	if h := strings.Join(swRun.Intervals.Header(), ","); strings.Contains(h, "credits") {
		t.Fatalf("software-scheduler header %q has engine columns", h)
	}
	if colIndex(swRun.Intervals, "occupancy") < 0 {
		t.Fatal("software run lost the occupancy column")
	}
}

func TestTimeseriesFigures(t *testing.T) {
	f := FigOptions{Threads: 2, Scale: 1, Seed: 7, Quick: true, Jobs: 2}
	for name, fn := range map[string]func(FigOptions) (*stats.Table, error){
		"occupancy":     FigOccupancy,
		"mpki-interval": FigIntervalMPKI,
	} {
		tb, err := fn(f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: empty table", name)
		}
		if got := len(tb.Headers); got != 3 {
			t.Fatalf("%s: %d columns", name, got)
		}
	}
}
