package harness

import (
	"bytes"
	"strings"
	"testing"

	"minnow/internal/arrival"
	"minnow/internal/galois"
	"minnow/internal/kernels"
)

// arrivalOpts returns obsOpts with a parsed arrival plan attached.
func arrivalOpts(t *testing.T, plan string) Options {
	t.Helper()
	o := obsOpts()
	p, err := arrival.ParsePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	o.Arrivals = p
	return o
}

// TestArrivalLayerInert is the subsystem's load-bearing contract: with
// no arrival plan the layer must not exist — no latency stats, no
// "latency" key in the canonical summary JSON, and (with the invariant
// checker armed, which shares the watchdog path the arrival layer
// taught about pending injections) the same wall cycles, step count,
// and summary hash as a plain run.
func TestArrivalLayerInert(t *testing.T) {
	spec, err := kernels.SpecByName("SSSP")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(spec, obsOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := obsOpts()
	o.Invariants = true
	armed, err := Run(spec, o)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Latency != nil || armed.Latency != nil {
		t.Fatalf("latency stats populated on closed-loop runs")
	}
	if js := plain.Summary().JSON(); strings.Contains(string(js), `"latency"`) {
		t.Fatalf("closed-loop summary JSON leaks a latency key:\n%s", js)
	}
	if armed.WallCycles != plain.WallCycles || armed.SimSteps != plain.SimSteps {
		t.Fatalf("invariants armed changed the run: wall %d/%d steps %d/%d",
			armed.WallCycles, plain.WallCycles, armed.SimSteps, plain.SimSteps)
	}
	if a, b := armed.Summary().Hash(), plain.Summary().Hash(); a != b {
		t.Fatalf("summary hash changed with invariants armed:\n  armed %s\n  plain %s", a, b)
	}
}

// TestArrivalEquivalentAcrossWorkers pins the parallel-equivalence
// contract with arrivals on: the canonical RunSummary JSON (latency
// percentiles included) must be byte-identical between the serial
// engine and bound/weave execution at 1, 2, and 8 workers. Run under
// -race in CI, this is also the proof the injection actor's
// deposit/drain split never races worker state.
func TestArrivalEquivalentAcrossWorkers(t *testing.T) {
	spec, err := kernels.SpecByName("SSSP")
	if err != nil {
		t.Fatal(err)
	}
	base := arrivalOpts(t, "steady")
	serial, err := Run(spec, base)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Latency == nil {
		t.Fatal("arrival run recorded no latency stats")
	}
	if want := base.Arrivals.Total(); serial.Latency.Injected != want {
		t.Fatalf("injected %d of %d scheduled arrivals", serial.Latency.Injected, want)
	}
	want := serial.Summary().JSON()
	for _, workers := range []int{1, 2, 8} {
		o := base
		o.IntraJobs = workers
		run, err := Run(spec, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := run.Summary().JSON(); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: summary JSON diverged from serial\n  serial %s\n  para   %s",
				workers, serial.Summary().Hash(), run.Summary().Hash())
		}
	}
}

// TestArrivalDoubleRunIdentical runs the same arrival configuration
// twice and demands byte-identical summaries — the replay-determinism
// half of the equivalence contract (the schedule is materialized from
// the plan seed, so nothing may vary between runs).
func TestArrivalDoubleRunIdentical(t *testing.T) {
	spec, err := kernels.SpecByName("BFS")
	if err != nil {
		t.Fatal(err)
	}
	o := arrivalOpts(t, "waves")
	a, err := Run(spec, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, o)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Summary().JSON(), b.Summary().JSON()) {
		t.Fatalf("same plan, different runs:\n  %s\n  %s", a.Summary().Hash(), b.Summary().Hash())
	}
	if a.WallCycles != b.WallCycles || a.SimSteps != b.SimSteps {
		t.Fatalf("arrival replay diverged: wall %d/%d steps %d/%d",
			a.WallCycles, b.WallCycles, a.SimSteps, b.SimSteps)
	}
}

// TestArrivalConservationInvariants runs arrival plans with the
// invariant checker armed across benchmarks and presets: Run fails on
// any conservation violation, so a pass proves every scheduled arrival
// was delivered, credited at birth, and retired, and the answer still
// verified against the reference.
func TestArrivalConservationInvariants(t *testing.T) {
	for _, bench := range []string{"SSSP", "BFS", "CC"} {
		for _, preset := range []string{"steady", "waves"} {
			bench, preset := bench, preset
			t.Run(bench+"/"+preset, func(t *testing.T) {
				t.Parallel()
				spec, err := kernels.SpecByName(bench)
				if err != nil {
					t.Fatal(err)
				}
				o := arrivalOpts(t, preset)
				o.Invariants = true
				run, err := Run(spec, o)
				if err != nil {
					t.Fatal(err)
				}
				if run.Latency == nil {
					t.Fatal("no latency stats")
				}
				if run.Latency.Injected != run.Latency.Retired {
					t.Fatalf("injected %d != retired %d", run.Latency.Injected, run.Latency.Retired)
				}
				if want := o.Arrivals.Total(); run.Latency.Injected != want {
					t.Fatalf("injected %d of %d scheduled", run.Latency.Injected, want)
				}
				for _, c := range run.Latency.Classes {
					if c.WaitP50 > c.WaitP95 || c.WaitP95 > c.WaitP99 {
						t.Fatalf("class %s wait percentiles not monotone: %d/%d/%d",
							c.Class, c.WaitP50, c.WaitP95, c.WaitP99)
					}
					if c.SojournP50 > c.SojournP95 || c.SojournP95 > c.SojournP99 {
						t.Fatalf("class %s sojourn percentiles not monotone: %d/%d/%d",
							c.Class, c.SojournP50, c.SojournP95, c.SojournP99)
					}
					if c.SojournP50 < c.WaitP50 {
						t.Fatalf("class %s sojourn p50 %d below wait p50 %d (sojourn includes execution)",
							c.Class, c.SojournP50, c.WaitP50)
					}
				}
			})
		}
	}
}

// TestArrivalConservationDetectsDrop exercises the failure arm the
// conservation suite otherwise never reaches: an injection actor that
// claims fewer deliveries than its schedule must produce deterministic
// arrival-conservation violations from the invariant checker.
func TestArrivalConservationDetectsDrop(t *testing.T) {
	arr := &arrivalActor{events: make([]arrival.Event, 3), next: 2, delivered: 2}
	v := checkInvariants(Options{}, true, new(galois.Runner), nil, nil, nil, buildMem(small(1).withDefaults()), arr)
	var drop, credit bool
	for _, msg := range v {
		if strings.Contains(msg, "delivered 2 of 3 scheduled arrivals") {
			drop = true
		}
		if strings.Contains(msg, "injector delivered 2 but runner credited 0") {
			credit = true
		}
	}
	if !drop || !credit {
		t.Fatalf("dropped arrivals not flagged (drop=%v credit=%v): %q", drop, credit, v)
	}
}

// TestArrivalRejectsCountOnceKernels pins the capability gate: TC and
// BC count each triangle/traversal exactly once, so re-evaluating an
// injected node would corrupt the answer — the harness must reject the
// combination up front rather than fail verification later.
func TestArrivalRejectsCountOnceKernels(t *testing.T) {
	for _, bench := range []string{"TC", "BC"} {
		spec, err := kernels.SpecByName(bench)
		if err != nil {
			t.Fatal(err)
		}
		_, err = Run(spec, arrivalOpts(t, "trickle"))
		if err == nil {
			t.Fatalf("%s accepted an arrival plan", bench)
		}
		if !strings.Contains(err.Error(), "does not support open-loop arrivals") {
			t.Fatalf("%s: wrong rejection: %v", bench, err)
		}
	}
}
