package harness

import (
	"errors"
	"sync/atomic"
	"testing"

	"minnow/internal/kernels"
)

// TestCancelHookInert pins the cancellation layer's determinism
// contract: installing a cancel hook that never fires must not change
// ANY deterministic output — same summary hash, same wall cycles, same
// event-loop step count as a plain run.
func TestCancelHookInert(t *testing.T) {
	spec, err := kernels.SpecByName("SSSP")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(spec, obsOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := obsOpts()
	polls := 0
	o.Cancel = func() bool { polls++; return false }
	armed, err := Run(spec, o)
	if err != nil {
		t.Fatal(err)
	}
	if armed.WallCycles != plain.WallCycles {
		t.Fatalf("wall cycles %d with cancel hook, %d without", armed.WallCycles, plain.WallCycles)
	}
	if armed.SimSteps != plain.SimSteps {
		t.Fatalf("sim steps %d with cancel hook, %d without", armed.SimSteps, plain.SimSteps)
	}
	if a, b := armed.Summary().Hash(), plain.Summary().Hash(); a != b {
		t.Fatalf("summary hash changed with cancel hook installed:\n  armed %s\n  plain %s", a, b)
	}
}

// TestCancelHookStopsRun cancels a run mid-flight and checks the error
// wraps ErrCanceled (the contract minnowd's cancel path dispatches on).
func TestCancelHookStopsRun(t *testing.T) {
	spec, err := kernels.SpecByName("SSSP")
	if err != nil {
		t.Fatal(err)
	}
	o := obsOpts()
	var flag atomic.Bool
	flag.Store(true) // cancel at the very first poll
	o.Cancel = flag.Load
	_, err = Run(spec, o)
	if err == nil {
		t.Fatal("canceled run returned no error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancel error does not wrap ErrCanceled: %v", err)
	}
}

// TestCancelHookStopsParallelRun is TestCancelHookStopsRun on the
// bound/weave engine: the cancel poll must also stop RunParallel.
func TestCancelHookStopsParallelRun(t *testing.T) {
	spec, err := kernels.SpecByName("SSSP")
	if err != nil {
		t.Fatal(err)
	}
	o := obsOpts()
	o.IntraJobs = 2
	var flag atomic.Bool
	flag.Store(true)
	o.Cancel = flag.Load
	_, err = Run(spec, o)
	if err == nil {
		t.Fatal("canceled parallel run returned no error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancel error does not wrap ErrCanceled: %v", err)
	}
}
