package harness

import (
	"fmt"
	"runtime"

	"minnow/internal/cpu"
	"minnow/internal/galois"
	"minnow/internal/graph"
	"minnow/internal/kernels"
	"minnow/internal/mem"
	"minnow/internal/sim"
	"minnow/internal/stats"
	"minnow/internal/worklist"
)

// RateResult is the outcome of a RunRate throughput configuration.
type RateResult struct {
	// Runs holds per-copy statistics in copy order; copies are identical
	// configurations, so their summaries agree bit-for-bit.
	Runs []*stats.Run
	// SimSteps is the total actor steps across the shared engine.
	SimSteps int64
	// BoundSteps is how many of those steps ran in bound phases — zero
	// when IntraJobs is 0, and nearly all of them when it is not, since
	// every rate copy is bound-eligible.
	BoundSteps int64
	// WallCycles is the latest copy's finishing frontier.
	WallCycles int64
}

// RunRate executes `copies` fully isolated single-thread instances of
// the benchmark inside one simulation — a SPECrate-style throughput
// configuration. Each copy owns its address space, graph, memory
// system, worklist, and runner, so its worker is a genuine
// sim.BoundedActor with an unbounded horizon (galois.Worker.Isolated):
// under Options.IntraJobs >= 1 the bound phase steps all copies
// concurrently and the run's output stays byte-identical to the serial
// schedule. This is the configuration where the parallel kernel's
// speedup is unconstrained by weave serialization; cmd/bench reports it.
//
// Rate runs are bare timing runs: the scheduler must be a software
// worklist (a Minnow engine actor wakes itself through the scheduler
// from the worker's step, which the bound phase forbids), and fault
// injection, invariants, and the observability attachments are
// rejected rather than silently dropped.
func RunRate(spec kernels.Spec, o Options, copies int) (*RateResult, error) {
	o = o.withDefaults()
	o.Threads = 1
	o.Sockets = 1
	if copies < 1 {
		copies = 1
	}
	if o.Scheduler == "minnow" {
		return nil, fmt.Errorf("harness: rate mode requires a software scheduler, not %q", o.Scheduler)
	}
	if o.Faults != nil || o.Invariants || o.Timeline || o.Profile || o.MetricsEvery > 0 || o.TraceEvents > 0 {
		return nil, fmt.Errorf("harness: rate mode is a bare timing configuration; disable faults/invariants/observability attachments")
	}

	eng := sim.NewEngine()
	type copyState struct {
		kern   kernels.Kernel
		runner *galois.Runner
		o      Options
		msys   *mem.System
		cores  []*cpu.Core
	}
	states := make([]*copyState, copies)
	for i := 0; i < copies; i++ {
		as := graph.NewAddrSpace()
		kern := spec.Build(o.Scale, o.Seed, as, 1)
		oc := o
		if !oc.LgIntervalSet {
			oc.LgInterval = kern.DefaultLgInterval()
		}
		msys := buildMem(oc)
		cores := buildCores(oc, msys)
		var sched galois.Scheduler
		switch oc.Scheduler {
		case "obim":
			sched = &galois.SWScheduler{WL: worklist.NewOBIM(as, 1, 1, oc.LgInterval)}
		case "fifo":
			sched = &galois.SWScheduler{WL: worklist.NewFIFO(as, 1)}
		case "lifo":
			sched = &galois.SWScheduler{WL: worklist.NewLIFO(as, 1)}
		case "strictpq":
			sched = &galois.SWScheduler{WL: worklist.NewStrictPQ(as)}
		default:
			return nil, fmt.Errorf("harness: unknown scheduler %q", oc.Scheduler)
		}
		attachHWPrefetchers(oc, cores, msys, kern.Graph())
		cfg := galois.Config{
			Threads:        1,
			SplitThreshold: oc.SplitThreshold,
			WorkBudget:     oc.WorkBudget,
			Serial:         oc.Serial,
		}
		runner := galois.NewRunner(cfg, cores, sched, kern, kern.Graph().Degree)
		w := runner.Workers()[0]
		w.Isolated = true
		id := eng.Register(w)
		eng.Wake(id, 0)
		runner.Seed(kern.InitialTasks())
		states[i] = &copyState{kern: kern, runner: runner, o: oc, msys: msys, cores: cores}
	}

	drained := runEngine(eng, o)
	res := &RateResult{SimSteps: eng.Steps(), BoundSteps: eng.BoundSteps()}
	for i, sc := range states {
		if !drained && !sc.runner.TimedOut() {
			return nil, fmt.Errorf("harness: rate %s/%s exceeded %d simulation steps (livelock?)",
				spec.Name, o.Scheduler, o.MaxSteps)
		}
		run := collect(spec.Name, sc.o, sc.cores, nil, sc.msys, sc.runner)
		if !o.SkipVerify && !run.TimedOut {
			if err := sc.kern.Verify(); err != nil {
				return nil, fmt.Errorf("harness: rate copy %d %s/%s verification failed: %w",
					i, spec.Name, o.Scheduler, err)
			}
		}
		res.Runs = append(res.Runs, run)
		if run.WallCycles > res.WallCycles {
			res.WallCycles = run.WallCycles
		}
	}
	return res, nil
}

// SplitBudget divides the host-thread budget between run-level
// parallelism (-jobs: independent runs in flight) and intra-run
// parallelism (-intra-jobs: bound-phase workers inside each
// simulation). A non-positive jobs is resolved to NumCPU divided by the
// effective intra width so jobs x intra-jobs roughly fills the machine;
// the resolved value is clamped to >= 1 even when intraJobs oversubscribes
// the machine (intraJobs > NumCPU would otherwise divide the budget to
// zero runs in flight). A negative intraJobs is normalized to 0 (the
// serial engine); non-negative values pass through unchanged.
func SplitBudget(jobs, intraJobs int) (int, int) {
	if intraJobs < 0 {
		intraJobs = 0
	}
	div := intraJobs
	if div < 1 {
		div = 1
	}
	if jobs <= 0 {
		jobs = runtime.NumCPU() / div
		if jobs < 1 {
			jobs = 1
		}
	}
	return jobs, intraJobs
}
