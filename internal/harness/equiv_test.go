package harness

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"minnow/internal/kernels"
)

// The differential equivalence suite: the parallel bound/weave engine
// (Options.IntraJobs >= 1) must be byte-identical to the serial engine
// on every benchmark x scheduler x seed, for every worker count — same
// RunSummary JSON and hash, same folded profile, same timeline bytes,
// same step count. Runs are capped by a work budget so the suite stays
// fast; the budget stop is a deterministic galois-level event that both
// engines hit identically.

// equivWorkers are the pinned worker counts from the acceptance
// criteria; 1 exercises the epoch machinery without host concurrency.
var equivWorkers = []int{1, 2, 8}

type engineArtifacts struct {
	summary  []byte
	hash     string
	folded   string
	timeline []byte
	simSteps int64
}

func artifactsFor(t *testing.T, spec kernels.Spec, o Options) engineArtifacts {
	t.Helper()
	run, err := Run(spec, o)
	if err != nil {
		t.Fatalf("%s/%s (intra-jobs %d): %v", spec.Name, o.Scheduler, o.IntraJobs, err)
	}
	a := engineArtifacts{
		summary:  run.Summary().JSON(),
		hash:     run.Summary().Hash(),
		simSteps: run.SimSteps,
	}
	if run.Profile != nil {
		a.folded = run.Profile.Folded()
	}
	if run.Timeline != nil {
		a.timeline = run.Timeline.Perfetto()
	}
	return a
}

func TestEquivalenceSerialParallel(t *testing.T) {
	specs := append(kernels.Suite(), kernels.Extensions()...)
	scheds := []string{"obim", "fifo", "lifo", "strictpq", "minnow"}
	seeds := []uint64{42, 7}
	for _, spec := range specs {
		for _, sched := range scheds {
			for _, seed := range seeds {
				spec, sched, seed := spec, sched, seed
				t.Run(fmt.Sprintf("%s/%s/seed%d", spec.Name, sched, seed), func(t *testing.T) {
					t.Parallel()
					o := Options{
						Threads:    4,
						Seed:       seed,
						Scheduler:  sched,
						WorkBudget: 1000,
						SkipVerify: true,
						Timeline:   true,
						Profile:    true,
						Prefetch:   sched == "minnow",
					}
					base := artifactsFor(t, spec, o)
					for _, w := range equivWorkers {
						po := o
						po.IntraJobs = w
						po.EpochWindow = 2048
						got := artifactsFor(t, spec, po)
						if got.hash != base.hash || !bytes.Equal(got.summary, base.summary) {
							t.Fatalf("workers=%d: RunSummary diverges from serial\nserial: %s\nparallel: %s",
								w, base.summary, got.summary)
						}
						if got.simSteps != base.simSteps {
							t.Errorf("workers=%d: sim steps diverge: serial %d, parallel %d", w, base.simSteps, got.simSteps)
						}
						if got.folded != base.folded {
							t.Errorf("workers=%d: folded profile diverges from serial", w)
						}
						if !bytes.Equal(got.timeline, base.timeline) {
							t.Errorf("workers=%d: timeline bytes diverge from serial", w)
						}
					}
				})
			}
		}
	}
}

// TestSharedHorizonEquivalence re-runs the differential suite with
// conservative-lookahead horizons on: every benchmark x scheduler,
// serial vs workers {1,2,8}, summary/steps/folded/timeline bytes all
// identical. The serial baseline also has SharedHorizons set — the flag
// changes the step schedule (idle waits split in two), so equivalence is
// asserted within the flag, exactly as operators compare runs.
func TestSharedHorizonEquivalence(t *testing.T) {
	specs := append(kernels.Suite(), kernels.Extensions()...)
	scheds := []string{"obim", "minnow"}
	for _, spec := range specs {
		for _, sched := range scheds {
			spec, sched := spec, sched
			t.Run(fmt.Sprintf("%s/%s", spec.Name, sched), func(t *testing.T) {
				t.Parallel()
				o := Options{
					Threads:        4,
					Scheduler:      sched,
					WorkBudget:     1000,
					SkipVerify:     true,
					Timeline:       true,
					Profile:        true,
					Prefetch:       sched == "minnow",
					SharedHorizons: true,
				}
				base := artifactsFor(t, spec, o)
				for _, w := range equivWorkers {
					po := o
					po.IntraJobs = w
					po.EpochWindow = 2048
					got := artifactsFor(t, spec, po)
					if got.hash != base.hash || !bytes.Equal(got.summary, base.summary) {
						t.Fatalf("workers=%d: RunSummary diverges from serial\nserial: %s\nparallel: %s",
							w, base.summary, got.summary)
					}
					if got.simSteps != base.simSteps {
						t.Errorf("workers=%d: sim steps diverge: serial %d, parallel %d", w, base.simSteps, got.simSteps)
					}
					if got.folded != base.folded {
						t.Errorf("workers=%d: folded profile diverges from serial", w)
					}
					if !bytes.Equal(got.timeline, base.timeline) {
						t.Errorf("workers=%d: timeline bytes diverge from serial", w)
					}
				}
			})
		}
	}
}

// TestSharedHorizonCoverage pins the tentpole's payoff AND the sparse-
// schedule probe fix in one configuration: a shared-machine 64-core
// Minnow run (no isolated copies) with interval sampling. The hardware
// worklist is the one scheduler whose pops can fail while tasks are
// still in flight between engines — a software worklist is empty only
// when nothing is outstanding, so workers retire instead of idling —
// which makes it the configuration where idle backoffs (the private
// steps the horizons expose) actually occur. The bound phase must
// engage, and the interval-CSV bytes — whose rows fire at probe
// boundaries that idle gaps can jump several at a time — must match the
// serial engine exactly, along with the summary, at every worker count.
func TestSharedHorizonCoverage(t *testing.T) {
	spec, err := kernels.SpecByName("SSSP")
	if err != nil {
		t.Fatal(err)
	}
	o := Options{
		Threads:        64,
		Scheduler:      "minnow",
		Prefetch:       true,
		WorkBudget:     600,
		SkipVerify:     true,
		MetricsEvery:   512,
		SharedHorizons: true,
	}
	base, err := Run(spec, o)
	if err != nil {
		t.Fatal(err)
	}
	if base.BoundSteps != 0 {
		t.Fatalf("serial run reported %d bound steps", base.BoundSteps)
	}
	baseSum := base.Summary().JSON()
	baseCSV := base.Intervals.CSV()
	if baseCSV == "" {
		t.Fatal("interval sampling produced no rows; the regression vector is empty")
	}
	for _, w := range equivWorkers {
		po := o
		po.IntraJobs = w
		got, err := Run(spec, po)
		if err != nil {
			t.Fatalf("intra-jobs %d: %v", w, err)
		}
		if got.BoundSteps == 0 {
			t.Errorf("intra-jobs %d: bound phase never engaged on the shared machine", w)
		}
		if !bytes.Equal(got.Summary().JSON(), baseSum) {
			t.Fatalf("intra-jobs %d: summary diverges\nserial: %s\nparallel: %s",
				w, baseSum, got.Summary().JSON())
		}
		if csv := got.Intervals.CSV(); csv != baseCSV {
			t.Fatalf("intra-jobs %d: interval CSV diverges from serial\nserial:\n%s\nparallel:\n%s", w, baseCSV, csv)
		}
	}
	// Without the flag the shared machine has no bound-eligible steps at
	// all — the baseline this PR exists to beat.
	off := o
	off.SharedHorizons = false
	off.IntraJobs = 8
	offRun, err := Run(spec, off)
	if err != nil {
		t.Fatal(err)
	}
	if offRun.BoundSteps != 0 {
		t.Errorf("flag off: expected a fully woven shared machine, got %d bound steps", offRun.BoundSteps)
	}
}

// TestRateEquivalence pins the configuration where the bound phase does
// real work: isolated SPECrate-style copies. Per-copy summaries, total
// steps, and wall cycles must match the serial schedule bit-for-bit at
// every worker count, and the bound phase must actually engage.
func TestRateEquivalence(t *testing.T) {
	spec, err := kernels.SpecByName("SSSP")
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []string{"obim", "fifo"} {
		sched := sched
		t.Run(sched, func(t *testing.T) {
			t.Parallel()
			o := Options{Scheduler: sched, WorkBudget: 800, SkipVerify: true}
			const copies = 4
			base, err := RunRate(spec, o, copies)
			if err != nil {
				t.Fatal(err)
			}
			if base.BoundSteps != 0 {
				t.Fatalf("serial rate run reported %d bound steps", base.BoundSteps)
			}
			baseSums := make([][]byte, copies)
			for i, r := range base.Runs {
				baseSums[i] = r.Summary().JSON()
			}
			for _, w := range equivWorkers {
				po := o
				po.IntraJobs = w
				got, err := RunRate(spec, po, copies)
				if err != nil {
					t.Fatalf("intra-jobs %d: %v", w, err)
				}
				if got.SimSteps != base.SimSteps || got.WallCycles != base.WallCycles {
					t.Fatalf("intra-jobs %d: steps/wall diverge: serial (%d,%d), parallel (%d,%d)",
						w, base.SimSteps, base.WallCycles, got.SimSteps, got.WallCycles)
				}
				if got.BoundSteps == 0 {
					t.Errorf("intra-jobs %d: bound phase never engaged on isolated copies", w)
				}
				for i, r := range got.Runs {
					if !bytes.Equal(r.Summary().JSON(), baseSums[i]) {
						t.Fatalf("intra-jobs %d: copy %d summary diverges\nserial: %s\nparallel: %s",
							w, i, baseSums[i], r.Summary().JSON())
					}
				}
			}
		})
	}
}

func TestRateRejectsUnsupported(t *testing.T) {
	spec, err := kernels.SpecByName("BFS")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunRate(spec, Options{Scheduler: "minnow"}, 2); err == nil || !strings.Contains(err.Error(), "software scheduler") {
		t.Errorf("rate with minnow scheduler: got %v, want software-scheduler error", err)
	}
	if _, err := RunRate(spec, Options{Scheduler: "fifo", Timeline: true}, 2); err == nil || !strings.Contains(err.Error(), "bare timing") {
		t.Errorf("rate with timeline: got %v, want bare-timing error", err)
	}
}

func TestSplitBudget(t *testing.T) {
	if jobs, intra := SplitBudget(3, 5); jobs != 3 || intra != 5 {
		t.Errorf("explicit values must pass through: got (%d,%d)", jobs, intra)
	}
	if jobs, intra := SplitBudget(0, 0); jobs < 1 || intra != 0 {
		t.Errorf("auto jobs with serial engine: got (%d,%d), want (>=1,0)", jobs, intra)
	}
	jobsWide, _ := SplitBudget(0, 1)
	jobsSplit, _ := SplitBudget(0, 4)
	if jobsSplit > jobsWide {
		t.Errorf("intra width must shrink the auto jobs budget: %d > %d", jobsSplit, jobsWide)
	}
	// Oversubscription: when the per-run worker width meets or exceeds
	// the whole host budget, the job count must clamp to 1, never 0 —
	// a 0-job schedule would silently run nothing.
	ncpu := runtime.NumCPU()
	for _, tc := range []struct {
		name      string
		intraJobs int
	}{
		{"width == NumCPU", ncpu},
		{"width > NumCPU", ncpu * 4},
		{"width absurd", ncpu * 1000},
	} {
		if jobs, intra := SplitBudget(0, tc.intraJobs); jobs < 1 || intra != tc.intraJobs {
			t.Errorf("%s: got (%d,%d), want (>=1,%d)", tc.name, jobs, intra, tc.intraJobs)
		}
	}
	// Negative widths normalize to the serial engine rather than
	// corrupting the division.
	if jobs, intra := SplitBudget(0, -3); jobs < 1 || intra != 0 {
		t.Errorf("negative intra width: got (%d,%d), want (>=1,0)", jobs, intra)
	}
}
