package harness

import (
	"fmt"

	"minnow/internal/core"
	"minnow/internal/cpu"
	"minnow/internal/graph"
	"minnow/internal/kernels"
	"minnow/internal/stats"
)

// FigOptions parameterizes the experiment suite.
type FigOptions struct {
	Threads int    // paper configuration: 64
	Scale   int    // input scale (1 = laptop defaults)
	Seed    uint64 // generator seed
	Quick   bool   // trims sweeps for fast CI / benchmarks
	// Jobs bounds the worker pool that fans a figure's independent
	// configurations out across goroutines (0 = GOMAXPROCS, 1 = serial).
	// Each simulation stays single-goroutine and results are consumed in
	// submission order, so every figure is byte-identical for any Jobs.
	Jobs int
}

// DefaultFigOptions mirrors the paper's 64-thread setup. Inputs run at
// scale 2 so 64 threads stay fed (scale 1 inputs starve high thread
// counts; see EXPERIMENTS.md).
func DefaultFigOptions() FigOptions {
	return FigOptions{Threads: 64, Scale: 2, Seed: 42}
}

// QuickFigOptions is the fast configuration used by the benchmark harness.
func QuickFigOptions() FigOptions {
	return FigOptions{Threads: 8, Scale: 1, Seed: 42, Quick: true}
}

// base builds the standard run options.
func (f FigOptions) base() Options {
	return Options{
		Threads:        f.Threads,
		Scale:          f.Scale,
		Seed:           f.Seed,
		Scheduler:      "obim",
		SplitThreshold: 512, // §6.2.1 task splitting (10K in the paper, scaled with inputs)
	}
}

// benchNames returns the benchmark subset for the options.
func (f FigOptions) benchNames() []string {
	if f.Quick {
		return []string{"SSSP", "CC", "TC"}
	}
	return []string{"SSSP", "BFS", "G500", "CC", "PR", "TC", "BC"}
}

// runOrErr wraps Run with the spec lookup.
func runOrErr(bench string, o Options) (*stats.Run, error) {
	spec, err := kernels.SpecByName(bench)
	if err != nil {
		return nil, err
	}
	return Run(spec, o)
}

// runAll fans one figure's independent configurations out over the worker
// pool and returns their runs in submission order (first error wins).
func (f FigOptions) runAll(jobs []Job) ([]*stats.Run, error) {
	res := RunJobs(jobs, f.Jobs)
	runs := make([]*stats.Run, len(res))
	for i, r := range res {
		if r.Err != nil {
			return nil, r.Err
		}
		runs[i] = r.Run
	}
	return runs, nil
}

// Table1 regenerates the graph-input inventory (paper Table 1) for our
// synthetic equivalents.
func Table1(f FigOptions) *stats.Table {
	t := &stats.Table{
		Title:   "Table 1: evaluated graph inputs (synthetic equivalents)",
		Headers: []string{"name", "stands-for", "nodes", "edges", "est.diam", "largest-node", "size-MB"},
	}
	for _, spec := range kernels.Suite() {
		as := graph.NewAddrSpace()
		k := spec.Build(f.Scale, f.Seed, as, 1)
		g := k.Graph()
		_, maxDeg := g.MaxDegreeNode()
		t.AddRow(g.Name, spec.PaperInput, g.N, g.NumEdges(), g.EstimateDiameter(0), maxDeg,
			float64(g.SizeBytes())/1e6)
	}
	return t
}

// Table2 regenerates the benchmark configuration table with measured
// single-threaded serial-baseline cycles (paper Table 2's "Cycles").
func Table2(f FigOptions) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Table 2: benchmark configuration (serial-baseline cycles)",
		Headers: []string{"workload", "input", "serial-cycles", "tasks"},
	}
	var jobs []Job
	for _, name := range f.benchNames() {
		o := f.base()
		o.Threads = 1
		o.Serial = true
		jobs = append(jobs, Job{Bench: name, Opts: o})
	}
	runs, err := f.runAll(jobs)
	if err != nil {
		return nil, err
	}
	for i, name := range f.benchNames() {
		spec, _ := kernels.SpecByName(name)
		t.AddRow(name, spec.PaperInput, runs[i].WallCycles, runs[i].WorkItems)
	}
	return t, nil
}

// Table3 prints the simulated microarchitecture configuration (paper
// Table 3) alongside the scaled values this run actually uses.
func Table3(f FigOptions) *stats.Table {
	o := f.base().withDefaults()
	m := buildMem(o).Config()
	c := cpu.DefaultConfig()
	e := core.DefaultConfig()
	t := &stats.Table{
		Title:   "Table 3: microarchitecture configuration (paper spec -> scaled sim values)",
		Headers: []string{"component", "paper", "simulated"},
	}
	t.AddRow("cores", "64 Skylake-like, 2.5GHz", fmt.Sprintf("%d interval-model cores", o.Threads))
	t.AddRow("branch predictor", "64Kb 5-table TAGE", "64Kb 5-table TAGE")
	t.AddRow("reservation station", "97 entries", fmt.Sprintf("%d entries", c.RS))
	t.AddRow("load/store queue", "72 / 56", fmt.Sprintf("%d / %d", c.LoadQueue, c.StoreQueue))
	t.AddRow("reorder buffer", "224", fmt.Sprintf("%d", c.ROB))
	t.AddRow("L1D", "32KB 8-way 4cyc", fmt.Sprintf("%dKB %d-way %dcyc", m.L1Lines*64/1024, m.L1Assoc, m.L1Latency))
	t.AddRow("L2", "256KB 8-way 7cyc", fmt.Sprintf("%dKB %d-way %dcyc", m.L2Lines*64/1024, m.L2Assoc, m.L2Latency))
	t.AddRow("L3", "2MB/core 16-way 27cyc", fmt.Sprintf("%dKB/core %d-way %dcyc", m.L3BankLines*64/1024, m.L3Assoc, m.L3Latency))
	t.AddRow("NoC", "8x8 mesh, 3cyc/hop", fmt.Sprintf("%dx%d mesh, %dcyc/hop", m.MeshW, m.MeshH, m.HopCycles))
	t.AddRow("main memory", "12-ch DDR4-2400", fmt.Sprintf("%d-ch, %dcyc, %dcyc/line", m.DRAM.Channels, m.DRAM.LatencyCycles, m.DRAM.ServiceCycles))
	t.AddRow("minnow localQ", "64 entries, 10cyc", fmt.Sprintf("%d entries, %dcyc", e.LocalQ, e.LocalQLatency))
	t.AddRow("minnow loadQ", "32 entries, 4cyc wakeup", fmt.Sprintf("%d entries, %dcyc wakeup", e.LoadBuf, e.LoadBufWake))
	return t
}

// Fig2 regenerates the Galois-vs-GraphMat comparison (paper Fig. 2):
// speedup at 10 threads normalized to 1-thread GraphMat. GMat* is the
// authors' per-bucket delta-stepping retrofit (SSSP only).
func Fig2(f FigOptions) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Fig 2: speedup at 10 threads normalized to 1-thread GraphMat",
		Headers: []string{"workload", "gmat-10t", "galois-obim", "galois-fifo", "gmat*"},
	}
	benches := []string{"SSSP", "BFS", "G500", "CC", "PR"}
	if f.Quick {
		benches = []string{"SSSP", "CC"}
	}
	const threads = 10
	for _, name := range benches {
		o := f.base()
		o.Threads = threads
		o.WorkBudget = workBudget(f)
		// Fig. 2 is a real-machine (Xeon) measurement in the paper: both
		// frameworks enjoy the host's hardware prefetchers.
		o.HWPrefetcher = "stride"

		o1 := o
		o1.Threads = 1
		o1.HWPrefetcher = ""
		gm1, err := RunGraphMat(name, o1)
		if err != nil {
			return nil, err
		}
		gm10, err := RunGraphMat(name, o)
		if err != nil {
			return nil, err
		}
		obim, err := runOrErr(name, o)
		if err != nil {
			return nil, err
		}
		of := o
		of.Scheduler = "fifo"
		of.SkipVerify = true // FIFO may time out on ordering-sensitive runs
		fifo, err := runOrErr(name, of)
		if err != nil {
			return nil, err
		}
		gstar := "-"
		if name == "SSSP" {
			// GMat*'s per-bucket kernel launches are expensive, so its
			// tuned bucket interval is much larger than OBIM's (§3.1).
			gs, err := RunGMatStar(o, 15)
			if err != nil {
				return nil, err
			}
			gstar = stats.FormatFloat(ratioOrTimeout(int64(gm1.Wall), int64(gs.Wall), gs.TimedOut))
		}
		t.AddRow(name,
			ratioOrTimeout(int64(gm1.Wall), int64(gm10.Wall), gm10.TimedOut),
			ratioOrTimeout(int64(gm1.Wall), obim.WallCycles, obim.TimedOut),
			ratioOrTimeout(int64(gm1.Wall), fifo.WallCycles, fifo.TimedOut),
			gstar)
	}
	return t, nil
}

// ratioOrTimeout returns base/x, or 0 for timed-out runs.
func ratioOrTimeout(base, x int64, timedOut bool) float64 {
	if timedOut || x == 0 {
		return 0
	}
	return float64(base) / float64(x)
}

// workBudget bounds runaway scheduler configurations (Fig. 3 timeouts).
func workBudget(f FigOptions) int64 {
	return int64(4_000_000) * int64(f.Scale)
}

// Fig3 regenerates the scheduler-policy comparison (paper Fig. 3):
// runtime normalized to GraphMat at 10 threads; 0 marks a timeout.
func Fig3(f FigOptions) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Fig 3: runtime normalized to GraphMat, 10 threads (lower is better; 'timeout' = exceeded work budget)",
		Headers: []string{"workload", "fifo", "lifo(carbon)", "obim-lg2", "obim-tuned", "obim-lg16", "strict-pq"},
	}
	benches := []string{"SSSP", "BFS", "CC", "PR"}
	if f.Quick {
		benches = []string{"SSSP"}
	}
	const threads = 10
	for _, name := range benches {
		o := f.base()
		o.Threads = threads
		o.WorkBudget = workBudget(f)
		o.SkipVerify = true
		// Real-machine comparison: host prefetchers on for every policy.
		o.HWPrefetcher = "stride"

		o1 := o
		o1.Threads = 1
		o1.HWPrefetcher = ""
		gm, err := RunGraphMat(name, o1)
		if err != nil {
			return nil, err
		}
		cell := func(sched string, lg int) string {
			oo := o
			oo.Scheduler = sched
			if lg >= 0 {
				oo.LgInterval = uint(lg)
				oo.LgIntervalSet = true
			}
			r, err2 := runOrErr(name, oo)
			if err2 != nil {
				err = err2
				return "err"
			}
			if r.TimedOut {
				return "timeout"
			}
			return stats.FormatFloat(float64(r.WallCycles) / float64(gm.Wall))
		}
		spec, _ := kernels.SpecByName(name)
		as := graph.NewAddrSpace()
		tuned := spec.Build(f.Scale, f.Seed, as, 1).DefaultLgInterval()
		row := []any{name,
			cell("fifo", -1), cell("lifo", -1),
			cell("obim", 2), cell("obim", int(tuned)), cell("obim", 16),
			cell("strictpq", -1)}
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig4 regenerates the ROB sensitivity sweep (paper Fig. 4): speedup vs
// ROB size, normalized to the 256-entry configuration, for the realistic
// core and for ideal variants with perfect branch prediction and no
// fences.
func Fig4(f FigOptions) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Fig 4: speedup vs ROB size, normalized to 256-entry ROB (realistic vs ideal)",
		Headers: []string{"workload", "mode", "rob-64", "rob-128", "rob-256", "rob-512"},
	}
	robs := []int{64, 128, 256, 512}
	benches := f.benchNames()
	if f.Quick {
		benches = []string{"SSSP", "PR"}
	}
	modes := []struct {
		name      string
		perfectBP bool
		noFences  bool
	}{
		{"realistic", false, false},
		{"perfect-bp", true, false},
		{"bp+nofence", true, true},
	}
	var jobs []Job
	for _, name := range benches {
		for _, m := range modes {
			for _, rob := range robs {
				cfg := cpu.ScaledROB(rob)
				cfg.PerfectBP = m.perfectBP
				cfg.NoFences = m.noFences
				o := f.base()
				o.CoreCfg = &cfg
				// The sweep changes the execution schedule, which moves
				// PR's leftover sub-epsilon residuals around; the
				// reference check is not meaningful here.
				o.SkipVerify = true
				jobs = append(jobs, Job{Bench: name, Opts: o})
			}
		}
	}
	runs, err := f.runAll(jobs)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, name := range benches {
		for _, m := range modes {
			walls := make([]int64, len(robs))
			var base int64
			for i, rob := range robs {
				walls[i] = runs[k].WallCycles
				if rob == 256 {
					base = runs[k].WallCycles
				}
				k++
			}
			row := []any{name, m.name}
			for _, w := range walls {
				row = append(row, float64(base)/float64(w))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Fig5 regenerates the Galois overhead breakdown (paper Fig. 5): fraction
// of core cycles spent on useful work, worklist operations, and load/store
// miss stalls at full thread count.
func Fig5(f FigOptions) (*stats.Table, error) {
	t := &stats.Table{
		Title:   fmt.Sprintf("Fig 5: cycle breakdown at %d threads (software baseline)", f.Threads),
		Headers: []string{"workload", "useful", "worklist", "load-miss", "store-miss"},
	}
	var jobs []Job
	for _, name := range f.benchNames() {
		jobs = append(jobs, Job{Bench: name, Opts: f.base()})
	}
	runs, err := f.runAll(jobs)
	if err != nil {
		return nil, err
	}
	for i, name := range f.benchNames() {
		bd := runs[i].Breakdown()
		t.AddRow(name, bd[0], bd[1], bd[2], bd[3])
	}
	return t, nil
}

// Fig6 regenerates delinquent load density (paper Fig. 6).
func Fig6(f FigOptions) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Fig 6: delinquent load density (frequently-missing loads / all loads)",
		Headers: []string{"workload", "density"},
	}
	var jobs []Job
	for _, name := range f.benchNames() {
		o := f.base()
		o.Threads = min(f.Threads, 8) // density is thread-count-insensitive
		jobs = append(jobs, Job{Bench: name, Opts: o})
	}
	runs, err := f.runAll(jobs)
	if err != nil {
		return nil, err
	}
	for i, name := range f.benchNames() {
		t.AddRow(name, runs[i].DelinquentDensity())
	}
	return t, nil
}

// Fig11 regenerates the average worklist operation cost (paper Fig. 11):
// cycles per enqueue/dequeue for the software worklist vs Minnow offload.
func Fig11(f FigOptions) (*stats.Table, error) {
	t := &stats.Table{
		Title:   fmt.Sprintf("Fig 11: average cycles per worklist operation at %d threads", f.Threads),
		Headers: []string{"workload", "galois-enq", "galois-deq", "minnow-enq", "minnow-deq"},
	}
	var jobs []Job
	for _, name := range f.benchNames() {
		om := f.base()
		om.Scheduler = "minnow"
		jobs = append(jobs, Job{Bench: name, Opts: f.base()}, Job{Bench: name, Opts: om})
	}
	runs, err := f.runAll(jobs)
	if err != nil {
		return nil, err
	}
	for i, name := range f.benchNames() {
		sw, mn := runs[2*i], runs[2*i+1]
		t.AddRow(name, sw.AvgEnqCycles(), sw.AvgDeqCycles(), mn.AvgEnqCycles(), mn.AvgDeqCycles())
	}
	return t, nil
}

// Fig15 regenerates the scalability curves (paper Fig. 15): speedup over
// the optimized serial baseline from 1 to Threads threads, Galois vs
// Minnow (prefetching disabled to isolate offload).
func Fig15(f FigOptions) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Fig 15: speedup vs optimized serial baseline (Minnow without prefetching)",
		Headers: []string{"workload", "sched", "t1", "t2", "t4", "t8", "t16", "t32", "t64"},
	}
	threadSet := []int{1, 2, 4, 8, 16, 32, 64}
	if f.Quick {
		threadSet = []int{1, 4, 8}
		t.Headers = []string{"workload", "sched", "t1", "t4", "t8"}
	}
	var jobs []Job
	for _, name := range f.benchNames() {
		oser := f.base()
		oser.Threads = 1
		oser.Serial = true
		jobs = append(jobs, Job{Bench: name, Opts: oser})
		for _, sched := range []string{"obim", "minnow"} {
			for _, th := range threadSet {
				if th > f.Threads {
					continue
				}
				o := f.base()
				o.Threads = th
				o.Scheduler = sched
				jobs = append(jobs, Job{Bench: name, Opts: o})
			}
		}
	}
	runs, err := f.runAll(jobs)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, name := range f.benchNames() {
		ser := runs[k]
		k++
		for _, sched := range []string{"obim", "minnow"} {
			row := []any{name, sched}
			for _, th := range threadSet {
				if th > f.Threads {
					row = append(row, "-")
					continue
				}
				row = append(row, float64(ser.WallCycles)/float64(runs[k].WallCycles))
				k++
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Fig16 regenerates the headline result (paper Fig. 16): overall Minnow
// speedup over the optimized software baseline, with and without
// worklist-directed prefetching, plus the averages (paper: 2.96x / 6.01x).
func Fig16(f FigOptions) (*stats.Table, error) {
	t := &stats.Table{
		Title:   fmt.Sprintf("Fig 16: Minnow speedup over software baseline at %d threads", f.Threads),
		Headers: []string{"workload", "minnow", "minnow+prefetch"},
	}
	var jobs []Job
	for _, name := range f.benchNames() {
		om := f.base()
		om.Scheduler = "minnow"
		om1 := om
		om1.Prefetch = true
		jobs = append(jobs,
			Job{Bench: name, Opts: f.base()},
			Job{Bench: name, Opts: om},
			Job{Bench: name, Opts: om1})
	}
	runs, err := f.runAll(jobs)
	if err != nil {
		return nil, err
	}
	var noPF, withPF []float64
	for i, name := range f.benchNames() {
		base, m0, m1 := runs[3*i], runs[3*i+1], runs[3*i+2]
		s0 := float64(base.WallCycles) / float64(m0.WallCycles)
		s1 := float64(base.WallCycles) / float64(m1.WallCycles)
		noPF = append(noPF, s0)
		withPF = append(withPF, s1)
		t.AddRow(name, s0, s1)
	}
	t.AddRow("geomean", stats.GeoMean(noPF), stats.GeoMean(withPF))
	return t, nil
}

// Fig17 regenerates the prefetcher comparison (paper Fig. 17): stride,
// IMP, and worklist-directed prefetching at 16 threads, normalized to
// Minnow without prefetching.
func Fig17(f FigOptions) (*stats.Table, error) {
	threads := min(f.Threads, 16)
	t := &stats.Table{
		Title:   fmt.Sprintf("Fig 17: prefetching speedup at %d threads vs Minnow-no-prefetch", threads),
		Headers: []string{"workload", "stride", "imp", "worklist-directed"},
	}
	var jobs []Job
	for _, name := range f.benchNames() {
		o := f.base()
		o.Threads = threads
		o.Scheduler = "minnow"
		variant := func(hw string, wdp bool) Options {
			oo := o
			oo.HWPrefetcher = hw
			oo.Prefetch = wdp
			return oo
		}
		jobs = append(jobs,
			Job{Bench: name, Opts: o},
			Job{Bench: name, Opts: variant("stride", false)},
			Job{Bench: name, Opts: variant("imp", false)},
			Job{Bench: name, Opts: variant("", true)})
	}
	runs, err := f.runAll(jobs)
	if err != nil {
		return nil, err
	}
	for i, name := range f.benchNames() {
		base := runs[4*i]
		speedup := func(r *stats.Run) float64 {
			return float64(base.WallCycles) / float64(r.WallCycles)
		}
		t.AddRow(name, speedup(runs[4*i+1]), speedup(runs[4*i+2]), speedup(runs[4*i+3]))
	}
	return t, nil
}

// creditSet returns the Fig. 18-20 sweep points.
func (f FigOptions) creditSet() []int {
	if f.Quick {
		return []int{8, 32, 128}
	}
	return []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
}

// creditSweep runs the credit sweep once per benchmark, returning runs
// keyed [bench][credit-index].
func creditSweep(f FigOptions) (map[string][]*stats.Run, error) {
	var jobs []Job
	for _, name := range f.benchNames() {
		for _, cr := range f.creditSet() {
			o := f.base()
			o.Scheduler = "minnow"
			o.Prefetch = true
			o.Credits = cr
			jobs = append(jobs, Job{Bench: name, Opts: o})
		}
	}
	runs, err := f.runAll(jobs)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]*stats.Run)
	k := 0
	for _, name := range f.benchNames() {
		for range f.creditSet() {
			out[name] = append(out[name], runs[k])
			k++
		}
	}
	return out, nil
}

// Fig18 regenerates L2 MPKI vs prefetch credits (paper Fig. 18).
func Fig18(f FigOptions) (*stats.Table, error) {
	runs, err := creditSweep(f)
	if err != nil {
		return nil, err
	}
	return creditTable(f, runs, "Fig 18: L2 demand MPKI vs prefetch credits ('off' = prefetch disabled)",
		func(r *stats.Run) float64 { return r.L2MPKI() }, true)
}

// Fig19 regenerates prefetching speedup vs credits (paper Fig. 19).
func Fig19(f FigOptions) (*stats.Table, error) {
	runs, err := creditSweep(f)
	if err != nil {
		return nil, err
	}
	// Normalize to prefetch-off.
	t := &stats.Table{
		Title:   "Fig 19: prefetching speedup vs credits (normalized to prefetch disabled)",
		Headers: creditHeaders(f, false),
	}
	var jobs []Job
	for _, name := range f.benchNames() {
		o := f.base()
		o.Scheduler = "minnow"
		jobs = append(jobs, Job{Bench: name, Opts: o})
	}
	offs, err := f.runAll(jobs)
	if err != nil {
		return nil, err
	}
	for i, name := range f.benchNames() {
		row := []any{name}
		for _, r := range runs[name] {
			row = append(row, float64(offs[i].WallCycles)/float64(r.WallCycles))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig20 regenerates prefetch efficiency vs credits plus the IMP reference
// point (paper Fig. 20).
func Fig20(f FigOptions) (*stats.Table, error) {
	runs, err := creditSweep(f)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   "Fig 20: prefetch efficiency (used-before-eviction / fills)",
		Headers: append(creditHeaders(f, false), "imp"),
	}
	var jobs []Job
	for _, name := range f.benchNames() {
		o := f.base()
		o.Scheduler = "minnow"
		o.HWPrefetcher = "imp"
		jobs = append(jobs, Job{Bench: name, Opts: o})
	}
	impRuns, err := f.runAll(jobs)
	if err != nil {
		return nil, err
	}
	for i, name := range f.benchNames() {
		row := []any{name}
		for _, r := range runs[name] {
			row = append(row, r.L2.Efficiency())
		}
		row = append(row, impRuns[i].L2.Efficiency())
		t.AddRow(row...)
	}
	return t, nil
}

func creditHeaders(f FigOptions, withOff bool) []string {
	h := []string{"workload"}
	if withOff {
		h = append(h, "off")
	}
	for _, c := range f.creditSet() {
		h = append(h, fmt.Sprintf("c%d", c))
	}
	return h
}

func creditTable(f FigOptions, runs map[string][]*stats.Run, title string, metric func(*stats.Run) float64, withOff bool) (*stats.Table, error) {
	t := &stats.Table{Title: title, Headers: creditHeaders(f, withOff)}
	var offs []*stats.Run
	if withOff {
		var jobs []Job
		for _, name := range f.benchNames() {
			o := f.base()
			o.Scheduler = "minnow"
			jobs = append(jobs, Job{Bench: name, Opts: o})
		}
		var err error
		offs, err = f.runAll(jobs)
		if err != nil {
			return nil, err
		}
	}
	for i, name := range f.benchNames() {
		row := []any{name}
		if withOff {
			row = append(row, metric(offs[i]))
		}
		for _, r := range runs[name] {
			row = append(row, metric(r))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig21 regenerates the memory-channel sensitivity study (paper Fig. 21):
// speedup relative to the 12-channel design, with and without prefetching.
func Fig21(f FigOptions) (*stats.Table, error) {
	channels := []int{1, 2, 4, 8, 12}
	if f.Quick {
		channels = []int{2, 12}
	}
	t := &stats.Table{Title: "Fig 21: speedup vs memory channels (normalized to 12 channels)"}
	t.Headers = []string{"workload", "prefetch"}
	for _, ch := range channels {
		t.Headers = append(t.Headers, fmt.Sprintf("ch%d", ch))
	}
	var jobs []Job
	for _, name := range f.benchNames() {
		for _, pf := range []bool{false, true} {
			for _, ch := range channels {
				o := f.base()
				o.Scheduler = "minnow"
				o.Prefetch = pf
				o.MemChannels = ch
				jobs = append(jobs, Job{Bench: name, Opts: o})
			}
		}
	}
	runs, err := f.runAll(jobs)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, name := range f.benchNames() {
		for _, pf := range []bool{false, true} {
			var base int64
			walls := make([]int64, len(channels))
			for i, ch := range channels {
				walls[i] = runs[k].WallCycles
				if ch == 12 {
					base = runs[k].WallCycles
				}
				k++
			}
			row := []any{name, fmt.Sprintf("%v", pf)}
			for _, w := range walls {
				row = append(row, float64(base)/float64(w))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// AreaTable regenerates the §5.4 area estimate.
func AreaTable() *stats.Table {
	cfg := core.DefaultConfig()
	rep := core.Area(cfg, 256*1024/64)
	t := &stats.Table{
		Title:   "§5.4 area estimate (published constants)",
		Headers: []string{"component", "value"},
	}
	t.AddRow("engine SRAM (B)", rep.SRAMBytes)
	t.AddRow("SRAM @28nm (mm^2)", rep.SRAM28nm)
	t.AddRow("SRAM @14nm (mm^2)", rep.SRAM14nm)
	t.AddRow("control unit @14nm (mm^2)", rep.ControlUnit14nm)
	t.AddRow("total @14nm (mm^2)", rep.Total14nm)
	t.AddRow("Skylake slice (mm^2)", rep.SkylakeSlice)
	t.AddRow("overhead (%)", rep.OverheadPercent)
	return t
}
