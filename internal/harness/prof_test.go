package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"minnow/internal/kernels"
	"minnow/internal/stats"
)

// profConfigs are the scheduler shapes whose attribution paths differ:
// software OBIM (enqueue/dequeue micro-ops on the core), Minnow with
// prefetching (engine latencies, backpressure, covered/late outcomes),
// and a software run with task splitting (deep operator re-enqueues).
func profConfigs() []struct {
	name string
	opts Options
} {
	obim := small(2)
	obim.Profile = true
	min := small(2)
	min.Scheduler = "minnow"
	min.Prefetch = true
	min.Profile = true
	split := small(2)
	split.SplitThreshold = 64
	split.Profile = true
	return []struct {
		name string
		opts Options
	}{
		{"obim", obim},
		{"minnow+pf", min},
		{"obim+split", split},
	}
}

// TestProfileConservation is the profiler's load-bearing arithmetic pin:
// for every core, the sum of attribution-tree leaves equals the core's
// flat cycle total, and folding each leaf back through Coarse reproduces
// the four flat CycleCat buckets exactly. No cycle is lost, invented, or
// moved between buckets by the refinement.
func TestProfileConservation(t *testing.T) {
	for _, bench := range []string{"SSSP", "CC"} {
		spec, err := kernels.SpecByName(bench)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range profConfigs() {
			t.Run(bench+"/"+cfg.name, func(t *testing.T) {
				run, err := Run(spec, cfg.opts)
				if err != nil {
					t.Fatal(err)
				}
				if run.Profile == nil {
					t.Fatal("Options.Profile did not attach a profile")
				}
				if run.Profile.Total() == 0 {
					t.Fatal("profile collected no cycles")
				}
				var flat [4]int64
				for i := range run.Cores {
					core := &run.Cores[i]
					if got, want := run.Profile.Core(i).Total(), core.TotalCycles(); got != want {
						t.Errorf("core %d: profile total %d != flat total %d", i, got, want)
					}
					var coarse [4]int64
					for _, l := range run.Profile.CoreLeaves(i) {
						coarse[l.Coarse()] += l.Cycles
					}
					for cat := 0; cat < 4; cat++ {
						flat[cat] += core.Cycles[cat]
						if coarse[cat] != core.Cycles[cat] {
							t.Errorf("core %d %s: coarse fold %d != flat bucket %d",
								i, stats.CycleCat(cat), coarse[cat], core.Cycles[cat])
						}
					}
				}
				if run.Profile.CoarseBuckets() != flat {
					t.Errorf("merged CoarseBuckets %v != summed flat buckets %v",
						run.Profile.CoarseBuckets(), flat)
				}
			})
		}
	}
}

// TestProfileInert pins the observe-only contract: enabling the profiler
// changes no deterministic output — the canonical summary is
// byte-identical with profiling on and off.
func TestProfileInert(t *testing.T) {
	spec, err := kernels.SpecByName("SSSP")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range profConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			off := cfg.opts
			off.Profile = false
			plain, err := Run(spec, off)
			if err != nil {
				t.Fatal(err)
			}
			if plain.Profile != nil {
				t.Fatal("profile attached without Options.Profile")
			}
			profiled, err := Run(spec, cfg.opts)
			if err != nil {
				t.Fatal(err)
			}
			if profiled.WallCycles != plain.WallCycles {
				t.Fatalf("wall cycles %d profiled, %d plain", profiled.WallCycles, plain.WallCycles)
			}
			if profiled.SimSteps != plain.SimSteps {
				t.Fatalf("sim steps %d profiled, %d plain", profiled.SimSteps, plain.SimSteps)
			}
			a, b := profiled.Summary().JSON(), plain.Summary().JSON()
			if !bytes.Equal(a, b) {
				t.Fatalf("summary changed with profiling on:\n  with    %s\n  without %s", a, b)
			}
		})
	}
}

// TestProfileMinnowShape pins qualitative expectations on the Minnow
// profile: worklist-directed prefetching must produce covered (or
// late-partial) load leaves, and the static kernel sites must be visible
// in the folded stacks.
func TestProfileMinnowShape(t *testing.T) {
	spec, err := kernels.SpecByName("SSSP")
	if err != nil {
		t.Fatal(err)
	}
	o := small(2)
	o.Scheduler = "minnow"
	o.Prefetch = true
	o.Profile = true
	run, err := Run(spec, o)
	if err != nil {
		t.Fatal(err)
	}
	folded := run.Profile.Folded()
	for _, frag := range []string{"covered", "sssp.", "worklist-dequeue"} {
		if !bytes.Contains([]byte(folded), []byte(frag)) {
			t.Errorf("minnow folded stacks missing %q:\n%s", frag, folded)
		}
	}
}

// TestProfileStableAcrossJobs pins that the rendered artifacts are
// per-run private state: byte-identical folded stacks and pprof bytes
// whatever the worker-pool width, plus a golden-file pin on the folded
// rendering for a fixed tiny configuration. Regenerate with
// `go test ./internal/harness -run ProfileStable -update` and review.
func TestProfileStableAcrossJobs(t *testing.T) {
	o := obsOpts()
	o.Profile = true
	o.WorkBudget = 60 // keep the golden file reviewable
	o.SkipVerify = true
	jobs := []Job{
		{Bench: "SSSP", Opts: o},
		{Bench: "CC", Opts: o},
		{Bench: "SSSP", Opts: o},
	}
	serial := RunJobs(jobs, 1)
	wide := RunJobs(jobs, 3)
	for i := range jobs {
		if serial[i].Err != nil || wide[i].Err != nil {
			t.Fatalf("job %d: %v / %v", i, serial[i].Err, wide[i].Err)
		}
		if serial[i].Run.Profile.Folded() != wide[i].Run.Profile.Folded() {
			t.Fatalf("job %d folded stacks differ between -jobs 1 and -jobs 3", i)
		}
		if !bytes.Equal(serial[i].Run.Profile.Pprof(), wide[i].Run.Profile.Pprof()) {
			t.Fatalf("job %d pprof bytes differ between -jobs 1 and -jobs 3", i)
		}
	}

	got := []byte(serial[0].Run.Profile.Folded())
	path := filepath.Join("testdata", "folded.golden.txt")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("folded stacks drifted from golden file; rerun with -update and review:\n%s", got)
	}
}
