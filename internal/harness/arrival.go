package harness

import (
	"fmt"

	"minnow/internal/arrival"
	"minnow/internal/galois"
	"minnow/internal/kernels"
	"minnow/internal/obs"
	"minnow/internal/sim"
	"minnow/internal/stats"
)

// arrivalActor is the open-loop injection actor: it holds the plan's
// pre-materialized event schedule and, as a simulation actor, steps at
// each scheduled arrival cycle to construct the task (at the kernel's
// *current* state — the step weaves, serialized against every operator
// application), stamp its birth cycle and class, and deposit it into a
// worker's pending buffer through the runner's conservation-counted
// path. It then wakes the workers so retired (drained-out) workers
// resume polling. The actor exists only when Options.Arrivals is armed;
// closed-loop runs never construct it, which is what keeps them
// byte-identical to a build without the arrival layer.
type arrivalActor struct {
	plan   *arrival.Plan
	events []arrival.Event
	kern   kernels.Arrivable
	runner *galois.Runner
	rec    *galois.LatencyRecorder

	next      int     // index of the first undelivered event
	delivered int64   // events handed to the runner so far
	perClass  []int64 // delivered, by class index

	// wakeWorkers re-arms every worker actor at the arrival instant (the
	// sim.Engine wake-during-step contract re-schedules done actors).
	// Installed by the harness after worker registration.
	wakeWorkers func(at sim.Time)

	// Timeline wiring (nil/zero when the timeline is off; obs entry
	// points are nil-receiver-safe).
	tl    *obs.Timeline
	track obs.TrackID
}

// newArrivalActor materializes the plan's schedule against the kernel.
func newArrivalActor(plan *arrival.Plan, kern kernels.Arrivable, nodes int32) (*arrivalActor, error) {
	events, err := plan.Schedule(nodes)
	if err != nil {
		return nil, err
	}
	return &arrivalActor{
		plan:     plan,
		events:   events,
		kern:     kern,
		perClass: make([]int64, len(plan.Classes)),
	}, nil
}

// Step implements sim.Actor: deliver every event scheduled at the
// current instant, then sleep until the next one. The actor never
// implements sim.BoundedActor, so its steps always weave — task
// construction reads live kernel state and Deposit mutates shared
// runner counters, both of which the weave serializes against worker
// steps.
func (a *arrivalActor) Step() (sim.Time, bool) {
	at := sim.Time(a.events[a.next].At)
	for a.next < len(a.events) && sim.Time(a.events[a.next].At) <= at {
		ev := a.events[a.next]
		t := a.kern.ArrivalTask(ev.Node)
		t.Birth = ev.At
		t.Class = ev.Class + 1
		a.runner.Deposit(int(a.delivered%int64(len(a.runner.Workers()))), t)
		a.perClass[ev.Class]++
		a.delivered++
		a.next++
		a.tl.Instant(a.track, obs.EvArrival, at, int64(ev.Node))
	}
	a.wakeWorkers(at)
	if a.next >= len(a.events) {
		return at, true
	}
	return sim.Time(a.events[a.next].At), false
}

// Delivered returns how many scheduled arrivals were handed to the
// runner.
func (a *arrivalActor) Delivered() int64 { return a.delivered }

// Total returns the schedule length.
func (a *arrivalActor) Total() int64 { return int64(len(a.events)) }

// Pending returns how many scheduled arrivals are still in the future —
// work the watchdog must count as queued even while the machine is
// quiet.
func (a *arrivalActor) Pending() int64 { return int64(len(a.events) - a.next) }

// buildArrivals validates and materializes the arrival layer for one
// run: kernels whose operator is not re-entrant cannot accept mid-run
// arrivals and are rejected up front with the offending benchmark
// named.
func buildArrivals(spec kernels.Spec, kern kernels.Kernel, o Options) (*arrivalActor, error) {
	if o.Arrivals == nil {
		return nil, nil
	}
	ak, ok := kern.(kernels.Arrivable)
	if !ok {
		return nil, fmt.Errorf("harness: %s does not support open-loop arrivals (its operator visits each node exactly once and is not re-entrant)", spec.Name)
	}
	arr, err := newArrivalActor(o.Arrivals, ak, int32(kern.Graph().N))
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	return arr, nil
}

// latencyStats assembles the per-class latency percentiles from the
// recorder's samples: injected counts come from the injector (scheduled
// deliveries), retired counts from the completed-sojourn sample sets.
func (a *arrivalActor) latencyStats() *stats.LatencyStats {
	ls := &stats.LatencyStats{
		Injected: a.runner.Injected(),
		Retired:  a.runner.Retired(),
	}
	names := a.plan.ClassNames()
	for i := range a.plan.Classes {
		waits := a.rec.Waits(i)
		soj := a.rec.Sojourns(i)
		ls.Classes = append(ls.Classes, stats.ClassLatency{
			Class:      names[i],
			Injected:   a.perClass[i],
			Retired:    int64(len(soj)),
			WaitP50:    stats.Percentile(waits, 50),
			WaitP95:    stats.Percentile(waits, 95),
			WaitP99:    stats.Percentile(waits, 99),
			SojournP50: stats.Percentile(soj, 50),
			SojournP95: stats.Percentile(soj, 95),
			SojournP99: stats.Percentile(soj, 99),
		})
	}
	return ls
}
