package harness

import (
	"fmt"
	"strconv"

	"minnow/internal/arrival"
	"minnow/internal/obs"
	"minnow/internal/stats"
)

// tsInterval is the sampling interval the time-resolved figures use: wide
// enough that scale-1 runs still get a handful of rows, narrow enough
// that the paper-scale sweeps resolve the occupancy ramp.
const tsInterval = 25_000

// tsRuns executes one benchmark under the software-OBIM baseline and the
// full Minnow configuration (engines + worklist-directed prefetching)
// with interval sampling on, honoring the figure worker pool.
func tsRuns(f FigOptions, bench string) (base, minnow *obs.Registry, err error) {
	ob := f.base()
	ob.MetricsEvery = tsInterval
	mn := f.base()
	mn.MetricsEvery = tsInterval
	mn.Scheduler = "minnow"
	mn.Prefetch = true
	runs, err := f.runAll([]Job{{Bench: bench, Opts: ob}, {Bench: bench, Opts: mn}})
	if err != nil {
		return nil, nil, err
	}
	return runs[0].Intervals, runs[1].Intervals, nil
}

// colIndex locates a registry column by name (-1 when absent, e.g. the
// engine columns on a software-scheduler run).
func colIndex(r *obs.Registry, name string) int {
	for i, h := range r.Header() {
		if h == name {
			return i
		}
	}
	return -1
}

// tsCell formats one sampled value, or "-" past the end of a run.
func tsCell(r *obs.Registry, row, col int) string {
	if row >= r.Len() || col < 0 {
		return "-"
	}
	_, vals := r.Row(row)
	return stats.FormatFloat(vals[col])
}

// tsTable assembles a two-configuration time-series comparison for one
// sampled column. Rows are indexed by interval; the shorter run pads with
// "-" once it has terminated (Minnow typically finishes first, which is
// itself the figure's point).
func tsTable(title, column string, base, minnow *obs.Registry) *stats.Table {
	t := &stats.Table{
		Title:   title,
		Headers: []string{"cycle", "obim", "minnow+pf"},
	}
	n := base.Len()
	if minnow.Len() > n {
		n = minnow.Len()
	}
	bi, mi := colIndex(base, column), colIndex(minnow, column)
	for row := 0; row < n; row++ {
		var stamp int64
		if row < base.Len() {
			s, _ := base.Row(row)
			stamp = int64(s)
		} else {
			s, _ := minnow.Row(row)
			stamp = int64(s)
		}
		t.AddRow(strconv.FormatInt(stamp, 10), tsCell(base, row, bi), tsCell(minnow, row, mi))
	}
	return t
}

// FigOccupancy regenerates the paper's worklist-occupancy-over-time view
// (Fig. 2): tasks queued anywhere in the scheduling fabric, sampled every
// tsInterval cycles, for the OBIM baseline vs Minnow with prefetching on
// the SSSP workload.
func FigOccupancy(f FigOptions) (*stats.Table, error) {
	base, minnow, err := tsRuns(f, "SSSP")
	if err != nil {
		return nil, err
	}
	return tsTable("Fig 2-style: SSSP worklist occupancy over time (tasks queued)",
		"occupancy", base, minnow), nil
}

// FigIntervalMPKI regenerates the time-resolved L2 miss-rate view behind
// the paper's prefetching results (Fig. 13): interval demand L2 MPKI for
// the OBIM baseline vs Minnow with worklist-directed prefetching, showing
// the miss rate collapsing once prefetched lines arrive ahead of the
// consuming tasks.
func FigIntervalMPKI(f FigOptions) (*stats.Table, error) {
	base, minnow, err := tsRuns(f, "SSSP")
	if err != nil {
		return nil, err
	}
	return tsTable("Fig 13-style: SSSP interval demand L2 MPKI over time",
		"l2_mpki", base, minnow), nil
}

// sojournGaps are the FigSojourn offered-load sweep points: mean Poisson
// inter-arrival gaps in cycles, densest (highest load) last so the
// latency knee sits at the bottom of the table.
var sojournGaps = []int64{5000, 2000, 1000, 600, 400}
var sojournGapsQuick = []int64{2000, 600}

// FigSojourn renders the open-loop latency view the paper's closed-loop
// evaluation cannot show: sojourn and queue-wait percentiles versus
// offered load on SSSP under the full Minnow configuration. Sweeping the
// mean Poisson inter-arrival gap from sparse to dense exposes the
// latency knee — the load beyond which arrival tasks queue faster than
// the machine retires them and the percentiles take off.
func FigSojourn(f FigOptions) (*stats.Table, error) {
	gaps := sojournGaps
	count := int64(256)
	if f.Quick {
		gaps = sojournGapsQuick
		count = 96
	}
	var jobs []Job
	for _, gap := range gaps {
		o := f.base()
		o.Scheduler = "minnow"
		o.Prefetch = true
		plan, err := arrival.ParsePlan(fmt.Sprintf("seed=1;poisson:gap=%d,count=%d", gap, count))
		if err != nil {
			return nil, err
		}
		o.Arrivals = plan
		jobs = append(jobs, Job{Bench: "SSSP", Opts: o})
	}
	runs, err := f.runAll(jobs)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title: "Open-loop SSSP latency vs offered load (Minnow+pf, Poisson arrivals)",
		Headers: []string{"mean gap (cyc)", "injected", "retired",
			"wait p50", "wait p95", "wait p99",
			"sojourn p50", "sojourn p95", "sojourn p99"},
	}
	for i, r := range runs {
		l := r.Latency
		if l == nil || len(l.Classes) == 0 {
			return nil, fmt.Errorf("harness: sojourn figure: run with gap=%d reported no latency stats", gaps[i])
		}
		c := l.Classes[0]
		t.AddRow(strconv.FormatInt(gaps[i], 10),
			strconv.FormatInt(c.Injected, 10), strconv.FormatInt(c.Retired, 10),
			strconv.FormatInt(c.WaitP50, 10), strconv.FormatInt(c.WaitP95, 10), strconv.FormatInt(c.WaitP99, 10),
			strconv.FormatInt(c.SojournP50, 10), strconv.FormatInt(c.SojournP95, 10), strconv.FormatInt(c.SojournP99, 10))
	}
	return t, nil
}
