package harness

import (
	"testing"

	"minnow/internal/graph"
	"minnow/internal/kernels"
)

// Edge cases and failure injection: degenerate inputs, starved
// configurations, and hostile parameter combinations must terminate and
// verify (or fail loudly), never hang.

func TestMoreThreadsThanWork(t *testing.T) {
	// 64 threads on the tiny TC input: most workers never see a task.
	spec, _ := kernels.SpecByName("TC")
	r, err := Run(spec, Options{Threads: 64, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if r.WorkItems == 0 {
		t.Fatal("no work executed")
	}
}

func TestSingleTaskBudget(t *testing.T) {
	spec, _ := kernels.SpecByName("SSSP")
	r, err := Run(spec, Options{Threads: 4, Seed: 42, WorkBudget: 1, SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.TimedOut || r.WorkItems != 1 {
		t.Fatalf("budget=1 run: timedOut=%v items=%d", r.TimedOut, r.WorkItems)
	}
}

func TestMinnowWithOneThread(t *testing.T) {
	// Engine offload must also work degenerate-serially.
	spec, _ := kernels.SpecByName("BC")
	r, err := Run(spec, Options{Threads: 1, Seed: 42, Scheduler: "minnow", Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.WallCycles == 0 {
		t.Fatal("empty run")
	}
}

func TestEngineSharingAcrossOddGroups(t *testing.T) {
	// 5 threads with 2-way sharing: groups of 2,2,1.
	spec, _ := kernels.SpecByName("CC")
	r, err := Run(spec, Options{Threads: 5, Seed: 42, Scheduler: "minnow", Prefetch: true, EngineSharing: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Engines) != 3 {
		t.Fatalf("engines %d, want 3", len(r.Engines))
	}
}

func TestTinyEngineStructures(t *testing.T) {
	// Hostile engine sizing: everything minimal, still must drain.
	spec, _ := kernels.SpecByName("SSSP")
	r, err := Run(spec, Options{
		Threads: 4, Seed: 42, Scheduler: "minnow", Prefetch: true,
		EngineLocalQ: 2, EngineLoadBuf: 1, EngineSpillBatch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.WorkItems == 0 {
		t.Fatal("no work")
	}
}

func TestOneMemoryChannel(t *testing.T) {
	spec, _ := kernels.SpecByName("BFS")
	if _, err := Run(spec, Options{Threads: 4, Seed: 42, MemChannels: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestCreditsOne(t *testing.T) {
	// A single prefetch credit: the throttle is maximally tight but must
	// not deadlock the engine.
	spec, _ := kernels.SpecByName("CC")
	r, err := Run(spec, Options{Threads: 4, Seed: 42, Scheduler: "minnow", Prefetch: true, Credits: 1})
	if err != nil {
		t.Fatal(err)
	}
	var pf int64
	for _, e := range r.Engines {
		pf += e.Prefetches
	}
	if pf == 0 {
		t.Fatal("one credit prevented all prefetching")
	}
}

func TestAllBenchmarksAtTwoSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep")
	}
	for _, spec := range kernels.Suite() {
		for _, seed := range []uint64{1, 99} {
			o := Options{Threads: 4, Seed: seed, Scheduler: "minnow", Prefetch: true, SplitThreshold: 2048}
			if _, err := Run(spec, o); err != nil {
				t.Fatalf("%s seed %d: %v", spec.Name, seed, err)
			}
		}
	}
}

func TestTracingDoesNotChangeTiming(t *testing.T) {
	spec, _ := kernels.SpecByName("BC")
	a, err := Run(spec, Options{Threads: 4, Seed: 42, Scheduler: "minnow", Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, Options{Threads: 4, Seed: 42, Scheduler: "minnow", Prefetch: true, TraceEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	if a.WallCycles != b.WallCycles {
		t.Fatalf("tracing perturbed the simulation: %d vs %d", a.WallCycles, b.WallCycles)
	}
	if b.Trace == nil || b.Trace.Total() == 0 {
		t.Fatal("no trace recorded")
	}
}

func TestCustomGraphThroughKernels(t *testing.T) {
	// A hand-built two-component graph exercised through the SSSP kernel
	// (unreachable nodes keep the sentinel distance). The kernel binds
	// its addresses from the harness's own address space.
	var k *kernels.SSSP
	spec := kernels.Spec{
		Name: "SSSP",
		Build: func(_ int, _ uint64, as *graph.AddrSpace, cores int) kernels.Kernel {
			b := graph.NewBuilder(4, true)
			b.AddUndirectedWeighted(0, 1, 3)
			// nodes 2,3 disconnected from the source component
			b.AddUndirectedWeighted(2, 3, 5)
			g := b.Build("two-islands")
			g.Bind(as, false)
			k = kernels.NewSSSP(g, 0, as, cores)
			return k
		},
	}
	if _, err := Run(spec, Options{Threads: 1, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	d := k.Dist()
	if d[1] != 3 {
		t.Fatalf("dist[1] = %d", d[1])
	}
	if d[2] < 1<<40 || d[3] < 1<<40 {
		t.Fatalf("disconnected nodes reached: %v", d)
	}
}
