package harness

import (
	"testing"
)

// sweepJobs is a small grid mixing schedulers and thread counts.
func sweepJobs() []Job {
	var jobs []Job
	for _, bench := range []string{"SSSP", "CC"} {
		for _, sched := range []string{"obim", "minnow"} {
			o := small(4)
			o.Scheduler = sched
			if sched == "minnow" {
				o.Prefetch = true
			}
			jobs = append(jobs, Job{Bench: bench, Opts: o})
		}
	}
	return jobs
}

// TestRunJobsParallelMatchesSerial proves the worker pool changes neither
// results nor their order: every summary from a jobs=4 pool must be
// byte-identical to the jobs=1 serial baseline.
func TestRunJobsParallelMatchesSerial(t *testing.T) {
	jobs := sweepJobs()
	serial := RunJobs(jobs, 1)
	parallel := RunJobs(jobs, 4)
	if len(serial) != len(jobs) || len(parallel) != len(jobs) {
		t.Fatalf("result count: serial %d, parallel %d, want %d", len(serial), len(parallel), len(jobs))
	}
	for i := range jobs {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d errors: serial %v, parallel %v", i, serial[i].Err, parallel[i].Err)
		}
		sj, pj := serial[i].Run.Summary().JSON(), parallel[i].Run.Summary().JSON()
		if string(sj) != string(pj) {
			t.Errorf("job %d (%s/%s): parallel summary differs from serial\nserial:   %s\nparallel: %s",
				i, jobs[i].Bench, jobs[i].Opts.Scheduler, sj, pj)
		}
	}
}

func TestRunJobsBadBench(t *testing.T) {
	res := RunJobs([]Job{{Bench: "NOPE", Opts: small(2)}}, 2)
	if res[0].Err == nil {
		t.Fatal("unknown benchmark did not error")
	}
}

// TestVerifyDeterminism covers the acceptance grid: three benchmarks ×
// {obim, minnow+prefetch}, each run twice, with zero mismatches allowed.
func TestVerifyDeterminism(t *testing.T) {
	var jobs []Job
	for _, bench := range []string{"SSSP", "CC", "TC"} {
		for _, sched := range []string{"obim", "minnow"} {
			o := small(4)
			o.Scheduler = sched
			if sched == "minnow" {
				o.Prefetch = true
			}
			jobs = append(jobs, Job{Bench: bench, Opts: o})
		}
	}
	reports, err := VerifyDeterminism(jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if !rep.OK() {
			t.Errorf("%s/%s nondeterministic: %v", rep.Job.Bench, rep.Job.Opts.Scheduler, rep.Mismatches)
		}
		if rep.Hash == "" {
			t.Errorf("%s/%s: empty stats hash", rep.Job.Bench, rep.Job.Opts.Scheduler)
		}
	}
}

// TestRunPlumbsStepAndWritebackCounters guards the new Run fields the
// determinism hash depends on.
func TestRunPlumbsStepAndWritebackCounters(t *testing.T) {
	res := RunJobs([]Job{{Bench: "SSSP", Opts: small(4)}}, 1)
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	r := res[0].Run
	if r.SimSteps <= 0 {
		t.Fatalf("SimSteps = %d, want > 0", r.SimSteps)
	}
	if r.L2.Writebacks <= 0 {
		t.Fatalf("L2 writebacks = %d, want > 0 (dropped on the floor again?)", r.L2.Writebacks)
	}
	if r.L3.Writebacks < 0 {
		t.Fatalf("L3 writebacks = %d", r.L3.Writebacks)
	}
}
