package harness

import (
	"testing"

	"minnow/internal/kernels"
)

// small returns options sized for fast tests.
func small(threads int) Options {
	return Options{Threads: threads, Scale: 1, Seed: 7}
}

func TestSmokeAllBenchmarksOBIM(t *testing.T) {
	for _, spec := range kernels.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			run, err := Run(spec, small(4))
			if err != nil {
				t.Fatal(err)
			}
			if run.WallCycles <= 0 {
				t.Fatalf("wall cycles = %d", run.WallCycles)
			}
			if run.WorkItems <= 0 {
				t.Fatalf("no work executed")
			}
			t.Logf("%s: %d cycles, %d tasks, L2 MPKI %.1f, delinq %.2f",
				spec.Name, run.WallCycles, run.WorkItems, run.L2MPKI(), run.DelinquentDensity())
		})
	}
}

func TestSmokeMinnow(t *testing.T) {
	for _, spec := range kernels.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			o := small(4)
			o.Scheduler = "minnow"
			o.Prefetch = true
			run, err := Run(spec, o)
			if err != nil {
				t.Fatal(err)
			}
			if run.WallCycles <= 0 || run.WorkItems <= 0 {
				t.Fatalf("empty run: %+v", run)
			}
			var pf int64
			for _, e := range run.Engines {
				pf += e.Prefetches
			}
			if pf == 0 {
				t.Fatalf("minnow issued no prefetches")
			}
			t.Logf("%s: %d cycles, %d tasks, %d prefetches, MPKI %.2f, eff %.3f",
				spec.Name, run.WallCycles, run.WorkItems, pf, run.L2MPKI(), run.L2.Efficiency())
		})
	}
}
