package harness

import (
	"fmt"

	"minnow/internal/core"
	"minnow/internal/cpu"
	"minnow/internal/fault"
	"minnow/internal/galois"
	"minnow/internal/mem"
	"minnow/internal/obs"
	"minnow/internal/sim"
	"minnow/internal/worklist"
)

// timelineCounterEvery is the counter-track sampling interval used when
// the timeline is enabled without an explicit MetricsEvery.
const timelineCounterEvery = 5000

// observer bundles the per-run observability state the harness wires
// between component construction and the simulation loop.
type observer struct {
	tl  *obs.Timeline
	reg *obs.Registry
	// onSample is the live-inspector feed (Options.OnSample): called at
	// each crossed sampling boundary with the registry's freshest row
	// rendered as Prometheus text.
	onSample func(cycles int64, metrics string)
}

// buildObserver constructs the timeline and sampling registry selected by
// the options and attaches the timeline hooks to cores, workers, engines,
// and the memory system. It must run after every component exists and
// before the first actor steps.
//
// Everything registered here observes only: the closures read counters
// and queue lengths, never mutate them, which is what keeps RunSummary
// byte-identical (and wall cycles and event-loop steps unchanged) whether
// observability is on or off — the contract the obs harness tests pin.
func buildObserver(o Options, cores []*cpu.Core, workers []*galois.Worker,
	engines []*core.Engine, gwl *core.GlobalWL, swWL worklist.Worklist, msys *mem.System,
	inj *fault.Injector, arr *arrivalActor) *observer {

	ob := &observer{}
	if o.Timeline {
		tl := obs.NewTimeline()
		for i, c := range cores {
			track := tl.AddTrack(fmt.Sprintf("core %d", i))
			c.TL, c.Track = tl, track
			workers[i].TL, workers[i].Track = tl, track
		}
		for _, e := range engines {
			e.TL = tl
			e.Track = tl.AddTrack(fmt.Sprintf("engine %d", e.CoreID))
		}
		msys.TL = tl
		msys.MemTrack = tl.AddTrack("memory")
		if arr != nil {
			// One instant per injection; added only when a plan is armed
			// so closed-loop timelines are byte-identical to pre-arrival
			// output.
			arr.tl = tl
			arr.track = tl.AddTrack("arrivals")
		}
		ob.tl = tl
	}
	if o.MetricsEvery > 0 {
		ob.reg = obs.NewRegistry(sim.Time(o.MetricsEvery))
		ob.registerColumns(cores, engines, gwl, swWL, msys, inj, arr)
		ob.onSample = o.OnSample
	}
	return ob
}

// injectedFaults returns the cumulative injected-fault tally for the
// registry column and timeline counter track.
func injectedFaults(inj *fault.Injector) int64 {
	s := inj.Stats
	return s.EngineStalls + s.NoCDelays + s.DRAMRetries + s.SpillRetries +
		s.CreditsLost + s.EnginesOffline
}

// occupancyFn returns the worklist-occupancy gauge: tasks queued anywhere
// in the scheduling fabric — the software worklist for OBIM/FIFO/LIFO/
// strictpq runs, or the global worklist plus every engine's local and
// spill queues for Minnow runs (the paper's Fig. 2 occupancy).
func occupancyFn(engines []*core.Engine, gwl *core.GlobalWL, swWL worklist.Worklist) func() int64 {
	if gwl != nil {
		return func() int64 {
			n := int64(gwl.Len())
			for _, e := range engines {
				n += e.QueuedTasks()
			}
			if swWL != nil { // engine-offline failover worklist
				n += int64(swWL.Len())
			}
			return n
		}
	}
	if swWL != nil {
		return func() int64 { return int64(swWL.Len()) }
	}
	return func() int64 { return 0 }
}

// registerColumns wires the paper's time-resolved metrics: per-core IPC,
// worklist occupancy, interval L2/L3 MPKI, prefetch accuracy/coverage and
// lateness, the credit pool level, and NoC/DRAM activity.
func (ob *observer) registerColumns(cores []*cpu.Core, engines []*core.Engine,
	gwl *core.GlobalWL, swWL worklist.Worklist, msys *mem.System, inj *fault.Injector,
	arr *arrivalActor) {

	reg := ob.reg
	sumInstrs := func() int64 {
		var n int64
		for _, c := range cores {
			n += c.Stat.Instrs
		}
		return n
	}

	reg.Counter("tasks", func() int64 {
		var n int64
		for _, c := range cores {
			n += c.Stat.TasksRun
		}
		return n
	})
	reg.Gauge("occupancy", occupancyFn(engines, gwl, swWL))
	reg.Rate("l2_mpki", func() int64 { return msys.DemandL2Misses }, sumInstrs, 1000)
	reg.Rate("l3_mpki", func() int64 { return msys.L3Counters().Misses }, sumInstrs, 1000)
	reg.Rate("pf_accuracy",
		func() int64 { return msys.L2Counters().PrefetchUsed },
		func() int64 { return msys.L2Counters().PrefetchFills }, 1)
	reg.Rate("pf_coverage",
		func() int64 { return msys.L2Counters().PrefetchUsed },
		func() int64 { return msys.DemandL2Misses + msys.L2Counters().PrefetchUsed }, 1)
	if len(engines) > 0 {
		reg.Counter("pf_late_drops", func() int64 {
			var n int64
			for _, e := range engines {
				n += e.Stat.LateDrops
			}
			return n
		})
		reg.Gauge("credits", func() int64 {
			var n int64
			for _, e := range engines {
				n += int64(e.Credits())
			}
			return n
		})
		reg.Counter("credit_stalls", func() int64 {
			var n int64
			for _, e := range engines {
				n += e.Stat.CreditStalls
			}
			return n
		})
	}
	if inj != nil {
		// Registered only when a fault plan is armed, so fault-free CSVs
		// are byte-identical to pre-fault-layer output.
		reg.Counter("faults", func() int64 { return injectedFaults(inj) })
	}
	if arr != nil {
		// Registered only when an arrival plan is armed (same inertness
		// discipline as the fault column): cumulative injections give the
		// interval arrival rate, and the injected-minus-retired gauge is
		// the open-loop backlog.
		r := arr.runner
		reg.Counter("arrivals", r.Injected)
		reg.Gauge("arrival_backlog", func() int64 { return r.Injected() - r.Retired() })
	}
	reg.Counter("noc_flits", func() int64 { return msys.Mesh.Flits })
	reg.Counter("noc_stall", func() int64 { return msys.Mesh.StallCyc })
	reg.Counter("dram_acc", func() int64 { return msys.DRAM.Accesses })
	reg.Counter("dram_stall", func() int64 { return msys.DRAM.StallCyc })
	for i, c := range cores {
		c := c
		reg.Rate(fmt.Sprintf("ipc%d", i),
			func() int64 { return c.Stat.Instrs },
			func() int64 { return int64(c.Now()) }, 1)
	}
}

// install arms the simulation probe: at every crossed sampling boundary
// the registry snapshots one row and the timeline appends its counter
// tracks. With metrics off but the timeline on, counters sample at
// timelineCounterEvery.
func (ob *observer) install(eng *sim.Engine, engines []*core.Engine,
	gwl *core.GlobalWL, swWL worklist.Worklist, msys *mem.System, inj *fault.Injector,
	arr *arrivalActor) {

	every := ob.reg.Every()
	if every == 0 {
		if ob.tl == nil {
			return
		}
		every = timelineCounterEvery
	}
	occ := occupancyFn(engines, gwl, swWL)
	tl := ob.tl
	reg := ob.reg
	onSample := ob.onSample
	eng.SetProbe(every, func(at sim.Time) {
		reg.Sample(at)
		if onSample != nil {
			onSample(int64(at), reg.PromText())
		}
		if tl != nil {
			tl.Counter(obs.EvOccupancy, at, occ())
			tl.Counter(obs.EvNoCFlits, at, msys.Mesh.Flits)
			tl.Counter(obs.EvDRAMQueue, at, msys.DRAM.BusyChannels(at))
			if len(engines) > 0 {
				var cr int64
				for _, e := range engines {
					cr += int64(e.Credits())
				}
				tl.Counter(obs.EvCredits, at, cr)
			}
			if inj != nil {
				tl.Counter(obs.EvFaults, at, injectedFaults(inj))
			}
			if arr != nil {
				tl.Counter(obs.EvBacklog, at, arr.runner.Injected()-arr.runner.Retired())
			}
		}
	})
}
