package harness

import (
	"testing"

	"minnow/internal/kernels"
)

// TestSchedulerPolicies runs every scheduling policy on SSSP and BFS with a
// work budget, mirroring the Fig. 3 experiment: priority-insensitive
// policies (FIFO, LIFO) may time out; OBIM and strict-PQ must converge.
func TestSchedulerPolicies(t *testing.T) {
	for _, bench := range []string{"SSSP", "BFS"} {
		spec, _ := kernels.SpecByName(bench)
		for _, sched := range []string{"obim", "fifo", "lifo", "strictpq", "minnow"} {
			o := small(4)
			o.Scheduler = sched
			o.WorkBudget = 3_000_000
			o.SkipVerify = false
			r, err := Run(spec, o)
			if err != nil {
				t.Fatalf("%s/%s: %v", bench, sched, err)
			}
			t.Logf("%s/%-8s: wall=%d tasks=%d timedOut=%v", bench, sched, r.WallCycles, r.WorkItems, r.TimedOut)
		}
	}
}
