package harness

import (
	"fmt"

	"minnow/internal/core"
	"minnow/internal/stats"
)

// The ablation studies quantify the design choices the paper makes but
// does not sweep: §6.2.1's task splitting and socket sharding, §5.2's
// spill grouping and proactive refill, and §5.1's structure sizings
// (local queue, load buffer). Each returns a table in the same format as
// the figure functions and is reachable via `cmd/figures -only ablations`
// or the corresponding benchmark.

// AblationSplitting measures §6.2.1 task splitting on the hub-dominated
// G500 input (the paper's Amdahl's-law argument: one 27%-of-edges node
// caps unsplit speedup).
func AblationSplitting(f FigOptions) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Ablation: task splitting (G500's giant hub, §6.2.1)",
		Headers: []string{"split-threshold", "wall-cycles", "speedup", "tasks"},
	}
	thresholds := []int32{0, 16384, 2048, 512}
	var base int64
	for _, thr := range thresholds {
		o := f.base()
		o.Scheduler = "minnow"
		o.Prefetch = true
		o.SplitThreshold = thr
		r, err := runOrErr("G500", o)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = r.WallCycles
		}
		label := fmt.Sprintf("%d", thr)
		if thr == 0 {
			label = "off"
		}
		t.AddRow(label, r.WallCycles, float64(base)/float64(r.WallCycles), r.WorkItems)
	}
	return t, nil
}

// AblationSockets measures the §6.2.1 topology override: sharding the
// global worklist over 1 vs 2 vs 8 socket groups.
func AblationSockets(f FigOptions) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Ablation: worklist socket sharding (topology override, §6.2.1)",
		Headers: []string{"workload", "sockets-1", "sockets-2", "sockets-8"},
	}
	benches := []string{"SSSP", "CC"}
	sockets := []int{1, 2, 8}
	var jobs []Job
	for _, name := range benches {
		for _, s := range sockets {
			o := f.base()
			o.Sockets = s
			jobs = append(jobs, Job{Bench: name, Opts: o})
		}
	}
	runs, err := f.runAll(jobs)
	if err != nil {
		return nil, err
	}
	for i, name := range benches {
		w := runs[i*len(sockets) : (i+1)*len(sockets)]
		t.AddRow(name,
			1.0,
			float64(w[0].WallCycles)/float64(w[1].WallCycles),
			float64(w[0].WallCycles)/float64(w[2].WallCycles))
	}
	return t, nil
}

// AblationLocalQueue sweeps the Minnow local queue depth (§5.1 sizes it
// at 64): shallow queues force constant fills; deep queues hold stale
// priorities.
func AblationLocalQueue(f FigOptions) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Ablation: Minnow local queue depth (§5.1 default 64)",
		Headers: []string{"depth", "sssp-cycles", "sssp-tasks", "cc-cycles", "cc-tasks"},
	}
	depths := []int{8, 16, 64, 256}
	benches := []string{"SSSP", "CC"}
	var jobs []Job
	for _, depth := range depths {
		for _, name := range benches {
			o := f.base()
			o.Scheduler = "minnow"
			o.Prefetch = true
			o.EngineLocalQ = depth
			jobs = append(jobs, Job{Bench: name, Opts: o})
		}
	}
	runs, err := f.runAll(jobs)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, depth := range depths {
		row := []any{depth}
		for range benches {
			row = append(row, runs[k].WallCycles, runs[k].WorkItems)
			k++
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationLoadBuffer sweeps the engine's CAM load buffer (§5.1 default
// 32): it bounds the engine's memory-level parallelism and therefore how
// far prefetching can run ahead.
func AblationLoadBuffer(f FigOptions) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Ablation: engine load buffer entries (§5.1 default 32)",
		Headers: []string{"entries", "sssp-cycles", "speedup-vs-4", "mpki"},
	}
	var base int64
	for _, n := range []int{4, 8, 16, 32, 64} {
		o := f.base()
		o.Scheduler = "minnow"
		o.Prefetch = true
		o.EngineLoadBuf = n
		r, err := runOrErr("SSSP", o)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = r.WallCycles
		}
		t.AddRow(n, r.WallCycles, float64(base)/float64(r.WallCycles), r.L2MPKI())
	}
	return t, nil
}

// AblationSpillBatch measures §5.2's operation grouping ("several memory
// allocation and deallocation tasks may be grouped together"): spill
// threadlets carrying 1 vs 16 tasks per lock acquisition.
func AblationSpillBatch(f FigOptions) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Ablation: spill grouping (§5.2; tasks per spill threadlet)",
		Headers: []string{"batch", "cc-cycles", "speedup-vs-1"},
	}
	var base int64
	for _, n := range []int{1, 4, 16, 64} {
		o := f.base()
		o.Scheduler = "minnow"
		o.EngineSpillBatch = n
		r, err := runOrErr("CC", o)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = r.WallCycles
		}
		t.AddRow(n, r.WallCycles, float64(base)/float64(r.WallCycles))
	}
	return t, nil
}

// AblationSharedEngines evaluates §4's unexplored variant: "cores may
// share a single Minnow engine to reduce resources. This work focuses on
// cores with dedicated Minnow engines." Sharing halves/quarters the
// engine area but serializes the back-end across its cores.
func AblationSharedEngines(f FigOptions) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Ablation: cores per Minnow engine (§4: dedicated vs shared)",
		Headers: []string{"cores/engine", "sssp-cycles", "slowdown", "area-mm2/core@14nm"},
	}
	var base int64
	for _, share := range []int{1, 2, 4} {
		o := f.base()
		o.Scheduler = "minnow"
		o.Prefetch = true
		o.EngineSharing = share
		r, err := runOrErr("SSSP", o)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = r.WallCycles
		}
		area := core.Area(core.DefaultConfig(), 256*1024/64).Total14nm / float64(share)
		t.AddRow(share, r.WallCycles, float64(r.WallCycles)/float64(base), area)
	}
	return t, nil
}

// Ablations runs every ablation and concatenates the tables.
func Ablations(f FigOptions) (string, error) {
	fns := []func(FigOptions) (*stats.Table, error){
		AblationSplitting,
		AblationSockets,
		AblationLocalQueue,
		AblationLoadBuffer,
		AblationSpillBatch,
		AblationSharedEngines,
	}
	out := ""
	for _, fn := range fns {
		tb, err := fn(f)
		if err != nil {
			return out, err
		}
		out += tb.String() + "\n"
	}
	return out, nil
}
