package harness

import (
	"strings"
	"testing"

	"minnow/internal/fault"
	"minnow/internal/kernels"
)

// faultOpts returns obsOpts with a parsed fault plan attached.
func faultOpts(t *testing.T, plan string) Options {
	t.Helper()
	o := obsOpts()
	if plan != "" {
		p, err := fault.ParsePlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		o.Faults = p
	}
	return o
}

// TestFaultLayerInert is the subsystem's load-bearing contract: with no
// fault plan, arming the invariant checker and the watchdog must not
// change ANY deterministic output — same summary hash, same wall
// cycles, same event-loop step count as a plain run.
func TestFaultLayerInert(t *testing.T) {
	spec, err := kernels.SpecByName("SSSP")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(spec, obsOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := obsOpts()
	o.Invariants = true
	armed, err := Run(spec, o)
	if err != nil {
		t.Fatal(err)
	}
	if armed.WallCycles != plain.WallCycles {
		t.Fatalf("wall cycles %d with invariants, %d without", armed.WallCycles, plain.WallCycles)
	}
	if armed.SimSteps != plain.SimSteps {
		t.Fatalf("sim steps %d with invariants, %d without", armed.SimSteps, plain.SimSteps)
	}
	if a, b := armed.Summary().Hash(), plain.Summary().Hash(); a != b {
		t.Fatalf("summary hash changed with invariants armed:\n  armed %s\n  plain %s", a, b)
	}
	if plain.Faults != nil || armed.Faults != nil {
		t.Fatalf("fault stats populated on fault-free runs")
	}
}

// TestTransientFaultsReproducible runs the transient preset twice: the
// answer must still verify (Run errors on a wrong answer), fault
// counters must show the plan actually fired, and both runs must agree
// bit-for-bit.
func TestTransientFaultsReproducible(t *testing.T) {
	spec, err := kernels.SpecByName("SSSP")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(spec, faultOpts(t, "transient"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, faultOpts(t, "transient"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Faults == nil {
		t.Fatal("transient run recorded no fault stats")
	}
	fired := a.Faults.EngineStalls + a.Faults.NoCDelays + a.Faults.DRAMRetries +
		a.Faults.SpillRetries + a.Faults.CreditsLost
	if fired == 0 {
		t.Fatalf("transient plan injected nothing: %+v", a.Faults)
	}
	if a.Faults.EnginesOffline != 0 {
		t.Fatalf("transient plan took %d engines offline", a.Faults.EnginesOffline)
	}
	if x, y := a.Summary().Hash(), b.Summary().Hash(); x != y {
		t.Fatalf("same seed, same plan, different runs:\n  %s\n  %s", x, y)
	}
	if a.WallCycles != b.WallCycles || a.SimSteps != b.SimSteps {
		t.Fatalf("fault replay diverged: wall %d/%d steps %d/%d",
			a.WallCycles, b.WallCycles, a.SimSteps, b.SimSteps)
	}
	if *a.Faults != *b.Faults {
		t.Fatalf("fault stats diverged:\n  %+v\n  %+v", a.Faults, b.Faults)
	}
}

// TestEngineOfflineFailover kills every engine mid-run and checks the
// cores converge on the software fallback with a verified answer.
func TestEngineOfflineFailover(t *testing.T) {
	spec, err := kernels.SpecByName("BFS")
	if err != nil {
		t.Fatal(err)
	}
	o := faultOpts(t, "offline")
	o.Invariants = true
	run, err := Run(spec, o)
	if err != nil {
		t.Fatal(err)
	}
	if run.Faults == nil || run.Faults.EnginesOffline == 0 {
		t.Fatalf("offline plan killed no engines: %+v", run.Faults)
	}
	if run.WorkItems <= 0 {
		t.Fatal("no work completed after failover")
	}
}

// TestWatchdogMaxCycles arms a far-too-small cycle budget and checks the
// run halts with a diagnostic snapshot instead of spinning.
func TestWatchdogMaxCycles(t *testing.T) {
	spec, err := kernels.SpecByName("SSSP")
	if err != nil {
		t.Fatal(err)
	}
	o := obsOpts()
	o.Invariants = true
	o.MaxCycles = 1000
	_, err = Run(spec, o)
	if err == nil {
		t.Fatal("1000-cycle budget did not trip the watchdog")
	}
	msg := err.Error()
	if !strings.Contains(msg, "halted by watchdog") {
		t.Fatalf("watchdog error missing cause: %v", err)
	}
	// The snapshot must carry actionable state: the reason line and the
	// scheduler queue dump.
	for _, want := range []string{"cycle budget exceeded", "time=", "actors"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, msg)
		}
	}
}

// TestRunJobsRecoversPanics injects a config that panics deep inside
// setup (negative DRAM channel count) between two healthy jobs and
// checks the pool survives: the poisoned job reports a stack-bearing
// error, its neighbors complete normally.
func TestRunJobsRecoversPanics(t *testing.T) {
	spec := "SSSP"
	good := small(2)
	bad := small(2)
	bad.MemChannels = -5 // withDefaults only replaces 0; dram.New panics
	results := RunJobs([]Job{
		{Bench: spec, Opts: good},
		{Bench: spec, Opts: bad},
		{Bench: spec, Opts: good},
	}, 2)
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy jobs poisoned: %v / %v", results[0].Err, results[2].Err)
	}
	if results[0].Run == nil || results[2].Run == nil {
		t.Fatal("healthy jobs returned no run")
	}
	err := results[1].Err
	if err == nil {
		t.Fatal("panicking job reported success")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic not flagged: %v", err)
	}
	if !strings.Contains(err.Error(), "goroutine") {
		t.Fatalf("panic error carries no stack trace: %v", err)
	}
}

// TestChaosCellPostChecks runs one transient chaos cell end to end via
// the exported sweep entry point at minimum size.
func TestChaosSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is slow")
	}
	rep := Chaos(small(2), 0)
	if len(rep.Failed()) > 0 {
		t.Fatalf("chaos sweep failed:\n%s\n%v", rep.String(), rep.Err())
	}
	if len(rep.Cells) != len(chaosBenches)*len(chaosPresets) {
		t.Fatalf("chaos sweep ran %d cells, want %d", len(rep.Cells), len(chaosBenches)*len(chaosPresets))
	}
}
