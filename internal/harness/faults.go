package harness

import (
	"fmt"
	"strings"

	"minnow/internal/core"
	"minnow/internal/fault"
	"minnow/internal/galois"
	"minnow/internal/mem"
	"minnow/internal/sim"
	"minnow/internal/stats"
	"minnow/internal/worklist"
)

// watchdogEvery is how many actor steps pass between watchdog polls. The
// poll is read-only, so the interval trades detection latency against
// nothing but the (tiny) polling overhead.
const watchdogEvery = 1 << 16

// progressStrikes is how many consecutive polls may observe zero new
// operator applications before the run is declared livelocked. Idle
// tails between applications are orders of magnitude shorter than
// progressStrikes*watchdogEvery steps, so false positives would require
// a genuinely wedged scheduler.
const progressStrikes = 64

// watchdog carries the liveness-poll state installed on the event loop
// and, after a halt, the reason the poll fired.
type watchdog struct {
	reason      string
	lastApplied int64
	strikes     int
}

// installWatchdog arms the event loop's liveness guard. The cycle-budget
// arm is always on (MaxCycles defaults high enough that healthy runs
// never trip it); the no-progress arm — operator applications stagnant
// across progressStrikes consecutive polls — engages only for fault or
// invariant runs, where injected stalls make livelock a real outcome.
// The poll only reads simulator state, so arming it never perturbs a
// run.
//
// Open-loop runs add a wrinkle: a sparse arrival plan ("trickle") can
// leave the machine legitimately quiet between a drained frontier and
// the next scheduled injection, which is not livelock — the injection
// actor still holds queued work. Pending future arrivals therefore
// reset the no-progress strikes; the MaxCycles arm remains the backstop
// against a plan whose tail never materializes.
func installWatchdog(eng *sim.Engine, o Options, inj *fault.Injector, runner *galois.Runner, arr *arrivalActor) *watchdog {
	wd := &watchdog{lastApplied: -1}
	if o.Cancel != nil {
		// The cooperative cancellation hook rides the same read-only
		// polling cadence; a run it never fires on is byte-identical to
		// one without it.
		eng.SetCancel(watchdogEvery, o.Cancel)
	}
	progress := o.Invariants || inj != nil
	eng.SetWatchdog(watchdogEvery, func() bool {
		if int64(eng.Now()) > o.MaxCycles {
			wd.reason = fmt.Sprintf("cycle budget exceeded: t=%d > max %d", eng.Now(), o.MaxCycles)
			return true
		}
		if !progress {
			return false
		}
		a := runner.Applied()
		if a != wd.lastApplied {
			wd.lastApplied, wd.strikes = a, 0
			return false
		}
		if arr != nil && arr.Pending() > 0 {
			// Quiet gap before a scheduled future arrival: the injection
			// actor's undelivered events are queued work, not livelock.
			wd.strikes = 0
			return false
		}
		wd.strikes++
		if wd.strikes >= progressStrikes {
			wd.reason = fmt.Sprintf("no progress: stuck at %d operator applications for %d steps",
				a, int64(progressStrikes)*watchdogEvery)
			return true
		}
		return false
	})
	return wd
}

// collectSnapshot assembles the diagnostic dump embedded in a watchdog
// error: per-actor clocks, worklist occupancy, per-engine state, and the
// memory system's outstanding-transaction counters.
func collectSnapshot(reason string, eng *sim.Engine, runner *galois.Runner,
	engines []*core.Engine, gwl *core.GlobalWL, swWL worklist.Worklist,
	msys *mem.System, inj *fault.Injector) *fault.Snapshot {

	s := &fault.Snapshot{
		Reason:       reason,
		Now:          int64(eng.Now()),
		Steps:        eng.Steps(),
		Applied:      runner.Applied(),
		Outstanding:  runner.Outstanding(),
		Occupancy:    occupancyFn(engines, gwl, swWL)(),
		NoCStallCyc:  msys.Mesh.StallCyc,
		DRAMStallCyc: msys.DRAM.StallCyc,
		DRAMBusy:     int(msys.DRAM.BusyChannels(eng.Now())),
	}
	for _, q := range eng.Queued() {
		s.Actors = append(s.Actors, fault.ActorState{ID: q.ID, At: int64(q.At)})
	}
	for _, e := range engines {
		s.Engines = append(s.Engines, fault.EngineState{
			Core:    e.CoreID,
			Clock:   int64(e.Clock()),
			Queued:  e.QueuedTasks(),
			Offline: e.Offline(),
		})
	}
	if inj != nil {
		fs := inj.Stats
		s.Faults = &fs
	}
	return s
}

// checkInvariants audits post-run sanity: task conservation (nothing
// queued or outstanding after a clean drain, each Conserved worklist
// balances its push/pop ledger, and every injected arrival was both
// delivered and retired), per-engine credit-pool accounting
// cross-checked against the L2s' actual marked lines, and the memory
// system's directory/counter invariants. It returns one message per
// violation, empty when clean.
func checkInvariants(o Options, drained bool, runner *galois.Runner,
	engines []*core.Engine, gwl *core.GlobalWL, swWL worklist.Worklist, msys *mem.System,
	arr *arrivalActor) []string {

	var v []string
	if drained && !runner.TimedOut() {
		if n := runner.Outstanding(); n != 0 {
			v = append(v, fmt.Sprintf("task conservation: run drained with %d tasks outstanding", n))
		}
		if occ := occupancyFn(engines, gwl, swWL)(); occ != 0 {
			v = append(v, fmt.Sprintf("task conservation: run drained with %d tasks still queued", occ))
		}
		if c, ok := swWL.(worklist.Conserved); ok {
			if pushed, popped := c.Pushed(), c.Popped(); pushed != popped+int64(swWL.Len()) {
				v = append(v, fmt.Sprintf("task conservation: %s pushed %d != popped %d + queued %d",
					swWL.Name(), pushed, popped, swWL.Len()))
			}
		}
		if arr != nil {
			// Arrival conservation: every scheduled event must have been
			// delivered (credited at birth) and every credited task must
			// have completed its operator application — a dropped injected
			// task fails here deterministically.
			if d, tot := arr.Delivered(), arr.Total(); d != tot {
				v = append(v, fmt.Sprintf("arrival conservation: delivered %d of %d scheduled arrivals", d, tot))
			}
			if inj, cred := arr.Delivered(), runner.Injected(); inj != cred {
				v = append(v, fmt.Sprintf("arrival conservation: injector delivered %d but runner credited %d", inj, cred))
			}
			if inj, ret := runner.Injected(), runner.Retired(); inj != ret {
				v = append(v, fmt.Sprintf("arrival conservation: %d tasks injected but only %d retired", inj, ret))
			}
		}
	}
	// Hardware prefetchers mark L2 lines outside the engine's credit
	// protocol, so the credit ledger is only checkable without them.
	if o.HWPrefetcher == "" {
		for i, e := range engines {
			if err := e.CheckCredits(); err != nil {
				v = append(v, fmt.Sprintf("engine %d: %v", i, err))
			}
			if e.Offline() {
				continue
			}
			if m, lines := e.MarkedOutstanding(), msys.PrefetchMarked(e.Cores()); m != lines {
				v = append(v, fmt.Sprintf("engine %d: credit ledger says %d marked lines but its L2s hold %d",
					i, m, lines))
			}
		}
	}
	return append(v, msys.CheckInvariants()...)
}

// chaosBenches and chaosPresets span the chaos sweep: every benchmark
// runs fault-free and under each canonical fault plan.
var chaosBenches = []string{"SSSP", "BFS", "CC"}
var chaosPresets = []string{"", "transient", "offline", "chaos"}

// ChaosCell is one benchmark x fault-plan outcome of the chaos sweep.
type ChaosCell struct {
	// Bench is the benchmark name.
	Bench string
	// Preset is the fault-plan preset ("" = fault-free baseline).
	Preset string
	// Hash is the run's deterministic summary fingerprint.
	Hash string
	// Faults holds the injected-fault counters (nil for the baseline).
	Faults *stats.FaultStats
	// Err is non-nil when the cell failed: a run error, an invariant
	// violation, cross-run nondeterminism, or a plan that injected
	// nothing.
	Err error
}

// ChaosReport aggregates the chaos sweep's cells.
type ChaosReport struct {
	// Cells holds one entry per benchmark x preset, in sweep order.
	Cells []ChaosCell
}

// Failed returns the cells that did not pass.
func (r *ChaosReport) Failed() []ChaosCell {
	var out []ChaosCell
	for _, c := range r.Cells {
		if c.Err != nil {
			out = append(out, c)
		}
	}
	return out
}

// String renders the report as an aligned text table.
func (r *ChaosReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-10s %-6s %-14s %s\n", "bench", "plan", "state", "hash", "detail")
	for _, c := range r.Cells {
		preset := c.Preset
		if preset == "" {
			preset = "(none)"
		}
		state, detail := "ok", ""
		if c.Err != nil {
			state, detail = "FAIL", c.Err.Error()
		} else if f := c.Faults; f != nil {
			detail = fmt.Sprintf("stalls=%d noc=%d dram=%d spill=%d credit-lost=%d offline=%d rescued=%d",
				f.EngineStalls, f.NoCDelays, f.DRAMRetries, f.SpillRetries,
				f.CreditsLost, f.EnginesOffline, f.Rescued)
		}
		hash := c.Hash
		if len(hash) > 12 {
			hash = hash[:12]
		}
		fmt.Fprintf(&b, "%-6s %-10s %-6s %-14s %s\n", c.Bench, preset, state, hash, detail)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Err returns an aggregate error naming every failed cell, nil when the
// whole sweep passed.
func (r *ChaosReport) Err() error {
	failed := r.Failed()
	if len(failed) == 0 {
		return nil
	}
	names := make([]string, len(failed))
	for i, c := range failed {
		names[i] = fmt.Sprintf("%s/%s", c.Bench, c.Preset)
	}
	return fmt.Errorf("chaos sweep: %d/%d cells failed: %s", len(failed), len(r.Cells), strings.Join(names, ", "))
}

// Chaos runs the fault-injection sweep: each benchmark under the Minnow
// scheduler, fault-free and under every canonical fault preset, with the
// invariant checker armed and every cell executed twice to prove
// seed-reproducibility. A cell passes when both runs complete, verify
// against the kernel's reference answer (so faulty runs converge to the
// same final answers as fault-free ones), hash identically, and — for
// fault plans — actually injected something. Per-cell failures are
// collected, not fatal, so one wedged cell cannot hide the rest.
func Chaos(base Options, workers int) *ChaosReport {
	var jobs []Job
	rep := &ChaosReport{}
	for _, bench := range chaosBenches {
		for _, preset := range chaosPresets {
			o := base
			o.Scheduler = "minnow"
			o.Prefetch = true
			o.Invariants = true
			cell := ChaosCell{Bench: bench, Preset: preset}
			if preset != "" {
				plan, err := fault.ParsePlan(preset)
				if err != nil {
					cell.Err = err
				} else {
					o.Faults = plan
				}
			}
			rep.Cells = append(rep.Cells, cell)
			// Each cell runs twice: identical hashes are the
			// reproducibility proof.
			jobs = append(jobs, Job{Bench: bench, Opts: o}, Job{Bench: bench, Opts: o})
		}
	}
	results := RunJobs(jobs, workers)
	for i := range rep.Cells {
		c := &rep.Cells[i]
		if c.Err != nil {
			continue
		}
		a, b := results[2*i], results[2*i+1]
		switch {
		case a.Err != nil:
			c.Err = a.Err
		case b.Err != nil:
			c.Err = fmt.Errorf("repeat run: %w", b.Err)
		default:
			c.Hash = a.Run.Summary().Hash()
			c.Faults = a.Run.Faults
			if hb := b.Run.Summary().Hash(); c.Hash != hb {
				c.Err = fmt.Errorf("nondeterministic under plan %q: %s != %s", c.Preset, c.Hash[:12], hb[:12])
			}
		}
		if c.Err != nil || c.Preset == "" {
			continue
		}
		f := c.Faults
		switch {
		case f == nil:
			c.Err = fmt.Errorf("plan %q recorded no fault stats", c.Preset)
		case (c.Preset == "offline" || c.Preset == "chaos") && f.EnginesOffline == 0:
			c.Err = fmt.Errorf("plan %q never took an engine offline (run shorter than the at= trigger?)", c.Preset)
		case c.Preset != "offline" && f.EngineStalls+f.NoCDelays+f.DRAMRetries+f.SpillRetries+f.CreditsLost == 0:
			c.Err = fmt.Errorf("plan %q injected nothing", c.Preset)
		}
	}
	return rep
}
