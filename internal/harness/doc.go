// Package harness assembles full simulated systems — memory hierarchy,
// cores, schedulers, Minnow engines — runs benchmarks, and produces the
// statistics every figure and table of the paper is derived from.
//
// The package splits by concern:
//
//   - harness.go builds one system from Options and runs it (Run);
//   - observe.go wires the obs package's timeline and sampling registry
//     into a run when Options.Timeline / Options.MetricsEvery ask for
//     them;
//   - parallel.go fans independent configurations over a worker pool
//     (RunJobs) and implements the determinism checker;
//   - figures.go and timeseries.go regenerate the paper's tables and
//     figures, including the time-resolved occupancy and interval-MPKI
//     views (Fig. 2 / Fig. 13 analogues);
//   - ablations.go holds the §6.4-style sensitivity sweeps.
//
// Determinism contract: each simulation is one goroutine owning all of
// its state; parallelism exists only across independent configurations,
// and results are consumed in submission order, so every figure is
// byte-identical for any worker count. Observability is opt-in and
// read-only — enabling it must not change wall cycles, step counts, or
// any RunSummary field (obs_test.go pins this).
package harness
