package harness

import (
	"fmt"

	"minnow/internal/prof"
	"minnow/internal/stats"
)

// FigCPIStack regenerates the Fig. 5 cycle breakdown through the
// top-down profiler: the same runs as Fig5, but each bar refined into
// stall cause × serving level, for the software baseline and the full
// Minnow+prefetch system side by side. Values are fractions of total
// core cycles, so each row sums to 1 (the profiler's conservation
// property).
func FigCPIStack(f FigOptions) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("cpistack: refined cycle attribution at %d threads (fraction of core cycles)", f.Threads),
		Headers: []string{"workload", "sched", "useful", "branch", "load-near", "load-L3",
			"load-remote", "load-DRAM", "store", "fence", "enqueue", "dequeue", "backpressure"},
	}
	scheds := []string{"obim", "minnow+pf"}
	var jobs []Job
	for _, name := range f.benchNames() {
		o := f.base()
		o.Profile = true
		om := o
		om.Scheduler = "minnow"
		om.Prefetch = true
		jobs = append(jobs, Job{Bench: name, Opts: o}, Job{Bench: name, Opts: om})
	}
	runs, err := f.runAll(jobs)
	if err != nil {
		return nil, err
	}
	for i, name := range f.benchNames() {
		for j, sched := range scheds {
			t.AddRow(cpiRow(name, sched, runs[2*i+j].Profile)...)
		}
	}
	return t, nil
}

// cpiRow folds one profile into the cpistack columns.
func cpiRow(name, sched string, p *prof.Profile) []any {
	var useful, branch, store, fence, enq, deq, bp float64
	loadBy := map[prof.Level]float64{}
	for _, l := range p.Leaves() {
		c := float64(l.Cycles)
		switch l.Cause {
		case prof.CauseUseful:
			useful += c
		case prof.CauseBranch:
			branch += c
		case prof.CauseLoad:
			loadBy[l.Level] += c
		case prof.CauseStore:
			store += c
		case prof.CauseFence:
			fence += c
		case prof.CauseEnqueue:
			enq += c
		case prof.CauseDequeue:
			deq += c
		case prof.CauseBackpressure:
			bp += c
		}
	}
	total := float64(p.Total())
	frac := func(v float64) float64 {
		if total == 0 {
			return 0
		}
		return v / total
	}
	loadNear := loadBy[prof.LvlNone] + loadBy[prof.LvlL1] + loadBy[prof.LvlL2]
	return []any{name, sched,
		frac(useful), frac(branch), frac(loadNear), frac(loadBy[prof.LvlL3]),
		frac(loadBy[prof.LvlRemote]), frac(loadBy[prof.LvlDRAM]),
		frac(store), frac(fence), frac(enq), frac(deq), frac(bp)}
}
