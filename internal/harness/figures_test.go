package harness

import (
	"strconv"
	"strings"
	"testing"

	"minnow/internal/kernels"
	"minnow/internal/stats"
)

// tiny trims the quick options further for unit-test latency.
func tiny() FigOptions {
	f := QuickFigOptions()
	f.Threads = 4
	return f
}

func TestTable1Complete(t *testing.T) {
	tb := Table1(tiny())
	if len(tb.Rows) != 7 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	s := tb.String()
	for _, name := range []string{"USA-road-d.W", "rmat16-2e22", "wiki-Talk"} {
		if !strings.Contains(s, name) {
			t.Fatalf("table1 missing %s:\n%s", name, s)
		}
	}
}

func TestTable3RendersConfig(t *testing.T) {
	s := Table3(tiny()).String()
	for _, frag := range []string{"TAGE", "8-way", "mesh", "localQ"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("table3 missing %q:\n%s", frag, s)
		}
	}
}

// TestFiguresJobsInvariant proves the worker pool does not change figure
// output: the rendered table (and its CSV form) must be byte-identical
// between a serial and a 4-wide parallel sweep.
func TestFiguresJobsInvariant(t *testing.T) {
	for _, fig := range []struct {
		name string
		fn   func(FigOptions) (*stats.Table, error)
	}{
		{"fig5", Fig5},
		{"fig11", Fig11},
	} {
		f1 := tiny()
		f1.Jobs = 1
		serial, err := fig.fn(f1)
		if err != nil {
			t.Fatal(err)
		}
		f4 := tiny()
		f4.Jobs = 4
		parallel, err := fig.fn(f4)
		if err != nil {
			t.Fatal(err)
		}
		if serial.CSV() != parallel.CSV() {
			t.Errorf("%s differs between -jobs 1 and -jobs 4:\nserial:\n%s\nparallel:\n%s",
				fig.name, serial.CSV(), parallel.CSV())
		}
	}
}

func TestFig5BreakdownRows(t *testing.T) {
	tb, err := Fig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(tiny().benchNames()) {
		t.Fatalf("rows %d", len(tb.Rows))
	}
}

func TestFig16MinnowWins(t *testing.T) {
	tb, err := Fig16(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// The geomean row's prefetch column must beat 1x (the paper's core
	// claim in miniature).
	last := tb.Rows[len(tb.Rows)-1]
	if last[0] != "geomean" {
		t.Fatalf("missing geomean row: %v", last)
	}
	if !(parseF(t, last[2]) > 1.0) {
		t.Fatalf("minnow+prefetch geomean %s not > 1", last[2])
	}
	if !(parseF(t, last[1]) > 1.0) {
		t.Fatalf("minnow geomean %s not > 1", last[1])
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestAreaTable(t *testing.T) {
	s := AreaTable().String()
	if !strings.Contains(s, "overhead") {
		t.Fatalf("area table:\n%s", s)
	}
}

func TestRunDeterminism(t *testing.T) {
	spec, _ := kernels.SpecByName("PR")
	o := Options{Threads: 3, Seed: 5, Scheduler: "minnow", Prefetch: true}
	a, err := Run(spec, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, o)
	if err != nil {
		t.Fatal(err)
	}
	if a.WallCycles != b.WallCycles || a.L2.Misses != b.L2.Misses {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", a.WallCycles, a.L2.Misses, b.WallCycles, b.L2.Misses)
	}
}

func TestMinnowBeatsBaselineEverywhere(t *testing.T) {
	// Regression guard on the headline claim at test scale: Minnow with
	// prefetching must not lose to the software baseline on any
	// benchmark.
	for _, spec := range kernels.Suite() {
		base, err := Run(spec, Options{Threads: 4, Seed: 42, SplitThreshold: 2048})
		if err != nil {
			t.Fatal(err)
		}
		mn, err := Run(spec, Options{Threads: 4, Seed: 42, SplitThreshold: 2048, Scheduler: "minnow", Prefetch: true})
		if err != nil {
			t.Fatal(err)
		}
		if mn.WallCycles >= base.WallCycles {
			t.Errorf("%s: minnow (%d) not faster than baseline (%d)", spec.Name, mn.WallCycles, base.WallCycles)
		}
	}
}

func TestPrefetchReducesMPKI(t *testing.T) {
	spec, _ := kernels.SpecByName("SSSP")
	off, err := Run(spec, Options{Threads: 4, Seed: 42, Scheduler: "minnow"})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(spec, Options{Threads: 4, Seed: 42, Scheduler: "minnow", Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.L2MPKI() >= off.L2MPKI() {
		t.Fatalf("prefetching raised MPKI: %.1f -> %.1f", off.L2MPKI(), on.L2MPKI())
	}
	if on.L2.Efficiency() < 0.5 {
		t.Fatalf("prefetch efficiency %.2f too low", on.L2.Efficiency())
	}
}

func TestMoreChannelsNeverHurt(t *testing.T) {
	spec, _ := kernels.SpecByName("BFS")
	o := Options{Threads: 4, Seed: 42, Scheduler: "minnow", Prefetch: true}
	o.MemChannels = 1
	narrow, err := Run(spec, o)
	if err != nil {
		t.Fatal(err)
	}
	o.MemChannels = 12
	wide, err := Run(spec, o)
	if err != nil {
		t.Fatal(err)
	}
	if wide.WallCycles > narrow.WallCycles {
		t.Fatalf("12 channels (%d) slower than 1 (%d)", wide.WallCycles, narrow.WallCycles)
	}
}

func TestGraphMatRunners(t *testing.T) {
	for _, bench := range []string{"SSSP", "BFS", "CC", "PR"} {
		res, err := RunGraphMat(bench, Options{Threads: 4, Seed: 42})
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		if res.Wall == 0 || res.WorkItems == 0 {
			t.Fatalf("%s: empty result %+v", bench, res)
		}
	}
	if _, err := RunGraphMat("TC", Options{Threads: 2}); err == nil {
		t.Fatal("graphmat TC should be unsupported")
	}
}

func TestGMatStarRunner(t *testing.T) {
	res, err := RunGMatStar(Options{Threads: 4, Seed: 42}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkItems == 0 {
		t.Fatal("empty GMat* run")
	}
}

func TestHWPrefetcherOptions(t *testing.T) {
	spec, _ := kernels.SpecByName("PR")
	for _, hw := range []string{"stride", "imp"} {
		r, err := Run(spec, Options{Threads: 2, Seed: 42, HWPrefetcher: hw})
		if err != nil {
			t.Fatalf("%s: %v", hw, err)
		}
		if r.L2.PrefetchFills == 0 {
			t.Fatalf("%s issued no prefetch fills", hw)
		}
	}
}

func TestUnknownScheduler(t *testing.T) {
	spec, _ := kernels.SpecByName("BC")
	if _, err := Run(spec, Options{Scheduler: "bogus"}); err == nil {
		t.Fatal("bogus scheduler accepted")
	}
}
