package harness

import "testing"

// TestAllFiguresQuick exercises every figure function end-to-end in quick
// mode at a small thread count — the integration test that guards the
// whole experiment surface.
func TestAllFiguresQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	f := QuickFigOptions()
	f.Threads = 4
	figs := map[string]func(FigOptions) (interface{ String() string }, error){
		"table2": func(f FigOptions) (interface{ String() string }, error) { return Table2(f) },
		"fig2":   func(f FigOptions) (interface{ String() string }, error) { return Fig2(f) },
		"fig3":   func(f FigOptions) (interface{ String() string }, error) { return Fig3(f) },
		"fig4":   func(f FigOptions) (interface{ String() string }, error) { return Fig4(f) },
		"fig6":   func(f FigOptions) (interface{ String() string }, error) { return Fig6(f) },
		"fig11":  func(f FigOptions) (interface{ String() string }, error) { return Fig11(f) },
		"fig15":  func(f FigOptions) (interface{ String() string }, error) { return Fig15(f) },
		"fig17":  func(f FigOptions) (interface{ String() string }, error) { return Fig17(f) },
		"fig18":  func(f FigOptions) (interface{ String() string }, error) { return Fig18(f) },
		"fig19":  func(f FigOptions) (interface{ String() string }, error) { return Fig19(f) },
		"fig20":  func(f FigOptions) (interface{ String() string }, error) { return Fig20(f) },
		"fig21":  func(f FigOptions) (interface{ String() string }, error) { return Fig21(f) },
	}
	for name, fn := range figs {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			tb, err := fn(f)
			if err != nil {
				t.Fatal(err)
			}
			if len(tb.String()) == 0 {
				t.Fatal("empty output")
			}
		})
	}
}
