package harness

import (
	"fmt"
	"testing"
)

// TestAllFiguresQuick exercises every figure function end-to-end in quick
// mode at a small thread count — the integration test that guards the
// whole experiment surface.
func TestAllFiguresQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	f := QuickFigOptions()
	f.Threads = 4
	figs := map[string]func(FigOptions) (interface{ String() string }, error){
		"table2": func(f FigOptions) (interface{ String() string }, error) { return Table2(f) },
		"fig2":   func(f FigOptions) (interface{ String() string }, error) { return Fig2(f) },
		"fig3":   func(f FigOptions) (interface{ String() string }, error) { return Fig3(f) },
		"fig4":   func(f FigOptions) (interface{ String() string }, error) { return Fig4(f) },
		"fig6":   func(f FigOptions) (interface{ String() string }, error) { return Fig6(f) },
		"fig11":  func(f FigOptions) (interface{ String() string }, error) { return Fig11(f) },
		"fig15":  func(f FigOptions) (interface{ String() string }, error) { return Fig15(f) },
		"fig17":  func(f FigOptions) (interface{ String() string }, error) { return Fig17(f) },
		"fig18":  func(f FigOptions) (interface{ String() string }, error) { return Fig18(f) },
		"fig19":  func(f FigOptions) (interface{ String() string }, error) { return Fig19(f) },
		"fig20":  func(f FigOptions) (interface{ String() string }, error) { return Fig20(f) },
		"fig21":  func(f FigOptions) (interface{ String() string }, error) { return Fig21(f) },
		"sojourn": func(f FigOptions) (interface{ String() string }, error) {
			tb, err := FigSojourn(f)
			if err != nil {
				return nil, err
			}
			// The open-loop contract the walkthrough reads off the table:
			// conservation per row and monotone percentiles.
			for _, row := range tb.Rows {
				if row[1] != row[2] {
					return nil, fmt.Errorf("sojourn row %v: injected != retired", row)
				}
			}
			return tb, err
		},
	}
	for name, fn := range figs {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			tb, err := fn(f)
			if err != nil {
				t.Fatal(err)
			}
			if len(tb.String()) == 0 {
				t.Fatal("empty output")
			}
		})
	}
}
