// Package inspect is the live run inspector: a small HTTP server that
// exposes the *host process* profiling endpoints (net/http/pprof — heap,
// goroutine, CPU profiles of the simulator itself) alongside a
// /metrics endpoint publishing the simulation's time-series registry in
// the Prometheus text exposition format, refreshed at every crossed
// metrics-sample boundary.
//
// Observe-only contract: the server never touches simulation state. It
// consumes the harness's OnSample callback — a cycle stamp plus a
// pre-rendered text snapshot — and stores it behind a mutex for HTTP
// readers. Enabling the inspector cannot change wall cycles, event-loop
// steps, or any RunSummary field: the simulation thread only copies a
// string pointer under a lock. (The callback itself fires only when
// metrics sampling is on, so -http requires -metrics-every.)
package inspect

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Server is one live inspector instance bound to a TCP address.
type Server struct {
	ln  net.Listener
	srv *http.Server

	mu      sync.Mutex
	cycles  int64
	prom    string
	sources []func() string
}

// Start listens on addr (host:port; an empty host binds all interfaces)
// and serves the inspector endpoints: /metrics and /debug/pprof/.
func Start(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("inspect: %w", err)
	}
	s := &Server{ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", s.index)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// OnSample stores the latest metrics snapshot; its signature matches the
// harness OnSample hook so it wires directly into minnow.Config.
func (s *Server) OnSample(cycles int64, metrics string) {
	s.mu.Lock()
	s.cycles, s.prom = cycles, metrics
	s.mu.Unlock()
}

// Register appends an auxiliary metrics source to the /metrics
// exposition: fn is invoked on every scrape (outside the sample lock)
// and its Prometheus text is emitted after the simulation sample.
// minnowd registers its service counters here so one inspector scrape
// covers both the simulation's interval registry and the service's
// queue/cache/worker metrics (see docs/SERVICE.md). Sources must be
// safe for concurrent calls; registration order is emission order.
func (s *Server) Register(fn func() string) {
	s.mu.Lock()
	s.sources = append(s.sources, fn)
	s.mu.Unlock()
}

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }

// metrics serves the Prometheus text exposition of the latest sample,
// followed by every registered auxiliary source.
func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	prom := s.prom
	sources := make([]func() string, len(s.sources))
	copy(sources, s.sources)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if prom == "" {
		fmt.Fprintln(w, "# no sample yet (first metrics-sample boundary not crossed)")
	} else {
		fmt.Fprint(w, prom)
	}
	for _, fn := range sources {
		fmt.Fprint(w, fn())
	}
}

// index names the endpoints for humans landing on /.
func (s *Server) index(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	cyc := s.cycles
	s.mu.Unlock()
	fmt.Fprintf(w, "minnow live inspector\n\nsimulated cycles: %d\n\n/metrics      Prometheus text exposition of the interval registry\n/debug/pprof/ host-process profiles (heap, goroutine, CPU)\n", cyc)
}
