package inspect

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// get fetches one inspector path and returns the body.
func get(t *testing.T, base, path string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get("http://" + base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return string(body), resp
}

// TestMetricsLifecycle pins the /metrics contract: before the first
// OnSample the endpoint serves the explicit no-sample comment (still
// valid Prometheus exposition), and after a sample it serves exactly the
// snapshot the harness handed over.
func TestMetricsLifecycle(t *testing.T) {
	srv, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	body, resp := get(t, srv.Addr(), "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text/plain exposition", ct)
	}
	if !strings.Contains(body, "# no sample yet") {
		t.Errorf("before first sample, /metrics = %q, want the no-sample comment", body)
	}

	const snapshot = "minnow_wall_cycles 4096\nminnow_tasks_total 17\n"
	srv.OnSample(4096, snapshot)
	body, _ = get(t, srv.Addr(), "/metrics")
	if body != snapshot {
		t.Errorf("after OnSample, /metrics = %q, want the exact snapshot %q", body, snapshot)
	}

	// A later sample replaces the earlier one wholesale.
	srv.OnSample(8192, "minnow_wall_cycles 8192\n")
	body, _ = get(t, srv.Addr(), "/metrics")
	if body != "minnow_wall_cycles 8192\n" {
		t.Errorf("second sample not republished: got %q", body)
	}
}

// TestRegisterAppendsSources pins the auxiliary-source contract: each
// registered source's exposition is appended after the simulation
// sample (or the no-sample comment) in registration order, and is
// re-invoked on every scrape so live counters stay fresh.
func TestRegisterAppendsSources(t *testing.T) {
	srv, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	n := 0
	srv.Register(func() string { n++; return "minnowd_queue_depth 3\n" })
	srv.Register(func() string { return "minnowd_workers 2\n" })

	body, _ := get(t, srv.Addr(), "/metrics")
	want := "# no sample yet (first metrics-sample boundary not crossed)\nminnowd_queue_depth 3\nminnowd_workers 2\n"
	if body != want {
		t.Errorf("before sample, /metrics = %q, want %q", body, want)
	}

	srv.OnSample(100, "minnow_wall_cycles 100\n")
	body, _ = get(t, srv.Addr(), "/metrics")
	want = "minnow_wall_cycles 100\nminnowd_queue_depth 3\nminnowd_workers 2\n"
	if body != want {
		t.Errorf("after sample, /metrics = %q, want %q", body, want)
	}
	if n != 2 {
		t.Errorf("source invoked %d times, want once per scrape (2)", n)
	}
}

// TestRegisterConcurrentWithScrape races Register and OnSample against
// live /metrics scrapes — run under -race in CI. The source-slice
// snapshot in metrics() must copy under the lock; appending to the
// slice a scraper is iterating would be a data race. Every scrape must
// also see an internally consistent exposition: any source that was
// fully registered before the scrape began appears in registration
// order.
func TestRegisterConcurrentWithScrape(t *testing.T) {
	srv, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const registrars, sourcesEach, scrapes = 4, 8, 32
	var wg sync.WaitGroup
	for g := 0; g < registrars; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < sourcesEach; i++ {
				line := fmt.Sprintf("aux_source{registrar=\"%d\",n=\"%d\"} 1\n", g, i)
				srv.Register(func() string { return line })
			}
		}(g)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < scrapes; i++ {
			srv.OnSample(int64(i), fmt.Sprintf("minnow_wall_cycles %d\n", i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < scrapes; i++ {
			body, resp := get(t, srv.Addr(), "/metrics")
			if resp.StatusCode != http.StatusOK {
				t.Errorf("scrape %d: status %d", i, resp.StatusCode)
			}
			// A torn snapshot would surface as a clipped final line.
			if body != "" && !strings.HasSuffix(body, "\n") {
				t.Errorf("scrape %d: truncated exposition %q", i, body)
			}
		}
	}()
	wg.Wait()

	// After the dust settles every source is present exactly once.
	body, _ := get(t, srv.Addr(), "/metrics")
	for g := 0; g < registrars; g++ {
		for i := 0; i < sourcesEach; i++ {
			line := fmt.Sprintf("aux_source{registrar=\"%d\",n=\"%d\"} 1\n", g, i)
			if strings.Count(body, line) != 1 {
				t.Fatalf("source (%d,%d) appears %d times:\n%s", g, i, strings.Count(body, line), body)
			}
		}
	}
}

// TestIndexReportsCycles checks the landing page carries the latest
// sampled cycle stamp and names the endpoints.
func TestIndexReportsCycles(t *testing.T) {
	srv, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.OnSample(12345, "x 1\n")
	body, _ := get(t, srv.Addr(), "/")
	for _, want := range []string{"simulated cycles: 12345", "/metrics", "/debug/pprof/"} {
		if !strings.Contains(body, want) {
			t.Errorf("index page missing %q:\n%s", want, body)
		}
	}
}

// TestCloseReleasesAddr verifies Close actually tears the listener down
// so a run's deferred cleanup cannot leak the port.
func TestCloseReleasesAddr(t *testing.T) {
	srv, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("GET after Close succeeded; listener still up")
	}
}
