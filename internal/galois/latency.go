package galois

import "sort"

// LatencyRecorder accumulates per-task latency samples for open-loop
// arrival tasks, one bucket pair per arrival class. Sample counts are
// bounded by the arrival plan's total count, so whole distributions are
// kept and percentiles are exact (nearest-rank), not estimated.
//
// Like every other piece of per-run state it is single-run and stepped
// only from weave steps, so recording order — and therefore the sorted
// sample sets and their percentiles — is deterministic.
type LatencyRecorder struct {
	wait    [][]int64
	sojourn [][]int64
}

// NewLatencyRecorder sizes a recorder for the given class count.
func NewLatencyRecorder(classes int) *LatencyRecorder {
	return &LatencyRecorder{
		wait:    make([][]int64, classes),
		sojourn: make([][]int64, classes),
	}
}

// clamp floors samples at zero: a task can be popped by a core whose
// local clock lags the arrival instant (core clocks advance
// independently between weave points), which would otherwise record a
// negative wait.
func clamp(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// Wait records one queue-wait sample (birth to dequeue) for a class.
func (l *LatencyRecorder) Wait(class int32, v int64) {
	l.wait[class] = append(l.wait[class], clamp(v))
}

// Sojourn records one sojourn sample (birth to operator completion) for
// a class.
func (l *LatencyRecorder) Sojourn(class int32, v int64) {
	l.sojourn[class] = append(l.sojourn[class], clamp(v))
}

// Classes returns the recorder's class count.
func (l *LatencyRecorder) Classes() int { return len(l.wait) }

// Waits returns the sorted queue-wait samples for a class.
func (l *LatencyRecorder) Waits(class int) []int64 { return sorted(l.wait[class]) }

// Sojourns returns the sorted sojourn samples for a class.
func (l *LatencyRecorder) Sojourns(class int) []int64 { return sorted(l.sojourn[class]) }

func sorted(vs []int64) []int64 {
	out := append([]int64(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
