// Package galois implements the task-parallel framework the paper builds
// Minnow into: a Galois-like foreach loop where worker threads dequeue
// tasks from a scheduler, run a user operator that may enqueue more tasks,
// and terminate when no work remains anywhere.
//
// Workers are simulation actors: each Step pops one task, applies the
// operator (emitting micro-ops through the core timing model), and pushes
// any generated tasks. The scheduler is pluggable — a software worklist
// with an explicit cost model, or a Minnow engine via the accelerator
// interface.
//
// The package also implements the two §6.2.1 framework optimizations:
// socket-sharded OBIM is configured at worklist construction, and *task
// splitting* (breaking nodes with more than SplitThreshold edges into
// edge-range subtasks) lives in Worker.Push.
//
// Determinism contract: a worker's behaviour depends only on its core's
// clock and the scheduler's (deterministic) pop order; the per-task
// timeline spans a Worker emits when TL is set observe the task boundary
// and never change it.
package galois

import (
	"minnow/internal/cpu"
	"minnow/internal/obs"
	"minnow/internal/prof"
	"minnow/internal/sim"
	"minnow/internal/stats"
	"minnow/internal/uops"
	"minnow/internal/worklist"
)

// Scheduler abstracts where tasks go: a software worklist or a Minnow
// engine.
type Scheduler interface {
	// Push schedules a task on behalf of worker w (costs charged to
	// w.Core at its current time).
	Push(w *Worker, t worklist.Task)
	// Pop returns the next task for worker w. ok=false means nothing is
	// available right now; the worker will retry until global
	// termination.
	Pop(w *Worker) (t worklist.Task, ok bool)
	// Flush is called when a worker observes global termination
	// (minnow_flush / cleanup hooks). May be a no-op.
	Flush(w *Worker)
}

// Operator is a benchmark kernel's per-task function.
type Operator interface {
	// Apply processes task t on worker w: it must emit the operator's
	// micro-ops via w.TR / w.Emit* helpers and push generated tasks via
	// w.Push. The framework flushes the trace and handles accounting.
	Apply(w *Worker, t worklist.Task)
}

// Config controls a parallel foreach execution.
type Config struct {
	Threads int
	// SplitThreshold breaks tasks whose edge count exceeds it into
	// subtasks (0 disables splitting). §6.2.1 uses 10K.
	SplitThreshold int32
	// WorkBudget aborts the run (TimedOut) after this many operator
	// applications; 0 means unlimited. Used for the Fig. 3 timeout bars.
	WorkBudget int64
	// Serial elides atomics in worklist cost models (1-thread optimized
	// serial baseline).
	Serial bool
	// IdleBackoff is how long an idle worker waits before re-polling the
	// scheduler.
	IdleBackoff sim.Time
	// SharedHorizons splits each idle backoff into its own simulation
	// step so Worker.Horizon can declare it private: an idle worker's
	// wait touches only its own core, and announcing that lookahead lets
	// sim.Engine.RunParallel bound-step the waits of a *shared-machine*
	// run concurrently instead of weaving every worker step. The split
	// happens in serial and parallel execution alike (it changes the
	// step count, which RunSummary pins), so a given configuration stays
	// byte-identical across engines and worker counts.
	SharedHorizons bool
}

// Runner owns one foreach execution.
type Runner struct {
	cfg     Config
	sched   Scheduler
	op      Operator
	workers []*Worker

	outstanding int64 // pushed - completed tasks
	applied     int64
	timedOut    bool

	// Open-loop arrival state (nil / zero unless the harness arms an
	// arrival plan; closed-loop runs never touch it).
	lat      *LatencyRecorder
	injected int64 // arrival tasks credited at birth (Deposit calls)
	retired  int64 // arrival tasks whose operator application completed
}

// Worker is one thread: a core plus worklist context.
type Worker struct {
	ID     int
	Core   *cpu.Core
	Ctx    worklist.Ctx
	runner *Runner
	// Isolated declares that this worker's entire world — scheduler,
	// runner, core, memory system, kernel state — is private to it
	// (SPECrate-style throughput copies built by harness.RunRate). An
	// isolated worker reports an unbounded interaction horizon, making it
	// eligible for concurrent stepping in sim.Engine.RunParallel bound
	// phases. Never set this for workers that share a worklist or memory
	// system: every ordinary worker step pops a shared scheduler and
	// reserves shared L3/NoC/DRAM resources.
	Isolated bool
	// Degrees lets Push split tasks; kernels set it to the graph's
	// degree function.
	Degrees func(node int32) int32
	// TL, when non-nil, receives one EvTask span per operator application
	// on Track (timeline observability; set by the harness together with
	// the core's stall hooks).
	TL    *obs.Timeline
	Track obs.TrackID
	// Deferred idle backoff (Config.SharedHorizons): when idlePending is
	// set, the worker's next step advances its core to idleUntil and
	// touches nothing else — the private stretch Horizon announces.
	idlePending bool
	idleUntil   sim.Time
	// EdgeLimit overrides the split subtask size (defaults to
	// SplitThreshold).
	pushBuf []worklist.Task
	// pending holds open-loop arrival tasks deposited by the harness's
	// injection actor (a weave step) for this worker to enqueue through
	// the normal scheduler path at the top of its next poll step (also a
	// weave step) — the deposit/drain split keeps bound-phase steps free
	// of shared state. Always empty in closed-loop runs.
	pending []worklist.Task
}

// NewRunner wires cores, scheduler, and operator together. degrees may be
// nil when task splitting is disabled.
func NewRunner(cfg Config, cores []*cpu.Core, sched Scheduler, op Operator, degrees func(int32) int32) *Runner {
	if cfg.IdleBackoff == 0 {
		cfg.IdleBackoff = 200
	}
	r := &Runner{cfg: cfg, sched: sched, op: op}
	for i := 0; i < cfg.Threads; i++ {
		w := &Worker{ID: i, Core: cores[i], runner: r, Degrees: degrees}
		w.Ctx.Core = cores[i]
		w.Ctx.Serial = cfg.Serial
		r.workers = append(r.workers, w)
	}
	return r
}

// Workers exposes the worker list (the harness registers them as actors).
func (r *Runner) Workers() []*Worker { return r.workers }

// Applied returns how many operator applications ran — the
// work-efficiency metric.
func (r *Runner) Applied() int64 { return r.applied }

// TimedOut reports whether the run exceeded its work budget.
func (r *Runner) TimedOut() bool { return r.timedOut }

// Outstanding returns queued-plus-in-flight task count (termination when
// zero).
func (r *Runner) Outstanding() int64 { return r.outstanding }

// SetLatency arms per-task latency recording for open-loop arrival
// tasks. Must be set before the first actor steps (or never).
func (r *Runner) SetLatency(l *LatencyRecorder) { r.lat = l }

// Injected returns how many arrival tasks were credited at birth.
func (r *Runner) Injected() int64 { return r.injected }

// Retired returns how many arrival tasks completed their operator
// application. A drained, untimed-out run must retire every injected
// task — the harness conservation check pins it.
func (r *Runner) Retired() int64 { return r.retired }

// Deposit credits one open-loop arrival task at birth: the task joins
// the outstanding count immediately (so workers keep polling instead of
// terminating under it) and lands in worker wi's pending buffer, to be
// enqueued through the scheduler on that worker's next poll step. Called
// only from the injection actor's weave step, which the event loop
// serializes against every worker poll step.
func (r *Runner) Deposit(wi int, t worklist.Task) {
	w := r.workers[wi%len(r.workers)]
	w.pending = append(w.pending, t)
	r.outstanding++
	r.injected++
}

// drainPending enqueues deposited arrival tasks through the normal
// scheduler path, charging enqueue costs to this worker's core. The
// core first advances to each task's birth cycle if it lags it — an
// arrival cannot be enqueued before it occurs — which also anchors the
// task's queue-wait measurement.
func (w *Worker) drainPending() {
	r := w.runner
	for _, t := range w.pending {
		if bt := sim.Time(t.Birth); w.Core.Now() < bt {
			ir, ic := w.Core.ProfRegion(prof.RegionIdle)
			w.Core.Advance(bt, stats.CatWorklist)
			w.Core.ProfRestore(ir, ic)
		}
		// Deposit already credited the task to r.outstanding; the direct
		// sched.Push (unlike Worker.Push) leaves the count alone.
		st := &w.Core.Stat
		st.EnqOps++
		start := w.Core.Now()
		pr, pc := w.Core.ProfRegion(prof.RegionEnq)
		r.sched.Push(w, t)
		w.Core.ProfRestore(pr, pc)
		st.EnqCycles += int64(w.Core.Now() - start)
	}
	w.pending = w.pending[:0]
}

// Seed distributes the initial tasks round-robin over the workers (Galois
// parallelizes initial worklist population), charging each push to the
// owning core.
func (r *Runner) Seed(tasks []worklist.Task) {
	for i, t := range tasks {
		w := r.workers[i%len(r.workers)]
		if t.EdgeHi == 0 {
			t.EdgeHi = -1
		}
		w.Push(t.Priority, t.Node)
	}
}

// TR returns the worker's trace for operator emission.
func (w *Worker) TR() *uops.Trace { return &w.Ctx.TR }

// FlushUseful runs accumulated operator micro-ops under the useful-work
// category.
func (w *Worker) FlushUseful() {
	if len(w.Ctx.TR.Ops) > 0 {
		w.Core.Run(w.Ctx.TR.Ops, stats.CatUseful)
		w.Ctx.TR.Reset()
	}
}

// Push schedules new work generated by the operator, applying task
// splitting when configured. Any pending operator micro-ops are flushed
// first so cycle categories stay honest.
func (w *Worker) Push(priority int64, node int32) {
	w.FlushUseful()
	r := w.runner
	t := worklist.Task{Priority: priority, Node: node, EdgeLo: 0, EdgeHi: -1}
	thr := r.cfg.SplitThreshold
	if thr > 0 && w.Degrees != nil {
		if d := w.Degrees(node); d > thr {
			for lo := int32(0); lo < d; lo += thr {
				hi := lo + thr
				if hi > d {
					hi = d
				}
				sub := worklist.Task{Priority: priority, Node: node, EdgeLo: lo, EdgeHi: hi}
				r.outstanding++
				st := &w.Core.Stat
				st.EnqOps++
				start := w.Core.Now()
				pr, pc := w.Core.ProfRegion(prof.RegionEnq)
				r.sched.Push(w, sub)
				w.Core.ProfRestore(pr, pc)
				st.EnqCycles += int64(w.Core.Now() - start)
			}
			return
		}
	}
	r.outstanding++
	st := &w.Core.Stat
	st.EnqOps++
	start := w.Core.Now()
	pr, pc := w.Core.ProfRegion(prof.RegionEnq)
	r.sched.Push(w, t)
	w.Core.ProfRestore(pr, pc)
	st.EnqCycles += int64(w.Core.Now() - start)
}

// Step implements sim.Actor for the worker: pop one task, run it, push
// children.
func (w *Worker) Step() (sim.Time, bool) {
	r := w.runner
	if w.idlePending {
		// Deferred idle backoff: this step was announced by Horizon as
		// private up to idleUntil, so it may run in a bound phase and must
		// touch only the worker's own core — in particular it must NOT
		// read runner state like timedOut or outstanding, which other
		// workers' weave steps mutate concurrently. The next poll step
		// observes those under full weave semantics. Note this branch is
		// checked before the timedOut fast path for exactly that reason.
		w.idlePending = false
		ir, ic := w.Core.ProfRegion(prof.RegionIdle)
		w.Core.Advance(w.idleUntil, stats.CatWorklist)
		w.Core.ProfRestore(ir, ic)
		return w.Core.Now(), false
	}
	if r.timedOut {
		return w.Core.Now(), true
	}
	if len(w.pending) > 0 {
		w.drainPending()
	}
	st := &w.Core.Stat
	start := w.Core.Now()
	pr, pc := w.Core.ProfRegion(prof.RegionDeq)
	t, ok := r.sched.Pop(w)
	w.Core.ProfRestore(pr, pc)
	if ok {
		// Only successful dequeues count toward the Fig. 11 per-op cost;
		// idle polling is charged to worklist cycles either way.
		st.DeqOps++
		st.DeqCycles += int64(w.Core.Now() - start)
		if t.Class > 0 && r.lat != nil {
			// Queue wait: birth to dequeue. Clamped at zero — a core whose
			// local clock lags the arrival instant can legally pop first.
			r.lat.Wait(t.Class-1, int64(w.Core.Now())-t.Birth)
		}
	}
	if !ok {
		if r.outstanding == 0 {
			r.sched.Flush(w)
			return w.Core.Now(), true
		}
		if r.cfg.SharedHorizons {
			// Split the backoff into its own step instead of advancing
			// here: the poll (shared worklist access) stays a weave step,
			// while the wait becomes a private step Horizon can expose as
			// bound-phase lookahead. The split is unconditional under the
			// flag — never dependent on observability wiring — so step
			// counts (and therefore RunSummary) match between plain and
			// instrumented runs of the same configuration.
			w.idlePending = true
			w.idleUntil = w.Core.Now() + r.cfg.IdleBackoff
			return w.Core.Now(), false
		}
		// Back off and re-poll: someone else still holds work.
		ir, ic := w.Core.ProfRegion(prof.RegionIdle)
		w.Core.Advance(w.Core.Now()+r.cfg.IdleBackoff, stats.CatWorklist)
		w.Core.ProfRestore(ir, ic)
		return w.Core.Now(), false
	}
	r.applied++
	st.TasksRun++
	taskStart := w.Core.Now()
	// Each operator application restarts site indexing at micro-op 0, so
	// index-flavored profiler sites aggregate across tasks.
	w.Core.ProfRegion(prof.RegionOp)
	r.op.Apply(w, t)
	w.FlushUseful()
	w.TL.Span(w.Track, obs.EvTask, taskStart, w.Core.Now(), int64(t.Node))
	if t.Class > 0 {
		// Sojourn: birth to operator completion — the arrival task's
		// end-to-end latency through the scheduling fabric.
		if r.lat != nil {
			r.lat.Sojourn(t.Class-1, int64(w.Core.Now())-t.Birth)
		}
		r.retired++
	}
	r.outstanding--
	if r.cfg.WorkBudget > 0 && r.applied >= r.cfg.WorkBudget {
		r.timedOut = true
		return w.Core.Now(), true
	}
	return w.Core.Now(), false
}

// Horizon implements sim.BoundedActor. A worker whose world is fully
// private (Isolated) never interacts with shared simulation state, so it
// can be bound-stepped through entire epochs. A shared-machine worker
// with a deferred idle backoff pending (Config.SharedHorizons) is
// private up to idleUntil: the pending step only advances its own core's
// clock and counters — unless the core has a timeline attached, whose
// buffer is shared across tracks, in which case the idle step must weave
// so the event order stays serial. Every other step interacts on its
// very first action (the scheduler pop touches the shared worklist, and
// each memory access reserves shared L3/NoC/DRAM state), so the worker
// reports HorizonAlwaysWeave.
//
// Horizon runs on pool goroutines during bound phases, so it reads only
// the worker's own fields and its core's setup-time wiring (the TL
// pointer, set once before the run) — never runner or scheduler state.
func (w *Worker) Horizon() sim.Time {
	if w.Isolated {
		return sim.HorizonNever
	}
	if w.idlePending && w.Core.TL == nil {
		return w.idleUntil
	}
	return sim.HorizonAlwaysWeave
}

// SWScheduler adapts a software worklist to the Scheduler interface.
type SWScheduler struct {
	WL worklist.Worklist
}

// Push implements Scheduler.
func (s *SWScheduler) Push(w *Worker, t worklist.Task) { s.WL.Push(&w.Ctx, t) }

// Pop implements Scheduler.
func (s *SWScheduler) Pop(w *Worker) (worklist.Task, bool) { return s.WL.Pop(&w.Ctx) }

// Flush implements Scheduler.
func (s *SWScheduler) Flush(w *Worker) {}
