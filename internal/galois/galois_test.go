package galois

import (
	"testing"

	"minnow/internal/cpu"
	"minnow/internal/graph"
	"minnow/internal/mem"
	"minnow/internal/sim"
	"minnow/internal/worklist"
)

// countOp is a trivial operator: count applications and optionally fan
// out children.
type countOp struct {
	applied  []int32
	children func(t worklist.Task) []int32
}

func (o *countOp) Apply(w *Worker, t worklist.Task) {
	o.applied = append(o.applied, t.Node)
	w.TR().Compute(10)
	if o.children != nil {
		for _, c := range o.children(t) {
			w.Push(t.Priority+1, c)
		}
	}
}

func env(threads int) ([]*cpu.Core, *graph.AddrSpace) {
	mcfg := mem.DefaultConfig(threads)
	mcfg.ScaleCaches(16)
	msys := mem.NewSystem(mcfg)
	cores := make([]*cpu.Core, threads)
	for i := range cores {
		cores[i] = cpu.New(i, cpu.DefaultConfig(), msys)
	}
	as := graph.NewAddrSpace()
	return cores, as
}

func runToCompletion(t *testing.T, r *Runner) {
	t.Helper()
	eng := sim.NewEngine()
	for _, w := range r.Workers() {
		id := eng.Register(w)
		eng.Wake(id, 0)
	}
	if _, drained := eng.Run(50_000_000); !drained {
		t.Fatal("framework did not terminate")
	}
}

func TestForEachRunsAllTasks(t *testing.T) {
	cores, as := env(2)
	op := &countOp{}
	r := NewRunner(Config{Threads: 2}, cores, &SWScheduler{WL: worklist.NewFIFO(as, 2)}, op, nil)
	var seed []worklist.Task
	for i := int32(0); i < 50; i++ {
		seed = append(seed, worklist.Task{Node: i, EdgeHi: -1})
	}
	r.Seed(seed)
	runToCompletion(t, r)
	if len(op.applied) != 50 {
		t.Fatalf("applied %d of 50", len(op.applied))
	}
	if r.Outstanding() != 0 {
		t.Fatalf("outstanding %d after drain", r.Outstanding())
	}
	if r.Applied() != 50 {
		t.Fatalf("Applied() = %d", r.Applied())
	}
}

func TestDynamicTaskGeneration(t *testing.T) {
	cores, as := env(2)
	// Binary fan-out three levels deep from one seed: 1+2+4+8 = 15.
	op := &countOp{}
	op.children = func(tk worklist.Task) []int32 {
		if tk.Priority >= 3 {
			return nil
		}
		return []int32{tk.Node * 2, tk.Node*2 + 1}
	}
	r := NewRunner(Config{Threads: 2}, cores, &SWScheduler{WL: worklist.NewFIFO(as, 2)}, op, nil)
	r.Seed([]worklist.Task{{Node: 1, EdgeHi: -1}})
	runToCompletion(t, r)
	if len(op.applied) != 15 {
		t.Fatalf("applied %d of 15", len(op.applied))
	}
}

func TestWorkBudgetTimeout(t *testing.T) {
	cores, as := env(1)
	// Infinite generator.
	op := &countOp{}
	op.children = func(tk worklist.Task) []int32 { return []int32{tk.Node} }
	r := NewRunner(Config{Threads: 1, WorkBudget: 100}, cores, &SWScheduler{WL: worklist.NewFIFO(as, 1)}, op, nil)
	r.Seed([]worklist.Task{{Node: 0, EdgeHi: -1}})
	runToCompletion(t, r)
	if !r.TimedOut() {
		t.Fatal("budget did not trip")
	}
	if r.Applied() != 100 {
		t.Fatalf("applied %d, want exactly the budget", r.Applied())
	}
}

func TestTaskSplitting(t *testing.T) {
	cores, as := env(1)
	degrees := func(n int32) int32 {
		if n == 7 {
			return 100
		}
		return 3
	}
	var got []worklist.Task
	op := &splitRecorder{tasks: &got}
	r := NewRunner(Config{Threads: 1, SplitThreshold: 32}, cores, &SWScheduler{WL: worklist.NewFIFO(as, 1)}, op, degrees)
	r.Seed([]worklist.Task{{Node: 7, EdgeHi: -1}, {Node: 3, EdgeHi: -1}})
	runToCompletion(t, r)
	// Node 7 (degree 100, threshold 32) splits into 4 subtasks; node 3
	// stays whole.
	var splits, whole int
	var covered int32
	for _, tk := range got {
		if tk.Node == 7 {
			splits++
			if tk.WholeNode() {
				t.Fatal("hub task not split")
			}
			covered += tk.EdgeHi - tk.EdgeLo
		} else {
			whole++
			if !tk.WholeNode() {
				t.Fatal("small task split")
			}
		}
	}
	if splits != 4 || covered != 100 {
		t.Fatalf("splits %d covering %d edges", splits, covered)
	}
	if whole != 1 {
		t.Fatalf("whole tasks %d", whole)
	}
}

type splitRecorder struct{ tasks *[]worklist.Task }

func (o *splitRecorder) Apply(w *Worker, t worklist.Task) {
	*o.tasks = append(*o.tasks, t)
	w.TR().Compute(5)
}

func TestSeedRoundRobin(t *testing.T) {
	cores, as := env(4)
	op := &countOp{}
	r := NewRunner(Config{Threads: 4}, cores, &SWScheduler{WL: worklist.NewFIFO(as, 4)}, op, nil)
	var seed []worklist.Task
	for i := int32(0); i < 40; i++ {
		seed = append(seed, worklist.Task{Node: i, EdgeHi: -1})
	}
	r.Seed(seed)
	// Every core should have been charged some enqueue work.
	for i, c := range cores {
		if c.Stat.EnqOps == 0 {
			t.Fatalf("core %d got no seed pushes", i)
		}
	}
	runToCompletion(t, r)
}

func TestOpStatsAccounting(t *testing.T) {
	cores, as := env(1)
	op := &countOp{}
	r := NewRunner(Config{Threads: 1}, cores, &SWScheduler{WL: worklist.NewFIFO(as, 1)}, op, nil)
	r.Seed([]worklist.Task{{Node: 0, EdgeHi: -1}, {Node: 1, EdgeHi: -1}})
	runToCompletion(t, r)
	st := cores[0].Stat
	if st.EnqOps != 2 || st.DeqOps != 2 {
		t.Fatalf("enq %d deq %d", st.EnqOps, st.DeqOps)
	}
	if st.DeqCycles <= 0 || st.EnqCycles <= 0 {
		t.Fatal("op cycles not measured")
	}
	if st.TasksRun != 2 {
		t.Fatalf("tasks %d", st.TasksRun)
	}
}
