package core

import (
	"minnow/internal/graph"
	"minnow/internal/mem"
	"minnow/internal/worklist"
)

// PrefetchProgram generates worklist-directed prefetch work for tasks —
// the engine-resident helper function of Fig. 14. Framework developers
// write one per access pattern; the standard program covers "task → source
// node → edges → destination nodes", which all the paper's workloads
// except TC use.
type PrefetchProgram interface {
	// Start returns a fresh stream of prefetch threadlets for task t.
	Start(t worklist.Task) PrefetchStream
}

// PrefetchStream yields prefetch threadlets one at a time. Each call to
// Next appends one threadlet's sequential load addresses (each load's
// address depends on the previous load's data) to buf and returns it;
// ok=false means the stream is exhausted. Separate Next calls are
// independent threadlets and may overlap in the engine's load buffer.
type PrefetchStream interface {
	Next(buf []uint64) (_ []uint64, ok bool)
}

// StandardProgram is Fig. 14's prefetchTask/prefetchEdge pair: the first
// threadlet loads the task descriptor and the source node; then one
// threadlet per edge loads the edge record and its destination node.
type StandardProgram struct {
	G *graph.Graph
}

// Start implements PrefetchProgram.
func (p *StandardProgram) Start(t worklist.Task) PrefetchStream {
	lo, hi := p.G.EdgeRange(t.Node)
	if !t.WholeNode() {
		lo, hi = p.G.Offsets[t.Node]+t.EdgeLo, p.G.Offsets[t.Node]+t.EdgeHi
	}
	return &standardStream{p: p, t: t, e: lo, hi: hi, head: true}
}

type standardStream struct {
	p    *StandardProgram
	t    worklist.Task
	e    int32
	hi   int32
	head bool
}

// Next implements PrefetchStream.
func (s *standardStream) Next(buf []uint64) ([]uint64, bool) {
	if s.head {
		s.head = false
		// prefetchTask: the task descriptor, then the source node.
		if s.t.Desc != 0 {
			buf = append(buf, s.t.Desc)
		}
		return append(buf, s.p.G.NodeAddr(s.t.Node)), true
	}
	if s.e >= s.hi {
		return buf, false
	}
	// prefetchEdge: one edge record, then its destination node.
	buf = append(buf, s.p.G.EdgeAddr(s.e))
	buf = append(buf, s.p.G.NodeAddr(s.p.G.Dests[s.e]))
	s.e++
	return buf, true
}

// TCProgram is the custom Triangle-Counting prefetch function (§5.3): the
// node-iterator-hashed operator binary-searches each destination node's
// adjacency list, so the destination's edge-list lines must be prefetched
// too (up to MaxListLines per destination).
type TCProgram struct {
	G *graph.Graph
	// MaxListLines caps how many 64B lines of each destination adjacency
	// list are prefetched (binary search touches O(log d) lines).
	MaxListLines int
}

// Start implements PrefetchProgram.
func (p *TCProgram) Start(t worklist.Task) PrefetchStream {
	lo, hi := p.G.EdgeRange(t.Node)
	return &tcStream{p: p, t: t, e: lo, hi: hi, head: true}
}

type tcStream struct {
	p    *TCProgram
	t    worklist.Task
	e    int32
	hi   int32
	head bool
}

// Next implements PrefetchStream.
func (s *tcStream) Next(buf []uint64) ([]uint64, bool) {
	g := s.p.G
	if s.head {
		s.head = false
		if s.t.Desc != 0 {
			buf = append(buf, s.t.Desc)
		}
		return append(buf, g.NodeAddr(s.t.Node)), true
	}
	if s.e >= s.hi {
		return buf, false
	}
	dst := g.Dests[s.e]
	buf = append(buf, g.EdgeAddr(s.e))
	buf = append(buf, g.NodeAddr(dst))
	// Binary-search footprint over the destination's adjacency list.
	dlo, dhi := g.EdgeRange(dst)
	maxLines := s.p.MaxListLines
	if maxLines <= 0 {
		maxLines = 4
	}
	span := int(dhi-dlo) * graph.EdgeBytes
	lines := (span + mem.LineSize - 1) / mem.LineSize
	if lines > maxLines {
		lines = maxLines
	}
	// Touch the lines a binary search would: midpoints first.
	base := g.EdgeAddr(dlo)
	if lines > 0 {
		step := span / lines
		for i := 0; i < lines; i++ {
			buf = append(buf, base+uint64(i*step+step/2))
		}
	}
	s.e++
	return buf, true
}

// FuncProgram adapts a plain function to PrefetchProgram, the hook users
// reach for when their operator has a custom access pattern ("if users
// require a different graph access pattern, they can write a custom
// prefetch function", §5.3). The function receives the task and an emit
// callback; each emit(addrs...) call becomes one threadlet.
type FuncProgram struct {
	F func(t worklist.Task, emit func(addrs ...uint64))
}

// Start implements PrefetchProgram by running F eagerly and replaying its
// threadlets.
func (p *FuncProgram) Start(t worklist.Task) PrefetchStream {
	fs := &funcStream{}
	p.F(t, func(addrs ...uint64) {
		tl := make([]uint64, len(addrs))
		copy(tl, addrs)
		fs.threadlets = append(fs.threadlets, tl)
	})
	return fs
}

type funcStream struct {
	threadlets [][]uint64
	i          int
}

// Next implements PrefetchStream.
func (s *funcStream) Next(buf []uint64) ([]uint64, bool) {
	if s.i >= len(s.threadlets) {
		return buf, false
	}
	buf = append(buf, s.threadlets[s.i]...)
	s.i++
	return buf, true
}
