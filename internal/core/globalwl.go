package core

import (
	"sort"

	"minnow/internal/graph"
	"minnow/internal/mem"
	"minnow/internal/sim"
	"minnow/internal/worklist"
)

// GlobalWL is the software global priority worklist the Minnow engines
// run: a simplified OBIM (Fig. 13) — a concurrent ordered map from bucket
// number to unordered task lists — living in simulated memory and accessed
// by engines through their cores' L2s. Like the §6.2.1-optimized Galois
// OBIM it is sharded into socket groups to bound lock contention.
//
// Logical contents are real Go data; every operation performs the
// engine-side memory accesses (lock RMW, map-node loads, task-slot
// loads/stores) a software implementation would, so spill/fill costs and
// inter-engine contention come out of the memory model.
type GlobalWL struct {
	shards  []*gwlShard
	sockets int
	cores   int
	size    int
}

type gwlShard struct {
	lockAddr uint64
	lockFree sim.Time
	mapAddr  uint64
	buckets  map[int64][]worklist.Task
	slots    map[int64]uint64 // bucket -> simulated storage base
	as       *graph.AddrSpace
	minB     int64
}

// NewGlobalWL builds the engines' shared worklist with the given shard
// (socket) count.
func NewGlobalWL(as *graph.AddrSpace, cores, sockets int) *GlobalWL {
	if sockets < 1 {
		sockets = 1
	}
	if sockets > cores {
		sockets = cores
	}
	g := &GlobalWL{sockets: sockets, cores: cores}
	for s := 0; s < sockets; s++ {
		g.shards = append(g.shards, &gwlShard{
			lockAddr: as.Alloc(64),
			mapAddr:  as.Alloc(4096),
			buckets:  make(map[int64][]worklist.Task),
			slots:    make(map[int64]uint64),
			as:       as,
			minB:     noBucket,
		})
	}
	return g
}

// Len returns the queued task count (bookkeeping).
func (g *GlobalWL) Len() int { return g.size }

// DrainAll removes and returns every queued task (engine-offline rescue).
// Tasks come out in deterministic order — shards in index order, buckets
// ascending within a shard (map iteration order must not leak into the
// simulation) — with no memory traffic charged: the rescue path models a
// software recovery routine whose cost the fallback worklist's own
// operations dominate.
func (g *GlobalWL) DrainAll() []worklist.Task {
	var out []worklist.Task
	for _, s := range g.shards {
		bs := make([]int64, 0, len(s.buckets))
		for b := range s.buckets {
			bs = append(bs, b)
		}
		sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
		for _, b := range bs {
			out = append(out, s.buckets[b]...)
		}
		s.buckets = make(map[int64][]worklist.Task)
		s.minB = noBucket
	}
	g.size = 0
	return out
}

// MinBucket returns the lowest bucket number queued anywhere (noBucket
// when empty). Zero-cost bookkeeping the engine's refill heuristic reads;
// the real map walk is charged when Fill runs.
func (g *GlobalWL) MinBucket() int64 {
	min := noBucket
	for _, s := range g.shards {
		if _, ok := s.buckets[s.minB]; !ok {
			s.minB = noBucket
			for b := range s.buckets {
				if b < s.minB {
					s.minB = b
				}
			}
		}
		if s.minB < min {
			min = s.minB
		}
	}
	return min
}

func (g *GlobalWL) shardOf(core int) *gwlShard {
	return g.shards[core*g.sockets/g.cores]
}

// LockFree returns when the engine's home-shard lock next becomes free.
// The engine back-end uses it to run prefetch threadlets instead of
// spinning a hardware context on a busy lock.
func (g *GlobalWL) LockFree(core int) sim.Time {
	return g.shardOf(core).lockFree
}

// slotAddr returns the simulated address of task index i in bucket b.
func (s *gwlShard) slotAddr(b int64, i int) uint64 {
	base, ok := s.slots[b]
	if !ok {
		base = s.as.Alloc(1 << 14)
		s.slots[b] = base
	}
	return base + uint64(i%1024)*16
}

// acquire takes the shard lock with an engine RMW, spinning on the
// reservation left by the previous holder.
func (s *gwlShard) acquire(e *Engine, t sim.Time) sim.Time {
	if e.clock < t {
		e.clock = t
	}
	if s.lockFree > e.clock {
		e.clock = s.lockFree
	}
	res := e.load(s.lockAddr, mem.EngineAtomic)
	if res.Done > e.clock {
		e.clock = res.Done
	}
	s.lockFree = e.clock + 40 // pessimistic hold reservation
	return e.clock
}

func (s *gwlShard) release(e *Engine) {
	e.load(s.lockAddr, mem.EngineStore)
	s.lockFree = e.clock
}

// Spill pushes one task into the shard owned by the engine's socket,
// returning the engine-time at which the threadlet finishes.
func (g *GlobalWL) Spill(e *Engine, t worklist.Task, at sim.Time) sim.Time {
	return g.SpillBatch(e, []worklist.Task{t}, at)
}

// SpillBatch pushes a group of tasks under one lock acquisition — the
// §5.2 grouping optimization ("several memory allocation and deallocation
// tasks may be grouped together"). One map walk is charged per distinct
// bucket in the batch.
func (g *GlobalWL) SpillBatch(e *Engine, tasks []worklist.Task, at sim.Time) sim.Time {
	if len(tasks) == 0 {
		return at
	}
	s := g.shardOf(e.CoreID)
	// Write the task slots first — slots are only published by the head
	// update, so they need no lock.
	lastB := int64(1) << 61
	for _, t := range tasks {
		b := t.Priority >> e.cfg.LgInterval
		if b != lastB {
			lastB = b
		}
		e.load(s.slotAddr(b, len(s.buckets[b])), mem.EngineStore)
		s.buckets[b] = append(s.buckets[b], t)
		if b < s.minB {
			s.minB = b
		}
		g.size++
	}
	// Short critical section: map walk + head publish.
	s.acquire(e, at)
	e.load(s.mapAddr, mem.EngineLoad)     // map root
	e.load(s.mapAddr+256, mem.EngineLoad) // map node chase
	e.load(s.mapAddr, mem.EngineStore)    // publish
	s.release(e)
	return e.clock
}

// Fill pops up to want tasks from the lowest bucket available to the
// engine's socket (stealing from other shards when its own is empty),
// returning the tasks and the completion time.
func (g *GlobalWL) Fill(e *Engine, want int, at sim.Time) ([]worklist.Task, sim.Time) {
	if e.clock < at {
		e.clock = at
	}
	own := e.CoreID * g.sockets / g.cores
	for probe := 0; probe < g.sockets; probe++ {
		s := g.shards[(own+probe)%g.sockets]
		if probe > 0 {
			e.load(s.mapAddr, mem.EngineLoad) // remote occupancy check
		}
		if len(s.buckets) == 0 {
			continue
		}
		// Short critical section: map walk + claim the chunk by moving
		// the head pointer; the task slots stream in afterwards without
		// the lock.
		s.acquire(e, e.clock)
		e.load(s.mapAddr, mem.EngineLoad)
		e.load(s.mapAddr+256, mem.EngineLoad)
		// Recompute the minimum bucket if stale.
		if _, ok := s.buckets[s.minB]; !ok {
			s.minB = noBucket
			for b := range s.buckets {
				if b < s.minB {
					s.minB = b
				}
			}
		}
		fromB := s.minB
		list := s.buckets[fromB]
		n := want
		// Fair-share cap: grabbing a huge chunk while little work remains
		// strands the tail on one engine while the other cores starve.
		if fair := g.size/g.cores + 1; n > fair {
			n = fair
		}
		if n > len(list) {
			n = len(list)
		}
		out := make([]worklist.Task, n)
		copy(out, list[:n])
		if n == len(list) {
			delete(s.buckets, fromB)
		} else {
			s.buckets[fromB] = list[n:]
		}
		e.load(s.mapAddr, mem.EngineStore)
		s.release(e)
		// Stream the claimed task slots in (4 tasks per 64B line).
		for i := 0; i < n; i += 4 {
			e.load(s.slotAddr(fromB, i), mem.EngineLoad)
		}
		g.size -= n
		return out, e.clock
	}
	return nil, e.clock
}
