package core

// Area model (§5.4). The paper prices the engine's SRAM structures with a
// 28nm memory compiler (~0.03 mm² total for the Table-3 sizing, scaling to
// 0.008 mm² at 14nm), estimates the control unit from the P54C-based Intel
// Quark (0.5 mm² at 32nm → 0.1 mm² at 14nm by die-photo analysis), and
// compares against a 12.1 mm² Skylake core-router-L3 slice. We reproduce
// that arithmetic with the published constants.

// AreaReport is the §5.4 area breakdown.
type AreaReport struct {
	SRAMBytes       int     // engine SRAM structures + L2 prefetch bits
	SRAM28nm        float64 // mm²
	SRAM14nm        float64 // mm²
	ControlUnit14nm float64 // mm²
	Total14nm       float64 // mm²
	SkylakeSlice    float64 // mm²
	OverheadPercent float64
}

// sramMM2Per28nmByte calibrates the memory-compiler figure: the paper's
// structure set (local queue 64x16B, threadlet queue 128x~24B, 2KB I-mem,
// 2KB D-mem, 32-entry load buffer, 4096 prefetch bits) is ~10 KB and
// totals ~0.03 mm² on 28nm.
const sramMM2Per28nmByte = 0.03 / (10 * 1024)

// EngineSRAMBytes returns the engine's SRAM budget for a configuration,
// including the 1-bit-per-L2-line prefetch metadata.
func EngineSRAMBytes(cfg Config, l2Lines int) int {
	localQ := cfg.LocalQ * 16      // two 64-bit values per task (§4.1)
	threadQ := cfg.ThreadletQ * 24 // threadlet descriptor
	imem := 2 * 1024
	dmem := 2 * 1024            // ~64B per threadlet context (§5)
	loadBuf := cfg.LoadBuf * 16 // CAM entry: address + threadlet id
	pfBits := l2Lines / 8
	return localQ + threadQ + imem + dmem + loadBuf + pfBits
}

// Area computes the §5.4 report for a configuration.
func Area(cfg Config, l2Lines int) AreaReport {
	const (
		quark14nm    = 0.1  // control unit at 14nm
		skylakeSlice = 12.1 // core + router + L3 slice, 14nm
		scale28to14  = 0.27 // ~ (14/28)^2 with imperfect SRAM scaling
	)
	bytes := EngineSRAMBytes(cfg, l2Lines)
	s28 := float64(bytes) * sramMM2Per28nmByte
	s14 := s28 * scale28to14
	total := s14 + quark14nm
	return AreaReport{
		SRAMBytes:       bytes,
		SRAM28nm:        s28,
		SRAM14nm:        s14,
		ControlUnit14nm: quark14nm,
		Total14nm:       total,
		SkylakeSlice:    skylakeSlice,
		OverheadPercent: total / skylakeSlice * 100,
	}
}
