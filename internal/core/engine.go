// Package core implements the paper's contribution: the Minnow engine, a
// lightweight multithreaded offload engine paired with each CMP core
// (§4-§5). The engine
//
//   - offloads worklist operations: a hardened front-end serves
//     minnow_enqueue/minnow_dequeue from a small local queue (Fig. 12),
//     spilling and filling a software global priority worklist that lives
//     in simulated memory and is accessed through the core's L2 and L2
//     TLB (Fig. 13);
//   - performs worklist-directed prefetching: whenever a task enters the
//     local queue it is guaranteed to run on this core, so the engine
//     spawns prefetch threadlets that walk the task's data (Fig. 14),
//     throttled by a credit pool tied to one prefetch bit per L2 line
//     (§5.3.1), with reservation-based deadlock avoidance (§5.3.2).
//
// The engine is a simulation actor: its back-end executes one threadlet
// per Step, context-switching on every L2 access, with in-flight loads
// bounded by the CAM load buffer.
//
// §4 notes that "cores may share a single Minnow engine to reduce
// resources" while the paper evaluates dedicated engines only; this
// implementation supports both — a shared engine keeps one front-end
// (local queue, prefetch streams) per attached core and multiplexes the
// single back-end across them (see NewSharedEngine and the
// shared-engines ablation).
//
// Determinism contract: the engine interacts with the rest of the system
// only through timestamped memory accesses and the wake callback, so its
// spill/fill/prefetch schedule reproduces exactly for a given run. The
// optional Trace ring buffer and the obs timeline hooks (TL/Track) record
// those events as they are timed and never feed back into them.
package core

import (
	"fmt"

	"minnow/internal/fault"
	"minnow/internal/mem"
	"minnow/internal/obs"
	"minnow/internal/sim"
	"minnow/internal/stats"
	"minnow/internal/trace"
	"minnow/internal/worklist"
)

// Config sets the Minnow engine parameters (§5.1/§6.2 defaults:
// 64-entry local queue at 10-cycle access, 128-entry threadlet queue,
// 32-entry load buffer with 4-cycle wakeup, 32 credits).
type Config struct {
	LocalQ        int
	LocalQLatency sim.Time
	ThreadletQ    int
	LoadBuf       int
	LoadBufWake   sim.Time
	ContextSwitch sim.Time // back-end pipeline occupancy per load issue
	Credits       int
	// RefillThreshold triggers a proactive fill when the local queue
	// drops below it (§5.2).
	RefillThreshold int
	// FillChunk is how many tasks one fill threadlet streams in.
	FillChunk int
	// SpillBatch is how many spilled tasks one threadlet groups under a
	// single global-worklist lock acquisition (§5.2's grouping).
	SpillBatch int
	// LgInterval is the bucket interval of the offloaded priority
	// worklist.
	LgInterval uint
	// Prefetch enables worklist-directed prefetching.
	Prefetch bool
	// Program generates prefetch threadlets per task; nil with Prefetch
	// set means the standard Fig. 14 program must be installed by the
	// harness.
	Program PrefetchProgram
}

// DefaultConfig returns the paper's engine parameters.
func DefaultConfig() Config {
	return Config{
		LocalQ:          64,
		LocalQLatency:   10,
		ThreadletQ:      128,
		LoadBuf:         32,
		LoadBufWake:     4,
		ContextSwitch:   2,
		Credits:         32,
		RefillThreshold: 16,
		FillChunk:       48,
		SpillBatch:      16,
		LgInterval:      3,
		Prefetch:        true,
	}
}

// noBucket is the local-queue bucket value meaning "empty, any priority
// accepted".
const noBucket = int64(1) << 62

// frontEnd is the per-core half of an engine: the hardened local queue
// plus the prefetch streams armed for tasks guaranteed to run on that
// core. Dedicated engines have exactly one.
type frontEnd struct {
	coreID      int
	localQ      []worklist.Task
	localBucket int64
	enqSeq      int64 // tasks ever inserted into the local queue
	deqSeq      int64 // tasks ever dequeued from it
	streams     []*streamState
	doFill      bool
}

// Engine is a Minnow engine serving one or more cores.
type Engine struct {
	// CoreID is the engine's attach point (its spill/fill traffic goes
	// through this core's L2 and L2 TLB); for dedicated engines it is
	// the one served core.
	CoreID int
	cfg    Config
	mem    *mem.System
	gwl    *GlobalWL

	fes  []*frontEnd
	byID map[int]*frontEnd

	clock sim.Time // shared back-end local time

	spillQ  []worklist.Task // tasks awaiting a spill threadlet
	credits int

	loadDone []sim.Time // load-buffer occupancy ring
	loadSeq  int64

	rr int // round-robin cursor over front-ends

	// wake re-arms this engine actor in the simulation (set by the
	// harness).
	wake func(at sim.Time)

	// Trace, when non-nil, records engine events (minnowsim -trace).
	Trace *trace.Buffer

	// TL, when non-nil, receives threadlet spans and stall instants on
	// Track (timeline observability; set by the harness).
	TL    *obs.Timeline
	Track obs.TrackID

	// Inj, when non-nil, is the deterministic fault injector (set by the
	// harness). Nil in fault-free runs, costing one comparison per
	// decision point.
	Inj *fault.Injector
	// FaultID is this engine's index in the fault plan's engine space.
	FaultID int

	offline bool // an injected fault took this engine permanently offline
	marked  int  // prefetch-marked L2 lines whose credit is outstanding
	lost    int  // credits dropped in flight by injected credit-loss faults

	Stat stats.EngineStats
}

type streamState struct {
	s       PrefetchStream
	buf     []uint64
	seq     int64 // local-queue sequence number of the stream's task
	started bool
}

// NewEngine builds a dedicated (single-core) engine.
func NewEngine(coreID int, cfg Config, m *mem.System, gwl *GlobalWL) *Engine {
	return NewSharedEngine([]int{coreID}, cfg, m, gwl)
}

// NewSharedEngine builds one engine serving the given cores (§4's
// resource-sharing variant). The first core is the attach point.
func NewSharedEngine(coreIDs []int, cfg Config, m *mem.System, gwl *GlobalWL) *Engine {
	if len(coreIDs) == 0 {
		panic("core: engine needs at least one core")
	}
	// Normalize nonsensical structure sizes to the §5.1 defaults rather
	// than running a broken engine: LoadBuf <= 0 made loadFor divide by a
	// zero-length ring, and LocalQ/ThreadletQ/FillChunk <= 0 livelocked
	// the spill/fill path (every enqueue spills, every fill streams zero
	// tasks). Valid configurations pass through untouched.
	def := DefaultConfig()
	if cfg.LocalQ <= 0 {
		cfg.LocalQ = def.LocalQ
	}
	if cfg.LocalQLatency < 0 {
		cfg.LocalQLatency = def.LocalQLatency
	}
	if cfg.ThreadletQ <= 0 {
		cfg.ThreadletQ = def.ThreadletQ
	}
	if cfg.LoadBuf <= 0 {
		cfg.LoadBuf = def.LoadBuf
	}
	if cfg.FillChunk <= 0 {
		cfg.FillChunk = def.FillChunk
	}
	if cfg.SpillBatch <= 0 {
		cfg.SpillBatch = def.SpillBatch
	}
	if cfg.RefillThreshold < 0 {
		cfg.RefillThreshold = 0
	}
	if cfg.Credits < 0 {
		cfg.Credits = 0
	}
	e := &Engine{
		CoreID:   coreIDs[0],
		cfg:      cfg,
		mem:      m,
		gwl:      gwl,
		credits:  cfg.Credits,
		loadDone: make([]sim.Time, cfg.LoadBuf),
		byID:     make(map[int]*frontEnd, len(coreIDs)),
	}
	for _, id := range coreIDs {
		fe := &frontEnd{coreID: id, localBucket: noBucket}
		e.fes = append(e.fes, fe)
		e.byID[id] = fe
	}
	return e
}

// SetWake installs the actor wake callback.
func (e *Engine) SetWake(f func(at sim.Time)) { e.wake = f }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Credits returns the current credit count (tests).
func (e *Engine) Credits() int { return e.credits }

// MinLatency returns the engine's conservative timing floor: the local
// queue access latency every engine-mediated worklist operation pays at
// minimum. Threadlet execution, spill/fill traffic, and prefetch issue
// all complete at or after their start plus this floor; it reads only
// immutable configuration.
func (e *Engine) MinLatency() sim.Time { return e.cfg.LocalQLatency }

// CreditSlack returns how many prefetches the engine could issue right
// now before the credit pool pauses it — the pool headroom. It reads
// engine-local state only, but note the credits themselves are returned
// by other actors' memory traffic (mem.System's credit events), so slack
// observed during a weave step is stale by the next step; it is a
// diagnostic and validation quantity, not a horizon.
func (e *Engine) CreditSlack() int {
	if e.credits < 0 {
		return 0
	}
	return e.credits
}

// Clock returns the back-end's local time (diagnostics).
func (e *Engine) Clock() sim.Time { return e.clock }

// Cores returns the IDs of the cores this engine serves.
func (e *Engine) Cores() []int {
	out := make([]int, len(e.fes))
	for i, fe := range e.fes {
		out[i] = fe.coreID
	}
	return out
}

// LocalLen returns the primary core's local queue depth (tests).
func (e *Engine) LocalLen() int { return len(e.fes[0].localQ) }

// QueuedTasks returns the tasks resident in this engine: local queues
// plus the spill queue awaiting threadlets. Zero-cost bookkeeping the
// observability sampler adds to the global worklist length for the
// paper's occupancy-over-time curves.
func (e *Engine) QueuedTasks() int64 {
	n := int64(len(e.spillQ))
	for _, fe := range e.fes {
		n += int64(len(fe.localQ))
	}
	return n
}

// bucketOf discretizes a task priority (Fig. 12: priority >> lgBucketInt).
func (e *Engine) bucketOf(p int64) int64 { return p >> e.cfg.LgInterval }

// busy reports whether the back-end has pending threadlets.
func (e *Engine) busy() bool {
	if len(e.spillQ) > 0 {
		return true
	}
	for _, fe := range e.fes {
		if fe.doFill || len(fe.streams) > 0 {
			return true
		}
	}
	return false
}

// catchUp advances an *idle* back-end's clock to a front-end request's
// arrival time. A busy back-end keeps its own (earlier) clock — it still
// owns the simulated time between the core's coarse-grained steps.
func (e *Engine) catchUp(coreNow sim.Time) {
	if !e.busy() && e.clock < coreNow {
		e.clock = coreNow
	}
}

// Deadlock avoidance (§5.3.2) uses virtual queues per threadlet type with
// reserved entries: spill/fill threadlets and prefetch threadlets each own
// half the threadlet queue. Prefetch streams reserve two entries each (one
// for prefetchTask, one for its spawned prefetchEdge threadlets), and the
// 64-entry local queue times two exactly fits the prefetch half plus the
// spill half of the 128-entry queue; spill threadlets always complete
// without spawning, so the spill virtual queue always drains.

// spillCapacity is the spill/fill virtual queue size.
func (e *Engine) spillCapacity() int { return e.cfg.ThreadletQ / 2 }

// spillBacklog counts occupied spill/fill virtual-queue entries.
func (e *Engine) spillBacklog() int {
	n := len(e.spillQ)
	for _, fe := range e.fes {
		if fe.doFill {
			n++
		}
	}
	return n
}

// streamCount sums pending prefetch streams across front-ends.
func (e *Engine) streamCount() int {
	n := 0
	for _, fe := range e.fes {
		n += len(fe.streams)
	}
	return n
}

// --- Accelerator interface (called synchronously by the served cores) ---

// Enqueue implements minnow_enqueue from the engine's primary core
// (dedicated-engine API; shared engines use EnqueueFrom).
func (e *Engine) Enqueue(t worklist.Task, coreNow sim.Time) sim.Time {
	return e.EnqueueFrom(e.CoreID, t, coreNow)
}

// EnqueueFrom implements minnow_enqueue: core `coreID` hands (priority,
// task) to its front-end. Returns the time the core may continue. If the
// threadlet queue cannot take another spill, the core stalls until the
// back-end drains (backpressure instead of dropped work).
func (e *Engine) EnqueueFrom(coreID int, t worklist.Task, coreNow sim.Time) sim.Time {
	fe := e.byID[coreID]
	e.catchUp(coreNow)
	done := coreNow + e.cfg.LocalQLatency
	b := e.bucketOf(t.Priority)
	if len(fe.localQ) < e.cfg.LocalQ && (b <= fe.localBucket || fe.localBucket == noBucket) {
		// Fig. 12 fast path: highest-priority work stays local.
		fe.localQ = append(fe.localQ, t)
		fe.localBucket = b
		e.Stat.LocalEnq++
		fe.enqSeq++
		e.Trace.Emit(done, e.CoreID, coreID, trace.EvEnqueue, int64(t.Node))
		e.startPrefetch(fe, t, fe.enqSeq, done)
		return done
	}
	// Spill to the global worklist via a threadlet. If the spill virtual
	// queue is full, the core stalls while the back-end drains it (spill
	// threadlets never spawn, so this always makes progress).
	for e.spillBacklog() >= e.spillCapacity() {
		if e.clock < done {
			e.clock = done
		}
		if len(e.spillQ) > 0 {
			e.spillOnce()
		} else if !e.step() {
			// The backlog is entirely pending fills and nothing is
			// runnable right now (tiny shared-engine configurations).
			// Draining an empty spill queue would spin forever; accept
			// the task into the spill queue and let the back-end catch
			// up when it wakes.
			break
		}
		if done < e.clock {
			done = e.clock
		}
	}
	e.spillQ = append(e.spillQ, t)
	e.Trace.Emit(done, e.CoreID, coreID, trace.EvEnqueueSpill, int64(t.Node))
	if e.wake != nil {
		e.wake(done)
	}
	return done
}

// Dequeue implements minnow_dequeue from the primary core.
func (e *Engine) Dequeue(coreNow sim.Time) (worklist.Task, sim.Time, bool) {
	return e.DequeueFrom(e.CoreID, coreNow)
}

// DequeueFrom implements minnow_dequeue: return the next task from core
// `coreID`'s local queue. ok=false means the local queue is empty right
// now; the engine arranges a fill and the core retries (the instruction
// "stalls until a task is available", which the framework models as a
// poll loop).
func (e *Engine) DequeueFrom(coreID int, coreNow sim.Time) (t worklist.Task, ready sim.Time, ok bool) {
	fe := e.byID[coreID]
	e.catchUp(coreNow)
	ready = coreNow + e.cfg.LocalQLatency
	if len(fe.localQ) > 0 {
		t = fe.localQ[0]
		fe.localQ = fe.localQ[1:]
		e.Stat.LocalDeq++
		fe.deqSeq++
		if len(fe.localQ) == 0 {
			fe.localBucket = noBucket
		}
		e.Trace.Emit(ready, e.CoreID, coreID, trace.EvDequeue, int64(t.Node))
		e.maybeRefill(fe, ready)
		return t, ready, true
	}
	// Empty: demand a fill if the global worklist may have work.
	e.Trace.Emit(ready, e.CoreID, coreID, trace.EvDequeueEmpty, 0)
	if e.gwl.Len() > 0 || len(e.spillQ) > 0 {
		fe.doFill = true
		if e.wake != nil {
			e.wake(ready)
		}
	}
	return worklist.Task{}, ready, false
}

// Flush implements minnow_flush: push every front-end's local-queue tasks
// back to the global worklist (core context switch / shutdown). Timing is
// charged to the engine clock.
func (e *Engine) Flush(coreNow sim.Time) sim.Time {
	if e.clock < coreNow {
		e.clock = coreNow
	}
	e.Trace.Emit(coreNow, e.CoreID, e.CoreID, trace.EvFlush, 0)
	for _, fe := range e.fes {
		for _, t := range fe.localQ {
			e.clock = e.gwl.Spill(e, t, e.clock)
			e.Stat.Spills++
		}
		fe.localQ = fe.localQ[:0]
		fe.localBucket = noBucket
		fe.streams = fe.streams[:0]
	}
	// Tasks still waiting for a spill threadlet are part of the flush
	// contract too — leaving them stranded would lose work across a
	// context switch. Empty in ordinary shutdown (termination implies the
	// spill queue drained), so this is free in passing runs.
	e.drainSpills()
	return e.clock
}

// maybeRefill requests a proactive fill when the local queue runs low
// (§5.2) and the global worklist has work the local queue would accept:
// "if tasks at the head of the global worklist are of equal or higher
// priority than the local queue, they are streamed in" — fetching
// lower-priority work while local work remains would only bounce it back.
func (e *Engine) maybeRefill(fe *frontEnd, at sim.Time) {
	if len(fe.localQ) >= e.cfg.RefillThreshold || fe.doFill || e.gwl.Len() == 0 {
		return
	}
	if len(fe.localQ) > 0 && e.gwl.MinBucket() > fe.localBucket {
		return
	}
	fe.doFill = true
	if e.wake != nil {
		e.wake(at)
	}
}

// startPrefetch arms a prefetch stream for a task just inserted into a
// local queue ("whenever a Minnow engine enqueues a task into its local
// queue ... triggering a task prefetch", §5.3).
func (e *Engine) startPrefetch(fe *frontEnd, t worklist.Task, seq int64, at sim.Time) {
	if !e.cfg.Prefetch || e.cfg.Program == nil {
		return
	}
	// Reservation check against the prefetch virtual queue: a stream
	// needs 2 entries. With the default sizing (64-entry local queue,
	// 128-entry threadlet queue) this never trips; shrunk configurations
	// skip the prefetch rather than deadlock.
	if 2*(e.streamCount()+1) > e.cfg.ThreadletQ {
		return
	}
	fe.streams = append(fe.streams, &streamState{s: e.cfg.Program.Start(t), seq: seq})
	if e.wake != nil {
		e.wake(at)
	}
}

// --- Back-end (actor) ---

// Horizon implements sim.BoundedActor as an explicit always-weave
// opt-out: every engine threadlet can touch shared state from its first
// cycle — spills and fills go through the global worklist shards, local
// enqueue/dequeue moves tasks other cores observe, prefetches reserve
// shared L3/NoC/DRAM resources and draw from the credit pool, and
// completion calls the registered wake callback. There is no cycle count
// below which an engine step is provably private, so it declares the
// sentinel and the parallel engine serializes it in the weave. (The
// engine does have a useful timing floor — see MinLatency — but a floor
// on when an operation *completes* is not a window in which the engine
// refrains from *touching* shared queues, so it cannot become a horizon.)
func (e *Engine) Horizon() sim.Time { return sim.HorizonAlwaysWeave }

// Step implements sim.Actor: execute one threadlet.
func (e *Engine) Step() (sim.Time, bool) {
	if e.offline {
		return e.clock, true // dead engine: park forever
	}
	if e.Inj != nil {
		if d := e.Inj.EngineStall(); d > 0 {
			// Injected back-end stall: the engine freezes for d cycles
			// and retries the threadlet afterwards.
			e.clock += d
			e.Stat.FaultStalls++
			e.Stat.StepsRun++
			return e.clock, false
		}
	}
	e.Stat.StepsRun++
	if !e.step() {
		e.Stat.Parks++
		return e.clock, true // park; Wake re-arms
	}
	return e.clock, false
}

// step runs one threadlet; reports whether there was anything to do.
// Scheduling priority: fills first (a core blocks on an empty local
// queue), then prefetch streams (timeliness-critical — a prefetch issued
// after its task already ran is pure pollution), then background spills
// (no core ever waits on them). Front-ends are served round-robin.
func (e *Engine) step() bool {
	lockAt := e.gwl.LockFree(e.CoreID)
	canLock := lockAt <= e.clock

	n := len(e.fes)
	if canLock {
		for i := 0; i < n; i++ {
			fe := e.fes[(e.rr+i)%n]
			if fe.doFill {
				fe.doFill = false
				if e.gwl.Len() == 0 && len(e.spillQ) > 0 {
					// The demanded work sits in our own spill queue;
					// push it out so the fill can find it.
					e.drainSpills()
				}
				e.runFill(fe)
				e.rr++
				e.Stat.Threadlets++
				return true
			}
		}
	}
	for i := 0; i < n; i++ {
		fe := e.fes[(e.rr+i)%n]
		if len(fe.streams) > 0 {
			if e.stepPrefetch(fe) {
				e.rr++
				return true
			}
			break // credit-stalled: the pool is shared, stop trying
		}
	}
	if len(e.spillQ) > 0 && canLock {
		e.spillOnce()
		return true
	}
	if !canLock && (len(e.spillQ) > 0 || e.anyFill()) {
		// The shard lock is held by another engine and there is nothing
		// else to run: idle this context until the lock frees.
		if lockAt > e.clock {
			e.clock = lockAt
		}
		return true
	}
	return false
}

func (e *Engine) anyFill() bool {
	for _, fe := range e.fes {
		if fe.doFill {
			return true
		}
	}
	return false
}

// spillOnce runs one spill threadlet (a batch under one lock).
func (e *Engine) spillOnce() {
	n := len(e.spillQ)
	if n > e.cfg.SpillBatch {
		n = e.cfg.SpillBatch
	}
	start := e.clock
	e.clock = e.gwl.SpillBatch(e, e.spillQ[:n], e.clock)
	e.spillQ = append(e.spillQ[:0], e.spillQ[n:]...)
	e.Stat.Spills += int64(n)
	e.Stat.Threadlets++
	e.Trace.Emit(e.clock, e.CoreID, e.CoreID, trace.EvSpill, int64(n))
	e.TL.Span(e.Track, obs.EvSpill, start, e.clock, int64(n))
}

// drainSpills empties the spill queue.
func (e *Engine) drainSpills() {
	for len(e.spillQ) > 0 {
		e.spillOnce()
	}
}

// runFill executes a fill threadlet: stream tasks from the global
// worklist into fe's local queue (Fig. 13).
func (e *Engine) runFill(fe *frontEnd) {
	want := e.cfg.LocalQ - len(fe.localQ)
	if want > e.cfg.FillChunk {
		want = e.cfg.FillChunk
	}
	if want <= 0 {
		return
	}
	start := e.clock
	tasks, done := e.gwl.Fill(e, want, e.clock)
	e.clock = done
	e.Trace.Emit(done, e.CoreID, fe.coreID, trace.EvFill, int64(len(tasks)))
	e.TL.Span(e.Track, obs.EvFill, start, done, int64(len(tasks)))
	for _, t := range tasks {
		b := e.bucketOf(t.Priority)
		// "If tasks at the head of the global worklist are of equal or
		// higher priority than the local queue, they are streamed in...
		// if the local queue is empty, tasks are unconditionally
		// accepted." Lower-priority stragglers go back.
		if len(fe.localQ) == 0 || b <= fe.localBucket {
			if len(fe.localQ) < e.cfg.LocalQ {
				fe.localQ = append(fe.localQ, t)
				fe.localBucket = b
				e.Stat.Fills++
				fe.enqSeq++
				e.startPrefetch(fe, t, fe.enqSeq, e.clock)
				continue
			}
		}
		e.spillQ = append(e.spillQ, t)
	}
	e.maybeRefill(fe, e.clock)
}

// DebugSyntheticEngineMem short-circuits engine memory accesses with a
// fixed latency, bypassing the shared hierarchy (diagnostic bisection
// only; never set in real runs).
var DebugSyntheticEngineMem bool

// load issues one engine load through core's L2, bounded by the load
// buffer, and returns its completion (including the CAM wakeup latency).
func (e *Engine) loadFor(core int, addr uint64, kind mem.Kind) mem.Result {
	issue := e.clock
	if slot := e.loadDone[e.loadSeq%int64(len(e.loadDone))]; slot > issue {
		issue = slot // load buffer full: wait for the oldest entry
	}
	if DebugSyntheticEngineMem {
		res := mem.Result{Done: issue + 60, Level: 3}
		e.loadDone[e.loadSeq%int64(len(e.loadDone))] = res.Done
		e.loadSeq++
		e.clock = issue + e.cfg.ContextSwitch
		return res
	}
	res := e.mem.Access(core, addr, kind, issue)
	res.Done += e.cfg.LoadBufWake
	e.loadDone[e.loadSeq%int64(len(e.loadDone))] = res.Done
	e.loadSeq++
	e.clock = issue + e.cfg.ContextSwitch
	if res.TLBMiss {
		e.Stat.TLBMissExcps++
	}
	return res
}

// load issues an engine load through the attach-point core's L2
// (worklist spill/fill traffic). Under an injected spill-retry fault the
// access transiently fails and is reissued after a bounded exponential
// backoff (the injector caps the attempt count, so the loop terminates).
func (e *Engine) load(addr uint64, kind mem.Kind) mem.Result {
	res := e.loadFor(e.CoreID, addr, kind)
	if e.Inj != nil {
		for attempt := 1; ; attempt++ {
			backoff, failed := e.Inj.SpillRetry(attempt)
			if !failed {
				break
			}
			e.Stat.SpillRetries++
			if e.clock < res.Done {
				e.clock = res.Done
			}
			e.clock += backoff
			res = e.loadFor(e.CoreID, addr, kind)
		}
	}
	return res
}

// stepPrefetch runs one prefetch threadlet: the next chunk of fe's oldest
// stream. Returns false (nothing done) when throttled out of credits.
func (e *Engine) stepPrefetch(fe *frontEnd) bool {
	// Drop streams whose task the core has already dequeued — whether or
	// not they have issued anything. Prefetching behind the execution
	// stream is pure cache pollution, and worse: the marked lines are
	// never demanded, so their credits only come back through slow LRU
	// eviction, starving the prefetcher for everyone else.
	for len(fe.streams) > 0 {
		st := fe.streams[0]
		if st.seq <= fe.deqSeq {
			fe.streams = fe.streams[1:]
			e.Stat.LateDrops++
			e.Trace.Emit(e.clock, e.CoreID, fe.coreID, trace.EvStreamDrop, st.seq)
			e.TL.Instant(e.Track, obs.EvStreamDrop, e.clock, st.seq)
			continue
		}
		break
	}
	if len(fe.streams) == 0 {
		return true
	}
	st := fe.streams[0]
	if e.credits <= 0 {
		if e.lost > 0 && e.marked == 0 {
			// Credit-leak audit (§5.3.1's pool is the prefetcher's only
			// throttle, so a leaked credit starves it forever): every
			// marked line has been consumed or evicted, yet the pool is
			// still empty — the remaining deficit can only be credits
			// dropped in flight. Re-mint them.
			e.credits += e.lost
			e.Stat.CreditsRecovered += int64(e.lost)
			e.Inj.RecordRecovered(e.lost)
			e.lost = 0
		}
		if e.credits <= 0 {
			// Out of credits: pause prefetching until a credit returns
			// (OnCredit wakes us).
			e.Stat.CreditStalls++
			e.Trace.Emit(e.clock, e.CoreID, fe.coreID, trace.EvCreditStall, 0)
			e.TL.Instant(e.Track, obs.EvCreditStall, e.clock, 0)
			return false
		}
	}
	var ok bool
	st.buf, ok = st.s.Next(st.buf[:0])
	if !ok {
		fe.streams = fe.streams[1:]
		e.Stat.StreamsDone++
		return true
	}
	st.started = true
	e.Stat.Threadlets++
	e.Trace.Emit(e.clock, e.CoreID, fe.coreID, trace.EvPrefetch, int64(len(st.buf)))
	pfStart := e.clock
	var prevDone sim.Time
	for i, addr := range st.buf {
		if i > 0 && prevDone > e.clock {
			// Within a threadlet, each load's address comes from the
			// previous load's data (edge -> dest node).
			e.clock = prevDone
		}
		// Prefetches land in the L2 of the core that will run the task.
		res := e.loadFor(fe.coreID, addr, mem.EnginePrefetch)
		prevDone = res.Done
		e.Stat.Prefetches++
		if res.Marked {
			e.marked++
			e.credits--
			if e.credits <= 0 && i < len(st.buf)-1 {
				// Mid-threadlet credit exhaustion: the remaining loads
				// of the threadlet still issue (they were reserved), but
				// record the stall.
				e.Stat.CreditStalls++
			}
		}
	}
	e.TL.Span(e.Track, obs.EvPrefetch, pfStart, e.clock, int64(len(st.buf)))
	return true
}

// CreditReturn is called by the memory system hook when a prefetch-marked
// line in one of this engine's cores' L2s is consumed or evicted. Under
// an injected credit-loss fault the return is dropped in flight; the leak
// audit in stepPrefetch eventually recovers the pool.
func (e *Engine) CreditReturn(used bool) {
	if e.marked > 0 {
		e.marked--
		if e.Inj != nil && e.Inj.LoseCredit() {
			e.lost++
			e.Stat.CreditsLost++
			if e.streamCount() > 0 && e.wake != nil {
				e.wake(e.clock) // let the leak audit run
			}
			return
		}
	}
	e.credits++
	if e.credits > e.cfg.Credits {
		e.credits = e.cfg.Credits
	}
	if e.streamCount() > 0 && e.wake != nil {
		e.wake(e.clock)
	}
}

// MarkedOutstanding returns how many prefetch-marked L2 lines have not
// yet returned their credit (invariant audits).
func (e *Engine) MarkedOutstanding() int { return e.marked }

// CheckCredits audits the §5.3.1 credit identity at a quiescent point:
// the pool must never be overfull, and credits + marked-outstanding +
// injected-losses must equal the configured pool. Engines whose cores
// also run a hardware prefetcher are exempt — hwpf-marked lines trigger
// spurious (clamped) returns — and the harness skips them.
func (e *Engine) CheckCredits() error {
	if e.cfg.Credits <= 0 {
		return nil
	}
	if e.credits > e.cfg.Credits {
		return fmt.Errorf("core: engine@%d credits %d exceed pool %d", e.CoreID, e.credits, e.cfg.Credits)
	}
	if got := e.credits + e.marked + e.lost; got != e.cfg.Credits {
		return fmt.Errorf("core: engine@%d credit leak: credits %d + marked %d + lost %d = %d, want pool %d",
			e.CoreID, e.credits, e.marked, e.lost, got, e.cfg.Credits)
	}
	return nil
}

// Offline reports whether an injected fault took this engine permanently
// offline.
func (e *Engine) Offline() bool { return e.offline }

// TakeOffline kills the engine (engine-offline fault injection): every
// task resident in its queues — local queues and tasks awaiting spill
// threadlets — is drained out and returned for rescue into the software
// fallback worklist, pending fills and prefetch streams are cancelled,
// and Step parks forever. The return order is deterministic (front-ends
// in attach order, then the spill queue).
func (e *Engine) TakeOffline() []worklist.Task {
	e.offline = true
	var out []worklist.Task
	for _, fe := range e.fes {
		out = append(out, fe.localQ...)
		fe.localQ = nil
		fe.localBucket = noBucket
		fe.streams = nil
		fe.doFill = false
	}
	out = append(out, e.spillQ...)
	e.spillQ = nil
	e.Stat.Rescued += int64(len(out))
	return out
}
