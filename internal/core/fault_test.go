package core

import (
	"testing"

	"minnow/internal/fault"
	"minnow/internal/graph"
	"minnow/internal/mem"
	"minnow/internal/sim"
)

// testEngineWithGWL is testEngine but keeps the global worklist handle.
func testEngineWithGWL(cfg Config) (*Engine, *GlobalWL) {
	as := graph.NewAddrSpace()
	mcfg := mem.DefaultConfig(1)
	mcfg.ScaleCaches(16)
	msys := mem.NewSystem(mcfg)
	gwl := NewGlobalWL(as, 1, 1)
	e := NewEngine(0, cfg, msys, gwl)
	msys.OnCredit = func(c int, used bool) { e.CreditReturn(used) }
	return e, gwl
}

// TestDegenerateConfigNormalized feeds NewSharedEngine structure sizes
// that used to panic (LoadBuf modulo zero) or livelock (zero-capacity
// queues) and checks the engine still round-trips tasks.
func TestDegenerateConfigNormalized(t *testing.T) {
	cfg := Config{
		LocalQ:          -4,
		LocalQLatency:   -1,
		ThreadletQ:      0,
		LoadBuf:         0,
		FillChunk:       -1,
		SpillBatch:      0,
		RefillThreshold: -7,
		Credits:         -2,
		LgInterval:      3,
	}
	e, _ := testEngineWithGWL(cfg)
	if got := e.Config(); got.LocalQ <= 0 || got.ThreadletQ <= 0 || got.LoadBuf <= 0 ||
		got.FillChunk <= 0 || got.SpillBatch <= 0 || got.Credits < 0 ||
		got.RefillThreshold < 0 || got.LocalQLatency < 0 {
		t.Fatalf("config not normalized: %+v", got)
	}
	const n = 100
	for i := int32(0); i < n; i++ {
		e.Enqueue(task(int64(i%5), i), sim.Time(i*10))
	}
	drainEngine(e)
	seen := map[int32]bool{}
	now := sim.Time(10_000)
	for guard := 0; len(seen) < n && guard < 100_000; guard++ {
		tk, ready, ok := e.Dequeue(now)
		now = ready + 20
		if ok {
			if seen[tk.Node] {
				t.Fatalf("task %d dequeued twice", tk.Node)
			}
			seen[tk.Node] = true
			continue
		}
		drainEngine(e)
	}
	if len(seen) != n {
		t.Fatalf("recovered %d of %d tasks", len(seen), n)
	}
}

// TestTakeOfflineConservation kills an engine mid-stream and checks no
// task is lost: rescued tasks + global-worklist residue == enqueued.
func TestTakeOfflineConservation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prefetch = false
	cfg.LocalQ = 8 // small, so plenty spills
	e, gwl := testEngineWithGWL(cfg)
	const n = 200
	for i := int32(0); i < n; i++ {
		e.Enqueue(task(int64(i%7), i), sim.Time(i*5))
	}
	// Kill it mid-flight: some tasks sit in the local queue, some in the
	// spill queue, some already made it to the global worklist.
	for i := 0; i < 50; i++ {
		e.Step()
	}
	rescued := e.TakeOffline()
	residue := gwl.DrainAll()
	seen := map[int32]bool{}
	for _, tk := range append(rescued, residue...) {
		if seen[tk.Node] {
			t.Fatalf("task %d appears twice after rescue", tk.Node)
		}
		seen[tk.Node] = true
	}
	if len(seen) != n {
		t.Fatalf("rescue lost tasks: %d of %d accounted for", len(seen), n)
	}
	if !e.Offline() {
		t.Fatalf("engine not marked offline")
	}
	if e.Stat.Rescued != int64(len(rescued)) {
		t.Fatalf("Rescued stat %d, want %d", e.Stat.Rescued, len(rescued))
	}
	// A dead engine must refuse work and park forever.
	if _, done := e.Step(); !done {
		t.Fatalf("offline engine still stepping")
	}
}

// TestEngineStallInjection checks a heavy stall plan charges stall
// cycles on the engine back-end and counts them, without losing any
// task. (p=1 would freeze the back-end outright — that shape is the
// watchdog's to catch, not a drain test's.)
func TestEngineStallInjection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prefetch = false
	cfg.LocalQ = 4 // force spill traffic through the back-end
	e, _ := testEngineWithGWL(cfg)
	plan, err := fault.ParsePlan("seed=3;engine-stall:p=0.5,cycles=50")
	if err != nil {
		t.Fatal(err)
	}
	e.Inj = fault.NewInjector(plan)
	for i := int32(0); i < 32; i++ {
		e.Enqueue(task(0, i), sim.Time(i*10))
	}
	drainEngine(e)
	if e.Stat.FaultStalls == 0 {
		t.Fatalf("p=1 stall plan injected no stalls")
	}
	if e.Stat.Spills == 0 {
		t.Fatalf("stalled engine did no work")
	}
}

// TestSpillRetryInjection checks a p=1 spill-retry plan exercises the
// bounded backoff loop and still lands every spill.
func TestSpillRetryInjection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prefetch = false
	cfg.LocalQ = 4
	e, gwl := testEngineWithGWL(cfg)
	plan, err := fault.ParsePlan("seed=3;spill-retry:p=1,backoff=16,max=4")
	if err != nil {
		t.Fatal(err)
	}
	e.Inj = fault.NewInjector(plan)
	const n = 64
	for i := int32(0); i < n; i++ {
		e.Enqueue(task(0, i), sim.Time(i*10))
	}
	drainEngine(e)
	if e.Stat.SpillRetries == 0 {
		t.Fatalf("p=1 spill-retry plan caused no retries")
	}
	got := e.LocalLen() + gwl.Len()
	if got != n {
		t.Fatalf("tasks after retried spills: %d, want %d", got, n)
	}
}
