package core

import (
	"minnow/internal/fault"
	"minnow/internal/galois"
	"minnow/internal/prof"
	"minnow/internal/stats"
	"minnow/internal/worklist"
)

// MinnowScheduler adapts Minnow engines to the galois.Scheduler
// interface: worker threads issue minnow_enqueue / minnow_dequeue
// accelerator calls to their core's engine (Fig. 9 — workers call the
// Galois API, which translates to Minnow accelerator calls). With engine
// sharing, several cores route to the same engine.
//
// When failover is armed (engine-offline fault injection), the scheduler
// also implements the paper's engine-optional degradation: the moment a
// planned engine death is observed, every task resident in the Minnow
// fabric is rescued into a software fallback worklist and the dead
// engine's cores switch to it permanently. Fault-free runs never arm
// failover, so the only added cost is one nil comparison per operation.
type MinnowScheduler struct {
	byCore []*Engine // indexed by core ID

	inj      *fault.Injector
	gwl      *GlobalWL
	fallback worklist.Worklist
}

// NewMinnowScheduler builds the per-core routing table from a set of
// engines (dedicated or shared).
func NewMinnowScheduler(engines []*Engine, cores int) *MinnowScheduler {
	m := &MinnowScheduler{byCore: make([]*Engine, cores)}
	for _, e := range engines {
		for _, c := range e.Cores() {
			m.byCore[c] = e
		}
	}
	return m
}

// EngineFor returns the engine serving a core.
func (m *MinnowScheduler) EngineFor(core int) *Engine { return m.byCore[core] }

// EnableFailover arms the engine-offline degradation path: when the
// fault plan kills an engine, its resident tasks (plus the global
// worklist, whose only clients are the engines) drain into fb and the
// dead engine's cores use fb from then on. Called by the harness only
// when the plan contains an engine-offline clause.
func (m *MinnowScheduler) EnableFailover(inj *fault.Injector, gwl *GlobalWL, fb worklist.Worklist) {
	m.inj, m.gwl, m.fallback = inj, gwl, fb
}

// Fallback returns the software worklist dead engines' cores degrade to
// (nil unless EnableFailover armed it).
func (m *MinnowScheduler) Fallback() worklist.Worklist { return m.fallback }

// degraded reports whether the worker's engine is (or just became)
// offline, performing the one-time rescue drain on the transition. Only
// called with failover armed.
func (m *MinnowScheduler) degraded(e *Engine, w *galois.Worker) bool {
	if e.Offline() {
		return true
	}
	at, dies := m.inj.EngineOfflineAt(e.FaultID)
	if !dies || w.Core.Now() < at {
		return false
	}
	// The engine dies now. Rescue every task it holds, plus the global
	// worklist's contents, into the software fallback so no work is lost
	// (task conservation is what the chaos sweep asserts).
	tasks := e.TakeOffline()
	tasks = append(tasks, m.gwl.DrainAll()...)
	for _, t := range tasks {
		m.fallback.Push(&w.Ctx, t)
	}
	m.inj.RecordOffline(len(tasks))
	return true
}

// Push implements galois.Scheduler via minnow_enqueue.
func (m *MinnowScheduler) Push(w *galois.Worker, t worklist.Task) {
	e := m.byCore[w.Core.ID]
	if m.fallback != nil && m.degraded(e, w) {
		m.fallback.Push(&w.Ctx, t)
		return
	}
	now := w.Core.Now()
	done := e.EnqueueFrom(w.Core.ID, t, now)
	// Split the wait at the nominal local-queue latency: anything beyond
	// it is the engine's spill path holding the core (§5.1 backpressure),
	// which the profiler attributes separately. Advancing in two steps
	// charges the flat worklist counter the identical total, so the
	// split is invisible unless profiling is on.
	nominal := now + e.Config().LocalQLatency
	if nominal > done {
		nominal = done
	}
	w.Core.Advance(nominal, stats.CatWorklist)
	if done > nominal {
		r, cur := w.Core.ProfRegion(prof.RegionBackpressure)
		w.Core.Advance(done, stats.CatWorklist)
		w.Core.ProfRestore(r, cur)
	}
}

// Pop implements galois.Scheduler via minnow_dequeue.
func (m *MinnowScheduler) Pop(w *galois.Worker) (worklist.Task, bool) {
	e := m.byCore[w.Core.ID]
	if m.fallback != nil && m.degraded(e, w) {
		return m.fallback.Pop(&w.Ctx)
	}
	t, ready, ok := e.DequeueFrom(w.Core.ID, w.Core.Now())
	w.Core.Advance(ready, stats.CatWorklist)
	return t, ok
}

// Flush implements galois.Scheduler via minnow_flush.
func (m *MinnowScheduler) Flush(w *galois.Worker) {
	e := m.byCore[w.Core.ID]
	if e.Offline() {
		return // nothing resident; the software fallback needs no flush
	}
	e.Flush(w.Core.Now()) // flush runs on the engine; the core does not wait
}
