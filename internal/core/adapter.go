package core

import (
	"minnow/internal/galois"
	"minnow/internal/stats"
	"minnow/internal/worklist"
)

// MinnowScheduler adapts Minnow engines to the galois.Scheduler
// interface: worker threads issue minnow_enqueue / minnow_dequeue
// accelerator calls to their core's engine (Fig. 9 — workers call the
// Galois API, which translates to Minnow accelerator calls). With engine
// sharing, several cores route to the same engine.
type MinnowScheduler struct {
	byCore []*Engine // indexed by core ID
}

// NewMinnowScheduler builds the per-core routing table from a set of
// engines (dedicated or shared).
func NewMinnowScheduler(engines []*Engine, cores int) *MinnowScheduler {
	m := &MinnowScheduler{byCore: make([]*Engine, cores)}
	for _, e := range engines {
		for _, c := range e.Cores() {
			m.byCore[c] = e
		}
	}
	return m
}

// EngineFor returns the engine serving a core.
func (m *MinnowScheduler) EngineFor(core int) *Engine { return m.byCore[core] }

// Push implements galois.Scheduler via minnow_enqueue.
func (m *MinnowScheduler) Push(w *galois.Worker, t worklist.Task) {
	e := m.byCore[w.Core.ID]
	done := e.EnqueueFrom(w.Core.ID, t, w.Core.Now())
	w.Core.Advance(done, stats.CatWorklist)
}

// Pop implements galois.Scheduler via minnow_dequeue.
func (m *MinnowScheduler) Pop(w *galois.Worker) (worklist.Task, bool) {
	e := m.byCore[w.Core.ID]
	t, ready, ok := e.DequeueFrom(w.Core.ID, w.Core.Now())
	w.Core.Advance(ready, stats.CatWorklist)
	return t, ok
}

// Flush implements galois.Scheduler via minnow_flush.
func (m *MinnowScheduler) Flush(w *galois.Worker) {
	e := m.byCore[w.Core.ID]
	e.Flush(w.Core.Now()) // flush runs on the engine; the core does not wait
}
