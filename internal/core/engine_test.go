package core

import (
	"testing"
	"testing/quick"

	"minnow/internal/graph"
	"minnow/internal/mem"
	"minnow/internal/rng"
	"minnow/internal/sim"
	"minnow/internal/worklist"
)

func testEngine(cfg Config) (*Engine, *mem.System) {
	as := graph.NewAddrSpace()
	mcfg := mem.DefaultConfig(1)
	mcfg.ScaleCaches(16)
	msys := mem.NewSystem(mcfg)
	gwl := NewGlobalWL(as, 1, 1)
	e := NewEngine(0, cfg, msys, gwl)
	msys.OnCredit = func(c int, used bool) { e.CreditReturn(used) }
	return e, msys
}

func task(p int64, n int32) worklist.Task { return worklist.Task{Priority: p, Node: n, EdgeHi: -1} }

// drainEngine steps the engine until idle.
func drainEngine(e *Engine) {
	for i := 0; i < 1_000_000; i++ {
		if _, done := e.Step(); done {
			return
		}
	}
	panic("engine did not drain")
}

func TestLocalQueueFastPath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prefetch = false
	e, _ := testEngine(cfg)
	done := e.Enqueue(task(8, 1), 100)
	if done != 100+cfg.LocalQLatency {
		t.Fatalf("enqueue latency %d", done-100)
	}
	if e.LocalLen() != 1 || e.Stat.LocalEnq != 1 {
		t.Fatal("task not in local queue")
	}
	got, ready, ok := e.Dequeue(done)
	if !ok || got.Node != 1 {
		t.Fatalf("dequeue: %+v %v", got, ok)
	}
	if ready != done+cfg.LocalQLatency {
		t.Fatalf("dequeue latency %d", ready-done)
	}
}

func TestFig12EnqueueSemantics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prefetch = false
	cfg.LgInterval = 3
	e, _ := testEngine(cfg)
	// First task sets the local bucket (priority 8 -> bucket 1).
	e.Enqueue(task(8, 1), 0)
	// Same bucket: local.
	e.Enqueue(task(15, 2), 10)
	// Higher-priority (lower bucket): also local, bucket updates.
	e.Enqueue(task(0, 3), 20)
	if e.Stat.LocalEnq != 3 {
		t.Fatalf("local enqueues %d, want 3", e.Stat.LocalEnq)
	}
	// Lower-priority (higher bucket) after bucket dropped to 0: spills.
	e.Enqueue(task(64, 4), 30)
	drainEngine(e)
	if e.Stat.Spills != 1 {
		t.Fatalf("spills %d, want 1", e.Stat.Spills)
	}
}

func TestLocalQueueOverflowSpills(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prefetch = false
	cfg.LocalQ = 4
	e, _ := testEngine(cfg)
	for i := int32(0); i < 10; i++ {
		e.Enqueue(task(0, i), sim.Time(i*10))
	}
	if e.LocalLen() != 4 {
		t.Fatalf("local queue %d, want 4", e.LocalLen())
	}
	drainEngine(e)
	if e.Stat.Spills != 6 {
		t.Fatalf("spills %d, want 6", e.Stat.Spills)
	}
}

func TestDequeueTriggersFill(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prefetch = false
	cfg.LocalQ = 4
	e, _ := testEngine(cfg)
	for i := int32(0); i < 10; i++ {
		e.Enqueue(task(0, i), sim.Time(i*10))
	}
	drainEngine(e) // spills 6 tasks to the global worklist
	seen := map[int32]bool{}
	now := sim.Time(1000)
	for len(seen) < 10 {
		tk, ready, ok := e.Dequeue(now)
		now = ready + 50
		if ok {
			if seen[tk.Node] {
				t.Fatalf("task %d dequeued twice", tk.Node)
			}
			seen[tk.Node] = true
			continue
		}
		// Engine must be requesting a fill; run it.
		drainEngine(e)
	}
	if e.Stat.Fills == 0 {
		t.Fatal("no fill threadlets ran")
	}
}

func TestFIFOWithinLocalQueue(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prefetch = false
	e, _ := testEngine(cfg)
	for i := int32(0); i < 5; i++ {
		e.Enqueue(task(0, i), sim.Time(i))
	}
	for i := int32(0); i < 5; i++ {
		tk, _, ok := e.Dequeue(sim.Time(100 + i*20))
		if !ok || tk.Node != i {
			t.Fatalf("pop %d got %+v", i, tk)
		}
	}
}

func TestFlushEmptiesLocalQueue(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prefetch = false
	e, _ := testEngine(cfg)
	for i := int32(0); i < 5; i++ {
		e.Enqueue(task(0, i), sim.Time(i))
	}
	e.Flush(100)
	if e.LocalLen() != 0 {
		t.Fatal("flush left tasks local")
	}
	if e.Stat.Spills != 5 {
		t.Fatalf("flush spilled %d", e.Stat.Spills)
	}
}

func TestGlobalWLPriorityOrder(t *testing.T) {
	as := graph.NewAddrSpace()
	mcfg := mem.DefaultConfig(1)
	mcfg.ScaleCaches(16)
	msys := mem.NewSystem(mcfg)
	gwl := NewGlobalWL(as, 1, 1)
	cfg := DefaultConfig()
	cfg.Prefetch = false
	cfg.LgInterval = 0
	e := NewEngine(0, cfg, msys, gwl)
	r := rng.New(9)
	for i := 0; i < 60; i++ {
		gwl.Spill(e, task(int64(r.Intn(30)), int32(i)), e.Clock())
	}
	if gwl.Len() != 60 {
		t.Fatalf("len %d", gwl.Len())
	}
	prevMax := int64(-1)
	for gwl.Len() > 0 {
		tasks, _ := gwl.Fill(e, 8, e.Clock())
		for _, tk := range tasks {
			b := tk.Priority
			if b < prevMax {
				t.Fatalf("fill returned bucket %d after %d", b, prevMax)
			}
		}
		for _, tk := range tasks {
			if tk.Priority > prevMax {
				prevMax = tk.Priority
			}
		}
	}
}

func TestCreditConservationProperty(t *testing.T) {
	// Property: credits + marked-lines-outstanding == Credits at every
	// quiescent point.
	if err := quick.Check(func(seed uint64) bool {
		cfg := DefaultConfig()
		cfg.Credits = 8
		g := graph.UniformRandom(200, 4, seed)
		as := graph.NewAddrSpace()
		g.Bind(as, false)
		cfg.Program = &StandardProgram{G: g}
		cfg.Prefetch = true
		e, msys := testEngine(cfg)
		r := rng.New(seed)
		now := sim.Time(0)
		for i := 0; i < 100; i++ {
			now += sim.Time(r.Intn(50))
			switch r.Intn(3) {
			case 0:
				e.Enqueue(task(int64(r.Intn(4)), int32(r.Intn(200))), now)
			case 1:
				e.Dequeue(now)
			case 2:
				e.Step()
			}
		}
		drainLimit := 0
		for {
			_, done := e.Step()
			if done || drainLimit > 100000 {
				break
			}
			drainLimit++
		}
		// Outstanding marked lines from the cache counters.
		l2 := msys.L2Counters()
		outstanding := l2.PrefetchFills - l2.PrefetchUsed - l2.PrefetchWaste
		return e.Credits()+int(outstanding) == cfg.Credits
	}, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchStreamStandard(t *testing.T) {
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	g := b.Build("pf")
	as := graph.NewAddrSpace()
	g.Bind(as, false)
	p := &StandardProgram{G: g}
	st := p.Start(worklist.Task{Node: 0, EdgeHi: -1, Desc: 0x9000})
	// Head threadlet: descriptor + source node.
	buf, ok := st.Next(nil)
	if !ok || len(buf) != 2 || buf[0] != 0x9000 || buf[1] != g.NodeAddr(0) {
		t.Fatalf("head threadlet %v %v", buf, ok)
	}
	// Edge threadlets: edge record then destination node.
	buf, ok = st.Next(nil)
	if !ok || buf[0] != g.EdgeAddr(0) || buf[1] != g.NodeAddr(1) {
		t.Fatalf("edge threadlet 0: %v", buf)
	}
	buf, ok = st.Next(nil)
	if !ok || buf[0] != g.EdgeAddr(1) || buf[1] != g.NodeAddr(2) {
		t.Fatalf("edge threadlet 1: %v", buf)
	}
	if _, ok = st.Next(nil); ok {
		t.Fatal("stream did not end")
	}
}

func TestPrefetchStreamHonorsSplitRange(t *testing.T) {
	b := graph.NewBuilder(2, false)
	for i := 0; i < 10; i++ {
		b.AddEdge(0, 1)
	}
	// Dedup keeps 1 edge; build a wider graph instead.
	b2 := graph.NewBuilder(12, false)
	for i := int32(1); i < 11; i++ {
		b2.AddEdge(0, i)
	}
	g := b2.Build("split")
	as := graph.NewAddrSpace()
	g.Bind(as, false)
	p := &StandardProgram{G: g}
	st := p.Start(worklist.Task{Node: 0, EdgeLo: 3, EdgeHi: 6})
	st.Next(nil) // head
	count := 0
	for {
		buf, ok := st.Next(nil)
		if !ok {
			break
		}
		if buf[0] < g.EdgeAddr(3) || buf[0] >= g.EdgeAddr(6) {
			t.Fatalf("edge prefetch outside split range: %x", buf[0])
		}
		count++
	}
	if count != 3 {
		t.Fatalf("split stream covered %d edges, want 3", count)
	}
}

func TestTCProgramCoversSearchFootprint(t *testing.T) {
	g := graph.CommunityDBLP(100, 1)
	as := graph.NewAddrSpace()
	g.Bind(as, true)
	p := &TCProgram{G: g, MaxListLines: 4}
	st := p.Start(worklist.Task{Node: 0, EdgeHi: -1})
	st.Next(nil) // head
	buf, ok := st.Next(nil)
	if !ok {
		t.Skip("node 0 has no edges")
	}
	// Edge + dest node + at least one adjacency-list line.
	if len(buf) < 3 {
		t.Fatalf("TC threadlet too small: %v", buf)
	}
}

func TestFuncProgram(t *testing.T) {
	p := &FuncProgram{F: func(tk worklist.Task, emit func(addrs ...uint64)) {
		emit(1, 2)
		emit(3)
	}}
	st := p.Start(worklist.Task{})
	b1, ok1 := st.Next(nil)
	b2, ok2 := st.Next(nil)
	_, ok3 := st.Next(nil)
	if !ok1 || !ok2 || ok3 {
		t.Fatal("threadlet count wrong")
	}
	if len(b1) != 2 || b1[0] != 1 || len(b2) != 1 || b2[0] != 3 {
		t.Fatalf("threadlets %v %v", b1, b2)
	}
}

func TestDeadlockFreedomTinyQueues(t *testing.T) {
	// Shrunken threadlet queue with prefetching and spills: must always
	// drain (§5.3.2 reservations).
	g := graph.UniformRandom(100, 4, 3)
	as := graph.NewAddrSpace()
	g.Bind(as, false)
	cfg := DefaultConfig()
	cfg.ThreadletQ = 8
	cfg.LocalQ = 4
	cfg.Credits = 2
	cfg.Prefetch = true
	cfg.Program = &StandardProgram{G: g}
	e, _ := testEngine(cfg)
	now := sim.Time(0)
	for i := int32(0); i < 50; i++ {
		now = e.Enqueue(task(int64(i%5), i%100), now+5)
	}
	deq := 0
	for guard := 0; deq < 50 && guard < 200000; guard++ {
		if _, ready, ok := e.Dequeue(now); ok {
			deq++
			now = ready + 10
		} else {
			e.Step()
			now += 5
		}
	}
	if deq != 50 {
		t.Fatalf("only %d of 50 tasks came back (deadlock?)", deq)
	}
}

func TestAreaUnderOnePercent(t *testing.T) {
	rep := Area(DefaultConfig(), 256*1024/64)
	if rep.OverheadPercent >= 1.0 {
		t.Fatalf("area overhead %.2f%%, paper claims <1%%", rep.OverheadPercent)
	}
	if rep.SRAMBytes < 8*1024 || rep.SRAMBytes > 16*1024 {
		t.Fatalf("SRAM budget %dB outside the ~10KB ballpark", rep.SRAMBytes)
	}
	if rep.Total14nm <= rep.ControlUnit14nm {
		t.Fatal("total must include SRAM")
	}
}

func TestLateStreamsAreDropped(t *testing.T) {
	g := graph.UniformRandom(100, 4, 3)
	as := graph.NewAddrSpace()
	g.Bind(as, false)
	cfg := DefaultConfig()
	cfg.Prefetch = true
	cfg.Program = &StandardProgram{G: g}
	e, _ := testEngine(cfg)
	// Enqueue and immediately dequeue without letting the engine run:
	// its streams are now stale and must be dropped, not executed.
	now := e.Enqueue(task(0, 5), 0)
	_, now, _ = e.Dequeue(now)
	drainEngine(e)
	if e.Stat.LateDrops == 0 {
		t.Fatal("stale stream was not dropped")
	}
	if e.Stat.Prefetches != 0 {
		t.Fatalf("late prefetches issued: %d", e.Stat.Prefetches)
	}
}

func TestSharedEngineServesTwoCores(t *testing.T) {
	as := graph.NewAddrSpace()
	mcfg := mem.DefaultConfig(2)
	mcfg.ScaleCaches(16)
	msys := mem.NewSystem(mcfg)
	gwl := NewGlobalWL(as, 2, 1)
	cfg := DefaultConfig()
	cfg.Prefetch = false
	e := NewSharedEngine([]int{0, 1}, cfg, msys, gwl)

	// Each core enqueues into its own front-end.
	e.EnqueueFrom(0, task(0, 10), 0)
	e.EnqueueFrom(1, task(0, 20), 5)
	t0, _, ok0 := e.DequeueFrom(0, 100)
	t1, _, ok1 := e.DequeueFrom(1, 100)
	if !ok0 || !ok1 || t0.Node != 10 || t1.Node != 20 {
		t.Fatalf("cross-core mixup: %v/%v %v/%v", t0, ok0, t1, ok1)
	}
	if got := len(e.Cores()); got != 2 {
		t.Fatalf("cores %d", got)
	}
}

func TestSharedEngineIsolatesBuckets(t *testing.T) {
	as := graph.NewAddrSpace()
	mcfg := mem.DefaultConfig(2)
	mcfg.ScaleCaches(16)
	msys := mem.NewSystem(mcfg)
	gwl := NewGlobalWL(as, 2, 1)
	cfg := DefaultConfig()
	cfg.Prefetch = false
	cfg.LgInterval = 0
	e := NewSharedEngine([]int{0, 1}, cfg, msys, gwl)
	// Core 0 holds bucket 1; core 1's bucket must be independent.
	e.EnqueueFrom(0, task(1, 1), 0)
	e.EnqueueFrom(1, task(9, 2), 0) // would spill if buckets were shared
	if e.Stat.LocalEnq != 2 {
		t.Fatalf("localEnq %d: front-end buckets not independent", e.Stat.LocalEnq)
	}
}

func TestGlobalWLShardSteal(t *testing.T) {
	// Two shards: an engine whose own shard is empty must steal from the
	// other.
	as := graph.NewAddrSpace()
	mcfg := mem.DefaultConfig(2)
	mcfg.ScaleCaches(16)
	msys := mem.NewSystem(mcfg)
	gwl := NewGlobalWL(as, 2, 2)
	cfg := DefaultConfig()
	cfg.Prefetch = false
	e0 := NewEngine(0, cfg, msys, gwl) // shard 0
	e1 := NewEngine(1, cfg, msys, gwl) // shard 1
	for i := int32(0); i < 8; i++ {
		gwl.Spill(e0, task(int64(i), i), e0.Clock())
	}
	// Fills are fair-share capped, so drain with repeated fills.
	total := 0
	for i := 0; i < 10 && gwl.Len() > 0; i++ {
		got, _ := gwl.Fill(e1, 8, e1.Clock())
		total += len(got)
	}
	if total != 8 || gwl.Len() != 0 {
		t.Fatalf("steal drained %d of 8 (len %d)", total, gwl.Len())
	}
}

func TestGlobalWLMinBucket(t *testing.T) {
	as := graph.NewAddrSpace()
	mcfg := mem.DefaultConfig(1)
	mcfg.ScaleCaches(16)
	msys := mem.NewSystem(mcfg)
	gwl := NewGlobalWL(as, 1, 1)
	cfg := DefaultConfig()
	cfg.Prefetch = false
	cfg.LgInterval = 0
	e := NewEngine(0, cfg, msys, gwl)
	if gwl.MinBucket() != noBucket {
		t.Fatal("empty worklist has a min bucket")
	}
	gwl.Spill(e, task(7, 1), 0)
	gwl.Spill(e, task(3, 2), 0)
	if gwl.MinBucket() != 3 {
		t.Fatalf("min bucket %d, want 3", gwl.MinBucket())
	}
	gwl.Fill(e, 1, e.Clock()) // removes the priority-3 task
	if gwl.MinBucket() != 7 {
		t.Fatalf("min bucket %d after fill, want 7", gwl.MinBucket())
	}
}

func TestFairShareFillCap(t *testing.T) {
	// With many engines and little work, one fill must not hoard the
	// whole tail.
	as := graph.NewAddrSpace()
	mcfg := mem.DefaultConfig(8)
	mcfg.ScaleCaches(16)
	msys := mem.NewSystem(mcfg)
	gwl := NewGlobalWL(as, 8, 1)
	cfg := DefaultConfig()
	cfg.Prefetch = false
	e := NewEngine(0, cfg, msys, gwl)
	for i := int32(0); i < 16; i++ {
		gwl.Spill(e, task(0, i), e.Clock())
	}
	got, _ := gwl.Fill(e, 48, e.Clock())
	// fair share = 16/8 + 1 = 3
	if len(got) > 3 {
		t.Fatalf("fill hoarded %d tasks of 16 across 8 cores", len(got))
	}
}
