// Package tracing is minnowd's service-level observation plane: per-job
// lifecycle spans rendered as Chrome-trace/Perfetto JSON (mergeable with
// the simulator's own timeline so one file shows queue wait, shard
// dispatch, execution, and cache write next to the run's task spans),
// Prometheus latency histograms (live p50/p95/p99 over queue wait,
// execution, sojourn, and cache-write time), and a fixed-size flight
// recorder of recent structured events that is dumped to disk on panic,
// watchdog halt, or SIGTERM for post-mortem analysis.
//
// Observe-only contract: like every observability layer in this repo,
// the package only reads wall clocks and appends to private buffers. It
// never touches a simulation's configuration, so enabling it cannot
// change a RunSummary hash, a cache key, or what the journal replays —
// the service test suite pins exactly that (TestTracingInert).
//
// Time bases: service spans are wall-clock and rendered in microseconds
// since the job's submission; the simulator timeline is deterministic
// and rendered in simulated cycles (1 cycle = 1 µs of trace time). The
// merge keeps them as two separate Perfetto processes — "minnowd
// service" (pid 1) and the simulation (pid 0) — so both axes stay
// honest in one file.
package tracing

import (
	"encoding/json"
	"strconv"
	"strings"
	"time"
)

// Span is one closed service-level lifecycle interval of a job
// (queue-wait, exec, cache-write, or the enclosing job span).
type Span struct {
	// Name labels the interval ("job", "queue-wait", "exec", ...).
	Name string
	// Start is the interval's wall-clock begin.
	Start time.Time
	// End is the interval's wall-clock end; End <= Start renders with a
	// one-microsecond floor so the span stays visible.
	End time.Time
	// Detail is an optional free-form annotation rendered into the
	// event's args (an error message, a cache outcome).
	Detail string
}

// Instant is one service-level point event (a checkpoint, a cancel
// request, a coalesce).
type Instant struct {
	// Name labels the event.
	Name string
	// At is the event's wall-clock time.
	At time.Time
	// Arg is an optional numeric annotation (checkpoint cycles).
	Arg int64
	// Detail is an optional free-form annotation.
	Detail string
}

// JobTrace is one job's service-level lifecycle, ready to render: the
// span tree plus point events, all timed against Base (the submission
// instant, which becomes trace time zero).
type JobTrace struct {
	// ID is the server-assigned job identifier.
	ID string
	// Corr is the job's correlation ID.
	Corr string
	// Bench is the benchmark name.
	Bench string
	// Status is the job's status at render time.
	Status string
	// Base is trace time zero: the job's submission instant.
	Base time.Time
	// Spans are the closed lifecycle intervals, in emission order.
	Spans []Span
	// Instants are the point events, in emission order.
	Instants []Instant
}

// simTrace is the subset of the simulator's Perfetto export the merge
// needs: the raw event list, re-emitted verbatim.
type simTrace struct {
	TraceEvents []json.RawMessage `json:"traceEvents"`
}

// Render produces one Chrome-trace/Perfetto JSON file from the service
// spans and, when simTimeline is a non-empty simulator Perfetto export
// (minnow.Result.TimelineJSON), the simulation's own events — merged as
// two processes so ui.perfetto.dev shows the service lifecycle directly
// above the run's task timeline. An unparseable simTimeline is skipped,
// never fatal: the service spans alone are still a valid trace.
func (t *JobTrace) Render(simTimeline []byte) []byte {
	var b strings.Builder
	b.WriteString("{\"traceEvents\":[")
	first := true
	emit := func(s string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString("\n")
		b.WriteString(s)
	}

	emit(`{"ph":"M","pid":1,"name":"process_name","args":{"name":"minnowd service (ts = wall µs since submit)"}}`)
	emit(`{"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":` + strconv.Quote("job "+t.ID) + `}}`)
	for i := range t.Spans {
		sp := &t.Spans[i]
		ts := t.us(sp.Start)
		dur := t.us(sp.End) - ts
		if dur <= 0 {
			dur = 1
		}
		args := `{"corr":` + strconv.Quote(t.Corr)
		if sp.Detail != "" {
			args += `,"detail":` + strconv.Quote(sp.Detail)
		}
		args += "}"
		emit(`{"ph":"X","pid":1,"tid":0,"ts":` + strconv.FormatInt(ts, 10) +
			`,"dur":` + strconv.FormatInt(dur, 10) +
			`,"name":` + strconv.Quote(sp.Name) + `,"args":` + args + "}")
	}
	for i := range t.Instants {
		in := &t.Instants[i]
		args := `{"arg":` + strconv.FormatInt(in.Arg, 10)
		if in.Detail != "" {
			args += `,"detail":` + strconv.Quote(in.Detail)
		}
		args += "}"
		emit(`{"ph":"i","pid":1,"tid":0,"ts":` + strconv.FormatInt(t.us(in.At), 10) +
			`,"s":"t","name":` + strconv.Quote(in.Name) + `,"args":` + args + "}")
	}

	if len(simTimeline) > 0 {
		var sim simTrace
		if err := json.Unmarshal(simTimeline, &sim); err == nil && len(sim.TraceEvents) > 0 {
			emit(`{"ph":"M","pid":0,"name":"process_name","args":{"name":"simulation (ts = cycles)"}}`)
			for _, ev := range sim.TraceEvents {
				emit(string(ev))
			}
		}
	}

	b.WriteString("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"minnowd\",\"job\":" +
		strconv.Quote(t.ID) + ",\"corr\":" + strconv.Quote(t.Corr) +
		",\"bench\":" + strconv.Quote(t.Bench) + ",\"status\":" + strconv.Quote(t.Status) +
		",\"serviceTimeUnit\":\"wall-us\",\"simTimeUnit\":\"cycles\"}}\n")
	return []byte(b.String())
}

// us converts a wall-clock instant to trace microseconds since Base,
// clamped at zero so a stamp that (clock-skew) precedes the submission
// still renders inside the trace.
func (t *JobTrace) us(at time.Time) int64 {
	if at.Before(t.Base) {
		return 0
	}
	return at.Sub(t.Base).Microseconds()
}
