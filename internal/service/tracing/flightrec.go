package tracing

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// DefaultFlightEvents is the flight-recorder ring capacity when the
// operator does not size it (-flightrec-events 0): enough for several
// thousand job lifecycles of context at a few dozen bytes per event.
const DefaultFlightEvents = 4096

// Event is one flight-recorder entry: a structured breadcrumb of
// service activity (submission, dispatch, checkpoint, terminal,
// journal error, dump) kept in a fixed-size ring for post-mortems.
type Event struct {
	// At is the event's wall-clock time in Unix nanoseconds.
	At int64 `json:"at"`
	// Kind names the event ("submit", "start", "checkpoint", "done",
	// "failed", "canceled", "cache-write", "journal-error", "dump", ...).
	Kind string `json:"kind"`
	// Job is the job ID the event belongs to, when any.
	Job string `json:"job,omitempty"`
	// Corr is the job's correlation ID, when any.
	Corr string `json:"corr,omitempty"`
	// Detail is a free-form annotation (an error message, a cache
	// outcome, a dump reason).
	Detail string `json:"detail,omitempty"`
	// Cycles is the simulated-cycle stamp for checkpoint events.
	Cycles int64 `json:"cycles,omitempty"`
}

// FlightRecorder is a fixed-size ring buffer of recent Events. It is
// safe for concurrent use and nil-receiver-safe (a nil recorder drops
// everything), so instrumented sites need no guard. The ring holds the
// newest capacity events; Seen counts everything ever recorded, so a
// dump states how much history the ring displaced.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []Event
	seen uint64
}

// NewFlightRecorder builds a recorder holding the newest capacity
// events (capacity <= 0 selects DefaultFlightEvents).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightEvents
	}
	return &FlightRecorder{ring: make([]Event, 0, capacity)}
}

// Record appends one event, displacing the oldest when the ring is
// full. A zero At is stamped with the current wall clock.
func (r *FlightRecorder) Record(ev Event) {
	if r == nil {
		return
	}
	if ev.At == 0 {
		ev.At = time.Now().UnixNano()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, ev)
	} else {
		r.ring[r.seen%uint64(cap(r.ring))] = ev
	}
	r.seen++
}

// Seen returns how many events were ever recorded (including ones the
// ring has since displaced).
func (r *FlightRecorder) Seen() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

// Events returns the retained events, oldest first.
func (r *FlightRecorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.ring))
	if len(r.ring) < cap(r.ring) {
		return append(out, r.ring...)
	}
	head := int(r.seen % uint64(cap(r.ring))) // oldest slot
	out = append(out, r.ring[head:]...)
	return append(out, r.ring[:head]...)
}

// WriteJSONL writes the retained events to w as newline-delimited JSON,
// oldest first, prefixed by one header line recording the snapshot time
// and how many events the ring displaced.
func (r *FlightRecorder) WriteJSONL(w io.Writer) error {
	events := r.Events()
	bw := bufio.NewWriter(w)
	header := struct {
		FlightRecorder string `json:"flight_recorder"`
		At             int64  `json:"at"`
		Retained       int    `json:"retained"`
		Seen           uint64 `json:"seen"`
	}{"minnowd", time.Now().UnixNano(), len(events), r.Seen()}
	hb, err := json.Marshal(header)
	if err != nil {
		return fmt.Errorf("tracing: flight recorder header: %w", err)
	}
	if _, err := bw.Write(append(hb, '\n')); err != nil {
		return fmt.Errorf("tracing: flight recorder write: %w", err)
	}
	for i := range events {
		b, err := json.Marshal(&events[i])
		if err != nil {
			return fmt.Errorf("tracing: flight recorder marshal: %w", err)
		}
		if _, err := bw.Write(append(b, '\n')); err != nil {
			return fmt.Errorf("tracing: flight recorder write: %w", err)
		}
	}
	return bw.Flush()
}

// DumpFile writes the ring to dir as
// flightrec-<reason>-<unix-nanos>.jsonl and returns the path. The
// trigger reason (panic, watchdog, sigterm) is recorded as a final
// "dump" event first, so the file is self-describing. The write is
// best-effort fsync'd: a post-mortem artifact must survive the process
// exit that usually follows it.
func (r *FlightRecorder) DumpFile(dir, reason string) (string, error) {
	if r == nil {
		return "", nil
	}
	r.Record(Event{Kind: "dump", Detail: reason})
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("tracing: flight recorder dump: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("flightrec-%s-%d.jsonl", reason, time.Now().UnixNano()))
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("tracing: flight recorder dump: %w", err)
	}
	if err := r.WriteJSONL(f); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", fmt.Errorf("tracing: flight recorder dump: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("tracing: flight recorder dump: %w", err)
	}
	return path, nil
}
