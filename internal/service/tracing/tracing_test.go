package tracing

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistVecBuckets pins the cumulative-bucket semantics: an
// observation lands in every bucket at or above its value, _count and
// _sum track totals, and cells are addressed by their label values.
func TestHistVecBuckets(t *testing.T) {
	v := NewHistVec("test_seconds", "help.", []string{"status"}, []float64{0.1, 1, 10})
	v.Observe(0.05, "done")
	v.Observe(0.5, "done")
	v.Observe(5, "done")
	v.Observe(50, "done") // lands only in +Inf
	v.Observe(0.5, "failed")

	if got := v.Count("done"); got != 4 {
		t.Fatalf("Count(done) = %d, want 4", got)
	}
	if got := v.Count("failed"); got != 1 {
		t.Fatalf("Count(failed) = %d, want 1", got)
	}
	if got := v.Count("never"); got != 0 {
		t.Fatalf("Count(never) = %d, want 0", got)
	}

	text := v.Text()
	for _, want := range []string{
		"# HELP test_seconds help.",
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{status="done",le="0.1"} 1`,
		`test_seconds_bucket{status="done",le="1"} 2`,
		`test_seconds_bucket{status="done",le="10"} 3`,
		`test_seconds_bucket{status="done",le="+Inf"} 4`,
		`test_seconds_count{status="done"} 4`,
		`test_seconds_bucket{status="failed",le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Sum is the exact total of the observed values.
	if !strings.Contains(text, fmt.Sprintf(`test_seconds_sum{status="done"} %.6f`, 55.55)) {
		t.Fatalf("exposition sum wrong:\n%s", text)
	}
}

// TestHistVecLabelless pins the brace-less exposition of a label-less
// family and that headers render even with zero observations.
func TestHistVecLabelless(t *testing.T) {
	v := NewHistVec("bare_seconds", "bare.", nil, []float64{1})
	if text := v.Text(); !strings.Contains(text, "# TYPE bare_seconds histogram") {
		t.Fatalf("empty family lost its headers:\n%s", text)
	}
	v.Observe(0.5)
	text := v.Text()
	for _, want := range []string{
		`bare_seconds_bucket{le="1"} 1`,
		`bare_seconds_bucket{le="+Inf"} 1`,
		"bare_seconds_sum 0.500000",
		"bare_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "sum{}") || strings.Contains(text, "count{}") {
		t.Fatalf("label-less family rendered empty braces:\n%s", text)
	}
}

// TestHistVecObservePanicsOnLabelMismatch pins the programming-error
// contract: wrong label arity panics instead of silently mis-filing.
func TestHistVecObservePanicsOnLabelMismatch(t *testing.T) {
	v := NewHistVec("x_seconds", "x.", []string{"a", "b"}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched label count did not panic")
		}
	}()
	v.Observe(1, "only-one")
}

// TestFlightRecorderWrap fills the ring past capacity and requires
// Events to return exactly the newest events, oldest first, with Seen
// still counting everything.
func TestFlightRecorderWrap(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: fmt.Sprintf("e%d", i)})
	}
	if r.Seen() != 10 {
		t.Fatalf("Seen = %d, want 10", r.Seen())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, want := range []string{"e6", "e7", "e8", "e9"} {
		if evs[i].Kind != want {
			t.Fatalf("event %d = %q, want %q (got %+v)", i, evs[i].Kind, want, evs)
		}
		if evs[i].At == 0 {
			t.Fatalf("event %d missing auto-stamped At", i)
		}
	}
}

// TestFlightRecorderNilSafe requires a nil recorder to drop everything
// without panicking — instrumented sites carry no guards.
func TestFlightRecorderNilSafe(t *testing.T) {
	var r *FlightRecorder
	r.Record(Event{Kind: "x"})
	if r.Seen() != 0 || r.Events() != nil {
		t.Fatal("nil recorder retained state")
	}
	if path, err := r.DumpFile(t.TempDir(), "test"); err != nil || path != "" {
		t.Fatalf("nil DumpFile = (%q, %v), want no-op", path, err)
	}
}

// TestFlightRecorderDump writes a dump file and checks the JSONL shape:
// a self-describing header line, then one JSON object per event, ending
// with the "dump" trigger event.
func TestFlightRecorderDump(t *testing.T) {
	r := NewFlightRecorder(8)
	r.Record(Event{Kind: "submit", Job: "j-1", Corr: "c-1"})
	r.Record(Event{Kind: "done", Job: "j-1", Corr: "c-1"})
	dir := t.TempDir()
	path, err := r.DumpFile(dir, "sigterm")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir || !strings.HasPrefix(filepath.Base(path), "flightrec-sigterm-") {
		t.Fatalf("dump path %q", path)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(b))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("non-JSON dump line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 4 { // header + submit + done + dump trigger
		t.Fatalf("dump has %d lines, want 4:\n%s", len(lines), b)
	}
	if lines[0]["flight_recorder"] != "minnowd" || lines[0]["retained"] != float64(3) {
		t.Fatalf("dump header wrong: %v", lines[0])
	}
	if lines[1]["kind"] != "submit" || lines[1]["corr"] != "c-1" {
		t.Fatalf("first event wrong: %v", lines[1])
	}
	if lines[3]["kind"] != "dump" || lines[3]["detail"] != "sigterm" {
		t.Fatalf("trigger event wrong: %v", lines[3])
	}
}

// TestFlightRecorderConcurrent hammers Record from many goroutines
// while snapshotting — run under -race in CI.
func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Kind: "k"})
				r.Events()
			}
		}()
	}
	wg.Wait()
	if r.Seen() != 800 {
		t.Fatalf("Seen = %d, want 800", r.Seen())
	}
}

// TestRenderMerge renders a job trace with a simulator timeline and
// checks the merged Chrome-trace JSON: valid, two processes (service
// pid 1, sim pid 0), span durations in µs since submit, and the sim
// events re-emitted verbatim.
func TestRenderMerge(t *testing.T) {
	base := time.Unix(1000, 0)
	tr := &JobTrace{
		ID: "j-1", Corr: "c-1", Bench: "SSSP", Status: "done", Base: base,
		Spans: []Span{
			{Name: "job", Start: base, End: base.Add(3 * time.Millisecond)},
			{Name: "exec", Start: base.Add(time.Millisecond), End: base.Add(2 * time.Millisecond)},
			{Name: "tiny", Start: base.Add(time.Millisecond), End: base.Add(time.Millisecond)}, // 1µs floor
		},
		Instants: []Instant{{Name: "checkpoint", At: base.Add(1500 * time.Microsecond), Arg: 42}},
	}
	sim := []byte(`{"traceEvents":[{"ph":"X","pid":0,"tid":3,"ts":10,"dur":5,"name":"task"}]}`)
	out := tr.Render(sim)

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("merged trace is not JSON: %v\n%s", err, out)
	}
	if doc.OtherData["job"] != "j-1" || doc.OtherData["corr"] != "c-1" || doc.OtherData["simTimeUnit"] != "cycles" {
		t.Fatalf("otherData wrong: %v", doc.OtherData)
	}
	pids := map[float64]bool{}
	var exec, tiny, simTask map[string]any
	for _, ev := range doc.TraceEvents {
		pids[ev["pid"].(float64)] = true
		switch ev["name"] {
		case "exec":
			exec = ev
		case "tiny":
			tiny = ev
		case "task":
			simTask = ev
		}
	}
	if !pids[0] || !pids[1] {
		t.Fatalf("merged trace missing a process: pids %v", pids)
	}
	if exec == nil || exec["ts"].(float64) != 1000 || exec["dur"].(float64) != 1000 {
		t.Fatalf("exec span wrong: %v", exec)
	}
	if tiny == nil || tiny["dur"].(float64) != 1 {
		t.Fatalf("zero-length span did not get the 1µs floor: %v", tiny)
	}
	if simTask == nil || simTask["ts"].(float64) != 10 || simTask["pid"].(float64) != 0 {
		t.Fatalf("sim event not re-emitted verbatim: %v", simTask)
	}
}

// TestRenderWithoutSim requires a service-only trace (no timeline, or
// garbage timeline bytes) to still be valid JSON with the service
// process alone.
func TestRenderWithoutSim(t *testing.T) {
	base := time.Unix(1000, 0)
	tr := &JobTrace{ID: "j-2", Base: base, Spans: []Span{{Name: "job", Start: base, End: base.Add(time.Millisecond)}}}
	for _, sim := range [][]byte{nil, []byte("not json"), []byte(`{"traceEvents":[]}`)} {
		out := tr.Render(sim)
		var doc struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(out, &doc); err != nil {
			t.Fatalf("sim=%q: invalid JSON: %v", sim, err)
		}
		for _, ev := range doc.TraceEvents {
			if ev["pid"].(float64) != 1 {
				t.Fatalf("sim=%q: unexpected non-service event %v", sim, ev)
			}
		}
	}
}
