package tracing

import (
	"fmt"
	"math"
	"slices"
	"strings"
	"sync"
)

// DefBuckets are the default histogram bucket upper bounds in seconds:
// 1 ms to 10 minutes in a roughly-logarithmic ladder sized for job
// latencies (queue waits of milliseconds, simulations of seconds to
// minutes). The implicit +Inf bucket is always present.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 25, 60, 150, 600,
}

// cell is one labeled histogram: cumulative bucket counts plus the
// Prometheus summary pair (sum, count).
type cell struct {
	counts []uint64
	sum    float64
	total  uint64
}

// HistVec is a Prometheus-style histogram family with a fixed label
// schema: every observation carries one value per label name, and each
// distinct label combination accumulates into its own bucket ladder.
// All methods are safe for concurrent use; Text renders cells in sorted
// label order so the exposition is deterministic for a given history.
type HistVec struct {
	name    string
	help    string
	labels  []string
	buckets []float64

	mu    sync.Mutex
	cells map[string]*cell
}

// NewHistVec builds an empty histogram family. Nil buckets selects
// DefBuckets; labelNames fixes the label schema (every Observe must
// pass exactly that many values).
func NewHistVec(name, help string, labelNames []string, buckets []float64) *HistVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistVec{
		name:    name,
		help:    help,
		labels:  labelNames,
		buckets: buckets,
		cells:   make(map[string]*cell),
	}
}

// Observe records one value (in seconds) against the cell addressed by
// labelValues. Mismatched label counts are a programming error and
// panic. NaN observations are dropped (they would poison the sum).
func (v *HistVec) Observe(seconds float64, labelValues ...string) {
	if len(labelValues) != len(v.labels) {
		panic(fmt.Sprintf("tracing: %s: %d label values for %d labels", v.name, len(labelValues), len(v.labels)))
	}
	if math.IsNaN(seconds) {
		return
	}
	key := strings.Join(labelValues, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.cells[key]
	if !ok {
		c = &cell{counts: make([]uint64, len(v.buckets))}
		v.cells[key] = c
	}
	for i, le := range v.buckets {
		if seconds <= le {
			c.counts[i]++
		}
	}
	c.sum += seconds
	c.total++
}

// Count returns the total number of observations in the cell addressed
// by labelValues (0 for a never-observed combination) — test hook.
func (v *HistVec) Count(labelValues ...string) uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.cells[strings.Join(labelValues, "\x00")]; ok {
		return c.total
	}
	return 0
}

// Text renders the family in the Prometheus text exposition format:
// HELP and TYPE headers, then per-cell cumulative _bucket series (with
// the implicit le="+Inf"), _sum, and _count. Families with no
// observations render only the headers, so the metric is always
// discoverable by scrapers.
func (v *HistVec) Text() string {
	v.mu.Lock()
	keys := make([]string, 0, len(v.cells))
	for k := range v.cells {
		keys = append(keys, k)
	}
	snap := make(map[string]cell, len(v.cells))
	for k, c := range v.cells {
		snap[k] = cell{counts: slices.Clone(c.counts), sum: c.sum, total: c.total}
	}
	v.mu.Unlock()
	slices.Sort(keys)

	var b strings.Builder
	fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", v.name, v.help, v.name)
	for _, k := range keys {
		c := snap[k]
		pairs := v.labelPairs(strings.Split(k, "\x00"))
		for i, le := range v.buckets {
			fmt.Fprintf(&b, "%s_bucket{%sle=\"%g\"} %d\n", v.name, pairs, le, c.counts[i])
		}
		fmt.Fprintf(&b, "%s_bucket{%sle=\"+Inf\"} %d\n", v.name, pairs, c.total)
		bare := strings.TrimSuffix(pairs, ",")
		if bare != "" {
			bare = "{" + bare + "}"
		}
		fmt.Fprintf(&b, "%s_sum%s %.6f\n", v.name, bare, c.sum)
		fmt.Fprintf(&b, "%s_count%s %d\n", v.name, bare, c.total)
	}
	return b.String()
}

// labelPairs renders `k1="v1",k2="v2",` — the pair list with a trailing
// comma, ready for an appended le label (empty for a label-less family).
func (v *HistVec) labelPairs(values []string) string {
	var b strings.Builder
	for i, name := range v.labels {
		fmt.Fprintf(&b, "%s=%q,", name, values[i])
	}
	return b.String()
}
