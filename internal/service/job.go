package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"minnow"
)

// ConfigSpec is the JSON-serializable mirror of minnow.Config accepted
// by POST /jobs: field names match minnow.Config exactly, so any JSON
// document that unmarshals into minnow.Config unmarshals identically
// here. The non-data fields (CustomPrefetch, OnSample, and Cancel — Go
// function hooks) are not expressible in JSON and are therefore absent;
// everything else round-trips. See minnow.Config for per-field
// semantics.
type ConfigSpec struct {
	// Threads is the simulated core count (0 = default 8).
	Threads int `json:",omitempty"`
	// Scale multiplies the default input sizes (0 = default 1).
	Scale int `json:",omitempty"`
	// Seed drives the graph generators (0 = default 42).
	Seed uint64 `json:",omitempty"`
	// Minnow attaches a Minnow engine to every core.
	Minnow bool `json:",omitempty"`
	// Prefetch enables worklist-directed prefetching (requires Minnow).
	Prefetch bool `json:",omitempty"`
	// Credits sets the prefetch credit pool (0 = default 32).
	Credits int `json:",omitempty"`
	// Scheduler picks the software worklist when Minnow is false.
	Scheduler string `json:",omitempty"`
	// LgInterval overrides the OBIM/Minnow bucket interval (log2); null
	// uses each benchmark's tuned default.
	LgInterval *uint `json:",omitempty"`
	// HWPrefetcher attaches a baseline hardware prefetcher.
	HWPrefetcher string `json:",omitempty"`
	// SplitThreshold breaks tasks with more edges into subtasks.
	SplitThreshold int32 `json:",omitempty"`
	// WorkBudget aborts runs after this many operator applications.
	WorkBudget int64 `json:",omitempty"`
	// Serial elides atomics (the optimized 1-thread serial baseline).
	Serial bool `json:",omitempty"`
	// MemChannels sets the DRAM channel count (0 = default 12).
	MemChannels int `json:",omitempty"`
	// PerfectBP idealizes branch prediction (Fig. 4 mode).
	PerfectBP bool `json:",omitempty"`
	// NoFences elides memory fences (Fig. 4 mode).
	NoFences bool `json:",omitempty"`
	// SkipVerify disables the post-run reference check.
	SkipVerify bool `json:",omitempty"`
	// TraceEvents records the last N Minnow engine events.
	TraceEvents int `json:",omitempty"`
	// MetricsEvery samples time-series metrics every N simulated cycles
	// — also the /jobs/{id}/stream event cadence.
	MetricsEvery int64 `json:",omitempty"`
	// Timeline requests the Perfetto timeline artifact.
	Timeline bool `json:",omitempty"`
	// Profile requests the cycle-attribution profile artifacts.
	Profile bool `json:",omitempty"`
	// Faults arms the deterministic fault-injection plan.
	Faults string `json:",omitempty"`
	// Arrivals arms the deterministic open-loop arrival plan; the run's
	// per-class latency percentiles land in the result summary.
	Arrivals string `json:",omitempty"`
	// Invariants enables runtime invariant checking and the watchdog.
	Invariants bool `json:",omitempty"`
	// MaxCycles halts runs past this simulated-cycle bound (the per-job
	// timeout; 0 adopts the server's -job-max-cycles default).
	MaxCycles int64 `json:",omitempty"`
	// IntraJobs selects bound/weave workers inside the simulation (0
	// adopts the server's -intra-jobs default; output is byte-identical
	// for every value).
	IntraJobs int `json:",omitempty"`
	// EpochWindow sets the bound/weave epoch length in cycles.
	EpochWindow int64 `json:",omitempty"`
	// SharedHorizons enables conservative-lookahead horizons.
	SharedHorizons bool `json:",omitempty"`
}

// specFromConfig converts a resolved configuration back to the wire
// form — the inverse of ToConfig for the JSON-expressible fields. The
// journal stores this for every accepted job so a restart can re-run it
// without the original request; the host-only function hooks (Cancel,
// OnSample, CustomPrefetch) have no wire form and are re-wired by the
// server on re-execution.
func specFromConfig(cfg minnow.Config) ConfigSpec {
	return ConfigSpec{
		Threads:        cfg.Threads,
		Scale:          cfg.Scale,
		Seed:           cfg.Seed,
		Minnow:         cfg.Minnow,
		Prefetch:       cfg.Prefetch,
		Credits:        cfg.Credits,
		Scheduler:      cfg.Scheduler,
		LgInterval:     cfg.LgInterval,
		HWPrefetcher:   cfg.HWPrefetcher,
		SplitThreshold: cfg.SplitThreshold,
		WorkBudget:     cfg.WorkBudget,
		Serial:         cfg.Serial,
		MemChannels:    cfg.MemChannels,
		PerfectBP:      cfg.PerfectBP,
		NoFences:       cfg.NoFences,
		SkipVerify:     cfg.SkipVerify,
		TraceEvents:    cfg.TraceEvents,
		MetricsEvery:   cfg.MetricsEvery,
		Timeline:       cfg.Timeline,
		Profile:        cfg.Profile,
		Faults:         cfg.Faults,
		Arrivals:       cfg.Arrivals,
		Invariants:     cfg.Invariants,
		MaxCycles:      cfg.MaxCycles,
		IntraJobs:      cfg.IntraJobs,
		EpochWindow:    cfg.EpochWindow,
		SharedHorizons: cfg.SharedHorizons,
	}
}

// ToConfig converts the wire form to the simulator's configuration.
func (c ConfigSpec) ToConfig() minnow.Config {
	return minnow.Config{
		Threads:        c.Threads,
		Scale:          c.Scale,
		Seed:           c.Seed,
		Minnow:         c.Minnow,
		Prefetch:       c.Prefetch,
		Credits:        c.Credits,
		Scheduler:      c.Scheduler,
		LgInterval:     c.LgInterval,
		HWPrefetcher:   c.HWPrefetcher,
		SplitThreshold: c.SplitThreshold,
		WorkBudget:     c.WorkBudget,
		Serial:         c.Serial,
		MemChannels:    c.MemChannels,
		PerfectBP:      c.PerfectBP,
		NoFences:       c.NoFences,
		SkipVerify:     c.SkipVerify,
		TraceEvents:    c.TraceEvents,
		MetricsEvery:   c.MetricsEvery,
		Timeline:       c.Timeline,
		Profile:        c.Profile,
		Faults:         c.Faults,
		Arrivals:       c.Arrivals,
		Invariants:     c.Invariants,
		MaxCycles:      c.MaxCycles,
		IntraJobs:      c.IntraJobs,
		EpochWindow:    c.EpochWindow,
		SharedHorizons: c.SharedHorizons,
	}
}

// JobSpec is the POST /jobs request body.
type JobSpec struct {
	// Bench names the benchmark to simulate (minnow.Benchmarks()).
	Bench string `json:"bench"`
	// Config is the simulation configuration (minnow.Config JSON).
	Config ConfigSpec `json:"config"`
	// Priority orders the queue: higher runs first; equal priorities run
	// in submission order. Default 0.
	Priority int `json:"priority,omitempty"`
	// Corr is an optional client correlation ID (also settable via the
	// X-Correlation-ID header; the body wins when both are present). It
	// threads through the job's lifecycle trace, flight-recorder events,
	// and journal submit record, and is echoed in every JobView — but it
	// is excluded from the cache key, so differently-correlated identical
	// submissions still hit the same entry. Empty picks a server-generated
	// ID. Control characters are stripped and length is capped at 128.
	Corr string `json:"corr,omitempty"`
}

// keyDoc is the canonical cache-key document: the semantically
// significant subset of a validated configuration, defaults resolved,
// in a fixed field order. Its JSON is hashed into the cache key, and
// stored alongside entries as the debuggable "what question does this
// entry answer" record. V guards the schema: any change to the
// canonicalization rules must bump it, which invalidates (re-keys)
// every existing cache entry rather than serving stale answers.
type keyDoc struct {
	// V is the key schema version.
	V int `json:"v"`
	// Bench is the exact benchmark name.
	Bench string `json:"bench"`
	// Threads is the resolved simulated core count.
	Threads int `json:"threads"`
	// Scale is the resolved input scale.
	Scale int `json:"scale"`
	// Seed is the resolved generator seed.
	Seed uint64 `json:"seed"`
	// Scheduler is the resolved worklist policy ("minnow" when the
	// engine owns the worklist).
	Scheduler string `json:"scheduler"`
	// Prefetch mirrors Config.Prefetch.
	Prefetch bool `json:"prefetch"`
	// Credits is the resolved prefetch credit pool.
	Credits int `json:"credits"`
	// LgInterval is the bucket-interval override, -1 when unset (the
	// benchmark's tuned default applies).
	LgInterval int `json:"lg_interval"`
	// HWPrefetcher mirrors Config.HWPrefetcher.
	HWPrefetcher string `json:"hw_prefetcher"`
	// SplitThreshold mirrors Config.SplitThreshold.
	SplitThreshold int32 `json:"split_threshold"`
	// WorkBudget mirrors Config.WorkBudget.
	WorkBudget int64 `json:"work_budget"`
	// Serial mirrors Config.Serial.
	Serial bool `json:"serial"`
	// MemChannels is the resolved DRAM channel count.
	MemChannels int `json:"mem_channels"`
	// PerfectBP mirrors Config.PerfectBP.
	PerfectBP bool `json:"perfect_bp"`
	// NoFences mirrors Config.NoFences.
	NoFences bool `json:"no_fences"`
	// Faults is the fault-plan expression (seed included), verbatim.
	Faults string `json:"faults"`
	// Arrivals is the arrival-plan expression (seed included), verbatim.
	// Arrivals change the deterministic outcome (injected tasks and
	// latency stats), so two jobs differing only here must address
	// different entries.
	Arrivals string `json:"arrivals"`
	// Invariants mirrors Config.Invariants.
	Invariants bool `json:"invariants"`
	// MaxCycles is the resolved watchdog cycle bound (after the server's
	// default is applied), since it can change a run's outcome.
	MaxCycles int64 `json:"max_cycles"`
	// SharedHorizons mirrors Config.SharedHorizons: it changes the step
	// schedule, so it keys separately.
	SharedHorizons bool `json:"shared_horizons"`
}

// CacheKey computes the content-address of a validated configuration:
// the sha256 of the canonical key document, plus the document itself.
//
// Canonicalization rules (documented for clients in docs/SERVICE.md):
//
//   - Defaults are resolved first: Threads 0→8, Scale 0→1, Seed 0→42,
//     Credits 0→32, MemChannels 0→12, and Scheduler ""→"obim" ("minnow"
//     whenever Config.Minnow is set), so an explicit default and an
//     omitted field address the same entry.
//   - Host-only knobs are excluded: IntraJobs and EpochWindow carry the
//     bound/weave engine's byte-identical-output guarantee, so they can
//     never change a result. (The function hooks — Cancel, OnSample,
//     CustomPrefetch — have no wire form at all: a canceled run never
//     produces a result to cache, and a run the hooks never fire on is
//     byte-identical to one without them.)
//   - Observe-only knobs are excluded: TraceEvents, MetricsEvery,
//     Timeline, and Profile are provably inert on the RunSummary (the
//     obs test suites pin it). Artifact-bearing requests that miss an
//     artifact-less entry re-simulate and upgrade the entry in place,
//     hash-checked.
//   - SkipVerify is excluded: it only affects whether a failed
//     verification surfaces as an error, and errors are never cached.
//   - Everything else — including Faults and Arrivals (their plan seeds
//     included), MaxCycles, and SharedHorizons — participates, because
//     each can change the deterministic outcome.
func CacheKey(bench string, cfg minnow.Config) (key string, doc []byte) {
	d := keyDoc{
		// V bumped 1→2 when the arrivals field joined the document; old
		// entries re-key rather than colliding with open-loop runs.
		V:     2,
		Bench: bench,

		Threads:        resolve(cfg.Threads, 8),
		Scale:          resolve(cfg.Scale, 1),
		Seed:           cfg.Seed,
		Scheduler:      cfg.Scheduler,
		Prefetch:       cfg.Prefetch,
		Credits:        resolve(cfg.Credits, 32),
		LgInterval:     -1,
		HWPrefetcher:   cfg.HWPrefetcher,
		SplitThreshold: cfg.SplitThreshold,
		WorkBudget:     cfg.WorkBudget,
		Serial:         cfg.Serial,
		MemChannels:    resolve(cfg.MemChannels, 12),
		PerfectBP:      cfg.PerfectBP,
		NoFences:       cfg.NoFences,
		Faults:         cfg.Faults,
		Arrivals:       cfg.Arrivals,
		Invariants:     cfg.Invariants,
		MaxCycles:      cfg.MaxCycles,
		SharedHorizons: cfg.SharedHorizons,
	}
	if d.Seed == 0 {
		d.Seed = 42
	}
	if cfg.Minnow {
		d.Scheduler = "minnow"
	} else if d.Scheduler == "" {
		d.Scheduler = "obim"
	}
	if cfg.LgInterval != nil {
		d.LgInterval = int(*cfg.LgInterval)
	}
	doc, err := json.Marshal(d)
	if err != nil {
		// keyDoc contains only plain data types; Marshal cannot fail.
		panic("service: cache key marshal: " + err.Error())
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:]), doc
}

// resolve substitutes the documented default for a zero-valued knob.
func resolve(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// Job statuses reported by the API. Lifecycle: queued → running →
// done | failed | canceled. Cache hits are born done. Canceled covers
// every abandonment path: a client DELETE while queued (immediate), a
// client DELETE while running (the simulation stops within one
// cancel-poll interval and writes nothing to the cache), and server
// shutdown before execution.
const (
	// StatusQueued marks a job waiting for a worker shard.
	StatusQueued = "queued"
	// StatusRunning marks a job currently simulating (or coalesced onto
	// a simulating primary).
	StatusRunning = "running"
	// StatusDone marks a job whose result is available.
	StatusDone = "done"
	// StatusFailed marks a job whose simulation errored; the Error field
	// carries the message.
	StatusFailed = "failed"
	// StatusCanceled marks a job abandoned before producing a result:
	// canceled by DELETE /jobs/{id} (queued or mid-run) or by shutdown.
	StatusCanceled = "canceled"
)

// terminal reports whether a status ends a job's lifecycle.
func terminal(status string) bool {
	return status == StatusDone || status == StatusFailed || status == StatusCanceled
}

// JobView is the API representation of a job (POST /jobs and
// GET /jobs/{id} responses).
type JobView struct {
	// ID is the server-assigned job identifier.
	ID string `json:"id"`
	// Corr is the job's correlation ID: the client's (JobSpec.Corr or the
	// X-Correlation-ID header) or a server-generated one.
	Corr string `json:"corr,omitempty"`
	// Bench is the benchmark name.
	Bench string `json:"bench"`
	// Key is the content-address of the job's canonical configuration.
	Key string `json:"key"`
	// Status is one of the Status* constants.
	Status string `json:"status"`
	// Cached reports the result was served from the cache (or coalesced
	// onto another job's simulation) instead of a fresh simulation.
	Cached bool `json:"cached"`
	// Coalesced reports this job attached to an identical in-flight
	// submission (singleflight) rather than hitting the stored cache.
	Coalesced bool `json:"coalesced,omitempty"`
	// Priority echoes the submitted queue priority.
	Priority int `json:"priority,omitempty"`
	// Recovered reports the job was reconstructed from the journal after
	// a restart rather than submitted to this process.
	Recovered bool `json:"recovered,omitempty"`
	// CheckpointCycles is the simulated cycle stamp of the job's most
	// recent progress checkpoint (0 until the first interval sample);
	// for recovered jobs it reports how far the crashed run got.
	CheckpointCycles int64 `json:"checkpoint_cycles,omitempty"`
	// Error carries the failure message when Status is "failed".
	Error string `json:"error,omitempty"`
	// QueuedAtNS is the submission wall-clock stamp in Unix nanoseconds.
	// Together with StartedAtNS and DoneAtNS it lets clients derive
	// queue-wait and sojourn latencies without scraping /metrics;
	// GET /jobs/{id}/trace renders the same stamps as spans.
	QueuedAtNS int64 `json:"queued_at_ns,omitempty"`
	// StartedAtNS is the worker-dispatch stamp in Unix nanoseconds (for
	// coalesced followers, when the shared flight dispatched); 0 until
	// the job runs — born-done cache hits never do.
	StartedAtNS int64 `json:"started_at_ns,omitempty"`
	// DoneAtNS is the terminal stamp in Unix nanoseconds; 0 until the
	// job reaches a terminal status.
	DoneAtNS int64 `json:"done_at_ns,omitempty"`
	// SummaryHash is the run's deterministic fingerprint (set when done).
	SummaryHash string `json:"summary_hash,omitempty"`
	// Summary is the canonical stats.RunSummary JSON (set when done),
	// byte-identical between cache hits and cold runs.
	Summary json.RawMessage `json:"summary,omitempty"`
	// Result is the full minnow.Result JSON including artifacts,
	// included only when the request asked for it (?full=1).
	Result json.RawMessage `json:"result,omitempty"`
}

// ProgressEvent is one /jobs/{id}/stream server-sent event payload: an
// interval-metrics sample republished from the simulator's OnSample
// probe.
type ProgressEvent struct {
	// Cycles is the simulated cycle stamp of the crossed sample boundary.
	Cycles int64 `json:"cycles"`
	// Metrics is the sample in Prometheus text exposition format.
	Metrics string `json:"metrics"`
}
