package service

import (
	"container/heap"
	"context"
	"encoding/json"
	"fmt"
	"slices"
	"sync"
	"time"

	"minnow"
	"minnow/internal/service/cache"
)

// Config parameterizes a Server. The zero value is a working
// memory-cached server sized by minnow.SplitBudget.
type Config struct {
	// Shards is the worker pool width: how many simulations run
	// concurrently. 0 resolves via minnow.SplitBudget against IntraJobs
	// so shards × intra-jobs roughly fills the machine.
	Shards int
	// IntraJobs is applied to submitted configs that leave IntraJobs 0:
	// bound/weave workers inside each simulation. Host-only — never
	// changes results or cache keys.
	IntraJobs int
	// CacheDir persists the result cache under this directory so it
	// survives restarts; "" keeps the cache in memory only.
	CacheDir string
	// QueueLimit bounds the number of queued-but-not-running jobs;
	// submissions beyond it are refused with 429. 0 selects 65536.
	QueueLimit int
	// MaxCycles is applied to submitted configs that leave MaxCycles 0:
	// the per-job timeout, enforced by the simulator's watchdog (a run
	// whose simulated clock passes the bound halts with a diagnostic
	// error instead of occupying a shard forever). 0 leaves the
	// simulator's own large default in place.
	MaxCycles int64
	// ProgressEvery is applied to submitted configs that leave
	// MetricsEvery 0: the interval-metrics sampling cadence in simulated
	// cycles, which is also what feeds /jobs/{id}/stream. Observe-only —
	// never changes results or cache keys. 0 leaves sampling off for
	// jobs that did not ask for it.
	ProgressEvery int64
}

// job is the server-side record of one submission.
type job struct {
	id       string
	bench    string
	cfg      minnow.Config
	key      string
	keyJSON  []byte
	priority int
	seq      int64

	status    string
	cached    bool
	coalesced bool
	errMsg    string
	entry     *cache.Entry

	queuedAt time.Time
	doneAt   time.Time

	// primary, when non-nil, is the in-flight job this submission
	// coalesced onto (singleflight follower).
	primary *job
	// followers are coalesced duplicates finalized with this job's
	// outcome (primary only).
	followers []*job
	// subs are live stream subscribers (primary only; followers
	// subscribe through primary).
	subs []chan ProgressEvent
	// lastSample is replayed to late stream subscribers so a slow client
	// still sees where the run is.
	lastSample *ProgressEvent
	// done is closed when the job reaches a terminal status.
	done chan struct{}
}

// jobQueue is the pending-job priority heap: higher Priority first,
// submission order within a priority level.
type jobQueue []*job

// Len reports the number of queued jobs (container/heap interface).
func (q jobQueue) Len() int { return len(q) }

// Less orders the heap: higher priority first, then submission order.
func (q jobQueue) Less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority > q[j].priority
	}
	return q[i].seq < q[j].seq
}

// Swap exchanges two queue slots (container/heap interface).
func (q jobQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

// Push appends a job for heap.Push (container/heap interface).
func (q *jobQueue) Push(x any) { *q = append(*q, x.(*job)) }

// Pop removes and returns the last slot for heap.Pop (container/heap
// interface).
func (q *jobQueue) Pop() any { old := *q; n := len(old); x := old[n-1]; *q = old[:n-1]; return x }

// Server is one minnowd instance: HTTP façade, priority queue, worker
// shards, and the content-addressed result cache.
type Server struct {
	cfg    Config
	shards int
	cache  *cache.Cache

	mu       sync.Mutex
	cond     *sync.Cond
	queue    jobQueue
	jobs     map[string]*job // by ID
	inflight map[string]*job // singleflight: key → queued/running primary
	seq      int64
	busy     int
	draining bool
	m        counters

	wg sync.WaitGroup // worker shards
}

// New builds a Server, opens (or creates) the disk cache when
// Config.CacheDir is set, and starts the worker shards. Callers serve
// its Handler and eventually call Shutdown.
func New(cfg Config) (*Server, error) {
	shards, intra := minnow.SplitBudget(cfg.Shards, cfg.IntraJobs)
	cfg.IntraJobs = intra
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 65536
	}
	s := &Server{
		cfg:      cfg,
		shards:   shards,
		cache:    cache.New(),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
	}
	if cfg.CacheDir != "" {
		c, err := cache.NewDisk(cfg.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		s.cache = c
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < shards; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Shards returns the worker pool width the server resolved at startup.
func (s *Server) Shards() int { return s.shards }

// Cache exposes the result store (tests and operators inspect it).
func (s *Server) Cache() *cache.Cache { return s.cache }

// Shutdown drains the server: new submissions are refused with 503,
// worker shards finish every already-accepted job (queued and running),
// then exit. If ctx expires first, still-queued jobs are canceled and
// ctx's error is returned; jobs mid-simulation cannot be interrupted
// beyond their watchdog bound.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() { s.wg.Wait(); close(drained) }()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for s.queue.Len() > 0 {
			j := heap.Pop(&s.queue).(*job)
			s.finalizeLocked(j, StatusCanceled, nil, "service: canceled by shutdown")
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		<-drained
		return ctx.Err()
	}
}

// Submit validates and registers one job, returning its API view. The
// fast paths — validation failure, cache hit, singleflight coalesce —
// never touch the queue.
func (s *Server) Submit(spec JobSpec) (JobView, error) {
	if !slices.Contains(minnow.Benchmarks(), spec.Bench) {
		return JobView{}, &RequestError{Code: 400, Msg: fmt.Sprintf("service: Bench: unknown benchmark %q (have %v)", spec.Bench, minnow.Benchmarks())}
	}
	cfg := spec.Config.ToConfig()
	// Server-side defaults: the per-job watchdog timeout participates in
	// the cache key (it can change outcomes), so it is resolved before
	// hashing; the sampling cadence and bound/weave width are inert and
	// resolved purely for operational quality.
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = s.cfg.MaxCycles
	}
	if cfg.MetricsEvery == 0 {
		cfg.MetricsEvery = s.cfg.ProgressEvery
	}
	if cfg.IntraJobs == 0 {
		cfg.IntraJobs = s.cfg.IntraJobs
	}
	if err := cfg.Validate(); err != nil {
		return JobView{}, &RequestError{Code: 400, Msg: err.Error()}
	}
	key, keyJSON := CacheKey(spec.Bench, cfg)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobView{}, &RequestError{Code: 503, Msg: "service: draining, not accepting jobs"}
	}
	s.seq++
	j := &job{
		id:       fmt.Sprintf("j-%d", s.seq),
		bench:    spec.Bench,
		cfg:      cfg,
		key:      key,
		keyJSON:  keyJSON,
		priority: spec.Priority,
		seq:      s.seq,
		queuedAt: time.Now(),
		done:     make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.m.submitted++

	// Cache hit: born done, no simulation.
	if e, ok := s.cache.Get(key); ok && e.Covers(cfg.Timeline, cfg.Profile) {
		s.m.hits++
		j.cached = true
		s.finalizeLocked(j, StatusDone, e, "")
		return s.viewLocked(j, false), nil
	}
	// Singleflight: an identical submission is already queued or
	// running; attach to it instead of simulating twice. The primary
	// must cover this job's artifact needs — a timeline-requesting
	// duplicate of a timeline-less run simulates separately (and
	// upgrades the cache entry it shares).
	if p, ok := s.inflight[key]; ok && p.cfg.Timeline == cfg.Timeline && p.cfg.Profile == cfg.Profile {
		s.m.coalesced++
		j.coalesced, j.cached = true, true
		j.primary = p
		j.status = p.status
		p.followers = append(p.followers, j)
		return s.viewLocked(j, false), nil
	}

	if s.queue.Len() >= s.cfg.QueueLimit {
		delete(s.jobs, j.id)
		s.m.submitted--
		return JobView{}, &RequestError{Code: 429, Msg: fmt.Sprintf("service: queue full (%d jobs)", s.queue.Len())}
	}
	j.status = StatusQueued
	s.inflight[key] = j
	heap.Push(&s.queue, j)
	s.cond.Signal()
	return s.viewLocked(j, false), nil
}

// Job returns the API view of one job; full includes the complete
// minnow.Result JSON (artifacts and all).
func (s *Server) Job(id string, full bool) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return s.viewLocked(j, full), true
}

// Jobs lists every job's view (no results), newest first.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, s.viewLocked(j, false))
	}
	slices.SortFunc(out, func(a, b JobView) int {
		if a.ID == b.ID {
			return 0
		}
		if len(a.ID) != len(b.ID) { // j-2 < j-10
			return len(b.ID) - len(a.ID)
		}
		if a.ID < b.ID {
			return 1
		}
		return -1
	})
	return out
}

// Subscribe attaches a progress listener to a job's stream, replaying
// the most recent sample first. The returned channel is closed when the
// job completes (terminal status) or cancel is called; it is buffered
// and lossy — a slow reader misses samples, never stalls the simulation.
// ok is false for unknown job IDs.
func (s *Server) Subscribe(id string) (ch <-chan ProgressEvent, done <-chan struct{}, cancel func(), ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, found := s.jobs[id]
	if !found {
		return nil, nil, nil, false
	}
	target := j
	if j.primary != nil {
		target = j.primary
	}
	c := make(chan ProgressEvent, 16)
	if target.lastSample != nil {
		c <- *target.lastSample
	}
	if target.status == StatusDone || target.status == StatusFailed || target.status == StatusCanceled {
		close(c)
		return c, j.done, func() {}, true
	}
	target.subs = append(target.subs, c)
	cancel = func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, sub := range target.subs {
			if sub == c {
				target.subs = append(target.subs[:i], target.subs[i+1:]...)
				close(c)
				break
			}
		}
	}
	return c, j.done, cancel, true
}

// worker is one shard: it pulls the highest-priority queued job and
// simulates it, until shutdown drains the queue.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queue.Len() == 0 && !s.draining {
			s.cond.Wait()
		}
		if s.queue.Len() == 0 {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*job)
		j.status = StatusRunning
		for _, f := range j.followers {
			f.status = StatusRunning
		}
		s.busy++
		s.m.sims++
		s.mu.Unlock()

		s.execute(j)

		s.mu.Lock()
		s.busy--
		s.mu.Unlock()
	}
}

// execute runs one primary job through minnow.RunMany — the same
// harness.RunJobs worker machinery the sweep tools use, so a panicking
// simulation becomes a per-job error with a stack trace instead of
// killing the shard — then caches and finalizes.
func (s *Server) execute(j *job) {
	cfg := j.cfg
	if cfg.MetricsEvery > 0 {
		cfg.OnSample = func(cycles int64, metrics string) {
			s.publish(j, ProgressEvent{Cycles: cycles, Metrics: metrics})
		}
	}
	res := minnow.RunMany([]minnow.RunRequest{{Benchmark: j.bench, Config: cfg}}, 1)[0]

	s.mu.Lock()
	defer s.mu.Unlock()
	if res.Err != nil {
		s.finalizeLocked(j, StatusFailed, nil, res.Err.Error())
		return
	}
	resultJSON, err := json.Marshal(res.Result)
	if err != nil {
		s.finalizeLocked(j, StatusFailed, nil, "service: marshal result: "+err.Error())
		return
	}
	e := &cache.Entry{
		Key:         j.key,
		Bench:       j.bench,
		KeyJSON:     json.RawMessage(j.keyJSON),
		SummaryHash: res.Result.SummaryHash,
		Summary:     json.RawMessage(res.Result.SummaryJSON),
		Result:      json.RawMessage(resultJSON),
		HasTimeline: len(res.Result.TimelineJSON) > 0,
		HasProfile:  res.Result.ProfilePprof != nil || res.Result.Folded != "",
	}
	if err := s.cache.Put(e); err != nil {
		// A hash conflict is a determinism violation: surface it on the
		// job rather than serving either result silently.
		s.m.conflicts++
		s.finalizeLocked(j, StatusFailed, nil, err.Error())
		return
	}
	s.finalizeLocked(j, StatusDone, e, "")
}

// publish fans one progress sample out to a job's stream subscribers.
// Runs on the simulation goroutine: copy under the lock, non-blocking
// sends, nothing else.
func (s *Server) publish(j *job, ev ProgressEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.lastSample = &ev
	for _, c := range j.subs {
		select {
		case c <- ev:
		default: // lossy: never stall the simulation on a slow reader
		}
	}
}

// finalizeLocked moves a job (and its coalesced followers) to a
// terminal status, updates latency metrics, releases the singleflight
// slot, and closes stream subscriptions. Callers hold s.mu.
func (s *Server) finalizeLocked(j *job, status string, e *cache.Entry, errMsg string) {
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	all := append([]*job{j}, j.followers...)
	now := time.Now()
	for _, x := range all {
		x.status = status
		x.entry = e
		x.errMsg = errMsg
		x.doneAt = now
		s.m.observe(status, now.Sub(x.queuedAt))
		close(x.done)
	}
	for _, c := range j.subs {
		close(c)
	}
	j.subs = nil
}

// viewLocked renders a job's API view. Callers hold s.mu.
func (s *Server) viewLocked(j *job, full bool) JobView {
	v := JobView{
		ID:        j.id,
		Bench:     j.bench,
		Key:       j.key,
		Status:    j.status,
		Cached:    j.cached,
		Coalesced: j.coalesced,
		Priority:  j.priority,
		Error:     j.errMsg,
	}
	if j.entry != nil {
		v.SummaryHash = j.entry.SummaryHash
		v.Summary = j.entry.Summary
		if full {
			v.Result = j.entry.Result
		}
	}
	return v
}

// RequestError is an API error with its HTTP status code.
type RequestError struct {
	// Code is the HTTP status to serve.
	Code int
	// Msg is the plain-text body (for validation failures, the
	// minnow.Config.Validate message verbatim).
	Msg string
}

// Error returns the message.
func (e *RequestError) Error() string { return e.Msg }
