package service

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"minnow"
	"minnow/internal/service/cache"
	"minnow/internal/service/journal"
	"minnow/internal/service/tracing"
)

// checkpointEverySamples is how many interval samples pass between
// journaled progress checkpoints. Checkpoints ride the observe-only
// sampling cadence (MetricsEvery / -progress-every), so they never
// participate in the cache key or perturb results; thinning them 8:1
// keeps the journal small on long chatty runs.
const checkpointEverySamples = 8

// replayTerminalCap bounds how many terminal (done/failed/canceled)
// jobs a journal replay re-registers: only the newest survive a
// restart, older ones are forgotten — their results still live in the
// cache, so an identical resubmission remains a hit; only GET
// /jobs/{id} for the ancient ID turns 404. Together with the startup
// compaction (journal.Rewrite of the replayed survivors) this keeps
// the journal size, replay time, and resident job map bounded by
// retained state instead of growing with lifetime job count.
const replayTerminalCap = 4096

// maxTraceCheckpoints bounds how many checkpoint instants a job's
// lifecycle trace retains (one per journaled checkpoint, i.e. every
// checkpointEverySamples-th interval sample); later checkpoints still
// advance CheckpointCycles, they just stop accumulating trace events.
const maxTraceCheckpoints = 512

// Config parameterizes a Server. The zero value is a working
// memory-cached server sized by minnow.SplitBudget.
type Config struct {
	// Shards is the worker pool width: how many simulations run
	// concurrently. 0 resolves via minnow.SplitBudget against IntraJobs
	// so shards × intra-jobs roughly fills the machine.
	Shards int
	// IntraJobs is applied to submitted configs that leave IntraJobs 0:
	// bound/weave workers inside each simulation. Host-only — never
	// changes results or cache keys.
	IntraJobs int
	// CacheDir persists the result cache under this directory so it
	// survives restarts; "" keeps the cache in memory only. An unusable
	// directory degrades the cache to memory-only instead of failing
	// startup (see cache.NewDisk).
	CacheDir string
	// CacheMaxBytes bounds the result cache to a byte budget with LRU
	// eviction (0 = unbounded). Eviction is a plain miss — determinism
	// means an evicted configuration re-simulates to the identical
	// result and re-enters the cache without conflict.
	CacheMaxBytes int64
	// JournalPath, when set, opens the durable job journal at this file:
	// every accepted job is recorded before the API acknowledges it and
	// its terminal outcome fsync'd when reached, so a kill -9 loses
	// nothing — on the next start the journal replays, never-completed
	// jobs re-enqueue, and completed ones serve from the cache. "" runs
	// without durability (a restart forgets in-flight jobs, as before).
	JournalPath string
	// QueueLimit bounds the number of queued-but-not-running jobs;
	// submissions beyond it are refused with 429. The bound is checked
	// at acceptance, before the (unlocked) journal fsync, so concurrent
	// submitters can briefly overshoot it by their own count. 0 selects
	// 65536.
	QueueLimit int
	// MaxCycles is applied to submitted configs that leave MaxCycles 0:
	// the per-job timeout, enforced by the simulator's watchdog (a run
	// whose simulated clock passes the bound halts with a diagnostic
	// error instead of occupying a shard forever). 0 leaves the
	// simulator's own large default in place.
	MaxCycles int64
	// ProgressEvery is applied to submitted configs that leave
	// MetricsEvery 0: the interval-metrics sampling cadence in simulated
	// cycles, which is also what feeds /jobs/{id}/stream and the
	// journal's progress checkpoints. Observe-only — never changes
	// results or cache keys. 0 leaves sampling off for jobs that did not
	// ask for it.
	ProgressEvery int64
	// TraceDir, when set, persists each executed job's merged lifecycle
	// trace (service spans + sim timeline, Chrome-trace JSON, the same
	// bytes GET /jobs/{id}/trace serves) under this directory, and is
	// where flight-recorder dumps land on panic, watchdog halt, or
	// SIGTERM. Observe-only — never changes results, cache keys, or what
	// the journal replays (TestTracingInert pins it). "" keeps traces
	// in-memory-only (the endpoint still works) and disables dumps.
	TraceDir string
	// FlightRecEvents sizes the flight recorder: how many recent
	// structured service events the crash ring buffer retains
	// (GET /debug/flightrec). 0 selects tracing.DefaultFlightEvents.
	FlightRecEvents int
}

// job is the server-side record of one submission.
type job struct {
	id       string
	bench    string
	cfg      minnow.Config
	key      string
	keyJSON  []byte
	priority int
	seq      int64
	// corr is the job's correlation ID: client-supplied (JobSpec.Corr or
	// the X-Correlation-ID header) or server-generated, threaded through
	// every lifecycle span, flight-recorder event, and journal submit
	// record so one ID follows the job from HTTP accept to terminal.
	corr string

	status    string
	cached    bool
	coalesced bool
	recovered bool
	// journaled marks jobs with a submit record in the journal; only
	// those get lifecycle records (born-done cache hits are never
	// journaled — the response already carried the result).
	journaled bool
	errMsg    string
	entry     *cache.Entry
	// hash is the SummaryHash recovered from the journal for jobs whose
	// cache entry has since been evicted; viewLocked falls back to it.
	hash string

	// Lifecycle stamps backing the job's trace spans and latency
	// histograms: queuedAt→startedAt is queue wait, startedAt→execStartAt
	// is shard dispatch (config prep and hook wiring), execStartAt→
	// execEndAt is execution, and cacheWriteDur times the cache Put.
	// startedAt is stamped on coalesced followers too (the flight's
	// pickup); the exec stamps live on the primary.
	queuedAt    time.Time
	startedAt   time.Time
	execStartAt time.Time
	execEndAt   time.Time
	doneAt      time.Time
	// cacheWriteDur is how long the flight's cache Put took (primary
	// only; 0 when nothing was written).
	cacheWriteDur time.Duration
	// ckpts are the trace instants of journaled progress checkpoints
	// (primary only), capped at maxTraceCheckpoints.
	ckpts []tracing.Instant

	// cancelFlag, when set, is observed by the running simulation's
	// cancel hook within one poll interval; the run stops with
	// minnow.ErrCanceled and writes nothing to the cache.
	cancelFlag atomic.Bool
	// flightStatus is the status of the underlying simulation flight
	// (primary only). It diverges from status when the primary's own
	// submission is canceled while coalesced followers keep the
	// simulation alive — new duplicates coalesce against flightStatus.
	flightStatus string
	// checkpointCycles is the simulated cycle stamp of the latest
	// interval sample (primary only), journaled every
	// checkpointEverySamples samples.
	checkpointCycles int64
	// samples counts interval samples seen (primary only).
	samples int64

	// primary, when non-nil, is the in-flight job this submission
	// coalesced onto (singleflight follower).
	primary *job
	// followers are coalesced duplicates finalized with this job's
	// outcome (primary only).
	followers []*job
	// subs are live stream subscribers (primary only; followers
	// subscribe through primary).
	subs []chan ProgressEvent
	// lastSample is replayed to late stream subscribers so a slow client
	// still sees where the run is.
	lastSample *ProgressEvent
	// done is closed when the job reaches a terminal status.
	done chan struct{}
}

// jobQueue is the pending-job priority heap: higher Priority first,
// submission order within a priority level.
type jobQueue []*job

// Len reports the number of queued jobs (container/heap interface).
func (q jobQueue) Len() int { return len(q) }

// Less orders the heap: higher priority first, then submission order.
func (q jobQueue) Less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority > q[j].priority
	}
	return q[i].seq < q[j].seq
}

// Swap exchanges two queue slots (container/heap interface).
func (q jobQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

// Push appends a job for heap.Push (container/heap interface).
func (q *jobQueue) Push(x any) { *q = append(*q, x.(*job)) }

// Pop removes and returns the last slot for heap.Pop (container/heap
// interface).
func (q *jobQueue) Pop() any { old := *q; n := len(old); x := old[n-1]; *q = old[:n-1]; return x }

// histLabels is the label schema shared by every latency histogram:
// the job's terminal status and its cache outcome.
var histLabels = []string{"status", "cache"}

// cacheOutcome labels how a submission was satisfied: "hit" (stored
// cache), "coalesced" (singleflight), or "miss" (fresh simulation —
// including jobs canceled or failed before producing one).
func cacheOutcome(j *job) string {
	switch {
	case j.coalesced:
		return "coalesced"
	case j.cached:
		return "hit"
	}
	return "miss"
}

// sanitizeCorr normalizes a client-supplied correlation ID: control
// characters (which could forge flight-recorder JSONL or journal lines
// in log-viewing tools) are dropped and the length is capped at 128.
func sanitizeCorr(corr string) string {
	corr = strings.Map(func(r rune) rune {
		if r < 0x20 || r == 0x7f {
			return -1
		}
		return r
	}, corr)
	if len(corr) > 128 {
		corr = corr[:128]
	}
	return corr
}

// RecoveryStats summarizes what a journal replay reconstructed at
// startup (Server.Recovery).
type RecoveryStats struct {
	// Requeued is how many never-completed jobs went back on the queue.
	Requeued int
	// Completed is how many replayed jobs were served straight from the
	// cache (their own done record, or an identical job's entry).
	Completed int
	// Terminal is how many jobs were restored in a failed or canceled
	// state (registered for GET /jobs/{id}, nothing re-run).
	Terminal int
}

// Server is one minnowd instance: HTTP façade, priority queue, worker
// shards, the content-addressed result cache, and the optional durable
// job journal.
type Server struct {
	cfg    Config
	shards int
	cache  *cache.Cache
	jl     *journal.Journal

	// flight is the crash flight recorder; always on (events are a few
	// dozen bytes), sized by Config.FlightRecEvents, dumped to
	// Config.TraceDir on panic, watchdog halt, or SIGTERM.
	flight *tracing.FlightRecorder
	// Latency histograms served on /metrics, labeled by terminal status
	// and cache outcome (hit/coalesced/miss).
	hQueueWait  *tracing.HistVec
	hExec       *tracing.HistVec
	hSojourn    *tracing.HistVec
	hCacheWrite *tracing.HistVec

	mu       sync.Mutex
	cond     *sync.Cond
	queue    jobQueue
	jobs     map[string]*job // by ID
	inflight map[string]*job // singleflight: key → queued/running primary
	seq      int64
	busy     int
	draining bool
	m        counters
	rec      RecoveryStats

	wg sync.WaitGroup // worker shards
}

// New builds a Server, opens (or creates) the disk cache when
// Config.CacheDir is set and the journal when Config.JournalPath is
// set, replays the journal — re-enqueueing never-completed jobs and
// serving completed ones from the cache — and starts the worker shards.
// Callers serve its Handler and eventually call Shutdown.
func New(cfg Config) (*Server, error) {
	shards, intra := minnow.SplitBudget(cfg.Shards, cfg.IntraJobs)
	cfg.IntraJobs = intra
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 65536
	}
	s := &Server{
		cfg:      cfg,
		shards:   shards,
		cache:    cache.New(),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		flight:   tracing.NewFlightRecorder(cfg.FlightRecEvents),
		hQueueWait: tracing.NewHistVec("minnowd_queue_wait_seconds",
			"Submit-to-dispatch queue wait (for jobs that never ran, submit-to-terminal).", histLabels, nil),
		hExec: tracing.NewHistVec("minnowd_exec_seconds",
			"Dispatch-to-completion simulation time.", histLabels, nil),
		hSojourn: tracing.NewHistVec("minnowd_sojourn_seconds",
			"Submit-to-terminal job sojourn time.", histLabels, nil),
		hCacheWrite: tracing.NewHistVec("minnowd_cache_write_seconds",
			"Result cache Put latency (disk persistence included).", histLabels, nil),
	}
	if cfg.CacheDir != "" {
		c, err := cache.NewDisk(cfg.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		s.cache = c
	}
	if cfg.CacheMaxBytes > 0 {
		s.cache.SetBudget(cfg.CacheMaxBytes)
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.JournalPath != "" {
		jl, recs, err := journal.Open(cfg.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		s.jl = jl
		// Startup compaction: rewrite the journal down to the replayed
		// survivors, so it never grows across restarts. A failed rewrite
		// leaves the old (complete) journal in place — durability
		// bookkeeping degrades, startup never fails.
		if err := jl.Rewrite(s.replay(recs)); err != nil {
			s.m.journalErrs++
			s.flight.Record(tracing.Event{Kind: "journal-error", Detail: "startup compaction rewrite failed"})
		}
		s.flight.Record(tracing.Event{Kind: "replay", Detail: fmt.Sprintf(
			"requeued=%d completed=%d terminal=%d", s.rec.Requeued, s.rec.Completed, s.rec.Terminal)})
	}
	for i := 0; i < shards; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// replay reconstructs jobs from journal records: terminal jobs (up to
// replayTerminalCap, newest first) are re-registered so GET /jobs/{id}
// keeps answering, done jobs reattach their cache entry, and
// never-completed jobs go back on the queue (coalescing duplicates
// exactly like live submissions). It returns the compacted record set
// — one submit record per surviving job, plus its latest checkpoint or
// terminal record — which New rewrites the journal with, so journal
// size and replay cost stay bounded. Replaying the compacted journal
// reconstructs the identical state, which keeps a double restart a
// no-op — the idempotency the recovery test pins. Runs before the
// worker shards start, so no lock is needed.
func (s *Server) replay(recs []journal.Record) []journal.Record {
	type state struct {
		submit  journal.Record
		last    journal.Op
		cycles  int64
		samples int64
		hash    string
		errMsg  string
		// Wall-clock stamps restored into the job's lifecycle trace:
		// dispatch, latest checkpoint, and terminal time (Unix nanos).
		startAt int64
		ckptAt  int64
		termAt  int64
	}
	states := make(map[string]*state)
	var order []string
	for _, r := range recs {
		st, ok := states[r.ID]
		if !ok {
			if r.Op != journal.OpSubmit {
				continue // start/terminal for a submit lost to a torn line
			}
			st = &state{submit: r}
			states[r.ID] = st
			order = append(order, r.ID)
		}
		st.last = r.Op
		switch r.Op {
		case journal.OpStart:
			st.startAt = r.At
		case journal.OpCheckpoint:
			st.cycles, st.samples, st.ckptAt = r.Cycles, r.Samples, r.At
		case journal.OpDone:
			st.hash, st.termAt = r.Hash, r.At
		case journal.OpFailed, journal.OpCanceled:
			st.errMsg, st.termAt = r.Error, r.At
		}
		if r.Op.Terminal() && r.StartAt != 0 {
			// Compacted terminal records carry the dispatch stamp of the
			// start record compaction dropped.
			st.startAt = r.StartAt
		}
	}
	// Cap terminal re-registration: count the terminal jobs, then skip
	// the oldest beyond the cap. Even a dropped job's ID still advances
	// s.seq, so new submissions never reuse it.
	dropTerminal := -replayTerminalCap
	for _, id := range order {
		if states[id].last.Terminal() {
			dropTerminal++
		}
	}
	var compact []journal.Record
	for _, id := range order {
		st := states[id]
		if n, err := strconv.ParseInt(strings.TrimPrefix(id, "j-"), 10, 64); err == nil && n > s.seq {
			s.seq = n
		}
		if st.last.Terminal() && dropTerminal > 0 {
			dropTerminal--
			continue
		}
		compact = append(compact, st.submit)
		switch st.last {
		case journal.OpDone:
			compact = append(compact, journal.Record{Op: journal.OpDone, ID: id, Hash: st.hash, At: st.termAt, StartAt: st.startAt})
		case journal.OpFailed:
			compact = append(compact, journal.Record{Op: journal.OpFailed, ID: id, Error: st.errMsg, At: st.termAt, StartAt: st.startAt})
		case journal.OpCanceled:
			compact = append(compact, journal.Record{Op: journal.OpCanceled, ID: id, Error: st.errMsg, At: st.termAt, StartAt: st.startAt})
		default:
			// Never finished: keep the latest progress stamp so the
			// compacted journal still says how far the lost run got.
			if st.cycles > 0 || st.samples > 0 {
				compact = append(compact, journal.Record{Op: journal.OpCheckpoint, ID: id, Cycles: st.cycles, Samples: st.samples, At: st.ckptAt})
			}
		}
		queuedAt := time.Now()
		if st.submit.At != 0 {
			// Restore the original submission time, so latency metrics
			// for recovered jobs span the crash instead of restarting the
			// clock at replay.
			queuedAt = time.Unix(0, st.submit.At)
		}
		j := &job{
			id:               id,
			bench:            st.submit.Bench,
			key:              st.submit.Key,
			corr:             st.submit.Corr,
			priority:         st.submit.Priority,
			recovered:        true,
			journaled:        true,
			checkpointCycles: st.cycles,
			samples:          st.samples,
			queuedAt:         queuedAt,
			done:             make(chan struct{}),
		}
		// Restore the lifecycle stamps the journal preserved, so the
		// job's trace and latency metrics span the crash.
		if st.startAt != 0 && st.last.Terminal() {
			j.startedAt = time.Unix(0, st.startAt)
			j.execStartAt = j.startedAt
		}
		if st.termAt != 0 {
			j.doneAt = time.Unix(0, st.termAt)
		}
		if st.cycles > 0 && st.ckptAt != 0 {
			j.ckpts = append(j.ckpts, tracing.Instant{Name: "checkpoint", At: time.Unix(0, st.ckptAt), Arg: st.cycles})
		}
		s.jobs[id] = j
		switch st.last {
		case journal.OpDone:
			j.status, j.flightStatus = StatusDone, StatusDone
			j.cached, j.hash = true, st.hash
			if e, ok := s.cache.Get(st.submit.Key); ok {
				j.entry = e
			}
			s.rec.Completed++
			close(j.done)
		case journal.OpFailed:
			j.status, j.flightStatus = StatusFailed, StatusFailed
			j.errMsg = st.errMsg
			s.rec.Terminal++
			close(j.done)
		case journal.OpCanceled:
			j.status, j.flightStatus = StatusCanceled, StatusCanceled
			j.errMsg = st.errMsg
			s.rec.Terminal++
			close(j.done)
		default: // submit, start, or checkpoint: the job never finished
			var spec ConfigSpec
			if err := json.Unmarshal(st.submit.Spec, &spec); err != nil {
				j.status, j.flightStatus = StatusFailed, StatusFailed
				j.errMsg = "service: journal spec unreadable: " + err.Error()
				s.rec.Terminal++
				close(j.done)
				continue
			}
			j.cfg = spec.ToConfig()
			j.seq = s.seq // preserves journal order within a priority
			_, j.keyJSON = CacheKey(j.bench, j.cfg)
			// An identical job may have completed while this one was
			// lost: replay checks the cache exactly like a fresh Submit.
			if e, ok := s.cache.Get(j.key); ok && e.Covers(j.cfg.Timeline, j.cfg.Profile) {
				j.status, j.flightStatus = StatusDone, StatusDone
				j.cached = true
				j.entry = e
				s.rec.Completed++
				close(j.done)
				continue
			}
			if p, ok := s.inflight[j.key]; ok && p.cfg.Timeline == j.cfg.Timeline && p.cfg.Profile == j.cfg.Profile {
				j.coalesced, j.cached = true, true
				j.primary = p
				j.status = StatusQueued
				p.followers = append(p.followers, j)
				s.rec.Requeued++
				continue
			}
			j.status, j.flightStatus = StatusQueued, StatusQueued
			s.inflight[j.key] = j
			heap.Push(&s.queue, j)
			s.rec.Requeued++
		}
	}
	return compact
}

// Recovery returns what the startup journal replay reconstructed
// (zero-valued when no journal is configured).
func (s *Server) Recovery() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec
}

// Shards returns the worker pool width the server resolved at startup.
func (s *Server) Shards() int { return s.shards }

// Cache exposes the result store (tests and operators inspect it).
func (s *Server) Cache() *cache.Cache { return s.cache }

// journalLocked appends one record, counting (never propagating)
// failures: durability degrades, the job still runs. Callers hold s.mu.
func (s *Server) journalLocked(r journal.Record, sync bool) {
	if s.jl == nil {
		return
	}
	if err := s.jl.Append(r, sync); err != nil {
		s.m.journalErrs++
	}
}

// Shutdown drains the server: new submissions are refused with 503,
// worker shards finish every already-accepted job (queued and running),
// then exit, and the journal is closed. If ctx expires first,
// still-queued jobs are canceled and ctx's error is returned; jobs
// mid-simulation cannot be interrupted beyond their watchdog bound.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() { s.wg.Wait(); close(drained) }()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		s.mu.Lock()
		for s.queue.Len() > 0 {
			j := heap.Pop(&s.queue).(*job)
			s.finalizeLocked(j, StatusCanceled, nil, "service: canceled by shutdown")
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		<-drained
		err = ctx.Err()
	}
	if s.jl != nil {
		s.jl.Close()
	}
	return err
}

// Submit validates and registers one job, returning its API view. The
// fast paths — validation failure, cache hit, singleflight coalesce —
// never touch the queue. Accepted jobs (queued and coalesced) are
// journaled with an fsync before the call returns, so the submission
// survives a crash from the moment the API acknowledges it; the fsync
// happens outside s.mu (see journalAccepted) so per-submit disk
// latency never serializes unrelated API handlers. Born-done cache
// hits are not journaled (the response already carried the result, and
// replaying one would pointlessly re-register it).
func (s *Server) Submit(spec JobSpec) (JobView, error) {
	if !slices.Contains(minnow.Benchmarks(), spec.Bench) {
		return JobView{}, &RequestError{Code: 400, Msg: fmt.Sprintf("service: Bench: unknown benchmark %q (have %v)", spec.Bench, minnow.Benchmarks())}
	}
	cfg := spec.Config.ToConfig()
	// Server-side defaults: the per-job watchdog timeout participates in
	// the cache key (it can change outcomes), so it is resolved before
	// hashing; the sampling cadence and bound/weave width are inert and
	// resolved purely for operational quality.
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = s.cfg.MaxCycles
	}
	if cfg.MetricsEvery == 0 {
		cfg.MetricsEvery = s.cfg.ProgressEvery
	}
	if cfg.IntraJobs == 0 {
		cfg.IntraJobs = s.cfg.IntraJobs
	}
	if err := cfg.Validate(); err != nil {
		return JobView{}, &RequestError{Code: 400, Msg: err.Error()}
	}
	key, keyJSON := CacheKey(spec.Bench, cfg)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return JobView{}, &RequestError{Code: 503, Msg: "service: draining, not accepting jobs", RetryAfter: 5}
	}
	s.seq++
	j := &job{
		id:       fmt.Sprintf("j-%d", s.seq),
		bench:    spec.Bench,
		cfg:      cfg,
		key:      key,
		keyJSON:  keyJSON,
		corr:     sanitizeCorr(spec.Corr),
		priority: spec.Priority,
		seq:      s.seq,
		queuedAt: time.Now(),
		done:     make(chan struct{}),
	}
	if j.corr == "" {
		// Server-generated correlation ID: unique per submission and
		// greppable across the flight recorder, journal, and trace.
		j.corr = fmt.Sprintf("c-%d-%x", s.seq, j.queuedAt.UnixNano())
	}
	s.jobs[j.id] = j
	s.m.submitted++
	s.flight.Record(tracing.Event{Kind: "submit", Job: j.id, Corr: j.corr, Detail: spec.Bench})

	// Cache hit: born done, no simulation.
	if e, ok := s.cache.Get(key); ok && e.Covers(cfg.Timeline, cfg.Profile) {
		s.m.hits++
		j.cached = true
		s.flight.Record(tracing.Event{Kind: "cache-hit", Job: j.id, Corr: j.corr})
		s.finalizeLocked(j, StatusDone, e, "")
		v := s.viewLocked(j, false)
		s.mu.Unlock()
		return v, nil
	}
	// Singleflight: an identical submission is already queued or
	// running; attach to it instead of simulating twice. The primary
	// must cover this job's artifact needs — a timeline-requesting
	// duplicate of a timeline-less run simulates separately (and
	// upgrades the cache entry it shares). Coalescing keys off the
	// flight's status, not the primary's own — a primary whose
	// submission was canceled can still be carrying a live simulation
	// for its followers.
	if p, ok := s.inflight[key]; ok && p.cfg.Timeline == cfg.Timeline && p.cfg.Profile == cfg.Profile {
		s.m.coalesced++
		j.coalesced, j.cached = true, true
		j.primary = p
		j.status = p.flightStatus
		if p.flightStatus == StatusRunning {
			// The flight is already dispatched: this follower starts the
			// moment it attaches, never before it was submitted — the
			// primary's earlier pickup would read as a negative queue
			// wait on the follower's stamps and histograms.
			j.startedAt = j.queuedAt
		}
		p.followers = append(p.followers, j)
		s.flight.Record(tracing.Event{Kind: "coalesce", Job: j.id, Corr: j.corr, Detail: "onto " + p.id})
		s.mu.Unlock()
		return s.journalAccepted(j, false)
	}

	if s.queue.Len() >= s.cfg.QueueLimit {
		delete(s.jobs, j.id)
		s.m.submitted--
		n := s.queue.Len()
		s.mu.Unlock()
		return JobView{}, &RequestError{Code: 429, Msg: fmt.Sprintf("service: queue full (%d jobs)", n), RetryAfter: 1}
	}
	j.status, j.flightStatus = StatusQueued, StatusQueued
	s.inflight[key] = j
	s.mu.Unlock()
	return s.journalAccepted(j, true)
}

// journalAccepted records an accepted submission in the journal —
// fsync'd, but outside s.mu, so per-submit fsync latency never
// serializes unrelated API handlers — then, back under the lock, marks
// the job journaled and (for the queue path) makes it visible to the
// worker shards. Between registration and the append the job is
// cancellable and (as a singleflight target) coalescable but not yet
// runnable, so a start or done record can never precede its submit
// record. A job that reached a terminal status while the append was in
// flight — client cancel, or its coalesced flight resolving — had its
// terminal record skipped (journaled was still false); it is written
// here, after the submit record, so replay never resurrects it.
func (s *Server) journalAccepted(j *job, enqueue bool) (JobView, error) {
	var appendErr error
	if s.jl != nil {
		appendErr = s.jl.Append(s.submitRecord(j), true)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if appendErr != nil {
		s.m.journalErrs++
	}
	j.journaled = true
	switch {
	case !terminal(j.status):
		if enqueue {
			heap.Push(&s.queue, j)
			s.cond.Signal()
		}
	case j.status == StatusDone:
		hash := ""
		if j.entry != nil {
			hash = j.entry.SummaryHash
		}
		s.journalLocked(journal.Record{Op: journal.OpDone, ID: j.id, Hash: hash, At: j.doneAt.UnixNano(), StartAt: unixOrZero(j.startedAt)}, true)
	case j.status == StatusFailed:
		s.journalLocked(journal.Record{Op: journal.OpFailed, ID: j.id, Error: j.errMsg, At: j.doneAt.UnixNano(), StartAt: unixOrZero(j.startedAt)}, true)
	default: // StatusCanceled
		s.journalLocked(journal.Record{Op: journal.OpCanceled, ID: j.id, Error: j.errMsg, At: j.doneAt.UnixNano(), StartAt: unixOrZero(j.startedAt)}, true)
	}
	return s.viewLocked(j, false), nil
}

// submitRecord builds a job's journal submit record: everything replay
// needs to re-run it without the original HTTP request.
func (s *Server) submitRecord(j *job) journal.Record {
	spec, err := json.Marshal(specFromConfig(j.cfg))
	if err != nil {
		spec = nil // ConfigSpec is plain data; Marshal cannot fail
	}
	return journal.Record{
		Op:       journal.OpSubmit,
		ID:       j.id,
		Bench:    j.bench,
		Key:      j.key,
		Corr:     j.corr,
		Priority: j.priority,
		At:       j.queuedAt.UnixNano(),
		Spec:     spec,
	}
}

// unixOrZero renders a lifecycle stamp for the journal: Unix nanos, or
// 0 for the zero time (the job never reached that lifecycle point).
func unixOrZero(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// Cancel cancels one job. Queued jobs (and coalesced followers) leave
// the queue immediately; a running job's simulation observes its cancel
// flag within one cancel-poll interval, stops, and writes nothing to
// the cache. Cancellation is per-submission: canceling a job that
// identical submissions coalesced onto detaches only the canceling
// submission — the simulation keeps running for the survivors (a queued
// carrier hands its flight to the oldest follower). Terminal jobs are
// returned unchanged (idempotent); unknown IDs return 404.
func (s *Server) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, &RequestError{Code: 404, Msg: "service: unknown job " + id}
	}
	if terminal(j.status) {
		return s.viewLocked(j, false), nil
	}
	const reason = "service: canceled by client"
	switch {
	case j.primary != nil:
		// Follower: detach from the flight and finalize alone.
		p := j.primary
		if i := slices.Index(p.followers, j); i >= 0 {
			p.followers = slices.Delete(p.followers, i, i+1)
		}
		s.cancelJobLocked(j, reason)
		// If the carrier's own submission was already canceled and this
		// was the last live follower, nobody wants the flight: stop it.
		if terminal(p.status) && !s.flightLiveLocked(p) {
			if p.flightStatus == StatusRunning {
				p.cancelFlag.Store(true)
			} else {
				s.dequeueLocked(p)
				delete(s.inflight, p.key)
				p.flightStatus = StatusCanceled
			}
		}
	case j.status == StatusQueued && len(j.followers) > 0:
		// Queued carrier with followers: the flight must still run. Hand
		// it to the oldest follower and cancel only this submission.
		f := j.followers[0]
		rest := j.followers[1:]
		j.followers = nil
		f.primary = nil
		f.followers = append(f.followers, rest...)
		for _, x := range rest {
			x.primary = f
		}
		f.status, f.flightStatus = StatusQueued, StatusQueued
		f.lastSample = j.lastSample
		f.subs = append(f.subs, j.subs...)
		j.subs = nil
		s.dequeueLocked(j)
		heap.Push(&s.queue, f)
		s.inflight[j.key] = f
		s.cancelJobLocked(j, reason)
		s.cond.Signal()
	case j.status == StatusQueued:
		// Queued, nobody else attached: gone immediately.
		s.dequeueLocked(j)
		delete(s.inflight, j.key)
		j.flightStatus = StatusCanceled
		s.cancelJobLocked(j, reason)
	default: // running primary
		if s.flightLiveLocked(j) {
			// Followers still want the result: cancel only this
			// submission, keep simulating.
			s.cancelJobLocked(j, reason)
		} else {
			// Sole interested party: stop the simulation. execute()
			// observes minnow.ErrCanceled and finalizes the flight;
			// status stays "running" until the poll fires.
			j.cancelFlag.Store(true)
		}
	}
	return s.viewLocked(j, false), nil
}

// flightLiveLocked reports whether any follower of p still wants p's
// result (is non-terminal). Callers hold s.mu.
func (s *Server) flightLiveLocked(p *job) bool {
	for _, f := range p.followers {
		if !terminal(f.status) {
			return true
		}
	}
	return false
}

// dequeueLocked removes a job from the pending heap if present.
// Callers hold s.mu.
func (s *Server) dequeueLocked(j *job) {
	for i, x := range s.queue {
		if x == j {
			heap.Remove(&s.queue, i)
			return
		}
	}
}

// cancelJobLocked finalizes one submission as canceled — terminal
// status, journal record, metrics — without touching the flight it may
// have been attached to. Callers hold s.mu.
func (s *Server) cancelJobLocked(j *job, reason string) {
	j.status = StatusCanceled
	j.errMsg = reason
	j.doneAt = time.Now()
	s.observeTerminalLocked(j, StatusCanceled)
	if j.journaled {
		s.journalLocked(journal.Record{Op: journal.OpCanceled, ID: j.id, Error: reason, At: j.doneAt.UnixNano(), StartAt: unixOrZero(j.startedAt)}, true)
	}
	close(j.done)
}

// observeTerminalLocked records one submission reaching a terminal
// status into the counters, the latency histograms (labeled by status
// and cache outcome), and the flight recorder. Callers hold s.mu and
// must have stamped j.doneAt.
func (s *Server) observeTerminalLocked(j *job, status string) {
	d := j.doneAt.Sub(j.queuedAt)
	s.m.observe(status, d)
	outcome := cacheOutcome(j)
	s.hSojourn.Observe(d.Seconds(), status, outcome)
	if !j.startedAt.IsZero() {
		s.hQueueWait.Observe(j.startedAt.Sub(j.queuedAt).Seconds(), status, outcome)
		end := j.execEndAt
		if j.primary != nil && !j.primary.execEndAt.IsZero() {
			end = j.primary.execEndAt
		}
		if !end.IsZero() {
			// A follower can attach in the window between the primary's
			// exec-end stamp and finalize; it rode none of the flight.
			s.hExec.Observe(max(end.Sub(j.startedAt), 0).Seconds(), status, outcome)
		}
	} else if outcome == "miss" {
		// Never dispatched (canceled in queue, refused result): the whole
		// sojourn was queue wait. Born-done cache hits skip this — they
		// never queued at all.
		s.hQueueWait.Observe(d.Seconds(), status, outcome)
	}
	s.flight.Record(tracing.Event{Kind: status, Job: j.id, Corr: j.corr, Detail: j.errMsg})
}

// Job returns the API view of one job; full includes the complete
// minnow.Result JSON (artifacts and all).
func (s *Server) Job(id string, full bool) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return s.viewLocked(j, full), true
}

// Jobs lists every job's view (no results), newest first.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, s.viewLocked(j, false))
	}
	slices.SortFunc(out, func(a, b JobView) int {
		if a.ID == b.ID {
			return 0
		}
		if len(a.ID) != len(b.ID) { // j-2 < j-10
			return len(b.ID) - len(a.ID)
		}
		if a.ID < b.ID {
			return 1
		}
		return -1
	})
	return out
}

// Subscribe attaches a progress listener to a job's stream, replaying
// the most recent sample first. The returned channel is closed when the
// job completes (terminal status) or cancel is called; it is buffered
// and lossy — a slow reader misses samples, never stalls the simulation.
// ok is false for unknown job IDs.
func (s *Server) Subscribe(id string) (ch <-chan ProgressEvent, done <-chan struct{}, cancel func(), ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, found := s.jobs[id]
	if !found {
		return nil, nil, nil, false
	}
	target := j
	if j.primary != nil {
		target = j.primary
	}
	c := make(chan ProgressEvent, 16)
	if target.lastSample != nil {
		c <- *target.lastSample
	}
	if terminal(target.flightStatus) || terminal(j.status) {
		close(c)
		return c, j.done, func() {}, true
	}
	target.subs = append(target.subs, c)
	cancel = func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, sub := range target.subs {
			if sub == c {
				target.subs = append(target.subs[:i], target.subs[i+1:]...)
				close(c)
				break
			}
		}
	}
	return c, j.done, cancel, true
}

// worker is one shard: it pulls the highest-priority queued job and
// simulates it, until shutdown drains the queue. A panic escaping the
// service layer itself (simulation panics are already contained by the
// harness) dumps the flight recorder before taking the process down, so
// the post-mortem survives.
func (s *Server) worker() {
	defer s.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			s.DumpFlight("panic") //nolint:errcheck // crashing; the dump is best-effort
			panic(r)
		}
	}()
	for {
		s.mu.Lock()
		for s.queue.Len() == 0 && !s.draining {
			s.cond.Wait()
		}
		if s.queue.Len() == 0 {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*job)
		j.flightStatus = StatusRunning
		j.startedAt = time.Now()
		if !terminal(j.status) {
			j.status = StatusRunning
		}
		for _, f := range j.followers {
			if !terminal(f.status) {
				f.status = StatusRunning
				f.startedAt = j.startedAt
			}
		}
		s.busy++
		s.m.sims++
		s.journalLocked(journal.Record{Op: journal.OpStart, ID: j.id, At: j.startedAt.UnixNano()}, false)
		s.flight.Record(tracing.Event{Kind: "start", Job: j.id, Corr: j.corr})
		s.mu.Unlock()

		s.execute(j)

		s.mu.Lock()
		s.busy--
		s.mu.Unlock()
	}
}

// execute runs one primary job through minnow.RunMany — the same
// harness.RunJobs worker machinery the sweep tools use, so a panicking
// simulation becomes a per-job error with a stack trace instead of
// killing the shard — then caches and finalizes. The job's cancel flag
// is wired to the simulator's cooperative cancel hook: a DELETE flips
// the flag and the run stops within one poll interval, caching nothing.
func (s *Server) execute(j *job) {
	cfg := j.cfg
	cfg.Cancel = j.cancelFlag.Load
	if cfg.MetricsEvery > 0 {
		cfg.OnSample = func(cycles int64, metrics string) {
			s.publish(j, ProgressEvent{Cycles: cycles, Metrics: metrics})
		}
	}
	s.mu.Lock()
	j.execStartAt = time.Now()
	s.mu.Unlock()
	res := minnow.RunMany([]minnow.RunRequest{{Benchmark: j.bench, Config: cfg}}, 1)[0]

	s.mu.Lock()
	j.execEndAt = time.Now()
	if errors.Is(res.Err, minnow.ErrCanceled) {
		s.finalizeLocked(j, StatusCanceled, nil, "service: canceled by client")
		s.mu.Unlock()
		s.persistTrace(j)
		return
	}
	if res.Err != nil {
		s.finalizeLocked(j, StatusFailed, nil, res.Err.Error())
		s.mu.Unlock()
		// A watchdog halt or a contained simulation panic is exactly the
		// post-mortem the flight recorder exists for: dump it.
		msg := res.Err.Error()
		if strings.Contains(msg, "watchdog") {
			s.DumpFlight("watchdog") //nolint:errcheck // best-effort post-mortem
		} else if strings.Contains(msg, "panicked") {
			s.DumpFlight("panic") //nolint:errcheck // best-effort post-mortem
		}
		s.persistTrace(j)
		return
	}
	resultJSON, err := json.Marshal(res.Result)
	if err != nil {
		s.finalizeLocked(j, StatusFailed, nil, "service: marshal result: "+err.Error())
		s.mu.Unlock()
		s.persistTrace(j)
		return
	}
	if terminal(j.status) && !s.flightLiveLocked(j) {
		// The run finished before the cancel poll could stop it, but
		// every attached submission is already canceled: discard the
		// result without caching — a canceled flight never writes.
		s.finalizeLocked(j, StatusCanceled, nil, "")
		s.mu.Unlock()
		s.persistTrace(j)
		return
	}
	e := &cache.Entry{
		Key:         j.key,
		Bench:       j.bench,
		KeyJSON:     json.RawMessage(j.keyJSON),
		SummaryHash: res.Result.SummaryHash,
		Summary:     json.RawMessage(res.Result.SummaryJSON),
		Result:      json.RawMessage(resultJSON),
		HasTimeline: len(res.Result.TimelineJSON) > 0,
		HasProfile:  res.Result.ProfilePprof != nil || res.Result.Folded != "",
	}
	putStart := time.Now()
	putErr := s.cache.Put(e)
	j.cacheWriteDur = time.Since(putStart)
	s.flight.Record(tracing.Event{Kind: "cache-write", Job: j.id, Corr: j.corr,
		Detail: fmt.Sprintf("%v err=%v", j.cacheWriteDur.Round(time.Microsecond), putErr != nil)})
	if putErr != nil {
		// A hash conflict is a determinism violation: surface it on the
		// job rather than serving either result silently.
		s.m.conflicts++
		s.hCacheWrite.Observe(j.cacheWriteDur.Seconds(), StatusFailed, cacheOutcome(j))
		s.finalizeLocked(j, StatusFailed, nil, putErr.Error())
		s.mu.Unlock()
		s.persistTrace(j)
		return
	}
	s.hCacheWrite.Observe(j.cacheWriteDur.Seconds(), StatusDone, cacheOutcome(j))
	s.finalizeLocked(j, StatusDone, e, "")
	s.mu.Unlock()
	s.persistTrace(j)
}

// persistTrace writes an executed job's merged lifecycle trace to
// Config.TraceDir (no-op when unset). Called after the flight finalizes
// with no locks held — trace persistence is best-effort and must never
// stall a worker shard on disk latency while holding s.mu.
func (s *Server) persistTrace(j *job) {
	if s.cfg.TraceDir == "" {
		return
	}
	b, ok := s.Trace(j.id)
	if !ok {
		return
	}
	if err := os.MkdirAll(s.cfg.TraceDir, 0o755); err != nil {
		s.flight.Record(tracing.Event{Kind: "trace-error", Job: j.id, Corr: j.corr, Detail: err.Error()})
		return
	}
	path := filepath.Join(s.cfg.TraceDir, j.id+".trace.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		s.flight.Record(tracing.Event{Kind: "trace-error", Job: j.id, Corr: j.corr, Detail: err.Error()})
		return
	}
	s.flight.Record(tracing.Event{Kind: "trace-write", Job: j.id, Corr: j.corr, Detail: path})
}

// Trace renders one job's merged lifecycle trace: the service-level
// spans (queue wait, dispatch, exec, cache write) and, when the job's
// cached result carries a simulator timeline (Config.Timeline), the
// run's own Perfetto events — one Chrome-trace JSON file for
// ui.perfetto.dev. Works on live jobs too (open spans close at "now").
// ok is false for unknown IDs.
func (s *Server) Trace(id string) ([]byte, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	t := s.jobTraceLocked(j, time.Now())
	entry := j.entry
	s.mu.Unlock()

	// Extract the sim timeline outside the lock: Result can be large.
	var sim []byte
	if entry != nil && entry.HasTimeline {
		var r struct{ TimelineJSON []byte }
		if err := json.Unmarshal(entry.Result, &r); err == nil {
			sim = r.TimelineJSON
		}
	}
	return t.Render(sim), true
}

// jobTraceLocked assembles one job's lifecycle spans and instants.
// Followers time their own queue wait but borrow the primary's exec
// stamps and checkpoints — the simulation they observed ran there.
// Callers hold s.mu.
func (s *Server) jobTraceLocked(j *job, now time.Time) *tracing.JobTrace {
	t := &tracing.JobTrace{
		ID: j.id, Corr: j.corr, Bench: j.bench, Status: j.status,
		Base: j.queuedAt,
	}
	end := j.doneAt
	if end.IsZero() {
		end = now
	}
	t.Spans = append(t.Spans, tracing.Span{Name: "job", Start: j.queuedAt, End: end, Detail: cacheOutcome(j)})
	p := j
	if j.primary != nil {
		p = j.primary
	}
	if !j.startedAt.IsZero() {
		t.Spans = append(t.Spans, tracing.Span{Name: "queue-wait", Start: j.queuedAt, End: j.startedAt})
		execStart, execEnd := p.execStartAt, p.execEndAt
		if !execStart.IsZero() {
			// A follower that attached mid-execution has no dispatch of
			// its own, and its exec span covers only the stretch of the
			// primary's flight it actually rode.
			if execStart.Before(j.startedAt) {
				execStart = j.startedAt
			} else {
				t.Spans = append(t.Spans, tracing.Span{Name: "dispatch", Start: j.startedAt, End: execStart})
			}
			if execEnd.IsZero() {
				execEnd = end // still running: open span closes at "now"
			}
			t.Spans = append(t.Spans, tracing.Span{Name: "exec", Start: execStart, End: execEnd})
			if p.cacheWriteDur > 0 {
				t.Spans = append(t.Spans, tracing.Span{Name: "cache-write", Start: execEnd, End: execEnd.Add(p.cacheWriteDur)})
			}
		}
	} else if terminal(j.status) {
		// Never dispatched: the whole sojourn was queue wait (or, for a
		// born-done hit, the cache lookup itself).
		if !j.cached || j.coalesced {
			t.Spans = append(t.Spans, tracing.Span{Name: "queue-wait", Start: j.queuedAt, End: end})
		}
	}
	if j.cached && !j.coalesced && j.startedAt.IsZero() {
		t.Instants = append(t.Instants, tracing.Instant{Name: "cache-hit", At: j.queuedAt})
	}
	if j.coalesced {
		t.Instants = append(t.Instants, tracing.Instant{Name: "coalesced", At: j.queuedAt, Detail: "onto " + p.id})
	}
	t.Instants = append(t.Instants, p.ckpts...)
	if terminal(j.status) && j.status != StatusDone {
		t.Instants = append(t.Instants, tracing.Instant{Name: j.status, At: end, Detail: j.errMsg})
	}
	return t
}

// DumpFlight writes the flight recorder to Config.TraceDir as a
// flightrec-<reason>-*.jsonl post-mortem file, returning its path. A
// no-op (empty path, nil error) when TraceDir is unset — the in-memory
// ring and GET /debug/flightrec still work, there is just nowhere to
// dump.
func (s *Server) DumpFlight(reason string) (string, error) {
	if s.cfg.TraceDir == "" {
		return "", nil
	}
	return s.flight.DumpFile(s.cfg.TraceDir, reason)
}

// FlightRecorder exposes the crash ring buffer (the /debug/flightrec
// endpoint and tests read it).
func (s *Server) FlightRecorder() *tracing.FlightRecorder { return s.flight }

// publish fans one progress sample out to a job's stream subscribers
// and advances the journal's progress checkpoint. Runs on the
// simulation goroutine: copy under the lock, non-blocking sends,
// nothing else.
func (s *Server) publish(j *job, ev ProgressEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.lastSample = &ev
	j.checkpointCycles = ev.Cycles
	j.samples++
	if j.samples%checkpointEverySamples == 0 {
		now := time.Now()
		// Unsynced: a lost checkpoint only loses a progress report — the
		// job re-runs after a crash either way.
		s.journalLocked(journal.Record{
			Op: journal.OpCheckpoint, ID: j.id,
			Cycles: ev.Cycles, Samples: j.samples, At: now.UnixNano(),
		}, false)
		if len(j.ckpts) < maxTraceCheckpoints {
			j.ckpts = append(j.ckpts, tracing.Instant{Name: "checkpoint", At: now, Arg: ev.Cycles})
		}
		s.flight.Record(tracing.Event{Kind: "checkpoint", Job: j.id, Corr: j.corr, Cycles: ev.Cycles, At: now.UnixNano()})
	}
	for _, c := range j.subs {
		select {
		case c <- ev:
		default: // lossy: never stall the simulation on a slow reader
		}
	}
}

// finalizeLocked moves a flight — primary and coalesced followers — to
// a terminal status, updates latency metrics, journals each
// submission's outcome, releases the singleflight slot, and closes
// stream subscriptions. Submissions already individually canceled are
// skipped. Callers hold s.mu.
func (s *Server) finalizeLocked(j *job, status string, e *cache.Entry, errMsg string) {
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	j.flightStatus = status
	all := append([]*job{j}, j.followers...)
	now := time.Now()
	for _, x := range all {
		if terminal(x.status) {
			continue // canceled individually before the flight resolved
		}
		x.status = status
		x.entry = e
		x.errMsg = errMsg
		x.doneAt = now
		s.observeTerminalLocked(x, status)
		if x.journaled {
			switch status {
			case StatusDone:
				s.journalLocked(journal.Record{Op: journal.OpDone, ID: x.id, Hash: e.SummaryHash, At: now.UnixNano(), StartAt: unixOrZero(x.startedAt)}, true)
			case StatusFailed:
				s.journalLocked(journal.Record{Op: journal.OpFailed, ID: x.id, Error: errMsg, At: now.UnixNano(), StartAt: unixOrZero(x.startedAt)}, true)
			case StatusCanceled:
				s.journalLocked(journal.Record{Op: journal.OpCanceled, ID: x.id, Error: errMsg, At: now.UnixNano(), StartAt: unixOrZero(x.startedAt)}, true)
			}
		}
		close(x.done)
	}
	for _, c := range j.subs {
		close(c)
	}
	j.subs = nil
}

// viewLocked renders a job's API view. Callers hold s.mu.
func (s *Server) viewLocked(j *job, full bool) JobView {
	v := JobView{
		ID:               j.id,
		Corr:             j.corr,
		Bench:            j.bench,
		Key:              j.key,
		Status:           j.status,
		Cached:           j.cached,
		Coalesced:        j.coalesced,
		Recovered:        j.recovered,
		CheckpointCycles: j.checkpointCycles,
		Priority:         j.priority,
		Error:            j.errMsg,
		QueuedAtNS:       unixOrZero(j.queuedAt),
		StartedAtNS:      unixOrZero(j.startedAt),
		DoneAtNS:         unixOrZero(j.doneAt),
	}
	if j.primary != nil {
		v.CheckpointCycles = j.primary.checkpointCycles
	}
	if j.entry != nil {
		v.SummaryHash = j.entry.SummaryHash
		v.Summary = j.entry.Summary
		if full {
			v.Result = j.entry.Result
		}
	} else if j.hash != "" {
		// Recovered done job whose cache entry was since evicted: the
		// hash survives in the journal even though the payload is gone.
		v.SummaryHash = j.hash
	}
	return v
}

// RequestError is an API error with its HTTP status code.
type RequestError struct {
	// Code is the HTTP status to serve.
	Code int
	// Msg is the plain-text body (for validation failures, the
	// minnow.Config.Validate message verbatim).
	Msg string
	// RetryAfter, when positive, is served as a Retry-After header (in
	// seconds) so well-behaved clients back off instead of hot-looping
	// on 429 (queue full) and 503 (draining).
	RetryAfter int
}

// Error returns the message.
func (e *RequestError) Error() string { return e.Msg }
