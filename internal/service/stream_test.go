package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// sseResult is one parsed /jobs/{id}/stream session.
type sseResult struct {
	cycles []int64 // sample event cycle stamps, arrival order
	final  JobView // the terminal "done" event payload
	dones  int
}

// readStream consumes one SSE session to completion.
func readStream(t *testing.T, base, id string) sseResult {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/stream")
	if err != nil {
		t.Error(err)
		return sseResult{}
	}
	defer resp.Body.Close()
	var out sseResult
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "sample":
				var ev ProgressEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Errorf("sample payload %q: %v", data, err)
					return out
				}
				out.cycles = append(out.cycles, ev.Cycles)
			case "done":
				out.dones++
				if err := json.Unmarshal([]byte(data), &out.final); err != nil {
					t.Errorf("done payload %q: %v", data, err)
				}
			}
		}
	}
	return out
}

// requireMonotone fails unless the cycle stamps are strictly
// increasing — the stream ordering contract: samples are published in
// simulation order and a lossy subscriber may skip but never reorder
// or repeat.
func requireMonotone(t *testing.T, who string, cycles []int64) {
	t.Helper()
	for i := 1; i < len(cycles); i++ {
		if cycles[i] <= cycles[i-1] {
			t.Fatalf("%s: samples not strictly increasing at %d: %v", who, i, cycles)
		}
	}
	for i, c := range cycles {
		if c <= 0 {
			t.Fatalf("%s: non-positive cycle stamp at %d: %v", who, i, cycles)
		}
	}
}

// TestStreamMonotoneAcrossCoalesceAndCancel pins the SSE event-ordering
// contract under the two hard paths at once: a coalesced follower
// streams the primary's flight, the primary's own submission is
// canceled mid-run, and both streams must still deliver strictly
// increasing checkpoint cycles — the follower's ending in "done" with a
// result (the flight outlived its carrier), the primary's ending in
// "canceled".
func TestStreamMonotoneAcrossCoalesceAndCancel(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 1, ProgressEvery: 20000})
	p := submit(t, ts.URL, slowSpec(7))

	// Wait until the shard picks the primary up, so the duplicate below
	// coalesces onto a running flight.
	deadline := time.Now().Add(time.Minute)
	for {
		cur, ok := s.Job(p.ID, false)
		if !ok {
			t.Fatal("primary vanished")
		}
		if cur.Status == StatusRunning {
			break
		}
		if terminal(cur.Status) {
			t.Fatalf("primary finished before the test could attach: %+v", cur)
		}
		if time.Now().After(deadline) {
			t.Fatal("primary never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	f := submit(t, ts.URL, slowSpec(7))
	if !f.Coalesced {
		t.Fatalf("duplicate did not coalesce: %+v", f)
	}

	var wg sync.WaitGroup
	var pr, fr sseResult
	wg.Add(2)
	go func() { defer wg.Done(); pr = readStream(t, ts.URL, p.ID) }()
	go func() { defer wg.Done(); fr = readStream(t, ts.URL, f.ID) }()

	// Give both streams a moment to attach and see at least one sample,
	// then cancel the primary's submission — the flight keeps running
	// for the follower.
	time.Sleep(300 * time.Millisecond)
	if code, v := cancelJob(t, ts.URL, p.ID); code != http.StatusOK || v.Status != StatusCanceled {
		t.Fatalf("DELETE primary = %d %+v", code, v)
	}
	wg.Wait()

	requireMonotone(t, "primary", pr.cycles)
	requireMonotone(t, "follower", fr.cycles)
	if pr.dones != 1 || pr.final.Status != StatusCanceled {
		t.Fatalf("primary stream terminal: dones=%d final=%+v", pr.dones, pr.final)
	}
	if fr.dones != 1 || fr.final.Status != StatusDone || fr.final.SummaryHash == "" {
		t.Fatalf("follower stream terminal: dones=%d final=%+v", fr.dones, fr.final)
	}
	if len(fr.cycles) == 0 {
		t.Fatal("follower stream saw no samples")
	}
	// The follower's checkpoint view advanced with the flight it rode.
	if fin := await(t, ts.URL, f.ID); fin.CheckpointCycles <= 0 {
		t.Fatalf("follower checkpoint cycles = %d, want > 0", fin.CheckpointCycles)
	}
}

// TestStreamReplayNotAhead pins the late-subscriber contract: a stream
// opened mid-run starts with the replayed most-recent sample and every
// subsequent sample is newer — monotonicity holds from the replay
// onward, not just between live samples.
func TestStreamReplayNotAhead(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 1, ProgressEvery: 20000})
	v := submit(t, ts.URL, slowSpec(8))

	// Wait for the run to produce at least one sample.
	deadline := time.Now().Add(time.Minute)
	for {
		cur, ok := s.Job(v.ID, false)
		if !ok {
			t.Fatal("job vanished")
		}
		if cur.CheckpointCycles > 0 {
			break
		}
		if terminal(cur.Status) {
			t.Fatalf("job finished before a checkpoint: %+v", cur)
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	r := readStream(t, ts.URL, v.ID)
	requireMonotone(t, "late subscriber", r.cycles)
	if len(r.cycles) == 0 {
		t.Fatal("late subscriber saw no samples (replay missing)")
	}
	if r.dones != 1 || r.final.Status != StatusDone {
		t.Fatalf("late subscriber terminal: dones=%d final=%+v", r.dones, r.final)
	}
}
