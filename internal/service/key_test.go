package service

import (
	"container/heap"
	"encoding/json"
	"testing"

	"minnow"
)

// TestCacheKeyDefaultResolution pins the canonicalization rule that an
// omitted knob and its explicit documented default address the same
// cache entry.
func TestCacheKeyDefaultResolution(t *testing.T) {
	k1, _ := CacheKey("SSSP", minnow.Config{})
	k2, _ := CacheKey("SSSP", minnow.Config{Threads: 8, Scale: 1, Seed: 42, Credits: 32, MemChannels: 12, Scheduler: "obim"})
	if k1 != k2 {
		t.Fatalf("zero config and explicit defaults key differently: %s != %s", k1, k2)
	}
	k3, _ := CacheKey("SSSP", minnow.Config{Threads: 16})
	if k3 == k1 {
		t.Fatal("non-default Threads did not change the key")
	}
}

// TestCacheKeyExclusions pins which knobs are excluded: host-only
// (IntraJobs/EpochWindow) and observe-only (TraceEvents, MetricsEvery,
// Timeline, Profile) fields must not fragment the cache, while
// outcome-affecting fields must key separately.
func TestCacheKeyExclusions(t *testing.T) {
	base, _ := CacheKey("BFS", minnow.Config{Minnow: true, Prefetch: true})
	same := []minnow.Config{
		{Minnow: true, Prefetch: true, IntraJobs: 4},
		{Minnow: true, Prefetch: true, IntraJobs: 2, EpochWindow: 1024},
		{Minnow: true, Prefetch: true, TraceEvents: 64},
		{Minnow: true, Prefetch: true, MetricsEvery: 10000},
		{Minnow: true, Prefetch: true, Timeline: true},
		{Minnow: true, Prefetch: true, Profile: true},
		{Minnow: true, Prefetch: true, SkipVerify: true},
	}
	for i, cfg := range same {
		if k, _ := CacheKey("BFS", cfg); k != base {
			t.Errorf("case %d: inert knob changed the key", i)
		}
	}
	diff := []minnow.Config{
		{Minnow: true, Prefetch: true, Seed: 7},
		{Minnow: true, Prefetch: true, MaxCycles: 1 << 20},
		{Minnow: true, Prefetch: true, SharedHorizons: true},
		{Minnow: true, Prefetch: true, Faults: "transient"},
		{Minnow: true, Prefetch: true, Arrivals: "steady"},
		{Minnow: true, Prefetch: true, Invariants: true},
		{Minnow: true},
	}
	for i, cfg := range diff {
		if k, _ := CacheKey("BFS", cfg); k == base {
			t.Errorf("case %d: outcome-affecting knob did not change the key", i)
		}
	}
	if k, _ := CacheKey("CC", minnow.Config{Minnow: true, Prefetch: true}); k == base {
		t.Error("benchmark name did not change the key")
	}
}

// TestCacheKeySchedulerResolution pins that Minnow ownership and the
// default software scheduler resolve before hashing.
func TestCacheKeySchedulerResolution(t *testing.T) {
	a, _ := CacheKey("SSSP", minnow.Config{Minnow: true})
	b, _ := CacheKey("SSSP", minnow.Config{Minnow: true, Scheduler: "minnow"})
	if a != b {
		t.Fatal("Minnow with implicit and explicit scheduler key differently")
	}
	c, _ := CacheKey("SSSP", minnow.Config{Scheduler: "obim"})
	d, _ := CacheKey("SSSP", minnow.Config{})
	if c != d {
		t.Fatal("default software scheduler keys differently from explicit obim")
	}
	if a == c {
		t.Fatal("minnow and obim schedulers share a key")
	}
}

// TestCacheKeyDocRoundTrips checks the canonical document is valid JSON
// carrying the resolved values (the debuggable form stored in entries).
func TestCacheKeyDocRoundTrips(t *testing.T) {
	lg := uint(3)
	_, doc := CacheKey("SSSP", minnow.Config{LgInterval: &lg})
	var m map[string]any
	if err := json.Unmarshal(doc, &m); err != nil {
		t.Fatalf("key doc is not JSON: %v", err)
	}
	if m["threads"] != float64(8) || m["lg_interval"] != float64(3) || m["v"] != float64(2) {
		t.Fatalf("key doc fields not resolved: %v", m)
	}
}

// TestCacheKeyArrivals pins the open-loop additions: the arrival plan
// keys verbatim (two plans differing only in their seed clause are
// different deterministic outcomes, so they must address different
// entries), and the document version is 2 — the canonicalization
// changed when the arrivals field joined, so pre-arrival entries
// re-key instead of colliding.
func TestCacheKeyArrivals(t *testing.T) {
	closed, _ := CacheKey("SSSP", minnow.Config{Minnow: true, Prefetch: true})
	a, _ := CacheKey("SSSP", minnow.Config{Minnow: true, Prefetch: true, Arrivals: "seed=1;poisson:gap=600,count=400"})
	b, _ := CacheKey("SSSP", minnow.Config{Minnow: true, Prefetch: true, Arrivals: "seed=2;poisson:gap=600,count=400"})
	if a == closed {
		t.Fatal("arrival plan did not change the key")
	}
	if a == b {
		t.Fatal("arrival plans differing only in seed share a key")
	}
	_, doc := CacheKey("SSSP", minnow.Config{Minnow: true, Prefetch: true, Arrivals: "steady"})
	var m map[string]any
	if err := json.Unmarshal(doc, &m); err != nil {
		t.Fatalf("key doc is not JSON: %v", err)
	}
	if m["arrivals"] != "steady" {
		t.Fatalf("key doc arrivals = %v, want steady", m["arrivals"])
	}
}

// TestJobQueueOrder pins the priority heap: higher priority first,
// submission order within a level.
func TestJobQueueOrder(t *testing.T) {
	q := &jobQueue{}
	for _, j := range []*job{
		{priority: 0, seq: 1},
		{priority: 5, seq: 2},
		{priority: 0, seq: 3},
		{priority: 5, seq: 4},
	} {
		heap.Push(q, j)
	}
	var got []int64
	for q.Len() > 0 {
		got = append(got, heap.Pop(q).(*job).seq)
	}
	want := []int64{2, 4, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}
