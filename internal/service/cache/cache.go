// Package cache is minnowd's content-addressed result store. Every
// Minnow simulation is bit-reproducible — the same validated
// configuration always yields the same stats.RunSummary and therefore
// the same SummaryHash — so finished runs can be memoized under a
// canonical hash of the configuration that produced them (the key; see
// the service package's CacheKey for the canonicalization rules). A hit
// returns the stored result without simulating; a million submitted
// sweep cells dedupe to their unique configurations.
//
// Concurrency contract: a Cache is safe for concurrent use by any
// number of goroutines; every method takes the internal mutex. Put
// performs its disk write — and any retry backoff on a failing disk —
// outside the critical section, so a degraded disk never stalls
// concurrent Gets (or the service API paths that call them); only the
// in-memory index update and the hash-conflict check run under the
// mutex. Get's disk fallback read stays inside the critical section,
// which keeps its load-check-store path atomic — acceptable because a
// healthy read is small relative to the simulations it replaces.
//
// Determinism contract: the cache never mutates stored bytes. Summary
// and Result are retained as raw JSON exactly as produced by the run
// that populated the entry, so a hit is byte-identical to the cold run
// — the property the service's dedup-correctness CI gate asserts. Put
// refuses (with ErrHashConflict) to replace an entry whose SummaryHash
// differs from the incoming one: under the determinism contract that
// can only mean a broken simulator or a corrupted store, and silently
// overwriting would mask it.
//
// Capacity contract: SetBudget bounds the store to a byte budget with
// least-recently-used eviction. Eviction is always a miss, never a
// conflict — an evicted configuration re-simulates to the identical
// SummaryHash (determinism again) and re-enters the store cleanly. The
// budget is enforced against every entry except the one just inserted,
// so a single oversized entry degrades capacity, never correctness.
//
// Degradation contract: disk failures never fail a simulation that
// already produced a result. Writes retry with a short backoff; if the
// directory stays unwritable the cache drops to memory-only persistence
// for that entry, marks itself degraded (Degraded/DegradedReason, and a
// gauge in minnowd's /metrics), and keeps serving. Only ErrHashConflict
// — a real determinism violation — surfaces from Put.
package cache

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"time"
)

// ErrHashConflict is returned by Put when an entry already exists under
// the key with a different SummaryHash — a determinism violation (or
// store corruption) that must surface, never be papered over.
var ErrHashConflict = errors.New("cache: summary hash conflict for existing key")

// putRetries is how many times a failed disk write is retried before
// the cache degrades to memory-only for that entry. Backoff between
// attempts is putBackoff << attempt.
const putRetries = 3

// putBackoff is the base delay between disk-write retry attempts.
const putBackoff = 5 * time.Millisecond

// Entry is one memoized simulation result. All JSON payloads are stored
// raw so a cache hit replays the producing run's bytes exactly.
type Entry struct {
	// Key is the canonical configuration hash the entry is stored under.
	Key string `json:"key"`
	// Bench is the benchmark name, kept for operators browsing the store.
	Bench string `json:"bench"`
	// KeyJSON is the canonical key document that hashed to Key — the
	// debuggable form of "what configuration does this entry answer".
	KeyJSON json.RawMessage `json:"key_json"`
	// SummaryHash is the run's deterministic fingerprint
	// (stats.RunSummary sha256); Put enforces that it never changes for
	// a given Key.
	SummaryHash string `json:"summary_hash"`
	// Summary is the canonical stats.RunSummary JSON of the producing
	// run, byte-for-byte.
	Summary json.RawMessage `json:"summary"`
	// Result is the full public minnow.Result JSON of the producing run,
	// including any timeline/profile artifacts it carried.
	Result json.RawMessage `json:"result"`
	// HasTimeline records whether Result carries a Perfetto timeline, so
	// a hit can be refused when the request needs an artifact the entry
	// lacks.
	HasTimeline bool `json:"has_timeline"`
	// HasProfile records whether Result carries the folded/pprof
	// cycle-attribution artifacts.
	HasProfile bool `json:"has_profile"`
}

// Covers reports whether the entry satisfies a request that needs a
// timeline and/or profile artifact: an entry with more artifacts than
// requested still covers, one with fewer forces a re-simulation (whose
// Put then upgrades the entry in place, hash-checked).
func (e *Entry) Covers(timeline, profile bool) bool {
	return (!timeline || e.HasTimeline) && (!profile || e.HasProfile)
}

// Cache is a content-addressed entry store: an in-memory map backed by
// an optional on-disk directory that survives restarts, with an
// optional byte budget enforced by LRU eviction.
type Cache struct {
	mu  sync.Mutex
	mem map[string]*Entry
	dir string // "" = memory only

	maxBytes  int64 // 0 = unbounded
	sizes     map[string]int64
	total     int64
	lru       *list.List // front = most recently used; values are keys
	lruEl     map[string]*list.Element
	evictions int64

	degraded       bool
	degradedReason string
}

// New returns a memory-only cache.
func New() *Cache {
	return &Cache{
		mem:   make(map[string]*Entry),
		sizes: make(map[string]int64),
		lru:   list.New(),
		lruEl: make(map[string]*list.Element),
	}
}

// NewDisk returns a cache persisted under dir (created if missing): each
// entry lives in <dir>/<key>.json, written atomically via a temp file +
// rename, so a crash mid-write never leaves a truncated entry behind. A
// fresh Cache over an existing directory serves its entries (loaded
// lazily on first Get) — the "disk cache survives a restart" contract;
// their sizes and modification order seed the budget accounting and LRU
// order. An uncreatable directory does not fail startup: the cache
// degrades to memory-only (Degraded reports why) so the service keeps
// running without persistence.
func NewDisk(dir string) (*Cache, error) {
	c := New()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		c.degraded = true
		c.degradedReason = fmt.Sprintf("cache dir unusable, running memory-only: %v", err)
		return c, nil
	}
	c.dir = dir
	c.scanDirLocked()
	return c, nil
}

// scanDirLocked seeds the size accounting and LRU order from the
// entries already on disk: file sizes stand in for entry sizes (the
// file is the marshaled entry) and modification times order recency.
// Called from NewDisk before the cache is shared, so no lock is held.
func (c *Cache) scanDirLocked() {
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	type onDisk struct {
		key   string
		size  int64
		mtime time.Time
	}
	var found []onDisk
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, onDisk{
			key:   strings.TrimSuffix(e.Name(), ".json"),
			size:  info.Size(),
			mtime: info.ModTime(),
		})
	}
	// Oldest first, so the LRU list ends with the newest at the front.
	slices.SortFunc(found, func(a, b onDisk) int { return a.mtime.Compare(b.mtime) })
	for _, f := range found {
		c.sizes[f.key] = f.size
		c.total += f.size
		c.lruEl[f.key] = c.lru.PushFront(f.key)
	}
}

// Dir returns the backing directory ("" when memory-only).
func (c *Cache) Dir() string { return c.dir }

// SetBudget bounds the store to maxBytes (0 removes the bound),
// evicting least-recently-used entries immediately if the store is
// already over.
func (c *Cache) SetBudget(maxBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxBytes = maxBytes
	c.evictToFitLocked("")
}

// Budget returns the configured byte budget (0 = unbounded).
func (c *Cache) Budget() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxBytes
}

// Bytes returns the store's current accounted size in bytes.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Evictions returns how many entries the budget has evicted.
func (c *Cache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Degraded reports whether the cache has fallen back to memory-only
// persistence after disk failures (see DegradedReason).
func (c *Cache) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// DegradedReason returns the first disk failure that degraded the
// cache, or "" when healthy.
func (c *Cache) DegradedReason() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degradedReason
}

// Len returns the number of entries the cache can currently serve: all
// in-memory entries plus any on-disk entries not yet loaded.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.mem)
	if c.dir == "" {
		return n
	}
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return n
	}
	on := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".json") {
			key := strings.TrimSuffix(e.Name(), ".json")
			if _, ok := c.mem[key]; !ok {
				on++
			}
		}
	}
	return n + on
}

// Get returns the entry stored under key, falling back to (and
// repopulating memory from) the disk store. The second result reports
// whether an entry was found; an evicted entry is a plain miss. A hit
// marks the entry most recently used.
func (c *Cache) Get(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.mem[key]; ok {
		c.touchLocked(key, c.sizes[key])
		return e, true
	}
	if c.dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e Entry
	if err := json.Unmarshal(b, &e); err != nil || e.Key != key {
		// A corrupt or mismatched file is treated as a miss; the next Put
		// rewrites it atomically.
		return nil, false
	}
	c.mem[key] = &e
	c.touchLocked(key, int64(len(b)))
	c.evictToFitLocked(key)
	return &e, true
}

// Put stores the entry under its Key. Replacing an existing entry is
// allowed only when the SummaryHash matches (an artifact upgrade: a
// re-simulation that added a timeline or profile to the same
// deterministic result); a differing hash returns ErrHashConflict and
// leaves the store untouched. Disk-write failures are retried with
// backoff and then degrade the cache to memory-only for the entry —
// they never fail the Put, because the simulation result is already in
// hand and losing persistence beats losing the run.
func (c *Cache) Put(e *Entry) error {
	if e.Key == "" {
		return errors.New("cache: entry has no key")
	}
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("cache: marshal entry: %w", err)
	}
	c.mu.Lock()
	if old, ok := c.mem[e.Key]; ok && old.SummaryHash != e.SummaryHash {
		c.mu.Unlock()
		return fmt.Errorf("%w: key %s has %s, incoming %s",
			ErrHashConflict, e.Key, old.SummaryHash, e.SummaryHash)
	}
	c.mu.Unlock()

	// Disk I/O — conflict check against a not-yet-loaded on-disk copy,
	// then the retried atomic write — runs without the lock, so a slow
	// or failing disk backs off without stalling concurrent lookups.
	// c.dir is immutable after construction, safe to read unlocked.
	var persistErr error
	if c.dir != "" {
		// Check the disk copy too: a restart may hold entries memory has
		// not seen yet.
		if db, err := os.ReadFile(c.path(e.Key)); err == nil {
			var old Entry
			if json.Unmarshal(db, &old) == nil && old.SummaryHash != "" && old.SummaryHash != e.SummaryHash {
				return fmt.Errorf("%w: key %s has %s on disk, incoming %s",
					ErrHashConflict, e.Key, old.SummaryHash, e.SummaryHash)
			}
		}
		persistErr = c.persist(e.Key, b)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	// Re-check: an identical-key Put may have landed while the write was
	// in flight. Same hash is the normal coalesced-duplicate case; a
	// differing one is the determinism violation Put exists to surface.
	if old, ok := c.mem[e.Key]; ok && old.SummaryHash != e.SummaryHash {
		return fmt.Errorf("%w: key %s has %s, incoming %s",
			ErrHashConflict, e.Key, old.SummaryHash, e.SummaryHash)
	}
	if persistErr != nil {
		// Transient retries exhausted: keep the result in memory and
		// flag the degradation instead of failing a finished run.
		c.degraded = true
		if c.degradedReason == "" {
			c.degradedReason = persistErr.Error()
		}
	}
	c.mem[e.Key] = e
	c.touchLocked(e.Key, int64(len(b)))
	c.evictToFitLocked(e.Key)
	return nil
}

// persist writes one marshaled entry to disk atomically (temp file +
// rename), retrying transient failures with a short backoff. Callers
// must NOT hold c.mu — the backoff sleeps, and a failing disk must
// never stall concurrent cache (and therefore API) traffic.
func (c *Cache) persist(key string, b []byte) error {
	var last error
	for attempt := 0; attempt < putRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(putBackoff << (attempt - 1))
		}
		tmp, err := os.CreateTemp(c.dir, ".put-*")
		if err != nil {
			last = fmt.Errorf("cache: %w", err)
			continue
		}
		_, werr := tmp.Write(b)
		cerr := tmp.Close()
		if werr != nil || cerr != nil {
			os.Remove(tmp.Name())
			last = fmt.Errorf("cache: write entry: %w", errors.Join(werr, cerr))
			continue
		}
		if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
			os.Remove(tmp.Name())
			last = fmt.Errorf("cache: %w", err)
			continue
		}
		return nil
	}
	return last
}

// touchLocked records key as most recently used with the given size.
// Callers hold c.mu.
func (c *Cache) touchLocked(key string, size int64) {
	if el, ok := c.lruEl[key]; ok {
		c.lru.MoveToFront(el)
	} else {
		c.lruEl[key] = c.lru.PushFront(key)
	}
	if size > 0 || c.sizes[key] == 0 {
		c.total += size - c.sizes[key]
		c.sizes[key] = size
	}
}

// evictToFitLocked drops least-recently-used entries until the store
// fits the budget, sparing keep (the entry just inserted or loaded —
// evicting it would turn the current operation into an instant miss).
// Evicted entries disappear from memory and disk; a failed file remove
// is tolerated because a resurrected entry re-loads with the identical
// SummaryHash (determinism) and can never conflict. Callers hold c.mu.
func (c *Cache) evictToFitLocked(keep string) {
	if c.maxBytes <= 0 {
		return
	}
	for c.total > c.maxBytes {
		el := c.lru.Back()
		if el == nil {
			return
		}
		key := el.Value.(string)
		if key == keep {
			// Only the protected entry remains; over-budget by one entry
			// beats evicting what the caller is about to use.
			return
		}
		c.lru.Remove(el)
		delete(c.lruEl, key)
		c.total -= c.sizes[key]
		delete(c.sizes, key)
		delete(c.mem, key)
		if c.dir != "" {
			os.Remove(c.path(key)) //nolint:errcheck // resurrection is harmless: same hash, no conflict
		}
		c.evictions++
	}
}

// path maps a key to its on-disk file. Keys are hex digests, so the
// name needs no escaping.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}
