// Package cache is minnowd's content-addressed result store. Every
// Minnow simulation is bit-reproducible — the same validated
// configuration always yields the same stats.RunSummary and therefore
// the same SummaryHash — so finished runs can be memoized under a
// canonical hash of the configuration that produced them (the key; see
// the service package's CacheKey for the canonicalization rules). A hit
// returns the stored result without simulating; a million submitted
// sweep cells dedupe to their unique configurations.
//
// Concurrency contract: a Cache is safe for concurrent use by any
// number of goroutines; every method takes the internal mutex. Disk I/O
// (when a directory is configured) happens inside that critical
// section, which keeps the load-check-store path atomic at the cost of
// serializing lookups — acceptable because entries are small relative
// to the simulations they replace.
//
// Determinism contract: the cache never mutates stored bytes. Summary
// and Result are retained as raw JSON exactly as produced by the run
// that populated the entry, so a hit is byte-identical to the cold run
// — the property the service's dedup-correctness CI gate asserts. Put
// refuses (with ErrHashConflict) to replace an entry whose SummaryHash
// differs from the incoming one: under the determinism contract that
// can only mean a broken simulator or a corrupted store, and silently
// overwriting would mask it.
package cache

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// ErrHashConflict is returned by Put when an entry already exists under
// the key with a different SummaryHash — a determinism violation (or
// store corruption) that must surface, never be papered over.
var ErrHashConflict = errors.New("cache: summary hash conflict for existing key")

// Entry is one memoized simulation result. All JSON payloads are stored
// raw so a cache hit replays the producing run's bytes exactly.
type Entry struct {
	// Key is the canonical configuration hash the entry is stored under.
	Key string `json:"key"`
	// Bench is the benchmark name, kept for operators browsing the store.
	Bench string `json:"bench"`
	// KeyJSON is the canonical key document that hashed to Key — the
	// debuggable form of "what configuration does this entry answer".
	KeyJSON json.RawMessage `json:"key_json"`
	// SummaryHash is the run's deterministic fingerprint
	// (stats.RunSummary sha256); Put enforces that it never changes for
	// a given Key.
	SummaryHash string `json:"summary_hash"`
	// Summary is the canonical stats.RunSummary JSON of the producing
	// run, byte-for-byte.
	Summary json.RawMessage `json:"summary"`
	// Result is the full public minnow.Result JSON of the producing run,
	// including any timeline/profile artifacts it carried.
	Result json.RawMessage `json:"result"`
	// HasTimeline records whether Result carries a Perfetto timeline, so
	// a hit can be refused when the request needs an artifact the entry
	// lacks.
	HasTimeline bool `json:"has_timeline"`
	// HasProfile records whether Result carries the folded/pprof
	// cycle-attribution artifacts.
	HasProfile bool `json:"has_profile"`
}

// Covers reports whether the entry satisfies a request that needs a
// timeline and/or profile artifact: an entry with more artifacts than
// requested still covers, one with fewer forces a re-simulation (whose
// Put then upgrades the entry in place, hash-checked).
func (e *Entry) Covers(timeline, profile bool) bool {
	return (!timeline || e.HasTimeline) && (!profile || e.HasProfile)
}

// Cache is a content-addressed entry store: an in-memory map backed by
// an optional on-disk directory that survives restarts.
type Cache struct {
	mu  sync.Mutex
	mem map[string]*Entry
	dir string // "" = memory only
}

// New returns a memory-only cache.
func New() *Cache { return &Cache{mem: make(map[string]*Entry)} }

// NewDisk returns a cache persisted under dir (created if missing): each
// entry lives in <dir>/<key>.json, written atomically via a temp file +
// rename, so a crash mid-write never leaves a truncated entry behind. A
// fresh Cache over an existing directory serves its entries (loaded
// lazily on first Get) — the "disk cache survives a restart" contract.
func NewDisk(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Cache{mem: make(map[string]*Entry), dir: dir}, nil
}

// Dir returns the backing directory ("" when memory-only).
func (c *Cache) Dir() string { return c.dir }

// Len returns the number of entries the cache can currently serve: all
// in-memory entries plus any on-disk entries not yet loaded.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.mem)
	if c.dir == "" {
		return n
	}
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return n
	}
	on := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".json") {
			key := strings.TrimSuffix(e.Name(), ".json")
			if _, ok := c.mem[key]; !ok {
				on++
			}
		}
	}
	return n + on
}

// Get returns the entry stored under key, falling back to (and
// repopulating memory from) the disk store. The second result reports
// whether an entry was found.
func (c *Cache) Get(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.mem[key]; ok {
		return e, true
	}
	if c.dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e Entry
	if err := json.Unmarshal(b, &e); err != nil || e.Key != key {
		// A corrupt or mismatched file is treated as a miss; the next Put
		// rewrites it atomically.
		return nil, false
	}
	c.mem[key] = &e
	return &e, true
}

// Put stores the entry under its Key. Replacing an existing entry is
// allowed only when the SummaryHash matches (an artifact upgrade: a
// re-simulation that added a timeline or profile to the same
// deterministic result); a differing hash returns ErrHashConflict and
// leaves the store untouched.
func (c *Cache) Put(e *Entry) error {
	if e.Key == "" {
		return errors.New("cache: entry has no key")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.mem[e.Key]; ok && old.SummaryHash != e.SummaryHash {
		return fmt.Errorf("%w: key %s has %s, incoming %s",
			ErrHashConflict, e.Key, old.SummaryHash, e.SummaryHash)
	}
	if c.dir != "" {
		// Check the disk copy too: a restart may hold entries memory has
		// not seen yet.
		if b, err := os.ReadFile(c.path(e.Key)); err == nil {
			var old Entry
			if json.Unmarshal(b, &old) == nil && old.SummaryHash != "" && old.SummaryHash != e.SummaryHash {
				return fmt.Errorf("%w: key %s has %s on disk, incoming %s",
					ErrHashConflict, e.Key, old.SummaryHash, e.SummaryHash)
			}
		}
		b, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("cache: marshal entry: %w", err)
		}
		tmp, err := os.CreateTemp(c.dir, ".put-*")
		if err != nil {
			return fmt.Errorf("cache: %w", err)
		}
		_, werr := tmp.Write(b)
		cerr := tmp.Close()
		if werr != nil || cerr != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("cache: write entry: %w", errors.Join(werr, cerr))
		}
		if err := os.Rename(tmp.Name(), c.path(e.Key)); err != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("cache: %w", err)
		}
	}
	c.mem[e.Key] = e
	return nil
}

// path maps a key to its on-disk file. Keys are hex digests, so the
// name needs no escaping.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}
