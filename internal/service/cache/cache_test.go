package cache

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// entry builds a minimal test entry.
func entry(key, hash, summary string) *Entry {
	return &Entry{
		Key:         key,
		Bench:       "SSSP",
		KeyJSON:     json.RawMessage(`{"bench":"SSSP"}`),
		SummaryHash: hash,
		Summary:     json.RawMessage(summary),
		Result:      json.RawMessage(`{"Benchmark":"SSSP"}`),
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	c := New()
	if _, ok := c.Get("k"); ok {
		t.Fatal("empty cache reported a hit")
	}
	want := entry("k", "h1", `{"wall_cycles":42}`)
	if err := c.Put(want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("k")
	if !ok {
		t.Fatal("stored entry not found")
	}
	if string(got.Summary) != `{"wall_cycles":42}` {
		t.Fatalf("summary bytes changed: %s", got.Summary)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

// TestPutConflict pins the determinism guard: same key, different
// summary hash must be refused, while a same-hash replacement (artifact
// upgrade) must succeed.
func TestPutConflict(t *testing.T) {
	c := New()
	if err := c.Put(entry("k", "h1", `{}`)); err != nil {
		t.Fatal(err)
	}
	err := c.Put(entry("k", "h2", `{}`))
	if !errors.Is(err, ErrHashConflict) {
		t.Fatalf("conflicting Put error = %v, want ErrHashConflict", err)
	}
	up := entry("k", "h1", `{}`)
	up.HasTimeline = true
	if err := c.Put(up); err != nil {
		t.Fatalf("same-hash upgrade refused: %v", err)
	}
	got, _ := c.Get("k")
	if !got.HasTimeline {
		t.Fatal("upgrade did not replace the entry")
	}
}

// TestDiskSurvivesRestart is the restart contract: a second Cache over
// the same directory serves the first one's entries byte-identically.
func TestDiskSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := entry("deadbeef", "h1", `{"wall_cycles":7,"sim_steps":9}`)
	if err := c1.Put(want); err != nil {
		t.Fatal(err)
	}

	c2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := c2.Len(); n != 1 {
		t.Fatalf("restarted cache Len = %d, want 1", n)
	}
	got, ok := c2.Get("deadbeef")
	if !ok {
		t.Fatal("restarted cache missed a persisted entry")
	}
	if string(got.Summary) != string(want.Summary) {
		t.Fatalf("persisted summary bytes differ: %s != %s", got.Summary, want.Summary)
	}
	if got.SummaryHash != "h1" || got.Bench != "SSSP" {
		t.Fatalf("persisted entry fields differ: %+v", got)
	}

	// The restart must also still enforce the hash-conflict guard
	// against disk entries memory has not loaded.
	c3, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c3.Put(entry("deadbeef", "other", `{}`)); !errors.Is(err, ErrHashConflict) {
		t.Fatalf("disk conflict error = %v, want ErrHashConflict", err)
	}
}

// TestCorruptDiskEntryIsMiss checks a truncated or garbage file demotes
// to a miss instead of an error or a bogus hit.
func TestCorruptDiskEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "abc123.json"), []byte("{trunc"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("abc123"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	// A Put over the corrupt file repairs it.
	if err := c.Put(entry("abc123", "h1", `{}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("abc123"); !ok {
		t.Fatal("repaired entry not served")
	}
}

func TestCovers(t *testing.T) {
	e := &Entry{HasTimeline: true}
	cases := []struct {
		timeline, profile, want bool
	}{
		{false, false, true},
		{true, false, true},
		{false, true, false},
		{true, true, false},
	}
	for _, tc := range cases {
		if got := e.Covers(tc.timeline, tc.profile); got != tc.want {
			t.Errorf("Covers(%v,%v) = %v, want %v", tc.timeline, tc.profile, got, tc.want)
		}
	}
}

// TestConcurrentAccess exercises the mutex contract under -race.
func TestConcurrentAccess(t *testing.T) {
	c, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				key := string(rune('a' + j%4))
				_ = c.Put(entry(key, "h", `{}`))
				c.Get(key)
				c.Len()
			}
		}()
	}
	wg.Wait()
	if n := c.Len(); n != 4 {
		t.Fatalf("Len = %d, want 4", n)
	}
}
