package cache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestBudgetEvictsLRU pins the capacity contract: a bounded cache stays
// within its budget by dropping the least-recently-used entries, and an
// evicted key is a plain miss.
func TestBudgetEvictsLRU(t *testing.T) {
	c := New()
	// Size one entry to calibrate the budget: room for ~2 entries.
	probe := entry("probe", "h", `{}`)
	if err := c.Put(probe); err != nil {
		t.Fatal(err)
	}
	per := c.Bytes()
	if per <= 0 {
		t.Fatalf("entry size not accounted: %d", per)
	}
	c.SetBudget(2*per + per/2)

	if err := c.Put(entry("a", "h", `{}`)); err != nil {
		t.Fatal(err)
	}
	// probe and a fit; adding b must evict probe (the LRU).
	if err := c.Put(entry("b", "h", `{}`)); err != nil {
		t.Fatal(err)
	}
	if c.Bytes() > c.Budget() {
		t.Fatalf("cache over budget: %d > %d", c.Bytes(), c.Budget())
	}
	if _, ok := c.Get("probe"); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recent entry evicted")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("newest entry evicted")
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions())
	}

	// Recency matters: touch a, then insert c — b must go, not a.
	c.Get("a")
	if err := c.Put(entry("c", "h", `{}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b survived; recency bump ignored")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently-touched entry a evicted")
	}
}

// TestBudgetEvictionIsMissNeverConflict is the determinism interplay:
// re-caching a previously evicted key with the same hash must succeed
// silently (determinism means the re-run reproduced the identical
// result).
func TestBudgetEvictionIsMissNeverConflict(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(entry("victim", "h-victim", `{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	per := c.Bytes()
	c.SetBudget(per + per/2) // room for one entry only
	if err := c.Put(entry("other", "h-other", `{"x":2}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("victim"); ok {
		t.Fatal("victim survived a one-entry budget")
	}
	if _, err := os.Stat(filepath.Join(dir, "victim.json")); !os.IsNotExist(err) {
		t.Fatalf("evicted entry file still on disk: %v", err)
	}
	// The re-run re-caches cleanly: same key, same hash, no conflict.
	if err := c.Put(entry("victim", "h-victim", `{"x":1}`)); err != nil {
		t.Fatalf("re-caching an evicted key conflicted: %v", err)
	}
	if _, ok := c.Get("victim"); !ok {
		t.Fatal("re-cached entry not served")
	}
}

// TestBudgetSparesJustInserted: a budget smaller than a single entry
// keeps the newest entry anyway — evicting it would make every Put an
// instant miss.
func TestBudgetSparesJustInserted(t *testing.T) {
	c := New()
	c.SetBudget(1)
	if err := c.Put(entry("k", "h", `{}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k"); !ok {
		t.Fatal("sub-entry budget evicted the entry just inserted")
	}
}

// TestBudgetSurvivesRestart: a restarted disk cache seeds its
// accounting from the directory scan, so the budget applies to entries
// written by the previous process.
func TestBudgetSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c1.Put(entry(fmt.Sprintf("k%d", i), "h", `{}`)); err != nil {
			t.Fatal(err)
		}
	}
	total := c1.Bytes()

	c2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Bytes() != total {
		t.Fatalf("restart lost size accounting: %d != %d", c2.Bytes(), total)
	}
	c2.SetBudget(total / 2)
	if c2.Bytes() > total/2 {
		t.Fatalf("restarted cache did not evict to budget: %d > %d", c2.Bytes(), total/2)
	}
	if c2.Evictions() == 0 {
		t.Fatal("no evictions recorded after shrinking the budget")
	}
}

// TestDegradedMemoryOnly: an unusable cache directory (a path under a
// regular file — chmod is useless under root) degrades to memory-only
// instead of failing construction, and Puts still serve from memory.
func TestDegradedMemoryOnly(t *testing.T) {
	base := t.TempDir()
	blocker := filepath.Join(base, "file")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := NewDisk(filepath.Join(blocker, "cache")) // ENOTDIR
	if err != nil {
		t.Fatalf("unusable dir failed construction instead of degrading: %v", err)
	}
	if !c.Degraded() || c.DegradedReason() == "" {
		t.Fatalf("degradation not reported: degraded=%v reason=%q", c.Degraded(), c.DegradedReason())
	}
	if c.Dir() != "" {
		t.Fatalf("degraded cache still claims a dir: %q", c.Dir())
	}
	if err := c.Put(entry("k", "h", `{}`)); err != nil {
		t.Fatalf("degraded cache refused a Put: %v", err)
	}
	if _, ok := c.Get("k"); !ok {
		t.Fatal("degraded cache lost a memory entry")
	}
}

// TestPutDiskFailureDegrades: when the directory disappears after
// construction, Put retries, keeps the entry in memory, flags
// degradation, and still returns nil — only hash conflicts may fail a
// Put.
func TestPutDiskFailureDegrades(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "cache")
	c, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Replace the directory with a regular file: every CreateTemp in it
	// now fails with ENOTDIR, deterministically, even as root.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(entry("k", "h", `{}`)); err != nil {
		t.Fatalf("disk failure surfaced from Put: %v", err)
	}
	if !c.Degraded() {
		t.Fatal("disk failure did not flag degradation")
	}
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry lost despite memory fallback")
	}
	// The determinism guard still applies in degraded mode.
	if err := c.Put(entry("k", "other", `{}`)); !errors.Is(err, ErrHashConflict) {
		t.Fatalf("degraded cache lost the conflict guard: %v", err)
	}
}

// TestBudgetConcurrent hammers a small budget from many goroutines:
// accounting must stay consistent (never negative, never wildly over
// budget) and same-hash re-caching must never conflict.
func TestBudgetConcurrent(t *testing.T) {
	c, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(entry("probe", "h", `{}`)); err != nil {
		t.Fatal(err)
	}
	per := c.Bytes()
	c.SetBudget(3 * per)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				key := fmt.Sprintf("k%d", i%8)
				if err := c.Put(entry(key, "h-"+key, `{}`)); err != nil {
					t.Errorf("concurrent Put conflicted: %v", err)
					return
				}
				c.Get(key)
			}
		}()
	}
	wg.Wait()
	if c.Bytes() < 0 {
		t.Fatalf("negative size accounting: %d", c.Bytes())
	}
	if c.Bytes() > c.Budget()+per {
		t.Fatalf("cache runaway: %d bytes against budget %d", c.Bytes(), c.Budget())
	}
}
