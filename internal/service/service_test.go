package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"minnow"
)

// smallSpec is the cheapest meaningful job (~0.3s simulated): 1-thread
// Minnow SSSP. Distinct seeds give distinct cache keys.
func smallSpec(seed uint64) JobSpec {
	return JobSpec{
		Bench:  "SSSP",
		Config: ConfigSpec{Threads: 1, Minnow: true, Prefetch: true, Seed: seed},
	}
}

// newTestServer builds a server + HTTP test frontend and tears both
// down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

// submit POSTs one job and decodes the response.
func submit(t *testing.T, base string, spec JobSpec) JobView {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /jobs status = %d, body %s", resp.StatusCode, b)
	}
	var v JobView
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("POST /jobs body %s: %v", b, err)
	}
	return v
}

// await polls a job until it reaches a terminal status.
func await(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs/%s status = %d, body %s", id, resp.StatusCode, b)
		}
		var v JobView
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatal(err)
		}
		switch v.Status {
		case StatusDone, StatusFailed, StatusCanceled:
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobView{}
}

// metric extracts one un-labeled metric value from Prometheus text.
func metric(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		var v float64
		if _, err := fmt.Sscanf(line, name+" %f", &v); err == nil && strings.HasPrefix(line, name+" ") {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, text)
	return 0
}

// TestSubmitPollLifecycle drives the documented submit→poll flow end to
// end over HTTP and checks the terminal view carries the deterministic
// result.
func TestSubmitPollLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2})
	v := submit(t, ts.URL, smallSpec(42))
	if v.ID == "" || v.Key == "" {
		t.Fatalf("submission view incomplete: %+v", v)
	}
	if v.Status != StatusQueued && v.Status != StatusRunning && v.Status != StatusDone {
		t.Fatalf("fresh job status = %q", v.Status)
	}
	fin := await(t, ts.URL, v.ID)
	if fin.Status != StatusDone {
		t.Fatalf("job failed: %+v", fin)
	}
	if fin.Cached {
		t.Fatal("first-ever job reported cached")
	}
	if fin.SummaryHash == "" || len(fin.Summary) == 0 {
		t.Fatalf("done view missing summary: %+v", fin)
	}
	var sum map[string]any
	if err := json.Unmarshal(fin.Summary, &sum); err != nil {
		t.Fatalf("summary is not JSON: %v", err)
	}
	if sum["name"] != "SSSP" {
		t.Fatalf("summary names %v, want SSSP", sum["name"])
	}

	// ?full=1 adds the complete minnow.Result document.
	resp, err := http.Get(ts.URL + "/jobs/" + v.ID + "?full=1")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var fv JobView
	if err := json.Unmarshal(b, &fv); err != nil {
		t.Fatal(err)
	}
	var res minnow.Result
	if err := json.Unmarshal(fv.Result, &res); err != nil {
		t.Fatalf("full result is not a minnow.Result: %v", err)
	}
	if res.SummaryHash != fin.SummaryHash || res.WallCycles <= 0 {
		t.Fatalf("full result inconsistent: hash %s vs %s, cycles %d", res.SummaryHash, fin.SummaryHash, res.WallCycles)
	}

	// Unknown job IDs are 404; list shows the job.
	if resp, _ := http.Get(ts.URL + "/jobs/j-999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", resp.StatusCode)
	}
	lresp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	lb, _ := io.ReadAll(lresp.Body)
	lresp.Body.Close()
	var list []JobView
	if err := json.Unmarshal(lb, &list); err != nil || len(list) != 1 || list[0].ID != v.ID {
		t.Fatalf("job list = %s (err %v)", lb, err)
	}
}

// TestValidationErrors pins the HTTP 400 contract: the
// minnow.Config.Validate message is served verbatim, unknown benchmarks
// and unknown config fields are refused.
func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1})
	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(b)
	}
	code, body := post(`{"bench":"SSSP","config":{"Threads":-1}}`)
	if code != http.StatusBadRequest {
		t.Fatalf("invalid config status = %d", code)
	}
	if !strings.Contains(body, "minnow: Threads: -1 is negative (0 selects the default of 8)") {
		t.Fatalf("400 body does not carry the Validate message verbatim: %s", body)
	}
	if code, body = post(`{"bench":"NOPE","config":{}}`); code != http.StatusBadRequest || !strings.Contains(body, "unknown benchmark") {
		t.Fatalf("unknown bench = %d %s", code, body)
	}
	if code, body = post(`{"bench":"SSSP","config":{"Typo":1}}`); code != http.StatusBadRequest || !strings.Contains(body, "unknown field") {
		t.Fatalf("unknown config field = %d %s", code, body)
	}
	if code, _ = post(`{not json`); code != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d", code)
	}
}

// TestCacheHitByteIdentical is the dedup-correctness contract the CI
// gate rides on: two identical submissions trigger exactly one
// simulation, and the cached job's RunSummary JSON and SummaryHash are
// byte-identical to a cold, in-process run of the same configuration.
func TestCacheHitByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 2})
	spec := smallSpec(42)

	first := await(t, ts.URL, submit(t, ts.URL, spec).ID)
	if first.Status != StatusDone || first.Cached {
		t.Fatalf("cold job: %+v", first)
	}

	second := submit(t, ts.URL, spec)
	if second.Status != StatusDone || !second.Cached {
		t.Fatalf("duplicate submission not served from cache: %+v", second)
	}
	if second.SummaryHash != first.SummaryHash {
		t.Fatalf("hash mismatch: %s != %s", second.SummaryHash, first.SummaryHash)
	}
	if !bytes.Equal(second.Summary, first.Summary) {
		t.Fatal("cached summary bytes differ from the producing run")
	}

	// Cold reference run, same resolved configuration, no server.
	cold, err := minnow.Run(spec.Bench, spec.Config.ToConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cold.SummaryHash != first.SummaryHash {
		t.Fatalf("served hash %s differs from cold run %s", first.SummaryHash, cold.SummaryHash)
	}
	if !bytes.Equal(cold.SummaryJSON, first.Summary) {
		t.Fatalf("served summary bytes differ from cold run:\n%s\n%s", first.Summary, cold.SummaryJSON)
	}

	text := s.MetricsText()
	if sims := metric(t, text, "minnowd_sims_total"); sims != 1 {
		t.Fatalf("sims = %v, want exactly 1", sims)
	}
	if hits := metric(t, text, "minnowd_cache_hits_total"); hits != 1 {
		t.Fatalf("hits = %v, want 1", hits)
	}
	if ratio := metric(t, text, "minnowd_cache_hit_ratio"); ratio <= 0 {
		t.Fatalf("hit ratio = %v, want > 0", ratio)
	}
}

// TestConcurrentDuplicatesSingleflight floods the server with identical
// submissions and requires they coalesce to exactly one simulation.
func TestConcurrentDuplicatesSingleflight(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 4})
	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = submit(t, ts.URL, smallSpec(42)).ID
		}(i)
	}
	wg.Wait()
	hash := ""
	for _, id := range ids {
		v := await(t, ts.URL, id)
		if v.Status != StatusDone {
			t.Fatalf("job %s: %+v", id, v)
		}
		if hash == "" {
			hash = v.SummaryHash
		} else if v.SummaryHash != hash {
			t.Fatalf("hash disagreement across duplicates: %s != %s", v.SummaryHash, hash)
		}
	}
	text := s.MetricsText()
	if sims := metric(t, text, "minnowd_sims_total"); sims != 1 {
		t.Fatalf("%d duplicate submissions ran %v simulations, want 1", n, sims)
	}
	if metric(t, text, "minnowd_cache_hits_total")+metric(t, text, "minnowd_cache_coalesced_total") != n-1 {
		t.Fatalf("dedup accounting off:\n%s", text)
	}
	if metric(t, text, "minnowd_cache_conflicts_total") != 0 {
		t.Fatal("summary-hash conflicts recorded")
	}
}

// TestStreamDeliversProgress subscribes to a running job's SSE feed and
// requires at least one interval sample plus the terminal done event.
func TestStreamDeliversProgress(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1, ProgressEvery: 20000})
	v := submit(t, ts.URL, smallSpec(42))

	resp, err := http.Get(ts.URL + "/jobs/" + v.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	samples, dones := 0, 0
	var final JobView
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "sample":
				samples++
				var ev ProgressEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("sample payload %q: %v", data, err)
				}
				if ev.Cycles <= 0 || !strings.Contains(ev.Metrics, "minnow") {
					t.Fatalf("implausible sample: %+v", ev)
				}
			case "done":
				dones++
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					t.Fatalf("done payload %q: %v", data, err)
				}
			}
		}
	}
	if samples == 0 {
		t.Fatal("stream delivered no interval samples")
	}
	if dones != 1 || final.Status != StatusDone || final.SummaryHash == "" {
		t.Fatalf("stream terminal event wrong: dones=%d final=%+v", dones, final)
	}

	// Streaming an already-finished job yields the done event
	// immediately (plus the replayed last sample).
	resp2, err := http.Get(ts.URL + "/jobs/" + v.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(b), "event: done") {
		t.Fatalf("post-completion stream missing done event:\n%s", b)
	}
}

// TestDiskCacheSurvivesRestart persists a result, restarts the service
// over the same directory, and requires the resubmission to be an
// instant byte-identical hit with zero simulations.
func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	spec := smallSpec(42)

	s1, err := New(Config{Shards: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	first := await(t, ts1.URL, submit(t, ts1.URL, spec).ID)
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, Config{Shards: 1, CacheDir: dir})
	second := submit(t, ts2.URL, spec)
	if second.Status != StatusDone || !second.Cached {
		t.Fatalf("restarted server missed the disk cache: %+v", second)
	}
	if second.SummaryHash != first.SummaryHash || !bytes.Equal(second.Summary, first.Summary) {
		t.Fatal("restarted cache served different bytes")
	}
	if sims := metric(t, s2.MetricsText(), "minnowd_sims_total"); sims != 0 {
		t.Fatalf("restarted server simulated %v times, want 0", sims)
	}
}

// TestArtifactUpgrade: an artifact-requesting duplicate of an
// artifact-less entry re-simulates once, upgrades the entry in place
// (hash-checked), after which both request shapes hit.
func TestArtifactUpgrade(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 1})
	plain := smallSpec(42)
	withTL := plain
	withTL.Config.Timeline = true

	a := await(t, ts.URL, submit(t, ts.URL, plain).ID)
	b := submit(t, ts.URL, withTL)
	if b.Status == StatusDone && b.Cached {
		t.Fatal("timeline request served from a timeline-less entry")
	}
	b = await(t, ts.URL, b.ID)
	if b.SummaryHash != a.SummaryHash {
		t.Fatalf("artifact re-run changed the hash: %s != %s", b.SummaryHash, a.SummaryHash)
	}
	c := submit(t, ts.URL, withTL)
	if c.Status != StatusDone || !c.Cached {
		t.Fatalf("upgraded entry not served: %+v", c)
	}
	d := submit(t, ts.URL, plain)
	if d.Status != StatusDone || !d.Cached {
		t.Fatalf("plain request not covered by upgraded entry: %+v", d)
	}
	if sims := metric(t, s.MetricsText(), "minnowd_sims_total"); sims != 2 {
		t.Fatalf("sims = %v, want 2 (cold + artifact upgrade)", sims)
	}

	// The upgraded entry actually carries the timeline.
	e, ok := s.Cache().Get(a.Key)
	if !ok || !e.HasTimeline {
		t.Fatalf("cache entry not upgraded: ok=%v entry=%+v", ok, e)
	}
}

// TestGracefulShutdownDrains accepts several jobs, starts a drain, and
// requires every accepted job to finish while new submissions get 503.
func TestGracefulShutdownDrains(t *testing.T) {
	s, err := New(Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids []string
	for seed := uint64(1); seed <= 3; seed++ {
		ids = append(ids, submit(t, ts.URL, smallSpec(seed)).ID)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()

	// Draining must refuse new work with 503 and fail health checks.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	body, _ := json.Marshal(smallSpec(9))
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining POST status = %d, want 503", resp.StatusCode)
	}

	if err := <-done; err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
	for _, id := range ids {
		v, ok := s.Job(id, false)
		if !ok || v.Status != StatusDone {
			t.Fatalf("accepted job %s not drained: %+v", id, v)
		}
	}
}

// TestFailedJobReportsError drives a job into the watchdog (a tiny
// MaxCycles bound) and checks the failure surfaces on the job, is not
// cached, and counts as failed.
func TestFailedJobReportsError(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 1})
	spec := smallSpec(42)
	spec.Config.MaxCycles = 1000 // far below the ~8M-cycle run
	v := await(t, ts.URL, submit(t, ts.URL, spec).ID)
	if v.Status != StatusFailed || v.Error == "" {
		t.Fatalf("watchdog-bound job: %+v", v)
	}
	if _, ok := s.Cache().Get(v.Key); ok {
		t.Fatal("failed run was cached")
	}
	if failed := metric(t, s.MetricsText(), `minnowd_jobs_total{status="failed"}`); failed != 1 {
		t.Fatalf("failed counter = %v, want 1", failed)
	}
}
