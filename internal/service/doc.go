// Package service is minnowd: a long-running, sharded simulation
// service in front of the Minnow simulator. Clients POST simulation
// jobs (a benchmark name plus a minnow.Config JSON) to an HTTP API; a
// priority queue feeds a pool of worker shards that execute each job
// through the same harness.RunJobs machinery the batch sweep tools use
// (minnow.RunMany with panic isolation, the PR 3 watchdog bounding
// runaway simulations via Config.MaxCycles); finished results land in a
// content-addressed cache (see the cache subpackage) keyed by a
// canonical hash of the validated configuration, so identical
// submissions — whether a repeated curl or a million-cell sweep with
// duplicate configurations — simulate exactly once.
//
// Determinism contract: every Minnow run is bit-reproducible — the
// same validated Config always produces the same stats.RunSummary and
// SummaryHash — which is what makes caching sound: a cache hit returns
// the stored RunSummary byte-identical to what a cold run would
// produce. CacheKey canonicalizes the configuration first (defaults
// resolved, host-only and observe-only knobs excluded; the rules are
// documented on CacheKey and in docs/SERVICE.md), and the cache refuses
// to overwrite an entry with a different SummaryHash, so a determinism
// regression surfaces as an explicit conflict instead of silently
// corrupting results.
//
// Concurrency contract: Server state (queue, job table, singleflight
// registry, metrics counters) is guarded by one mutex; simulations run
// outside it on the worker shards. Concurrent duplicate submissions
// coalesce onto the single in-flight execution of their key
// (singleflight) rather than queueing a second simulation. Progress
// fan-out (the /jobs/{id}/stream SSE feed) consumes the simulator's
// OnSample callback, which fires on the simulation goroutine: the
// publisher only copies the sample under the lock and never blocks on
// slow subscribers (each subscriber channel is buffered and lossy), so
// streaming cannot stall or perturb a simulation. Shutdown drains:
// accepted jobs finish, new submissions are refused with 503.
//
// Durability contract: with a journal configured (Config.JournalPath),
// every accepted job is recorded — fsync'd — before the API
// acknowledges it, and its terminal outcome when reached, so a kill -9
// loses nothing: the next start replays the journal, re-enqueues
// never-completed jobs (determinism guarantees the re-run reproduces
// the exact SummaryHash the lost run would have), serves completed ones
// from the cache, and reports how far crashed runs got via their last
// epoch checkpoint. Replay appends nothing, so a double restart is a
// no-op. See the journal subpackage for the record format.
//
// Cancellation contract: DELETE /jobs/{id} cancels a queued job before
// the response returns; a running job's simulation observes its cancel
// flag (wired to minnow.Config.Cancel, polled on the watchdog cadence)
// within one poll interval, stops, and writes nothing to the cache.
// Cancellation is per-submission: canceling one of several coalesced
// duplicates detaches only that submission while the shared simulation
// keeps running for the survivors.
//
// Tracing contract: every submission carries a correlation ID (client-
// supplied or server-generated) and lifecycle stamps, rendered by the
// tracing subpackage as a merged Chrome-trace/Perfetto document (the
// service's queue-wait/dispatch/exec/cache-write spans alongside the
// simulator's own timeline, GET /jobs/{id}/trace), observed into
// queue-wait/exec/sojourn/cache-write latency histograms on /metrics,
// and recorded in a fixed-size flight-recorder ring dumped on
// panic/watchdog/SIGTERM (GET /debug/flightrec live). Tracing is
// observe-only: summary hashes, cache keys, and what the journal
// replays are byte-identical with it on or off — span timestamps
// piggyback on journal records the replay path already reads, and
// TestTracingInert pins the contract.
package service
