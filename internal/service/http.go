package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
)

// Handler returns the minnowd HTTP API:
//
//	POST   /jobs             submit a job (JobSpec JSON) → JobView
//	GET    /jobs             list jobs, newest first
//	GET    /jobs/{id}        job status/result (?full=1 adds minnow.Result)
//	DELETE /jobs/{id}        cancel a job (queued: immediate; running:
//	                         within one cancel-poll interval)
//	GET    /jobs/{id}/stream SSE progress events (sample*, then done)
//	GET    /jobs/{id}/trace  merged lifecycle + simulation trace
//	                         (Chrome-trace JSON for ui.perfetto.dev)
//	GET    /metrics          Prometheus text exposition (service counters
//	                         and lifecycle latency histograms)
//	GET    /debug/flightrec  flight-recorder snapshot (JSONL, oldest first)
//	GET    /healthz          liveness ("ok", or 503 while draining)
//	GET    /                 human-readable index
//
// Error bodies are plain text; validation failures carry the
// minnow.Config.Validate message verbatim with status 400. Backpressure
// responses — 429 (queue full) and 503 (draining) — carry a Retry-After
// header. See docs/SERVICE.md for the full API reference.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/flightrec", s.handleFlightRec)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /{$}", s.handleIndex)
	return mux
}

// Serve listens on addr and serves the API until the listener closes;
// it returns the bound listener so callers using ":0" can discover the
// port. The returned stop function closes the listener (Shutdown still
// drains the workers separately).
func (s *Server) Serve(addr string) (boundAddr string, stop func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("service: %w", err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return ln.Addr().String(), srv.Close, nil
}

// fail writes an API error, mapping RequestError codes (and the
// Retry-After backoff hint on backpressure responses) through.
func fail(w http.ResponseWriter, err error) {
	var re *RequestError
	if errors.As(err, &re) {
		if re.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(re.RetryAfter))
		}
		http.Error(w, re.Msg, re.Code)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

// writeJSON renders one API response. Output is compact, never
// re-indented: embedded json.RawMessage payloads (the cached RunSummary
// in particular) must reach the client byte-identical to the producing
// run, and an indenting encoder would reformat them.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone mid-body; nothing to do
}

// handleSubmit is POST /jobs.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, "service: bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if spec.Corr == "" {
		spec.Corr = r.Header.Get("X-Correlation-ID")
	}
	v, err := s.Submit(spec)
	if err != nil {
		fail(w, err)
		return
	}
	status := http.StatusAccepted
	if v.Status == StatusDone {
		status = http.StatusOK // cache hit: the result is already here
	}
	writeJSON(w, status, v)
}

// handleCancel is DELETE /jobs/{id}: cancel the job and return its
// (possibly already terminal — cancellation is idempotent) view. A
// queued job is canceled before the response; a running job's
// simulation stops within one cancel-poll interval, so the returned
// status may still read "running" — poll GET /jobs/{id} for the
// terminal "canceled".
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	v, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleList is GET /jobs.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

// handleJob is GET /jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	v, ok := s.Job(r.PathValue("id"), r.URL.Query().Get("full") == "1")
	if !ok {
		http.Error(w, "service: unknown job "+r.PathValue("id"), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleStream is GET /jobs/{id}/stream: a server-sent-event feed of
// interval-metric progress samples (event "sample", ProgressEvent JSON
// data), terminated by one "done" event carrying the job's final view.
// Jobs without metrics sampling (MetricsEvery 0 and no server
// -progress-every default) emit only the final event.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, done, cancel, ok := s.Subscribe(id)
	if !ok {
		http.Error(w, "service: unknown job "+id, http.StatusNotFound)
		return
	}
	defer cancel()
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flush := func() {
		if canFlush {
			fl.Flush()
		}
	}
	flush()

	emit := func(event string, v any) bool {
		b, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b); err != nil {
			return false
		}
		flush()
		return true
	}
	for {
		select {
		case ev, open := <-ch:
			if !open {
				// Terminal: report the final state and end the stream.
				if v, found := s.Job(id, false); found {
					emit("done", v)
				}
				return
			}
			if !emit("sample", ev) {
				return // client hung up
			}
		case <-done:
			// Drain any samples buffered before the close, then finish.
			for {
				select {
				case ev, open := <-ch:
					if !open {
						if v, found := s.Job(id, false); found {
							emit("done", v)
						}
						return
					}
					if !emit("sample", ev) {
						return
					}
				default:
					if v, found := s.Job(id, false); found {
						emit("done", v)
					}
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleTrace is GET /jobs/{id}/trace: the job's merged lifecycle +
// simulation trace as Chrome-trace JSON (load at ui.perfetto.dev).
// Works on live jobs too — open spans close at the request instant.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	b, ok := s.Trace(r.PathValue("id"))
	if !ok {
		http.Error(w, "service: unknown job "+r.PathValue("id"), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b) //nolint:errcheck // client gone mid-body; nothing to do
}

// handleFlightRec is GET /debug/flightrec: a snapshot of the crash
// flight recorder as newline-delimited JSON, oldest event first, led by
// one header line stating the snapshot time and displaced-event count —
// the same format the on-disk panic/watchdog/SIGTERM dumps use.
func (s *Server) handleFlightRec(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	s.flight.WriteJSONL(w) //nolint:errcheck // client gone mid-body; nothing to do
}

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, s.MetricsText())
}

// handleHealthz is GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleIndex is GET /.
func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	fmt.Fprintf(w, `minnowd — sharded Minnow simulation service

POST   /jobs             submit a simulation job (see docs/SERVICE.md)
GET    /jobs             list jobs
GET    /jobs/{id}        job status and result (?full=1 for artifacts)
DELETE /jobs/{id}        cancel a job
GET    /jobs/{id}/stream live progress events (SSE)
GET    /jobs/{id}/trace  merged lifecycle+simulation trace (ui.perfetto.dev)
GET    /metrics          Prometheus metrics
GET    /debug/flightrec  flight-recorder snapshot (JSONL)
GET    /healthz          liveness

shards: %d  cache entries: %d
`, s.shards, s.cache.Len())
}
