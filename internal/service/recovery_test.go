package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"minnow"
	"minnow/internal/service/journal"
)

// cancelJob issues DELETE /jobs/{id} and returns the status code and
// decoded view (when 200).
func cancelJob(t *testing.T, base, id string) (int, JobView) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var v JobView
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatalf("DELETE body %s: %v", b, err)
		}
	}
	return resp.StatusCode, v
}

// slowSpec is a job long enough (several seconds) to reliably cancel
// mid-run; distinct seeds give distinct keys.
func slowSpec(seed uint64) JobSpec {
	return JobSpec{
		Bench:  "SSSP",
		Config: ConfigSpec{Threads: 2, Minnow: true, Prefetch: true, Scale: 2, Seed: seed},
	}
}

// TestCancelQueuedJob pins the immediate-cancel path: a queued job is
// terminal before DELETE returns, never simulates, and cancellation is
// idempotent; unknown IDs are 404.
func TestCancelQueuedJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 1})
	blocker := submit(t, ts.URL, slowSpec(1)) // occupies the only shard
	victim := submit(t, ts.URL, smallSpec(2))

	code, v := cancelJob(t, ts.URL, victim.ID)
	if code != http.StatusOK || v.Status != StatusCanceled {
		t.Fatalf("DELETE queued job = %d %+v, want 200 canceled", code, v)
	}
	// Idempotent: a second DELETE returns the terminal view unchanged.
	if code, v = cancelJob(t, ts.URL, victim.ID); code != http.StatusOK || v.Status != StatusCanceled {
		t.Fatalf("second DELETE = %d %+v", code, v)
	}
	if code, _ := cancelJob(t, ts.URL, "j-999"); code != http.StatusNotFound {
		t.Fatalf("DELETE unknown job = %d, want 404", code)
	}

	if fin := await(t, ts.URL, blocker.ID); fin.Status != StatusDone {
		t.Fatalf("blocker perturbed by cancel: %+v", fin)
	}
	text := s.MetricsText()
	if sims := metric(t, text, "minnowd_sims_total"); sims != 1 {
		t.Fatalf("canceled queued job simulated: sims = %v, want 1", sims)
	}
	if c := metric(t, text, `minnowd_jobs_total{status="canceled"}`); c != 1 {
		t.Fatalf("canceled counter = %v, want 1", c)
	}
}

// TestCancelRunningJob pins the cooperative mid-run cancel: DELETE on a
// running job stops the simulation within one cancel-poll interval,
// the terminal status is canceled, and nothing is written to the cache.
func TestCancelRunningJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 1})
	v := submit(t, ts.URL, slowSpec(1))

	// Wait until the shard actually picks it up.
	deadline := time.Now().Add(time.Minute)
	for {
		cur, ok := s.Job(v.ID, false)
		if !ok {
			t.Fatal("job vanished")
		}
		if cur.Status == StatusRunning {
			break
		}
		if terminal(cur.Status) {
			t.Fatalf("job finished before it could be canceled: %+v", cur)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code, _ := cancelJob(t, ts.URL, v.ID); code != http.StatusOK {
		t.Fatalf("DELETE running job = %d", code)
	}
	fin := await(t, ts.URL, v.ID)
	if fin.Status != StatusCanceled {
		t.Fatalf("canceled running job ended %q, want canceled", fin.Status)
	}
	if _, ok := s.Cache().Get(v.Key); ok {
		t.Fatal("canceled run wrote a cache entry")
	}
	if c := metric(t, s.MetricsText(), `minnowd_jobs_total{status="canceled"}`); c != 1 {
		t.Fatalf("canceled counter = %v, want 1", c)
	}
}

// TestCancelIsPerSubmission pins singleflight cancellation semantics:
// canceling a coalesced follower detaches only it, and canceling a
// queued primary hands the flight to the oldest follower — the
// surviving submissions still get the result.
func TestCancelIsPerSubmission(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 1})
	blocker := submit(t, ts.URL, slowSpec(1)) // holds the shard so the rest queue
	prim := submit(t, ts.URL, smallSpec(2))
	fol1 := submit(t, ts.URL, smallSpec(2))
	fol2 := submit(t, ts.URL, smallSpec(2))
	if !fol1.Cached || !fol2.Cached {
		t.Fatalf("duplicates did not coalesce: %+v %+v", fol1, fol2)
	}

	// Follower detach: fol1 cancels alone, the flight survives.
	if _, v := cancelJob(t, ts.URL, fol1.ID); v.Status != StatusCanceled {
		t.Fatalf("follower cancel: %+v", v)
	}
	// Carrier hand-off: canceling the queued primary promotes fol2.
	if _, v := cancelJob(t, ts.URL, prim.ID); v.Status != StatusCanceled {
		t.Fatalf("primary cancel: %+v", v)
	}
	fin := await(t, ts.URL, fol2.ID)
	if fin.Status != StatusDone || fin.SummaryHash == "" {
		t.Fatalf("surviving follower did not get the result: %+v", fin)
	}
	if v := await(t, ts.URL, prim.ID); v.Status != StatusCanceled {
		t.Fatalf("canceled primary resurrected: %+v", v)
	}
	if v := await(t, ts.URL, fol1.ID); v.Status != StatusCanceled {
		t.Fatalf("canceled follower resurrected: %+v", v)
	}
	await(t, ts.URL, blocker.ID)
	// The flight ran exactly once for the survivor (plus the blocker).
	if sims := metric(t, s.MetricsText(), "minnowd_sims_total"); sims != 2 {
		t.Fatalf("sims = %v, want 2 (blocker + surviving flight)", sims)
	}
}

// TestRetryAfterHeader pins the backpressure contract: 429 (queue
// full) and 503 (draining) both carry a Retry-After header.
func TestRetryAfterHeader(t *testing.T) {
	s, err := New(Config{Shards: 1, QueueLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit(t, ts.URL, slowSpec(1))  // running
	submit(t, ts.URL, smallSpec(2)) // fills the 1-slot queue
	body, _ := json.Marshal(smallSpec(3))
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit POST = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("429 Retry-After = %q, want \"1\"", ra)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp2, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining POST = %d, want 503", resp2.StatusCode)
	}
	if ra := resp2.Header.Get("Retry-After"); ra != "5" {
		t.Fatalf("503 Retry-After = %q, want \"5\"", ra)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// copyTree copies the journal + cache state into a fresh directory —
// the in-process stand-in for what a kill -9 leaves on disk. It runs
// while the source server is still appending, so it also exercises the
// torn-tail tolerance of replay.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecovery is the durability contract end to end: jobs
// accepted by a server that "crashes" (its on-disk state snapshotted
// mid-run, exactly what kill -9 leaves behind) are fully reconstructed
// by a restart — completed jobs serve from the cache, never-completed
// jobs re-run to the byte-identical SummaryHash an uninterrupted run
// produces, canceled jobs stay canceled, and a second restart changes
// nothing (replay is idempotent).
func TestCrashRecovery(t *testing.T) {
	dir1 := t.TempDir()
	cfg1 := Config{
		Shards:        1,
		CacheDir:      filepath.Join(dir1, "cache"),
		JournalPath:   filepath.Join(dir1, "journal.jsonl"),
		ProgressEvery: 20000,
	}
	s1, err := New(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	// Jobs: one finishes pre-crash, one is canceled pre-crash, the rest
	// are lost mid-queue/mid-run.
	finished := submit(t, ts1.URL, smallSpec(1))
	await(t, ts1.URL, finished.ID)
	running := submit(t, ts1.URL, slowSpec(2))
	queuedA := submit(t, ts1.URL, smallSpec(3))
	queuedB := submit(t, ts1.URL, smallSpec(4))
	canceled := submit(t, ts1.URL, smallSpec(5))
	if code, v := cancelJob(t, ts1.URL, canceled.ID); code != 200 || v.Status != StatusCanceled {
		t.Fatalf("pre-crash cancel: %d %+v", code, v)
	}

	// "Crash": snapshot the disk state while s1 is mid-simulation, then
	// abandon s1 (its teardown is deferred; the snapshot is the truth).
	dir2 := t.TempDir()
	copyTree(t, dir1, dir2)
	ts1.Close()
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		s1.Shutdown(ctx)
	}()

	// Restart over the snapshot.
	cfg2 := cfg1
	cfg2.CacheDir = filepath.Join(dir2, "cache")
	cfg2.JournalPath = filepath.Join(dir2, "journal.jsonl")
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		s2.Shutdown(ctx)
	}()

	rec := s2.Recovery()
	if rec.Completed < 1 {
		t.Fatalf("recovery served %d completed jobs, want >= 1 (the pre-crash done job): %+v", rec.Completed, rec)
	}
	if rec.Requeued < 3 {
		t.Fatalf("recovery requeued %d jobs, want >= 3 (running + 2 queued): %+v", rec.Requeued, rec)
	}

	// The finished job survives with its result; the canceled one stays
	// canceled and was not re-run.
	if v, ok := s2.Job(finished.ID, false); !ok || v.Status != StatusDone || !v.Recovered {
		t.Fatalf("pre-crash done job after restart: ok=%v %+v", ok, v)
	}
	if v, ok := s2.Job(canceled.ID, false); !ok || v.Status != StatusCanceled {
		t.Fatalf("pre-crash canceled job after restart: ok=%v %+v", ok, v)
	}

	// Every lost job re-runs to the hash an uninterrupted control run
	// produces — the recovery-is-verifiable contract.
	for _, c := range []struct {
		id   string
		spec JobSpec
	}{{running.ID, slowSpec(2)}, {queuedA.ID, smallSpec(3)}, {queuedB.ID, smallSpec(4)}} {
		v := await(t, ts2.URL, c.id)
		if v.Status != StatusDone {
			t.Fatalf("recovered job %s ended %q: %+v", c.id, v.Status, v)
		}
		if !v.Recovered {
			t.Fatalf("re-run job %s not flagged recovered", c.id)
		}
		control, err := minnow.Run(c.spec.Bench, c.spec.Config.ToConfig())
		if err != nil {
			t.Fatal(err)
		}
		if v.SummaryHash != control.SummaryHash {
			t.Fatalf("recovered job %s hash %s != uninterrupted control %s", c.id, v.SummaryHash, control.SummaryHash)
		}
	}
	if c := metric(t, s2.MetricsText(), "minnowd_cache_conflicts_total"); c != 0 {
		t.Fatalf("recovery produced %v cache conflicts", c)
	}

	// Idempotency: a third server over the same (now fully terminal)
	// state replays everything as completed and simulates nothing.
	ctx, cancelCtx := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancelCtx()
	ts2.Close()
	if err := s2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	s3, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s3.Shutdown(ctx)
	}()
	rec3 := s3.Recovery()
	if rec3.Requeued != 0 {
		t.Fatalf("double restart requeued %d jobs, want 0: %+v", rec3.Requeued, rec3)
	}
	if v, ok := s3.Job(queuedA.ID, false); !ok || v.Status != StatusDone {
		t.Fatalf("double restart lost job state: ok=%v %+v", ok, v)
	}
	if sims := metric(t, s3.MetricsText(), "minnowd_sims_total"); sims != 0 {
		t.Fatalf("double restart simulated %v times, want 0", sims)
	}
}

// TestJournalCompaction pins the bounded-journal contract: startup
// compacts the journal down to the replayed survivors, replay
// re-registers at most replayTerminalCap terminal jobs (newest first),
// and a dropped job's ID still advances the sequence so it is never
// reused by a new submission.
func TestJournalCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	jl, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const extra = 50
	for i := 1; i <= replayTerminalCap+extra; i++ {
		id := fmt.Sprintf("j-%d", i)
		for _, r := range []journal.Record{
			{Op: journal.OpSubmit, ID: id, Bench: "SSSP", Key: id},
			{Op: journal.OpStart, ID: id},
			{Op: journal.OpCanceled, ID: id, Error: "x"},
		} {
			if err := jl.Append(r, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{Shards: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(s.Jobs()); n != replayTerminalCap {
		t.Fatalf("replay registered %d jobs, want %d (terminal cap)", n, replayTerminalCap)
	}
	if _, ok := s.Job("j-1", false); ok {
		t.Fatal("oldest terminal job survived past the cap")
	}
	newest := fmt.Sprintf("j-%d", replayTerminalCap+extra)
	if v, ok := s.Job(newest, false); !ok || v.Status != StatusCanceled {
		t.Fatalf("newest terminal job %s after replay: ok=%v %+v", newest, ok, v)
	}
	// Dropped IDs still advance the sequence: a fresh submission must
	// not reuse j-1..j-50.
	v, err := s.Submit(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("j-%d", replayTerminalCap+extra+1); v.ID != want {
		t.Fatalf("post-replay submission got ID %s, want %s", v.ID, want)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// The on-disk journal was rewritten down to two records per
	// surviving job (submit + canceled) plus the new job's lifecycle
	// (submit + start + done).
	_, recs, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*replayTerminalCap + 3; len(recs) != want {
		t.Fatalf("compacted journal holds %d records, want %d", len(recs), want)
	}
}

// TestSSESubscriberNoLeak pins the stream lifecycle: 100 abrupt
// subscribe/disconnect cycles against a live job leave no subscriber
// channels and no goroutines behind.
func TestSSESubscriberNoLeak(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 1, ProgressEvery: 20000})
	blocker := submit(t, ts.URL, slowSpec(1)) // keeps the shard busy
	target := submit(t, ts.URL, smallSpec(2)) // stays queued: streams attach and wait

	runtime.GC()
	baseline := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/jobs/"+target.ID+"/stream", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		// Abrupt disconnect: cancel the request mid-stream, read nothing.
		cancel()
		resp.Body.Close()
	}
	// Handlers unwind asynchronously; give them a bounded moment.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		s.mu.Lock()
		subs := len(s.jobs[target.ID].subs)
		s.mu.Unlock()
		if subs == 0 && runtime.NumGoroutine() <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak after 100 subscribe/disconnect cycles: %d subscriber channels, %d goroutines (baseline %d)",
				subs, runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
	await(t, ts.URL, blocker.ID)
	await(t, ts.URL, target.ID)
}
