package service_test

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"minnow/internal/service"
)

// ExampleServer submits the same configuration twice and shows the
// second submission served from the content-addressed cache: no second
// simulation runs, and the stored summary comes back byte-identical.
// (The hashes themselves vary with simulator evolution, so the example
// asserts their equality rather than their value.)
func ExampleServer() {
	s, err := service.New(service.Config{Shards: 1})
	if err != nil {
		log.Fatal(err)
	}
	spec := service.JobSpec{
		Bench:  "SSSP",
		Config: service.ConfigSpec{Threads: 1, Minnow: true, Prefetch: true},
	}

	first, err := s.Submit(spec)
	if err != nil {
		log.Fatal(err)
	}
	for {
		v, _ := s.Job(first.ID, false)
		if v.Status != service.StatusQueued && v.Status != service.StatusRunning {
			first = v
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	second, err := s.Submit(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("first cached:", first.Cached)
	fmt.Println("second cached:", second.Cached)
	fmt.Println("same hash:", first.SummaryHash == second.SummaryHash)
	fmt.Println("byte-identical summary:", bytes.Equal(first.Summary, second.Summary))

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	// Output:
	// first cached: false
	// second cached: true
	// same hash: true
	// byte-identical summary: true
}
