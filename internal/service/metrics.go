package service

import (
	"fmt"
	"strings"
	"time"
)

// counters aggregates the server's operational metrics. All fields are
// guarded by Server.mu; MetricsText snapshots them under the lock.
type counters struct {
	submitted int64 // jobs accepted (all paths)
	sims      int64 // simulations actually started (cache misses)
	hits      int64 // submissions served from the stored cache
	coalesced int64 // submissions coalesced onto an in-flight duplicate
	conflicts int64 // cache Put refusals: summary-hash conflicts (should stay 0)

	done     int64 // jobs finished successfully
	failed   int64 // jobs whose simulation errored
	canceled int64 // jobs canceled by client DELETE or shutdown

	journalErrs int64 // journal appends that failed (durability degraded)

	latencySum   time.Duration // total submit→terminal sojourn
	latencyCount int64         // terminal jobs observed
	latencyMax   time.Duration // worst sojourn seen
}

// observe records one job reaching a terminal status after the given
// submit→terminal sojourn.
func (m *counters) observe(status string, d time.Duration) {
	switch status {
	case StatusDone:
		m.done++
	case StatusFailed:
		m.failed++
	case StatusCanceled:
		m.canceled++
	}
	m.latencySum += d
	m.latencyCount++
	if d > m.latencyMax {
		m.latencyMax = d
	}
}

// MetricsText renders the server's operational metrics in the
// Prometheus text exposition format: queue depth, worker utilization,
// cache effectiveness, job throughput and latency. It is served on the
// API's /metrics endpoint and can be registered onto a live inspector
// (inspect.Server.Register) so one scrape covers the simulation's
// interval registry and the service together.
func (s *Server) MetricsText() string {
	s.mu.Lock()
	m := s.m
	depth := s.queue.Len()
	busy := s.busy
	rec := s.rec
	s.mu.Unlock()

	var b strings.Builder
	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}

	gauge("minnowd_queue_depth", "Jobs queued and not yet running.", depth)
	gauge("minnowd_workers", "Worker shards (concurrent simulations).", s.shards)
	gauge("minnowd_workers_busy", "Worker shards currently simulating.", busy)
	gauge("minnowd_cache_entries", "Entries the result cache can serve.", s.cache.Len())

	counter("minnowd_jobs_submitted_total", "Jobs accepted for execution or cache service.", m.submitted)
	fmt.Fprintf(&b, "# HELP minnowd_jobs_total Jobs by terminal status.\n# TYPE minnowd_jobs_total counter\n")
	fmt.Fprintf(&b, "minnowd_jobs_total{status=\"done\"} %d\n", m.done)
	fmt.Fprintf(&b, "minnowd_jobs_total{status=\"failed\"} %d\n", m.failed)
	fmt.Fprintf(&b, "minnowd_jobs_total{status=\"canceled\"} %d\n", m.canceled)

	counter("minnowd_sims_total", "Simulations executed (cache misses).", m.sims)
	counter("minnowd_cache_hits_total", "Submissions served from the stored cache.", m.hits)
	counter("minnowd_cache_coalesced_total", "Submissions coalesced onto an identical in-flight run (singleflight).", m.coalesced)
	counter("minnowd_cache_conflicts_total", "Cache writes refused for a summary-hash conflict (determinism violations; must stay 0).", m.conflicts)
	dedup := m.hits + m.coalesced
	ratio := 0.0
	if dedup+m.sims > 0 {
		ratio = float64(dedup) / float64(dedup+m.sims)
	}
	gauge("minnowd_cache_hit_ratio", "Deduplicated share of resolved submissions: (hits+coalesced)/(hits+coalesced+sims).", fmt.Sprintf("%.6f", ratio))

	counter("minnowd_cache_evictions_total", "Entries dropped by the cache byte budget (each later reads back as a miss).", s.cache.Evictions())
	gauge("minnowd_cache_bytes", "Accounted size of the result cache.", s.cache.Bytes())
	gauge("minnowd_cache_capacity_bytes", "Configured cache byte budget (0 = unbounded).", s.cache.Budget())
	degraded := 0
	if s.cache.Degraded() {
		degraded = 1
	}
	gauge("minnowd_cache_degraded", "1 when disk failures forced the cache to memory-only persistence.", degraded)

	counter("minnowd_recovered_requeued_total", "Never-completed jobs re-enqueued by the startup journal replay.", rec.Requeued)
	counter("minnowd_recovered_completed_total", "Replayed jobs served straight from the cache at startup.", rec.Completed)
	counter("minnowd_journal_errors_total", "Journal appends that failed (durability degraded; must stay 0).", m.journalErrs)

	fmt.Fprintf(&b, "# HELP minnowd_job_seconds Submit-to-terminal job sojourn time.\n# TYPE minnowd_job_seconds summary\n")
	fmt.Fprintf(&b, "minnowd_job_seconds_sum %.6f\n", m.latencySum.Seconds())
	fmt.Fprintf(&b, "minnowd_job_seconds_count %d\n", m.latencyCount)
	gauge("minnowd_job_seconds_max", "Worst submit-to-terminal sojourn seen.", fmt.Sprintf("%.6f", m.latencyMax.Seconds()))

	// Lifecycle latency histograms (internal/service/tracing), labeled by
	// terminal status and cache outcome. Each HistVec locks itself —
	// s.mu is already released.
	b.WriteString(s.hQueueWait.Text())
	b.WriteString(s.hExec.Text())
	b.WriteString(s.hSojourn.Text())
	b.WriteString(s.hCacheWrite.Text())
	gauge("minnowd_flightrec_events_seen", "Events ever recorded by the crash flight recorder (ring may have displaced older ones).", s.flight.Seen())
	return b.String()
}
