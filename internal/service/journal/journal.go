// Package journal is minnowd's durable job log: an append-only
// newline-delimited-JSON file that records every job's lifecycle
// (submit → start → checkpoint* → done|failed|canceled) so a crashed
// server can reconstruct its queue on restart. Replay is driven by the
// service package: jobs whose last record is non-terminal are
// re-enqueued (determinism guarantees the re-run reproduces the exact
// SummaryHash the lost run would have produced), jobs with a terminal
// record are re-registered served from the result cache, and checkpoint
// records report how far a crashed run had progressed.
//
// Durability contract: Append writes each record as a single
// line-buffered write; with sync=true the file is fsync'd before Append
// returns, so submit and terminal records survive a kill -9 the moment
// the API acknowledges them. Checkpoints are written without sync —
// losing the last few progress stamps costs nothing, the job re-runs
// anyway. A crash can leave a torn final line; Open tolerates it (and
// any other undecodable line) by skipping, and repairs it by
// terminating the fragment with a newline, so recovery never fails on
// the artifact of the crash it exists to survive and the first record
// appended after a restart lands on a fresh line instead of fusing
// with the fragment.
//
// Concurrency contract: a Journal is safe for concurrent use; every
// Append serializes on an internal mutex. Records for different jobs
// interleave freely — replay groups them by ID.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Op identifies a record's lifecycle event.
type Op string

// Lifecycle operations, in the order a job emits them. Every job starts
// with OpSubmit and ends with exactly one of the three terminal ops;
// OpStart and OpCheckpoint appear only between the two.
const (
	// OpSubmit records a job accepted into the queue (fsync'd: the job
	// survives a crash from the moment the API acknowledged it).
	OpSubmit Op = "submit"
	// OpStart records a worker shard picking the job up.
	OpStart Op = "start"
	// OpCheckpoint records mid-run progress: simulated cycles reached
	// and interval samples emitted. Written without fsync.
	OpCheckpoint Op = "checkpoint"
	// OpDone records successful completion (fsync'd), with the result's
	// SummaryHash; the result itself lives in the cache under Key.
	OpDone Op = "done"
	// OpFailed records a failed simulation (fsync'd), with the error.
	OpFailed Op = "failed"
	// OpCanceled records cancellation — client DELETE or shutdown —
	// whether the job was still queued or already running (fsync'd).
	OpCanceled Op = "canceled"
)

// Terminal reports whether the op ends a job's lifecycle.
func (o Op) Terminal() bool {
	return o == OpDone || o == OpFailed || o == OpCanceled
}

// Record is one journal line. Only ID and Op are always present; the
// remaining fields depend on the op (see the Op constants).
type Record struct {
	// Op is the lifecycle event.
	Op Op `json:"op"`
	// ID is the server-assigned job identifier the record belongs to.
	ID string `json:"id"`
	// Bench is the benchmark name (submit records).
	Bench string `json:"bench,omitempty"`
	// Key is the canonical cache key of the job's resolved configuration
	// (submit records) — recovery's bridge from journal to result cache.
	Key string `json:"key,omitempty"`
	// Priority is the submitted queue priority (submit records).
	Priority int `json:"priority,omitempty"`
	// At is the record's wall-clock time in Unix nanoseconds: the
	// submission time on submit records, the dispatch time on start
	// records, the sample time on checkpoint records, and the terminal
	// time on done/failed/canceled records. Replay restores these stamps
	// so a recovered job's latency metrics and lifecycle trace span the
	// crash instead of restarting the clock at replay — the service's
	// job traces piggyback entirely on these fields, so tracing adds no
	// journal records of its own.
	At int64 `json:"at,omitempty"`
	// Corr is the job's correlation ID (submit records), preserved so a
	// client can still find its submission by correlation ID after a
	// restart.
	Corr string `json:"corr,omitempty"`
	// StartAt is the wall-clock time (Unix nanoseconds) the job's
	// simulation was dispatched to a worker shard, carried on terminal
	// records (0 when the job never ran) so the queue-wait/exec split
	// survives journal compaction, which keeps only the submit and
	// terminal records of completed jobs.
	StartAt int64 `json:"start_at,omitempty"`
	// Spec is the resolved ConfigSpec JSON (submit records), everything
	// replay needs to re-run the job without the original request.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Cycles is the simulated cycle stamp (checkpoint records).
	Cycles int64 `json:"cycles,omitempty"`
	// Samples is the count of interval samples emitted so far
	// (checkpoint records).
	Samples int64 `json:"samples,omitempty"`
	// Hash is the result's SummaryHash (done records).
	Hash string `json:"hash,omitempty"`
	// Error is the failure or cancellation reason (failed/canceled
	// records).
	Error string `json:"error,omitempty"`
}

// Journal is an open append-only job log.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// Open opens (creating if missing) the journal at path and replays its
// existing records. Undecodable lines — a torn tail from a crash
// mid-append, manual truncation — are skipped, not fatal: the journal
// must be readable after exactly the failures it protects against. A
// torn final line (no trailing newline) is additionally repaired by
// writing the missing newline, so the first record appended after the
// crash starts its own line instead of concatenating onto the fragment
// and being lost as corrupt on the next replay. The returned slice
// preserves append order.
func Open(path string) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil || r.ID == "" || r.Op == "" {
			continue // torn or corrupt line: skip, never fail recovery
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: read %s: %w", path, err)
	}
	// Appends must land at the end regardless of where the scan stopped.
	end, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	// Repair a torn tail: if the file does not end in a newline (a crash
	// mid-append), terminate the fragment so the next Append starts a
	// fresh line — an fsync-acknowledged record written after a restart
	// must never fuse with the fragment and vanish on the replay after.
	if end > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], end-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("journal: repair torn tail: %w", err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("journal: repair torn tail: %w", err)
			}
		}
	}
	return &Journal{f: f, path: path}, recs, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append writes one record as a single JSON line. With sync=true the
// file is fsync'd before returning — used for submit and terminal
// records, whose durability the API's acknowledgment promises;
// checkpoints skip the fsync because losing them only loses a progress
// report.
func (j *Journal) Append(r Record, sync bool) error {
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("journal: marshal: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	return nil
}

// Rewrite atomically replaces the journal's contents with recs —
// written to a temp file, fsync'd, and renamed over the live path —
// then reopens the append handle on the new file. The service calls it
// once per startup, right after replay, with the compacted record set
// (live jobs plus a bounded tail of terminal ones), so the journal and
// its replay cost stay proportional to retained state instead of
// growing with lifetime job count. A crash anywhere inside Rewrite
// leaves either the old or the new journal intact, never a mix.
func (j *Journal) Rewrite(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	tmp, err := os.CreateTemp(filepath.Dir(j.path), ".journal-*")
	if err != nil {
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	w := bufio.NewWriter(tmp)
	for _, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("journal: rewrite: marshal: %w", err)
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("journal: rewrite: %w", err)
		}
	}
	if err := errors.Join(w.Flush(), tmp.Sync(), tmp.Close()); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		// The rename landed but the reopen failed: keep appending to the
		// doomed handle (its writes go nowhere durable) rather than
		// leaving the journal closed mid-flight.
		return fmt.Errorf("journal: rewrite: reopen: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	j.f.Close()
	j.f = f
	return nil
}

// Close syncs and closes the journal file. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := errors.Join(j.f.Sync(), j.f.Close())
	j.f = nil
	return err
}
