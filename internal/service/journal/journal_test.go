package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []Record{
		{Op: OpSubmit, ID: "j-1", Bench: "SSSP", Key: "abc", Priority: 2, Spec: json.RawMessage(`{"Threads":2}`)},
		{Op: OpStart, ID: "j-1"},
		{Op: OpCheckpoint, ID: "j-1", Cycles: 50000, Samples: 5},
		{Op: OpDone, ID: "j-1", Hash: "deadbeef"},
		{Op: OpSubmit, ID: "j-2", Bench: "BFS", Key: "def"},
		{Op: OpCanceled, ID: "j-2", Error: "canceled by client"},
	}
	for _, r := range want {
		if err := j.Append(r, r.Op != OpCheckpoint); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, recs, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Op != want[i].Op || r.ID != want[i].ID || r.Bench != want[i].Bench ||
			r.Key != want[i].Key || r.Priority != want[i].Priority ||
			r.Cycles != want[i].Cycles || r.Samples != want[i].Samples ||
			r.Hash != want[i].Hash || r.Error != want[i].Error {
			t.Fatalf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
	if string(recs[0].Spec) != `{"Threads":2}` {
		t.Fatalf("spec did not round-trip: %s", recs[0].Spec)
	}
}

func TestTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Op: OpSubmit, ID: "j-1", Key: "k"}, true); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a crash mid-append: a torn, undecodable final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"done","id":"j-`)
	f.Close()

	j2, recs, err := Open(path)
	if err != nil {
		t.Fatalf("torn tail failed recovery: %v", err)
	}
	if len(recs) != 1 || recs[0].ID != "j-1" || recs[0].Op != OpSubmit {
		t.Fatalf("replay after torn tail = %+v, want the one intact record", recs)
	}
	// Open repairs the torn tail (terminates the fragment with a
	// newline), so the very FIRST record appended after the
	// crash-restart must survive the next replay — a lost terminal
	// record here would resurrect a canceled job.
	if err := j2.Append(Record{Op: OpCanceled, ID: "j-1"}, true); err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(Record{Op: OpSubmit, ID: "j-2", Key: "k2"}, true); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, recs, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("replay after repaired torn tail = %d records %+v, want 3", len(recs), recs)
	}
	if recs[1].ID != "j-1" || recs[1].Op != OpCanceled {
		t.Fatalf("first record appended after torn tail lost on replay: %+v", recs)
	}
	if recs[2].ID != "j-2" || recs[2].Op != OpSubmit {
		t.Fatalf("second record appended after torn tail lost on replay: %+v", recs)
	}
}

func TestRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	full := []Record{
		{Op: OpSubmit, ID: "j-1", Key: "k1"},
		{Op: OpStart, ID: "j-1"},
		{Op: OpCheckpoint, ID: "j-1", Cycles: 100},
		{Op: OpDone, ID: "j-1", Hash: "aa"},
		{Op: OpSubmit, ID: "j-2", Key: "k2"},
	}
	for _, r := range full {
		if err := j.Append(r, false); err != nil {
			t.Fatal(err)
		}
	}
	compact := []Record{
		{Op: OpSubmit, ID: "j-1", Key: "k1"},
		{Op: OpDone, ID: "j-1", Hash: "aa"},
		{Op: OpSubmit, ID: "j-2", Key: "k2"},
	}
	if err := j.Rewrite(compact); err != nil {
		t.Fatal(err)
	}
	// Appends after a rewrite land in the new file.
	if err := j.Append(Record{Op: OpStart, ID: "j-2"}, true); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := append(compact, Record{Op: OpStart, ID: "j-2"})
	if len(recs) != len(want) {
		t.Fatalf("rewritten journal replayed %d records %+v, want %d", len(recs), recs, len(want))
	}
	for i, r := range recs {
		if r.Op != want[i].Op || r.ID != want[i].ID || r.Key != want[i].Key || r.Hash != want[i].Hash {
			t.Fatalf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
}

func TestTerminal(t *testing.T) {
	for op, want := range map[Op]bool{
		OpSubmit: false, OpStart: false, OpCheckpoint: false,
		OpDone: true, OpFailed: true, OpCanceled: true,
	} {
		if op.Terminal() != want {
			t.Fatalf("%s.Terminal() = %v, want %v", op, !want, want)
		}
	}
}

func TestConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := j.Append(Record{Op: OpCheckpoint, ID: "j-1", Cycles: int64(i)}, false); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	j.Close()
	_, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != writers*per {
		t.Fatalf("replayed %d records after concurrent append, want %d (interleaved writes corrupted lines?)", len(recs), writers*per)
	}
}

func TestClosedAppendFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append(Record{Op: OpSubmit, ID: "j-1"}, false); err == nil {
		t.Fatal("append after close succeeded")
	}
}
