package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestTracingInert is the observe-only contract pin: enabling every
// tracing feature (trace persistence, flight recorder, correlation IDs)
// changes neither the RunSummary hash and bytes, nor the cache key, nor
// what a journal replay reconstructs, compared to a server with tracing
// off. It also pins that the correlation ID is excluded from the cache
// key: differently-correlated identical submissions share one entry.
func TestTracingInert(t *testing.T) {
	spec := smallSpec(42)
	spec.Corr = "corr-A"

	// Tracing on: trace dir, tiny flight ring, client correlation ID.
	_, tsOn := newTestServer(t, Config{Shards: 1, TraceDir: t.TempDir(), FlightRecEvents: 64})
	on := await(t, tsOn.URL, submit(t, tsOn.URL, spec).ID)

	// Tracing off: zero-valued observability config, no correlation ID.
	plain := smallSpec(42)
	_, tsOff := newTestServer(t, Config{Shards: 1})
	off := await(t, tsOff.URL, submit(t, tsOff.URL, plain).ID)

	if on.Status != StatusDone || off.Status != StatusDone {
		t.Fatalf("jobs did not finish: on=%+v off=%+v", on, off)
	}
	if on.SummaryHash != off.SummaryHash {
		t.Fatalf("tracing changed the summary hash: %s != %s", on.SummaryHash, off.SummaryHash)
	}
	if !bytes.Equal(on.Summary, off.Summary) {
		t.Fatalf("tracing changed the summary bytes:\n%s\n%s", on.Summary, off.Summary)
	}
	if on.Key != off.Key {
		t.Fatalf("tracing (or the correlation ID) changed the cache key: %s != %s", on.Key, off.Key)
	}
	if on.Corr != "corr-A" {
		t.Fatalf("correlation ID not echoed: %+v", on)
	}

	// Corr is excluded from the key: a differently-correlated identical
	// submission is a born-done cache hit.
	dup := smallSpec(42)
	dup.Corr = "corr-B"
	hit := submit(t, tsOn.URL, dup)
	if hit.Status != StatusDone || !hit.Cached {
		t.Fatalf("differently-correlated duplicate missed the cache: %+v", hit)
	}
	if hit.Corr != "corr-B" {
		t.Fatalf("duplicate lost its own correlation ID: %+v", hit)
	}
}

// TestTracingInertJournalReplay pins the recovery side of the contract:
// a journal written by a tracing-enabled server replays to the same
// job state under a tracing-disabled server and vice versa — the span
// stamps piggybacking on journal records never change what replay
// reconstructs.
func TestTracingInertJournalReplay(t *testing.T) {
	dir := t.TempDir()
	jp := filepath.Join(dir, "journal.jsonl")

	s1, err := New(Config{Shards: 1, JournalPath: jp, TraceDir: filepath.Join(dir, "traces"), FlightRecEvents: 32})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	spec := smallSpec(42)
	spec.Corr = "replay-corr"
	fin := await(t, ts1.URL, submit(t, ts1.URL, spec).ID)
	if fin.Status != StatusDone {
		t.Fatalf("job: %+v", fin)
	}
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	journalBytes, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}

	// Replay the identical journal under both tracing configs; the
	// reconstructed job views must be byte-identical. Each replay
	// compacts (rewrites) the journal, so restore the original between
	// runs to keep the inputs identical.
	views := make([][]byte, 2)
	for i, cfg := range []Config{
		{Shards: 1, JournalPath: jp},
		{Shards: 1, JournalPath: jp, TraceDir: filepath.Join(dir, "traces2"), FlightRecEvents: 32},
	} {
		if err := os.WriteFile(jp, journalBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(s.Jobs())
		if err != nil {
			t.Fatal(err)
		}
		views[i] = b
		rctx, rcancel := context.WithTimeout(context.Background(), time.Minute)
		s.Shutdown(rctx)
		rcancel()
	}
	if !bytes.Equal(views[0], views[1]) {
		t.Fatalf("tracing changed what replay reconstructs:\noff: %s\non:  %s", views[0], views[1])
	}

	// The replayed view still carries the correlation ID and the
	// crash-spanning lifecycle stamps from the journal.
	var replayed []JobView
	if err := json.Unmarshal(views[0], &replayed); err != nil || len(replayed) != 1 {
		t.Fatalf("replayed views: %s (err %v)", views[0], err)
	}
	v := replayed[0]
	if v.Corr != "replay-corr" || !v.Recovered || v.Status != StatusDone {
		t.Fatalf("replayed job lost tracing state: %+v", v)
	}
	if v.QueuedAtNS <= 0 || v.StartedAtNS < v.QueuedAtNS || v.DoneAtNS < v.StartedAtNS {
		t.Fatalf("replayed lifecycle stamps disordered: %+v", v)
	}
}

// TestMergedTraceEndpoint runs a Timeline-requesting job and requires
// GET /jobs/{id}/trace to serve one valid Chrome-trace file holding
// both the service lifecycle spans (pid 1: job, queue-wait, exec) and
// the simulator's own timeline events (pid 0) — the artifact CI uploads
// and ui.perfetto.dev loads.
func TestMergedTraceEndpoint(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Shards: 1, ProgressEvery: 20000, TraceDir: dir})
	spec := smallSpec(42)
	spec.Config.Timeline = true
	v := await(t, ts.URL, submit(t, ts.URL, spec).ID)
	if v.Status != StatusDone {
		t.Fatalf("job: %+v", v)
	}

	resp, err := http.Get(ts.URL + "/jobs/" + v.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("GET trace = %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace is not JSON: %v", err)
	}
	if doc.OtherData["job"] != v.ID || doc.OtherData["status"] != StatusDone {
		t.Fatalf("otherData wrong: %v", doc.OtherData)
	}
	spans := map[string]bool{}
	simEvents := 0
	for _, ev := range doc.TraceEvents {
		switch ev["pid"].(float64) {
		case 1:
			if ev["ph"] == "X" {
				spans[ev["name"].(string)] = true
			}
		case 0:
			if ev["ph"] != "M" {
				simEvents++
			}
		}
	}
	for _, want := range []string{"job", "queue-wait", "exec", "cache-write"} {
		if !spans[want] {
			t.Fatalf("service span %q missing (have %v)", want, spans)
		}
	}
	if simEvents == 0 {
		t.Fatal("merged trace carries no simulator timeline events")
	}

	// The same bytes were persisted to the trace dir.
	persisted, err := os.ReadFile(filepath.Join(dir, v.ID+".trace.json"))
	if err != nil {
		t.Fatalf("trace not persisted: %v", err)
	}
	var pdoc struct {
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(persisted, &pdoc); err != nil || pdoc.OtherData["job"] != v.ID {
		t.Fatalf("persisted trace wrong: %v %v", pdoc.OtherData, err)
	}

	// Unknown jobs are 404.
	if resp, _ := http.Get(ts.URL + "/jobs/j-999/trace"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace = %d, want 404", resp.StatusCode)
	}
}

// TestFlightRecorderEndpoint checks GET /debug/flightrec: JSONL with a
// header line, then the job's lifecycle breadcrumbs (submit, start,
// done) in order, each carrying the correlation ID.
func TestFlightRecorderEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1, FlightRecEvents: 128})
	spec := smallSpec(42)
	spec.Corr = "flight-corr"
	v := await(t, ts.URL, submit(t, ts.URL, spec).ID)
	if v.Status != StatusDone {
		t.Fatalf("job: %+v", v)
	}

	resp, err := http.Get(ts.URL + "/debug/flightrec")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/flightrec = %d", resp.StatusCode)
	}
	var kinds []string
	first := true
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("non-JSON flightrec line %q: %v", sc.Text(), err)
		}
		if first {
			first = false
			if m["flight_recorder"] != "minnowd" {
				t.Fatalf("missing header line: %v", m)
			}
			continue
		}
		if m["job"] == v.ID {
			kinds = append(kinds, m["kind"].(string))
			if m["corr"] != "flight-corr" {
				t.Fatalf("event lost the correlation ID: %v", m)
			}
		}
	}
	want := []string{"submit", "start", "cache-write", StatusDone}
	got := strings.Join(kinds, ",")
	for _, k := range want {
		if !strings.Contains(got, k) {
			t.Fatalf("flight recorder missing %q for %s: [%s]", k, v.ID, got)
		}
	}
}

// TestLifecycleStampsOrdered pins the JobView timestamp contract the
// load generator validates client-side: queued <= started <= done, all
// positive, for fresh runs, cache hits, and coalesced followers.
func TestLifecycleStampsOrdered(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1})
	cold := await(t, ts.URL, submit(t, ts.URL, smallSpec(42)).ID)
	if cold.QueuedAtNS <= 0 || cold.StartedAtNS < cold.QueuedAtNS || cold.DoneAtNS < cold.StartedAtNS {
		t.Fatalf("cold run stamps disordered: %+v", cold)
	}
	hit := submit(t, ts.URL, smallSpec(42))
	if hit.Status != StatusDone || !hit.Cached {
		t.Fatalf("duplicate not a hit: %+v", hit)
	}
	// Born-done: never dispatched, so StartedAtNS stays 0.
	if hit.QueuedAtNS <= 0 || hit.StartedAtNS != 0 || hit.DoneAtNS < hit.QueuedAtNS {
		t.Fatalf("cache-hit stamps wrong: %+v", hit)
	}
}
