package trace

import (
	"strings"
	"testing"
)

func TestRingRetainsTail(t *testing.T) {
	b := New(3)
	for i := int64(0); i < 5; i++ {
		b.Emit(0, 0, 0, EvEnqueue, i)
	}
	evs := b.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d", len(evs))
	}
	for i, ev := range evs {
		if ev.Arg != int64(i+2) {
			t.Fatalf("ring order wrong: %v", evs)
		}
	}
	if b.Total() != 5 {
		t.Fatalf("total %d", b.Total())
	}
}

func TestNilBufferIsNoop(t *testing.T) {
	var b *Buffer
	b.Emit(1, 2, 3, EvSpill, 4) // must not panic
	if b.Total() != 0 || b.Count(EvSpill) != 0 || b.Events() != nil {
		t.Fatal("nil buffer not inert")
	}
	if b.String() != "" {
		t.Fatal("nil buffer rendered text")
	}
}

func TestCounts(t *testing.T) {
	b := New(10)
	b.Emit(0, 0, 0, EvFill, 48)
	b.Emit(0, 0, 0, EvFill, 16)
	b.Emit(0, 0, 0, EvSpill, 8)
	if b.Count(EvFill) != 2 || b.Count(EvSpill) != 1 {
		t.Fatalf("counts wrong")
	}
}

func TestRendering(t *testing.T) {
	b := New(4)
	b.Emit(1234, 2, 3, EvPrefetch, 7)
	s := b.String()
	for _, frag := range []string{"prefetch", "eng2", "core3", "1234"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("render missing %q:\n%s", frag, s)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Fatalf("kind %d has no label", k)
		}
	}
}
