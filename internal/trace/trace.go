// Package trace provides a lightweight ring-buffer event log for the
// Minnow engines: enqueues, dequeues, spills, fills, prefetch issues,
// credit stalls, and stream drops, each stamped with simulated time.
//
// Tracing is opt-in (a nil buffer costs one branch per event site) and
// bounded: the ring keeps the most recent Cap events. The minnowsim
// -trace flag prints the tail of the log after a run.
package trace

import (
	"fmt"
	"strings"

	"minnow/internal/sim"
)

// Kind classifies an engine event.
type Kind uint8

const (
	// EvEnqueue is a minnow_enqueue accepted into a local queue.
	EvEnqueue Kind = iota
	// EvEnqueueSpill is a minnow_enqueue routed to the spill queue.
	EvEnqueueSpill
	// EvDequeue is a successful minnow_dequeue.
	EvDequeue
	// EvDequeueEmpty is a minnow_dequeue that found the local queue empty.
	EvDequeueEmpty
	// EvSpill is a spill threadlet batch completing.
	EvSpill
	// EvFill is a fill threadlet completing.
	EvFill
	// EvPrefetch is one prefetch threadlet issuing its loads.
	EvPrefetch
	// EvCreditStall is the prefetcher pausing on an empty credit pool.
	EvCreditStall
	// EvStreamDrop is a stale prefetch stream being cancelled.
	EvStreamDrop
	// EvFlush is a minnow_flush.
	EvFlush
	numKinds
)

// String returns the event label.
func (k Kind) String() string {
	switch k {
	case EvEnqueue:
		return "enqueue"
	case EvEnqueueSpill:
		return "enqueue-spill"
	case EvDequeue:
		return "dequeue"
	case EvDequeueEmpty:
		return "dequeue-empty"
	case EvSpill:
		return "spill"
	case EvFill:
		return "fill"
	case EvPrefetch:
		return "prefetch"
	case EvCreditStall:
		return "credit-stall"
	case EvStreamDrop:
		return "stream-drop"
	case EvFlush:
		return "flush"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one engine event.
type Event struct {
	At     sim.Time
	Engine int32 // engine attach-point core ID
	Core   int32 // served core (differs from Engine when sharing)
	Kind   Kind
	Arg    int64 // kind-specific: node ID, batch size, load count...
}

// String renders one event line.
func (e Event) String() string {
	return fmt.Sprintf("%12d  eng%-3d core%-3d %-14s %d", e.At, e.Engine, e.Core, e.Kind, e.Arg)
}

// Buffer is a fixed-capacity ring of the most recent events. The zero
// value discards everything; construct with New.
type Buffer struct {
	ring  []Event
	next  int
	total int64
	byK   [numKinds]int64
}

// New returns a buffer keeping the last cap events.
func New(cap int) *Buffer {
	if cap <= 0 {
		cap = 1
	}
	return &Buffer{ring: make([]Event, 0, cap)}
}

// Emit records an event. Safe to call on a nil buffer (no-op).
func (b *Buffer) Emit(at sim.Time, engine, core int, kind Kind, arg int64) {
	if b == nil {
		return
	}
	ev := Event{At: at, Engine: int32(engine), Core: int32(core), Kind: kind, Arg: arg}
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, ev)
	} else {
		b.ring[b.next] = ev
		b.next = (b.next + 1) % cap(b.ring)
	}
	b.total++
	b.byK[kind]++
}

// Total returns how many events were emitted (including overwritten ones).
func (b *Buffer) Total() int64 {
	if b == nil {
		return 0
	}
	return b.total
}

// Count returns how many events of a kind were emitted.
func (b *Buffer) Count(k Kind) int64 {
	if b == nil {
		return 0
	}
	return b.byK[k]
}

// Events returns the retained events oldest-first.
func (b *Buffer) Events() []Event {
	if b == nil {
		return nil
	}
	out := make([]Event, 0, len(b.ring))
	if len(b.ring) < cap(b.ring) {
		return append(out, b.ring...)
	}
	out = append(out, b.ring[b.next:]...)
	return append(out, b.ring[:b.next]...)
}

// String renders the retained tail plus a per-kind summary.
func (b *Buffer) String() string {
	if b == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "engine trace: %d events total, showing last %d\n", b.total, len(b.ring))
	fmt.Fprintf(&sb, "%12s  %-6s %-7s %-14s %s\n", "cycle", "engine", "core", "event", "arg")
	for _, ev := range b.Events() {
		sb.WriteString(ev.String())
		sb.WriteByte('\n')
	}
	sb.WriteString("per-kind counts:")
	for k := Kind(0); k < numKinds; k++ {
		if b.byK[k] > 0 {
			fmt.Fprintf(&sb, " %s=%d", k, b.byK[k])
		}
	}
	sb.WriteByte('\n')
	return sb.String()
}
