// Package trace provides a lightweight ring-buffer event log for the
// Minnow engines: enqueues, dequeues, spills, fills, prefetch issues,
// credit stalls, and stream drops, each stamped with simulated time
// (§4-§5 of the paper; the events are the engine's Fig. 12/Fig. 14
// operations).
//
// Tracing is opt-in (a nil buffer costs one branch per event site) and
// bounded: the ring keeps the most recent Cap events. The minnowsim
// -trace flag prints the tail of the log after a run.
//
// The event vocabulary is the engine subset of the obs package's
// full-system Kind taxonomy — Kind is an alias of obs.Kind and the Ev*
// constants re-export the obs values, so a ring-buffer event and a
// timeline event of the same kind always agree on meaning and label.
//
// Determinism contract: the buffer observes only. Emit never advances a
// clock or wakes an actor, so enabling tracing cannot change simulated
// timing; the ring's *contents* depend on its configured depth (it keeps
// a suffix of the event stream), which is why RunSummary excludes it.
package trace

import (
	"fmt"
	"strings"

	"minnow/internal/obs"
	"minnow/internal/sim"
)

// Kind classifies an engine event. It is the obs package's full-system
// event taxonomy; the buffer records the engine subset.
type Kind = obs.Kind

// The engine event kinds, re-exported from obs for existing call sites.
const (
	// EvEnqueue is a minnow_enqueue accepted into a local queue.
	EvEnqueue = obs.EvEnqueue
	// EvEnqueueSpill is a minnow_enqueue routed to the spill queue.
	EvEnqueueSpill = obs.EvEnqueueSpill
	// EvDequeue is a successful minnow_dequeue.
	EvDequeue = obs.EvDequeue
	// EvDequeueEmpty is a minnow_dequeue that found the local queue empty.
	EvDequeueEmpty = obs.EvDequeueEmpty
	// EvSpill is a spill threadlet batch completing.
	EvSpill = obs.EvSpill
	// EvFill is a fill threadlet completing.
	EvFill = obs.EvFill
	// EvPrefetch is one prefetch threadlet issuing its loads.
	EvPrefetch = obs.EvPrefetch
	// EvCreditStall is the prefetcher pausing on an empty credit pool.
	EvCreditStall = obs.EvCreditStall
	// EvStreamDrop is a stale prefetch stream being cancelled.
	EvStreamDrop = obs.EvStreamDrop
	// EvFlush is a minnow_flush.
	EvFlush = obs.EvFlush

	numKinds = obs.NumKinds
)

// Event is one engine event.
type Event struct {
	At     sim.Time // simulated completion time
	Engine int32    // engine attach-point core ID
	Core   int32    // served core (differs from Engine when sharing)
	Kind   Kind     // event classification (obs vocabulary)
	Arg    int64    // kind-specific: node ID, batch size, load count...
}

// String renders one event line.
func (e Event) String() string {
	return fmt.Sprintf("%12d  eng%-3d core%-3d %-14s %d", e.At, e.Engine, e.Core, e.Kind, e.Arg)
}

// Buffer is a fixed-capacity ring of the most recent events. The zero
// value discards everything; construct with New.
type Buffer struct {
	ring  []Event
	next  int
	total int64
	byK   [numKinds]int64
}

// New returns a buffer keeping the last cap events.
func New(cap int) *Buffer {
	if cap <= 0 {
		cap = 1
	}
	return &Buffer{ring: make([]Event, 0, cap)}
}

// Emit records an event. Safe to call on a nil buffer (no-op).
func (b *Buffer) Emit(at sim.Time, engine, core int, kind Kind, arg int64) {
	if b == nil {
		return
	}
	ev := Event{At: at, Engine: int32(engine), Core: int32(core), Kind: kind, Arg: arg}
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, ev)
	} else {
		b.ring[b.next] = ev
		b.next = (b.next + 1) % cap(b.ring)
	}
	b.total++
	b.byK[kind]++
}

// Total returns how many events were emitted (including overwritten ones).
func (b *Buffer) Total() int64 {
	if b == nil {
		return 0
	}
	return b.total
}

// Count returns how many events of a kind were emitted.
func (b *Buffer) Count(k Kind) int64 {
	if b == nil {
		return 0
	}
	return b.byK[k]
}

// Events returns the retained events oldest-first.
func (b *Buffer) Events() []Event {
	if b == nil {
		return nil
	}
	out := make([]Event, 0, len(b.ring))
	if len(b.ring) < cap(b.ring) {
		return append(out, b.ring...)
	}
	out = append(out, b.ring[b.next:]...)
	return append(out, b.ring[:b.next]...)
}

// String renders the retained tail plus a per-kind summary.
func (b *Buffer) String() string {
	if b == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "engine trace: %d events total, showing last %d\n", b.total, len(b.ring))
	fmt.Fprintf(&sb, "%12s  %-6s %-7s %-14s %s\n", "cycle", "engine", "core", "event", "arg")
	for _, ev := range b.Events() {
		sb.WriteString(ev.String())
		sb.WriteByte('\n')
	}
	sb.WriteString("per-kind counts:")
	for k := Kind(0); k < numKinds; k++ {
		if b.byK[k] > 0 {
			fmt.Fprintf(&sb, " %s=%d", k, b.byK[k])
		}
	}
	sb.WriteByte('\n')
	return sb.String()
}
