package arrival

import (
	"strings"
	"testing"
)

// FuzzParseArrival feeds arbitrary strings through the plan parser: it
// must never panic, every rejection must carry the "arrival:" prefix,
// and any accepted plan must render canonically — String() re-parses to
// a plan with the same rendering — and schedule without error.
func FuzzParseArrival(f *testing.F) {
	for _, seed := range append(Presets(),
		"poisson:gap=100,count=5",
		"seed=7;poisson:gap=100,count=5,start=250",
		"burst:gap=50,count=10,on=1000,off=4000",
		"periodic:period=10+20+30,count=9",
		"trace:at=1+5+9,nodes=3+1+4",
		"seed=2;poisson:gap=10,count=2;trace:at=100+200",
		"bogus", "a:b=c", ";;", "seed=", "poisson:gap", "trace:at=5+3",
		"poisson:gap=10,gap=20", "poisson:gaps=10",
	) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePlan(s)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "arrival:") {
				t.Fatalf("ParsePlan(%q) error %q lacks the arrival: prefix", s, err)
			}
			return
		}
		s1 := p.String()
		p2, err := ParsePlan(s1)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not re-parse: %v", s1, s, err)
		}
		if s2 := p2.String(); s1 != s2 {
			t.Fatalf("canonical form unstable: %q -> %q (input %q)", s1, s2, s)
		}
		if strings.Contains(s1, " ") {
			t.Fatalf("canonical form contains spaces: %q", s1)
		}
		// Accepted plans must also materialize: bound the schedule so a
		// fuzz-found plan with a huge count cannot stall the fuzzer.
		if p.Total() <= 1<<16 {
			if _, err := p.Schedule(64); err != nil {
				t.Fatalf("accepted plan %q does not schedule: %v", s1, err)
			}
		}
	})
}
