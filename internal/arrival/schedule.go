package arrival

import (
	"fmt"
	"sort"

	"minnow/internal/rng"
)

// Event is one scheduled injection: task arrival for Node at simulated
// cycle At, belonging to arrival class Class (the clause index).
type Event struct {
	// At is the arrival cycle.
	At int64
	// Node is the graph node the injected task re-evaluates.
	Node int32
	// Class is the 0-based index of the generating clause.
	Class int32
}

// classStream returns the decorrelated rng stream for class index ci.
// Streams are derived from the plan seed alone, so the whole schedule is
// a pure function of (plan, nodes).
func (p *Plan) classStream(ci int) *rng.Rand {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	return rng.New(seed + uint64(ci)*0x9e3779b97f4a7c15)
}

// gap draws one inter-arrival gap with the given mean from a discrete
// Bernoulli process (a cycle-granular Poisson process): 1 + the number
// of empty cycles before the next arrival. Free of transcendentals so
// schedules are bit-identical across platforms.
func gap(r *rng.Rand, mean int64) int64 {
	if mean <= 1 {
		return 1
	}
	return 1 + int64(r.Geometric(1/float64(mean)))
}

// Schedule materializes the plan into its full injection schedule over a
// graph with the given node count, sorted by arrival cycle (ties broken
// by class order, then generation order). The schedule depends only on
// (plan, nodes).
func (p *Plan) Schedule(nodes int32) ([]Event, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("arrival: schedule needs a positive node count, got %d", nodes)
	}
	var events []Event
	for ci := range p.Classes {
		c := &p.Classes[ci]
		r := p.classStream(ci)
		node := func() int32 { return int32(r.Intn(int(nodes))) }
		switch c.Kind {
		case Poisson:
			t := c.Start
			for i := int64(0); i < c.Count; i++ {
				t += gap(r, c.Gap)
				events = append(events, Event{At: t, Node: node(), Class: int32(ci)})
			}
		case Burst:
			// Arrivals are drawn in "on-time" and mapped to wall cycles by
			// inserting the off window after every On cycles of on-time.
			var onTime int64
			for i := int64(0); i < c.Count; i++ {
				onTime += gap(r, c.Gap)
				wall := c.Start + onTime + (onTime/c.On)*c.Off
				events = append(events, Event{At: wall, Node: node(), Class: int32(ci)})
			}
		case Periodic:
			t := c.Start
			for i := int64(0); i < c.Count; i++ {
				t += c.Periods[i%int64(len(c.Periods))]
				events = append(events, Event{At: t, Node: node(), Class: int32(ci)})
			}
		case Trace:
			for i, at := range c.At {
				n := node()
				if len(c.Nodes) > 0 {
					n = c.Nodes[i] % nodes
				}
				events = append(events, Event{At: at, Node: n, Class: int32(ci)})
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].Class < events[j].Class
	})
	return events, nil
}

// ClassNames labels the plan's classes for latency reports: the clause
// index and kind, e.g. "0:poisson".
func (p *Plan) ClassNames() []string {
	out := make([]string, len(p.Classes))
	for i := range p.Classes {
		out[i] = fmt.Sprintf("%d:%s", i, p.Classes[i].Kind)
	}
	return out
}
