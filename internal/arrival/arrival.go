// Package arrival implements deterministic open-loop task arrival
// processes: parseable arrival plans (Poisson, bursty on/off,
// multi-period, and replay-from-trace clauses), and the seeded schedule
// generation that turns a plan into a fixed list of (cycle, node, class)
// injection events before the simulation starts.
//
// The paper's benchmarks are closed-loop — the worklist is seeded once
// and drained — which only exercises throughput. An arrival plan opens
// the latency axis: tasks *arrive* mid-run at scheduled cycles, flow
// through the same worklist backpressure machinery as operator-generated
// work, and report sojourn and queue-wait percentiles per arrival class.
//
// Determinism contract: every arrival decision (inter-arrival gaps and
// node choices alike) comes from rng streams seeded by the plan alone,
// and the whole schedule is materialized up front, so the same
// (configuration, plan) pair always injects the same tasks at the same
// simulated cycles — runs with arrivals stay bit-reproducible and the
// determinism self-check, parallel equivalence, and result cache all
// keep working unchanged.
package arrival

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind names an arrival class's generating process.
type Kind uint8

const (
	// Poisson is a memoryless process: exponential inter-arrival gaps
	// with a configured mean.
	Poisson Kind = iota
	// Burst is an on/off-modulated Poisson process: arrivals are drawn
	// at the configured mean gap during "on" windows and suppressed
	// during "off" windows.
	Burst
	// Periodic is a deterministic process: arrivals at fixed gaps drawn
	// cyclically from a period list (a single period gives a strict
	// clock; several give a repeating multi-period pattern).
	Periodic
	// Trace replays an explicit list of arrival cycles (and optionally
	// pinned nodes) recorded elsewhere.
	Trace
)

// String returns the clause name of the kind.
func (k Kind) String() string {
	switch k {
	case Poisson:
		return "poisson"
	case Burst:
		return "burst"
	case Periodic:
		return "periodic"
	case Trace:
		return "trace"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Class is one arrival class: a single clause of the plan. Each class
// owns a decorrelated rng stream and is reported separately in the
// latency statistics.
type Class struct {
	// Kind selects the generating process.
	Kind Kind
	// Gap is the mean inter-arrival gap in cycles (Poisson, Burst).
	Gap int64
	// Count bounds the class to this many arrivals (all kinds except
	// Trace, whose length is its at= list).
	Count int64
	// Start delays the first arrival window to this cycle.
	Start int64
	// On and Off are the burst window lengths in cycles (Burst only).
	On, Off int64
	// Periods is the cyclic gap list (Periodic only).
	Periods []int64
	// At is the explicit arrival-cycle list (Trace only), ascending.
	At []int64
	// Nodes optionally pins the trace arrivals' nodes, aligned with At
	// (Trace only; empty means nodes are drawn from the class stream).
	Nodes []int32
}

// Plan is one parsed arrival plan. The zero value injects nothing and is
// rejected by ParsePlan (a plan must carry at least one class).
type Plan struct {
	// Seed drives the per-class rng streams (0 is treated as 1).
	Seed uint64
	// Classes are the arrival classes in clause order.
	Classes []Class
}

// Total returns the number of arrivals the plan will inject.
func (p *Plan) Total() int64 {
	var n int64
	for i := range p.Classes {
		c := &p.Classes[i]
		if c.Kind == Trace {
			n += int64(len(c.At))
		} else {
			n += c.Count
		}
	}
	return n
}

// String renders the plan in canonical clause form;
// ParsePlan(p.String()) reproduces the plan.
func (p *Plan) String() string {
	var cl []string
	if p.Seed != 0 {
		cl = append(cl, fmt.Sprintf("seed=%d", p.Seed))
	}
	for i := range p.Classes {
		c := &p.Classes[i]
		switch c.Kind {
		case Poisson:
			s := fmt.Sprintf("poisson:gap=%d,count=%d", c.Gap, c.Count)
			if c.Start > 0 {
				s += fmt.Sprintf(",start=%d", c.Start)
			}
			cl = append(cl, s)
		case Burst:
			s := fmt.Sprintf("burst:gap=%d,count=%d,on=%d,off=%d", c.Gap, c.Count, c.On, c.Off)
			if c.Start > 0 {
				s += fmt.Sprintf(",start=%d", c.Start)
			}
			cl = append(cl, s)
		case Periodic:
			s := fmt.Sprintf("periodic:period=%s,count=%d", joinInts(c.Periods), c.Count)
			if c.Start > 0 {
				s += fmt.Sprintf(",start=%d", c.Start)
			}
			cl = append(cl, s)
		case Trace:
			s := "trace:at=" + joinInts(c.At)
			if len(c.Nodes) > 0 {
				strs := make([]string, len(c.Nodes))
				for i, n := range c.Nodes {
					strs[i] = strconv.Itoa(int(n))
				}
				s += ",nodes=" + strings.Join(strs, "+")
			}
			cl = append(cl, s)
		}
	}
	return strings.Join(cl, ";")
}

func joinInts(vs []int64) string {
	strs := make([]string, len(vs))
	for i, v := range vs {
		strs[i] = strconv.FormatInt(v, 10)
	}
	return strings.Join(strs, "+")
}

// Presets are the named arrival plans accepted wherever a plan string
// is: "steady" (a single Poisson stream), "burst" (heavy on/off bursts),
// "waves" (a deterministic multi-period pattern), and "trickle" (sparse
// arrivals with long quiet gaps — the watchdog's open-loop stress case).
var presets = map[string]string{
	"steady":  "seed=1;poisson:gap=600,count=400",
	"burst":   "seed=1;burst:gap=250,count=400,on=20000,off=60000",
	"waves":   "seed=1;periodic:period=500+900+1400,count=300",
	"trickle": "seed=1;poisson:gap=40000,count=32",
}

// Presets lists the named plans accepted by ParsePlan, sorted.
func Presets() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ParsePlan parses an arrival-plan string: either a preset name (see
// Presets) or semicolon-separated clauses of the form
//
//	seed=N
//	poisson:gap=N,count=N[,start=N]
//	burst:gap=N,count=N,on=N,off=N[,start=N]
//	periodic:period=N1+N2+...,count=N[,start=N]
//	trace:at=N1+N2+...[,nodes=N1+N2+...]
//
// Gaps, counts, windows, and cycles must be positive; trace at= lists
// must be ascending; a plan must contain at least one arrival clause.
func ParsePlan(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("arrival: empty plan")
	}
	if preset, ok := presets[s]; ok {
		s = preset
	}
	p := &Plan{}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if err := p.parseClause(clause); err != nil {
			return nil, err
		}
	}
	if len(p.Classes) == 0 {
		return nil, fmt.Errorf("arrival: plan has no arrival clauses (want poisson, burst, periodic, or trace)")
	}
	return p, nil
}

// parseClause folds one clause into the plan.
func (p *Plan) parseClause(clause string) error {
	name, argstr, _ := strings.Cut(clause, ":")
	name = strings.TrimSpace(name)
	if strings.Contains(name, "=") {
		// Bare key=value clause (only "seed=N").
		key, val, _ := strings.Cut(name, "=")
		if key != "seed" {
			return fmt.Errorf("arrival: unknown clause %q", key)
		}
		seed, err := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
		if err != nil {
			return fmt.Errorf("arrival: bad seed %q", val)
		}
		p.Seed = seed
		return nil
	}
	args, err := parseArgs(name, argstr)
	if err != nil {
		return err
	}
	var c Class
	switch name {
	case "poisson":
		c.Kind = Poisson
		c.Gap = args.pos("gap", 1000)
		c.Count = args.pos("count", 100)
		c.Start = args.num("start", 0)
	case "burst":
		c.Kind = Burst
		c.Gap = args.pos("gap", 500)
		c.Count = args.pos("count", 100)
		c.On = args.pos("on", 10000)
		c.Off = args.pos("off", 30000)
		c.Start = args.num("start", 0)
	case "periodic":
		c.Kind = Periodic
		c.Periods = args.list("period", []int64{1000})
		c.Count = args.pos("count", 100)
		c.Start = args.num("start", 0)
		for _, pd := range c.Periods {
			if pd <= 0 {
				return fmt.Errorf("arrival: periodic: period entries must be positive, got %d", pd)
			}
		}
	case "trace":
		c.Kind = Trace
		c.At = args.list("at", nil)
		if len(c.At) == 0 {
			return fmt.Errorf("arrival: trace: needs a non-empty at= cycle list")
		}
		for i, at := range c.At {
			if at < 0 || (i > 0 && at < c.At[i-1]) {
				return fmt.Errorf("arrival: trace: at= list must be ascending and non-negative")
			}
		}
		for _, n := range args.list("nodes", nil) {
			if n < 0 {
				return fmt.Errorf("arrival: trace: nodes must be non-negative, got %d", n)
			}
			c.Nodes = append(c.Nodes, int32(n))
		}
		if len(c.Nodes) > 0 && len(c.Nodes) != len(c.At) {
			return fmt.Errorf("arrival: trace: nodes= list (%d entries) must align with at= (%d entries)",
				len(c.Nodes), len(c.At))
		}
	default:
		return fmt.Errorf("arrival: unknown clause %q (have poisson, burst, periodic, trace, seed)", name)
	}
	if args.err != nil {
		return args.err
	}
	if err := args.unknown(); err != nil {
		return err
	}
	p.Classes = append(p.Classes, c)
	return nil
}

// unknown rejects keys the clause never consumed — a silently ignored
// typo (gaps= for gap=) would make an arrival plan lie about itself.
func (a *clauseArgs) unknown() error {
	var extra []string
	for k := range a.vals {
		if !a.used[k] {
			extra = append(extra, k)
		}
	}
	if len(extra) == 0 {
		return nil
	}
	sort.Strings(extra)
	return fmt.Errorf("arrival: %s: unknown key(s) %s", a.clause, strings.Join(extra, ", "))
}

// clauseArgs holds one clause's parsed key=value pairs plus the first
// validation error hit while reading them out.
type clauseArgs struct {
	clause string
	vals   map[string]string
	used   map[string]bool
	err    error
}

func parseArgs(clause, argstr string) (*clauseArgs, error) {
	a := &clauseArgs{clause: clause, vals: map[string]string{}, used: map[string]bool{}}
	argstr = strings.TrimSpace(argstr)
	if argstr == "" {
		return a, nil
	}
	for _, kv := range strings.Split(argstr, ",") {
		key, val, ok := strings.Cut(kv, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || key == "" || val == "" {
			return nil, fmt.Errorf("arrival: %s: malformed argument %q", clause, kv)
		}
		if _, dup := a.vals[key]; dup {
			return nil, fmt.Errorf("arrival: %s: duplicate key %q", clause, key)
		}
		a.vals[key] = val
	}
	return a, nil
}

// num reads a non-negative integer key, defaulting when absent.
func (a *clauseArgs) num(key string, def int64) int64 {
	a.used[key] = true
	s, ok := a.vals[key]
	if !ok {
		return def
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v < 0 {
		a.fail("%s: %s=%q is not a non-negative integer", a.clause, key, s)
		return 0
	}
	return v
}

// pos reads a positive integer key, defaulting when absent.
func (a *clauseArgs) pos(key string, def int64) int64 {
	a.used[key] = true
	s, ok := a.vals[key]
	if !ok {
		return def
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v <= 0 {
		a.fail("%s: %s=%q is not a positive integer", a.clause, key, s)
		return 0
	}
	return v
}

// list reads a +-separated non-negative integer list, defaulting when
// absent.
func (a *clauseArgs) list(key string, def []int64) []int64 {
	a.used[key] = true
	s, ok := a.vals[key]
	if !ok {
		return def
	}
	parts := strings.Split(s, "+")
	out := make([]int64, 0, len(parts))
	for _, ps := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(ps), 10, 64)
		if err != nil || v < 0 {
			a.fail("%s: %s=%q is not a +-separated list of non-negative integers", a.clause, key, s)
			return nil
		}
		out = append(out, v)
	}
	return out
}

func (a *clauseArgs) fail(format string, args ...any) {
	if a.err == nil {
		a.err = fmt.Errorf("arrival: "+format, args...)
	}
}
