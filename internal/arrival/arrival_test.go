package arrival

import (
	"reflect"
	"strings"
	"testing"
)

// TestParsePresets checks every named preset expands to a usable plan
// with at least one class and a pinned seed (presets must be fully
// deterministic without relying on the zero-seed fallback).
func TestParsePresets(t *testing.T) {
	for _, name := range Presets() {
		p, err := ParsePlan(name)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		if p.Seed == 0 {
			t.Fatalf("preset %q: zero seed", name)
		}
		if len(p.Classes) == 0 {
			t.Fatalf("preset %q: no classes", name)
		}
		if p.Total() <= 0 {
			t.Fatalf("preset %q: Total()=%d", name, p.Total())
		}
	}
}

// TestPlanStringRoundTrip verifies the canonical rendering re-parses to
// an identical plan, for presets and hand-written clause expressions
// covering every kind and optional key.
func TestPlanStringRoundTrip(t *testing.T) {
	exprs := append(Presets(),
		"poisson:gap=100,count=5",
		"seed=7;poisson:gap=100,count=5,start=250",
		"burst:gap=50,count=10,on=1000,off=4000",
		"seed=9;burst:gap=50,count=10,on=1000,off=4000,start=77",
		"periodic:period=10,count=3",
		"periodic:period=10+20+30,count=9,start=5",
		"trace:at=1+5+9",
		"trace:at=1+5+9,nodes=3+1+4",
		"seed=2;poisson:gap=10,count=2;trace:at=100+200;periodic:period=7,count=4",
	)
	for _, expr := range exprs {
		p1, err := ParsePlan(expr)
		if err != nil {
			t.Fatalf("parse %q: %v", expr, err)
		}
		s1 := p1.String()
		p2, err := ParsePlan(s1)
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", s1, expr, err)
		}
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("round trip of %q changed the plan: %+v -> %+v", expr, p1, p2)
		}
		if s2 := p2.String(); s1 != s2 {
			t.Fatalf("round trip of %q unstable: %q -> %q", expr, s1, s2)
		}
	}
}

// TestParsePlanErrors enumerates the rejection paths and pins the error
// prefix contract: every parse failure is prefixed "arrival:" so callers
// (minnow.Config.Validate, minnowd's 400 bodies) can attribute it.
func TestParsePlanErrors(t *testing.T) {
	bad := []string{
		"",                             // empty plan
		"   ",                          // whitespace-only plan
		";;",                           // clauses all empty
		"seed=4",                       // seed alone: no arrival clauses
		"seed=banana",                  // bad seed
		"warp:gap=10",                  // unknown clause
		"poisson:gap",                  // malformed argument
		"poisson:gap=10,gap=20",        // duplicate key
		"poisson:gap=0,count=5",        // gap must be positive
		"poisson:gap=-3,count=5",       // negative gap
		"poisson:gap=10,count=0",       // count must be positive
		"poisson:gap=10,start=-1",      // negative start
		"poisson:gaps=10",              // unknown key (typo)
		"burst:gap=10,count=5,on=0",    // on window must be positive
		"burst:gap=10,count=5,off=-1",  // negative off window
		"periodic:period=0,count=5",    // zero period entry
		"periodic:period=10+0,count=5", // zero entry in period list
		"periodic:period=x,count=5",    // non-numeric list entry
		"trace:nodes=1+2",              // trace without at=
		"trace:at=5+3",                 // at= not ascending
		"trace:at=-1+3",                // negative at= entry
		"trace:at=1+2+3,nodes=4",       // nodes misaligned with at
		"trace:at=1+2,nodes=-1+0",      // negative node
		"poisson:gap=10,count=5,zap=1", // unknown key
	}
	for _, expr := range bad {
		p, err := ParsePlan(expr)
		if err == nil {
			t.Fatalf("ParsePlan(%q) accepted: %+v", expr, p)
		}
		if !strings.HasPrefix(err.Error(), "arrival:") {
			t.Fatalf("ParsePlan(%q) error %q lacks the arrival: prefix", expr, err)
		}
	}
}

// TestScheduleDeterministic pins the schedule contract: for a fixed
// (plan, nodes) pair the event list is identical across calls, sorted
// ascending by cycle, sized by Total(), and every node is in range.
func TestScheduleDeterministic(t *testing.T) {
	for _, name := range Presets() {
		p, err := ParsePlan(name)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		const nodes = 1024
		ev1, err := p.Schedule(nodes)
		if err != nil {
			t.Fatalf("preset %q: Schedule: %v", name, err)
		}
		ev2, err := p.Schedule(nodes)
		if err != nil {
			t.Fatalf("preset %q: second Schedule: %v", name, err)
		}
		if !reflect.DeepEqual(ev1, ev2) {
			t.Fatalf("preset %q: schedule not deterministic", name)
		}
		if int64(len(ev1)) != p.Total() {
			t.Fatalf("preset %q: %d events for Total()=%d", name, len(ev1), p.Total())
		}
		for i, ev := range ev1 {
			if i > 0 && ev.At < ev1[i-1].At {
				t.Fatalf("preset %q: events not sorted at %d: %d after %d", name, i, ev.At, ev1[i-1].At)
			}
			if ev.Node < 0 || ev.Node >= nodes {
				t.Fatalf("preset %q: event %d node %d out of range", name, i, ev.Node)
			}
			if int(ev.Class) >= len(p.Classes) {
				t.Fatalf("preset %q: event %d class %d out of range", name, i, ev.Class)
			}
		}
	}
}

// TestScheduleTracePinsNodes checks trace clauses replay their pinned
// nodes verbatim (modulo the graph size) at exactly the listed cycles.
func TestScheduleTracePinsNodes(t *testing.T) {
	p, err := ParsePlan("trace:at=3+8+21,nodes=5+0+7")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := p.Schedule(6)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{{At: 3, Node: 5, Class: 0}, {At: 8, Node: 0, Class: 0}, {At: 21, Node: 1, Class: 0}}
	if !reflect.DeepEqual(ev, want) {
		t.Fatalf("trace schedule = %+v, want %+v", ev, want)
	}
}

// TestScheduleRejectsBadNodeCount pins the node-count guard.
func TestScheduleRejectsBadNodeCount(t *testing.T) {
	p, err := ParsePlan("steady")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int32{0, -4} {
		if _, err := p.Schedule(n); err == nil {
			t.Fatalf("Schedule(%d) accepted", n)
		}
	}
}

// TestClassNames pins the latency-report label format.
func TestClassNames(t *testing.T) {
	p, err := ParsePlan("poisson:gap=10,count=1;burst:gap=10,count=1;periodic:period=5,count=1;trace:at=9")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0:poisson", "1:burst", "2:periodic", "3:trace"}
	if got := p.ClassNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ClassNames() = %v, want %v", got, want)
	}
}

// TestSeedChangesSchedule checks the seed actually decorrelates runs:
// two plans differing only in seed must not produce the same schedule.
func TestSeedChangesSchedule(t *testing.T) {
	p1, err := ParsePlan("seed=1;poisson:gap=600,count=50")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParsePlan("seed=2;poisson:gap=600,count=50")
	if err != nil {
		t.Fatal(err)
	}
	ev1, _ := p1.Schedule(1024)
	ev2, _ := p2.Schedule(1024)
	if reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("seeds 1 and 2 produced identical schedules")
	}
}
