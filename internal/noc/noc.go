// Package noc models the on-chip interconnect: a 2D mesh with X-Y
// dimension-order routing, a fixed per-hop pipeline latency, and per-link
// busy-until contention (Table 3: 8x8 mesh, 512-bit links, 3 cycles/hop).
//
// A 64B cache line is exactly one 512-bit flit, so every message occupies
// each link on its path for one cycle. Contention is modeled by keeping a
// next-free time per directed link and serializing flits that want the
// same link.
//
// Determinism contract: routes are a pure function of (src, dst) and link
// reservations depend only on the timestamped traversal sequence, so
// identical traffic always produces identical stall cycles. The Flits and
// StallCyc counters are read-only inputs to the observability probes.
//
// Bound/weave placement: per-link busy-until reservations are shared
// mutable state between every actor whose traffic crosses the mesh, so
// the mesh may only be driven from sim.Engine.RunParallel's weave phase;
// an actor that can reach it on its next step declares
// sim.HorizonAlwaysWeave. MinLatency exposes the uncontended traversal
// floor (Hops × HopCycles) for lookahead reasoning and validation; it
// bounds arrival, not the reservations made en route.
package noc

import "minnow/internal/sim"

// Mesh is an  W x H  mesh network.
type Mesh struct {
	W, H      int
	HopCycles sim.Time // pipeline latency per hop

	// nextFree[node*4+dir] is the earliest time the directed link leaving
	// node in direction dir can accept the next flit.
	nextFree []sim.Time

	Flits     int64 // total link traversals
	StallCyc  int64 // total cycles flits waited for links
	Messages  int64
	maxQueued sim.Time

	// FaultDelay, when non-nil, returns an injected extra latency applied
	// once per message (deterministic fault injection). Nil in fault-free
	// runs, costing one comparison per message.
	FaultDelay func() sim.Time
}

// Directions for links leaving a node.
const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
)

// New returns a mesh with the given dimensions and per-hop latency.
func New(w, h int, hopCycles sim.Time) *Mesh {
	return &Mesh{
		W:         w,
		H:         h,
		HopCycles: hopCycles,
		nextFree:  make([]sim.Time, w*h*4),
	}
}

// NodeOf returns the (x, y) coordinates of node id (row-major).
func (m *Mesh) NodeOf(id int) (x, y int) {
	return id % m.W, id / m.W
}

// Hops returns the Manhattan distance between two nodes.
func (m *Mesh) Hops(from, to int) int {
	fx, fy := m.NodeOf(from)
	tx, ty := m.NodeOf(to)
	dx := fx - tx
	if dx < 0 {
		dx = -dx
	}
	dy := fy - ty
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Traverse sends one flit from node `from` to node `to` starting at time
// `start`, reserving each link along the X-Y route, and returns the
// arrival time. A zero-hop traversal (from == to) is free.
func (m *Mesh) Traverse(from, to int, start sim.Time) sim.Time {
	if from == to {
		return start
	}
	m.Messages++
	t := start
	if m.FaultDelay != nil {
		t += m.FaultDelay()
	}
	x, y := m.NodeOf(from)
	tx, ty := m.NodeOf(to)
	for x != tx {
		dir := dirEast
		nx := x + 1
		if tx < x {
			dir = dirWest
			nx = x - 1
		}
		t = m.crossLink(x, y, dir, t)
		x = nx
	}
	for y != ty {
		dir := dirSouth
		ny := y + 1
		if ty < y {
			dir = dirNorth
			ny = y - 1
		}
		t = m.crossLink(x, y, dir, t)
		y = ny
	}
	return t
}

// RoundTrip returns the time at which a request sent at start and its
// reply have both traversed the mesh.
func (m *Mesh) RoundTrip(from, to int, start sim.Time) sim.Time {
	arrive := m.Traverse(from, to, start)
	return m.Traverse(to, from, arrive)
}

// MinLatency returns the mesh's conservative timing floor between two
// nodes: the uncontended X-Y traversal time, Hops × HopCycles. Every
// Traverse from `from` to `to` completes at or after start+MinLatency —
// contention and injected faults only add to it. It reads no reservation
// state, so it is safe to consult from bound-phase lookahead reasoning;
// note it floors when a message *arrives*, while the link reservations
// the message makes begin at its *send* time, which is why a lookahead
// horizon must be derived from the sender's next send, not from this
// floor alone.
func (m *Mesh) MinLatency(from, to int) sim.Time {
	return sim.Time(m.Hops(from, to)) * m.HopCycles
}

// contentionWindow bounds how far in the past an arrival may be relative
// to the link's last reservation and still be queued behind it. Actor
// local clocks are skewed by up to one scheduling step (bound-weave
// approximation); reservations further ahead than this window reflect that
// skew, not real contention, and are ignored rather than waited on.
const contentionWindow = 64

func (m *Mesh) crossLink(x, y, dir int, t sim.Time) sim.Time {
	idx := (y*m.W+x)*4 + dir
	free := m.nextFree[idx]
	if free > t && free-t <= contentionWindow {
		m.StallCyc += int64(free - t)
		if free-t > m.maxQueued {
			m.maxQueued = free - t
		}
		t = free
	}
	// The link is occupied for one flit cycle; the flit arrives at the
	// next router after the hop pipeline latency.
	if t+1 > m.nextFree[idx] {
		m.nextFree[idx] = t + 1
	}
	m.Flits++
	return t + m.HopCycles
}

// MaxQueueDelay returns the largest single-link wait observed, a
// congestion indicator used in tests.
func (m *Mesh) MaxQueueDelay() sim.Time { return m.maxQueued }

// Links returns the number of directed links in the mesh, the
// normalization constant for flit-rate utilisation (flits per link-cycle
// = ΔFlits / (interval × Links)).
func (m *Mesh) Links() int { return m.W * m.H * 4 }

// Reset clears link reservations and counters.
func (m *Mesh) Reset() {
	for i := range m.nextFree {
		m.nextFree[i] = 0
	}
	m.Flits, m.StallCyc, m.Messages, m.maxQueued = 0, 0, 0, 0
}
