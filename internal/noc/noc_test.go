package noc

import (
	"testing"
	"testing/quick"

	"minnow/internal/sim"
)

func TestHops(t *testing.T) {
	m := New(8, 8, 3)
	cases := []struct {
		from, to, want int
	}{
		{0, 0, 0},
		{0, 7, 7},   // same row
		{0, 56, 7},  // same column
		{0, 63, 14}, // opposite corner
		{9, 18, 2},  // (1,1) -> (2,2)
		{63, 0, 14}, // symmetric
	}
	for _, c := range cases {
		if got := m.Hops(c.from, c.to); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
}

func TestTraverseLatency(t *testing.T) {
	m := New(8, 8, 3)
	// Uncontended: start + hops*hopCycles.
	arr := m.Traverse(0, 63, 100)
	if arr != 100+14*3 {
		t.Fatalf("arrival %d, want %d", arr, 100+14*3)
	}
	if m.Messages != 1 {
		t.Fatalf("messages %d", m.Messages)
	}
}

func TestZeroHopFree(t *testing.T) {
	m := New(4, 4, 3)
	if arr := m.Traverse(5, 5, 42); arr != 42 {
		t.Fatalf("self-traverse cost %d cycles", arr-42)
	}
}

func TestLinkContention(t *testing.T) {
	m := New(8, 1, 3)
	// Two messages over the same link at the same time: the second waits
	// one flit cycle at the first link.
	a := m.Traverse(0, 7, 0)
	b := m.Traverse(0, 7, 0)
	if b <= a {
		t.Fatalf("no serialization: %d vs %d", a, b)
	}
	if m.StallCyc == 0 {
		t.Fatal("no stall cycles recorded")
	}
}

func TestRoundTrip(t *testing.T) {
	m := New(4, 4, 2)
	rt := m.RoundTrip(0, 3, 10)
	if rt != 10+2*3*2 {
		t.Fatalf("roundtrip %d, want %d", rt, 10+12)
	}
}

func TestTraverseMonotonicProperty(t *testing.T) {
	m := New(8, 8, 3)
	if err := quick.Check(func(from, to uint8, start uint16) bool {
		f, d := int(from)%64, int(to)%64
		s := sim.Time(start)
		arr := m.Traverse(f, d, s)
		return arr >= s+sim.Time(m.Hops(f, d))*m.HopCycles
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	m := New(4, 4, 3)
	m.Traverse(0, 15, 0)
	m.Traverse(0, 15, 0)
	m.Reset()
	if m.Flits != 0 || m.StallCyc != 0 || m.Messages != 0 {
		t.Fatal("reset did not clear counters")
	}
	if arr := m.Traverse(0, 15, 0); arr != sim.Time(m.Hops(0, 15))*3 {
		t.Fatalf("post-reset latency %d", arr)
	}
}

func TestNodeOf(t *testing.T) {
	m := New(8, 8, 3)
	x, y := m.NodeOf(10)
	if x != 2 || y != 1 {
		t.Fatalf("NodeOf(10) = (%d,%d)", x, y)
	}
}

// TestMinLatencyFloor pins the conservative-lookahead floor: no
// traversal, however contended, completes before start + MinLatency, and
// the floor is exact for uncontended traffic.
func TestMinLatencyFloor(t *testing.T) {
	m := New(8, 8, 3)
	if got := m.MinLatency(0, 63); got != 14*3 {
		t.Fatalf("MinLatency(0,63) = %d, want 42", got)
	}
	if got := m.MinLatency(5, 5); got != 0 {
		t.Fatalf("MinLatency(5,5) = %d, want 0", got)
	}
	// Uncontended: the floor is achieved exactly.
	if arrive := m.Traverse(0, 63, 1000); arrive != 1000+m.MinLatency(0, 63) {
		t.Fatalf("uncontended traversal arrived at %d, want %d", arrive, 1000+m.MinLatency(0, 63))
	}
	// Contended property sweep: hammer overlapping routes and check the
	// floor is never undercut.
	prop := func(from, to uint8, start uint16) bool {
		f, to2 := int(from)%64, int(to)%64
		st := sim.Time(start)
		return m.Traverse(f, to2, st) >= st+m.MinLatency(f, to2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
