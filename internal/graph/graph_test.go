package graph

import (
	"testing"
	"testing/quick"
)

func TestBuilderDedupAndSort(t *testing.T) {
	b := NewBuilder(4, false)
	b.AddEdge(0, 2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2) // duplicate
	b.AddEdge(0, 0) // self-loop
	b.AddEdge(3, 1)
	g := b.Build("test")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 2 {
		t.Fatalf("degree(0) = %d, want 2 (dedup/self-loop)", g.Degree(0))
	}
	lo, hi := g.EdgeRange(0)
	if g.Dests[lo] != 1 || g.Dests[hi-1] != 2 {
		t.Fatalf("row not sorted: %v", g.Dests[lo:hi])
	}
	if g.Degree(1) != 0 || g.Degree(3) != 1 {
		t.Fatal("other rows wrong")
	}
}

func TestWeightsFollowEdges(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddWeighted(0, 2, 7)
	b.AddWeighted(0, 1, 3)
	g := b.Build("w")
	lo, _ := g.EdgeRange(0)
	if g.Dests[lo] != 1 || g.Weights[lo] != 3 {
		t.Fatalf("weight misaligned: dest %d w %d", g.Dests[lo], g.Weights[lo])
	}
	if g.Dests[lo+1] != 2 || g.Weights[lo+1] != 7 {
		t.Fatalf("weight misaligned: dest %d w %d", g.Dests[lo+1], g.Weights[lo+1])
	}
}

func TestBFSAndDiameter(t *testing.T) {
	// Path graph 0-1-2-3-4.
	b := NewBuilder(5, false)
	for i := int32(0); i < 4; i++ {
		b.AddUndirected(i, i+1)
	}
	g := b.Build("path")
	d := g.BFSFrom(0)
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], want)
		}
	}
	if diam := g.EstimateDiameter(2); diam != 4 {
		t.Fatalf("diameter %d, want 4", diam)
	}
}

func TestBFSUnreachable(t *testing.T) {
	b := NewBuilder(3, false)
	b.AddUndirected(0, 1)
	g := b.Build("disc")
	d := g.BFSFrom(0)
	if d[2] != -1 {
		t.Fatalf("unreachable node dist %d", d[2])
	}
}

func TestAddressLayout(t *testing.T) {
	b := NewBuilder(4, false)
	b.AddUndirected(0, 1)
	g := b.Build("addr")
	as := NewAddrSpace()
	g.Bind(as, false)
	if g.NodeAddr(1)-g.NodeAddr(0) != NodeBytes {
		t.Fatal("node stride wrong")
	}
	if g.EdgeAddr(1)-g.EdgeAddr(0) != EdgeBytes {
		t.Fatal("edge stride wrong")
	}
	// TC layout uses 64B nodes.
	g2 := b.Build("addr64")
	g2.Bind(NewAddrSpace(), true)
	if g2.NodeAddr(1)-g2.NodeAddr(0) != NodeBytesTC {
		t.Fatal("TC node stride wrong")
	}
	// Regions must not overlap.
	nEnd := g.NodeAddr(int32(g.N-1)) + NodeBytes
	if g.EdgeAddr(0) < nEnd {
		t.Fatal("edge region overlaps node region")
	}
}

func TestAddrSpacePageAlignment(t *testing.T) {
	as := NewAddrSpace()
	a := as.Alloc(10)
	b := as.Alloc(10)
	if a%4096 != 0 || b%4096 != 0 {
		t.Fatal("allocations not page aligned")
	}
	if b <= a {
		t.Fatal("allocations overlap")
	}
}

func TestGeneratorsValidateAndAreDeterministic(t *testing.T) {
	gens := map[string]func(seed uint64) *Graph{
		"road":       func(s uint64) *Graph { return RoadMesh(400, s) },
		"random":     func(s uint64) *Graph { return UniformRandom(500, 4, s) },
		"kron":       func(s uint64) *Graph { return Kronecker(8, 8, s) },
		"smallworld": func(s uint64) *Graph { return SmallWorld(500, 6, s) },
		"talk":       func(s uint64) *Graph { return PowerLawTalk(600, s) },
		"dblp":       func(s uint64) *Graph { return CommunityDBLP(300, s) },
		"bipartite":  func(s uint64) *Graph { return Bipartite(300, 150, s) },
	}
	for name, gen := range gens {
		g1 := gen(42)
		if err := g1.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g1.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
		g2 := gen(42)
		if g1.NumEdges() != g2.NumEdges() || g1.N != g2.N {
			t.Fatalf("%s: nondeterministic", name)
		}
		for i := range g1.Dests {
			if g1.Dests[i] != g2.Dests[i] {
				t.Fatalf("%s: edge %d differs between same-seed builds", name, i)
			}
		}
	}
}

func TestRoadMeshClass(t *testing.T) {
	g := RoadMesh(2500, 1)
	// High diameter (≈ side length), low max degree.
	if d := g.EstimateDiameter(0); d < 40 {
		t.Fatalf("road diameter %d too low", d)
	}
	if _, deg := g.MaxDegreeNode(); deg > 10 {
		t.Fatalf("road max degree %d too high", deg)
	}
	if g.Weights == nil {
		t.Fatal("road mesh unweighted")
	}
	for _, w := range g.Weights[:100] {
		if w < 1 || w > 1000 {
			t.Fatalf("weight %d out of range", w)
		}
	}
}

func TestKroneckerHasHub(t *testing.T) {
	g := Kronecker(10, 16, 1)
	_, deg := g.MaxDegreeNode()
	avg := float64(g.NumEdges()) / float64(g.N)
	if float64(deg) < 10*avg {
		t.Fatalf("kronecker hub degree %d vs avg %.1f: no skew", deg, avg)
	}
}

func TestUniformRandomLowDiameter(t *testing.T) {
	g := UniformRandom(2000, 4, 1)
	if d := g.EstimateDiameter(0); d > 20 {
		t.Fatalf("random graph diameter %d too high", d)
	}
}

func TestBipartiteIsBipartite(t *testing.T) {
	g := Bipartite(200, 100, 3)
	// 2-color check: side of node = id < 200.
	for v := int32(0); v < int32(g.N); v++ {
		lo, hi := g.EdgeRange(v)
		for e := lo; e < hi; e++ {
			if (v < 200) == (g.Dests[e] < 200) {
				t.Fatalf("edge %d-%d within one side", v, g.Dests[e])
			}
		}
	}
}

func TestCommunityDBLPHasTriangles(t *testing.T) {
	g := CommunityDBLP(200, 5)
	// Community cliques guarantee triangles: count a few.
	found := false
	for u := int32(0); u < int32(g.N) && !found; u++ {
		lo, hi := g.EdgeRange(u)
		for i := lo; i < hi && !found; i++ {
			v := g.Dests[i]
			for j := i + 1; j < hi && !found; j++ {
				w := g.Dests[j]
				vlo, vhi := g.EdgeRange(v)
				for e := vlo; e < vhi; e++ {
					if g.Dests[e] == w {
						found = true
						break
					}
				}
			}
		}
	}
	if !found {
		t.Fatal("no triangles in dblp-like graph")
	}
}

func TestUndirectedSymmetryProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		g := RoadMesh(100, seed)
		// Every edge must have its reverse.
		for u := int32(0); u < int32(g.N); u++ {
			lo, hi := g.EdgeRange(u)
			for e := lo; e < hi; e++ {
				v := g.Dests[e]
				rlo, rhi := g.EdgeRange(v)
				ok := false
				for r := rlo; r < rhi; r++ {
					if g.Dests[r] == u {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxDegreeNode(t *testing.T) {
	b := NewBuilder(5, false)
	b.AddEdge(2, 0)
	b.AddEdge(2, 1)
	b.AddEdge(2, 3)
	b.AddEdge(0, 1)
	g := b.Build("deg")
	n, d := g.MaxDegreeNode()
	if n != 2 || d != 3 {
		t.Fatalf("max degree node %d deg %d", n, d)
	}
}
