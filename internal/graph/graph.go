// Package graph provides the CSR graph substrate: the in-memory graph the
// algorithms actually traverse, the simulated address-space layout the
// cache model times (§6.2: standard CSR, 32B nodes — 64B for TC — and 16B
// edges), and generators producing synthetic equivalents of the paper's
// Table-1 inputs.
//
// Determinism contract: every generator is a pure function of (scale,
// seed) through the rng package's fixed algorithms, so two builds of the
// same input are identical graphs at identical simulated addresses — the
// foundation of the simulator's reproducible cycle counts.
package graph

import (
	"fmt"
	"sort"
)

// Layout constants matching §6.2.
const (
	NodeBytes   = 32
	NodeBytesTC = 64
	EdgeBytes   = 16
)

// AddrSpace is a bump allocator for simulated addresses. Regions are
// page-aligned so distinct structures never share a cache line or page.
type AddrSpace struct {
	next uint64
}

// NewAddrSpace starts allocating at a non-zero base (address 0 is reserved
// as a null sentinel).
func NewAddrSpace() *AddrSpace { return &AddrSpace{next: 1 << 20} }

// Alloc reserves size bytes aligned to a 4 KiB page and returns the base.
func (a *AddrSpace) Alloc(size uint64) uint64 {
	const page = 4096
	a.next = (a.next + page - 1) &^ (page - 1)
	base := a.next
	a.next += size
	return base
}

// Graph is a directed graph in CSR form. Undirected inputs store each edge
// in both directions.
type Graph struct {
	Name    string
	N       int
	Offsets []int32 // len N+1
	Dests   []int32 // len M
	Weights []int32 // len M or nil for unweighted

	nodeBytes uint64
	nodeBase  uint64
	edgeBase  uint64
}

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int { return len(g.Dests) }

// Degree returns node v's out-degree.
func (g *Graph) Degree(v int32) int32 { return g.Offsets[v+1] - g.Offsets[v] }

// EdgeRange returns the CSR index range of v's outgoing edges.
func (g *Graph) EdgeRange(v int32) (lo, hi int32) { return g.Offsets[v], g.Offsets[v+1] }

// Bind assigns the graph's simulated addresses from the given address
// space, using 64B node records when tc is set (Triangle Counting stores
// hash-index metadata per node, §6.2).
func (g *Graph) Bind(as *AddrSpace, tc bool) {
	g.nodeBytes = NodeBytes
	if tc {
		g.nodeBytes = NodeBytesTC
	}
	g.nodeBase = as.Alloc(uint64(g.N) * g.nodeBytes)
	g.edgeBase = as.Alloc(uint64(len(g.Dests)) * EdgeBytes)
}

// NodeAddr returns the simulated address of node v's record.
func (g *Graph) NodeAddr(v int32) uint64 { return g.nodeBase + uint64(v)*g.nodeBytes }

// EdgeAddr returns the simulated address of the CSR edge at index i.
func (g *Graph) EdgeAddr(i int32) uint64 { return g.edgeBase + uint64(i)*EdgeBytes }

// SizeBytes returns the simulated memory footprint of the CSR arrays.
func (g *Graph) SizeBytes() uint64 {
	nb := g.nodeBytes
	if nb == 0 {
		nb = NodeBytes
	}
	return uint64(g.N)*nb + uint64(len(g.Dests))*EdgeBytes
}

// MaxDegreeNode returns the node with the most outgoing edges and its
// degree ("Largest Node" in Table 1).
func (g *Graph) MaxDegreeNode() (node int32, degree int32) {
	for v := int32(0); v < int32(g.N); v++ {
		if d := g.Degree(v); d > degree {
			node, degree = v, d
		}
	}
	return
}

// Builder accumulates an edge list and finalizes it into CSR form.
type Builder struct {
	n        int
	src, dst []int32
	w        []int32
	weighted bool
}

// NewBuilder creates a builder for n nodes; weighted enables per-edge
// weights.
func NewBuilder(n int, weighted bool) *Builder {
	return &Builder{n: n, weighted: weighted}
}

// AddEdge appends a directed edge.
func (b *Builder) AddEdge(s, d int32) {
	b.src = append(b.src, s)
	b.dst = append(b.dst, d)
	if b.weighted {
		b.w = append(b.w, 1)
	}
}

// AddWeighted appends a directed weighted edge.
func (b *Builder) AddWeighted(s, d, w int32) {
	if !b.weighted {
		panic("graph: AddWeighted on unweighted builder")
	}
	b.src = append(b.src, s)
	b.dst = append(b.dst, d)
	b.w = append(b.w, w)
}

// AddUndirected appends the edge in both directions.
func (b *Builder) AddUndirected(a, c int32) {
	b.AddEdge(a, c)
	b.AddEdge(c, a)
}

// AddUndirectedWeighted appends a weighted edge in both directions.
func (b *Builder) AddUndirectedWeighted(a, c, w int32) {
	b.AddWeighted(a, c, w)
	b.AddWeighted(c, a, w)
}

// Build sorts, deduplicates, and produces the CSR graph.
func (b *Builder) Build(name string) *Graph {
	m := len(b.src)
	// Counting sort by source for determinism and speed.
	counts := make([]int32, b.n+1)
	for _, s := range b.src {
		counts[s+1]++
	}
	for i := 0; i < b.n; i++ {
		counts[i+1] += counts[i]
	}
	order := make([]int32, m)
	next := make([]int32, b.n)
	for i := 0; i < m; i++ {
		s := b.src[i]
		order[counts[s]+next[s]] = int32(i)
		next[s]++
	}

	g := &Graph{Name: name, N: b.n}
	g.Offsets = make([]int32, b.n+1)
	g.Dests = make([]int32, 0, m)
	if b.weighted {
		g.Weights = make([]int32, 0, m)
	}
	idx := 0
	for v := 0; v < b.n; v++ {
		start := counts[v]
		end := counts[v+1]
		row := order[start:end]
		// Sort each row by destination and drop duplicates/self-loops.
		sort.Slice(row, func(i, j int) bool { return b.dst[row[i]] < b.dst[row[j]] })
		prev := int32(-1)
		for _, ei := range row {
			d := b.dst[ei]
			if d == int32(v) || d == prev {
				continue
			}
			prev = d
			g.Dests = append(g.Dests, d)
			if b.weighted {
				g.Weights = append(g.Weights, b.w[ei])
			}
			idx++
		}
		g.Offsets[v+1] = int32(idx)
	}
	return g
}

// Validate checks CSR invariants; tests and generators call it.
func (g *Graph) Validate() error {
	if len(g.Offsets) != g.N+1 {
		return fmt.Errorf("graph %s: offsets len %d, want %d", g.Name, len(g.Offsets), g.N+1)
	}
	if g.Offsets[0] != 0 || int(g.Offsets[g.N]) != len(g.Dests) {
		return fmt.Errorf("graph %s: offset bounds [%d..%d] vs %d edges", g.Name, g.Offsets[0], g.Offsets[g.N], len(g.Dests))
	}
	for v := 0; v < g.N; v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			return fmt.Errorf("graph %s: negative row %d", g.Name, v)
		}
	}
	for i, d := range g.Dests {
		if d < 0 || int(d) >= g.N {
			return fmt.Errorf("graph %s: edge %d dest %d out of range", g.Name, i, d)
		}
	}
	if g.Weights != nil && len(g.Weights) != len(g.Dests) {
		return fmt.Errorf("graph %s: %d weights vs %d edges", g.Name, len(g.Weights), len(g.Dests))
	}
	return nil
}

// BFSFrom returns hop distances from src (-1 if unreachable) — the
// reference implementation used for verification and diameter estimates.
func (g *Graph) BFSFrom(src int32) []int32 {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []int32{src}
	for len(frontier) > 0 {
		var next []int32
		for _, v := range frontier {
			lo, hi := g.EdgeRange(v)
			for e := lo; e < hi; e++ {
				d := g.Dests[e]
				if dist[d] < 0 {
					dist[d] = dist[v] + 1
					next = append(next, d)
				}
			}
		}
		frontier = next
	}
	return dist
}

// EstimateDiameter runs a double-sweep BFS from src: the eccentricity of
// the farthest node found is a lower bound that is tight in practice
// ("Est. Diam." in Table 1).
func (g *Graph) EstimateDiameter(src int32) int32 {
	far, d := farthest(g.BFSFrom(src))
	if d <= 0 {
		return 0
	}
	_, d2 := farthest(g.BFSFrom(far))
	if d2 > d {
		d = d2
	}
	return d
}

func farthest(dist []int32) (node, d int32) {
	for v, dv := range dist {
		if dv > d {
			node, d = int32(v), dv
		}
	}
	return
}
