package graph

import (
	"fmt"

	"minnow/internal/rng"
)

// The seven generators below produce synthetic stand-ins for the paper's
// Table-1 inputs. Absolute sizes are scaled down (callers pass n); each
// generator preserves the property that drives its benchmark's behaviour:
//
//	RoadMesh        USA-road-d.W       high diameter, degree ~4, weighted
//	UniformRandom   r4-2e23            uniform degree 4, low diameter
//	Kronecker       rmat16-2e22        power law with one giant hub
//	SmallWorld      wikipedia-20051105 low diameter, moderate hubs
//	PowerLawTalk    wiki-Talk          extreme skew, many leaves
//	CommunityDBLP   com-dblp-sym       clique communities (triangle-rich)
//	Bipartite       amazon-ratings     two-sided, 2-colorable
//

// RoadMesh generates a weighted road-network-like mesh: a √n x √n grid
// with 4-neighbor links, a few random diagonal shortcuts, and uniform
// random weights in [1, maxW]. Diameter grows as √n, the property that
// makes SSSP priority-ordering-sensitive (§3.1).
func RoadMesh(n int, seed uint64) *Graph {
	r := rng.New(seed)
	side := 1
	for side*side < n {
		side++
	}
	n = side * side
	b := NewBuilder(n, true)
	const maxW = 1000
	id := func(x, y int) int32 { return int32(y*side + x) }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			if x+1 < side {
				b.AddUndirectedWeighted(id(x, y), id(x+1, y), int32(1+r.Intn(maxW)))
			}
			if y+1 < side {
				b.AddUndirectedWeighted(id(x, y), id(x, y+1), int32(1+r.Intn(maxW)))
			}
			// Sparse diagonal shortcuts mimic highway links.
			if x+1 < side && y+1 < side && r.Intn(20) == 0 {
				b.AddUndirectedWeighted(id(x, y), id(x+1, y+1), int32(1+r.Intn(maxW)))
			}
		}
	}
	return b.Build(fmt.Sprintf("road-mesh-%d", n))
}

// UniformRandom generates an r4-like uniform random graph: every node
// draws avgDeg undirected neighbors uniformly at random.
func UniformRandom(n, avgDeg int, seed uint64) *Graph {
	r := rng.New(seed)
	b := NewBuilder(n, false)
	half := avgDeg / 2
	if half < 1 {
		half = 1
	}
	for v := 0; v < n; v++ {
		for k := 0; k < half; k++ {
			d := int32(r.Intn(n))
			if d != int32(v) {
				b.AddUndirected(int32(v), d)
			}
		}
	}
	return b.Build(fmt.Sprintf("r%d-%d", avgDeg, n))
}

// Kronecker generates an R-MAT/Graph500-style graph of 2^scale nodes and
// edgeFactor*2^scale undirected edges with the Graph500 initiator
// (A,B,C,D) = (0.57, 0.19, 0.19, 0.05). The recursive skew concentrates a
// large fraction of all edges on node 0 — the giant hub (18.4M edges, 27%
// of the graph, in the paper's rmat16-2e22) that motivates task splitting
// (§6.2.1).
func Kronecker(scale, edgeFactor int, seed uint64) *Graph {
	r := rng.New(seed)
	n := 1 << scale
	m := n * edgeFactor
	b := NewBuilder(n, false)
	const (
		a  = 0.57
		bb = 0.19
		c  = 0.19
	)
	for i := 0; i < m; i++ {
		var src, dst int32
		for bit := 0; bit < scale; bit++ {
			p := r.Float64()
			switch {
			case p < a:
				// both high quadrant: no bits set
			case p < a+bb:
				dst |= 1 << bit
			case p < a+bb+c:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		if src != dst {
			b.AddUndirected(src, dst)
		}
	}
	return b.Build(fmt.Sprintf("kron%d-e%d", scale, edgeFactor))
}

// SmallWorld generates a Watts-Strogatz-style wikipedia-like graph: a ring
// lattice of degree k with probability rewireP of each edge rewiring to a
// random node, plus a handful of hub nodes with boosted degree.
func SmallWorld(n, k int, seed uint64) *Graph {
	r := rng.New(seed)
	b := NewBuilder(n, false)
	const rewireP = 0.2
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			d := int32((v + j) % n)
			if r.Float64() < rewireP {
				d = int32(r.Intn(n))
			}
			if d != int32(v) {
				b.AddUndirected(int32(v), d)
			}
		}
	}
	// A few percent of nodes become hubs with degree ~ sqrt(n)/2,
	// approximating the wikipedia degree tail (largest node 4,970 on
	// 1.6M nodes ≈ 0.3% of n).
	hubs := n / 200
	if hubs < 1 {
		hubs = 1
	}
	hubDeg := isqrt(n) / 2
	for h := 0; h < hubs; h++ {
		hv := int32(r.Intn(n))
		for j := 0; j < hubDeg; j++ {
			d := int32(r.Intn(n))
			if d != hv {
				b.AddUndirected(hv, d)
			}
		}
	}
	return b.Build(fmt.Sprintf("smallworld-%d", n))
}

// PowerLawTalk generates a wiki-Talk-like directed graph: a tiny core of
// extremely high-out-degree nodes (admins posting to many talk pages), a
// heavy-tailed middle, and a majority of near-leaf nodes. Average degree
// ~2, largest node degree ~4% of n.
func PowerLawTalk(n int, seed uint64) *Graph {
	r := rng.New(seed)
	b := NewBuilder(n, false)
	core := n / 250
	if core < 4 {
		core = 4
	}
	for v := 0; v < n; v++ {
		var deg int
		switch {
		case v < core:
			deg = n / 25 // superhubs
		case v < n/10:
			deg = 2 + r.Geometric(0.25)
		default:
			if r.Intn(3) > 0 {
				continue // most nodes post nowhere
			}
			deg = 1
		}
		for j := 0; j < deg; j++ {
			d := int32(r.Intn(n))
			if d != int32(v) {
				b.AddEdge(int32(v), d)
			}
		}
	}
	return b.Build(fmt.Sprintf("talk-%d", n))
}

// CommunityDBLP generates a com-dblp-like co-authorship graph: cliques of
// 3-8 nodes (papers' author sets) chained by shared members, yielding the
// triangle-rich, moderate-degree structure Triangle Counting needs.
func CommunityDBLP(n int, seed uint64) *Graph {
	r := rng.New(seed)
	b := NewBuilder(n, false)
	v := 0
	for v < n {
		size := 3 + r.Intn(6)
		if v+size > n {
			size = n - v
		}
		// Fully connect the community.
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				b.AddUndirected(int32(v+i), int32(v+j))
			}
		}
		// Link back to a random earlier node (collaboration across
		// communities) so the graph is mostly connected.
		if v > 0 {
			b.AddUndirected(int32(v), int32(r.Intn(v)))
		}
		v += size
	}
	return b.Build(fmt.Sprintf("dblp-%d", n))
}

// Bipartite generates an amazon-ratings-like bipartite user-item graph
// with power-law item popularity. Bipartite graphs are exactly the inputs
// Bipartite Coloring succeeds on.
func Bipartite(users, items int, seed uint64) *Graph {
	r := rng.New(seed)
	n := users + items
	b := NewBuilder(n, false)
	for u := 0; u < users; u++ {
		ratings := 1 + r.Geometric(0.35)
		for j := 0; j < ratings; j++ {
			// Popularity skew: square the uniform draw toward item 0.
			f := r.Float64()
			it := int(f * f * float64(items))
			if it >= items {
				it = items - 1
			}
			b.AddUndirected(int32(u), int32(users+it))
		}
	}
	return b.Build(fmt.Sprintf("bipartite-%du-%di", users, items))
}

func isqrt(n int) int {
	s := 0
	for s*s < n {
		s++
	}
	return s
}
