package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary CSR serialization: a small versioned header followed by the
// offsets, destinations, and optional weights as little-endian int32s.
// The format lets generated inputs be cached on disk and shared between
// tools (graphgen -save / minnowsim -graph).

// magic identifies the file format ("MNWG" + version).
var magic = [8]byte{'M', 'N', 'W', 'G', 0, 0, 0, 1}

// Save writes the graph in binary CSR form.
func (g *Graph) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	weighted := int32(0)
	if g.Weights != nil {
		weighted = 1
	}
	nameBytes := []byte(g.Name)
	if len(nameBytes) > 255 {
		nameBytes = nameBytes[:255]
	}
	hdr := []int32{int32(g.N), int32(len(g.Dests)), weighted, int32(len(nameBytes))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if _, err := bw.Write(nameBytes); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Dests); err != nil {
		return err
	}
	if weighted == 1 {
		if err := binary.Write(bw, binary.LittleEndian, g.Weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a graph written by Save and validates it.
func Load(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("graph: bad magic %q", m[:4])
	}
	var n, edges, weighted, nameLen int32
	for _, p := range []*int32{&n, &edges, &weighted, &nameLen} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: reading header: %w", err)
		}
	}
	if n < 0 || edges < 0 || nameLen < 0 || nameLen > 255 {
		return nil, fmt.Errorf("graph: implausible header n=%d m=%d", n, edges)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("graph: reading name: %w", err)
	}
	g := &Graph{
		Name:    string(name),
		N:       int(n),
		Offsets: make([]int32, n+1),
		Dests:   make([]int32, edges),
	}
	if err := binary.Read(br, binary.LittleEndian, g.Offsets); err != nil {
		return nil, fmt.Errorf("graph: reading offsets: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.Dests); err != nil {
		return nil, fmt.Errorf("graph: reading dests: %w", err)
	}
	if weighted == 1 {
		g.Weights = make([]int32, edges)
		if err := binary.Read(br, binary.LittleEndian, g.Weights); err != nil {
			return nil, fmt.Errorf("graph: reading weights: %w", err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
