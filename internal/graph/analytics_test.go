package graph

import (
	"math"
	"testing"
)

func TestDegreeStats(t *testing.T) {
	b := NewBuilder(5, false)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 0)
	// nodes 2,3,4 have out-degree 0
	g := b.Build("deg")
	st := g.Degrees()
	if st.Min != 0 || st.Max != 3 || st.Isolated != 3 {
		t.Fatalf("stats %+v", st)
	}
	if math.Abs(st.Mean-0.8) > 1e-12 {
		t.Fatalf("mean %v", st.Mean)
	}
	if st.P50 != 0 || st.P99 != 3 {
		t.Fatalf("percentiles %+v", st)
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(6, false)
	b.AddUndirected(0, 1)
	b.AddUndirected(1, 2)
	b.AddUndirected(3, 4)
	// node 5 isolated
	g := b.Build("comp")
	labels, count := g.Components()
	if count != 3 {
		t.Fatalf("components %d, want 3", count)
	}
	if labels[0] != labels[2] || labels[3] != labels[4] || labels[0] == labels[3] || labels[5] == labels[0] {
		t.Fatalf("labels %v", labels)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// A triangle: every wedge is closed -> coefficient 1.
	b := NewBuilder(3, false)
	b.AddUndirected(0, 1)
	b.AddUndirected(1, 2)
	b.AddUndirected(2, 0)
	g := b.Build("tri")
	if c := g.ClusteringCoefficient(); math.Abs(c-1) > 1e-12 {
		t.Fatalf("triangle clustering %v, want 1", c)
	}
	// A star: no closed wedges.
	b2 := NewBuilder(4, false)
	b2.AddUndirected(0, 1)
	b2.AddUndirected(0, 2)
	b2.AddUndirected(0, 3)
	g2 := b2.Build("star")
	if c := g2.ClusteringCoefficient(); c != 0 {
		t.Fatalf("star clustering %v, want 0", c)
	}
}

func TestClusteringByGraphClass(t *testing.T) {
	// Clique communities must cluster far more than uniform random.
	dblp := CommunityDBLP(600, 1)
	rnd := UniformRandom(600, 6, 1)
	cd, cr := dblp.ClusteringCoefficient(), rnd.ClusteringCoefficient()
	if cd < 5*cr {
		t.Fatalf("dblp clustering %v not well above random %v", cd, cr)
	}
}

func TestComponentsMatchUnionFindKernel(t *testing.T) {
	g := SmallWorld(500, 6, 2)
	labels, count := g.Components()
	// Count distinct labels and verify agreement along every edge.
	distinct := map[int32]bool{}
	for _, l := range labels {
		distinct[l] = true
	}
	if len(distinct) != count {
		t.Fatalf("label count %d vs components %d", len(distinct), count)
	}
	for u := int32(0); u < int32(g.N); u++ {
		lo, hi := g.EdgeRange(u)
		for e := lo; e < hi; e++ {
			if labels[u] != labels[g.Dests[e]] {
				t.Fatalf("edge %d-%d crosses components", u, g.Dests[e])
			}
		}
	}
}
