package graph

// Structural analytics used by graphgen and the input-validation tests:
// degree statistics, clustering, and component structure. These read the
// CSR only and are independent of the simulator.

// DegreeStats summarizes the out-degree distribution.
type DegreeStats struct {
	Min, Max int32
	Mean     float64
	// P50/P90/P99 are percentile out-degrees.
	P50, P90, P99 int32
	Isolated      int // nodes with no outgoing edges
}

// Degrees computes the degree distribution summary.
func (g *Graph) Degrees() DegreeStats {
	if g.N == 0 {
		return DegreeStats{}
	}
	counts := make([]int64, 0)
	maxDeg := int32(0)
	for v := int32(0); v < int32(g.N); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	counts = make([]int64, maxDeg+1)
	st := DegreeStats{Min: maxDeg, Max: maxDeg}
	var sum int64
	for v := int32(0); v < int32(g.N); v++ {
		d := g.Degree(v)
		counts[d]++
		sum += int64(d)
		if d < st.Min {
			st.Min = d
		}
		if d == 0 {
			st.Isolated++
		}
	}
	st.Mean = float64(sum) / float64(g.N)
	pct := func(p float64) int32 {
		target := int64(p * float64(g.N))
		var acc int64
		for d := int32(0); d <= maxDeg; d++ {
			acc += counts[d]
			if acc > target {
				return d
			}
		}
		return maxDeg
	}
	st.P50, st.P90, st.P99 = pct(0.50), pct(0.90), pct(0.99)
	return st
}

// Components labels each node with a component ID (the minimum node ID in
// its weakly-connected component, treating edges as undirected) and
// returns the labels plus the component count.
func (g *Graph) Components() (labels []int32, count int) {
	labels = make([]int32, g.N)
	for i := range labels {
		labels[i] = -1
	}
	var stack []int32
	for s := int32(0); s < int32(g.N); s++ {
		if labels[s] >= 0 {
			continue
		}
		count++
		labels[s] = s
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			lo, hi := g.EdgeRange(v)
			for e := lo; e < hi; e++ {
				d := g.Dests[e]
				if labels[d] < 0 {
					labels[d] = s
					stack = append(stack, d)
				}
			}
		}
	}
	return labels, count
}

// ClusteringCoefficient returns the global clustering coefficient
// (3 x triangles / open wedges) over the graph treated as undirected with
// sorted adjacency lists. O(sum d^2) — intended for the generator-scale
// graphs used here.
func (g *Graph) ClusteringCoefficient() float64 {
	var triangles, wedges int64
	for u := int32(0); u < int32(g.N); u++ {
		lo, hi := g.EdgeRange(u)
		d := int64(hi - lo)
		wedges += d * (d - 1) / 2
		for i := lo; i < hi; i++ {
			v := g.Dests[i]
			if v <= u {
				continue
			}
			// Count common neighbors of u and v by merge.
			a, b := i+1, g.Offsets[v]
			bhi := g.Offsets[v+1]
			for a < hi && b < bhi {
				switch {
				case g.Dests[a] == g.Dests[b]:
					triangles++
					a++
					b++
				case g.Dests[a] < g.Dests[b]:
					a++
				default:
					b++
				}
			}
		}
	}
	if wedges == 0 {
		return 0
	}
	// Each triangle closes 3 wedges; the merge above counts each
	// triangle once (at its minimum vertex).
	return 3 * float64(triangles) / float64(wedges)
}
