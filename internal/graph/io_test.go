package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := RoadMesh(400, 7)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Name != g.Name || g2.N != g.N || len(g2.Dests) != len(g.Dests) {
		t.Fatalf("shape mismatch: %s/%d/%d vs %s/%d/%d", g2.Name, g2.N, len(g2.Dests), g.Name, g.N, len(g.Dests))
	}
	for i := range g.Dests {
		if g.Dests[i] != g2.Dests[i] || g.Weights[i] != g2.Weights[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	for i := range g.Offsets {
		if g.Offsets[i] != g2.Offsets[i] {
			t.Fatalf("offset %d differs", i)
		}
	}
}

func TestSaveLoadUnweighted(t *testing.T) {
	g := UniformRandom(300, 4, 3)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Weights != nil {
		t.Fatal("weights materialized for unweighted graph")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a graph file at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	g := UniformRandom(100, 4, 1)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Load(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated file accepted")
	}
}
