// Package mem models the CMP memory hierarchy: per-core L1D and L2
// caches, a banked shared L3 with an idealized sharer directory, the NoC
// between them, and DRAM channels behind the L3. The L2 carries the one
// prefetch bit per line that Minnow's credit-based throttling relies on
// (§5.3.1 of the paper).
//
// Data values are never stored here — the hierarchy tracks *addresses*
// only. Benchmark state lives in ordinary Go slices; kernels compute the
// simulated addresses of what they touch from the CSR layout and feed
// those addresses through this model for timing.
//
// Determinism contract (§2 of sim's scheme): cache and directory state
// evolve only through the timestamped access stream the actor ordering
// fixes, so hit/miss outcomes and latencies reproduce exactly. The
// timeline hooks (System.TL) observe misses and writebacks as they are
// timed; they never alter replacement or coherence decisions.
//
// Bound/weave placement: a System is a weave-serialized shared resource.
// Every Access — including an L1 hit — mutates state visible to all
// cores (latency accounting, directory and replacement metadata, bank
// reservations), so any actor that can reach a shared System inside an
// epoch has interaction horizon 0 in sim.Engine.RunParallel; only the
// (time, ID)-ordered weave may call into it.
package mem

import "minnow/internal/sim"

// LineShift is log2 of the 64-byte line size.
const LineShift = 6

// LineSize is the cache line size in bytes.
const LineSize = 1 << LineShift

// LineAddr returns the line-granular address of a byte address.
func LineAddr(addr uint64) uint64 { return addr >> LineShift }

type way struct {
	tag      uint64
	readyAt  sim.Time // fill completion; hits before this wait (in-flight line)
	lru      uint32
	valid    bool
	dirty    bool
	prefetch bool // Minnow prefetch bit (meaningful in L2 only)
}

// Evicted describes a line displaced by a fill.
type Evicted struct {
	Line     uint64
	Valid    bool
	Dirty    bool
	Prefetch bool
}

// Cache is one set-associative, write-back, write-allocate cache (or one
// L3 bank). All methods take line addresses.
type Cache struct {
	sets  [][]way
	assoc int
	mask  uint64
	tick  uint32
	Stats CacheCounters
}

// CacheCounters tracks raw event counts for one cache.
type CacheCounters struct {
	Accesses      int64
	Misses        int64
	Evictions     int64
	Writebacks    int64
	PrefetchFills int64
	PrefetchUsed  int64
	PrefetchWaste int64
}

// NewCache builds a cache with the given total line count and
// associativity. lines must be a multiple of assoc and lines/assoc a power
// of two.
func NewCache(lines, assoc int) *Cache {
	nsets := lines / assoc
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic("mem: cache sets must be a positive power of two")
	}
	c := &Cache{assoc: assoc, mask: uint64(nsets - 1)}
	c.sets = make([][]way, nsets)
	backing := make([]way, nsets*assoc)
	for i := range c.sets {
		c.sets[i] = backing[i*assoc : (i+1)*assoc : (i+1)*assoc]
	}
	return c
}

// Lines returns the capacity in lines.
func (c *Cache) Lines() int { return len(c.sets) * c.assoc }

func (c *Cache) setOf(line uint64) []way { return c.sets[line&c.mask] }

// Lookup probes for a line. On a hit it updates LRU, optionally sets the
// dirty bit, and returns the line's fill-completion time — a demand access
// arriving before readyAt waits for the in-flight fill rather than getting
// the data instantly. When demand is set, a hit on a prefetch-marked line
// clears the bit and reports it (the credit-return event); prefetcher
// probes pass demand=false and leave the bit alone.
func (c *Cache) Lookup(line uint64, write, demand bool) (hit, wasPrefetch bool, readyAt sim.Time) {
	c.tick++
	c.Stats.Accesses++
	set := c.setOf(line)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == line {
			w.lru = c.tick
			if write {
				w.dirty = true
			}
			readyAt = w.readyAt
			if w.prefetch && demand {
				w.prefetch = false
				c.Stats.PrefetchUsed++
				return true, true, readyAt
			}
			return true, false, readyAt
		}
	}
	c.Stats.Misses++
	return false, false, 0
}

// ProbePrefetch reports whether a line is present with its prefetch bit
// set, without touching LRU, statistics, or the bit itself.
func (c *Cache) ProbePrefetch(line uint64) bool {
	set := c.setOf(line)
	for i := range set {
		if set[i].valid && set[i].tag == line && set[i].prefetch {
			return true
		}
	}
	return false
}

// ClearPrefetch clears a resident line's prefetch bit, counting it as
// used. Returns whether a set bit was cleared. The credit-return path for
// demand hits that are satisfied above the L2 (see DESIGN.md on L1
// shielding at reduced scale).
func (c *Cache) ClearPrefetch(line uint64) bool {
	set := c.setOf(line)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == line && w.prefetch {
			w.prefetch = false
			c.Stats.PrefetchUsed++
			return true
		}
	}
	return false
}

// Contains probes without touching LRU or statistics.
func (c *Cache) Contains(line uint64) bool {
	set := c.setOf(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			return true
		}
	}
	return false
}

// Fill installs a line (after a miss), returning whatever was evicted.
// prefetch marks the new line as prefetcher-installed; readyAt records
// when the fill's data actually arrives.
func (c *Cache) Fill(line uint64, dirty, prefetch bool, readyAt sim.Time) Evicted {
	c.tick++
	set := c.setOf(line)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	w := &set[victim]
	ev := Evicted{Line: w.tag, Valid: w.valid, Dirty: w.dirty, Prefetch: w.prefetch}
	if ev.Valid {
		c.Stats.Evictions++
		if ev.Dirty {
			c.Stats.Writebacks++
		}
		if ev.Prefetch {
			c.Stats.PrefetchWaste++
		}
	}
	*w = way{tag: line, lru: c.tick, valid: true, dirty: dirty, prefetch: prefetch, readyAt: readyAt}
	if prefetch {
		c.Stats.PrefetchFills++
	}
	return ev
}

// MarkPrefetch sets the prefetch bit on a resident line. It returns true
// if the line was present and previously unmarked (i.e. a credit should be
// consumed for it).
func (c *Cache) MarkPrefetch(line uint64) bool {
	set := c.setOf(line)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == line {
			if w.prefetch {
				return false
			}
			w.prefetch = true
			c.Stats.PrefetchFills++
			return true
		}
	}
	return false
}

// CountPrefetchMarked returns how many valid lines currently carry the
// prefetch bit. Read-only scan used by the credit-accounting audit (the
// engine's outstanding-marked counter must equal the lines actually
// marked in its cores' L2s).
func (c *Cache) CountPrefetchMarked() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid && set[i].prefetch {
				n++
			}
		}
	}
	return n
}

// ValidLines appends every valid way's line address to dst and returns
// it, in set-major order (deterministic). Read-only; used by the
// inclusion audit.
func (c *Cache) ValidLines(dst []uint64) []uint64 {
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				dst = append(dst, set[i].tag)
			}
		}
	}
	return dst
}

// Invalidate removes a line (coherence back-invalidation). It reports
// whether the line was present, was dirty, and carried a set prefetch bit.
func (c *Cache) Invalidate(line uint64) (present, dirty, prefetch bool) {
	set := c.setOf(line)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == line {
			present, dirty, prefetch = true, w.dirty, w.prefetch
			w.valid = false
			return
		}
	}
	return
}

// busyUntil models a simple fully-pipelined-but-bandwidth-limited port.
type busyUntil struct {
	next    sim.Time
	service sim.Time
}

// portWindow bounds how far ahead a port reservation may be and still
// queue a lagging request (clock-skew tolerance; see the mesh model).
const portWindow = 32

// reserve books the port at or after t and returns the service start time.
func (b *busyUntil) reserve(t sim.Time) sim.Time {
	if b.next > t && b.next-t <= portWindow {
		t = b.next
	}
	if t+b.service > b.next {
		b.next = t + b.service
	}
	return t
}
