package mem

import (
	"testing"

	"minnow/internal/sim"
)

func testSystem(cores int) *System {
	cfg := DefaultConfig(cores)
	cfg.ScaleCaches(16)
	return NewSystem(cfg)
}

func TestLatencyHierarchy(t *testing.T) {
	s := testSystem(2)
	const addr = 0x100000
	// Cold: goes to DRAM.
	r1 := s.Access(0, addr, Load, 0)
	if r1.Level != 4 {
		t.Fatalf("cold access level %d", r1.Level)
	}
	// Second access from the same core: L1 hit, far cheaper.
	r2 := s.Access(0, addr, Load, r1.Done)
	if r2.Level != 1 {
		t.Fatalf("warm access level %d", r2.Level)
	}
	l1Cost := r2.Done - r1.Done
	coldCost := r1.Done - 0
	if l1Cost >= coldCost/4 {
		t.Fatalf("L1 hit (%d) not much cheaper than DRAM (%d)", l1Cost, coldCost)
	}
	// Another core: misses privately but hits the shared L3.
	r3 := s.Access(1, addr, Load, r2.Done)
	if r3.Level != 3 {
		t.Fatalf("remote access level %d", r3.Level)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	s := testSystem(2)
	const addr = 0x200000
	s.Access(0, addr, Load, 0)
	s.Access(1, addr, Load, 1000)
	// Core 1 writes: core 0's copies must go away.
	s.Access(1, addr, Store, 2000)
	if s.InvMsgs == 0 {
		t.Fatal("no invalidation issued")
	}
	r := s.Access(0, addr, Load, 3000)
	if r.Level < 3 {
		t.Fatalf("core 0 still hit privately at level %d after invalidation", r.Level)
	}
}

func TestDirtyRemoteRead(t *testing.T) {
	s := testSystem(2)
	const addr = 0x300000
	s.Access(0, addr, Store, 0)
	r := s.Access(1, addr, Load, 1000)
	if r.Level < 3 {
		t.Fatalf("dirty-remote read level %d", r.Level)
	}
	// Dirty data must have been pulled from the owner, not stale DRAM:
	// subsequent read by core 1 hits locally.
	r2 := s.Access(1, addr, Load, r.Done)
	if r2.Level != 1 {
		t.Fatalf("second read level %d", r2.Level)
	}
}

func TestPrefetchCreditCallbacks(t *testing.T) {
	s := testSystem(1)
	var used, wasted int
	s.OnCredit = func(core int, u bool) {
		if u {
			used++
		} else {
			wasted++
		}
	}
	const addr = 0x400000
	r := s.Access(0, addr, EnginePrefetch, 0)
	if !r.Marked {
		t.Fatal("prefetch did not mark")
	}
	// Demand load consumes the credit.
	r2 := s.Access(0, addr, Load, r.Done)
	if !r2.UsedPrefetch || used != 1 {
		t.Fatalf("credit not returned as used (used=%d)", used)
	}
	// Re-prefetch, then force eviction through same-set fills.
	s.Access(0, addr, EnginePrefetch, 5000)
	cfg := s.Config()
	setStride := uint64(cfg.L2Lines/cfg.L2Assoc) * LineSize
	for i := 1; i <= cfg.L2Assoc+1; i++ {
		s.Access(0, addr+uint64(i)*setStride, Load, sim.Time(6000+i*100))
	}
	if wasted == 0 {
		t.Fatal("evicted marked line returned no credit")
	}
}

func TestEnginePrefetchDoesNotConsumeOwnMark(t *testing.T) {
	s := testSystem(1)
	calls := 0
	s.OnCredit = func(int, bool) { calls++ }
	const addr = 0x500000
	r1 := s.Access(0, addr, EnginePrefetch, 0)
	if !r1.Marked {
		t.Fatal("first prefetch did not mark")
	}
	r2 := s.Access(0, addr, EnginePrefetch, 100)
	if r2.Marked {
		t.Fatal("second prefetch marked the same line again")
	}
	if calls != 0 {
		t.Fatalf("prefetch probes returned %d credits", calls)
	}
}

func TestL1HitClearsL2PrefetchBit(t *testing.T) {
	s := testSystem(1)
	used := 0
	s.OnCredit = func(core int, u bool) {
		if u {
			used++
		}
	}
	const addr = 0x600000
	// Demand load installs into L1 and L2.
	s.Access(0, addr, Load, 0)
	// Engine marks the (L2-resident) line.
	r := s.Access(0, addr, EnginePrefetch, 1000)
	if !r.Marked {
		t.Fatal("mark on resident line failed")
	}
	// Demand load now hits L1; the L2 bit must still clear (scale
	// correction, see DESIGN.md).
	s.Access(0, addr, Load, 2000)
	if used != 1 {
		t.Fatalf("L1-shielded credit not returned (used=%d)", used)
	}
	if s.L1ShieldedHits != 1 {
		t.Fatalf("shielded counter %d", s.L1ShieldedHits)
	}
}

func TestDemandCountersExcludeEngine(t *testing.T) {
	s := testSystem(1)
	s.Access(0, 0x700000, EnginePrefetch, 0)
	s.Access(0, 0x710000, EngineLoad, 0)
	if s.DemandL2Accesses != 0 {
		t.Fatalf("engine traffic counted as demand: %d", s.DemandL2Accesses)
	}
	s.Access(0, 0x720000, Load, 0)
	if s.DemandL2Accesses != 1 || s.DemandL2Misses != 1 {
		t.Fatalf("demand counters %d/%d", s.DemandL2Accesses, s.DemandL2Misses)
	}
}

func TestHWPrefetchSkipsTLB(t *testing.T) {
	s := testSystem(1)
	walks := s.TLBs[0].Walks
	s.Access(0, 0x800000, HWPrefetch, 0)
	if s.TLBs[0].Walks != walks {
		t.Fatal("hardware prefetch walked the TLB")
	}
	r := s.Access(0, 0x800000, HWPrefetch, 0)
	_ = r
	// And it marks lines like the engine's prefetches.
	if !s.L2(0).ProbePrefetch(LineAddr(0x800000)) {
		t.Fatal("HW prefetch did not mark")
	}
}

func TestEngineTLBMissRaisesException(t *testing.T) {
	s := testSystem(1)
	r := s.Access(0, 0x900000, EngineLoad, 0)
	if !r.TLBMiss {
		t.Fatal("cold engine access did not report a TLB exception")
	}
	r2 := s.Access(0, 0x900040, EngineLoad, r.Done)
	if r2.TLBMiss {
		t.Fatal("same-page engine access missed after refill")
	}
}

func TestAtomicCostsMoreThanLoad(t *testing.T) {
	s := testSystem(1)
	// Warm the line first.
	r0 := s.Access(0, 0xa00000, Load, 0)
	base := r0.Done
	rl := s.Access(0, 0xa00000, Load, base)
	ra := s.Access(0, 0xa00000, Atomic, rl.Done)
	if ra.Done-rl.Done <= rl.Done-base {
		t.Fatalf("atomic (%d) not more expensive than load (%d)", ra.Done-rl.Done, rl.Done-base)
	}
}

func TestInFlightLineWaits(t *testing.T) {
	s := testSystem(2)
	const addr = 0xb00000
	// Engine prefetch starts a long fill.
	r := s.Access(0, addr, EnginePrefetch, 0)
	// A demand access immediately after sees the line but must wait for
	// the fill, not get it instantly.
	r2 := s.Access(0, addr, Load, 1)
	if r2.Done < r.Done {
		t.Fatalf("demand hit (%d) completed before the in-flight fill (%d)", r2.Done, r.Done)
	}
}

func TestScaleCaches(t *testing.T) {
	cfg := DefaultConfig(4)
	l1, l2, l3 := cfg.L1Lines, cfg.L2Lines, cfg.L3BankLines
	cfg.ScaleCaches(16)
	// Private caches scale by the factor; L3 banks by 4x the factor
	// (the chip keeps all 64 banks at every thread count).
	if cfg.L1Lines != l1/16 || cfg.L2Lines != l2/16 || cfg.L3BankLines != l3/64 {
		t.Fatalf("scaling wrong: %d %d %d", cfg.L1Lines, cfg.L2Lines, cfg.L3BankLines)
	}
	// Associativity floor.
	cfg2 := DefaultConfig(4)
	cfg2.ScaleCaches(1 << 20)
	if cfg2.L1Lines < 2*cfg2.L1Assoc {
		t.Fatal("scaled below associativity floor")
	}
}

func TestMeshDims(t *testing.T) {
	// The chip is fixed at (at least) 64 tiles regardless of the active
	// core count; only >64-core requests grow the mesh.
	for _, cores := range []int{1, 2, 8, 64} {
		cfg := DefaultConfig(cores)
		if cfg.MeshW != 8 || cfg.MeshH != 8 {
			t.Fatalf("%d cores: mesh %dx%d, want 8x8", cores, cfg.MeshW, cfg.MeshH)
		}
		if cfg.ChipCores != 64 {
			t.Fatalf("%d cores: chip %d, want 64", cores, cfg.ChipCores)
		}
	}
	if cfg := DefaultConfig(100); cfg.MeshW*cfg.MeshH < 100 {
		t.Fatalf("100 cores: mesh %dx%d too small", cfg.MeshW, cfg.MeshH)
	}
}

// TestMinLatencyFloor pins the hierarchy's conservative-lookahead floors:
// no access of any kind completes before now + MinLatency(kind), across
// cold misses, warm hits, dirty remote forwards, atomics, and engine
// traffic.
func TestMinLatencyFloor(t *testing.T) {
	s := testSystem(4)
	kinds := []Kind{Load, Store, Atomic, EngineLoad, EngineStore, EnginePrefetch, EngineAtomic, HWPrefetch}
	if s.MinLatency(Load) != s.cfg.L1Latency || s.MinLatency(EngineLoad) != s.cfg.L2Latency {
		t.Fatalf("entry-level floors wrong: load %d, engine load %d", s.MinLatency(Load), s.MinLatency(EngineLoad))
	}
	if s.MinLatency(Atomic) <= s.MinLatency(Load) || s.MinLatency(EngineAtomic) <= s.MinLatency(EngineLoad) {
		t.Fatal("atomic floors must include the RMW surcharge")
	}
	rng := uint64(0x9e3779b97f4a7c15)
	now := sim.Time(0)
	for i := 0; i < 4000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		core := int(rng>>60) % 4
		kind := kinds[int(rng>>32)%len(kinds)]
		// Small address pool forces hits, sharing, invalidations, and
		// dirty remote forwards alongside cold misses.
		addr := (rng % 64) * LineSize
		res := s.Access(core, addr, kind, now)
		if res.Done < now+s.MinLatency(kind) {
			t.Fatalf("access %d (kind %d, core %d) done at %d from %d, undercutting the %d-cycle floor",
				i, kind, core, res.Done, now, s.MinLatency(kind))
		}
		if i%3 == 0 {
			now += sim.Time(rng % 40)
		}
	}
}
