package mem

import (
	"fmt"
	"sort"

	"minnow/internal/dram"
	"minnow/internal/noc"
	"minnow/internal/obs"
	"minnow/internal/sim"
	"minnow/internal/tlb"
)

// Kind distinguishes the access paths through the hierarchy.
type Kind uint8

const (
	// Load is a demand read from a core (starts at L1D).
	Load Kind = iota
	// Store is a demand write from a core (write-allocate at L1D).
	Store
	// Atomic is a read-modify-write from a core; timing like Store plus
	// a lock overhead. Fence semantics are applied by the core model.
	Atomic
	// EngineLoad is a Minnow-engine read; it enters at the core's L2
	// (engines have no L1 connection, §4).
	EngineLoad
	// EngineStore is a Minnow-engine write entering at the L2.
	EngineStore
	// EnginePrefetch is a Minnow-engine prefetch read: like EngineLoad
	// but the filled/touched L2 line is marked with the prefetch bit.
	EnginePrefetch
	// EngineAtomic is a Minnow-engine read-modify-write (global-worklist
	// lock and pointer updates) entering at the L2.
	EngineAtomic
	// HWPrefetch is a hardware-prefetcher fill (stride / IMP baselines):
	// like EnginePrefetch but physically addressed (no TLB) — the line is
	// still marked so prefetch efficiency is measurable.
	HWPrefetch
)

// Result reports the outcome of one access.
type Result struct {
	Done         sim.Time // completion (data available) time
	Level        uint8    // 1=L1, 2=L2, 3=L3, 4=DRAM
	Marked       bool     // EnginePrefetch marked a previously unmarked line
	UsedPrefetch bool     // demand access consumed a prefetch-marked line
	TLBMiss      bool     // engine access raised a TLB-miss exception
	Remote       bool     // data forwarded from a remote L2's modified copy
	PFLate       bool     // the consumed prefetched line was still in flight
}

// Config sets the hierarchy geometry and latencies. The defaults in
// DefaultConfig mirror Table 3; experiment harnesses typically scale
// capacities down together with graph sizes (see DESIGN.md).
type Config struct {
	// Cores is the number of active cores (worker threads).
	Cores int
	// ChipCores is the physical chip size: the mesh, L3 bank count, and
	// controller placement are sized for this many tiles regardless of
	// how many cores are active (a thread sweep does not shrink the
	// machine). 0 defaults to max(Cores, 64).
	ChipCores int

	L1Lines, L1Assoc int
	L2Lines, L2Assoc int
	L3BankLines      int // per-core bank
	L3Assoc          int

	L1Latency     sim.Time
	L2Latency     sim.Time
	L3Latency     sim.Time
	L3BankService sim.Time // bank occupancy per access

	AtomicExtra sim.Time // extra cycles for RMW at the cache

	MeshW, MeshH int
	HopCycles    sim.Time

	DRAM dram.Config
	TLB  tlb.Config
}

// DefaultConfig returns the Table-3 geometry: 32KB L1D (8w), 256KB L2
// (8w), 2MB L3 bank/core (16w), 4/7/27-cycle latencies, 8x8 mesh at 3
// cycles/hop, 12 DDR4 channels. The chip is always the full 64-tile part
// (or larger if more cores are requested); Cores only sets how many tiles
// run worker threads.
func DefaultConfig(cores int) Config {
	chip := cores
	if chip < 64 {
		chip = 64
	}
	w, h := meshDims(chip)
	return Config{
		Cores:         cores,
		ChipCores:     chip,
		L1Lines:       32 * 1024 / LineSize,
		L1Assoc:       8,
		L2Lines:       256 * 1024 / LineSize,
		L2Assoc:       8,
		L3BankLines:   2 * 1024 * 1024 / LineSize,
		L3Assoc:       16,
		L1Latency:     4,
		L2Latency:     7,
		L3Latency:     27,
		L3BankService: 2,
		AtomicExtra:   15,
		MeshW:         w,
		MeshH:         h,
		HopCycles:     3,
		DRAM:          dram.DefaultConfig(),
		TLB:           tlb.DefaultConfig(),
	}
}

// meshDims picks the smallest mesh that fits the core count.
func meshDims(cores int) (w, h int) {
	w, h = 1, 1
	for w*h < cores {
		if w <= h {
			w++
		} else {
			h++
		}
	}
	return
}

// ScaleCaches divides the private cache capacities by factor and the L3
// banks by 4*factor (keeping associativity), used to keep scaled-down
// graph inputs DRAM-resident the way the paper's full-size inputs are:
// the fixed 64-bank L3 would otherwise swallow the scaled inputs whole.
func (c *Config) ScaleCaches(factor int) {
	scale := func(lines, f int) int {
		l := lines / f
		// keep at least 2 sets per way
		min := 2 * c.L1Assoc
		if l < min {
			l = min
		}
		return l
	}
	c.L1Lines = scale(c.L1Lines, factor)
	c.L2Lines = scale(c.L2Lines, factor)
	c.L3BankLines = scale(c.L3BankLines, 4*factor)
	// TLBs are NOT scaled: 4KB pages do not shrink with the caches, and
	// the paper's ZSim baseline models translation only for the Minnow
	// engine's exception path. A scaled TLB would add a worker-side
	// translation bottleneck the paper never measures (the engine sharing
	// the core's L2 TLB would thrash it).
}

type dirEntry struct {
	sharers    uint64 // bitmask of cores whose L2 may hold the line
	dirtyOwner int8   // core holding it modified, or -1
}

// System is the full simulated memory hierarchy shared by all cores and
// engines.
type System struct {
	cfg  Config
	Mesh *noc.Mesh
	DRAM *dram.Memory
	TLBs []*tlb.TLB

	l1  []*Cache
	l2  []*Cache
	l3  []*Cache // one bank per core
	l3p []busyUntil

	dir map[uint64]dirEntry

	// OnCredit, when set, is invoked whenever a prefetch-marked line in
	// core's L2 is consumed by a demand access (used=true) or evicted or
	// invalidated untouched (used=false). Minnow's credit pool hooks in
	// here.
	OnCredit func(core int, used bool)

	// TL, when non-nil, receives demand L2-miss and writeback instants on
	// MemTrack (timeline observability; set by the harness). The hooks
	// observe only — they never alter access timing.
	TL       *obs.Timeline
	MemTrack obs.TrackID

	DRAMReads int64
	InvMsgs   int64

	// Demand-side L2 counters (exclude engine/prefetcher traffic): the
	// paper's MPKI is demand misses per kilo-instruction.
	DemandL2Accesses int64
	DemandL2Misses   int64
	L1ShieldedHits   int64 // demand L1 hits to lines still marked in L2
	DemandLatencySum int64 // total demand-load latency (diagnostics)
	DemandCount      int64
	DirtyRemote      int64 // reads served from a remote modified copy
	lastDone         sim.Time
	lastLevel        uint8
	LatByLevel       [5]int64
	CntByLevel       [5]int64

	// Prefetch-waste attribution (diagnostics).
	WastePFEvict     int64 // marked line evicted by another prefetch fill
	WasteDemandEvict int64 // marked line evicted by a demand fill
	WasteInval       int64 // marked line invalidated by a remote write
}

// NewSystem builds the hierarchy: private caches and TLBs for the active
// cores, L3 banks and ports for every chip tile.
func NewSystem(cfg Config) *System {
	if cfg.ChipCores < cfg.Cores {
		cfg.ChipCores = cfg.Cores
	}
	if cfg.ChipCores == 0 {
		cfg.ChipCores = 64
	}
	s := &System{
		cfg:  cfg,
		Mesh: noc.New(cfg.MeshW, cfg.MeshH, cfg.HopCycles),
		DRAM: dram.New(cfg.DRAM),
		dir:  make(map[uint64]dirEntry, 1<<16),
	}
	for i := 0; i < cfg.Cores; i++ {
		s.TLBs = append(s.TLBs, tlb.New(cfg.TLB))
		s.l1 = append(s.l1, NewCache(cfg.L1Lines, cfg.L1Assoc))
		s.l2 = append(s.l2, NewCache(cfg.L2Lines, cfg.L2Assoc))
	}
	for i := 0; i < cfg.ChipCores; i++ {
		s.l3 = append(s.l3, NewCache(cfg.L3BankLines, cfg.L3Assoc))
		s.l3p = append(s.l3p, busyUntil{service: cfg.L3BankService})
	}
	return s
}

// Config returns the active configuration.
func (s *System) Config() Config { return s.cfg }

// L2 exposes a core's L2 cache (tests and the Minnow engine use this).
func (s *System) L2(core int) *Cache { return s.l2[core] }

// bankOf hashes a line to its home L3 bank (all chip tiles, not just the
// active cores).
func (s *System) bankOf(line uint64) int {
	// Multiplicative hash spreads the CSR's sequential lines across banks.
	return int((line * 0x9e3779b97f4a7c15 >> 32) % uint64(s.cfg.ChipCores))
}

// ctrlNodeOf places memory controllers around the mesh edge.
func (s *System) ctrlNodeOf(line uint64) int {
	ch := int(line % uint64(s.cfg.DRAM.Channels))
	h := s.cfg.MeshH
	if ch < h {
		return ch * s.cfg.MeshW // west edge
	}
	return (ch-h)%h*s.cfg.MeshW + (s.cfg.MeshW - 1) // east edge
}

// readyWindow caps how long an access waits on a line's in-flight fill
// (readyAt). Genuine fill overlap is bounded by one miss latency;
// anything larger reflects actor clock skew (bound-weave approximation),
// not a real in-flight line. Same treatment as the busy-until contention
// windows in noc/dram.
const readyWindow = 512

// waitReady applies the windowed readyAt wait.
func waitReady(done, rdy sim.Time) sim.Time {
	if rdy > done && rdy-done <= readyWindow {
		return rdy
	}
	return done
}

func (s *System) creditEvent(core int, used bool) {
	if s.OnCredit != nil {
		s.OnCredit(core, used)
	}
}

// handleL2Evict processes a line displaced from core's L2: prefetch-bit
// accounting and directory cleanup.
func (s *System) handleL2Evict(core int, ev Evicted) {
	if !ev.Valid {
		return
	}
	if ev.Prefetch {
		s.creditEvent(core, false)
	}
	if e, ok := s.dir[ev.Line]; ok {
		e.sharers &^= 1 << uint(core)
		if e.dirtyOwner == int8(core) {
			e.dirtyOwner = -1
		}
		if e.sharers == 0 {
			delete(s.dir, ev.Line)
		} else {
			s.dir[ev.Line] = e
		}
	}
}

// fetchShared brings a line to core's L2 from L3/DRAM, handling the
// directory, and returns the time data arrives at the core tile, the
// level that supplied it, and whether a remote L2's modified copy served
// it. write requests exclusive ownership.
func (s *System) fetchShared(core int, line uint64, write bool, t sim.Time) (sim.Time, uint8, bool) {
	bank := s.bankOf(line)
	// Request flit to the home bank.
	t = s.Mesh.Traverse(core, bank, t)
	t = s.l3p[bank].reserve(t)
	level := uint8(3)
	remote := false

	e, tracked := s.dir[line]
	if !tracked {
		e = dirEntry{dirtyOwner: -1}
	}

	// Remote dirty copy: retrieve from the owner (3-hop style simplification:
	// bank -> owner -> bank), demoting it to shared (or invalid on write).
	if e.dirtyOwner >= 0 && int(e.dirtyOwner) != core {
		owner := int(e.dirtyOwner)
		remote = true
		if !write {
			s.DirtyRemote++
		}
		t = s.Mesh.Traverse(bank, owner, t)
		s.InvMsgs++
		if write {
			_, _, pf := s.l2[owner].Invalidate(line)
			s.l1[owner].Invalidate(line)
			if pf {
				s.WasteInval++
				s.creditEvent(owner, false)
			}
			e.sharers &^= 1 << uint(owner)
		}
		e.dirtyOwner = -1
		t = s.Mesh.Traverse(owner, bank, t)
		// The L3 now holds the up-to-date data.
		if !s.l3[bank].Contains(line) {
			s.l3[bank].Fill(line, true, false, t)
		}
		t += s.cfg.L3Latency
	} else if hit, _, rdy := s.l3[bank].Lookup(line, false, true); hit {
		t = waitReady(t+s.cfg.L3Latency, rdy) // in-flight fill wait
	} else {
		// L3 miss: to the memory controller and DRAM.
		ctrl := s.ctrlNodeOf(line)
		t = s.Mesh.Traverse(bank, ctrl, t)
		t = s.DRAM.Access(line, t)
		s.DRAMReads++
		t = s.Mesh.Traverse(ctrl, bank, t)
		s.l3[bank].Fill(line, false, false, t)
		level = 4
	}

	// Write: invalidate all other sharers (overlapped; pay the farthest).
	if write && e.sharers&^(1<<uint(core)) != 0 {
		var worst sim.Time
		for c := 0; c < s.cfg.Cores; c++ {
			if c == core || e.sharers&(1<<uint(c)) == 0 {
				continue
			}
			_, _, pf := s.l2[c].Invalidate(line)
			s.l1[c].Invalidate(line)
			if pf {
				s.WasteInval++
				s.creditEvent(c, false)
			}
			s.InvMsgs++
			arr := s.Mesh.RoundTrip(bank, c, t)
			if arr > worst {
				worst = arr
			}
		}
		if worst > t {
			t = worst
		}
		e.sharers = 0
	}

	e.sharers |= 1 << uint(core)
	if write {
		e.dirtyOwner = int8(core)
	}
	s.dir[line] = e

	// Data flit back to the requesting tile.
	t = s.Mesh.Traverse(bank, core, t)
	return t, level, remote
}

// Access runs one memory access through the hierarchy and returns its
// timing and outcome. now is the time the access reaches the L1 (core
// accesses) or the L2 (engine accesses).
// MinLatency returns the hierarchy's conservative timing floor for one
// access kind: the uncontended best-case completion delta. Demand
// accesses enter at the L1 and pay at least its lookup latency; engine
// and hardware-prefetch accesses enter at the L2; atomics add the RMW
// surcharge on every path. Every Access completes at or after
// now+MinLatency(kind) — TLB walks, deeper levels, bank service,
// directory forwarding, mesh hops, and DRAM queueing only add to it.
// The floor reads only immutable configuration (safe anywhere, bound
// phases included); like the mesh and DRAM floors it bounds when an
// access *completes*, while the shared reservations it makes start at
// issue time, so it cannot by itself extend an actor's horizon past its
// next access.
func (s *System) MinLatency(kind Kind) sim.Time {
	switch kind {
	case Atomic:
		return s.cfg.L1Latency + s.cfg.AtomicExtra
	case EngineAtomic:
		return s.cfg.L2Latency + s.cfg.AtomicExtra
	case EngineLoad, EngineStore, EnginePrefetch, HWPrefetch:
		return s.cfg.L2Latency
	default: // Load, Store
		return s.cfg.L1Latency
	}
}

func (s *System) Access(core int, addr uint64, kind Kind, now sim.Time) Result {
	if kind == Load {
		start := now
		defer func(st sim.Time) {
			s.DemandCount++
			lat := int64(s.lastDone - st)
			s.DemandLatencySum += lat
			lv := s.lastLevel
			if lv > 4 {
				lv = 4
			}
			s.LatByLevel[lv] += lat
			s.CntByLevel[lv]++
		}(start)
	}
	line := LineAddr(addr)
	res := Result{}
	write := kind == Store || kind == Atomic || kind == EngineStore || kind == EngineAtomic
	prefetch := kind == EnginePrefetch || kind == HWPrefetch
	engine := kind == EngineLoad || kind == EngineStore || kind == EngineAtomic || prefetch

	// Address translation (hardware prefetchers are physically addressed).
	switch {
	case kind == HWPrefetch:
	case engine:
		d, exc := s.TLBs[core].EngineTranslate(addr)
		now += d
		res.TLBMiss = exc
	default:
		now += s.TLBs[core].Translate(addr)
	}

	if !engine {
		if hit, _, rdy := s.l1[core].Lookup(line, write, true); hit {
			if s.l2[core].ClearPrefetch(line) {
				// The demand access was satisfied by the L1, but it is
				// still the prefetched line's first use: clear the bit
				// and return the credit (at full scale the line would
				// not be L1-resident; see DESIGN.md).
				s.L1ShieldedHits++
				res.UsedPrefetch = true
				s.creditEvent(core, true)
			}
			res.Done = waitReady(now+s.cfg.L1Latency, rdy)
			res.Level = 1
			if kind == Atomic {
				res.Done += s.cfg.AtomicExtra
			}
			s.lastDone = res.Done
			s.lastLevel = 1
			// Even an L1 hit may need exclusivity if the line is shared
			// elsewhere; approximate: only charge when the directory has
			// other sharers.
			if write {
				if e, ok := s.dir[line]; ok && (e.sharers&^(1<<uint(core)) != 0 || (e.dirtyOwner >= 0 && int(e.dirtyOwner) != core)) {
					done, _, _ := s.fetchShared(core, line, true, now)
					res.Done = done + s.cfg.L1Latency
					res.Level = 2
				} else if ok {
					e.dirtyOwner = int8(core)
					s.dir[line] = e
				}
			}
			s.lastDone = res.Done
			s.lastLevel = res.Level
			return res
		}
		now += s.cfg.L1Latency // L1 lookup time before going below
	}

	// L2 lookup.
	hit, wasPF, rdy := s.l2[core].Lookup(line, write, !prefetch)
	if !engine {
		s.DemandL2Accesses++
		if !hit {
			s.DemandL2Misses++
		}
	}
	if wasPF && !prefetch {
		res.UsedPrefetch = true
		s.creditEvent(core, true)
	}
	if hit {
		done := waitReady(now+s.cfg.L2Latency, rdy) // in-flight fill wait
		if res.UsedPrefetch && done > now+s.cfg.L2Latency {
			res.PFLate = true // first use caught the fill still in flight
		}
		res.Level = 2
		if kind == Atomic || kind == EngineAtomic {
			done += s.cfg.AtomicExtra
		}
		if write {
			if e, ok := s.dir[line]; ok && (e.sharers&^(1<<uint(core)) != 0 || (e.dirtyOwner >= 0 && int(e.dirtyOwner) != core)) {
				d2, _, _ := s.fetchShared(core, line, true, done)
				done = d2
			} else if ok {
				e.dirtyOwner = int8(core)
				s.dir[line] = e
			}
		}
		if prefetch {
			res.Marked = s.l2[core].MarkPrefetch(line)
		}
		if !engine {
			// L1 evictions need no bookkeeping: the L2 keeps the data.
			s.l1[core].Fill(line, write, false, done)
		}
		res.Done = done
		s.lastDone = res.Done
		s.lastLevel = res.Level
		return res
	}

	// L2 miss: out to the shared levels.
	done, level, remote := s.fetchShared(core, line, write, now+s.cfg.L2Latency)
	res.Level = level
	res.Remote = remote
	if kind == Atomic || kind == EngineAtomic {
		done += s.cfg.AtomicExtra
	}
	if s.TL != nil && !engine {
		// arg packs the requesting core with the supplying level so one
		// track carries the whole demand miss stream.
		s.TL.Instant(s.MemTrack, obs.EvL2Miss, now, int64(core)<<8|int64(level))
	}
	evl2 := s.l2[core].Fill(line, write, prefetch, done)
	if s.TL != nil && evl2.Valid && evl2.Dirty {
		s.TL.Instant(s.MemTrack, obs.EvWriteback, done, int64(core))
	}
	if evl2.Valid && evl2.Prefetch {
		if prefetch {
			s.WastePFEvict++
		} else {
			s.WasteDemandEvict++
		}
	}
	s.handleL2Evict(core, evl2)
	if prefetch {
		res.Marked = true
	}
	if !engine {
		s.l1[core].Fill(line, write, false, done)
	}
	res.Done = done
	s.lastDone = res.Done
	s.lastLevel = res.Level
	return res
}

// CheckInvariants audits directory and cache sanity, returning one
// message per violation (empty means clean, sorted for determinism).
// Read-only — safe to call from a watchdog mid-run or post-run:
//
//   - every directory entry names at least one sharer, a dirty owner
//     that is itself a sharer, and no cores beyond the active set;
//   - every valid L2 line is tracked by the directory with its core's
//     sharer bit set (L2 inclusion in the directory's view);
//   - per-cache counters satisfy their arithmetic identities
//     (writebacks <= evictions, misses <= accesses, prefetch
//     used+waste <= fills).
func (s *System) CheckInvariants() []string {
	var v []string
	for line, e := range s.dir {
		if e.sharers == 0 {
			v = append(v, fmt.Sprintf("mem: dir line %#x has no sharers but was not reclaimed", line))
		}
		if e.dirtyOwner >= 0 && e.sharers&(1<<uint(e.dirtyOwner)) == 0 {
			v = append(v, fmt.Sprintf("mem: dir line %#x dirty owner %d missing from sharer mask %#x", line, e.dirtyOwner, e.sharers))
		}
		if s.cfg.Cores < 64 && e.sharers>>uint(s.cfg.Cores) != 0 {
			v = append(v, fmt.Sprintf("mem: dir line %#x sharer mask %#x names cores beyond the %d active", line, e.sharers, s.cfg.Cores))
		}
	}
	var lines []uint64
	for core, c := range s.l2 {
		lines = c.ValidLines(lines[:0])
		for _, line := range lines {
			if e, ok := s.dir[line]; !ok || e.sharers&(1<<uint(core)) == 0 {
				v = append(v, fmt.Sprintf("mem: core %d L2 holds line %#x the directory does not track for it", core, line))
			}
		}
	}
	checkCounters := func(name string, st CacheCounters) {
		if st.Writebacks > st.Evictions {
			v = append(v, fmt.Sprintf("mem: %s writebacks %d exceed evictions %d", name, st.Writebacks, st.Evictions))
		}
		if st.Misses > st.Accesses {
			v = append(v, fmt.Sprintf("mem: %s misses %d exceed accesses %d", name, st.Misses, st.Accesses))
		}
		if st.PrefetchUsed+st.PrefetchWaste > st.PrefetchFills {
			v = append(v, fmt.Sprintf("mem: %s prefetch used %d + waste %d exceed fills %d", name, st.PrefetchUsed, st.PrefetchWaste, st.PrefetchFills))
		}
	}
	for i, c := range s.l2 {
		checkCounters(fmt.Sprintf("l2[%d]", i), c.Stats)
	}
	for i, c := range s.l3 {
		checkCounters(fmt.Sprintf("l3[%d]", i), c.Stats)
	}
	sort.Strings(v)
	return v
}

// PrefetchMarked sums the prefetch-marked L2 lines across the given
// cores (credit-accounting audit).
func (s *System) PrefetchMarked(cores []int) int {
	n := 0
	for _, c := range cores {
		n += s.l2[c].CountPrefetchMarked()
	}
	return n
}

// L2Counters aggregates the counters of all L2 caches.
func (s *System) L2Counters() CacheCounters {
	var out CacheCounters
	for _, c := range s.l2 {
		out.Accesses += c.Stats.Accesses
		out.Misses += c.Stats.Misses
		out.Evictions += c.Stats.Evictions
		out.Writebacks += c.Stats.Writebacks
		out.PrefetchFills += c.Stats.PrefetchFills
		out.PrefetchUsed += c.Stats.PrefetchUsed
		out.PrefetchWaste += c.Stats.PrefetchWaste
	}
	return out
}

// L3Counters aggregates the counters of all L3 banks.
func (s *System) L3Counters() CacheCounters {
	var out CacheCounters
	for _, c := range s.l3 {
		out.Accesses += c.Stats.Accesses
		out.Misses += c.Stats.Misses
		out.Evictions += c.Stats.Evictions
		out.Writebacks += c.Stats.Writebacks
	}
	return out
}
