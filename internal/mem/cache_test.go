package mem

import (
	"testing"
	"testing/quick"

	"minnow/internal/rng"
)

func TestLookupMissThenHit(t *testing.T) {
	c := NewCache(64, 4)
	if hit, _, _ := c.Lookup(5, false, true); hit {
		t.Fatal("cold lookup hit")
	}
	c.Fill(5, false, false, 0)
	if hit, _, _ := c.Lookup(5, false, true); !hit {
		t.Fatal("filled line missed")
	}
	if c.Stats.Accesses != 2 || c.Stats.Misses != 1 {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewCache(8, 4) // 2 sets, 4 ways
	// Fill one set (even lines map to set 0) past capacity.
	for line := uint64(0); line < 8; line += 2 {
		c.Fill(line, false, false, 0)
	}
	// Touch line 0 to refresh it, then insert another even line.
	c.Lookup(0, false, true)
	ev := c.Fill(8, false, false, 0)
	if !ev.Valid {
		t.Fatal("full set evicted nothing")
	}
	if ev.Line == 0 {
		t.Fatal("evicted the most recently used line")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := NewCache(4, 4)
	c.Fill(1, true, false, 0)
	for l := uint64(2); l <= 5; l++ {
		c.Fill(l, false, false, 0)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks %d", c.Stats.Writebacks)
	}
}

func TestPrefetchBitLifecycle(t *testing.T) {
	c := NewCache(16, 4)
	c.Fill(7, false, true, 0)
	if c.Stats.PrefetchFills != 1 {
		t.Fatal("prefetch fill not counted")
	}
	// Non-demand probe leaves the bit.
	if _, wasPF, _ := c.Lookup(7, false, false); wasPF {
		t.Fatal("non-demand lookup consumed the bit")
	}
	if !c.ProbePrefetch(7) {
		t.Fatal("bit gone after probe")
	}
	// Demand hit clears it exactly once.
	if _, wasPF, _ := c.Lookup(7, false, true); !wasPF {
		t.Fatal("demand hit did not report prefetch")
	}
	if _, wasPF, _ := c.Lookup(7, false, true); wasPF {
		t.Fatal("bit reported twice")
	}
	if c.Stats.PrefetchUsed != 1 {
		t.Fatalf("used %d", c.Stats.PrefetchUsed)
	}
}

func TestPrefetchWasteOnEviction(t *testing.T) {
	c := NewCache(4, 4)
	c.Fill(0, false, true, 0)
	for l := uint64(1); l <= 4; l++ {
		c.Fill(l, false, false, 0)
	}
	if c.Stats.PrefetchWaste != 1 {
		t.Fatalf("waste %d", c.Stats.PrefetchWaste)
	}
}

func TestMarkPrefetch(t *testing.T) {
	c := NewCache(16, 4)
	if c.MarkPrefetch(3) {
		t.Fatal("marked a missing line")
	}
	c.Fill(3, false, false, 0)
	if !c.MarkPrefetch(3) {
		t.Fatal("failed to mark resident line")
	}
	if c.MarkPrefetch(3) {
		t.Fatal("double mark consumed a second credit")
	}
}

func TestClearPrefetch(t *testing.T) {
	c := NewCache(16, 4)
	c.Fill(9, false, true, 0)
	if !c.ClearPrefetch(9) {
		t.Fatal("clear failed")
	}
	if c.ClearPrefetch(9) {
		t.Fatal("double clear")
	}
	if c.Stats.PrefetchUsed != 1 {
		t.Fatalf("used %d", c.Stats.PrefetchUsed)
	}
}

func TestInvalidate(t *testing.T) {
	c := NewCache(16, 4)
	c.Fill(11, true, true, 0)
	present, dirty, pf := c.Invalidate(11)
	if !present || !dirty || !pf {
		t.Fatalf("invalidate returned %v %v %v", present, dirty, pf)
	}
	if c.Contains(11) {
		t.Fatal("line survived invalidation")
	}
}

func TestReadyAtPropagates(t *testing.T) {
	c := NewCache(16, 4)
	c.Fill(2, false, false, 500)
	_, _, rdy := c.Lookup(2, false, true)
	if rdy != 500 {
		t.Fatalf("readyAt %d, want 500", rdy)
	}
}

func TestCapacityInvariant(t *testing.T) {
	// Property: after arbitrary fills, the number of resident lines
	// never exceeds capacity, and every filled line is either resident
	// or was evicted.
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		c := NewCache(32, 4)
		resident := make(map[uint64]bool)
		for i := 0; i < 500; i++ {
			line := uint64(r.Intn(100))
			if c.Contains(line) {
				continue
			}
			ev := c.Fill(line, false, false, 0)
			resident[line] = true
			if ev.Valid {
				delete(resident, ev.Line)
			}
		}
		if len(resident) > c.Lines() {
			return false
		}
		for line := range resident {
			if !c.Contains(line) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNewCachePanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two sets did not panic")
		}
	}()
	NewCache(12, 4) // 3 sets
}
