package minnow_test

import (
	"fmt"
	"log"
	"strings"

	"minnow"
)

// ExampleRun compares the software baseline against Minnow with
// worklist-directed prefetching on connected components.
func ExampleRun() {
	baseline, err := minnow.Run("CC", minnow.Config{Threads: 4, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	accelerated, err := minnow.Run("CC", minnow.Config{
		Threads:  4,
		Seed:     42,
		Minnow:   true,
		Prefetch: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified:", accelerated.Benchmark)
	fmt.Println("minnow wins:", accelerated.WallCycles < baseline.WallCycles)
	fmt.Println("mpki drops:", accelerated.L2MPKI < baseline.L2MPKI)
	// Output:
	// verified: CC
	// minnow wins: true
	// mpki drops: true
}

// ExampleConfig_customPrefetch installs a user-written prefetch function
// (§5.3's extension hook) that prefetches only each task's node record.
func ExampleConfig_customPrefetch() {
	nodeOnly := func(t minnow.Task, g minnow.GraphView, emit func(addrs ...uint64)) {
		emit(g.NodeAddr(t.Node))
	}
	res, err := minnow.Run("TC", minnow.Config{
		Threads:        2,
		Minnow:         true,
		Prefetch:       true,
		CustomPrefetch: nodeOnly,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("prefetches issued:", res.EnginePrefetches > 0)
	// Output:
	// prefetches issued: true
}

// ExampleRunMany sweeps two schedulers in parallel with interval metrics
// sampling on, then reports each run's time-series shape. Observability
// never perturbs timing, and each run's artifacts are private, so the
// sweep is byte-identical for any worker-pool width.
func ExampleRunMany() {
	cfg := minnow.Config{Threads: 4, Seed: 42, MetricsEvery: 50_000}
	accel := cfg
	accel.Minnow = true
	accel.Prefetch = true

	results := minnow.RunMany([]minnow.RunRequest{
		{Benchmark: "SSSP", Config: cfg},
		{Benchmark: "SSSP", Config: accel},
	}, 2)
	for _, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		lines := strings.Count(r.Result.IntervalCSV, "\n")
		fmt.Printf("minnow=%v sampled intervals: %v\n",
			r.Request.Config.Minnow, lines > 1)
	}
	// Output:
	// minnow=false sampled intervals: true
	// minnow=true sampled intervals: true
}

// ExampleConfig_faults runs BFS under the "transient" fault preset: engines
// stall, mesh hops get delayed, DRAM accesses retry, spills back off,
// and prefetch credits leak — yet the answer still verifies against the
// reference, and the same seed replays the exact same faults.
func ExampleConfig_faults() {
	cfg := minnow.Config{
		Threads:    4,
		Seed:       42,
		Minnow:     true,
		Prefetch:   true,
		Faults:     "transient",
		Invariants: true, // task-conservation and credit checks stay on
	}
	a, err := minnow.Run("BFS", cfg)
	if err != nil {
		log.Fatal(err)
	}
	b, err := minnow.Run("BFS", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified under faults:", a.Benchmark)
	fmt.Println("faults injected:", a.Faults.EngineStalls > 0 && a.Faults.CreditsLost > 0)
	fmt.Println("replay identical:", *a.Faults == *b.Faults && a.WallCycles == b.WallCycles)
	// Output:
	// verified under faults: BFS
	// faults injected: true
	// replay identical: true
}

// ExampleBenchmarks lists the paper's Table-2 workloads.
func ExampleBenchmarks() {
	for _, b := range minnow.Benchmarks() {
		fmt.Println(b)
	}
	// Output:
	// SSSP
	// BFS
	// G500
	// CC
	// PR
	// TC
	// BC
	// KCORE
}
