package minnow

import "minnow/internal/harness"

// RunChaos executes the fault-injection ("chaos") sweep: SSSP, BFS, and
// CC under the Minnow scheduler, fault-free and under each canonical
// fault preset (transient, offline, chaos), with the runtime invariant
// checker armed and every cell run twice to prove seed-reproducibility.
// cfg supplies the base system (Threads, Scale, Seed, ...); its
// scheduler-related fields are overridden per cell. jobs bounds the
// worker pool (0 = all CPUs).
//
// The returned report is always populated, one row per cell; the error
// aggregates the failed cells (nil when the whole sweep passed).
func RunChaos(cfg Config, jobs int) (string, error) {
	if err := cfg.Validate(); err != nil {
		return "", err
	}
	o, err := cfg.toOptions()
	if err != nil {
		return "", err
	}
	rep := harness.Chaos(o, jobs)
	return rep.String(), rep.Err()
}
