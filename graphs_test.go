package minnow

import (
	"bytes"
	"testing"
)

func TestRunGraphOnGenerated(t *testing.T) {
	g := NewRoadMesh(900, 5)
	res, err := RunGraph("SSSP", g, 0, Config{Threads: 2, Minnow: true, Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks == 0 || res.WallCycles == 0 {
		t.Fatalf("empty run %+v", res)
	}
}

func TestRunGraphEveryKernel(t *testing.T) {
	cases := map[string]*Graph{
		"SSSP": NewRoadMesh(400, 1),
		"BFS":  NewUniformRandom(400, 4, 1),
		"G500": NewKronecker(8, 8, 1),
		"CC":   NewSmallWorld(400, 6, 1),
		"PR":   NewPowerLawTalk(400, 1),
		"TC":   NewCommunityGraph(200, 1),
		"BC":   NewBipartite(200, 100, 1),
	}
	for bench, g := range cases {
		if _, err := RunGraph(bench, g, 0, Config{Threads: 2}); err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
	}
}

func TestRunGraphValidation(t *testing.T) {
	if _, err := RunGraph("SSSP", nil, 0, Config{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	unweighted := NewUniformRandom(100, 4, 1)
	if _, err := RunGraph("SSSP", unweighted, 0, Config{Threads: 1}); err == nil {
		t.Fatal("unweighted SSSP accepted")
	}
	if _, err := RunGraph("BFS", unweighted, 9999, Config{Threads: 1}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := RunGraph("NOPE", unweighted, 0, Config{Threads: 1}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestNewGraphFromEdges(t *testing.T) {
	g, err := NewGraphFromEdges("tiny", 3, []Edge{
		{From: 0, To: 1, Weight: 4},
		{From: 1, To: 0, Weight: 4},
		{From: 1, To: 2, Weight: 2},
		{From: 2, To: 1, Weight: 2},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 4 || !g.Weighted() {
		t.Fatalf("shape %d/%d weighted=%v", g.NumNodes(), g.NumEdges(), g.Weighted())
	}
	if _, err := RunGraph("SSSP", g, 0, Config{Threads: 1}); err != nil {
		t.Fatal(err)
	}
	// Bad inputs.
	if _, err := NewGraphFromEdges("bad", 0, nil, false); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := NewGraphFromEdges("bad", 2, []Edge{{From: 0, To: 5}}, false); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestGraphSaveLoadPublic(t *testing.T) {
	g := NewCommunityGraph(150, 2)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.Name() != g.Name() {
		t.Fatal("round trip mismatch")
	}
	if _, err := RunGraph("TC", g2, 0, Config{Threads: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGraphCustomPrefetch(t *testing.T) {
	g := NewCommunityGraph(200, 3)
	calls := 0
	f := func(tk Task, v GraphView, emit func(addrs ...uint64)) {
		calls++
		emit(v.NodeAddr(tk.Node))
	}
	res, err := RunGraph("TC", g, 0, Config{Threads: 2, Minnow: true, Prefetch: true, CustomPrefetch: f})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 || res.EnginePrefetches == 0 {
		t.Fatalf("custom prefetch unused: calls=%d pf=%d", calls, res.EnginePrefetches)
	}
}
