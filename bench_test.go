// Benchmarks: one per table and figure of the paper's evaluation section.
// Each benchmark regenerates its artifact in quick mode (8 simulated
// cores, trimmed sweeps); `go run ./cmd/figures` produces the full
// 64-core versions. The per-op time is the host cost of the simulated
// experiment; sim-side metrics are attached via ReportMetric.
package minnow

import (
	"testing"

	"minnow/internal/harness"
	"minnow/internal/kernels"
)

func quickFig() harness.FigOptions { return harness.QuickFigOptions() }

func benchFigure(b *testing.B, fn func(harness.FigOptions) (interface{ String() string }, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := fn(quickFig())
		if err != nil {
			b.Fatal(err)
		}
		if len(t.String()) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable1Graphs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(harness.Table1(quickFig()).Rows) != 7 {
			b.Fatal("table1 incomplete")
		}
	}
}

func BenchmarkTable2SerialCycles(b *testing.B) {
	benchFigure(b, func(f harness.FigOptions) (interface{ String() string }, error) {
		return harness.Table2(f)
	})
}

func BenchmarkTable3Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = harness.Table3(quickFig()).String()
	}
}

func BenchmarkFig2GaloisVsGraphMat(b *testing.B) {
	benchFigure(b, func(f harness.FigOptions) (interface{ String() string }, error) {
		return harness.Fig2(f)
	})
}

func BenchmarkFig3Schedulers(b *testing.B) {
	benchFigure(b, func(f harness.FigOptions) (interface{ String() string }, error) {
		return harness.Fig3(f)
	})
}

func BenchmarkFig4ROBSweep(b *testing.B) {
	benchFigure(b, func(f harness.FigOptions) (interface{ String() string }, error) {
		return harness.Fig4(f)
	})
}

func BenchmarkFig5Breakdown(b *testing.B) {
	benchFigure(b, func(f harness.FigOptions) (interface{ String() string }, error) {
		return harness.Fig5(f)
	})
}

func BenchmarkFig6DelinquentDensity(b *testing.B) {
	benchFigure(b, func(f harness.FigOptions) (interface{ String() string }, error) {
		return harness.Fig6(f)
	})
}

func BenchmarkFig11WorklistOpCost(b *testing.B) {
	benchFigure(b, func(f harness.FigOptions) (interface{ String() string }, error) {
		return harness.Fig11(f)
	})
}

func BenchmarkFig15Scalability(b *testing.B) {
	benchFigure(b, func(f harness.FigOptions) (interface{ String() string }, error) {
		return harness.Fig15(f)
	})
}

func BenchmarkFig16OverallSpeedup(b *testing.B) {
	// The headline experiment; also surfaces the measured speedups as
	// custom metrics.
	spec, _ := kernels.SpecByName("SSSP")
	for i := 0; i < b.N; i++ {
		f := quickFig()
		base := harness.Options{Threads: f.Threads, Scale: f.Scale, Seed: f.Seed, SplitThreshold: 2048}
		sw, err := harness.Run(spec, base)
		if err != nil {
			b.Fatal(err)
		}
		om := base
		om.Scheduler = "minnow"
		om.Prefetch = true
		mn, err := harness.Run(spec, om)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(sw.WallCycles)/float64(mn.WallCycles), "sssp-speedup")
		b.ReportMetric(mn.L2MPKI(), "sssp-mpki")
	}
}

func BenchmarkFig17IMPComparison(b *testing.B) {
	benchFigure(b, func(f harness.FigOptions) (interface{ String() string }, error) {
		return harness.Fig17(f)
	})
}

func BenchmarkFig18MPKIvsCredits(b *testing.B) {
	benchFigure(b, func(f harness.FigOptions) (interface{ String() string }, error) {
		return harness.Fig18(f)
	})
}

func BenchmarkFig19SpeedupVsCredits(b *testing.B) {
	benchFigure(b, func(f harness.FigOptions) (interface{ String() string }, error) {
		return harness.Fig19(f)
	})
}

func BenchmarkFig20PrefetchEfficiency(b *testing.B) {
	benchFigure(b, func(f harness.FigOptions) (interface{ String() string }, error) {
		return harness.Fig20(f)
	})
}

func BenchmarkFig21MemoryChannels(b *testing.B) {
	benchFigure(b, func(f harness.FigOptions) (interface{ String() string }, error) {
		return harness.Fig21(f)
	})
}

func BenchmarkAreaModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = harness.AreaTable().String()
	}
}

// BenchmarkAblations regenerates the design-choice ablation tables
// (task splitting, socket sharding, structure sizes, engine sharing).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := harness.Ablations(quickFig())
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty ablations")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// cycles per host second on the standard SSSP + Minnow configuration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec, _ := kernels.SpecByName("SSSP")
	var cycles int64
	for i := 0; i < b.N; i++ {
		o := harness.Options{Threads: 8, Seed: 42, Scheduler: "minnow", Prefetch: true}
		r, err := harness.Run(spec, o)
		if err != nil {
			b.Fatal(err)
		}
		cycles += r.WallCycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "simcycles/op")
}
