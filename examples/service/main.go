// service is the minnowd quickstart: it starts an in-process
// simulation service, submits the same configuration twice over real
// HTTP, and shows the second submission being served from the
// content-addressed result cache with a byte-identical summary — no
// second simulation runs. The same flow works against a standalone
// `minnowd` binary; see docs/SERVICE.md for the full API.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"minnow/internal/service"
)

func main() {
	// One worker shard keeps the demo serial; production servers let
	// SplitBudget size the pool against the machine.
	s, err := service.New(service.Config{Shards: 1})
	if err != nil {
		log.Fatal(err)
	}
	addr, stop, err := s.Serve("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer stop() //nolint:errcheck // demo teardown
	base := "http://" + addr
	fmt.Println("minnowd serving on", addr)

	spec, _ := json.Marshal(service.JobSpec{
		Bench:  "SSSP",
		Config: service.ConfigSpec{Threads: 1, Minnow: true, Prefetch: true},
	})

	// First submission: a cache miss — the job queues and simulates.
	first := submitAndWait(base, spec)
	fmt.Printf("first  submission: cached=%-5v status=%s hash=%s...\n", first.Cached, first.Status, first.SummaryHash[:12])

	// Second submission of the identical config: served from the cache,
	// done before the POST even returns.
	second := submitAndWait(base, spec)
	fmt.Printf("second submission: cached=%-5v status=%s hash=%s...\n", second.Cached, second.Status, second.SummaryHash[:12])

	fmt.Println("hashes identical:", first.SummaryHash == second.SummaryHash)
	fmt.Println("summaries byte-identical:", bytes.Equal(first.Summary, second.Summary))

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
}

// submitAndWait POSTs one job and polls until it reaches a terminal
// status, returning the final view.
func submitAndWait(base string, body []byte) service.JobView {
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		log.Fatalf("POST /jobs: %d: %s", resp.StatusCode, b)
	}
	var v service.JobView
	if err := json.Unmarshal(b, &v); err != nil {
		log.Fatal(err)
	}
	for v.Status == service.StatusQueued || v.Status == service.StatusRunning {
		time.Sleep(100 * time.Millisecond)
		r, err := http.Get(base + "/jobs/" + v.ID)
		if err != nil {
			log.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&v)
		r.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	return v
}
