// scalability sweeps thread counts for one benchmark under the software
// baseline and under Minnow, reproducing the paper's Fig. 15 in miniature:
// the software worklist saturates as synchronization costs grow with the
// thread count, while offloading the worklist to Minnow engines keeps the
// curve climbing.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"minnow"
)

func main() {
	bench := flag.String("bench", "CC", "benchmark: "+strings.Join(minnow.Benchmarks(), ", "))
	maxThreads := flag.Int("max", 32, "largest thread count (powers of two from 1)")
	flag.Parse()

	serial, err := minnow.Run(*bench, minnow.Config{Threads: 1, Serial: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s scalability vs optimized serial baseline (%d cycles)\n\n", *bench, serial.WallCycles)
	fmt.Println("threads   software obim        minnow+prefetch")
	fmt.Println("-------   -------------------  -------------------")
	for th := 1; th <= *maxThreads; th *= 2 {
		sw, err := minnow.Run(*bench, minnow.Config{Threads: th, SplitThreshold: 2048})
		if err != nil {
			log.Fatal(err)
		}
		mn, err := minnow.Run(*bench, minnow.Config{Threads: th, Minnow: true, Prefetch: true, SplitThreshold: 2048})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d   %8d  (%5.2fx)   %8d  (%5.2fx)\n",
			th,
			sw.WallCycles, float64(serial.WallCycles)/float64(sw.WallCycles),
			mn.WallCycles, float64(serial.WallCycles)/float64(mn.WallCycles))
	}
	fmt.Println("\nEvery run is verified against the benchmark's reference implementation.")
}
