// kcore-extension demonstrates the paper's §8 future work — "extending
// Minnow to accelerate other classes of irregular workloads" — by running
// k-core decomposition (the asynchronous h-operator algorithm) on the
// same engines, framework, and standard prefetch program, completely
// unmodified. The kernel is data-driven (estimate drops re-enqueue
// neighbors) and priority-ordered (ascending estimates), so it exercises
// both halves of Minnow.
package main

import (
	"fmt"
	"log"

	"minnow"
)

func main() {
	g := minnow.NewSmallWorld(20000, 8, 42)
	fmt.Printf("k-core decomposition on %s (%d nodes, %d edges), 8 cores\n\n",
		g.Name(), g.NumNodes(), g.NumEdges())

	baseline, err := minnow.RunGraph("KCORE", g, 0, minnow.Config{Threads: 8})
	if err != nil {
		log.Fatal(err)
	}
	fast, err := minnow.RunGraph("KCORE", g, 0, minnow.Config{Threads: 8, Minnow: true, Prefetch: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("software worklist : %12d cycles   MPKI %5.1f\n", baseline.WallCycles, baseline.L2MPKI)
	fmt.Printf("minnow + prefetch : %12d cycles   MPKI %5.1f   (%.2fx)\n",
		fast.WallCycles, fast.L2MPKI, float64(baseline.WallCycles)/float64(fast.WallCycles))
	fmt.Println("\nCoreness verified against the sequential peeling reference.")
	fmt.Println("No Minnow-specific code exists in the kernel: the engines offload")
	fmt.Println("its worklist and prefetch its tasks through the same Fig. 14 program.")
}
