// sssp-roadnet demonstrates the paper's §3.1 motivation on a road-network
// workload: on high-diameter graphs, the scheduling policy decides whether
// shortest-path converges in milliseconds or times out. The same operator
// becomes Dijkstra (strict priority), Delta-stepping (OBIM), or
// Bellman-Ford-like (FIFO) purely through the worklist.
package main

import (
	"fmt"
	"log"

	"minnow"
)

func main() {
	base := minnow.Config{
		Threads:    8,
		Scale:      1,
		Seed:       7,
		WorkBudget: 3_000_000, // abort hopeless schedules (Fig. 3 timeouts)
		SkipVerify: true,      // timed-out runs have incomplete results
	}

	type policy struct {
		name string
		cfg  func(minnow.Config) minnow.Config
	}
	lg0 := uint(0)
	policies := []policy{
		{"strict-pq (Dijkstra)", func(c minnow.Config) minnow.Config { c.Scheduler = "strictpq"; return c }},
		{"obim delta-stepping", func(c minnow.Config) minnow.Config { c.Scheduler = "obim"; return c }},
		{"obim tiny buckets", func(c minnow.Config) minnow.Config { c.Scheduler = "obim"; c.LgInterval = &lg0; return c }},
		{"fifo (Bellman-Ford)", func(c minnow.Config) minnow.Config { c.Scheduler = "fifo"; return c }},
		{"lifo (Carbon-like)", func(c minnow.Config) minnow.Config { c.Scheduler = "lifo"; return c }},
		{"minnow + prefetch", func(c minnow.Config) minnow.Config { c.Minnow = true; c.Prefetch = true; return c }},
	}

	fmt.Println("SSSP on a road-network mesh (high diameter, low degree), 8 cores")
	fmt.Println("policy                     wall cycles    relaxations   note")
	fmt.Println("------------------------   ------------   -----------   ----")
	var obimWall int64
	for _, p := range policies {
		res, err := minnow.Run("SSSP", p.cfg(base))
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if res.TimedOut {
			note = "TIMED OUT (work budget exceeded)"
		} else if obimWall > 0 {
			note = fmt.Sprintf("%.2fx vs obim", float64(obimWall)/float64(res.WallCycles))
		}
		if p.name == "obim delta-stepping" {
			obimWall = res.WallCycles
		}
		fmt.Printf("%-24s   %12d   %11d   %s\n", p.name, res.WallCycles, res.Tasks, note)
	}
	fmt.Println("\nWork efficiency is the whole story: FIFO executes many times the")
	fmt.Println("relaxations of delta-stepping, and LIFO never converges in budget.")
}
