// pagerank-social runs data-driven PageRank on a wiki-Talk-like social
// graph and sweeps the Minnow prefetch credit pool, reproducing the
// paper's Fig. 18-20 trade-off in miniature: too few credits leave misses
// on the table, while the credit system keeps efficiency high as the pool
// grows.
package main

import (
	"fmt"
	"log"

	"minnow"
)

func main() {
	base := minnow.Config{Threads: 8, Scale: 1, Seed: 42, Minnow: true}

	off, err := minnow.Run("PR", base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("data-driven PageRank on a power-law social graph, 8 cores + Minnow engines")
	fmt.Printf("\nprefetch off : %12d cycles   L2 MPKI %6.2f\n\n", off.WallCycles, off.L2MPKI)
	fmt.Println("credits   cycles        speedup   L2 MPKI   efficiency")
	fmt.Println("-------   -----------   -------   -------   ----------")
	for _, credits := range []int{4, 16, 32, 64, 128} {
		cfg := base
		cfg.Prefetch = true
		cfg.Credits = credits
		res, err := minnow.Run("PR", cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d   %11d   %6.2fx   %7.2f   %9.1f%%\n",
			credits, res.WallCycles,
			float64(off.WallCycles)/float64(res.WallCycles),
			res.L2MPKI, res.PrefetchEfficiency*100)
	}
	fmt.Println("\nPageRank pushes its residual to every out-neighbor with an atomic,")
	fmt.Println("so each fence drains the store queue — prefetching hides the reads,")
	fmt.Println("which is why PR gains even though its stores still serialize.")
}
