// custom-prefetch shows the §5.3 extension hook: "if users require a
// different graph access pattern, they can write a custom prefetch
// function." Triangle counting binary-searches each destination node's
// adjacency list, so the stock task→node→edges→dests program misses the
// search footprint. The custom function below also walks the destination
// lists, like the paper's hand-written TC helper.
package main

import (
	"fmt"
	"log"

	"minnow"
)

// tcPrefetch emits, per task: the source node; then one threadlet per edge
// covering the edge record, the destination node, and the first lines of
// the destination's adjacency list (the binary-search footprint).
func tcPrefetch(t minnow.Task, g minnow.GraphView, emit func(addrs ...uint64)) {
	emit(g.NodeAddr(t.Node))
	lo, hi := g.EdgeRange(t.Node)
	for e := lo; e < hi; e++ {
		dst := g.Dest(e)
		addrs := []uint64{g.EdgeAddr(e), g.NodeAddr(dst)}
		dlo, dhi := g.EdgeRange(dst)
		// Up to three probe lines of the destination adjacency list.
		span := dhi - dlo
		for i := int32(0); i < 3 && i*16 < span; i++ {
			addrs = append(addrs, g.EdgeAddr(dlo+span*i/3+span/6))
		}
		emit(addrs...)
	}
}

func main() {
	base := minnow.Config{Threads: 8, Scale: 1, Seed: 42, Minnow: true}

	off, err := minnow.Run("TC", base)
	if err != nil {
		log.Fatal(err)
	}

	std := base
	std.Prefetch = true
	stock, err := minnow.Run("TC", std)
	if err != nil {
		log.Fatal(err)
	}

	custom := std
	custom.CustomPrefetch = tcPrefetch
	mine, err := minnow.Run("TC", custom)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Triangle counting with custom worklist-directed prefetching, 8 cores")
	fmt.Println("(counts verified against an exact merge-intersection reference)")
	fmt.Println()
	row := func(name string, r *minnow.Result) {
		fmt.Printf("%-26s %12d cycles   %5.2fx   MPKI %6.2f   efficiency %5.1f%%\n",
			name, r.WallCycles, float64(off.WallCycles)/float64(r.WallCycles), r.L2MPKI, r.PrefetchEfficiency*100)
	}
	row("no prefetching", off)
	row("built-in TC program", stock)
	row("user prefetch function", mine)
}
