// Quickstart: run single-source shortest path on the simulated CMP three
// ways — software worklist, Minnow offload, and Minnow offload plus
// worklist-directed prefetching — and compare.
package main

import (
	"fmt"
	"log"

	"minnow"
)

func main() {
	const bench = "SSSP"
	base := minnow.Config{Threads: 8, Scale: 1, Seed: 42}

	software, err := minnow.Run(bench, base)
	if err != nil {
		log.Fatal(err)
	}

	offload := base
	offload.Minnow = true
	engines, err := minnow.Run(bench, offload)
	if err != nil {
		log.Fatal(err)
	}

	full := offload
	full.Prefetch = true
	prefetched, err := minnow.Run(bench, full)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %d simulated cores (results verified against Dijkstra)\n\n", bench, base.Threads)
	row := func(name string, r *minnow.Result) {
		fmt.Printf("%-22s %12d cycles   %6.2fx   L2 MPKI %6.2f   tasks %d\n",
			name, r.WallCycles, float64(software.WallCycles)/float64(r.WallCycles), r.L2MPKI, r.Tasks)
	}
	row("software OBIM", software)
	row("minnow offload", engines)
	row("minnow + prefetching", prefetched)
	fmt.Printf("\nprefetch efficiency with 32 credits: %.1f%%\n", prefetched.PrefetchEfficiency*100)
	fmt.Printf("run summary hash: %s (rerun to check determinism)\n", prefetched.SummaryHash)
}
