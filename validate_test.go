package minnow

import (
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; "" means valid
	}{
		{"zero value", Config{}, ""},
		{"full minnow", Config{Threads: 8, Minnow: true, Prefetch: true, Credits: 32}, ""},
		{"explicit minnow scheduler", Config{Minnow: true, Scheduler: "minnow"}, ""},
		{"faults preset", Config{Faults: "transient", Invariants: true}, ""},
		{"negative threads", Config{Threads: -1}, "Threads"},
		{"too many threads", Config{Threads: 65}, "sharer-mask"},
		{"negative scale", Config{Scale: -2}, "Scale"},
		{"negative credits", Config{Credits: -1}, "Credits"},
		{"negative split", Config{SplitThreshold: -3}, "SplitThreshold"},
		{"negative budget", Config{WorkBudget: -1}, "WorkBudget"},
		{"negative channels", Config{MemChannels: -5}, "MemChannels"},
		{"negative trace", Config{TraceEvents: -1}, "TraceEvents"},
		{"negative metrics", Config{MetricsEvery: -1}, "MetricsEvery"},
		{"negative max cycles", Config{MaxCycles: -1}, "MaxCycles"},
		{"parallel serial", Config{Serial: true, Threads: 4}, "Serial"},
		{"prefetch without minnow", Config{Prefetch: true}, "requires Minnow"},
		{"custom prefetch without prefetch", Config{Minnow: true, CustomPrefetch: func(Task, GraphView, func(...uint64)) {}}, "CustomPrefetch"},
		{"minnow vs scheduler", Config{Minnow: true, Scheduler: "obim"}, "conflicts"},
		{"unknown scheduler", Config{Scheduler: "random"}, "unknown Scheduler"},
		{"unknown hw prefetcher", Config{HWPrefetcher: "ghb"}, "unknown HWPrefetcher"},
		{"bad fault plan", Config{Faults: "warp-core:p=1"}, "Faults"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestRunRejectsInvalidConfig checks the validator actually gates the
// entry points rather than letting a bad config panic mid-simulation.
func TestRunRejectsInvalidConfig(t *testing.T) {
	if _, err := Run("SSSP", Config{MemChannels: -5}); err == nil {
		t.Fatal("Run accepted a config that panics in setup")
	}
	res := RunMany([]RunRequest{{Benchmark: "SSSP", Config: Config{Threads: -1}}}, 1)
	if res[0].Err == nil {
		t.Fatal("RunMany accepted an invalid config")
	}
	if _, err := RunChaos(Config{Threads: 99}, 1); err == nil {
		t.Fatal("RunChaos accepted an invalid config")
	}
}

func TestFigureOptionsValidate(t *testing.T) {
	if err := (FigureOptions{}).Validate(); err != nil {
		t.Fatalf("zero FigureOptions rejected: %v", err)
	}
	for _, bad := range []FigureOptions{
		{Threads: -1},
		{Threads: 128},
		{Scale: -1},
		{Jobs: -2},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("invalid FigureOptions accepted: %+v", bad)
		}
	}
}
