package minnow

import (
	"regexp"
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; "" means valid
	}{
		{"zero value", Config{}, ""},
		{"full minnow", Config{Threads: 8, Minnow: true, Prefetch: true, Credits: 32}, ""},
		{"explicit minnow scheduler", Config{Minnow: true, Scheduler: "minnow"}, ""},
		{"faults preset", Config{Faults: "transient", Invariants: true}, ""},
		{"arrivals preset", Config{Arrivals: "steady"}, ""},
		{"arrivals clauses", Config{Arrivals: "seed=3;poisson:gap=100,count=8"}, ""},
		{"negative threads", Config{Threads: -1}, "Threads"},
		{"too many threads", Config{Threads: 65}, "sharer-mask"},
		{"negative scale", Config{Scale: -2}, "Scale"},
		{"negative credits", Config{Credits: -1}, "Credits"},
		{"negative split", Config{SplitThreshold: -3}, "SplitThreshold"},
		{"negative budget", Config{WorkBudget: -1}, "WorkBudget"},
		{"negative channels", Config{MemChannels: -5}, "MemChannels"},
		{"negative trace", Config{TraceEvents: -1}, "TraceEvents"},
		{"negative metrics", Config{MetricsEvery: -1}, "MetricsEvery"},
		{"negative max cycles", Config{MaxCycles: -1}, "MaxCycles"},
		{"parallel serial", Config{Serial: true, Threads: 4}, "Serial"},
		{"prefetch without minnow", Config{Prefetch: true}, "requires Minnow"},
		{"custom prefetch without prefetch", Config{Minnow: true, CustomPrefetch: func(Task, GraphView, func(...uint64)) {}}, "CustomPrefetch"},
		{"minnow vs scheduler", Config{Minnow: true, Scheduler: "obim"}, "conflicts"},
		{"unknown scheduler", Config{Scheduler: "random"}, "Scheduler: unknown"},
		{"unknown hw prefetcher", Config{HWPrefetcher: "ghb"}, "HWPrefetcher: unknown"},
		{"bad fault plan", Config{Faults: "warp-core:p=1"}, "Faults"},
		{"bad arrival plan", Config{Arrivals: "warp:gap=1"}, "Arrivals"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateErrorForm pins the Validate error-message contract: every
// message is "minnow: <Field>: <reason>", naming the offending Config
// field first. minnowd serves these strings verbatim in HTTP 400 bodies
// (docs/SERVICE.md documents clients may dispatch on the field prefix),
// so the exact texts for the PR 3–6 field additions are table-pinned
// here — changing one is an API change, not a wording tweak.
func TestValidateErrorForm(t *testing.T) {
	exact := []struct {
		name string
		cfg  Config
		want string
	}{
		{"faults", Config{Faults: "warp-core:p=1"},
			`minnow: Faults: invalid plan: fault: unknown clause "warp-core" (have engine-stall, engine-offline, noc-delay, dram-retry, spill-retry, credit-loss, seed)`},
		{"arrivals", Config{Arrivals: "warp:gap=1"},
			`minnow: Arrivals: invalid plan: arrival: unknown clause "warp" (have poisson, burst, periodic, trace, seed)`},
		{"intra jobs", Config{IntraJobs: -2},
			"minnow: IntraJobs: -2 is negative (0 selects the serial engine, n >= 1 the bound/weave engine with n workers)"},
		{"epoch window negative", Config{EpochWindow: -1},
			"minnow: EpochWindow: -1 is negative (0 selects the default window)"},
		{"epoch window without intra", Config{EpochWindow: 100},
			"minnow: EpochWindow: tunes the bound/weave engine and requires IntraJobs >= 1"},
		{"on sample without metrics", Config{OnSample: func(int64, string) {}},
			"minnow: OnSample: fires at metrics-sample boundaries and requires MetricsEvery > 0"},
		{"max cycles", Config{MaxCycles: -7},
			"minnow: MaxCycles: -7 is negative (0 selects a large default)"},
		{"scheduler conflict", Config{Minnow: true, Scheduler: "fifo"},
			`minnow: Scheduler: "fifo" conflicts with Minnow — the engine owns the worklist`},
	}
	for _, tc := range exact {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if err.Error() != tc.want {
				t.Fatalf("error message changed:\n got %q\nwant %q", err, tc.want)
			}
		})
	}

	// Every Validate error, whatever the field, must match the
	// "minnow: <Field>: " prefix form.
	form := regexp.MustCompile(`^minnow: [A-Z][A-Za-z]*: `)
	bad := []Config{
		{Threads: -1}, {Threads: 65}, {Scale: -2}, {Credits: -1},
		{SplitThreshold: -3}, {WorkBudget: -1}, {MemChannels: -5},
		{TraceEvents: -1}, {MetricsEvery: -1}, {MaxCycles: -1},
		{Serial: true, Threads: 4}, {Prefetch: true},
		{Minnow: true, CustomPrefetch: func(Task, GraphView, func(...uint64)) {}},
		{Minnow: true, Scheduler: "obim"}, {Scheduler: "random"},
		{HWPrefetcher: "ghb"}, {Faults: "bogus-kind"}, {Arrivals: "bogus-kind"},
		{IntraJobs: -1}, {EpochWindow: -1}, {EpochWindow: 5},
		{OnSample: func(int64, string) {}},
	}
	for _, cfg := range bad {
		err := cfg.Validate()
		if err == nil {
			t.Fatalf("invalid config accepted: %+v", cfg)
		}
		if !form.MatchString(err.Error()) {
			t.Errorf("error %q does not follow the \"minnow: <Field>: <reason>\" form", err)
		}
	}
	for _, opts := range []FigureOptions{{Threads: -1}, {Threads: 128}, {Scale: -1}, {Jobs: -2}} {
		err := opts.Validate()
		if err == nil {
			t.Fatalf("invalid FigureOptions accepted: %+v", opts)
		}
		if !form.MatchString(err.Error()) {
			t.Errorf("figure error %q does not follow the \"minnow: <Field>: <reason>\" form", err)
		}
	}
}

// TestRunRejectsInvalidConfig checks the validator actually gates the
// entry points rather than letting a bad config panic mid-simulation.
func TestRunRejectsInvalidConfig(t *testing.T) {
	if _, err := Run("SSSP", Config{MemChannels: -5}); err == nil {
		t.Fatal("Run accepted a config that panics in setup")
	}
	res := RunMany([]RunRequest{{Benchmark: "SSSP", Config: Config{Threads: -1}}}, 1)
	if res[0].Err == nil {
		t.Fatal("RunMany accepted an invalid config")
	}
	if _, err := RunChaos(Config{Threads: 99}, 1); err == nil {
		t.Fatal("RunChaos accepted an invalid config")
	}
}

func TestFigureOptionsValidate(t *testing.T) {
	if err := (FigureOptions{}).Validate(); err != nil {
		t.Fatalf("zero FigureOptions rejected: %v", err)
	}
	for _, bad := range []FigureOptions{
		{Threads: -1},
		{Threads: 128},
		{Scale: -1},
		{Jobs: -2},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("invalid FigureOptions accepted: %+v", bad)
		}
	}
}
