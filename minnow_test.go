package minnow

import (
	"strings"
	"testing"
)

func TestBenchmarksList(t *testing.T) {
	b := Benchmarks()
	if len(b) != 8 { // Table-2 suite + the KCORE extension
		t.Fatalf("benchmarks %v", b)
	}
}

func TestKCoreExtensionThroughPublicAPI(t *testing.T) {
	res, err := Run("KCORE", Config{Threads: 4, Minnow: true, Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks == 0 {
		t.Fatal("no k-core work executed")
	}
}

func TestPublicRun(t *testing.T) {
	res, err := Run("SSSP", Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.WallCycles <= 0 || res.Tasks <= 0 || res.Instructions <= 0 {
		t.Fatalf("empty result %+v", res)
	}
	if res.Benchmark != "SSSP" || res.Threads != 2 {
		t.Fatalf("metadata wrong %+v", res)
	}
}

func TestPublicRunMinnowPrefetch(t *testing.T) {
	res, err := Run("CC", Config{Threads: 2, Minnow: true, Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.EnginePrefetches == 0 {
		t.Fatal("no prefetches issued")
	}
	if res.PrefetchEfficiency <= 0 || res.PrefetchEfficiency > 1 {
		t.Fatalf("efficiency %v", res.PrefetchEfficiency)
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := Run("BOGUS", Config{}); err == nil {
		t.Fatal("bogus benchmark accepted")
	}
}

func TestCustomPrefetchRequiresMinnow(t *testing.T) {
	f := func(tk Task, g GraphView, emit func(addrs ...uint64)) {}
	if _, err := Run("TC", Config{CustomPrefetch: f}); err == nil {
		t.Fatal("custom prefetch without minnow accepted")
	}
}

func TestCustomPrefetchRuns(t *testing.T) {
	calls := 0
	f := func(tk Task, g GraphView, emit func(addrs ...uint64)) {
		calls++
		emit(g.NodeAddr(tk.Node))
	}
	res, err := Run("TC", Config{Threads: 2, Minnow: true, Prefetch: true, CustomPrefetch: f})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("custom prefetch function never invoked")
	}
	if res.EnginePrefetches == 0 {
		t.Fatal("custom prefetches not issued")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Threads: 3, Seed: 11, Minnow: true, Prefetch: true}
	a, err := Run("BC", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("BC", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.WallCycles != b.WallCycles || a.Tasks != b.Tasks || a.Instructions != b.Instructions {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestLgIntervalOverride(t *testing.T) {
	lg := uint(2)
	a, err := Run("SSSP", Config{Threads: 2, LgInterval: &lg})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("SSSP", Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.WallCycles == b.WallCycles {
		t.Fatal("bucket interval override had no effect")
	}
}

func TestFiguresRegistry(t *testing.T) {
	figs := Figures()
	if len(figs) != 22 {
		t.Fatalf("figure registry has %d entries: %v", len(figs), figs)
	}
	if _, err := RenderFigure("nope", FigureOptions{}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRenderStaticFigures(t *testing.T) {
	for _, name := range []string{"table1", "table3", "area"} {
		text, err := RenderFigure(name, FigureOptions{Quick: true, Threads: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(text, "\n") {
			t.Fatalf("%s rendered empty", name)
		}
	}
}

func TestIdealCoreModes(t *testing.T) {
	real, err := Run("PR", Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := Run("PR", Config{Threads: 2, PerfectBP: true, NoFences: true})
	if err != nil {
		t.Fatal(err)
	}
	if ideal.WallCycles >= real.WallCycles {
		t.Fatalf("ideal core (%d) not faster than realistic (%d)", ideal.WallCycles, real.WallCycles)
	}
}

func TestRenderFigureCSV(t *testing.T) {
	csv, err := RenderFigureCSV("table1", FigureOptions{Threads: 4, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv, ",") || !strings.Contains(csv, "\n") {
		t.Fatalf("csv malformed: %q", csv[:min(80, len(csv))])
	}
	if _, err := RenderFigureCSV("ablations", FigureOptions{}); err == nil {
		t.Fatal("multi-table figure should have no CSV form")
	}
}

func TestTraceThroughPublicAPI(t *testing.T) {
	res, err := Run("BC", Config{Threads: 2, Minnow: true, Prefetch: true, TraceEvents: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.TraceText, "engine trace") {
		t.Fatal("trace text missing")
	}
}
