// Command figures regenerates every table and figure from the paper's
// evaluation section and writes them to stdout and (optionally) a results
// directory.
//
// Each figure's independent configurations fan out over a bounded worker
// pool (-jobs N, default = all CPUs); rendered output is byte-identical
// for any -jobs value.
//
// Usage:
//
//	figures [-only fig16,fig18] [-threads 64] [-scale 1] [-quick] [-jobs 8] [-out results/]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"minnow"
)

func main() {
	var (
		only    = flag.String("only", "", "comma-separated subset (e.g. fig16,table1); empty = all")
		threads = flag.Int("threads", 64, "simulated core count")
		scale   = flag.Int("scale", 0, "input scale multiplier (0 = suite default)")
		seed    = flag.Uint64("seed", 42, "graph generator seed")
		quick   = flag.Bool("quick", false, "trimmed sweeps (fast)")
		out     = flag.String("out", "", "directory to also write per-figure .txt files")
		csv     = flag.Bool("csv", false, "also write .csv files (requires -out)")
		jobs    = flag.Int("jobs", 0, "max concurrent simulations per figure (0 = all CPUs, 1 = serial)")
	)
	flag.Parse()

	opts := minnow.FigureOptions{Threads: *threads, Scale: *scale, Seed: *seed, Quick: *quick, Jobs: *jobs}
	if err := opts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}

	names := minnow.Figures()
	if *only != "" {
		names = strings.Split(*only, ",")
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		start := time.Now()
		text, err := minnow.RenderFigure(name, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", name, time.Since(start).Seconds(), text)
		if *out != "" {
			path := filepath.Join(*out, name+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
			if *csv {
				if data, err := minnow.RenderFigureCSV(name, opts); err == nil {
					if err := os.WriteFile(filepath.Join(*out, name+".csv"), []byte(data), 0o644); err != nil {
						fmt.Fprintln(os.Stderr, "figures:", err)
						os.Exit(1)
					}
				}
			}
		}
	}
}
